file(REMOVE_RECURSE
  "libhypatia_viz.a"
)
