# Empty compiler generated dependencies file for hypatia_viz.
# This may be replaced when dependencies are built.
