file(REMOVE_RECURSE
  "CMakeFiles/hypatia_viz.dir/ground_view.cpp.o"
  "CMakeFiles/hypatia_viz.dir/ground_view.cpp.o.d"
  "CMakeFiles/hypatia_viz.dir/path_export.cpp.o"
  "CMakeFiles/hypatia_viz.dir/path_export.cpp.o.d"
  "CMakeFiles/hypatia_viz.dir/trajectory_export.cpp.o"
  "CMakeFiles/hypatia_viz.dir/trajectory_export.cpp.o.d"
  "CMakeFiles/hypatia_viz.dir/utilization_export.cpp.o"
  "CMakeFiles/hypatia_viz.dir/utilization_export.cpp.o.d"
  "libhypatia_viz.a"
  "libhypatia_viz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hypatia_viz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
