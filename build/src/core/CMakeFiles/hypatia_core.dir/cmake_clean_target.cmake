file(REMOVE_RECURSE
  "libhypatia_core.a"
)
