# Empty compiler generated dependencies file for hypatia_core.
# This may be replaced when dependencies are built.
