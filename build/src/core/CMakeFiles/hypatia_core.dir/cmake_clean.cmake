file(REMOVE_RECURSE
  "CMakeFiles/hypatia_core.dir/experiment.cpp.o"
  "CMakeFiles/hypatia_core.dir/experiment.cpp.o.d"
  "CMakeFiles/hypatia_core.dir/leo_network.cpp.o"
  "CMakeFiles/hypatia_core.dir/leo_network.cpp.o.d"
  "CMakeFiles/hypatia_core.dir/metrics.cpp.o"
  "CMakeFiles/hypatia_core.dir/metrics.cpp.o.d"
  "CMakeFiles/hypatia_core.dir/scenario.cpp.o"
  "CMakeFiles/hypatia_core.dir/scenario.cpp.o.d"
  "libhypatia_core.a"
  "libhypatia_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hypatia_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
