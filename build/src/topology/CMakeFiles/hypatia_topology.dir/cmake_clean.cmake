file(REMOVE_RECURSE
  "CMakeFiles/hypatia_topology.dir/cities.cpp.o"
  "CMakeFiles/hypatia_topology.dir/cities.cpp.o.d"
  "CMakeFiles/hypatia_topology.dir/constellation.cpp.o"
  "CMakeFiles/hypatia_topology.dir/constellation.cpp.o.d"
  "CMakeFiles/hypatia_topology.dir/isl.cpp.o"
  "CMakeFiles/hypatia_topology.dir/isl.cpp.o.d"
  "CMakeFiles/hypatia_topology.dir/mobility.cpp.o"
  "CMakeFiles/hypatia_topology.dir/mobility.cpp.o.d"
  "CMakeFiles/hypatia_topology.dir/shell_group.cpp.o"
  "CMakeFiles/hypatia_topology.dir/shell_group.cpp.o.d"
  "CMakeFiles/hypatia_topology.dir/visibility.cpp.o"
  "CMakeFiles/hypatia_topology.dir/visibility.cpp.o.d"
  "CMakeFiles/hypatia_topology.dir/weather.cpp.o"
  "CMakeFiles/hypatia_topology.dir/weather.cpp.o.d"
  "libhypatia_topology.a"
  "libhypatia_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hypatia_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
