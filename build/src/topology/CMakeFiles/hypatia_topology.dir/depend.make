# Empty dependencies file for hypatia_topology.
# This may be replaced when dependencies are built.
