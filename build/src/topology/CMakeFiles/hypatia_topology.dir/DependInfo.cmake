
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topology/cities.cpp" "src/topology/CMakeFiles/hypatia_topology.dir/cities.cpp.o" "gcc" "src/topology/CMakeFiles/hypatia_topology.dir/cities.cpp.o.d"
  "/root/repo/src/topology/constellation.cpp" "src/topology/CMakeFiles/hypatia_topology.dir/constellation.cpp.o" "gcc" "src/topology/CMakeFiles/hypatia_topology.dir/constellation.cpp.o.d"
  "/root/repo/src/topology/isl.cpp" "src/topology/CMakeFiles/hypatia_topology.dir/isl.cpp.o" "gcc" "src/topology/CMakeFiles/hypatia_topology.dir/isl.cpp.o.d"
  "/root/repo/src/topology/mobility.cpp" "src/topology/CMakeFiles/hypatia_topology.dir/mobility.cpp.o" "gcc" "src/topology/CMakeFiles/hypatia_topology.dir/mobility.cpp.o.d"
  "/root/repo/src/topology/shell_group.cpp" "src/topology/CMakeFiles/hypatia_topology.dir/shell_group.cpp.o" "gcc" "src/topology/CMakeFiles/hypatia_topology.dir/shell_group.cpp.o.d"
  "/root/repo/src/topology/visibility.cpp" "src/topology/CMakeFiles/hypatia_topology.dir/visibility.cpp.o" "gcc" "src/topology/CMakeFiles/hypatia_topology.dir/visibility.cpp.o.d"
  "/root/repo/src/topology/weather.cpp" "src/topology/CMakeFiles/hypatia_topology.dir/weather.cpp.o" "gcc" "src/topology/CMakeFiles/hypatia_topology.dir/weather.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/orbit/CMakeFiles/hypatia_orbit.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hypatia_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
