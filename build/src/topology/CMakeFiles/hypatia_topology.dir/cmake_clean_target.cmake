file(REMOVE_RECURSE
  "libhypatia_topology.a"
)
