
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/orbit/coords.cpp" "src/orbit/CMakeFiles/hypatia_orbit.dir/coords.cpp.o" "gcc" "src/orbit/CMakeFiles/hypatia_orbit.dir/coords.cpp.o.d"
  "/root/repo/src/orbit/ground_station.cpp" "src/orbit/CMakeFiles/hypatia_orbit.dir/ground_station.cpp.o" "gcc" "src/orbit/CMakeFiles/hypatia_orbit.dir/ground_station.cpp.o.d"
  "/root/repo/src/orbit/kepler.cpp" "src/orbit/CMakeFiles/hypatia_orbit.dir/kepler.cpp.o" "gcc" "src/orbit/CMakeFiles/hypatia_orbit.dir/kepler.cpp.o.d"
  "/root/repo/src/orbit/sgp4.cpp" "src/orbit/CMakeFiles/hypatia_orbit.dir/sgp4.cpp.o" "gcc" "src/orbit/CMakeFiles/hypatia_orbit.dir/sgp4.cpp.o.d"
  "/root/repo/src/orbit/time.cpp" "src/orbit/CMakeFiles/hypatia_orbit.dir/time.cpp.o" "gcc" "src/orbit/CMakeFiles/hypatia_orbit.dir/time.cpp.o.d"
  "/root/repo/src/orbit/tle.cpp" "src/orbit/CMakeFiles/hypatia_orbit.dir/tle.cpp.o" "gcc" "src/orbit/CMakeFiles/hypatia_orbit.dir/tle.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/hypatia_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
