# Empty compiler generated dependencies file for hypatia_orbit.
# This may be replaced when dependencies are built.
