file(REMOVE_RECURSE
  "CMakeFiles/hypatia_orbit.dir/coords.cpp.o"
  "CMakeFiles/hypatia_orbit.dir/coords.cpp.o.d"
  "CMakeFiles/hypatia_orbit.dir/ground_station.cpp.o"
  "CMakeFiles/hypatia_orbit.dir/ground_station.cpp.o.d"
  "CMakeFiles/hypatia_orbit.dir/kepler.cpp.o"
  "CMakeFiles/hypatia_orbit.dir/kepler.cpp.o.d"
  "CMakeFiles/hypatia_orbit.dir/sgp4.cpp.o"
  "CMakeFiles/hypatia_orbit.dir/sgp4.cpp.o.d"
  "CMakeFiles/hypatia_orbit.dir/time.cpp.o"
  "CMakeFiles/hypatia_orbit.dir/time.cpp.o.d"
  "CMakeFiles/hypatia_orbit.dir/tle.cpp.o"
  "CMakeFiles/hypatia_orbit.dir/tle.cpp.o.d"
  "libhypatia_orbit.a"
  "libhypatia_orbit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hypatia_orbit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
