file(REMOVE_RECURSE
  "libhypatia_orbit.a"
)
