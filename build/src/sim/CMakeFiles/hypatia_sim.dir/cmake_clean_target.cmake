file(REMOVE_RECURSE
  "libhypatia_sim.a"
)
