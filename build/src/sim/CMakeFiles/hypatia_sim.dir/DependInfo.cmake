
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/event_queue.cpp" "src/sim/CMakeFiles/hypatia_sim.dir/event_queue.cpp.o" "gcc" "src/sim/CMakeFiles/hypatia_sim.dir/event_queue.cpp.o.d"
  "/root/repo/src/sim/net_device.cpp" "src/sim/CMakeFiles/hypatia_sim.dir/net_device.cpp.o" "gcc" "src/sim/CMakeFiles/hypatia_sim.dir/net_device.cpp.o.d"
  "/root/repo/src/sim/network.cpp" "src/sim/CMakeFiles/hypatia_sim.dir/network.cpp.o" "gcc" "src/sim/CMakeFiles/hypatia_sim.dir/network.cpp.o.d"
  "/root/repo/src/sim/node.cpp" "src/sim/CMakeFiles/hypatia_sim.dir/node.cpp.o" "gcc" "src/sim/CMakeFiles/hypatia_sim.dir/node.cpp.o.d"
  "/root/repo/src/sim/packet.cpp" "src/sim/CMakeFiles/hypatia_sim.dir/packet.cpp.o" "gcc" "src/sim/CMakeFiles/hypatia_sim.dir/packet.cpp.o.d"
  "/root/repo/src/sim/ping_app.cpp" "src/sim/CMakeFiles/hypatia_sim.dir/ping_app.cpp.o" "gcc" "src/sim/CMakeFiles/hypatia_sim.dir/ping_app.cpp.o.d"
  "/root/repo/src/sim/queue.cpp" "src/sim/CMakeFiles/hypatia_sim.dir/queue.cpp.o" "gcc" "src/sim/CMakeFiles/hypatia_sim.dir/queue.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/sim/CMakeFiles/hypatia_sim.dir/simulator.cpp.o" "gcc" "src/sim/CMakeFiles/hypatia_sim.dir/simulator.cpp.o.d"
  "/root/repo/src/sim/tcp_bbr.cpp" "src/sim/CMakeFiles/hypatia_sim.dir/tcp_bbr.cpp.o" "gcc" "src/sim/CMakeFiles/hypatia_sim.dir/tcp_bbr.cpp.o.d"
  "/root/repo/src/sim/tcp_newreno.cpp" "src/sim/CMakeFiles/hypatia_sim.dir/tcp_newreno.cpp.o" "gcc" "src/sim/CMakeFiles/hypatia_sim.dir/tcp_newreno.cpp.o.d"
  "/root/repo/src/sim/tcp_socket.cpp" "src/sim/CMakeFiles/hypatia_sim.dir/tcp_socket.cpp.o" "gcc" "src/sim/CMakeFiles/hypatia_sim.dir/tcp_socket.cpp.o.d"
  "/root/repo/src/sim/tcp_vegas.cpp" "src/sim/CMakeFiles/hypatia_sim.dir/tcp_vegas.cpp.o" "gcc" "src/sim/CMakeFiles/hypatia_sim.dir/tcp_vegas.cpp.o.d"
  "/root/repo/src/sim/udp_app.cpp" "src/sim/CMakeFiles/hypatia_sim.dir/udp_app.cpp.o" "gcc" "src/sim/CMakeFiles/hypatia_sim.dir/udp_app.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/routing/CMakeFiles/hypatia_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/hypatia_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/orbit/CMakeFiles/hypatia_orbit.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hypatia_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
