# Empty compiler generated dependencies file for hypatia_sim.
# This may be replaced when dependencies are built.
