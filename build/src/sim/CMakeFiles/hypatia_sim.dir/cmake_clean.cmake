file(REMOVE_RECURSE
  "CMakeFiles/hypatia_sim.dir/event_queue.cpp.o"
  "CMakeFiles/hypatia_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/hypatia_sim.dir/net_device.cpp.o"
  "CMakeFiles/hypatia_sim.dir/net_device.cpp.o.d"
  "CMakeFiles/hypatia_sim.dir/network.cpp.o"
  "CMakeFiles/hypatia_sim.dir/network.cpp.o.d"
  "CMakeFiles/hypatia_sim.dir/node.cpp.o"
  "CMakeFiles/hypatia_sim.dir/node.cpp.o.d"
  "CMakeFiles/hypatia_sim.dir/packet.cpp.o"
  "CMakeFiles/hypatia_sim.dir/packet.cpp.o.d"
  "CMakeFiles/hypatia_sim.dir/ping_app.cpp.o"
  "CMakeFiles/hypatia_sim.dir/ping_app.cpp.o.d"
  "CMakeFiles/hypatia_sim.dir/queue.cpp.o"
  "CMakeFiles/hypatia_sim.dir/queue.cpp.o.d"
  "CMakeFiles/hypatia_sim.dir/simulator.cpp.o"
  "CMakeFiles/hypatia_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/hypatia_sim.dir/tcp_bbr.cpp.o"
  "CMakeFiles/hypatia_sim.dir/tcp_bbr.cpp.o.d"
  "CMakeFiles/hypatia_sim.dir/tcp_newreno.cpp.o"
  "CMakeFiles/hypatia_sim.dir/tcp_newreno.cpp.o.d"
  "CMakeFiles/hypatia_sim.dir/tcp_socket.cpp.o"
  "CMakeFiles/hypatia_sim.dir/tcp_socket.cpp.o.d"
  "CMakeFiles/hypatia_sim.dir/tcp_vegas.cpp.o"
  "CMakeFiles/hypatia_sim.dir/tcp_vegas.cpp.o.d"
  "CMakeFiles/hypatia_sim.dir/udp_app.cpp.o"
  "CMakeFiles/hypatia_sim.dir/udp_app.cpp.o.d"
  "libhypatia_sim.a"
  "libhypatia_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hypatia_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
