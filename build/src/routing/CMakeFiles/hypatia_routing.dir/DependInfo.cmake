
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/routing/forwarding.cpp" "src/routing/CMakeFiles/hypatia_routing.dir/forwarding.cpp.o" "gcc" "src/routing/CMakeFiles/hypatia_routing.dir/forwarding.cpp.o.d"
  "/root/repo/src/routing/graph.cpp" "src/routing/CMakeFiles/hypatia_routing.dir/graph.cpp.o" "gcc" "src/routing/CMakeFiles/hypatia_routing.dir/graph.cpp.o.d"
  "/root/repo/src/routing/multi_shell.cpp" "src/routing/CMakeFiles/hypatia_routing.dir/multi_shell.cpp.o" "gcc" "src/routing/CMakeFiles/hypatia_routing.dir/multi_shell.cpp.o.d"
  "/root/repo/src/routing/path_analysis.cpp" "src/routing/CMakeFiles/hypatia_routing.dir/path_analysis.cpp.o" "gcc" "src/routing/CMakeFiles/hypatia_routing.dir/path_analysis.cpp.o.d"
  "/root/repo/src/routing/shortest_path.cpp" "src/routing/CMakeFiles/hypatia_routing.dir/shortest_path.cpp.o" "gcc" "src/routing/CMakeFiles/hypatia_routing.dir/shortest_path.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/topology/CMakeFiles/hypatia_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/orbit/CMakeFiles/hypatia_orbit.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hypatia_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
