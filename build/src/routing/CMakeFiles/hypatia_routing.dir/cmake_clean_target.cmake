file(REMOVE_RECURSE
  "libhypatia_routing.a"
)
