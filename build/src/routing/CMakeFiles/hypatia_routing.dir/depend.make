# Empty dependencies file for hypatia_routing.
# This may be replaced when dependencies are built.
