file(REMOVE_RECURSE
  "CMakeFiles/hypatia_routing.dir/forwarding.cpp.o"
  "CMakeFiles/hypatia_routing.dir/forwarding.cpp.o.d"
  "CMakeFiles/hypatia_routing.dir/graph.cpp.o"
  "CMakeFiles/hypatia_routing.dir/graph.cpp.o.d"
  "CMakeFiles/hypatia_routing.dir/multi_shell.cpp.o"
  "CMakeFiles/hypatia_routing.dir/multi_shell.cpp.o.d"
  "CMakeFiles/hypatia_routing.dir/path_analysis.cpp.o"
  "CMakeFiles/hypatia_routing.dir/path_analysis.cpp.o.d"
  "CMakeFiles/hypatia_routing.dir/shortest_path.cpp.o"
  "CMakeFiles/hypatia_routing.dir/shortest_path.cpp.o.d"
  "libhypatia_routing.a"
  "libhypatia_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hypatia_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
