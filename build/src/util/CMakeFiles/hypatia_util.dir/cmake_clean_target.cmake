file(REMOVE_RECURSE
  "libhypatia_util.a"
)
