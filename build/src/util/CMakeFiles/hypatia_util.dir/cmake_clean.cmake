file(REMOVE_RECURSE
  "CMakeFiles/hypatia_util.dir/cli.cpp.o"
  "CMakeFiles/hypatia_util.dir/cli.cpp.o.d"
  "CMakeFiles/hypatia_util.dir/csv.cpp.o"
  "CMakeFiles/hypatia_util.dir/csv.cpp.o.d"
  "CMakeFiles/hypatia_util.dir/stats.cpp.o"
  "CMakeFiles/hypatia_util.dir/stats.cpp.o.d"
  "libhypatia_util.a"
  "libhypatia_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hypatia_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
