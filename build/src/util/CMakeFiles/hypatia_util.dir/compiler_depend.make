# Empty compiler generated dependencies file for hypatia_util.
# This may be replaced when dependencies are built.
