file(REMOVE_RECURSE
  "../bench/bench_fig06_rtt_vs_geodesic"
  "../bench/bench_fig06_rtt_vs_geodesic.pdb"
  "CMakeFiles/bench_fig06_rtt_vs_geodesic.dir/bench_fig06_rtt_vs_geodesic.cpp.o"
  "CMakeFiles/bench_fig06_rtt_vs_geodesic.dir/bench_fig06_rtt_vs_geodesic.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_rtt_vs_geodesic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
