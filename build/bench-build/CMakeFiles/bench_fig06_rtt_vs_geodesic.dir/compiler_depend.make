# Empty compiler generated dependencies file for bench_fig06_rtt_vs_geodesic.
# This may be replaced when dependencies are built.
