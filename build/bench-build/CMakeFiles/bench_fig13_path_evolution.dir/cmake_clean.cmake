file(REMOVE_RECURSE
  "../bench/bench_fig13_path_evolution"
  "../bench/bench_fig13_path_evolution.pdb"
  "CMakeFiles/bench_fig13_path_evolution.dir/bench_fig13_path_evolution.cpp.o"
  "CMakeFiles/bench_fig13_path_evolution.dir/bench_fig13_path_evolution.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_path_evolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
