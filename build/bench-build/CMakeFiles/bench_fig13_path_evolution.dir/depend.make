# Empty dependencies file for bench_fig13_path_evolution.
# This may be replaced when dependencies are built.
