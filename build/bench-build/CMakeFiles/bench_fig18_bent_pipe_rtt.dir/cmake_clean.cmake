file(REMOVE_RECURSE
  "../bench/bench_fig18_bent_pipe_rtt"
  "../bench/bench_fig18_bent_pipe_rtt.pdb"
  "CMakeFiles/bench_fig18_bent_pipe_rtt.dir/bench_fig18_bent_pipe_rtt.cpp.o"
  "CMakeFiles/bench_fig18_bent_pipe_rtt.dir/bench_fig18_bent_pipe_rtt.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_bent_pipe_rtt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
