# Empty compiler generated dependencies file for bench_fig18_bent_pipe_rtt.
# This may be replaced when dependencies are built.
