file(REMOVE_RECURSE
  "../bench/bench_ext_bbr"
  "../bench/bench_ext_bbr.pdb"
  "CMakeFiles/bench_ext_bbr.dir/bench_ext_bbr.cpp.o"
  "CMakeFiles/bench_ext_bbr.dir/bench_ext_bbr.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_bbr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
