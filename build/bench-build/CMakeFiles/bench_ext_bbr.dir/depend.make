# Empty dependencies file for bench_ext_bbr.
# This may be replaced when dependencies are built.
