file(REMOVE_RECURSE
  "../bench/bench_fig19_bent_pipe_tcp"
  "../bench/bench_fig19_bent_pipe_tcp.pdb"
  "CMakeFiles/bench_fig19_bent_pipe_tcp.dir/bench_fig19_bent_pipe_tcp.cpp.o"
  "CMakeFiles/bench_fig19_bent_pipe_tcp.dir/bench_fig19_bent_pipe_tcp.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig19_bent_pipe_tcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
