# Empty compiler generated dependencies file for bench_fig19_bent_pipe_tcp.
# This may be replaced when dependencies are built.
