# Empty compiler generated dependencies file for bench_fig08_path_changes.
# This may be replaced when dependencies are built.
