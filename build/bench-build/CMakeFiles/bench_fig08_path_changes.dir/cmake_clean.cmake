file(REMOVE_RECURSE
  "../bench/bench_fig08_path_changes"
  "../bench/bench_fig08_path_changes.pdb"
  "CMakeFiles/bench_fig08_path_changes.dir/bench_fig08_path_changes.cpp.o"
  "CMakeFiles/bench_fig08_path_changes.dir/bench_fig08_path_changes.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_path_changes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
