file(REMOVE_RECURSE
  "../bench/bench_fig09_time_granularity"
  "../bench/bench_fig09_time_granularity.pdb"
  "CMakeFiles/bench_fig09_time_granularity.dir/bench_fig09_time_granularity.cpp.o"
  "CMakeFiles/bench_fig09_time_granularity.dir/bench_fig09_time_granularity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_time_granularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
