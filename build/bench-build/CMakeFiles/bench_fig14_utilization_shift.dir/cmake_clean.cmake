file(REMOVE_RECURSE
  "../bench/bench_fig14_utilization_shift"
  "../bench/bench_fig14_utilization_shift.pdb"
  "CMakeFiles/bench_fig14_utilization_shift.dir/bench_fig14_utilization_shift.cpp.o"
  "CMakeFiles/bench_fig14_utilization_shift.dir/bench_fig14_utilization_shift.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_utilization_shift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
