# Empty dependencies file for bench_fig14_utilization_shift.
# This may be replaced when dependencies are built.
