file(REMOVE_RECURSE
  "../bench/bench_table1_shells"
  "../bench/bench_table1_shells.pdb"
  "CMakeFiles/bench_table1_shells.dir/bench_table1_shells.cpp.o"
  "CMakeFiles/bench_table1_shells.dir/bench_table1_shells.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_shells.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
