# Empty compiler generated dependencies file for bench_table1_shells.
# This may be replaced when dependencies are built.
