file(REMOVE_RECURSE
  "../bench/bench_ablation_weather"
  "../bench/bench_ablation_weather.pdb"
  "CMakeFiles/bench_ablation_weather.dir/bench_ablation_weather.cpp.o"
  "CMakeFiles/bench_ablation_weather.dir/bench_ablation_weather.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_weather.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
