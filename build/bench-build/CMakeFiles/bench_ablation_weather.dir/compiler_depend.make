# Empty compiler generated dependencies file for bench_ablation_weather.
# This may be replaced when dependencies are built.
