# Empty compiler generated dependencies file for bench_fig15_bottleneck_map.
# This may be replaced when dependencies are built.
