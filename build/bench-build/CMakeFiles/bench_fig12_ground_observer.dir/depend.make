# Empty dependencies file for bench_fig12_ground_observer.
# This may be replaced when dependencies are built.
