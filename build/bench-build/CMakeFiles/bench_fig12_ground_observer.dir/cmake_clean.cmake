file(REMOVE_RECURSE
  "../bench/bench_fig12_ground_observer"
  "../bench/bench_fig12_ground_observer.pdb"
  "CMakeFiles/bench_fig12_ground_observer.dir/bench_fig12_ground_observer.cpp.o"
  "CMakeFiles/bench_fig12_ground_observer.dir/bench_fig12_ground_observer.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_ground_observer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
