# Empty dependencies file for bench_ablation_gs_policy.
# This may be replaced when dependencies are built.
