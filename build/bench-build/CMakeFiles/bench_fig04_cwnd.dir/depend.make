# Empty dependencies file for bench_fig04_cwnd.
# This may be replaced when dependencies are built.
