file(REMOVE_RECURSE
  "../bench/bench_fig04_cwnd"
  "../bench/bench_fig04_cwnd.pdb"
  "CMakeFiles/bench_fig04_cwnd.dir/bench_fig04_cwnd.cpp.o"
  "CMakeFiles/bench_fig04_cwnd.dir/bench_fig04_cwnd.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_cwnd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
