file(REMOVE_RECURSE
  "../bench/bench_fig11_trajectories"
  "../bench/bench_fig11_trajectories.pdb"
  "CMakeFiles/bench_fig11_trajectories.dir/bench_fig11_trajectories.cpp.o"
  "CMakeFiles/bench_fig11_trajectories.dir/bench_fig11_trajectories.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_trajectories.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
