file(REMOVE_RECURSE
  "../bench/bench_ablation_multishell"
  "../bench/bench_ablation_multishell.pdb"
  "CMakeFiles/bench_ablation_multishell.dir/bench_ablation_multishell.cpp.o"
  "CMakeFiles/bench_ablation_multishell.dir/bench_ablation_multishell.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_multishell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
