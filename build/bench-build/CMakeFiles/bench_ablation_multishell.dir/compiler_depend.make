# Empty compiler generated dependencies file for bench_ablation_multishell.
# This may be replaced when dependencies are built.
