# Empty dependencies file for bench_fig05_newreno_vs_vegas.
# This may be replaced when dependencies are built.
