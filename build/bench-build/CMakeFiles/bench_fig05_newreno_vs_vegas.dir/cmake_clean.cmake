file(REMOVE_RECURSE
  "../bench/bench_fig05_newreno_vs_vegas"
  "../bench/bench_fig05_newreno_vs_vegas.pdb"
  "CMakeFiles/bench_fig05_newreno_vs_vegas.dir/bench_fig05_newreno_vs_vegas.cpp.o"
  "CMakeFiles/bench_fig05_newreno_vs_vegas.dir/bench_fig05_newreno_vs_vegas.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_newreno_vs_vegas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
