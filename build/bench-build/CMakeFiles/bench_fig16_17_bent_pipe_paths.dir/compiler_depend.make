# Empty compiler generated dependencies file for bench_fig16_17_bent_pipe_paths.
# This may be replaced when dependencies are built.
