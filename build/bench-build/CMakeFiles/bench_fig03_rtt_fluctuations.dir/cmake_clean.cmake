file(REMOVE_RECURSE
  "../bench/bench_fig03_rtt_fluctuations"
  "../bench/bench_fig03_rtt_fluctuations.pdb"
  "CMakeFiles/bench_fig03_rtt_fluctuations.dir/bench_fig03_rtt_fluctuations.cpp.o"
  "CMakeFiles/bench_fig03_rtt_fluctuations.dir/bench_fig03_rtt_fluctuations.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_rtt_fluctuations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
