# Empty dependencies file for bench_fig03_rtt_fluctuations.
# This may be replaced when dependencies are built.
