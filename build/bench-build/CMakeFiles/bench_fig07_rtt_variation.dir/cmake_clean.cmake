file(REMOVE_RECURSE
  "../bench/bench_fig07_rtt_variation"
  "../bench/bench_fig07_rtt_variation.pdb"
  "CMakeFiles/bench_fig07_rtt_variation.dir/bench_fig07_rtt_variation.cpp.o"
  "CMakeFiles/bench_fig07_rtt_variation.dir/bench_fig07_rtt_variation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_rtt_variation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
