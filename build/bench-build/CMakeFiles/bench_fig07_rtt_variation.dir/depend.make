# Empty dependencies file for bench_fig07_rtt_variation.
# This may be replaced when dependencies are built.
