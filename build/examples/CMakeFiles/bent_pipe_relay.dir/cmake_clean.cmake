file(REMOVE_RECURSE
  "CMakeFiles/bent_pipe_relay.dir/bent_pipe_relay.cpp.o"
  "CMakeFiles/bent_pipe_relay.dir/bent_pipe_relay.cpp.o.d"
  "bent_pipe_relay"
  "bent_pipe_relay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bent_pipe_relay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
