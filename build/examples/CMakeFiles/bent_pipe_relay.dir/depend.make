# Empty dependencies file for bent_pipe_relay.
# This may be replaced when dependencies are built.
