file(REMOVE_RECURSE
  "CMakeFiles/constellation_compare.dir/constellation_compare.cpp.o"
  "CMakeFiles/constellation_compare.dir/constellation_compare.cpp.o.d"
  "constellation_compare"
  "constellation_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/constellation_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
