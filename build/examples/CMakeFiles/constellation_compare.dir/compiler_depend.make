# Empty compiler generated dependencies file for constellation_compare.
# This may be replaced when dependencies are built.
