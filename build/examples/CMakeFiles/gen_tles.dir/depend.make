# Empty dependencies file for gen_tles.
# This may be replaced when dependencies are built.
