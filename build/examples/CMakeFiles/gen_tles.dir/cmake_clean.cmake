file(REMOVE_RECURSE
  "CMakeFiles/gen_tles.dir/gen_tles.cpp.o"
  "CMakeFiles/gen_tles.dir/gen_tles.cpp.o.d"
  "gen_tles"
  "gen_tles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gen_tles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
