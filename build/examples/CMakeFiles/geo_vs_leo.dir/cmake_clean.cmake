file(REMOVE_RECURSE
  "CMakeFiles/geo_vs_leo.dir/geo_vs_leo.cpp.o"
  "CMakeFiles/geo_vs_leo.dir/geo_vs_leo.cpp.o.d"
  "geo_vs_leo"
  "geo_vs_leo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geo_vs_leo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
