# Empty dependencies file for geo_vs_leo.
# This may be replaced when dependencies are built.
