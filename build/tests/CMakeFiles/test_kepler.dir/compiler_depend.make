# Empty compiler generated dependencies file for test_kepler.
# This may be replaced when dependencies are built.
