file(REMOVE_RECURSE
  "CMakeFiles/test_kepler.dir/test_kepler.cpp.o"
  "CMakeFiles/test_kepler.dir/test_kepler.cpp.o.d"
  "test_kepler"
  "test_kepler.pdb"
  "test_kepler[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kepler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
