file(REMOVE_RECURSE
  "CMakeFiles/test_isl.dir/test_isl.cpp.o"
  "CMakeFiles/test_isl.dir/test_isl.cpp.o.d"
  "test_isl"
  "test_isl.pdb"
  "test_isl[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_isl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
