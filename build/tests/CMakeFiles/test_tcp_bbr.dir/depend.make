# Empty dependencies file for test_tcp_bbr.
# This may be replaced when dependencies are built.
