file(REMOVE_RECURSE
  "CMakeFiles/test_tcp_bbr.dir/test_tcp_bbr.cpp.o"
  "CMakeFiles/test_tcp_bbr.dir/test_tcp_bbr.cpp.o.d"
  "test_tcp_bbr"
  "test_tcp_bbr.pdb"
  "test_tcp_bbr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tcp_bbr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
