# Empty dependencies file for test_sgp4.
# This may be replaced when dependencies are built.
