# Empty compiler generated dependencies file for test_net_device.
# This may be replaced when dependencies are built.
