file(REMOVE_RECURSE
  "CMakeFiles/test_net_device.dir/test_net_device.cpp.o"
  "CMakeFiles/test_net_device.dir/test_net_device.cpp.o.d"
  "test_net_device"
  "test_net_device.pdb"
  "test_net_device[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_net_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
