file(REMOVE_RECURSE
  "CMakeFiles/test_coords.dir/test_coords.cpp.o"
  "CMakeFiles/test_coords.dir/test_coords.cpp.o.d"
  "test_coords"
  "test_coords.pdb"
  "test_coords[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_coords.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
