file(REMOVE_RECURSE
  "CMakeFiles/test_shell_group.dir/test_shell_group.cpp.o"
  "CMakeFiles/test_shell_group.dir/test_shell_group.cpp.o.d"
  "test_shell_group"
  "test_shell_group.pdb"
  "test_shell_group[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_shell_group.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
