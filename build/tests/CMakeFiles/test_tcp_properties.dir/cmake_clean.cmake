file(REMOVE_RECURSE
  "CMakeFiles/test_tcp_properties.dir/test_tcp_properties.cpp.o"
  "CMakeFiles/test_tcp_properties.dir/test_tcp_properties.cpp.o.d"
  "test_tcp_properties"
  "test_tcp_properties.pdb"
  "test_tcp_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tcp_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
