file(REMOVE_RECURSE
  "CMakeFiles/test_leo_network.dir/test_leo_network.cpp.o"
  "CMakeFiles/test_leo_network.dir/test_leo_network.cpp.o.d"
  "test_leo_network"
  "test_leo_network.pdb"
  "test_leo_network[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_leo_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
