# Empty dependencies file for test_leo_network.
# This may be replaced when dependencies are built.
