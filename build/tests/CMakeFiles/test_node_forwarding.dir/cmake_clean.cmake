file(REMOVE_RECURSE
  "CMakeFiles/test_node_forwarding.dir/test_node_forwarding.cpp.o"
  "CMakeFiles/test_node_forwarding.dir/test_node_forwarding.cpp.o.d"
  "test_node_forwarding"
  "test_node_forwarding.pdb"
  "test_node_forwarding[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_node_forwarding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
