# Empty dependencies file for test_node_forwarding.
# This may be replaced when dependencies are built.
