file(REMOVE_RECURSE
  "CMakeFiles/test_weather.dir/test_weather.cpp.o"
  "CMakeFiles/test_weather.dir/test_weather.cpp.o.d"
  "test_weather"
  "test_weather.pdb"
  "test_weather[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_weather.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
