# Empty compiler generated dependencies file for test_weather.
# This may be replaced when dependencies are built.
