# Empty compiler generated dependencies file for test_path_analysis.
# This may be replaced when dependencies are built.
