file(REMOVE_RECURSE
  "CMakeFiles/test_path_analysis.dir/test_path_analysis.cpp.o"
  "CMakeFiles/test_path_analysis.dir/test_path_analysis.cpp.o.d"
  "test_path_analysis"
  "test_path_analysis.pdb"
  "test_path_analysis[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_path_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
