file(REMOVE_RECURSE
  "CMakeFiles/test_orbit_properties.dir/test_orbit_properties.cpp.o"
  "CMakeFiles/test_orbit_properties.dir/test_orbit_properties.cpp.o.d"
  "test_orbit_properties"
  "test_orbit_properties.pdb"
  "test_orbit_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_orbit_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
