# Empty dependencies file for test_orbit_properties.
# This may be replaced when dependencies are built.
