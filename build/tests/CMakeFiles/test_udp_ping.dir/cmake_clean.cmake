file(REMOVE_RECURSE
  "CMakeFiles/test_udp_ping.dir/test_udp_ping.cpp.o"
  "CMakeFiles/test_udp_ping.dir/test_udp_ping.cpp.o.d"
  "test_udp_ping"
  "test_udp_ping.pdb"
  "test_udp_ping[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_udp_ping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
