# Empty dependencies file for test_udp_ping.
# This may be replaced when dependencies are built.
