file(REMOVE_RECURSE
  "CMakeFiles/test_udp_properties.dir/test_udp_properties.cpp.o"
  "CMakeFiles/test_udp_properties.dir/test_udp_properties.cpp.o.d"
  "test_udp_properties"
  "test_udp_properties.pdb"
  "test_udp_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_udp_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
