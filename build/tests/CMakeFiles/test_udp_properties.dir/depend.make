# Empty dependencies file for test_udp_properties.
# This may be replaced when dependencies are built.
