file(REMOVE_RECURSE
  "CMakeFiles/test_cities.dir/test_cities.cpp.o"
  "CMakeFiles/test_cities.dir/test_cities.cpp.o.d"
  "test_cities"
  "test_cities.pdb"
  "test_cities[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cities.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
