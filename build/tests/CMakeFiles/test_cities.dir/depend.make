# Empty dependencies file for test_cities.
# This may be replaced when dependencies are built.
