# Empty dependencies file for test_bent_pipe.
# This may be replaced when dependencies are built.
