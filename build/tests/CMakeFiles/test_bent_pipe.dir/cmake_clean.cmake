file(REMOVE_RECURSE
  "CMakeFiles/test_bent_pipe.dir/test_bent_pipe.cpp.o"
  "CMakeFiles/test_bent_pipe.dir/test_bent_pipe.cpp.o.d"
  "test_bent_pipe"
  "test_bent_pipe.pdb"
  "test_bent_pipe[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bent_pipe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
