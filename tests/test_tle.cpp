#include "src/orbit/tle.hpp"

#include <gtest/gtest.h>

#include "src/orbit/kepler.hpp"
#include "src/orbit/sgp4.hpp"
#include "src/orbit/time.hpp"

namespace hypatia::orbit {
namespace {

JulianDate epoch() { return julian_date_from_utc(2000, 1, 1, 0, 0, 0.0); }

Tle sample_tle() {
    const auto kep = KeplerianElements::circular(630.0, 51.9, 123.4567, 42.42, epoch());
    return Tle::from_kepler(kep, 1234, "Kuiper-1234");
}

TEST(TleChecksum, KnownIssLine) {
    // Real ISS TLE line 1 (checksum digit is the trailing '7').
    const std::string l1 =
        "1 25544U 98067A   08264.51782528 -.00002182  00000-0 -11606-4 0  292";
    EXPECT_EQ(tle_checksum(l1), 7);
}

TEST(TleFormat, LinesAre69Chars) {
    const auto tle = sample_tle();
    EXPECT_EQ(tle.line1().size(), 69u);
    EXPECT_EQ(tle.line2().size(), 69u);
}

TEST(TleFormat, ChecksumsSelfConsistent) {
    const auto tle = sample_tle();
    for (const auto& line : {tle.line1(), tle.line2()}) {
        EXPECT_EQ(tle_checksum(line.substr(0, 68)), line[68] - '0') << line;
    }
}

TEST(TleRoundTrip, FieldsSurviveFormatParse) {
    const auto tle = sample_tle();
    const auto parsed = Tle::parse(tle.line1(), tle.line2());
    EXPECT_EQ(parsed.satellite_number, 1234);
    EXPECT_NEAR(parsed.inclination_deg, 51.9, 1e-4);
    EXPECT_NEAR(parsed.raan_deg, 123.4567, 1e-4);
    EXPECT_NEAR(parsed.eccentricity, 0.0, 1e-7);
    EXPECT_NEAR(parsed.mean_anomaly_deg, 42.42, 1e-4);
    EXPECT_NEAR(parsed.mean_motion_rev_per_day, tle.mean_motion_rev_per_day, 1e-7);
    EXPECT_NEAR(parsed.epoch.seconds_since(epoch()), 0.0, 1e-2);
}

TEST(TleRoundTrip, PropagationMatchesDirectKepler) {
    // The paper's validation: elements -> TLE -> propagate should produce
    // the same constellation as direct initialization from the elements.
    const auto kep = KeplerianElements::circular(550.0, 53.0, 200.0, 300.0, epoch());
    const Sgp4 direct(sgp4_elements_from_kepler(kep));
    const auto tle = Tle::from_kepler(kep, 42);
    const auto parsed = Tle::parse(tle.line1(), tle.line2());
    const Sgp4 via_tle(parsed.to_sgp4_elements());
    for (double t : {0.0, 50.0, 100.0, 200.0}) {
        const auto a = direct.propagate_minutes(t).position_km;
        const auto b = via_tle.propagate_minutes(t).position_km;
        // TLE fields quantize angles to 1e-4 deg -> tens of metres of
        // position difference; allow 2 km for the worst alignment.
        EXPECT_LT(a.distance_to(b), 2.0) << t;
    }
}

TEST(TleParse, RejectsBadChecksum) {
    auto tle = sample_tle();
    std::string l1 = tle.line1();
    l1[68] = l1[68] == '0' ? '1' : '0';
    EXPECT_THROW(Tle::parse(l1, tle.line2()), std::invalid_argument);
}

TEST(TleParse, RejectsShortLine) {
    EXPECT_THROW(Tle::parse("1 00001U", "2 00001"), std::invalid_argument);
}

TEST(TleParse, RejectsMismatchedSatNumbers) {
    const auto a = sample_tle();
    auto b = sample_tle();
    b.satellite_number = 9999;
    EXPECT_THROW(Tle::parse(a.line1(), b.line2()), std::invalid_argument);
}

TEST(TleParse, RejectsWrongLineOrder) {
    const auto tle = sample_tle();
    EXPECT_THROW(Tle::parse(tle.line2(), tle.line1()), std::invalid_argument);
}

// Rewrites columns [pos, pos+text.size()) of a line and repairs the
// checksum so field-level validation (not the checksum) is what trips.
std::string corrupt(std::string line, std::size_t pos, const std::string& text) {
    line.replace(pos, text.size(), text);
    line[68] = static_cast<char>('0' + tle_checksum(line.substr(0, 68)));
    return line;
}

TEST(TleParse, TruncatedLineErrorNamesLength) {
    const auto tle = sample_tle();
    try {
        Tle::parse(tle.line1().substr(0, 40), tle.line2());
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
        EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos)
            << e.what();
    }
}

TEST(TleParse, ChecksumErrorNamesDigits) {
    const auto tle = sample_tle();
    std::string l1 = tle.line1();
    l1[68] = l1[68] == '0' ? '1' : '0';
    try {
        Tle::parse(l1, tle.line2());
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
        EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos)
            << e.what();
    }
}

TEST(TleParse, RejectsNonNumericSatNumber) {
    const auto tle = sample_tle();
    const std::string l1 = corrupt(tle.line1(), 2, "12a34");
    try {
        Tle::parse(l1, tle.line2());
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
        EXPECT_NE(std::string(e.what()).find("satellite number"), std::string::npos)
            << e.what();
    }
}

TEST(TleParse, RejectsNonNumericInclination) {
    const auto tle = sample_tle();
    const std::string l2 = corrupt(tle.line2(), 8, "  bad.90");
    EXPECT_THROW(Tle::parse(tle.line1(), l2), std::invalid_argument);
}

TEST(TleParse, RejectsOutOfRangeInclination) {
    const auto tle = sample_tle();
    const std::string l2 = corrupt(tle.line2(), 8, "181.0000");
    try {
        Tle::parse(tle.line1(), l2);
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
        EXPECT_NE(std::string(e.what()).find("inclination"), std::string::npos)
            << e.what();
    }
}

TEST(TleParse, RejectsNegativeMeanMotion) {
    const auto tle = sample_tle();
    const std::string l2 = corrupt(tle.line2(), 52, "-5.00000000");
    EXPECT_THROW(Tle::parse(tle.line1(), l2), std::invalid_argument);
}

TEST(TleParse, RejectsOutOfRangeDayOfYear) {
    const auto tle = sample_tle();
    const std::string l1 = corrupt(tle.line1(), 20, "400.00000000");
    EXPECT_THROW(Tle::parse(l1, tle.line2()), std::invalid_argument);
}

TEST(TleParse, RejectsNonDigitEccentricity) {
    const auto tle = sample_tle();
    const std::string l2 = corrupt(tle.line2(), 26, "00x0000");
    EXPECT_THROW(Tle::parse(tle.line1(), l2), std::invalid_argument);
}

TEST(TleParse, RejectsCorruptBstarExponent) {
    const auto tle = sample_tle();
    const std::string l1 = corrupt(tle.line1(), 53, " 11423-x");
    EXPECT_THROW(Tle::parse(l1, tle.line2()), std::invalid_argument);
}

TEST(TleEpoch, YearWindowConvention) {
    // Epoch years 57-99 are 1900s, 00-56 are 2000s. Our epoch is 2000.
    const auto tle = sample_tle();
    const auto parsed = Tle::parse(tle.line1(), tle.line2());
    EXPECT_NEAR(parsed.epoch.total(), epoch().total(), 1e-6);
}

TEST(TleBstar, ExponentFieldRoundTrips) {
    auto tle = sample_tle();
    tle.bstar = 1.1423e-5;
    const auto parsed = Tle::parse(tle.line1(), tle.line2());
    EXPECT_NEAR(parsed.bstar, 1.1423e-5, 1e-9);
}

TEST(TleBstar, NegativeExponentFieldRoundTrips) {
    auto tle = sample_tle();
    tle.bstar = -3.4e-4;
    const auto parsed = Tle::parse(tle.line1(), tle.line2());
    EXPECT_NEAR(parsed.bstar, -3.4e-4, 1e-8);
}

TEST(TleBstar, ZeroFieldRoundTrips) {
    const auto tle = sample_tle();
    const auto parsed = Tle::parse(tle.line1(), tle.line2());
    EXPECT_EQ(parsed.bstar, 0.0);
}

}  // namespace
}  // namespace hypatia::orbit
