#include "src/topology/shell_group.hpp"

#include <gtest/gtest.h>

#include "src/routing/multi_shell.hpp"
#include "src/routing/shortest_path.hpp"
#include "src/topology/cities.hpp"

namespace hypatia::topo {
namespace {

std::vector<ShellParams> two_minis() {
    return {
        {"mini_a", 550.0, 4, 5, 53.0, 25.0, 0.5, PropagatorKind::kSgp4},
        {"mini_b", 630.0, 3, 6, 42.0, 30.0, 0.5, PropagatorKind::kSgp4},
    };
}

TEST(ShellGroup, GlobalIdSpace) {
    const ShellGroup g(two_minis(), default_epoch());
    EXPECT_EQ(g.num_shells(), 2);
    EXPECT_EQ(g.num_satellites(), 20 + 18);
    EXPECT_EQ(g.shell_of(0), 0);
    EXPECT_EQ(g.shell_of(19), 0);
    EXPECT_EQ(g.shell_of(20), 1);
    EXPECT_EQ(g.local_id(20), 0);
    EXPECT_EQ(g.global_id(1, 3), 23);
}

TEST(ShellGroup, RejectsEmpty) {
    EXPECT_THROW(ShellGroup({}, default_epoch()), std::invalid_argument);
}

TEST(ShellGroup, PositionsMatchUnderlyingShells) {
    const ShellGroup g(two_minis(), default_epoch());
    const SatelliteMobility& mob1 = g.mobility(1);
    for (int local = 0; local < 5; ++local) {
        const Vec3 a = g.position_ecef(g.global_id(1, local), 7 * kNsPerSec);
        const Vec3 b = mob1.position_ecef(local, 7 * kNsPerSec);
        EXPECT_LT(a.distance_to(b), 1e-9);
    }
}

TEST(ShellGroup, IslsStayWithinShells) {
    const ShellGroup g(two_minis(), default_epoch());
    EXPECT_EQ(g.isls().size(), 2u * 20 + 2u * 18);
    for (const auto& isl : g.isls()) {
        EXPECT_EQ(g.shell_of(isl.sat_a), g.shell_of(isl.sat_b));
    }
}

TEST(ShellGroup, VisibilityMergesShells) {
    const ShellGroup g({shell_by_name("kuiper_k1"), shell_by_name("kuiper_k2")},
                       default_epoch());
    const auto singapore = city_by_name("Singapore");
    const auto merged = g.visible_satellites(singapore, 0);
    const auto only_k1 =
        visible_satellites(singapore, g.mobility(0), 0);
    EXPECT_GT(merged.size(), only_k1.size());
    // Global ids from the second shell start at |K1|.
    bool saw_second_shell = false;
    for (const auto& e : merged) {
        if (e.sat_id >= g.constellation(0).num_satellites()) saw_second_shell = true;
    }
    EXPECT_TRUE(saw_second_shell);
}

TEST(ShellGroup, FullKuiperCoverageSupersetOfK1) {
    const ShellGroup full({shell_by_name("kuiper_k1"), shell_by_name("kuiper_k2"),
                           shell_by_name("kuiper_k3")},
                          default_epoch());
    const auto miami = city_by_name("Miami");
    for (TimeNs t = 0; t < 60 * kNsPerSec; t += 20 * kNsPerSec) {
        const bool k1 = has_coverage(miami, full.mobility(0), t);
        EXPECT_LE(k1, full.has_coverage(miami, t));  // k1 covered => group covered
    }
}

TEST(MultiShellSnapshot, RoutesAcrossTheGroundBetweenShells) {
    // Without inter-shell ISLs, a path can still switch shells through the
    // GS endpoints' multiple GSL options; routing must simply work.
    const ShellGroup g({shell_by_name("kuiper_k1"), shell_by_name("kuiper_k2")},
                       default_epoch());
    std::vector<orbit::GroundStation> gses = {city_by_name("Manila"),
                                              city_by_name("Dalian")};
    const auto graph = route::build_group_snapshot(g, gses, 0);
    const auto tree = route::dijkstra_to(graph, graph.gs_node(1));
    const double d = tree.distance_km[static_cast<std::size_t>(graph.gs_node(0))];
    EXPECT_LT(d, 1e5);
    // Multi-shell distance can only be <= the single-shell distance.
    const Constellation k1(shell_by_name("kuiper_k1"), default_epoch());
    const SatelliteMobility mob(k1);
    const auto isls = build_isls(k1, IslPattern::kPlusGrid);
    const auto single = route::build_snapshot(mob, isls, gses, 0);
    const auto single_tree = route::dijkstra_to(single, single.gs_node(1));
    EXPECT_LE(d, single_tree.distance_km[static_cast<std::size_t>(single.gs_node(0))] +
                     1e-6);
}

TEST(GeoShell, RingAtGeostationaryAltitude) {
    const auto params = geostationary_shell(3);
    const Constellation geo(params, default_epoch());
    const SatelliteMobility mob(geo);
    for (int sat = 0; sat < 3; ++sat) {
        const Vec3 p = mob.position_ecef(sat, 0);
        EXPECT_NEAR(p.norm() - orbit::Wgs72::kEarthRadiusKm, 35786.0, 100.0);
        EXPECT_NEAR(p.z, 0.0, 50.0);  // equatorial
    }
}

TEST(GeoShell, StationaryRelativeToEarth) {
    const Constellation geo(geostationary_shell(3), default_epoch());
    const SatelliteMobility mob(geo);
    const Vec3 p0 = mob.position_ecef(0, 0);
    const Vec3 p1 = mob.position_ecef(0, 600 * kNsPerSec);
    // Over 10 minutes a geostationary satellite moves < ~40 km in ECEF
    // (only J2/modelling residue); a LEO satellite would move ~4,500 km.
    EXPECT_LT(p0.distance_to(p1), 50.0);
}

TEST(GeoShell, GsGeoGsPathHasGeoLatency) {
    // The paper's section 2.4 GEO baseline: bent-pipe through one GEO
    // satellite costs hundreds of milliseconds.
    const Constellation geo(geostationary_shell(3), default_epoch());
    const SatelliteMobility mob(geo);
    std::vector<orbit::GroundStation> gses = {city_by_name("Miami"),
                                              city_by_name("Bogota")};
    const auto graph = route::build_snapshot(mob, {}, gses, 0);
    const auto tree = route::dijkstra_to(graph, graph.gs_node(1));
    const double d = tree.distance_km[static_cast<std::size_t>(graph.gs_node(0))];
    ASSERT_NE(d, route::kInfDistance);
    const double rtt_ms = 2.0 * d / orbit::kSpeedOfLightKmPerS * 1e3;
    EXPECT_GT(rtt_ms, 450.0);
    EXPECT_LT(rtt_ms, 600.0);
}

}  // namespace
}  // namespace hypatia::topo
