// Flow-level engine: max-min solver correctness (single/shared/disjoint
// bottlenecks, caps, the max-min optimality property), deterministic
// traffic generation, and the epoch-stepped engine over a real
// constellation (completions, capacity changes, utilization export).
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "src/flowsim/engine.hpp"
#include "src/flowsim/solver.hpp"
#include "src/flowsim/traffic.hpp"
#include "src/obs/observability.hpp"
#include "src/topology/cities.hpp"
#include "src/viz/utilization_export.hpp"

namespace hypatia::flowsim {
namespace {

// ---------------------------------------------------------------- solver

TEST(MaxMinSolver, SingleBottleneckSplitsEvenly) {
    FairShareProblem p;
    p.capacity_bps = {10.0};
    p.add_flow({0});
    p.add_flow({0});
    const auto r = solve_max_min(p);
    ASSERT_EQ(r.rate_bps.size(), 2u);
    EXPECT_TRUE(r.converged);
    EXPECT_DOUBLE_EQ(r.rate_bps[0], 5.0);
    EXPECT_DOUBLE_EQ(r.rate_bps[1], 5.0);
}

TEST(MaxMinSolver, SharedBottleneckFairness) {
    // Classic example: link 0 cap 30, link 1 cap 10. Flow A crosses only
    // link 0; flows B, C cross both. B and C freeze at 5 (link 1); A then
    // fills link 0's remaining headroom: 30 - 10 = 20.
    FairShareProblem p;
    p.capacity_bps = {30.0, 10.0};
    p.add_flow({0});
    p.add_flow({0, 1});
    p.add_flow({0, 1});
    const auto r = solve_max_min(p);
    EXPECT_DOUBLE_EQ(r.rate_bps[1], 5.0);
    EXPECT_DOUBLE_EQ(r.rate_bps[2], 5.0);
    EXPECT_DOUBLE_EQ(r.rate_bps[0], 20.0);
    EXPECT_TRUE(allocation_feasible(p, r.rate_bps));
}

TEST(MaxMinSolver, DisjointPathsGetFullCapacity) {
    FairShareProblem p;
    p.capacity_bps = {4.0, 7.0};
    p.add_flow({0});
    p.add_flow({1});
    const auto r = solve_max_min(p);
    EXPECT_DOUBLE_EQ(r.rate_bps[0], 4.0);
    EXPECT_DOUBLE_EQ(r.rate_bps[1], 7.0);
}

TEST(MaxMinSolver, RateCapBindsBelowFairShare) {
    FairShareProblem p;
    p.capacity_bps = {10.0};
    p.add_flow({0}, /*cap=*/2.0);
    p.add_flow({0});
    const auto r = solve_max_min(p);
    // The capped flow stops at 2; the other takes the released headroom.
    EXPECT_DOUBLE_EQ(r.rate_bps[0], 2.0);
    EXPECT_DOUBLE_EQ(r.rate_bps[1], 8.0);
}

TEST(MaxMinSolver, CapAboveFairShareIsInert) {
    FairShareProblem p;
    p.capacity_bps = {10.0};
    p.add_flow({0}, /*cap=*/100.0);
    p.add_flow({0});
    const auto r = solve_max_min(p);
    EXPECT_DOUBLE_EQ(r.rate_bps[0], 5.0);
    EXPECT_DOUBLE_EQ(r.rate_bps[1], 5.0);
}

TEST(MaxMinSolver, EmptyPathLimitedByCapOnly) {
    FairShareProblem p;
    p.capacity_bps = {10.0};
    p.add_flow({}, /*cap=*/3.0);
    p.add_flow({0});
    const auto r = solve_max_min(p);
    EXPECT_DOUBLE_EQ(r.rate_bps[0], 3.0);
    EXPECT_DOUBLE_EQ(r.rate_bps[1], 10.0);
}

TEST(MaxMinSolver, ZeroCapacityLinkZeroesItsFlows) {
    FairShareProblem p;
    p.capacity_bps = {0.0, 10.0};
    p.add_flow({0, 1});
    p.add_flow({1});
    const auto r = solve_max_min(p);
    EXPECT_DOUBLE_EQ(r.rate_bps[0], 0.0);
    EXPECT_DOUBLE_EQ(r.rate_bps[1], 10.0);
}

// The max-min characterization: an allocation is max-min fair iff every
// flow either sits at its rate cap or crosses a saturated link on which
// it has the maximal rate. (Then no flow can be increased without
// decreasing a flow whose rate is no larger.)
void expect_max_min_fair(const FairShareProblem& p, const FairShareResult& r) {
    ASSERT_TRUE(r.converged);
    ASSERT_TRUE(allocation_feasible(p, r.rate_bps, 1e-7));
    std::vector<double> load(p.capacity_bps.size(), 0.0);
    std::vector<double> max_rate_on(p.capacity_bps.size(), 0.0);
    for (std::size_t f = 0; f < p.num_flows(); ++f) {
        for (std::uint32_t i = p.flow_offset[f]; i < p.flow_offset[f + 1]; ++i) {
            load[p.flow_links[i]] += r.rate_bps[f];
            max_rate_on[p.flow_links[i]] =
                std::max(max_rate_on[p.flow_links[i]], r.rate_bps[f]);
        }
    }
    for (std::size_t f = 0; f < p.num_flows(); ++f) {
        const double cap = p.rate_cap_bps.empty() ? kNoRateCap : p.rate_cap_bps[f];
        if (cap != kNoRateCap && r.rate_bps[f] >= cap - 1e-7) continue;  // at cap
        bool bottlenecked = false;
        for (std::uint32_t i = p.flow_offset[f];
             !bottlenecked && i < p.flow_offset[f + 1]; ++i) {
            const std::uint32_t l = p.flow_links[i];
            const bool saturated = load[l] >= p.capacity_bps[l] - 1e-6;
            const bool maximal = r.rate_bps[f] >= max_rate_on[l] - 1e-6;
            bottlenecked = saturated && maximal;
        }
        EXPECT_TRUE(bottlenecked) << "flow " << f << " rate " << r.rate_bps[f]
                                  << " is not bottlenecked anywhere";
    }
}

TEST(MaxMinSolver, PropertyRandomProblemsAreMaxMinFair) {
    std::mt19937 gen(7);
    for (int instance = 0; instance < 60; ++instance) {
        FairShareProblem p;
        const int num_links = 2 + static_cast<int>(gen() % 12);
        for (int l = 0; l < num_links; ++l) {
            p.capacity_bps.push_back(1.0 + static_cast<double>(gen() % 1000) / 10.0);
        }
        const int num_flows = 1 + static_cast<int>(gen() % 40);
        for (int f = 0; f < num_flows; ++f) {
            std::vector<std::uint32_t> links;
            const int path_len = 1 + static_cast<int>(gen() % 4);
            for (int h = 0; h < path_len; ++h) {
                const auto l = static_cast<std::uint32_t>(gen() % num_links);
                if (std::find(links.begin(), links.end(), l) == links.end()) {
                    links.push_back(l);
                }
            }
            const double cap = (gen() % 3 == 0)
                                   ? 0.5 + static_cast<double>(gen() % 200) / 10.0
                                   : kNoRateCap;
            p.add_flow(links, cap);
        }
        const auto r = solve_max_min(p);
        expect_max_min_fair(p, r);
    }
}

// ------------------------------------------------------------- generators

TEST(Traffic, PoissonIsSeededAndSorted) {
    PoissonTrafficConfig cfg;
    cfg.num_gs = 10;
    cfg.arrivals_per_s = 50.0;
    cfg.window = 10 * kNsPerSec;
    cfg.seed = 3;
    const auto a = poisson_traffic(cfg);
    const auto b = poisson_traffic(cfg);
    ASSERT_EQ(a.size(), b.size());
    EXPECT_GT(a.size(), 100u);  // ~500 expected
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a.flows[i].arrival, b.flows[i].arrival);
        EXPECT_EQ(a.flows[i].src_gs, b.flows[i].src_gs);
        EXPECT_NE(a.flows[i].src_gs, a.flows[i].dst_gs);
        EXPECT_GE(a.flows[i].arrival, 0);
        EXPECT_LT(a.flows[i].arrival, cfg.window);
        EXPECT_GT(a.flows[i].size_bits, 0.0);
        if (i > 0) EXPECT_GE(a.flows[i].arrival, a.flows[i - 1].arrival);
    }
    cfg.seed = 4;
    const auto c = poisson_traffic(cfg);
    EXPECT_TRUE(c.size() != a.size() ||
                c.flows.front().arrival != a.flows.front().arrival);
}

TEST(Traffic, GravityFavorsTopRankedCities) {
    GravityTrafficConfig cfg;
    cfg.num_gs = 100;
    cfg.num_flows = 5000;
    cfg.seed = 11;
    const auto m = gravity_traffic(cfg);
    ASSERT_EQ(m.size(), 5000u);
    std::size_t top10 = 0, bottom10 = 0;
    for (const auto& f : m.flows) {
        ASSERT_GE(f.src_gs, 0);
        ASSERT_LT(f.src_gs, 100);
        ASSERT_NE(f.src_gs, f.dst_gs);
        if (f.src_gs < 10) ++top10;
        if (f.src_gs >= 90) ++bottom10;
    }
    // Zipf-ish weights: the 10 most populous cities originate far more
    // flows than the 10 least populous.
    EXPECT_GT(top10, 4 * bottom10);
}

TEST(Traffic, CbrBackgroundCapsEveryFlow) {
    const auto m = cbr_background({{0, 1}, {2, 3}}, 5e6);
    ASSERT_EQ(m.size(), 2u);
    for (const auto& f : m.flows) {
        EXPECT_EQ(f.arrival, 0);
        EXPECT_DOUBLE_EQ(f.rate_cap_bps, 5e6);
        EXPECT_TRUE(std::isinf(f.size_bits));
    }
}

// ---------------------------------------------------------------- engine

core::Scenario small_scenario() {
    core::Scenario s;
    s.shell = topo::shell_by_name("kuiper_k1");
    s.ground_stations = {topo::city_by_name("Manila"), topo::city_by_name("Dalian"),
                         topo::city_by_name("Tokyo"), topo::city_by_name("Seoul")};
    return s;
}

TEST(FlowSimEngine, LongRunningFlowSaturatesBottleneck) {
    auto matrix = cbr_background({{0, 1}}, kNoRateCap);
    EngineOptions opts;
    opts.epoch = kNsPerSec;
    opts.duration = 3 * kNsPerSec;
    Engine engine(small_scenario(), matrix, opts);
    const auto summary = engine.run();
    ASSERT_EQ(summary.epochs.size(), 3u);
    EXPECT_TRUE(summary.all_converged);
    // A single flow is bottlenecked by one 10 Mbit/s link on its path.
    EXPECT_NEAR(summary.flows[0].last_rate_bps, 10e6, 1.0);
    EXPECT_NEAR(summary.flows[0].bits_sent, 30e6, 10.0);
    EXPECT_EQ(summary.completed, 0u);
}

TEST(FlowSimEngine, FiniteFlowCompletesAtExactFluidTime) {
    TrafficMatrix matrix;
    Flow flow;
    flow.src_gs = 0;
    flow.dst_gs = 1;
    flow.size_bits = 25e6;  // 2.5 s at 10 Mbit/s
    matrix.flows.push_back(flow);
    EngineOptions opts;
    opts.epoch = kNsPerSec;
    opts.duration = 5 * kNsPerSec;
    Engine engine(small_scenario(), matrix, opts);
    const auto summary = engine.run();
    EXPECT_EQ(summary.completed, 1u);
    EXPECT_NEAR(ns_to_seconds(summary.flows[0].completion), 2.5, 0.01);
    EXPECT_NEAR(summary.flows[0].bits_sent, 25e6, 10.0);
}

TEST(FlowSimEngine, SharedBottleneckSplitsFairlyAndCbrIsCapped) {
    // Two flows Manila -> Dalian: the shared bottleneck halves both;
    // a capped background flow keeps its CBR rate.
    auto matrix = cbr_background({{0, 1}}, kNoRateCap);
    matrix.merge(cbr_background({{0, 1}}, kNoRateCap));
    matrix.merge(cbr_background({{2, 3}}, 1e6));
    EngineOptions opts;
    opts.epoch = kNsPerSec;
    opts.duration = 2 * kNsPerSec;
    Engine engine(small_scenario(), matrix, opts);
    const auto summary = engine.run();
    int halved = 0, capped = 0;
    for (const auto& outcome : summary.flows) {
        if (std::abs(outcome.last_rate_bps - 5e6) < 1.0) ++halved;
        if (std::abs(outcome.last_rate_bps - 1e6) < 1.0) ++capped;
    }
    EXPECT_EQ(halved, 2);
    EXPECT_EQ(capped, 1);
}

TEST(FlowSimEngine, CapacityChangeAcrossEpochsReallocates) {
    auto matrix = cbr_background({{0, 1}}, kNoRateCap);
    EngineOptions opts;
    opts.epoch = kNsPerSec;
    opts.duration = 2 * kNsPerSec;
    opts.tracked_flows = {0};
    // Full capacity in epoch 0, half capacity from epoch 1 on.
    opts.capacity_factor = [](TimeNs t) { return t < kNsPerSec ? 1.0 : 0.5; };
    Engine engine(small_scenario(), matrix, opts);
    const auto summary = engine.run();
    ASSERT_EQ(summary.tracked_series.size(), 1u);
    ASSERT_EQ(summary.tracked_series[0].size(), 2u);
    EXPECT_NEAR(summary.tracked_series[0][0].second, 10e6, 1.0);
    EXPECT_NEAR(summary.tracked_series[0][1].second, 5e6, 1.0);
    // No link may exceed its (scaled) capacity in any epoch.
    for (const auto& epoch : summary.epochs) {
        EXPECT_LE(epoch.max_link_utilization, 1.0 + 1e-9);
    }
}

TEST(FlowSimEngine, ResolveOnCompletionReallocatesMidEpoch) {
    // Two flows share a bottleneck; the short one finishes mid-epoch and
    // exact-fluid mode hands its share to the survivor immediately.
    TrafficMatrix matrix;
    Flow short_flow;
    short_flow.src_gs = 0;
    short_flow.dst_gs = 1;
    short_flow.size_bits = 5e6;  // 1 s at the 5 Mbit/s fair share
    matrix.flows.push_back(short_flow);
    matrix.merge(cbr_background({{0, 1}}, kNoRateCap));
    EngineOptions opts;
    opts.epoch = 4 * kNsPerSec;
    opts.duration = 4 * kNsPerSec;
    opts.resolve_on_completion = true;
    Engine engine(small_scenario(), matrix, opts);
    const auto summary = engine.run();
    EXPECT_EQ(summary.completed, 1u);
    std::size_t short_id = std::isinf(engine.matrix().flows[0].size_bits) ? 1 : 0;
    const auto& short_outcome = summary.flows[short_id];
    const auto& long_outcome = summary.flows[1 - short_id];
    EXPECT_NEAR(ns_to_seconds(short_outcome.completion), 1.0, 0.01);
    // Survivor: 1 s at 5 Mbit/s + 3 s at 10 Mbit/s = 35 Mbit.
    EXPECT_NEAR(long_outcome.bits_sent, 35e6, 1e3);
}

TEST(FlowSimEngine, DeterministicAcrossRuns) {
    PoissonTrafficConfig cfg;
    cfg.num_gs = 4;
    cfg.arrivals_per_s = 20.0;
    cfg.mean_size_bits = 4e6;
    cfg.window = 3 * kNsPerSec;
    cfg.seed = 5;
    EngineOptions opts;
    opts.epoch = kNsPerSec;
    opts.duration = 5 * kNsPerSec;
    const auto run_once = [&] {
        Engine engine(small_scenario(), poisson_traffic(cfg), opts);
        return engine.run();
    };
    const auto a = run_once();
    const auto b = run_once();
    ASSERT_EQ(a.flows.size(), b.flows.size());
    EXPECT_EQ(a.completed, b.completed);
    for (std::size_t f = 0; f < a.flows.size(); ++f) {
        EXPECT_EQ(a.flows[f].completion, b.flows[f].completion);
        EXPECT_DOUBLE_EQ(a.flows[f].bits_sent, b.flows[f].bits_sent);
    }
}

TEST(FlowSimEngine, UtilizationExportFeedsVizPipeline) {
    auto matrix = cbr_background({{0, 1}, {2, 3}}, kNoRateCap);
    EngineOptions opts;
    opts.epoch = kNsPerSec;
    opts.duration = kNsPerSec;
    opts.record_link_utilization = true;
    Engine engine(small_scenario(), matrix, opts);
    const auto summary = engine.run();
    ASSERT_EQ(engine.num_recorded_epochs(), 1u);
    ASSERT_FALSE(summary.epochs.empty());
    EXPECT_GT(summary.epochs[0].max_link_utilization, 0.0);
    const auto map = viz::flow_isl_utilization_map(engine, 0);
    EXPECT_FALSE(map.empty());
    for (const auto& iu : map) {
        EXPECT_GT(iu.utilization, 0.0);
        EXPECT_LE(iu.utilization, 1.0 + 1e-9);
        EXPECT_GE(iu.lat_a, -90.0);
        EXPECT_LE(iu.lat_a, 90.0);
    }
    const std::string csv = viz::utilization_to_csv(map);
    EXPECT_NE(csv.find("sat_a,sat_b"), std::string::npos);
}

TEST(FlowSimEngine, MetricsAndOutcomesAreRecorded) {
    auto& m = obs::metrics();
    const auto completed_before = m.counter("flowsim.flows_completed").value();
    const auto epochs_before = m.counter("flowsim.epochs").value();
    TrafficMatrix matrix;
    Flow flow;
    flow.src_gs = 0;
    flow.dst_gs = 1;
    flow.size_bits = 1e6;
    matrix.flows.push_back(flow);
    EngineOptions opts;
    opts.epoch = kNsPerSec;
    opts.duration = 2 * kNsPerSec;
    Engine engine(small_scenario(), matrix, opts);
    const auto summary = engine.run();
    EXPECT_EQ(summary.completed, 1u);
    EXPECT_EQ(m.counter("flowsim.flows_completed").value(), completed_before + 1);
    EXPECT_EQ(m.counter("flowsim.epochs").value(), epochs_before + 2);
}

}  // namespace
}  // namespace hypatia::flowsim
