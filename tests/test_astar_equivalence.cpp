// The A*/clustering equivalence suite (DESIGN.md "Full-sky routing"):
// goal-directed search must change the cost of nothing. With clustering
// off, HYPATIA_ROUTE_ALGO=astar must produce byte-identical forwarding
// CSV to Dijkstra at any thread count in both snapshot modes; multi-root
// clustered trees must be exact against a per-member Dijkstra oracle;
// the group (multi-shell) refresher must match from-scratch group
// snapshots; and the workspace buffers must be reused across epochs at
// 30k+ nodes (counted through this binary's global-new hook).
#include "src/routing/shortest_path.hpp"

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/routing/forwarding.hpp"
#include "src/routing/multi_shell.hpp"
#include "src/routing/pair_sweep.hpp"
#include "src/routing/snapshot_refresh.hpp"
#include "src/topology/cities.hpp"
#include "src/topology/constellation.hpp"
#include "src/topology/isl.hpp"
#include "src/topology/mobility.hpp"
#include "src/topology/shell_group.hpp"
#include "src/util/thread_pool.hpp"

// --- Allocation counting hook (for the buffer-reuse pin) -------------------

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(size ? size : 1)) return p;
    throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace hypatia::route {
namespace {

/// Sets an environment variable for the enclosing scope and restores the
/// previous value (or unsets) on destruction.
class EnvGuard {
  public:
    EnvGuard(const char* name, const char* value) : name_(name) {
        if (const char* old = std::getenv(name)) {
            had_old_ = true;
            old_ = old;
        }
        if (value != nullptr) {
            setenv(name, value, 1);
        } else {
            unsetenv(name);
        }
    }
    ~EnvGuard() {
        if (had_old_) {
            setenv(name_.c_str(), old_.c_str(), 1);
        } else {
            unsetenv(name_.c_str());
        }
    }

  private:
    std::string name_;
    bool had_old_ = false;
    std::string old_;
};

topo::ShellParams small_shell(const char* name, double alt_km, int orbits, int sats,
                              double incl_deg, double min_elev_deg) {
    topo::ShellParams p;
    p.name = name;
    p.altitude_km = alt_km;
    p.num_orbits = orbits;
    p.sats_per_orbit = sats;
    p.inclination_deg = incl_deg;
    p.min_elevation_deg = min_elev_deg;
    return p;
}

std::vector<orbit::GroundStation> some_cities(std::size_t n) {
    auto cities = topo::top100_cities();
    cities.erase(cities.begin() + static_cast<std::ptrdiff_t>(n), cities.end());
    return cities;
}

TEST(RouteAlgoEnv, ParsesAstarAndDefaultsToDijkstra) {
    {
        EnvGuard algo("HYPATIA_ROUTE_ALGO", nullptr);
        EXPECT_EQ(route_algo_from_env(), RouteAlgo::kDijkstra);
    }
    {
        EnvGuard algo("HYPATIA_ROUTE_ALGO", "astar");
        EXPECT_EQ(route_algo_from_env(), RouteAlgo::kAstar);
    }
    {
        EnvGuard algo("HYPATIA_ROUTE_ALGO", "bellman-ford");
        EXPECT_EQ(route_algo_from_env(), RouteAlgo::kDijkstra);
    }
}

TEST(DestClusterEnv, ParsesRadiusAndRejectsGarbage) {
    {
        EnvGuard km("HYPATIA_DEST_CLUSTER_KM", nullptr);
        EXPECT_EQ(dest_cluster_km_from_env(), 0.0);
    }
    {
        EnvGuard km("HYPATIA_DEST_CLUSTER_KM", "750.5");
        EXPECT_EQ(dest_cluster_km_from_env(), 750.5);
    }
    {
        EnvGuard km("HYPATIA_DEST_CLUSTER_KM", "-3");
        EXPECT_EQ(dest_cluster_km_from_env(), 0.0);
    }
    {
        EnvGuard km("HYPATIA_DEST_CLUSTER_KM", "lots");
        EXPECT_EQ(dest_cluster_km_from_env(), 0.0);
    }
}

TEST(ConstellationPresets, RegistryShapes) {
    const auto& full_sky = topo::full_sky_shells();
    ASSERT_EQ(full_sky.size(), 10u);
    int full_sky_sats = 0;
    for (const auto& s : full_sky) full_sky_sats += s.num_satellites();
    EXPECT_EQ(full_sky_sats, 9316);

    const auto& gen2 = topo::starlink_gen2_shells();
    ASSERT_EQ(gen2.size(), 9u);
    int gen2_sats = 0;
    for (const auto& s : gen2) {
        gen2_sats += s.num_satellites();
        EXPECT_EQ(s.min_elevation_deg, 25.0);
    }
    EXPECT_EQ(gen2_sats, 29988);

    EXPECT_EQ(topo::constellation_shells("full_sky").size(), 10u);
    EXPECT_EQ(topo::constellation_shells("starlink_gen2").size(), 9u);
    const auto single = topo::constellation_shells("kuiper_k1");
    ASSERT_EQ(single.size(), 1u);
    EXPECT_EQ(single[0].name, "kuiper_k1");
    EXPECT_THROW(topo::constellation_shells("starlink_gen3"),
                 std::out_of_range);
}

// Forwarding CSV under astar must match Dijkstra byte for byte at 1/2/8
// lanes in both snapshot modes (clustering off).
TEST(AstarEquivalence, CsvByteIdenticalAcrossThreadsAndModes) {
    EnvGuard cluster("HYPATIA_DEST_CLUSTER_KM", nullptr);
    const topo::Constellation constellation(
        small_shell("eq_s", 550.0, 10, 10, 53.0, 25.0), topo::default_epoch());
    const topo::SatelliteMobility mob(constellation);
    const auto isls = topo::build_isls(constellation, topo::IslPattern::kPlusGrid);
    const auto gses = some_cities(12);
    std::vector<int> dests;
    for (int gs = 0; gs < static_cast<int>(gses.size()); ++gs) {
        dests.push_back(constellation.num_satellites() + gs);
    }
    const TimeNs step = 100 * kNsPerMs;
    constexpr int kEpochs = 3;

    for (const char* mode : {"refresh", "rebuild"}) {
        EnvGuard mode_guard("HYPATIA_SNAPSHOT_MODE", mode);
        std::string reference;
        for (const char* algo : {"dijkstra", "astar"}) {
            EnvGuard algo_guard("HYPATIA_ROUTE_ALGO", algo);
            for (const std::size_t lanes : {1u, 2u, 8u}) {
                util::ThreadPool::set_global_threads(lanes);
                std::string csv;
                SnapshotRefresher refresher(mob, isls, gses);
                ForwardingState state;
                for (int e = 0; e < kEpochs; ++e) {
                    const TimeNs t = e * step;
                    if (snapshot_mode_from_env() == SnapshotMode::kRebuild) {
                        const Graph g = build_snapshot(mob, isls, gses, t);
                        compute_forwarding_into(g, dests, state);
                    } else {
                        compute_forwarding_into(refresher.refresh(t), dests, state);
                    }
                    csv += state.dump_csv();
                }
                if (reference.empty()) {
                    reference = csv;
                } else {
                    EXPECT_EQ(csv, reference)
                        << "mode=" << mode << " algo=" << algo << " lanes=" << lanes;
                }
            }
        }
        util::ThreadPool::set_global_threads(0);
    }
}

// Seeded multi-shell fuzz: random ground stations over a three-shell
// group (distinct altitudes, elevation cones and propagation laws),
// random epochs — astar path costs must equal Dijkstra's exactly, and
// the group refresher must match from-scratch group snapshots byte for
// byte in the same sweep.
TEST(AstarEquivalence, MultiShellGroupFuzz) {
    EnvGuard cluster("HYPATIA_DEST_CLUSTER_KM", nullptr);
    std::mt19937 rng(20260807);
    std::uniform_real_distribution<double> lat(-60.0, 60.0);
    std::uniform_real_distribution<double> lon(-180.0, 180.0);
    std::uniform_int_distribution<TimeNs> epoch_ms(0, 5000);

    const std::vector<topo::ShellParams> shells = {
        small_shell("fuzz_a", 550.0, 6, 6, 53.0, 25.0),
        small_shell("fuzz_b", 630.0, 5, 5, 51.9, 30.0),
        small_shell("fuzz_c", 1015.0, 4, 4, 98.98, 10.0),
    };
    const topo::ShellGroup group(shells, topo::default_epoch());

    for (int round = 0; round < 4; ++round) {
        std::vector<orbit::GroundStation> gses;
        for (int g = 0; g < 8; ++g) {
            gses.emplace_back(g, "fuzz_gs_" + std::to_string(g),
                              orbit::Geodetic{lat(rng), lon(rng), 0.0});
        }
        std::vector<int> dests;
        for (int g = 0; g < static_cast<int>(gses.size()); ++g) {
            dests.push_back(group.num_satellites() + g);
        }
        SnapshotOptions opts;
        SnapshotRefresher refresher(group, gses, opts);
        for (int e = 0; e < 3; ++e) {
            const TimeNs t = epoch_ms(rng) * kNsPerMs;
            const Graph rebuilt = build_group_snapshot(group, gses, t, opts);
            const Graph& refreshed = refresher.refresh(t);

            ForwardingState dijkstra_state;
            ForwardingState astar_state;
            {
                EnvGuard algo("HYPATIA_ROUTE_ALGO", "dijkstra");
                compute_forwarding_into(rebuilt, dests, dijkstra_state);
            }
            {
                EnvGuard algo("HYPATIA_ROUTE_ALGO", "astar");
                compute_forwarding_into(refreshed, dests, astar_state);
            }
            // Group refresher == group rebuild AND astar == dijkstra,
            // both pinned by one byte comparison (the CSV covers every
            // node's distance and next hop for every destination).
            EXPECT_EQ(astar_state.dump_csv(), dijkstra_state.dump_csv())
                << "round=" << round << " epoch=" << e << " t=" << t;
        }
    }
}

// Clustered multi-source trees must be *exact* nearest-member trees:
// each node's clustered distance equals the minimum of the per-member
// Dijkstra oracle distances, and every reachable node's path terminates
// at a cluster member.
TEST(AstarEquivalence, ClusteredTreesMatchNearestMemberOracle) {
    const topo::Constellation constellation(
        small_shell("cl_s", 550.0, 8, 8, 53.0, 25.0), topo::default_epoch());
    const topo::SatelliteMobility mob(constellation);
    const auto isls = topo::build_isls(constellation, topo::IslPattern::kPlusGrid);
    const auto gses = some_cities(16);
    const Graph graph = build_snapshot(mob, isls, gses, 0);
    std::vector<int> dests;
    for (int gs = 0; gs < static_cast<int>(gses.size()); ++gs) {
        dests.push_back(graph.gs_node(gs));
    }
    const double cluster_km = 2500.0;
    const auto clusters = cluster_destinations(graph, dests, cluster_km);
    ASSERT_LT(clusters.size(), dests.size()) << "radius too small to exercise clustering";

    ForwardingState clustered;
    {
        char radius[32];
        std::snprintf(radius, sizeof(radius), "%.1f", cluster_km);
        EnvGuard km("HYPATIA_DEST_CLUSTER_KM", radius);
        EnvGuard algo("HYPATIA_ROUTE_ALGO", "astar");
        compute_forwarding_into(graph, dests, clustered);
    }

    for (const auto& members : clusters) {
        std::vector<DestinationTree> oracle;
        for (const int m : members) oracle.push_back(dijkstra_to(graph, m));
        for (const int m : members) {
            const DestinationTree* tree = clustered.tree(m);
            ASSERT_NE(tree, nullptr);
            for (int node = 0; node < graph.num_nodes(); ++node) {
                double best = kInfDistance;
                for (const auto& o : oracle) {
                    best = std::min(best, o.distance_km[static_cast<std::size_t>(node)]);
                }
                EXPECT_EQ(tree->distance_km[static_cast<std::size_t>(node)], best)
                    << "member=" << m << " node=" << node;
                if (best != kInfDistance && best != 0.0) {
                    const auto path = extract_path(*tree, node);
                    ASSERT_FALSE(path.empty()) << "member=" << m << " node=" << node;
                    const int endpoint = path.back();
                    EXPECT_NE(std::find(members.begin(), members.end(), endpoint),
                              members.end())
                        << "path from node " << node << " ends at non-member "
                        << endpoint;
                }
            }
        }
    }
}

// Multi-root extract_path: paths of a two-root tree walk to whichever
// root is nearer and stay cost-consistent along the way.
TEST(AstarEquivalence, MultiRootExtractPathTerminatesAtARoot) {
    const topo::Constellation constellation(
        small_shell("mr_s", 550.0, 6, 6, 53.0, 25.0), topo::default_epoch());
    const topo::SatelliteMobility mob(constellation);
    const auto isls = topo::build_isls(constellation, topo::IslPattern::kPlusGrid);
    const auto gses = some_cities(6);
    const Graph graph = build_snapshot(mob, isls, gses, 0);
    graph.finalize();
    std::vector<std::int32_t> offsets;
    std::vector<Edge> edges;
    graph.export_merged_csr(offsets, edges);
    const GraphView view{offsets.data(), edges.data(), graph.relay_data(),
                         graph.node_positions_data(), graph.num_nodes()};
    const int roots[] = {graph.gs_node(0), graph.gs_node(3)};

    DijkstraWorkspace ws;
    DijkstraWorkspace::GoalSpec spec;
    spec.roots = roots;
    spec.num_roots = 2;
    DestinationTree tree;
    ws.run_goal(view, spec, tree);

    EXPECT_EQ(tree.distance_km[static_cast<std::size_t>(roots[0])], 0.0);
    EXPECT_EQ(tree.distance_km[static_cast<std::size_t>(roots[1])], 0.0);
    for (int node = 0; node < graph.num_nodes(); ++node) {
        const double d = tree.distance_km[static_cast<std::size_t>(node)];
        if (d == kInfDistance || d == 0.0) continue;
        const auto path = extract_path(tree, node);
        ASSERT_FALSE(path.empty()) << "node=" << node;
        EXPECT_TRUE(path.back() == roots[0] || path.back() == roots[1]);
        // Distances decrease strictly along the chain toward the root.
        for (std::size_t i = 1; i < path.size(); ++i) {
            EXPECT_LT(tree.distance_km[static_cast<std::size_t>(path[i])],
                      tree.distance_km[static_cast<std::size_t>(path[i - 1])]);
        }
    }
}

// PairSweeper samples under astar (early exit armed) must equal
// Dijkstra's, with fewer or equal queue pops.
TEST(AstarEquivalence, PairSweeperAstarMatchesDijkstra) {
    EnvGuard cluster("HYPATIA_DEST_CLUSTER_KM", nullptr);
    const std::vector<topo::ShellParams> shells = {
        small_shell("ps_a", 550.0, 8, 8, 53.0, 25.0),
        small_shell("ps_b", 630.0, 6, 6, 51.9, 30.0),
    };
    const topo::ShellGroup group(shells, topo::default_epoch());
    const auto gses = some_cities(10);
    std::vector<GsPair> pairs;
    for (int i = 0; i < 6; ++i) pairs.push_back({i, (i + 5) % 10});
    SweepOptions opts;
    opts.dest_cluster_km = 0.0;
    const TimeNs step = 100 * kNsPerMs;
    constexpr int kEpochs = 4;

    std::vector<std::vector<PairSweeper::Sample>> reference;
    std::uint64_t dijkstra_pops = 0;
    {
        EnvGuard algo("HYPATIA_ROUTE_ALGO", "dijkstra");
        PairSweeper sweeper(group, gses, pairs, opts);
        for (int e = 0; e < kEpochs; ++e) {
            reference.push_back(sweeper.step(e * step));
            dijkstra_pops += sweeper.last_step_pops();
        }
    }
    std::uint64_t astar_pops = 0;
    {
        EnvGuard algo("HYPATIA_ROUTE_ALGO", "astar");
        PairSweeper sweeper(group, gses, pairs, opts);
        for (int e = 0; e < kEpochs; ++e) {
            const auto& samples = sweeper.step(e * step);
            astar_pops += sweeper.last_step_pops();
            ASSERT_EQ(samples.size(), reference[static_cast<std::size_t>(e)].size());
            for (std::size_t p = 0; p < samples.size(); ++p) {
                EXPECT_EQ(samples[p].rtt_s,
                          reference[static_cast<std::size_t>(e)][p].rtt_s);
                EXPECT_EQ(samples[p].path,
                          reference[static_cast<std::size_t>(e)][p].path);
            }
        }
    }
    EXPECT_LE(astar_pops, dijkstra_pops);
}

// The buffer-reuse pin at full-sky scale: once warm, stepping the
// multi-shell epoch pipeline (refresh + fan-out) at 30k+ nodes must not
// allocate proportionally to the graph — the workspace, calendar queue,
// heuristic memo and refresher buffers are all recycled. The bound
// scales only with the pair count (path result vectors).
TEST(AstarEquivalence, WorkspaceBuffersReusedAtFullSkyScale) {
    EnvGuard cluster("HYPATIA_DEST_CLUSTER_KM", nullptr);
    EnvGuard algo("HYPATIA_ROUTE_ALGO", "astar");
    EnvGuard mode("HYPATIA_SNAPSHOT_MODE", "refresh");
    const topo::ShellGroup group(topo::starlink_gen2_shells(), topo::default_epoch());
    const auto gses = some_cities(20);
    ASSERT_GE(group.num_satellites() + static_cast<int>(gses.size()), 30000);
    std::vector<GsPair> pairs;
    for (int i = 0; i < 4; ++i) pairs.push_back({i, i + 10});
    SweepOptions opts;
    opts.dest_cluster_km = 0.0;
    PairSweeper sweeper(group, gses, pairs, opts);
    const TimeNs step = 100 * kNsPerMs;
    TimeNs t = 0;
    for (int e = 0; e < 2; ++e, t += step) sweeper.step(t);  // warm

    constexpr int kMeasured = 3;
    const std::uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
    for (int e = 0; e < kMeasured; ++e, t += step) sweeper.step(t);
    const std::uint64_t allocs =
        g_alloc_count.load(std::memory_order_relaxed) - before;
    EXPECT_LE(allocs / kMeasured, 64u + 8u * pairs.size())
        << "per-epoch allocations grew beyond the reuse bound (" << allocs << " over "
        << kMeasured << " epochs)";
}

}  // namespace
}  // namespace hypatia::route
