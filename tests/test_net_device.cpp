#include "src/sim/net_device.hpp"

#include <gtest/gtest.h>

#include "src/sim/network.hpp"

namespace hypatia::sim {
namespace {

// A two-node wire: node 0 -> node 1, fixed propagation delay.
struct Wire {
    Simulator sim;
    Network net{sim};
    std::vector<Packet> delivered;

    Wire(double rate_bps, std::size_t qcap, TimeNs prop_delay) {
        net.create_nodes(2);
        net.add_isl(0, 1, rate_bps, qcap,
                    [prop_delay](int, int, TimeNs) { return prop_delay; });
        net.node(0).set_next_hop(1, 1);
        net.node(1).set_flow_handler(1, [this](const Packet& p) {
            delivered.push_back(p);
        });
    }

    Packet make_packet(int bytes) {
        Packet p;
        p.src_node = 0;
        p.dst_node = 1;
        p.size_bytes = bytes;
        p.flow_id = 1;
        return p;
    }
};

TEST(NetDevice, SerializationPlusPropagation) {
    // 1000 bytes at 1 Mbit/s = 8 ms serialization; +2 ms propagation.
    Wire w(1e6, 10, 2 * kNsPerMs);
    w.net.node(0).receive(w.make_packet(1000));
    w.sim.run_until(100 * kNsPerMs);
    ASSERT_EQ(w.delivered.size(), 1u);
    // Delivery happens exactly at 8 + 2 = 10 ms... but forwarding counts a
    // hop; verify via the simulator clock of the delivery event instead.
    EXPECT_EQ(w.net.node(1).delivered_packets(), 1u);
}

TEST(NetDevice, DeliveryTimeExact) {
    Wire w(1e6, 10, 2 * kNsPerMs);
    TimeNs delivery_time = -1;
    w.net.node(1).set_flow_handler(1, [&](const Packet&) {
        delivery_time = w.sim.now();
    });
    w.net.node(0).receive(w.make_packet(1000));
    w.sim.run_until(100 * kNsPerMs);
    EXPECT_EQ(delivery_time, 10 * kNsPerMs);
}

TEST(NetDevice, BackToBackPacketsSerialize) {
    Wire w(1e6, 10, 0);
    std::vector<TimeNs> deliveries;
    w.net.node(1).set_flow_handler(1, [&](const Packet&) {
        deliveries.push_back(w.sim.now());
    });
    // Two 1000-byte packets injected simultaneously: second waits 8 ms.
    w.net.node(0).receive(w.make_packet(1000));
    w.net.node(0).receive(w.make_packet(1000));
    w.sim.run_until(kNsPerSec);
    ASSERT_EQ(deliveries.size(), 2u);
    EXPECT_EQ(deliveries[0], 8 * kNsPerMs);
    EXPECT_EQ(deliveries[1], 16 * kNsPerMs);
}

TEST(NetDevice, QueueOverflowDrops) {
    Wire w(1e6, 2, 0);  // queue of 2 + 1 in flight
    for (int i = 0; i < 10; ++i) w.net.node(0).receive(w.make_packet(1000));
    w.sim.run_until(kNsPerSec);
    // 1 transmitting + 2 queued survive; 7 dropped.
    EXPECT_EQ(w.delivered.size(), 3u);
    EXPECT_EQ(w.net.total_queue_drops(), 7u);
}

TEST(NetDevice, CountsTxBytes) {
    Wire w(1e6, 10, 0);
    w.net.node(0).receive(w.make_packet(400));
    w.net.node(0).receive(w.make_packet(600));
    w.sim.run_until(kNsPerSec);
    const auto& dev = *w.net.devices()[0];
    EXPECT_EQ(dev.tx_bytes(), 1000u);
    EXPECT_EQ(dev.tx_packets(), 2u);
}

TEST(NetDevice, GslSendsToPerPacketNextHop) {
    Simulator sim;
    Network net(sim);
    net.create_nodes(3);  // node 0 has a GSL; nodes 1 and 2 receive
    net.add_gsl(0, 1e6, 10, [](int, int to, TimeNs) {
        return to == 1 ? 1 * kNsPerMs : 5 * kNsPerMs;
    });
    std::vector<int> arrivals;
    for (int n : {1, 2}) {
        net.node(n).set_flow_handler(7, [&arrivals, n](const Packet&) {
            arrivals.push_back(n);
        });
    }
    // Route both flows through node 0's forwarding table.
    net.node(0).set_next_hop(1, 1);
    net.node(0).set_next_hop(2, 2);
    Packet p;
    p.src_node = 0;
    p.flow_id = 7;
    p.size_bytes = 100;
    p.dst_node = 1;
    net.node(0).receive(p);
    p.dst_node = 2;
    net.node(0).receive(p);
    sim.run_until(kNsPerSec);
    EXPECT_EQ(arrivals.size(), 2u);
}

TEST(NetDevice, PropagationDelayEvaluatedAtTransmitTime) {
    // Delay model returns the current time scaled: verifies the delay is
    // computed when the packet leaves, not when it is enqueued.
    Simulator sim;
    Network net(sim);
    net.create_nodes(2);
    net.add_isl(0, 1, 1e6, 10, [](int, int, TimeNs t) {
        return t < 8 * kNsPerMs ? 1 * kNsPerMs : 10 * kNsPerMs;
    });
    net.node(0).set_next_hop(1, 1);
    std::vector<TimeNs> deliveries;
    net.node(1).set_flow_handler(1, [&](const Packet&) {
        deliveries.push_back(sim.now());
    });
    Packet p;
    p.src_node = 0;
    p.dst_node = 1;
    p.size_bytes = 1000;  // 8 ms serialization
    p.flow_id = 1;
    net.node(0).receive(p);  // finishes serializing at t=8ms -> delay 10ms
    sim.run_until(kNsPerSec);
    ASSERT_EQ(deliveries.size(), 1u);
    EXPECT_EQ(deliveries[0], 18 * kNsPerMs);
}

TEST(NetDevice, RejectsNonPositiveRate) {
    Simulator sim;
    EXPECT_THROW(NetDevice(sim, 0, 0.0, 10, {}, {}, 1), std::invalid_argument);
}

}  // namespace
}  // namespace hypatia::sim
