#include "src/orbit/sgp4.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "src/orbit/kepler.hpp"
#include "src/orbit/time.hpp"

namespace hypatia::orbit {
namespace {

JulianDate epoch() { return julian_date_from_utc(2000, 1, 1, 0, 0, 0.0); }

Sgp4 make_circular(double alt_km, double inc_deg, double raan_deg = 0.0,
                   double ma_deg = 0.0) {
    const auto kep = KeplerianElements::circular(alt_km, inc_deg, raan_deg, ma_deg, epoch());
    return Sgp4(sgp4_elements_from_kepler(kep));
}

TEST(Sgp4, AltitudeNearNominalAtEpoch) {
    // SGP4's periodic terms wiggle the radius by ~10 km around the mean.
    for (double alt : {550.0, 630.0, 1015.0, 1325.0}) {
        const auto sgp4 = make_circular(alt, 53.0);
        const auto sv = sgp4.propagate_minutes(0.0);
        EXPECT_NEAR(sv.position_km.norm() - Wgs72::kEarthRadiusKm, alt, 15.0) << alt;
    }
}

TEST(Sgp4, VelocityNearCircularVelocity) {
    const auto sgp4 = make_circular(550.0, 53.0);
    const auto kep = KeplerianElements::circular(550.0, 53.0, 0.0, 0.0, epoch());
    for (double t : {0.0, 30.0, 60.0, 95.0}) {
        const auto sv = sgp4.propagate_minutes(t);
        EXPECT_NEAR(sv.velocity_km_per_s.norm(), kep.circular_velocity_km_per_s(), 0.02);
    }
}

TEST(Sgp4, PaperVelocityClaim) {
    // Paper section 2.3: "At h = 550 km, the orbital velocity is more than
    // 27,000 km/hr".
    const auto sv = make_circular(550.0, 53.0).propagate_minutes(10.0);
    EXPECT_GT(sv.velocity_km_per_s.norm() * 3600.0, 27000.0);
}

TEST(Sgp4, OrbitalPeriodReturnsToStart) {
    const auto sgp4 = make_circular(550.0, 53.0, 120.0, 40.0);
    const auto kep = KeplerianElements::circular(550.0, 53.0, 120.0, 40.0, epoch());
    const auto sv0 = sgp4.propagate_minutes(0.0);
    const auto sv1 = sgp4.propagate_minutes(kep.period_s() / 60.0);
    // Within one orbit, J2 precession moves the track by well under 150 km.
    EXPECT_LT(sv0.position_km.distance_to(sv1.position_km), 150.0);
}

TEST(Sgp4, AgreesWithKeplerJ2OverTenMinutes) {
    // SGP4 and the independent Kepler+J2 propagator should stay within a
    // few km over short horizons (periodic terms dominate the difference).
    const auto kep = KeplerianElements::circular(630.0, 51.9, 77.0, 33.0, epoch());
    const Sgp4 sgp4(sgp4_elements_from_kepler(kep));
    for (double t_min : {0.0, 2.0, 5.0, 10.0}) {
        const auto at = epoch().plus_seconds(t_min * 60.0);
        const auto a = sgp4.propagate(at).position_km;
        const auto b = propagate_kepler_j2(kep, at).position_km;
        EXPECT_LT(a.distance_to(b), 20.0) << "t=" << t_min;
    }
}

TEST(Sgp4, AgreesWithKeplerJ2OverTwoHundredSeconds) {
    // The paper's experiment window is 200 s; over that window the two
    // models' *relative motion* must agree closely for every shell.
    for (double alt : {550.0, 630.0, 1015.0}) {
        const auto kep = KeplerianElements::circular(alt, 53.0, 10.0, 250.0, epoch());
        const Sgp4 sgp4(sgp4_elements_from_kepler(kep));
        const auto at = epoch().plus_seconds(200.0);
        const auto a = sgp4.propagate(at).position_km;
        const auto b = propagate_kepler_j2(kep, at).position_km;
        EXPECT_LT(a.distance_to(b), 25.0) << alt;
    }
}

TEST(Sgp4, InclinationBoundsZExcursion) {
    const auto sgp4 = make_circular(1015.0, 98.98);
    double max_lat = 0.0;
    for (double t = 0.0; t < 110.0; t += 1.0) {
        const auto p = sgp4.propagate_minutes(t).position_km;
        max_lat = std::max(max_lat, std::asin(std::abs(p.z) / p.norm()) * 180.0 / M_PI);
    }
    EXPECT_NEAR(max_lat, 98.98 > 90.0 ? 180.0 - 98.98 : 98.98, 0.5);
}

TEST(Sgp4, MeanAnomalySpacingPreserved) {
    // Two satellites separated by 180 deg mean anomaly in the same orbit
    // stay on opposite sides of the Earth.
    const auto a = make_circular(550.0, 53.0, 0.0, 0.0);
    const auto b = make_circular(550.0, 53.0, 0.0, 180.0);
    for (double t : {0.0, 47.0, 95.0}) {
        const auto pa = a.propagate_minutes(t).position_km;
        const auto pb = b.propagate_minutes(t).position_km;
        const double cosang = pa.normalized().dot(pb.normalized());
        EXPECT_NEAR(cosang, -1.0, 0.01) << t;
    }
}

TEST(Sgp4, RejectsDeepSpaceOrbit) {
    // Geostationary-ish orbit: period >> 225 min.
    auto kep = KeplerianElements::circular(35786.0, 0.1, 0.0, 0.0, epoch());
    EXPECT_THROW(Sgp4{sgp4_elements_from_kepler(kep)}, std::invalid_argument);
}

TEST(Sgp4, RejectsInvalidEccentricity) {
    auto el = sgp4_elements_from_kepler(
        KeplerianElements::circular(550.0, 53.0, 0.0, 0.0, epoch()));
    el.eccentricity = 1.5;
    EXPECT_THROW(Sgp4{el}, std::invalid_argument);
}

TEST(Sgp4, RejectsSubSurfacePerigee) {
    auto kep = KeplerianElements::circular(550.0, 53.0, 0.0, 0.0, epoch());
    kep.eccentricity = 0.5;  // perigee far below the surface
    EXPECT_THROW(Sgp4{sgp4_elements_from_kepler(kep)}, std::invalid_argument);
}

TEST(Sgp4, UnKozaiCloseToInput) {
    const auto kep = KeplerianElements::circular(550.0, 53.0, 0.0, 0.0, epoch());
    const Sgp4 sgp4(sgp4_elements_from_kepler(kep));
    const double no_kozai = kep.mean_motion_rad_per_s() * 60.0;
    EXPECT_NEAR(sgp4.no_unkozai() / no_kozai, 1.0, 1e-3);
}

TEST(Sgp4, DragTermsShrinkOrbitSlowly) {
    auto el = sgp4_elements_from_kepler(
        KeplerianElements::circular(550.0, 53.0, 0.0, 0.0, epoch()), /*bstar=*/1e-4);
    const Sgp4 sgp4(el);
    const double r0 = sgp4.propagate_minutes(0.0).position_km.norm();
    const double r1 = sgp4.propagate_minutes(1440.0).position_km.norm();
    // With positive drag the mean radius decays, but only slightly per day.
    EXPECT_LT(r1 - r0, 5.0);
}

}  // namespace
}  // namespace hypatia::orbit
