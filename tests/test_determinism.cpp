// Reproducibility: the simulator is fully deterministic — identical
// scenarios produce bit-identical results (the property every debugging
// and regression workflow on top of the framework relies on).
#include <gtest/gtest.h>

#include <algorithm>

#include "src/core/experiment.hpp"
#include "src/routing/forwarding.hpp"
#include "src/topology/cities.hpp"

namespace hypatia::core {
namespace {

Scenario scenario() {
    Scenario s;
    s.shell = topo::shell_by_name("kuiper_k1");
    s.ground_stations = {topo::city_by_name("Manila"), topo::city_by_name("Dalian"),
                         topo::city_by_name("Tokyo"), topo::city_by_name("Seoul")};
    return s;
}

struct RunResult {
    std::uint64_t delivered;
    std::uint64_t retransmissions;
    std::uint64_t events;
    std::vector<sim::TcpFlow::CwndSample> cwnd;
};

RunResult run_once(const std::string& cc) {
    LeoNetwork leo(scenario());
    auto flows = attach_tcp_flows(leo, {{0, 1}, {2, 3}}, cc);
    leo.run(5 * kNsPerSec);
    RunResult r;
    r.delivered = flows[0]->delivered_segments() + flows[1]->delivered_segments();
    r.retransmissions = flows[0]->retransmissions() + flows[1]->retransmissions();
    r.events = leo.simulator().events_executed();
    r.cwnd = flows[0]->cwnd_trace();
    return r;
}

TEST(Determinism, IdenticalTcpRunsBitForBit) {
    for (const std::string cc : {"newreno", "vegas", "bbr"}) {
        const auto a = run_once(cc);
        const auto b = run_once(cc);
        EXPECT_EQ(a.delivered, b.delivered) << cc;
        EXPECT_EQ(a.retransmissions, b.retransmissions) << cc;
        EXPECT_EQ(a.events, b.events) << cc;
        ASSERT_EQ(a.cwnd.size(), b.cwnd.size()) << cc;
        for (std::size_t i = 0; i < a.cwnd.size(); ++i) {
            ASSERT_EQ(a.cwnd[i].t, b.cwnd[i].t) << cc;
            ASSERT_EQ(a.cwnd[i].cwnd, b.cwnd[i].cwnd) << cc;
        }
    }
}

TEST(Determinism, PermutationWorkloadRepeatable) {
    PermutationWorkloadConfig cfg;
    cfg.scenario = Scenario::paper_default("kuiper_k1");
    cfg.num_ground_stations = 8;
    cfg.duration = 1 * kNsPerSec;
    cfg.tcp = false;
    const auto a = run_permutation_workload(cfg);
    const auto b = run_permutation_workload(cfg);
    EXPECT_EQ(a.events, b.events);
    EXPECT_DOUBLE_EQ(a.goodput_bps, b.goodput_bps);
}

route::Graph ring_graph() {
    // 4 satellites in a ring, 2 ground stations hanging off sats 0 and 2.
    route::Graph g(4, 2);
    g.add_undirected_edge(0, 1, 1000.0);
    g.add_undirected_edge(1, 2, 1000.0);
    g.add_undirected_edge(2, 3, 1000.0);
    g.add_undirected_edge(3, 0, 1000.0);
    g.add_undirected_edge(g.gs_node(0), 0, 600.0);
    g.add_undirected_edge(g.gs_node(1), 2, 600.0);
    return g;
}

TEST(Determinism, ForwardingDumpIsByteStableAcrossInsertionOrders) {
    const auto g = ring_graph();
    const std::vector<int> dsts = {g.gs_node(0), g.gs_node(1)};

    // Same trees inserted in opposite orders must dump identically: the
    // serialization iterates destinations() (sorted), never the backing
    // unordered_map's bucket order.
    route::ForwardingState forward, reverse;
    for (int d : dsts) forward.set_tree(d, route::dijkstra_to(g, d));
    for (auto it = dsts.rbegin(); it != dsts.rend(); ++it) {
        reverse.set_tree(*it, route::dijkstra_to(g, *it));
    }
    EXPECT_EQ(forward.dump_csv(), reverse.dump_csv());

    const auto listed = forward.destinations();
    EXPECT_TRUE(std::is_sorted(listed.begin(), listed.end()));
    ASSERT_EQ(listed.size(), 2u);

    // Byte-stable across independent computations too.
    const auto recomputed = route::compute_forwarding(g, dsts);
    EXPECT_EQ(forward.dump_csv(), recomputed.dump_csv());

    // Sanity of format: header once, one row per (destination, node).
    const std::string dump = forward.dump_csv();
    EXPECT_EQ(dump.rfind("destination,node,next_hop,distance_km\n", 0), 0u);
    const auto rows = std::count(dump.begin(), dump.end(), '\n');
    EXPECT_EQ(rows, 1 + 2 * g.num_nodes());
}

TEST(Determinism, DifferentSeedsDifferentMatrices) {
    const auto a = route::random_permutation_pairs(100, 1);
    const auto b = route::random_permutation_pairs(100, 2);
    bool any_different = a.size() != b.size();
    for (std::size_t i = 0; !any_different && i < a.size(); ++i) {
        any_different = a[i].dst_gs != b[i].dst_gs;
    }
    EXPECT_TRUE(any_different);
}

}  // namespace
}  // namespace hypatia::core
