// Crash-recovery integration test (DESIGN.md §13): forks a paced
// emulation run as a child process with HYPATIA_CKPT_* set, SIGKILLs it
// mid-run once checkpoints appear on disk, re-runs it with resume on,
// and requires the resumed run's schedule CSV to be byte-identical to
// an uninterrupted in-process reference. No gtest: the process is its
// own harness (child mode re-enters main via --ckpt-child), registered
// as a single ctest entry. Honours HYPATIA_THREADS /
// HYPATIA_SNAPSHOT_MODE from the environment, so CI sweeps
// configurations by re-running the binary.
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/emu/export.hpp"
#include "src/emu/realtime.hpp"
#include "src/emu/schedule.hpp"
#include "src/fault/fault.hpp"
#include "src/topology/cities.hpp"

namespace {

using namespace hypatia;

#define CHECK(cond)                                                         \
    do {                                                                    \
        if (!(cond)) {                                                      \
            std::fprintf(stderr, "FAILED at %s:%d: %s\n", __FILE__,         \
                         __LINE__, #cond);                                  \
            return 1;                                                       \
        }                                                                   \
    } while (0)

std::string scratch_dir() {
    if (const char* env = std::getenv("CKPT_SCRATCH")) return env;
    return "/tmp/hypatia_ckpt_crash";
}

/// Kuiper K1, four cities, a ground-station outage on GS 0 over
/// [2 s, 4 s). Parent, child and resumed child all rebuild this
/// identically; the fault CSV is regenerated per process.
core::Scenario crash_scenario() {
    core::Scenario s;
    s.shell = topo::shell_by_name("kuiper_k1");
    s.ground_stations = {topo::city_by_name("Manila"), topo::city_by_name("Dalian"),
                         topo::city_by_name("Tokyo"), topo::city_by_name("Seoul")};
    std::vector<fault::FaultEvent> events;
    events.push_back({fault::FaultKind::kGroundStation, 0, -1, 2 * kNsPerSec,
                      4 * kNsPerSec});
    const fault::FaultSchedule schedule = fault::FaultSchedule::from_events(
        events, s.shell.num_satellites(),
        static_cast<int>(s.ground_stations.size()));
    const std::string csv = scratch_dir() + "/crash_faults.csv";
    schedule.save_csv(csv);
    s.faults = fault::FaultSpec{std::nullopt, csv};
    return s;
}

emu::ExportOptions crash_options() {
    emu::ExportOptions opts;
    opts.t_end = 6 * kNsPerSec;
    opts.step = 500 * kNsPerMs;
    return opts;
}

/// Child mode: one paced run, checkpointing configured entirely through
/// HYPATIA_CKPT_* (the env path a real long-run deployment uses).
/// Writes the final schedule CSV to `out_path` and exits 0.
int run_child(const char* out_path) {
    const core::Scenario scenario = crash_scenario();
    emu::PacerOptions popt;
    popt.speed = 1.0;
    if (const char* env = std::getenv("CKPT_CHILD_SPEED")) {
        popt.speed = std::strtod(env, nullptr);
    }
    popt.serve_schedule = false;
    emu::RealtimePacer pacer(scenario, {{0, 1}}, crash_options(), popt);
    const emu::PacerReport report = pacer.run();
    if (report.schedules.size() != 1) return 2;
    std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
    out << emu::to_csv(report.schedules[0]);
    return out.good() ? 0 : 3;
}

int count_checkpoints(const std::string& dir) {
    int n = 0;
    for (int g = 1; g <= 64; ++g) {
        char buf[512];
        std::snprintf(buf, sizeof(buf), "%s/ckpt-%010d.hyc", dir.c_str(), g);
        struct stat st;
        if (::stat(buf, &st) == 0) ++n;
    }
    return n;
}

std::string read_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

pid_t spawn_child(const char* self, const std::string& ckpt_dir,
                  const std::string& out_path, const char* speed,
                  bool resume) {
    const pid_t pid = ::fork();
    if (pid != 0) return pid;
    ::setenv("HYPATIA_CKPT_DIR", ckpt_dir.c_str(), 1);
    ::setenv("HYPATIA_CKPT_INTERVAL_S", "0", 1);
    ::setenv("HYPATIA_CKPT_RESUME", resume ? "1" : "0", 1);
    ::setenv("CKPT_CHILD_SPEED", speed, 1);
    char* argv[] = {const_cast<char*>(self), const_cast<char*>("--ckpt-child"),
                    const_cast<char*>(out_path.c_str()), nullptr};
    ::execv(self, argv);
    std::perror("execv");
    _exit(127);
}

int run_parent(const char* self) {
    const std::string scratch = scratch_dir();
    ::mkdir(scratch.c_str(), 0755);
    const std::string ckpt_dir = scratch + "/gens";
    ::mkdir(ckpt_dir.c_str(), 0755);
    for (int g = 0; g <= 64; ++g) {
        char buf[512];
        std::snprintf(buf, sizeof(buf), "%s/ckpt-%010d.hyc", ckpt_dir.c_str(), g);
        ::unlink(buf);
    }
    const std::string out_path = scratch + "/resumed.csv";
    ::unlink(out_path.c_str());

    // Uninterrupted in-process reference (checkpointing off).
    emu::ExportOptions ref_opt = crash_options();
    ref_opt.checkpoint = ckpt::Policy::disabled();
    emu::ScheduleExporter reference(crash_scenario(), {{0, 1}}, ref_opt);
    const std::string want = emu::to_csv(reference.run()[0]);
    CHECK(!want.empty());

    // Paced child at real time; SIGKILL once checkpoints hit the disk.
    const pid_t victim = spawn_child(self, ckpt_dir, out_path, "1.0", false);
    CHECK(victim > 0);
    bool saw_checkpoints = false;
    for (int i = 0; i < 600; ++i) {  // 30 s cap
        if (count_checkpoints(ckpt_dir) >= 3) {
            saw_checkpoints = true;
            break;
        }
        int status = 0;
        if (::waitpid(victim, &status, WNOHANG) == victim) {
            std::fprintf(stderr, "child finished before the kill (status %d)\n",
                         status);
            return 1;
        }
        ::usleep(50 * 1000);
    }
    CHECK(saw_checkpoints);
    CHECK(::kill(victim, SIGKILL) == 0);
    int status = 0;
    CHECK(::waitpid(victim, &status, 0) == victim);
    CHECK(WIFSIGNALED(status));
    CHECK(WTERMSIG(status) == SIGKILL);
    CHECK(read_file(out_path).empty());  // it really died mid-run

    // Resume: a fresh process, free-running, picks up from the newest
    // good generation and must finish byte-identical.
    const pid_t survivor = spawn_child(self, ckpt_dir, out_path, "0", true);
    CHECK(survivor > 0);
    CHECK(::waitpid(survivor, &status, 0) == survivor);
    CHECK(WIFEXITED(status));
    CHECK(WEXITSTATUS(status) == 0);

    const std::string got = read_file(out_path);
    if (got != want) {
        std::fprintf(stderr,
                     "FAILED: resumed schedule differs from uninterrupted "
                     "reference (%zu vs %zu bytes)\n",
                     got.size(), want.size());
        return 1;
    }
    std::printf("ok: killed mid-run after %d checkpoints, resumed "
                "byte-identical (%zu bytes)\n",
                count_checkpoints(ckpt_dir), got.size());
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc >= 3 && std::strcmp(argv[1], "--ckpt-child") == 0) {
        return run_child(argv[2]);
    }
    char self[4096];
    const ssize_t n = ::readlink("/proc/self/exe", self, sizeof(self) - 1);
    if (n <= 0) {
        std::perror("readlink /proc/self/exe");
        return 1;
    }
    self[n] = '\0';
    return run_parent(self);
}
