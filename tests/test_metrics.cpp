#include "src/core/metrics.hpp"

#include <gtest/gtest.h>

#include "src/core/experiment.hpp"
#include "src/topology/cities.hpp"

namespace hypatia::core {
namespace {

Scenario tiny_scenario() {
    Scenario s;
    s.shell = topo::shell_by_name("kuiper_k1");
    s.ground_stations = {topo::city_by_name("Manila"), topo::city_by_name("Dalian")};
    return s;
}

TEST(UtilizationSampler, IdleNetworkIsZero) {
    LeoNetwork leo(tiny_scenario());
    UtilizationSampler sampler(leo, 1 * kNsPerSec, 3 * kNsPerSec);
    leo.run(3 * kNsPerSec);
    for (std::size_t d = 0; d < sampler.num_devices(); ++d) {
        for (std::size_t b = 0; b < 3; ++b) {
            EXPECT_EQ(sampler.bytes(d, b), 0u);
        }
    }
}

TEST(UtilizationSampler, CapturesTcpTraffic) {
    LeoNetwork leo(tiny_scenario());
    UtilizationSampler sampler(leo, 1 * kNsPerSec, 5 * kNsPerSec);
    auto flows = attach_tcp_flows(leo, {{0, 1}}, "newreno");
    leo.run(5 * kNsPerSec);
    std::uint64_t total = 0;
    for (std::size_t d = 0; d < sampler.num_devices(); ++d) {
        for (std::size_t b = 0; b < sampler.num_bins(); ++b) total += sampler.bytes(d, b);
    }
    EXPECT_GT(total, 1'000'000u);  // multiple hops x megabytes
}

TEST(UtilizationSampler, UtilizationBounded) {
    LeoNetwork leo(tiny_scenario());
    UtilizationSampler sampler(leo, 1 * kNsPerSec, 5 * kNsPerSec);
    auto flows = attach_tcp_flows(leo, {{0, 1}}, "newreno");
    leo.run(5 * kNsPerSec);
    for (std::size_t d = 0; d < sampler.num_devices(); ++d) {
        for (std::size_t b = 0; b < sampler.num_bins(); ++b) {
            const double u = sampler.utilization(d, b);
            EXPECT_GE(u, 0.0);
            EXPECT_LE(u, 1.0);
        }
    }
}

TEST(UnusedBandwidth, FullCapacityWhenIdle) {
    LeoNetwork leo(tiny_scenario());
    leo.add_destination(1);
    UtilizationSampler sampler(leo, 1 * kNsPerSec, 3 * kNsPerSec);
    UnusedBandwidthTracker tracker(leo, sampler, 0, 1);
    leo.run(3 * kNsPerSec);
    const auto unused = tracker.unused_bps();
    ASSERT_GE(unused.size(), 3u);
    for (std::size_t b = 0; b < 3; ++b) {
        EXPECT_NEAR(unused[b], 10e6, 1.0) << b;  // idle path: full line rate
    }
}

TEST(UnusedBandwidth, NearZeroUnderSaturation) {
    LeoNetwork leo(tiny_scenario());
    UtilizationSampler sampler(leo, 1 * kNsPerSec, 10 * kNsPerSec);
    auto flows = attach_tcp_flows(leo, {{0, 1}}, "newreno");
    UnusedBandwidthTracker tracker(leo, sampler, 0, 1);
    leo.run(10 * kNsPerSec);
    const auto unused = tracker.unused_bps();
    // Once TCP converges (after the first seconds), the bottleneck is
    // nearly fully used.
    double min_late = 1e18;
    for (std::size_t b = 5; b < 10; ++b) min_late = std::min(min_late, unused[b]);
    EXPECT_LT(min_late, 2.5e6);  // >= 75% of 10 Mbit/s used
}

TEST(UnusedBandwidth, MarksUnreachableBins) {
    Scenario s = tiny_scenario();
    // Saint Petersburg on Kuiper: guaranteed unreachable periods.
    s.ground_stations = {topo::city_by_name("Rio de Janeiro"),
                         topo::city_by_name("Saint Petersburg")};
    LeoNetwork leo(s);
    leo.add_destination(1);
    UtilizationSampler sampler(leo, 1 * kNsPerSec, 200 * kNsPerSec);
    UnusedBandwidthTracker tracker(leo, sampler, 0, 1);
    leo.run(200 * kNsPerSec);
    const auto unused = tracker.unused_bps();
    int unreachable = 0;
    for (double u : unused) {
        if (u < 0) ++unreachable;
    }
    // The ~10 s disconnection around t = 156..166 s must appear.
    EXPECT_GE(unreachable, 5);
    EXPECT_LE(unreachable, 40);
}

}  // namespace
}  // namespace hypatia::core
