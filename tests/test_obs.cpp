// The observability layer: metrics registry semantics, histogram bucket
// mapping, trace sinks and sampling, JSON round trips, profiler nesting
// and the run manifest.
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/obs/json.hpp"
#include "src/obs/manifest.hpp"
#include "src/obs/observability.hpp"
#include "src/sim/simulator.hpp"

namespace hypatia::obs {
namespace {

std::string temp_path(const std::string& name) {
    return ::testing::TempDir() + name;
}

std::string read_all(const std::string& path) {
    std::ifstream in(path);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

// --- MetricsRegistry ------------------------------------------------------

TEST(MetricsRegistry, GetOrCreateReturnsStableReferences) {
    MetricsRegistry reg;
    Counter& c1 = reg.counter("a.count");
    c1.inc(3);
    Counter& c2 = reg.counter("a.count");
    EXPECT_EQ(&c1, &c2);
    EXPECT_EQ(c2.value(), 3u);

    // Pointers survive later registrations (node-based storage).
    Counter* before = &reg.counter("a.count");
    for (int i = 0; i < 100; ++i) reg.counter("fill." + std::to_string(i));
    EXPECT_EQ(before, &reg.counter("a.count"));
    EXPECT_EQ(reg.size(), 101u);
}

TEST(MetricsRegistry, KindConflictThrows) {
    MetricsRegistry reg;
    reg.counter("x");
    EXPECT_THROW(reg.gauge("x"), std::invalid_argument);
    EXPECT_THROW(reg.histogram("x"), std::invalid_argument);
    reg.gauge("y");
    EXPECT_THROW(reg.counter("y"), std::invalid_argument);
}

TEST(MetricsRegistry, ResetValuesKeepsRegistrations) {
    MetricsRegistry reg;
    Counter& c = reg.counter("c");
    Gauge& g = reg.gauge("g");
    Histogram& h = reg.histogram("h");
    c.inc(5);
    g.set(7.0);
    h.record(9);
    reg.reset_values();
    EXPECT_EQ(reg.size(), 3u);
    EXPECT_EQ(c.value(), 0u);      // same objects, zeroed
    EXPECT_EQ(g.value(), 0.0);
    EXPECT_EQ(h.count(), 0u);
}

TEST(Gauge, SetMaxKeepsPeak) {
    Gauge g;
    g.set_max(3.0);
    g.set_max(10.0);
    g.set_max(5.0);
    EXPECT_EQ(g.value(), 10.0);
}

// --- Histogram ------------------------------------------------------------

TEST(Histogram, SmallValuesAreExact) {
    for (std::uint64_t v = 0; v < 8; ++v) {
        EXPECT_EQ(Histogram::bucket_index(v), v);
        EXPECT_EQ(Histogram::bucket_lower_bound(v), v);
    }
}

TEST(Histogram, BucketLowerBoundInvertsBucketIndex) {
    for (std::uint64_t v : {8ull, 9ull, 100ull, 1000ull, 123456ull, 1ull << 40,
                            (1ull << 40) + 12345ull}) {
        const std::size_t idx = Histogram::bucket_index(v);
        const std::uint64_t lo = Histogram::bucket_lower_bound(idx);
        EXPECT_LE(lo, v);
        // The bucket containing v starts within 12.5% below v.
        EXPECT_EQ(Histogram::bucket_index(lo), idx);
        EXPECT_GT(Histogram::bucket_lower_bound(idx + 1), v);
    }
}

TEST(Histogram, StatsAndPercentiles) {
    Histogram h;
    for (std::uint64_t v = 1; v <= 100; ++v) h.record(v);
    EXPECT_EQ(h.count(), 100u);
    EXPECT_EQ(h.sum(), 5050u);
    EXPECT_EQ(h.min(), 1u);
    EXPECT_EQ(h.max(), 100u);
    EXPECT_DOUBLE_EQ(h.mean(), 50.5);
    // Percentiles return the containing bucket's lower bound: within
    // 12.5% below the exact rank value.
    EXPECT_LE(h.percentile(50), 50u);
    EXPECT_GE(h.percentile(50), 44u);
    EXPECT_LE(h.percentile(99), 99u);
    EXPECT_GE(h.percentile(99), 87u);
    EXPECT_EQ(h.percentile(0), 1u);
    EXPECT_LE(h.percentile(100), 100u);
}

TEST(Histogram, BucketBoundariesExhaustive) {
    // Every reachable bucket: 0..7 exact, then (64 - 3) * 8 log buckets
    // up to bucket_index(2^64 - 1) = 495. Lower bounds must be strictly
    // increasing and each must map back to its own bucket.
    constexpr std::size_t kTopIndex = 495;
    ASSERT_EQ(Histogram::bucket_index(~std::uint64_t{0}), kTopIndex);
    std::uint64_t prev_lo = 0;
    for (std::size_t idx = 0; idx <= kTopIndex; ++idx) {
        const std::uint64_t lo = Histogram::bucket_lower_bound(idx);
        if (idx > 0) {
            EXPECT_GT(lo, prev_lo) << "index " << idx;
        }
        EXPECT_EQ(Histogram::bucket_index(lo), idx) << "index " << idx;
        prev_lo = lo;
    }

    // Power-of-two edges: for every msb, the values 2^k - 1, 2^k and
    // 2^k + 1 must land in a bucket whose range actually contains them.
    const auto check_contains = [&](std::uint64_t v) {
        const std::size_t idx = Histogram::bucket_index(v);
        ASSERT_LE(idx, kTopIndex) << "value " << v;
        EXPECT_LE(Histogram::bucket_lower_bound(idx), v) << "value " << v;
        if (idx < kTopIndex) {
            EXPECT_GT(Histogram::bucket_lower_bound(idx + 1), v) << "value " << v;
        }
    };
    check_contains(0);
    check_contains(~std::uint64_t{0});
    std::size_t prev_idx = 0;
    for (unsigned k = 1; k < 64; ++k) {
        const std::uint64_t edge = std::uint64_t{1} << k;
        for (const std::uint64_t v : {edge - 1, edge, edge + 1}) {
            check_contains(v);
            const std::size_t idx = Histogram::bucket_index(v);
            EXPECT_GE(idx, prev_idx) << "value " << v;  // monotone mapping
            prev_idx = idx;
        }
        // A power of two always starts its own bucket.
        EXPECT_EQ(Histogram::bucket_lower_bound(Histogram::bucket_index(edge)), edge);
    }
}

TEST(Histogram, PercentileNearestRank) {
    // Samples 0..7 stay in exact buckets, so percentile() must return
    // the exact nearest-rank statistic: rank ceil(p/100 * 8).
    Histogram h;
    for (std::uint64_t v = 0; v < 8; ++v) h.record(v);
    EXPECT_EQ(h.percentile(0), 0u);     // clamped to rank 1
    EXPECT_EQ(h.percentile(12.5), 0u);  // ceil(1.0) = 1
    EXPECT_EQ(h.percentile(13), 1u);    // ceil(1.04) = 2
    EXPECT_EQ(h.percentile(50), 3u);    // ceil(4.0) = 4
    EXPECT_EQ(h.percentile(51), 4u);    // ceil(4.08) = 5
    EXPECT_EQ(h.percentile(99), 7u);    // ceil(7.92) = 8
    EXPECT_EQ(h.percentile(100), 7u);

    // The case the round-half-up implementation got wrong: p33 of ten
    // samples 0..9 is rank ceil(3.3) = 4 (value 3), not rank 3.
    Histogram ten;
    for (std::uint64_t v = 0; v < 10; ++v) ten.record(v);
    EXPECT_EQ(ten.percentile(33), 3u);

    // Extremes of the value domain survive the bucket round trip.
    Histogram wide;
    wide.record(0);
    wide.record(~std::uint64_t{0});
    EXPECT_EQ(wide.percentile(0), 0u);
    EXPECT_EQ(wide.percentile(100),
              Histogram::bucket_lower_bound(Histogram::bucket_index(~std::uint64_t{0})));
}

TEST(Histogram, EmptyIsZero) {
    Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 0u);
    EXPECT_EQ(h.mean(), 0.0);
    EXPECT_EQ(h.percentile(50), 0u);
}

// --- Tracer ---------------------------------------------------------------

TEST(Tracer, CategoryMaskGatesEmission) {
    Tracer tracer;
    auto sink = std::make_unique<MemoryTraceSink>();
    MemoryTraceSink* mem = sink.get();
    tracer.set_sink(std::move(sink));

    EXPECT_FALSE(tracer.enabled(TraceCategory::kPacket));
    tracer.enable(TraceCategory::kPacket);
    EXPECT_TRUE(tracer.enabled(TraceCategory::kPacket));
    EXPECT_FALSE(tracer.enabled(TraceCategory::kTcp));

    tracer.emit(make_record(1, TraceCategory::kPacket, "pkt.enqueue", 0));
    tracer.emit(make_record(2, TraceCategory::kTcp, "tcp.cwnd", 0));  // disabled
    ASSERT_EQ(mem->records().size(), 1u);
    EXPECT_STREQ(mem->records()[0].event, "pkt.enqueue");
    EXPECT_EQ(tracer.records_written(), 1u);
}

TEST(Tracer, NoSinkMeansDisabled) {
    Tracer tracer;
    tracer.enable_all();
    EXPECT_FALSE(tracer.enabled(TraceCategory::kPacket));  // no sink attached
}

TEST(Tracer, SamplingKeepsOneOfN) {
    Tracer tracer;
    auto sink = std::make_unique<MemoryTraceSink>();
    MemoryTraceSink* mem = sink.get();
    tracer.set_sink(std::move(sink));
    tracer.enable(TraceCategory::kPacket);
    tracer.set_sample_every(TraceCategory::kPacket, 10);
    for (int i = 0; i < 100; ++i) {
        tracer.emit(make_record(i, TraceCategory::kPacket, "pkt.tx", 0));
    }
    EXPECT_EQ(mem->records().size(), 10u);
    EXPECT_EQ(mem->records()[0].t, 0);   // first of each stride is kept
    EXPECT_EQ(mem->records()[1].t, 10);
}

TEST(Tracer, CategoryNamesRoundTrip) {
    for (std::size_t i = 0; i < kNumTraceCategories; ++i) {
        const auto c = static_cast<TraceCategory>(i);
        const auto back = trace_category_from_name(trace_category_name(c));
        ASSERT_TRUE(back.has_value());
        EXPECT_EQ(*back, c);
    }
    EXPECT_FALSE(trace_category_from_name("nonsense").has_value());
}

TEST(JsonlTraceSink, WritesParsableLines) {
    const std::string path = temp_path("trace_test.jsonl");
    {
        JsonlTraceSink sink(path);
        sink.write(make_record(123, TraceCategory::kPacket, "pkt.drop",
                               /*node=*/4, /*peer=*/7, /*flow_id=*/9,
                               /*value=*/1500, /*fvalue=*/2.5));
        sink.write(make_record(456, TraceCategory::kTcp, "tcp.cwnd", 1));
        sink.flush();
    }
    std::ifstream in(path);
    std::string line;
    ASSERT_TRUE(std::getline(in, line));
    const auto v = json::Value::parse(line);
    EXPECT_EQ(v.at("t").as_number(), 123.0);
    EXPECT_EQ(v.at("cat").as_string(), "packet");
    EXPECT_EQ(v.at("event").as_string(), "pkt.drop");
    EXPECT_EQ(v.at("node").as_number(), 4.0);
    EXPECT_EQ(v.at("peer").as_number(), 7.0);
    EXPECT_EQ(v.at("flow").as_number(), 9.0);
    EXPECT_EQ(v.at("value").as_number(), 1500.0);
    EXPECT_EQ(v.at("fvalue").as_number(), 2.5);
    ASSERT_TRUE(std::getline(in, line));
    EXPECT_EQ(json::Value::parse(line).at("cat").as_string(), "tcp");
    std::remove(path.c_str());
}

TEST(CsvTraceSink, WritesHeaderAndRows) {
    const std::string path = temp_path("trace_test.csv");
    {
        CsvTraceSink sink(path);
        sink.write(make_record(5, TraceCategory::kRouting, "route.fstate_install",
                               -1, -1, 0, 42));
        sink.flush();
    }
    std::ifstream in(path);
    std::string line;
    ASSERT_TRUE(std::getline(in, line));
    EXPECT_EQ(line, "t_ns,category,event,node,peer,flow_id,value,fvalue");
    ASSERT_TRUE(std::getline(in, line));
    EXPECT_EQ(line.substr(0, 30), "5,routing,route.fstate_install");
    std::remove(path.c_str());
}

// --- JSON -----------------------------------------------------------------

TEST(Json, DumpParseRoundTrip) {
    json::Value v = json::Value::object();
    v["name"] = "hello \"world\"\n";
    v["count"] = 42;
    v["pi"] = 3.25;
    v["flag"] = true;
    v["nothing"] = json::Value();
    v["list"].push_back(1);
    v["list"].push_back("two");
    v["nested"]["deep"] = std::int64_t{1} << 50;

    const std::string text = v.dump();
    const json::Value back = json::Value::parse(text);
    EXPECT_EQ(back.dump(), text);                 // stable serialization
    EXPECT_EQ(back.at("name").as_string(), "hello \"world\"\n");
    EXPECT_EQ(back.at("count").as_number(), 42.0);
    EXPECT_TRUE(back.at("flag").as_bool());
    EXPECT_TRUE(back.at("nothing").is_null());
    EXPECT_EQ(back.at("list").as_array().size(), 2u);
    EXPECT_EQ(back.at("nested").at("deep").as_number(),
              static_cast<double>(std::int64_t{1} << 50));
    // Integers print without an exponent; keys are sorted.
    EXPECT_NE(text.find("\"count\":42"), std::string::npos);
    EXPECT_LT(text.find("\"count\""), text.find("\"name\""));
}

TEST(Json, ParseRejectsMalformed) {
    EXPECT_THROW(json::Value::parse("{"), std::runtime_error);
    EXPECT_THROW(json::Value::parse("[1,]"), std::runtime_error);
    EXPECT_THROW(json::Value::parse("{\"a\":1} trailing"), std::runtime_error);
    EXPECT_THROW(json::Value::parse(""), std::runtime_error);
}

TEST(Json, ParsesEscapesAndUnicode) {
    const auto v = json::Value::parse(R"(["a\tb", "é", "\\"])");
    const auto& a = v.as_array();
    EXPECT_EQ(a[0].as_string(), "a\tb");
    EXPECT_EQ(a[1].as_string(), "\xc3\xa9");  // é in UTF-8
    EXPECT_EQ(a[2].as_string(), "\\");
}

TEST(Json, DeepNestingFailsBoundedNotOverflow) {
    // 10k-deep documents must produce a parse error, not exhaust the
    // stack. Both container kinds, and both well- and ill-terminated.
    const std::string deep_arrays(10000, '[');
    EXPECT_THROW(json::Value::parse(deep_arrays), std::runtime_error);
    std::string deep_objects;
    for (int i = 0; i < 10000; ++i) deep_objects += "{\"k\":";
    EXPECT_THROW(json::Value::parse(deep_objects), std::runtime_error);
    std::string balanced = std::string(10000, '[') + "1" + std::string(10000, ']');
    EXPECT_THROW(json::Value::parse(balanced), std::runtime_error);

    // Anything at or under the documented limit of 256 levels parses.
    std::string ok = std::string(256, '[') + "1" + std::string(256, ']');
    EXPECT_EQ(json::Value::parse(ok).dump(), ok);
}

TEST(Json, NonFiniteNumbersSerializeAsNull) {
    json::Value v = json::Value::object();
    v["nan"] = std::nan("");
    v["inf"] = std::numeric_limits<double>::infinity();
    v["ninf"] = -std::numeric_limits<double>::infinity();
    v["fine"] = 1.5;
    const std::string text = v.dump();
    EXPECT_EQ(text, R"({"fine":1.5,"inf":null,"nan":null,"ninf":null})");
    // The output must be parseable by this very parser.
    const json::Value back = json::Value::parse(text);
    EXPECT_TRUE(back.at("nan").is_null());
    EXPECT_EQ(back.at("fine").as_number(), 1.5);
}

TEST(Json, SurrogatePairsDecodeLoneSurrogatesReplace) {
    // Valid pair: U+1F600 (😀) = 😀 -> 4-byte UTF-8.
    const auto pair = json::Value::parse(R"(["😀"])");
    EXPECT_EQ(pair.as_array()[0].as_string(), "\xF0\x9F\x98\x80");

    // Lone high, lone low, and high followed by a non-surrogate escape
    // all decode the orphan half to U+FFFD (EF BF BD) instead of
    // emitting an invalid surrogate encoding.
    const auto lone_high = json::Value::parse(R"(["\uD83D"])");
    EXPECT_EQ(lone_high.as_array()[0].as_string(), "\xEF\xBF\xBD");
    const auto lone_low = json::Value::parse(R"(["\uDE00"])");
    EXPECT_EQ(lone_low.as_array()[0].as_string(), "\xEF\xBF\xBD");
    const auto high_then_bmp = json::Value::parse(R"(["\uD83DA"])");
    EXPECT_EQ(high_then_bmp.as_array()[0].as_string(), "\xEF\xBF\xBD" "A");
    const auto high_then_escape = json::Value::parse(R"(["\uD83D\u0041"])");
    EXPECT_EQ(high_then_escape.as_array()[0].as_string(), "\xEF\xBF\xBD" "A");
}

TEST(Json, ControlCharactersEscapeAndRoundTrip) {
    std::string all_controls;
    for (char c = 1; c < 0x20; ++c) all_controls += c;  // \0 excluded: C-string tests
    json::Value v = json::Value::object();
    v["ctl"] = all_controls;
    const std::string text = v.dump();
    // Nothing below 0x20 may appear raw in the serialized form.
    for (const char c : text) {
        EXPECT_GE(static_cast<unsigned char>(c), 0x20u);
    }
    EXPECT_NE(text.find("\\u0001"), std::string::npos);
    EXPECT_NE(text.find("\\u001f"), std::string::npos);
    // Named short escapes win over \u for the common ones.
    EXPECT_NE(text.find("\\t"), std::string::npos);
    EXPECT_NE(text.find("\\n"), std::string::npos);
    const json::Value back = json::Value::parse(text);
    EXPECT_EQ(back.at("ctl").as_string(), all_controls);
    EXPECT_EQ(back.dump(), text);  // round-trip stable
}

// --- Profiler -------------------------------------------------------------

TEST(Profiler, NestedScopesSplitSelfTime) {
    auto& prof = profiler();
    prof.reset();
    volatile int spin = 0;
    {
        HYPATIA_PROFILE_SCOPE("outer");
        for (int i = 0; i < 100000; ++i) spin = i;
        {
            HYPATIA_PROFILE_SCOPE("inner");
            for (int i = 0; i < 100000; ++i) spin = i;
        }
    }
    (void)spin;
    const auto snap = prof.snapshot();
    ASSERT_TRUE(snap.count("outer"));
    ASSERT_TRUE(snap.count("inner"));
    const auto& outer = snap.at("outer");
    const auto& inner = snap.at("inner");
    EXPECT_EQ(outer.calls, 1u);
    EXPECT_EQ(inner.calls, 1u);
    // outer's inclusive time covers inner; its self time excludes it.
    EXPECT_GE(outer.total_ns, inner.total_ns);
    EXPECT_LE(outer.self_ns, outer.total_ns - inner.total_ns);
    EXPECT_LE(inner.self_ns, inner.total_ns);
    prof.reset();
}

TEST(Profiler, SampledScopeScalesCallsAndDuration) {
    auto& prof = profiler();
    prof.reset();
    for (int i = 0; i < 32; ++i) {
        HYPATIA_PROFILE_SCOPE_SAMPLED("sampled_phase", 16);
    }
    const auto snap = prof.snapshot();
    ASSERT_TRUE(snap.count("sampled_phase"));
    // 32 invocations at 1-in-16 sampling: 2 timed, each counted as 16.
    EXPECT_EQ(snap.at("sampled_phase").calls, 32u);
    prof.reset();
}

// --- RunManifest ----------------------------------------------------------

TEST(RunManifest, RoundTripsThroughDisk) {
    Profiler prof;
    prof.record("routing.snapshot", 2'000'000, 1'500'000, 4);
    prof.record("sim.event_loop", 10'000'000, 8'000'000, 1);
    MetricsRegistry reg;
    reg.counter("net.tx_packets").inc(123);
    reg.gauge("scenario.num_satellites").set(72.0);
    reg.histogram("tcp.rtt_us").record(30'000);

    RunManifest m;
    m.set_name("unit_test_run");
    m.stamp_environment();
    m.set_param("duration_s", 12.5);
    m.set_param("transport", "tcp");
    m.capture(prof, reg);

    EXPECT_FALSE(m.created_utc().empty());
    EXPECT_FALSE(m.git_describe().empty());

    const std::string path = temp_path("run_manifest_test.json");
    m.write(path);
    const RunManifest back = RunManifest::read_file(path);
    EXPECT_EQ(back.dump(), m.dump());  // lossless round trip
    EXPECT_EQ(back.name(), "unit_test_run");
    EXPECT_EQ(back.params().at("transport"), "tcp");
    EXPECT_EQ(back.metrics().at("net.tx_packets"), 123.0);
    EXPECT_EQ(back.metrics().at("tcp.rtt_us.count"), 1.0);
    ASSERT_TRUE(back.phases().count("routing.snapshot"));
    EXPECT_EQ(back.phases().at("routing.snapshot").calls, 4u);

    // The derived rollup groups phases into the paper's three buckets.
    const auto doc = json::Value::parse(read_all(path));
    ASSERT_TRUE(doc.contains("phase_breakdown"));
    const auto& breakdown = doc.at("phase_breakdown");
    EXPECT_GT(breakdown.at("routing").at("total_s").as_number(), 0.0);
    EXPECT_GT(breakdown.at("event_loop").at("total_s").as_number(), 0.0);
    EXPECT_EQ(breakdown.at("propagation").at("calls").as_number(), 0.0);
    std::remove(path.c_str());
}

// --- integration with the simulator --------------------------------------

TEST(Observability, SimulatorReportsIntoGlobalRegistry) {
    auto& reg = metrics();
    const std::uint64_t before = reg.counter("sim.events_executed").value();
    sim::Simulator sim;
    for (int i = 1; i <= 7; ++i) sim.schedule_at(i, [] {});
    sim.run_until(10);
    EXPECT_EQ(reg.counter("sim.events_executed").value(), before + 7);
    EXPECT_GE(reg.gauge("sim.event_queue_peak").value(), 7.0);
}

// --- Thread safety --------------------------------------------------------

TEST(MetricsThreadSafety, CounterHammeredFromEightThreadsIsExact) {
    MetricsRegistry reg;
    Counter& c = reg.counter("hammered");
    constexpr int kThreads = 8;
    constexpr std::uint64_t kIncsPerThread = 100'000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&c] {
            for (std::uint64_t i = 0; i < kIncsPerThread; ++i) c.inc();
        });
    }
    for (auto& th : threads) th.join();
    // Atomics make every increment land: the total is exact, not "close".
    EXPECT_EQ(c.value(), kThreads * kIncsPerThread);
}

TEST(MetricsThreadSafety, GaugeSetMaxKeepsGlobalPeakAcrossThreads) {
    MetricsRegistry reg;
    Gauge& g = reg.gauge("peak");
    std::vector<std::thread> threads;
    for (int t = 0; t < 8; ++t) {
        threads.emplace_back([&g, t] {
            for (int i = 0; i < 50'000; ++i) {
                g.set_max(static_cast<double>(t * 50'000 + i));
            }
        });
    }
    for (auto& th : threads) th.join();
    EXPECT_EQ(g.value(), 8.0 * 50'000 - 1);
}

TEST(MetricsThreadSafety, HistogramRecordsEveryObservation) {
    MetricsRegistry reg;
    Histogram& h = reg.histogram("hammered_hist");
    constexpr int kThreads = 8;
    constexpr int kRecordsPerThread = 20'000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&h] {
            for (int i = 0; i < kRecordsPerThread; ++i) {
                h.record(static_cast<double>(i % 100 + 1));
            }
        });
    }
    for (auto& th : threads) th.join();
    EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kRecordsPerThread);
    // Every thread records the same value stream, so the aggregate sum is
    // exactly kThreads * sum(1..100) * 200.
    EXPECT_DOUBLE_EQ(h.sum(), kThreads * 200.0 * (100.0 * 101.0 / 2.0));
    EXPECT_DOUBLE_EQ(h.min(), 1.0);
    EXPECT_DOUBLE_EQ(h.max(), 100.0);
}

TEST(MetricsThreadSafety, RegistryGetOrCreateRacesResolveToOneInstance) {
    MetricsRegistry reg;
    constexpr int kThreads = 8;
    std::vector<Counter*> seen(kThreads, nullptr);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&reg, &seen, t] {
            for (int i = 0; i < 1'000; ++i) {
                Counter& c = reg.counter("contended.name");
                c.inc();
                seen[static_cast<std::size_t>(t)] = &c;
            }
        });
    }
    for (auto& th : threads) th.join();
    for (int t = 1; t < kThreads; ++t) {
        EXPECT_EQ(seen[static_cast<std::size_t>(t)], seen[0]);
    }
    EXPECT_EQ(reg.counter("contended.name").value(), 8u * 1'000);
}

TEST(Observability, CoreSchemaIsRegisteredEagerly) {
    // Any binary that touches obs:: sees the full schema, so manifests
    // from routing-only benches still report the same metric names.
    auto& reg = metrics();
    EXPECT_GE(reg.size(), 10u);
    // Registration checks only (not value() == 0): earlier tests in this
    // binary may already have driven the simulator, and get-or-create
    // would mask a missing registration anyway.
    for (const char* name :
         {"sim.events_executed", "net.tx_packets", "net.queue_drops",
          "tcp.retransmissions", "route.fstate_installs", "route.dijkstra_runs",
          "propagation.sgp4_cache_fills"}) {
        EXPECT_EQ(reg.counters().count(name), 1u) << name;
    }
    EXPECT_EQ(reg.histograms().count("tcp.rtt_us"), 1u);
    EXPECT_EQ(reg.histograms().count("net.queue_depth"), 1u);
}

}  // namespace
}  // namespace hypatia::obs
