#include "src/orbit/coords.hpp"

#include <cmath>

#include <gtest/gtest.h>

namespace hypatia::orbit {
namespace {

TEST(GeodeticToEcef, EquatorPrimeMeridian) {
    const Vec3 p = geodetic_to_ecef({0.0, 0.0, 0.0});
    EXPECT_NEAR(p.x, Wgs72::kEarthRadiusKm, 1e-6);
    EXPECT_NEAR(p.y, 0.0, 1e-9);
    EXPECT_NEAR(p.z, 0.0, 1e-9);
}

TEST(GeodeticToEcef, NorthPoleUsesPolarRadius) {
    const Vec3 p = geodetic_to_ecef({90.0, 0.0, 0.0});
    const double polar_radius = Wgs72::kEarthRadiusKm * (1.0 - Wgs72::kFlattening);
    EXPECT_NEAR(p.z, polar_radius, 1e-6);
    EXPECT_NEAR(std::hypot(p.x, p.y), 0.0, 1e-6);
}

TEST(GeodeticToEcef, EastLongitudePositiveY) {
    const Vec3 p = geodetic_to_ecef({0.0, 90.0, 0.0});
    EXPECT_NEAR(p.y, Wgs72::kEarthRadiusKm, 1e-6);
    EXPECT_NEAR(p.x, 0.0, 1e-6);
}

TEST(EcefToGeodetic, RoundTripsManyPoints) {
    for (double lat = -85.0; lat <= 85.0; lat += 17.0) {
        for (double lon = -170.0; lon <= 170.0; lon += 35.0) {
            for (double alt : {0.0, 1.2, 550.0}) {
                const Geodetic g{lat, lon, alt};
                const Geodetic back = ecef_to_geodetic(geodetic_to_ecef(g));
                EXPECT_NEAR(back.latitude_deg, lat, 1e-8) << lat << "," << lon;
                EXPECT_NEAR(back.longitude_deg, lon, 1e-8);
                EXPECT_NEAR(back.altitude_km, alt, 1e-7);
            }
        }
    }
}

TEST(TemeToEcef, PureRotationPreservesNorm) {
    const Vec3 teme{4000.0, 3000.0, 2000.0};
    const auto jd = julian_date_from_utc(2000, 1, 1, 6, 0, 0.0);
    const Vec3 ecef = teme_to_ecef(teme, jd);
    EXPECT_NEAR(ecef.norm(), teme.norm(), 1e-9);
    EXPECT_NEAR(ecef.z, teme.z, 1e-12);  // rotation about the z axis
}

TEST(LookAngles, SatelliteDirectlyOverheadIsZenith) {
    const Geodetic obs_geo{45.0, 10.0, 0.0};
    const Vec3 obs = geodetic_to_ecef(obs_geo);
    const Vec3 target = geodetic_to_ecef({45.0, 10.0, 550.0});
    const auto look = look_angles(obs_geo, obs, target);
    EXPECT_NEAR(look.elevation_deg, 90.0, 0.05);
    EXPECT_NEAR(look.range_km, 550.0, 1.0);
}

TEST(LookAngles, TargetDueNorthHasZeroAzimuth) {
    const Geodetic obs_geo{0.0, 0.0, 0.0};
    const Vec3 obs = geodetic_to_ecef(obs_geo);
    const Vec3 target = geodetic_to_ecef({5.0, 0.0, 550.0});
    const auto look = look_angles(obs_geo, obs, target);
    EXPECT_NEAR(look.azimuth_deg, 0.0, 0.5);
    EXPECT_GT(look.elevation_deg, 0.0);
}

TEST(LookAngles, TargetDueEastHasAzimuth90) {
    const Geodetic obs_geo{0.0, 0.0, 0.0};
    const Vec3 obs = geodetic_to_ecef(obs_geo);
    const Vec3 target = geodetic_to_ecef({0.0, 5.0, 550.0});
    const auto look = look_angles(obs_geo, obs, target);
    EXPECT_NEAR(look.azimuth_deg, 90.0, 0.5);
}

TEST(LookAngles, AntipodalTargetBelowHorizon) {
    const Geodetic obs_geo{0.0, 0.0, 0.0};
    const Vec3 obs = geodetic_to_ecef(obs_geo);
    const Vec3 target = geodetic_to_ecef({0.0, 180.0, 550.0});
    const auto look = look_angles(obs_geo, obs, target);
    EXPECT_LT(look.elevation_deg, 0.0);
}

TEST(GreatCircle, KnownDistanceLondonNewYork) {
    // ~5570 km commonly quoted.
    const Geodetic london{51.5074, -0.1278, 0.0};
    const Geodetic new_york{40.7128, -74.0060, 0.0};
    const double d = great_circle_distance_km(london, new_york);
    EXPECT_NEAR(d, 5570.0, 60.0);
}

TEST(GreatCircle, ZeroForSamePoint) {
    const Geodetic p{10.0, 20.0, 0.0};
    EXPECT_NEAR(great_circle_distance_km(p, p), 0.0, 1e-9);
}

TEST(GreatCircle, SymmetricInArguments) {
    const Geodetic a{35.6762, 139.6503, 0.0};
    const Geodetic b{-33.8688, 151.2093, 0.0};
    EXPECT_DOUBLE_EQ(great_circle_distance_km(a, b), great_circle_distance_km(b, a));
}

TEST(GeodesicRtt, MatchesDistanceOverC) {
    const Geodetic a{0.0, 0.0, 0.0};
    const Geodetic b{0.0, 90.0, 0.0};
    const double d = great_circle_distance_km(a, b);
    EXPECT_NEAR(geodesic_rtt_s(a, b), 2.0 * d / kSpeedOfLightKmPerS, 1e-12);
}

}  // namespace
}  // namespace hypatia::orbit
