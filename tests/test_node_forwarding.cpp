#include <gtest/gtest.h>

#include "src/sim/network.hpp"

namespace hypatia::sim {
namespace {

// Chain: gs0 --GSL-- sat1 --ISL-- sat2 --GSL-- gs3.
struct Chain {
    Simulator sim;
    Network net{sim};

    Chain() {
        net.create_nodes(4);
        auto delay = [](int, int, TimeNs) { return TimeNs{1 * kNsPerMs}; };
        net.add_gsl(0, 1e7, 100, delay);
        net.add_gsl(1, 1e7, 100, delay);
        net.add_gsl(2, 1e7, 100, delay);
        net.add_gsl(3, 1e7, 100, delay);
        net.add_isl(1, 2, 1e7, 100, delay);
        // Static forwarding 0 -> 3 and back.
        net.node(0).set_next_hop(3, 1);
        net.node(1).set_next_hop(3, 2);
        net.node(2).set_next_hop(3, 3);
        net.node(3).set_next_hop(0, 2);
        net.node(2).set_next_hop(0, 1);
        net.node(1).set_next_hop(0, 0);
    }
};

TEST(NodeForwarding, PacketTraversesChain) {
    Chain c;
    int got = 0;
    c.net.node(3).set_flow_handler(9, [&](const Packet&) { ++got; });
    Packet p;
    p.src_node = 0;
    p.dst_node = 3;
    p.size_bytes = 100;
    p.flow_id = 9;
    c.net.node(0).receive(p);
    c.sim.run_until(kNsPerSec);
    EXPECT_EQ(got, 1);
}

TEST(NodeForwarding, HopCountIncrements) {
    Chain c;
    int hops = -1;
    c.net.node(3).set_flow_handler(9, [&](const Packet& p) { hops = p.hops; });
    Packet p;
    p.src_node = 0;
    p.dst_node = 3;
    p.size_bytes = 100;
    p.flow_id = 9;
    c.net.node(0).receive(p);
    c.sim.run_until(kNsPerSec);
    EXPECT_EQ(hops, 3);  // forwarded at 0, 1, 2
}

TEST(NodeForwarding, NoRouteDrops) {
    Chain c;
    Packet p;
    p.src_node = 0;
    p.dst_node = 3;
    p.size_bytes = 100;
    p.flow_id = 9;
    c.net.node(0).set_next_hop(3, -1);  // unreachable (disconnection)
    c.net.node(0).receive(p);
    c.sim.run_until(kNsPerSec);
    EXPECT_EQ(c.net.node(0).no_route_drops(), 1u);
    EXPECT_EQ(c.net.node(3).delivered_packets(), 0u);
}

TEST(NodeForwarding, ReroutingMidFlightTakesNewPath) {
    // Swap sat1's next hop while a packet sits in its queue: the routing
    // decision was already made at enqueue time (like ns-3), so the queued
    // packet still crosses the old path, and the next packet uses the new.
    Chain c;
    // Also create an alternate ISL 1 -> 3 shortcut for rerouting.
    c.net.add_isl(1, 3, 1e7, 100, [](int, int, TimeNs) { return TimeNs{1 * kNsPerMs}; });
    std::vector<int> hop_counts;
    c.net.node(3).set_flow_handler(9, [&](const Packet& p) {
        hop_counts.push_back(p.hops);
    });
    Packet p;
    p.src_node = 0;
    p.dst_node = 3;
    p.size_bytes = 100;
    p.flow_id = 9;
    c.net.node(0).receive(p);
    c.sim.schedule_at(10 * kNsPerMs, [&c]() { c.net.node(1).set_next_hop(3, 3); });
    c.sim.schedule_at(20 * kNsPerMs, [&c, p]() mutable { c.net.node(0).receive(p); });
    c.sim.run_until(kNsPerSec);
    ASSERT_EQ(hop_counts.size(), 2u);
    EXPECT_EQ(hop_counts[0], 3);  // old path via sat2
    EXPECT_EQ(hop_counts[1], 2);  // shortcut via ISL 1->3
}

TEST(NodeForwarding, TtlGuardDropsLoops) {
    Chain c;
    // Create a two-node forwarding loop between sat1 and sat2.
    c.net.node(1).set_next_hop(3, 2);
    c.net.node(2).set_next_hop(3, 1);
    Packet p;
    p.src_node = 0;
    p.dst_node = 3;
    p.size_bytes = 100;
    p.flow_id = 9;
    c.net.node(0).receive(p);
    c.sim.run_until(kNsPerSec);
    EXPECT_EQ(c.net.node(3).delivered_packets(), 0u);
    EXPECT_EQ(c.net.node(1).ttl_drops() + c.net.node(2).ttl_drops(), 1u);
}

TEST(NodeForwarding, LocalDeliveryDoesNotForward) {
    Chain c;
    int got = 0;
    c.net.node(0).set_flow_handler(5, [&](const Packet&) { ++got; });
    Packet p;
    p.src_node = 3;
    p.dst_node = 0;
    p.size_bytes = 100;
    p.flow_id = 5;
    c.net.node(0).receive(p);  // arrives at its own destination
    c.sim.run_until(kNsPerSec);
    EXPECT_EQ(got, 1);
    EXPECT_EQ(c.net.node(0).delivered_packets(), 1u);
}

}  // namespace
}  // namespace hypatia::sim
