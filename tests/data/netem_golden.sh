#!/bin/sh
# netem replay: Paris (gs 0) -> Luanda (gs 1), 12 entries, 500 ms step
# usage: DEV=<iface> sh <this script>   (requires root / CAP_NET_ADMIN)
set -e
DEV="${DEV:-eth0}"
tc qdisc replace dev "$DEV" root netem delay 65108us loss 0% rate 10000000bit
sleep 0.500
tc qdisc replace dev "$DEV" root netem delay 65109us loss 0% rate 10000000bit
sleep 0.500
tc qdisc replace dev "$DEV" root netem delay 65111us loss 0% rate 10000000bit
sleep 0.500
tc qdisc replace dev "$DEV" root netem delay 65113us loss 0% rate 10000000bit
sleep 0.500
tc qdisc replace dev "$DEV" root netem delay 0us loss 100%
sleep 2.000
tc qdisc replace dev "$DEV" root netem delay 65123us loss 0% rate 10000000bit
sleep 0.500
tc qdisc replace dev "$DEV" root netem delay 65125us loss 0% rate 10000000bit
sleep 0.500
tc qdisc replace dev "$DEV" root netem delay 65127us loss 0% rate 10000000bit
sleep 0.500
tc qdisc replace dev "$DEV" root netem delay 65130us loss 0% rate 10000000bit
sleep 0.500
tc qdisc del dev "$DEV" root 2>/dev/null || true
