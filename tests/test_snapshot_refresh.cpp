// SnapshotRefresher correctness: the in-place refresh pipeline must be
// indistinguishable — byte for byte — from rebuilding the snapshot from
// scratch, under ISL weight drift, GSL visibility churn (weather cones),
// relay flags and the nearest-satellite policy. Plus the
// HYPATIA_SNAPSHOT_MODE plumbing through every epoch consumer.
#include "src/routing/snapshot_refresh.hpp"

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/leo_network.hpp"
#include "src/flowsim/engine.hpp"
#include "src/flowsim/traffic.hpp"
#include "src/routing/forwarding.hpp"
#include "src/routing/path_analysis.hpp"
#include "src/topology/cities.hpp"
#include "src/topology/constellation.hpp"
#include "src/topology/isl.hpp"
#include "src/topology/mobility.hpp"
#include "src/util/thread_pool.hpp"

namespace hypatia {
namespace {

std::string fmt(double v) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

// Serializes a graph through the same iteration the routing code uses,
// so two graphs dump identically iff Dijkstra sees identical inputs.
std::string dump_graph(const route::Graph& g) {
    std::string out;
    for (int node = 0; node < g.num_nodes(); ++node) {
        out += std::to_string(node);
        out += g.can_relay(node) ? "R:" : ":";
        g.for_each_neighbor(node, [&](const route::Edge& e) {
            out += " " + std::to_string(e.to) + "/" + fmt(e.distance_km);
        });
        out += "\n";
    }
    return out;
}

// Sets an environment variable for the enclosing scope, restoring by
// unsetting (the unset default is refresh mode, same as the suite's).
struct ScopedEnv {
    explicit ScopedEnv(const char* name, const char* value) : name_(name) {
        ::setenv(name, value, 1);
    }
    ~ScopedEnv() { ::unsetenv(name_); }
    const char* name_;
};

struct Substrate {
    topo::Constellation constellation;
    topo::SatelliteMobility mobility;
    std::vector<topo::Isl> isls;
    std::vector<orbit::GroundStation> gses;

    Substrate()
        : constellation(topo::shell_by_name("kuiper_k1"), topo::default_epoch()),
          mobility(constellation),
          isls(topo::build_isls(constellation, topo::IslPattern::kPlusGrid)),
          gses(topo::top100_cities()) {
        gses.erase(gses.begin() + 10, gses.end());
    }
};

TEST(SnapshotMode, EnvParsing) {
    {
        ScopedEnv env("HYPATIA_SNAPSHOT_MODE", "rebuild");
        EXPECT_EQ(route::snapshot_mode_from_env(), route::SnapshotMode::kRebuild);
    }
    {
        ScopedEnv env("HYPATIA_SNAPSHOT_MODE", "refresh");
        EXPECT_EQ(route::snapshot_mode_from_env(), route::SnapshotMode::kRefresh);
    }
    {
        ScopedEnv env("HYPATIA_SNAPSHOT_MODE", "bogus");
        EXPECT_EQ(route::snapshot_mode_from_env(), route::SnapshotMode::kRefresh);
    }
    ::unsetenv("HYPATIA_SNAPSHOT_MODE");
    EXPECT_EQ(route::snapshot_mode_from_env(), route::SnapshotMode::kRefresh);
}

TEST(SnapshotRefresher, FirstRefreshMatchesBuildSnapshot) {
    Substrate s;
    route::SnapshotRefresher refresher(s.mobility, s.isls, s.gses);
    const route::Graph& refreshed = refresher.refresh(0);
    const route::Graph rebuilt = route::build_snapshot(s.mobility, s.isls, s.gses, 0);
    EXPECT_EQ(dump_graph(refreshed), dump_graph(rebuilt));
    EXPECT_EQ(refreshed.num_edges(), rebuilt.num_edges());
    // Every GS with visibility counts as structurally patched on the
    // first refresh (the overlay starts empty).
    EXPECT_GT(refresher.last_rows_patched(), 0u);
}

TEST(SnapshotRefresher, RepeatRefreshAtSameTimePatchesNothing) {
    Substrate s;
    route::SnapshotRefresher refresher(s.mobility, s.isls, s.gses);
    refresher.refresh(5 * kNsPerSec);
    const std::string first = dump_graph(refresher.graph());
    refresher.refresh(5 * kNsPerSec);
    EXPECT_EQ(refresher.last_rows_patched(), 0u);
    EXPECT_EQ(dump_graph(refresher.graph()), first);
}

TEST(SnapshotRefresher, TracksRebuildUnderVisibilityChurn) {
    // Coarse 5 s strides plus an oscillating weather cone force real
    // structural churn in the GSL rows; the refreshed graph must stay
    // byte-identical to a from-scratch rebuild at every step, and the
    // O(1) edge counter must track the true (ISL + GSL) edge count.
    Substrate s;
    route::SnapshotOptions opts;
    opts.relay_gs_indices = {1};
    opts.gsl_range_factor = [](int gs_index, TimeNs t) {
        return 0.55 + 0.08 * static_cast<double>((gs_index + t / (5 * kNsPerSec)) % 6);
    };
    route::SnapshotRefresher refresher(s.mobility, s.isls, s.gses, opts);
    std::size_t structurally_changed_steps = 0;
    for (int step = 0; step < 12; ++step) {
        const TimeNs t = step * 5 * kNsPerSec;
        const route::Graph& refreshed = refresher.refresh(t);
        const route::Graph rebuilt =
            route::build_snapshot(s.mobility, s.isls, s.gses, t, opts);
        ASSERT_EQ(dump_graph(refreshed), dump_graph(rebuilt)) << "step " << step;
        ASSERT_EQ(refreshed.num_edges(), rebuilt.num_edges()) << "step " << step;
        if (step > 0 && refresher.last_rows_patched() > 0) {
            ++structurally_changed_steps;
        }
    }
    // The churn hook must actually have exercised the delta-patch path.
    EXPECT_GT(structurally_changed_steps, 0u);
}

TEST(SnapshotRefresher, NearestSatelliteOnlyMatchesRebuild) {
    Substrate s;
    route::SnapshotOptions opts;
    opts.gs_nearest_satellite_only = true;
    route::SnapshotRefresher refresher(s.mobility, s.isls, s.gses, opts);
    for (int step = 0; step < 6; ++step) {
        const TimeNs t = step * 10 * kNsPerSec;
        const route::Graph& refreshed = refresher.refresh(t);
        const route::Graph rebuilt =
            route::build_snapshot(s.mobility, s.isls, s.gses, t, opts);
        ASSERT_EQ(dump_graph(refreshed), dump_graph(rebuilt)) << "step " << step;
    }
}

TEST(SnapshotRefresher, FaultChurnMatchesRebuildAtAnyThreadCount) {
    // A churny generated fault schedule (satellite, ISL and GS outages
    // flipping every few tens of seconds) must leave refresh and rebuild
    // byte-identical at every step — and the dumps identical across
    // thread counts, since the GS scan fans out on the pool.
    Substrate s;
    fault::FaultConfig cfg;
    cfg.seed = 21;
    cfg.horizon = 60 * kNsPerSec;
    cfg.sat_mtbf_s = 40.0;
    cfg.sat_mttr_s = 20.0;
    cfg.isl_mtbf_s = 30.0;
    cfg.isl_mttr_s = 15.0;
    cfg.gs_mtbf_s = 50.0;
    cfg.gs_mttr_s = 25.0;
    const auto sched = fault::FaultSchedule::generate(
        cfg, s.constellation.num_satellites(), s.isls, s.gses);
    ASSERT_FALSE(sched.empty());
    route::SnapshotOptions opts;
    opts.faults = &sched;

    std::vector<std::string> per_thread_dumps;
    for (const std::size_t threads : {1u, 2u, 8u}) {
        util::ThreadPool::set_global_threads(threads);
        std::string all_steps;
        route::SnapshotRefresher refresher(s.mobility, s.isls, s.gses, opts);
        for (int step = 0; step < 7; ++step) {
            const TimeNs t = step * 8 * kNsPerSec;
            const route::Graph& refreshed = refresher.refresh(t);
            const route::Graph rebuilt =
                route::build_snapshot(s.mobility, s.isls, s.gses, t, opts);
            ASSERT_EQ(dump_graph(refreshed), dump_graph(rebuilt))
                << "threads " << threads << " step " << step;
            all_steps += dump_graph(refreshed);
        }
        per_thread_dumps.push_back(std::move(all_steps));
    }
    util::ThreadPool::set_global_threads(0);
    EXPECT_EQ(per_thread_dumps[0], per_thread_dumps[1]);
    EXPECT_EQ(per_thread_dumps[0], per_thread_dumps[2]);
}

// --- Consumer plumbing ------------------------------------------------------

std::string analysis_dump(const Substrate& s) {
    const std::vector<route::GsPair> pairs = {{0, 5}, {1, 5}, {2, 7}, {3, 9}};
    route::AnalysisOptions opts;
    opts.t_start = 0;
    opts.t_end = 12 * 100 * kNsPerMs;
    opts.step = 100 * kNsPerMs;
    std::string dump;
    opts.per_step_observer = [&](TimeNs t, int pair, double rtt_s,
                                 const std::vector<int>& path) {
        dump += std::to_string(t) + "," + std::to_string(pair) + "," + fmt(rtt_s) + ",";
        for (const int node : path) dump += std::to_string(node) + " ";
        dump += "\n";
    };
    const auto result = route::analyze_pairs(s.mobility, s.isls, s.gses, pairs, opts);
    for (std::size_t pi = 0; pi < result.pair_stats.size(); ++pi) {
        const auto& st = result.pair_stats[pi];
        dump += fmt(st.min_rtt_s) + "," + fmt(st.max_rtt_s) + "," +
                std::to_string(st.path_changes) + "," +
                std::to_string(st.unreachable_steps) + "\n";
    }
    return dump;
}

TEST(SnapshotModeConsumers, AnalyzePairsIdenticalInBothModes) {
    Substrate s;
    std::string rebuild_dump, refresh_dump;
    {
        ScopedEnv env("HYPATIA_SNAPSHOT_MODE", "rebuild");
        rebuild_dump = analysis_dump(s);
    }
    {
        ScopedEnv env("HYPATIA_SNAPSHOT_MODE", "refresh");
        refresh_dump = analysis_dump(s);
    }
    EXPECT_FALSE(rebuild_dump.empty());
    EXPECT_EQ(rebuild_dump, refresh_dump);
}

std::string flowsim_dump() {
    core::Scenario scenario;
    scenario.shell = topo::shell_by_name("kuiper_k1");
    scenario.ground_stations = {topo::city_by_name("Manila"),
                                topo::city_by_name("Dalian"),
                                topo::city_by_name("Tokyo"),
                                topo::city_by_name("Seoul")};
    flowsim::PoissonTrafficConfig cfg;
    cfg.num_gs = 4;
    cfg.arrivals_per_s = 20.0;
    cfg.mean_size_bits = 4e6;
    cfg.window = 3 * kNsPerSec;
    cfg.seed = 11;
    flowsim::EngineOptions opts;
    opts.epoch = 500 * kNsPerMs;
    opts.duration = 5 * kNsPerSec;
    opts.resolve_on_completion = true;
    flowsim::Engine engine(scenario, flowsim::poisson_traffic(cfg), opts);
    const auto summary = engine.run();
    std::string dump;
    for (std::size_t f = 0; f < summary.flows.size(); ++f) {
        const auto& o = summary.flows[f];
        dump += std::to_string(o.completion) + "," + fmt(o.bits_sent) + "," +
                fmt(o.last_rate_bps) + "\n";
    }
    return dump;
}

TEST(SnapshotModeConsumers, FlowsimCompletionTimesIdenticalInBothModes) {
    std::string rebuild_dump, refresh_dump;
    {
        ScopedEnv env("HYPATIA_SNAPSHOT_MODE", "rebuild");
        rebuild_dump = flowsim_dump();
    }
    {
        ScopedEnv env("HYPATIA_SNAPSHOT_MODE", "refresh");
        refresh_dump = flowsim_dump();
    }
    EXPECT_FALSE(rebuild_dump.empty());
    EXPECT_EQ(rebuild_dump, refresh_dump);
}

std::string leo_network_dump() {
    core::Scenario s;
    s.shell = topo::shell_by_name("kuiper_k1");
    s.ground_stations = {topo::city_by_name("Manila"), topo::city_by_name("Dalian"),
                         topo::city_by_name("Tokyo")};
    core::LeoNetwork leo(s);
    leo.add_destination(1);
    leo.add_destination(2);
    leo.run(500 * kNsPerMs);
    return leo.current_fstate().dump_csv();
}

TEST(SnapshotModeConsumers, LeoNetworkFstateIdenticalInBothModes) {
    std::string rebuild_dump, refresh_dump;
    {
        ScopedEnv env("HYPATIA_SNAPSHOT_MODE", "rebuild");
        rebuild_dump = leo_network_dump();
    }
    {
        ScopedEnv env("HYPATIA_SNAPSHOT_MODE", "refresh");
        refresh_dump = leo_network_dump();
    }
    EXPECT_FALSE(rebuild_dump.empty());
    EXPECT_EQ(rebuild_dump, refresh_dump);
}

}  // namespace
}  // namespace hypatia
