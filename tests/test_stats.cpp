#include "src/util/stats.hpp"

#include <gtest/gtest.h>

namespace hypatia::util {
namespace {

TEST(Percentile, EmptyReturnsZero) { EXPECT_EQ(percentile({}, 50.0), 0.0); }

TEST(Percentile, SingleValue) { EXPECT_EQ(percentile({42.0}, 50.0), 42.0); }

TEST(Percentile, MedianInterpolates) {
    EXPECT_DOUBLE_EQ(percentile({1.0, 2.0, 3.0, 4.0}, 50.0), 2.5);
}

TEST(Percentile, ExtremesClampToMinMax) {
    std::vector<double> v = {5.0, 1.0, 3.0};
    EXPECT_EQ(percentile(v, 0.0), 1.0);
    EXPECT_EQ(percentile(v, 100.0), 5.0);
}

TEST(Percentile, UnsortedInputHandled) {
    EXPECT_DOUBLE_EQ(percentile({9.0, 1.0, 5.0}, 50.0), 5.0);
}

TEST(Summarize, BasicFields) {
    const auto s = summarize({1.0, 2.0, 3.0, 4.0, 5.0});
    EXPECT_EQ(s.count, 5u);
    EXPECT_EQ(s.min, 1.0);
    EXPECT_EQ(s.max, 5.0);
    EXPECT_DOUBLE_EQ(s.mean, 3.0);
    EXPECT_DOUBLE_EQ(s.median, 3.0);
}

TEST(Ecdf, FractionsAreMonotoneAndEndAtOne) {
    const auto points = ecdf({3.0, 1.0, 2.0, 2.0});
    ASSERT_FALSE(points.empty());
    for (std::size_t i = 1; i < points.size(); ++i) {
        EXPECT_LE(points[i - 1].x, points[i].x);
        EXPECT_LT(points[i - 1].fraction, points[i].fraction);
    }
    EXPECT_DOUBLE_EQ(points.back().fraction, 1.0);
    EXPECT_DOUBLE_EQ(points.back().x, 3.0);
}

TEST(Ecdf, ThinningKeepsLastPoint) {
    std::vector<double> v(1000);
    for (std::size_t i = 0; i < v.size(); ++i) v[i] = static_cast<double>(i);
    const auto points = ecdf(v, 10);
    EXPECT_LE(points.size(), 12u);
    EXPECT_DOUBLE_EQ(points.back().fraction, 1.0);
    EXPECT_DOUBLE_EQ(points.back().x, 999.0);
}

TEST(RunningStats, TracksMinMaxMean) {
    RunningStats rs;
    rs.add(2.0);
    rs.add(-1.0);
    rs.add(5.0);
    EXPECT_EQ(rs.count(), 3u);
    EXPECT_EQ(rs.min(), -1.0);
    EXPECT_EQ(rs.max(), 5.0);
    EXPECT_DOUBLE_EQ(rs.mean(), 2.0);
}

TEST(RunningStats, EmptyMeanIsZero) {
    RunningStats rs;
    EXPECT_EQ(rs.mean(), 0.0);
}

}  // namespace
}  // namespace hypatia::util
