// Parameterized sweeps over the UDP/ping applications: goodput formula,
// loss behaviour, and RTT correctness across rates, packet sizes and
// delays on a static chain.
#include <gtest/gtest.h>

#include "src/sim/ping_app.hpp"
#include "src/sim/udp_app.hpp"

namespace hypatia::sim {
namespace {

struct UdpCase {
    double rate_fraction;  // offered load as a fraction of line rate
    int packet_size;
    TimeNs link_delay;
};

std::string udp_case_name(const ::testing::TestParamInfo<UdpCase>& info) {
    const auto& p = info.param;
    return "load" + std::to_string(static_cast<int>(p.rate_fraction * 100)) + "_sz" +
           std::to_string(p.packet_size) + "_d" +
           std::to_string(p.link_delay / kNsPerMs);
}

class UdpGrid : public ::testing::TestWithParam<UdpCase> {
  protected:
    static constexpr double kLineRate = 1e7;

    void SetUp() override {
        net_ = std::make_unique<Network>(sim_);
        net_->create_nodes(4);
        auto delay = [d = GetParam().link_delay](int, int, TimeNs) { return d; };
        for (int n = 0; n < 4; ++n) net_->add_gsl(n, kLineRate, 100, delay);
        net_->add_isl(1, 2, kLineRate, 100, delay);
        net_->node(0).set_next_hop(3, 1);
        net_->node(1).set_next_hop(3, 2);
        net_->node(2).set_next_hop(3, 3);
        net_->node(3).set_next_hop(0, 2);
        net_->node(2).set_next_hop(0, 1);
        net_->node(1).set_next_hop(0, 0);
    }

    Simulator sim_;
    std::unique_ptr<Network> net_;
};

TEST_P(UdpGrid, GoodputMatchesOfferOrCapacity) {
    const auto& p = GetParam();
    UdpFlow::Config cfg;
    cfg.flow_id = 1;
    cfg.src_node = 0;
    cfg.dst_node = 3;
    cfg.rate_bps = p.rate_fraction * kLineRate;
    cfg.packet_size_bytes = p.packet_size;
    cfg.stop = 4 * kNsPerSec;
    UdpFlow flow(*net_, cfg);
    sim_.run_until(6 * kNsPerSec);

    const double payload_fraction =
        static_cast<double>(p.packet_size - kHeaderBytes) / p.packet_size;
    const double offered_goodput = cfg.rate_bps * payload_fraction;
    const double capacity_goodput = kLineRate * payload_fraction;
    const double expected = std::min(offered_goodput, capacity_goodput);
    EXPECT_NEAR(flow.goodput_bps(4 * kNsPerSec), expected, 0.08 * expected);
}

TEST_P(UdpGrid, NoLossBelowCapacity) {
    const auto& p = GetParam();
    if (p.rate_fraction >= 1.0) GTEST_SKIP() << "overload case";
    UdpFlow::Config cfg;
    cfg.flow_id = 1;
    cfg.src_node = 0;
    cfg.dst_node = 3;
    cfg.rate_bps = p.rate_fraction * kLineRate;
    cfg.packet_size_bytes = p.packet_size;
    cfg.stop = 2 * kNsPerSec;
    UdpFlow flow(*net_, cfg);
    sim_.run_until(4 * kNsPerSec);
    EXPECT_EQ(flow.received_packets(), flow.sent_packets());
}

TEST_P(UdpGrid, PingRttIndependentOfUdpLoad) {
    // Ping through the idle reverse path measures 6x the link delay even
    // while a forward UDP flow runs (distinct queues per direction...
    // except the shared first device, loaded below capacity here).
    const auto& p = GetParam();
    if (p.rate_fraction >= 1.0) GTEST_SKIP() << "overload distorts RTT";
    UdpFlow::Config u;
    u.flow_id = 1;
    u.src_node = 0;
    u.dst_node = 3;
    u.rate_bps = p.rate_fraction * kLineRate * 0.5;
    u.packet_size_bytes = p.packet_size;
    u.stop = 2 * kNsPerSec;
    UdpFlow udp(*net_, u);
    PingApp::Config c;
    c.flow_id = 2;
    c.src_node = 0;
    c.dst_node = 3;
    c.interval = 100 * kNsPerMs;
    c.stop = 2 * kNsPerSec;
    PingApp ping(*net_, c);
    sim_.run_until(4 * kNsPerSec);
    ASSERT_GT(ping.replies(), 10u);
    const double base_ms = 6.0 * ns_to_ms(p.link_delay);
    // Queueing bound: the ping can wait behind a couple of UDP packets at
    // each of the 3 forward devices (reverse path is idle).
    const double serialization_ms = p.packet_size * 8.0 / kLineRate * 1e3;
    const double bound_ms = base_ms + 6.0 * serialization_ms + 2.0;
    for (const auto& s : ping.samples()) {
        if (!s.replied) continue;
        EXPECT_GE(ns_to_ms(s.rtt), base_ms);
        EXPECT_LT(ns_to_ms(s.rtt), bound_ms);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, UdpGrid,
    ::testing::Values(UdpCase{0.25, 1500, 2 * kNsPerMs},
                      UdpCase{0.5, 500, 2 * kNsPerMs},
                      UdpCase{0.9, 1500, 10 * kNsPerMs},
                      UdpCase{0.5, 9000, 5 * kNsPerMs},
                      UdpCase{1.5, 1500, 2 * kNsPerMs}),
    udp_case_name);

}  // namespace
}  // namespace hypatia::sim
