#include <gtest/gtest.h>

#include "src/sim/tcp_socket.hpp"

namespace hypatia::sim {
namespace {

// gs0 --GSL-- sat1 --ISL-- sat2 --GSL-- gs3 with adjustable ISL delay.
struct BbrNet {
    Simulator sim;
    Network net{sim};
    TimeNs isl_delay = 4 * kNsPerMs;

    explicit BbrNet(double rate = 1e7, std::size_t qcap = 100) {
        net.create_nodes(4);
        auto gsl = [](int, int, TimeNs) { return TimeNs{4 * kNsPerMs}; };
        auto isl = [this](int, int, TimeNs) { return isl_delay; };
        for (int n = 0; n < 4; ++n) net.add_gsl(n, rate, qcap, gsl);
        net.add_isl(1, 2, rate, qcap, isl);
        net.node(0).set_next_hop(3, 1);
        net.node(1).set_next_hop(3, 2);
        net.node(2).set_next_hop(3, 3);
        net.node(3).set_next_hop(0, 2);
        net.node(2).set_next_hop(0, 1);
        net.node(1).set_next_hop(0, 0);
    }

    TcpConfig config() {
        TcpConfig cfg;
        cfg.flow_id = 1;
        cfg.src_node = 0;
        cfg.dst_node = 3;
        cfg.delayed_ack = false;  // cleaner rate samples for BBR
        return cfg;
    }
};

TEST(TcpBbr, AchievesNearLineRate) {
    BbrNet t;
    TcpFlow flow(t.net, t.config(), make_bbr());
    t.sim.run_until(30 * kNsPerSec);
    const double goodput = static_cast<double>(flow.delivered_bytes()) * 8.0 / 30.0;
    EXPECT_GT(goodput, 0.75 * 9.6e6);
}

TEST(TcpBbr, KeepsQueueMostlyEmpty) {
    // Unlike NewReno, BBR should not ride the full 100-packet queue:
    // steady-state RTT stays near propagation (24 ms), far below the
    // 144 ms full-queue RTT.
    BbrNet t;
    TcpFlow flow(t.net, t.config(), make_bbr());
    t.sim.run_until(30 * kNsPerSec);
    std::vector<TimeNs> late;
    for (const auto& s : flow.rtt_trace()) {
        if (s.t > 15 * kNsPerSec) late.push_back(s.rtt);
    }
    ASSERT_FALSE(late.empty());
    std::sort(late.begin(), late.end());
    const TimeNs median = late[late.size() / 2];
    EXPECT_LT(ns_to_ms(median), 60.0);
}

TEST(TcpBbr, SurvivesPropagationDelayIncrease) {
    // The Vegas killer (paper Fig 5): RTT rises from satellite motion.
    // BBR's model raises its BDP estimate instead of collapsing.
    BbrNet t;
    TcpFlow flow(t.net, t.config(), make_bbr());
    flow.enable_delivery_bins(1 * kNsPerSec, 60 * kNsPerSec);
    t.sim.schedule_at(20 * kNsPerSec, [&t]() { t.isl_delay = 20 * kNsPerMs; });
    t.sim.run_until(60 * kNsPerSec);
    const auto rates = flow.delivery_rate_bps();
    double before = 0.0, after = 0.0;
    for (int i = 10; i < 19; ++i) before += rates[static_cast<std::size_t>(i)] / 9.0;
    for (int i = 40; i < 59; ++i) after += rates[static_cast<std::size_t>(i)] / 19.0;
    // Within 35% of the pre-change throughput (Vegas drops > 3x here).
    EXPECT_GT(after, 0.65 * before);
}

TEST(TcpBbr, PacingSpreadsPackets) {
    // With pacing, the sender must not burst entire windows at once:
    // inter-departure times at the first device stay bounded.
    BbrNet t;
    TcpFlow flow(t.net, t.config(), make_bbr());
    t.sim.run_until(5 * kNsPerSec);
    // Bottleneck queue never gets the whole window dumped into it.
    const auto& first_dev = *t.net.devices()[0];  // gs0's GSL device
    EXPECT_LT(first_dev.queue().drops(), 10u);
}

TEST(TcpBbr, FiniteTransferCompletes) {
    BbrNet t;
    auto cfg = t.config();
    cfg.max_segments = 400;
    TcpFlow flow(t.net, cfg, make_bbr());
    t.sim.run_until(60 * kNsPerSec);
    EXPECT_EQ(flow.delivered_segments(), 400u);
}

TEST(TcpBbr, SurvivesBlackhole) {
    BbrNet t;
    TcpFlow flow(t.net, t.config(), make_bbr());
    t.sim.schedule_at(5 * kNsPerSec, [&t]() { t.net.node(0).set_next_hop(3, -1); });
    t.sim.schedule_at(8 * kNsPerSec, [&t]() { t.net.node(0).set_next_hop(3, 1); });
    t.sim.run_until(20 * kNsPerSec);
    EXPECT_GT(flow.timeouts(), 0u);
    const double late_goodput =
        static_cast<double>(flow.delivered_bytes()) * 8.0;
    EXPECT_GT(late_goodput, 8e7);  // recovered and kept moving
}

}  // namespace
}  // namespace hypatia::sim
