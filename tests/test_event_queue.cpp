#include "src/sim/event_queue.hpp"
#include "src/sim/simulator.hpp"

#include <gtest/gtest.h>

namespace hypatia::sim {
namespace {

TEST(EventQueue, PopsInTimeOrder) {
    EventQueue q;
    std::vector<int> order;
    q.push(30, [&] { order.push_back(3); });
    q.push(10, [&] { order.push_back(1); });
    q.push(20, [&] { order.push_back(2); });
    while (!q.empty()) q.pop()();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakFifo) {
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i) q.push(5, [&order, i] { order.push_back(i); });
    while (!q.empty()) q.pop()();
    for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, ReportsNextTime) {
    EventQueue q;
    q.push(42, [] {});
    EXPECT_EQ(q.next_time(), 42);
    EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, NextTimeOnEmptyThrows) {
    EventQueue q;
    EXPECT_THROW(q.next_time(), std::logic_error);
    q.push(7, [] {});
    q.pop()();
    EXPECT_THROW(q.next_time(), std::logic_error);
}

TEST(EventQueue, PopOnEmptyThrows) {
    EventQueue q;
    EXPECT_THROW(q.pop(), std::logic_error);
}

TEST(Simulator, ClockAdvancesWithEvents) {
    Simulator sim;
    TimeNs seen = -1;
    sim.schedule_at(100, [&] { seen = sim.now(); });
    sim.run_until(1000);
    EXPECT_EQ(seen, 100);
    EXPECT_EQ(sim.now(), 1000);
}

TEST(Simulator, ScheduleInIsRelative) {
    Simulator sim;
    std::vector<TimeNs> times;
    sim.schedule_at(50, [&] {
        times.push_back(sim.now());
        sim.schedule_in(25, [&] { times.push_back(sim.now()); });
    });
    sim.run_until(1000);
    EXPECT_EQ(times, (std::vector<TimeNs>{50, 75}));
}

TEST(Simulator, EventsPastHorizonNotRun) {
    Simulator sim;
    bool ran = false;
    sim.schedule_at(200, [&] { ran = true; });
    sim.run_until(199);
    EXPECT_FALSE(ran);
    sim.run_until(200);
    EXPECT_TRUE(ran);
}

TEST(Simulator, EventAtExactHorizonRuns) {
    Simulator sim;
    bool ran = false;
    sim.schedule_at(300, [&] { ran = true; });
    sim.run_until(300);
    EXPECT_TRUE(ran);
}

TEST(Simulator, RejectsPastScheduling) {
    Simulator sim;
    sim.schedule_at(100, [&] {
        EXPECT_THROW(sim.schedule_at(50, [] {}), std::invalid_argument);
    });
    sim.run_until(200);
    EXPECT_THROW(sim.schedule_in(-1, [] {}), std::invalid_argument);
}

TEST(Simulator, StopHaltsExecution) {
    Simulator sim;
    int count = 0;
    for (int i = 1; i <= 10; ++i) {
        sim.schedule_at(i, [&] {
            if (++count == 3) sim.stop();
        });
    }
    sim.run_until(100);
    EXPECT_EQ(count, 3);
}

TEST(Simulator, CountsExecutedEvents) {
    Simulator sim;
    for (int i = 0; i < 5; ++i) sim.schedule_at(i, [] {});
    EXPECT_EQ(sim.run_until(10), 5u);
    EXPECT_EQ(sim.events_executed(), 5u);
}

TEST(Simulator, StopLeavesClockAtLastEvent) {
    Simulator sim;
    sim.schedule_at(10, [&] { sim.stop(); });
    sim.schedule_at(20, [] {});
    sim.run_until(100);
    // After stop() the clock must stay at the stopped event, not jump to
    // the horizon — otherwise the still-queued t=20 event would be in the
    // clock's past on resume.
    EXPECT_EQ(sim.now(), 10);
    EXPECT_EQ(sim.events_pending(), 1u);
}

TEST(Simulator, ResumeAfterStopRunsRemainingEvents) {
    Simulator sim;
    std::vector<TimeNs> times;
    sim.schedule_at(10, [&] {
        times.push_back(sim.now());
        sim.stop();
    });
    sim.schedule_at(20, [&] { times.push_back(sim.now()); });
    sim.schedule_at(30, [&] { times.push_back(sim.now()); });
    EXPECT_EQ(sim.run_until(100), 1u);
    EXPECT_EQ(sim.run_until(100), 2u);
    EXPECT_EQ(times, (std::vector<TimeNs>{10, 20, 30}));
    EXPECT_EQ(sim.now(), 100);
    EXPECT_EQ(sim.events_pending(), 0u);
}

TEST(Simulator, EventsExecutedAccumulatesAcrossRuns) {
    Simulator sim;
    for (int i = 1; i <= 6; ++i) sim.schedule_at(i * 10, [] {});
    EXPECT_EQ(sim.run_until(30), 3u);   // per-call count
    EXPECT_EQ(sim.events_executed(), 3u);
    EXPECT_EQ(sim.run_until(60), 3u);
    EXPECT_EQ(sim.events_executed(), 6u);  // lifetime count accumulates
}

}  // namespace
}  // namespace hypatia::sim
