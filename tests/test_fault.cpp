// Fault-injection subsystem: spec parsing, deterministic generation,
// CSV round trips, point-query semantics, and graceful degradation in
// every consumer — snapshot construction (rebuild and refresh), the
// flow-level engine, and the packet simulator. The overarching
// contracts: faults off is byte-identical to the pre-fault code paths,
// and a fixed fault seed is byte-identical across runs.
#include "src/fault/fault.hpp"

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/leo_network.hpp"
#include "src/flowsim/engine.hpp"
#include "src/flowsim/traffic.hpp"
#include "src/obs/observability.hpp"
#include "src/routing/graph.hpp"
#include "src/routing/path_analysis.hpp"
#include "src/routing/shortest_path.hpp"
#include "src/routing/snapshot_refresh.hpp"
#include "src/sim/ping_app.hpp"
#include "src/topology/cities.hpp"
#include "src/topology/constellation.hpp"
#include "src/topology/isl.hpp"
#include "src/topology/mobility.hpp"

namespace hypatia {
namespace {

using fault::FaultConfig;
using fault::FaultEvent;
using fault::FaultKind;
using fault::FaultSchedule;
using fault::FaultSpec;

std::string fmt(double v) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

std::string dump_graph(const route::Graph& g) {
    std::string out;
    for (int node = 0; node < g.num_nodes(); ++node) {
        out += std::to_string(node);
        out += g.can_relay(node) ? "R:" : ":";
        g.for_each_neighbor(node, [&](const route::Edge& e) {
            out += " " + std::to_string(e.to) + "/" + fmt(e.distance_km);
        });
        out += "\n";
    }
    return out;
}

struct ScopedEnv {
    explicit ScopedEnv(const char* name, const char* value) : name_(name) {
        ::setenv(name, value, 1);
    }
    ~ScopedEnv() { ::unsetenv(name_); }
    const char* name_;
};

struct Substrate {
    topo::Constellation constellation;
    topo::SatelliteMobility mobility;
    std::vector<topo::Isl> isls;
    std::vector<orbit::GroundStation> gses;

    Substrate()
        : constellation(topo::shell_by_name("kuiper_k1"), topo::default_epoch()),
          mobility(constellation),
          isls(topo::build_isls(constellation, topo::IslPattern::kPlusGrid)),
          gses(topo::top100_cities()) {
        gses.erase(gses.begin() + 10, gses.end());
    }
};

std::string temp_csv_path(const char* stem) {
    return testing::TempDir() + stem;
}

// --- spec parsing -----------------------------------------------------------

TEST(FaultSpecParse, FileForm) {
    const FaultSpec spec = fault::parse_fault_spec("file:/tmp/faults.csv");
    EXPECT_FALSE(spec.config.has_value());
    EXPECT_EQ(spec.csv_path, "/tmp/faults.csv");
    EXPECT_FALSE(spec.empty());
}

TEST(FaultSpecParse, ConfigForm) {
    const FaultSpec spec = fault::parse_fault_spec(
        "seed=7,sat_mtbf_s=600,sat_mttr_s=45,sat_kill_frac=0.05,horizon_s=120");
    ASSERT_TRUE(spec.config.has_value());
    EXPECT_EQ(spec.config->seed, 7u);
    EXPECT_DOUBLE_EQ(spec.config->sat_mtbf_s, 600.0);
    EXPECT_DOUBLE_EQ(spec.config->sat_mttr_s, 45.0);
    EXPECT_DOUBLE_EQ(spec.config->sat_kill_frac, 0.05);
    EXPECT_EQ(spec.config->horizon, 120 * kNsPerSec);
}

TEST(FaultSpecParse, RejectsUnknownKey) {
    EXPECT_THROW(fault::parse_fault_spec("bogus_knob=1"), std::invalid_argument);
}

TEST(FaultSpecParse, RejectsMalformedPair) {
    EXPECT_THROW(fault::parse_fault_spec("sat_mtbf_s"), std::invalid_argument);
    EXPECT_THROW(fault::parse_fault_spec("sat_mtbf_s=abc"), std::invalid_argument);
}

TEST(FaultSpecEnv, UnsetYieldsNullopt) {
    ::unsetenv("HYPATIA_FAULTS");
    EXPECT_FALSE(fault::spec_from_env().has_value());
}

TEST(FaultSpecEnv, ValidValueParses) {
    ScopedEnv env("HYPATIA_FAULTS", "sat_kill_frac=0.1,seed=3");
    const auto spec = fault::spec_from_env();
    ASSERT_TRUE(spec.has_value());
    ASSERT_TRUE(spec->config.has_value());
    EXPECT_DOUBLE_EQ(spec->config->sat_kill_frac, 0.1);
}

TEST(FaultSpecEnv, MalformedValueDisablesInsteadOfThrowing) {
    ScopedEnv env("HYPATIA_FAULTS", "not a spec at all");
    EXPECT_FALSE(fault::spec_from_env().has_value());
}

// --- schedule semantics -----------------------------------------------------

TEST(FaultSchedule, EmptyByDefault) {
    FaultSchedule sched;
    EXPECT_TRUE(sched.empty());
    EXPECT_FALSE(sched.satellite_down(0, 0));
    EXPECT_TRUE(sched.link_up(0, 1, 0));
}

TEST(FaultSchedule, HalfOpenIntervalSemantics) {
    const auto sched = FaultSchedule::from_events(
        {{FaultKind::kSatellite, 3, -1, 10 * kNsPerSec, 20 * kNsPerSec}},
        /*num_satellites=*/8, /*num_ground_stations=*/2);
    EXPECT_FALSE(sched.satellite_down(3, 10 * kNsPerSec - 1));
    EXPECT_TRUE(sched.satellite_down(3, 10 * kNsPerSec));
    EXPECT_TRUE(sched.satellite_down(3, 20 * kNsPerSec - 1));
    EXPECT_FALSE(sched.satellite_down(3, 20 * kNsPerSec));
    EXPECT_FALSE(sched.satellite_down(2, 15 * kNsPerSec));
}

TEST(FaultSchedule, OverlappingEventsMerge) {
    const auto sched = FaultSchedule::from_events(
        {{FaultKind::kSatellite, 0, -1, 0, 10}, {FaultKind::kSatellite, 0, -1, 5, 20}},
        4, 0);
    ASSERT_EQ(sched.events().size(), 1u);
    EXPECT_EQ(sched.events()[0].start, 0);
    EXPECT_EQ(sched.events()[0].end, 20);
}

TEST(FaultSchedule, IslOutageIsSymmetric) {
    const auto sched = FaultSchedule::from_events(
        {{FaultKind::kIsl, 3, 7, 0, 100}}, 10, 2);
    EXPECT_TRUE(sched.isl_down(3, 7, 50));
    EXPECT_TRUE(sched.isl_down(7, 3, 50));
    EXPECT_FALSE(sched.link_up(3, 7, 50));
    EXPECT_FALSE(sched.link_up(7, 3, 50));
    EXPECT_TRUE(sched.link_up(3, 7, 100));
    // Other links between live satellites are unaffected.
    EXPECT_TRUE(sched.link_up(3, 4, 50));
}

TEST(FaultSchedule, LinkUpComposesEndpointHealth) {
    // Node space: satellites [0, 10), ground stations 10 and 11.
    const auto sched = FaultSchedule::from_events(
        {{FaultKind::kSatellite, 2, -1, 0, 100},
         {FaultKind::kGroundStation, 1, -1, 0, 100}},
        10, 2);
    EXPECT_FALSE(sched.link_up(2, 5, 50));   // dead satellite endpoint
    EXPECT_FALSE(sched.link_up(5, 2, 50));
    EXPECT_FALSE(sched.link_up(11, 4, 50));  // dead GS endpoint (gs index 1)
    EXPECT_FALSE(sched.link_up(4, 11, 50));
    EXPECT_TRUE(sched.link_up(10, 4, 50));   // gs index 0 is alive
    EXPECT_TRUE(sched.link_up(2, 5, 100));   // repaired
}

TEST(FaultSchedule, ChangeTimesAreStrictlyInside) {
    const auto sched = FaultSchedule::from_events(
        {{FaultKind::kSatellite, 0, -1, 10, 20}, {FaultKind::kIsl, 1, 2, 15, 30}},
        4, 0);
    std::vector<TimeNs> cuts;
    sched.change_times_in(10, 30, cuts);
    EXPECT_EQ(cuts, (std::vector<TimeNs>{15, 20}));  // excludes both endpoints
    cuts.clear();
    sched.change_times_in(0, 100, cuts);
    EXPECT_EQ(cuts, (std::vector<TimeNs>{10, 15, 20, 30}));
}

TEST(FaultSchedule, FromEventsValidatesIds) {
    EXPECT_THROW(
        FaultSchedule::from_events({{FaultKind::kSatellite, 99, -1, 0, 1}}, 10, 0),
        std::invalid_argument);
    EXPECT_THROW(
        FaultSchedule::from_events({{FaultKind::kGroundStation, 2, -1, 0, 1}}, 10, 2),
        std::invalid_argument);
    EXPECT_THROW(
        FaultSchedule::from_events({{FaultKind::kSatellite, 0, -1, 5, 2}}, 10, 0),
        std::invalid_argument);
}

TEST(FaultGenerate, DeterministicForSeed) {
    Substrate s;
    FaultConfig cfg;
    cfg.seed = 42;
    cfg.horizon = 60 * kNsPerSec;
    cfg.sat_mtbf_s = 30.0;
    cfg.sat_mttr_s = 15.0;
    cfg.isl_mtbf_s = 45.0;
    cfg.isl_mttr_s = 20.0;
    cfg.gs_mtbf_s = 40.0;
    cfg.gs_mttr_s = 25.0;
    const auto a = FaultSchedule::generate(cfg, s.constellation.num_satellites(),
                                           s.isls, s.gses);
    const auto b = FaultSchedule::generate(cfg, s.constellation.num_satellites(),
                                           s.isls, s.gses);
    ASSERT_FALSE(a.empty());
    ASSERT_EQ(a.events().size(), b.events().size());
    for (std::size_t i = 0; i < a.events().size(); ++i) {
        EXPECT_EQ(a.events()[i].start, b.events()[i].start) << i;
        EXPECT_EQ(a.events()[i].end, b.events()[i].end) << i;
        EXPECT_EQ(a.events()[i].a, b.events()[i].a) << i;
    }
    // Different seed, different timeline.
    cfg.seed = 43;
    const auto c = FaultSchedule::generate(cfg, s.constellation.num_satellites(),
                                           s.isls, s.gses);
    EXPECT_NE(a.events().size(), c.events().size());
}

TEST(FaultGenerate, KillFractionIsPermanentAndRoughlyCalibrated) {
    Substrate s;
    FaultConfig cfg;
    cfg.seed = 7;
    cfg.sat_kill_frac = 0.10;
    const int n = s.constellation.num_satellites();
    const auto sched = FaultSchedule::generate(cfg, n, s.isls, s.gses);
    const std::size_t down0 = sched.down_count(FaultKind::kSatellite, 0);
    // Independent 10% lottery over 1156 satellites: expect within ±50%.
    EXPECT_GT(down0, static_cast<std::size_t>(n) / 20);
    EXPECT_LT(down0, static_cast<std::size_t>(n) / 5);
    // Hard kills never repair, even far past the horizon.
    EXPECT_EQ(sched.down_count(FaultKind::kSatellite, 100LL * 3600 * kNsPerSec),
              down0);
}

TEST(FaultGenerate, RegionalOutagesTakeDownGroundStations) {
    Substrate s;
    FaultConfig cfg;
    cfg.seed = 5;
    cfg.horizon = 3600 * kNsPerSec;
    cfg.region_per_hour = 6.0;
    cfg.region_radius_km = 21000.0;  // > half circumference: global events
    cfg.region_mttr_s = 300.0;
    const auto sched =
        FaultSchedule::generate(cfg, s.constellation.num_satellites(), s.isls, s.gses);
    ASSERT_FALSE(sched.empty());
    bool saw_gs_event = false;
    for (const auto& e : sched.events()) {
        saw_gs_event |= e.kind == FaultKind::kGroundStation;
    }
    EXPECT_TRUE(saw_gs_event);
}

TEST(FaultCsv, SaveLoadRoundTripIsIdentity) {
    Substrate s;
    FaultConfig cfg;
    cfg.seed = 11;
    cfg.horizon = 60 * kNsPerSec;
    cfg.sat_mtbf_s = 25.0;
    cfg.sat_mttr_s = 10.0;
    cfg.isl_mtbf_s = 35.0;
    cfg.isl_mttr_s = 12.0;
    cfg.gs_kill_frac = 0.2;
    const auto sched =
        FaultSchedule::generate(cfg, s.constellation.num_satellites(), s.isls, s.gses);
    ASSERT_FALSE(sched.empty());
    const std::string path = temp_csv_path("fault_roundtrip.csv");
    sched.save_csv(path);
    const auto loaded = FaultSchedule::load_csv(path, s.constellation.num_satellites(),
                                                static_cast<int>(s.gses.size()));
    ASSERT_EQ(loaded.events().size(), sched.events().size());
    for (std::size_t i = 0; i < sched.events().size(); ++i) {
        EXPECT_EQ(loaded.events()[i].kind, sched.events()[i].kind) << i;
        EXPECT_EQ(loaded.events()[i].a, sched.events()[i].a) << i;
        EXPECT_EQ(loaded.events()[i].b, sched.events()[i].b) << i;
        EXPECT_EQ(loaded.events()[i].start, sched.events()[i].start) << i;
        EXPECT_EQ(loaded.events()[i].end, sched.events()[i].end) << i;
    }
    std::remove(path.c_str());
}

TEST(FaultCsv, MalformedRowReportsFileAndLine) {
    const std::string path = temp_csv_path("fault_bad.csv");
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("kind,a,b,start_ns,end_ns\nsat,0,,0,100\nwombat,1,,0,100\n", f);
    std::fclose(f);
    try {
        FaultSchedule::load_csv(path, 4, 0);
        FAIL() << "expected std::runtime_error";
    } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string(e.what()).find(":3"), std::string::npos) << e.what();
    }
    std::remove(path.c_str());
}

// --- snapshot masking (rebuild + refresh) -----------------------------------

TEST(FaultSnapshot, DeadElementsExcludedFromRouting) {
    Substrate s;
    const int num_sats = s.constellation.num_satellites();
    const int dead_sat = s.isls[0].sat_a;
    const int isl_a = s.isls[5].sat_a, isl_b = s.isls[5].sat_b;
    const int dead_gs = 2;
    const auto sched = FaultSchedule::from_events(
        {{FaultKind::kSatellite, dead_sat, -1, 0, 10 * kNsPerSec},
         {FaultKind::kIsl, isl_a, isl_b, 0, 10 * kNsPerSec},
         {FaultKind::kGroundStation, dead_gs, -1, 0, 10 * kNsPerSec}},
        num_sats, static_cast<int>(s.gses.size()));
    route::SnapshotOptions opts;
    opts.faults = &sched;
    const auto g = route::build_snapshot(s.mobility, s.isls, s.gses, 0, opts);

    // The dead GS has no GSL edges at all.
    int dead_gs_edges = 0;
    g.for_each_neighbor(g.gs_node(dead_gs), [&](const route::Edge&) { ++dead_gs_edges; });
    EXPECT_EQ(dead_gs_edges, 0);

    // Every ISL edge touching the dead satellite, and the cut ISL itself,
    // carries infinite weight (present structurally, never relaxed).
    g.for_each_neighbor(dead_sat, [&](const route::Edge& e) {
        EXPECT_EQ(e.distance_km, route::kInfDistance) << "edge to " << e.to;
    });
    bool saw_cut = false;
    g.for_each_neighbor(isl_a, [&](const route::Edge& e) {
        if (e.to == isl_b) {
            saw_cut = true;
            EXPECT_EQ(e.distance_km, route::kInfDistance);
        }
    });
    EXPECT_TRUE(saw_cut);

    // No live GS row lists the dead satellite as a candidate.
    for (int gi = 0; gi < static_cast<int>(s.gses.size()); ++gi) {
        g.for_each_neighbor(g.gs_node(gi), [&](const route::Edge& e) {
            EXPECT_NE(e.to, dead_sat) << "gs " << gi;
        });
    }

    // Dijkstra never routes through the dead satellite.
    route::DestinationTree tree;
    route::thread_dijkstra_workspace().run(g, g.gs_node(0), tree);
    for (int node = 0; node < g.num_nodes(); ++node) {
        EXPECT_NE(tree.next_hop[static_cast<std::size_t>(node)], dead_sat);
    }
    // After the outage window the same options yield a clean graph.
    const auto healed =
        route::build_snapshot(s.mobility, s.isls, s.gses, 10 * kNsPerSec, opts);
    route::SnapshotOptions no_faults;
    const auto clean =
        route::build_snapshot(s.mobility, s.isls, s.gses, 10 * kNsPerSec, no_faults);
    EXPECT_EQ(dump_graph(healed), dump_graph(clean));
}

TEST(FaultSnapshot, EmptyScheduleIsByteIdenticalToNoFaults) {
    Substrate s;
    FaultSchedule empty_sched;
    route::SnapshotOptions with, without;
    with.faults = &empty_sched;
    const auto a = route::build_snapshot(s.mobility, s.isls, s.gses, 3 * kNsPerSec, with);
    const auto b =
        route::build_snapshot(s.mobility, s.isls, s.gses, 3 * kNsPerSec, without);
    EXPECT_EQ(dump_graph(a), dump_graph(b));
}

TEST(FaultSnapshot, NearestAliveSatelliteFallthrough) {
    // Killing a GS's nearest satellite must fall through to the next
    // nearest alive one under the nearest-satellite-only policy, not
    // disconnect the GS.
    Substrate s;
    route::SnapshotOptions opts;
    opts.gs_nearest_satellite_only = true;
    const auto base = route::build_snapshot(s.mobility, s.isls, s.gses, 0, opts);
    int nearest = -1;
    base.for_each_neighbor(base.gs_node(0), [&](const route::Edge& e) { nearest = e.to; });
    ASSERT_GE(nearest, 0);

    const auto sched = FaultSchedule::from_events(
        {{FaultKind::kSatellite, nearest, -1, 0, 10 * kNsPerSec}},
        s.constellation.num_satellites(), static_cast<int>(s.gses.size()));
    opts.faults = &sched;
    const auto masked = route::build_snapshot(s.mobility, s.isls, s.gses, 0, opts);
    int fallback = -1, count = 0;
    masked.for_each_neighbor(masked.gs_node(0), [&](const route::Edge& e) {
        fallback = e.to;
        ++count;
    });
    EXPECT_EQ(count, 1);
    EXPECT_GE(fallback, 0);
    EXPECT_NE(fallback, nearest);
}

// --- flowsim degradation ----------------------------------------------------

core::Scenario flow_scenario() {
    core::Scenario s;
    s.shell = topo::shell_by_name("kuiper_k1");
    s.ground_stations = {topo::city_by_name("Manila"), topo::city_by_name("Dalian"),
                         topo::city_by_name("Tokyo"), topo::city_by_name("Seoul")};
    return s;
}

flowsim::TrafficMatrix flow_traffic() {
    flowsim::PoissonTrafficConfig cfg;
    cfg.num_gs = 4;
    cfg.arrivals_per_s = 10.0;
    cfg.mean_size_bits = 5e7;  // long-lived flows that span the blackout
    cfg.window = 2 * kNsPerSec;
    cfg.seed = 13;
    return flowsim::poisson_traffic(cfg);
}

TEST(FaultFlowsim, BlackoutSeversFlowsThenHeals) {
    // All satellites down on [1 s, 2 s): every flow active there is
    // severed (allocated zero — no fluid teleports through a dead
    // constellation), and flows resume after repair.
    const int num_sats = topo::Constellation(topo::shell_by_name("kuiper_k1"),
                                             topo::default_epoch())
                             .num_satellites();
    std::vector<FaultEvent> events;
    events.reserve(static_cast<std::size_t>(num_sats));
    for (int sat = 0; sat < num_sats; ++sat) {
        events.push_back({FaultKind::kSatellite, sat, -1, 1 * kNsPerSec, 2 * kNsPerSec});
    }
    const auto sched = FaultSchedule::from_events(events, num_sats, 4);
    const std::string path = temp_csv_path("fault_blackout.csv");
    sched.save_csv(path);

    core::Scenario scenario = flow_scenario();
    scenario.faults = FaultSpec{};
    scenario.faults->csv_path = path;

    flowsim::EngineOptions opts;
    opts.epoch = 500 * kNsPerMs;
    opts.duration = 4 * kNsPerSec;

    auto& m = obs::metrics();
    const std::uint64_t severed_before = m.counter("fault.flows_severed").value();
    flowsim::Engine engine(scenario, flow_traffic(), opts);
    const auto faulted = engine.run();
    const std::uint64_t severed =
        m.counter("fault.flows_severed").value() - severed_before;
    std::remove(path.c_str());

    EXPECT_GT(severed, 0u);
    std::size_t unreachable_epochs = 0, blackout_active = 0;
    for (const auto& ep : faulted.epochs) {
        unreachable_epochs += ep.unreachable;
        if (ep.t >= 1 * kNsPerSec && ep.t < 2 * kNsPerSec) {
            blackout_active += ep.active;
            EXPECT_EQ(ep.sum_rate_bps, 0.0) << "epoch t=" << ep.t;
        }
    }
    EXPECT_GT(unreachable_epochs, 0u);
    EXPECT_GT(blackout_active, 0u);  // flows stall rather than vanish

    // The same traffic without faults outperforms the blackout run.
    flowsim::Engine clean_engine(flow_scenario(), flow_traffic(), opts);
    const auto clean = clean_engine.run();
    double faulted_bits = 0.0, clean_bits = 0.0;
    ASSERT_EQ(faulted.flows.size(), clean.flows.size());
    for (std::size_t f = 0; f < clean.flows.size(); ++f) {
        faulted_bits += faulted.flows[f].bits_sent;
        clean_bits += clean.flows[f].bits_sent;
        // Conservation: a flow never sends more than its demand.
        EXPECT_LE(faulted.flows[f].bits_sent, engine.matrix().flows[f].size_bits + 1e-6);
    }
    EXPECT_LT(faulted_bits, clean_bits);
    EXPECT_LE(faulted.completed, clean.completed);
}

TEST(FaultFlowsim, NoFaultsByteIdenticalWithAndWithoutSubsystem) {
    // An engine given an explicitly empty schedule must produce the same
    // output as one with the subsystem disengaged entirely.
    ::unsetenv("HYPATIA_FAULTS");
    flowsim::EngineOptions opts;
    opts.epoch = 500 * kNsPerMs;
    opts.duration = 3 * kNsPerSec;
    auto dump = [&](const flowsim::RunSummary& summary) {
        std::string out;
        for (const auto& o : summary.flows) {
            out += std::to_string(o.completion) + "," + fmt(o.bits_sent) + "," +
                   fmt(o.last_rate_bps) + "\n";
        }
        return out;
    };
    flowsim::Engine plain(flow_scenario(), flow_traffic(), opts);
    const auto a = dump(plain.run());
    flowsim::Engine with_empty_spec(flow_scenario(), flow_traffic(), opts);
    const auto b = dump(with_empty_spec.run());
    EXPECT_FALSE(a.empty());
    EXPECT_EQ(a, b);
}

// --- packet-level degradation -----------------------------------------------

TEST(FaultPacketSim, InFlightPacketsDropOnDeadLinks) {
    // Kill every satellite at t = 250 ms: forwarding state installed at
    // 200 ms still points into the constellation, so pings sent during
    // the stale window cross a dead hop and must be dropped with the
    // fault counter (not silently delivered, not a crash).
    const int num_sats = topo::Constellation(topo::shell_by_name("kuiper_k1"),
                                             topo::default_epoch())
                             .num_satellites();
    std::vector<FaultEvent> events;
    for (int sat = 0; sat < num_sats; ++sat) {
        events.push_back(
            {FaultKind::kSatellite, sat, -1, 250 * kNsPerMs, 600 * kNsPerMs});
    }
    const auto sched = FaultSchedule::from_events(events, num_sats, 3);
    const std::string path = temp_csv_path("fault_packet.csv");
    sched.save_csv(path);

    core::Scenario s;
    s.shell = topo::shell_by_name("kuiper_k1");
    s.ground_stations = {topo::city_by_name("Manila"), topo::city_by_name("Dalian"),
                         topo::city_by_name("Tokyo")};
    s.faults = FaultSpec{};
    s.faults->csv_path = path;

    auto& m = obs::metrics();
    const std::uint64_t drops_before = m.counter("fault.packets_dropped").value();
    core::LeoNetwork leo(s);
    leo.add_destination(0);
    leo.add_destination(1);
    sim::PingApp::Config ping_cfg;
    ping_cfg.flow_id = 1;
    ping_cfg.src_node = leo.gs_node(0);
    ping_cfg.dst_node = leo.gs_node(1);
    ping_cfg.interval = 10 * kNsPerMs;
    ping_cfg.stop = 1200 * kNsPerMs;
    sim::PingApp ping(leo.network(), ping_cfg);
    leo.run(1400 * kNsPerMs);
    std::remove(path.c_str());

    const std::uint64_t drops = m.counter("fault.packets_dropped").value() - drops_before;
    EXPECT_GT(drops, 0u);
    // Pings before the blackout and after repair still succeed.
    bool replied_early = false, replied_late = false;
    for (const auto& sample : ping.samples()) {
        if (!sample.replied) continue;
        if (sample.send_time < 200 * kNsPerMs) replied_early = true;
        if (sample.send_time > 800 * kNsPerMs) replied_late = true;
    }
    EXPECT_TRUE(replied_early);
    EXPECT_TRUE(replied_late);
}

TEST(FaultPacketSim, NoFaultsMeansNoFaultDrops) {
    ::unsetenv("HYPATIA_FAULTS");
    core::Scenario s;
    s.shell = topo::shell_by_name("kuiper_k1");
    s.ground_stations = {topo::city_by_name("Manila"), topo::city_by_name("Dalian")};
    auto& m = obs::metrics();
    const std::uint64_t drops_before = m.counter("fault.packets_dropped").value();
    core::LeoNetwork leo(s);
    leo.add_destination(0);
    leo.add_destination(1);
    sim::PingApp::Config ping_cfg;
    ping_cfg.flow_id = 1;
    ping_cfg.src_node = leo.gs_node(0);
    ping_cfg.dst_node = leo.gs_node(1);
    ping_cfg.interval = 50 * kNsPerMs;
    ping_cfg.stop = 500 * kNsPerMs;
    sim::PingApp ping(leo.network(), ping_cfg);
    leo.run(600 * kNsPerMs);
    EXPECT_EQ(m.counter("fault.packets_dropped").value(), drops_before);
    EXPECT_GT(ping.replies(), 0u);
}

// --- seeded large-kill acceptance -------------------------------------------

TEST(FaultAcceptance, StarlinkS1SurvivesFivePercentKill) {
    // The issue's acceptance run: Starlink S1 with >= 5% of satellites
    // hard-killed completes analysis without crashing, reporting
    // unreachable pairs (if any) instead of artifacts.
    topo::Constellation constellation(topo::shell_by_name("starlink_s1"),
                                      topo::default_epoch());
    topo::SatelliteMobility mobility(constellation);
    const auto isls = topo::build_isls(constellation, topo::IslPattern::kPlusGrid);
    auto gses = topo::top100_cities();
    gses.erase(gses.begin() + 6, gses.end());

    FaultConfig cfg;
    cfg.seed = 99;
    cfg.sat_kill_frac = 0.07;
    const auto sched =
        FaultSchedule::generate(cfg, constellation.num_satellites(), isls, gses);
    ASSERT_GE(sched.down_count(FaultKind::kSatellite, 0),
              static_cast<std::size_t>(constellation.num_satellites()) / 20);

    route::AnalysisOptions opt;
    opt.t_end = 2 * kNsPerSec;
    opt.step = 1 * kNsPerSec;
    opt.faults = &sched;
    const std::vector<route::GsPair> pairs = {{0, 3}, {1, 4}, {2, 5}};
    const auto res = route::analyze_pairs(mobility, isls, gses, pairs, opt);
    ASSERT_EQ(res.pair_stats.size(), pairs.size());
    for (const auto& st : res.pair_stats) {
        EXPECT_EQ(st.total_steps, 2);
        // Either reachable with a sane RTT or counted unreachable — no
        // infinite-distance artifacts leaking into min/max.
        if (st.unreachable_steps < st.total_steps) {
            EXPECT_GT(st.min_rtt_s, 0.0);
            EXPECT_LT(st.max_rtt_s, 1.0);
        }
    }
}

}  // namespace
}  // namespace hypatia
