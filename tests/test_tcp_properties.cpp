// Property-based sweeps over the TCP implementation: conservation and
// correctness invariants across a grid of path delays, line rates, queue
// sizes, and congestion-control algorithms.
#include <gtest/gtest.h>

#include "src/sim/tcp_socket.hpp"

namespace hypatia::sim {
namespace {

struct TcpCase {
    TimeNs link_delay;
    double rate_bps;
    std::size_t queue_packets;
    const char* cc;
};

std::string case_name(const ::testing::TestParamInfo<TcpCase>& info) {
    const auto& p = info.param;
    return std::string(p.cc) + "_d" + std::to_string(p.link_delay / kNsPerMs) +
           "ms_r" + std::to_string(static_cast<int>(p.rate_bps / 1e6)) + "mbps_q" +
           std::to_string(p.queue_packets);
}

class TcpGrid : public ::testing::TestWithParam<TcpCase> {
  protected:
    void SetUp() override {
        const auto& p = GetParam();
        net_ = std::make_unique<Network>(sim_);
        net_->create_nodes(4);
        auto delay = [d = p.link_delay](int, int, TimeNs) { return d; };
        for (int n = 0; n < 4; ++n) net_->add_gsl(n, p.rate_bps, p.queue_packets, delay);
        net_->add_isl(1, 2, p.rate_bps, p.queue_packets, delay);
        net_->node(0).set_next_hop(3, 1);
        net_->node(1).set_next_hop(3, 2);
        net_->node(2).set_next_hop(3, 3);
        net_->node(3).set_next_hop(0, 2);
        net_->node(2).set_next_hop(0, 1);
        net_->node(1).set_next_hop(0, 0);
    }

    std::unique_ptr<TcpFlow> make_flow(std::uint64_t max_segments = 0) {
        TcpConfig cfg;
        cfg.flow_id = 1;
        cfg.src_node = 0;
        cfg.dst_node = 3;
        cfg.max_segments = max_segments;
        const auto& p = GetParam();
        auto cc = std::string(p.cc) == "vegas" ? make_vegas() : make_newreno();
        return std::make_unique<TcpFlow>(*net_, cfg, std::move(cc));
    }

    Simulator sim_;
    std::unique_ptr<Network> net_;
};

TEST_P(TcpGrid, FiniteTransferCompletesInOrder) {
    auto flow = make_flow(300);
    sim_.run_until(120 * kNsPerSec);
    EXPECT_EQ(flow->delivered_segments(), 300u);
    EXPECT_EQ(flow->flight_size(), 0u);
}

TEST_P(TcpGrid, CwndNeverBelowOne) {
    auto flow = make_flow();
    sim_.run_until(20 * kNsPerSec);
    for (const auto& s : flow->cwnd_trace()) EXPECT_GE(s.cwnd, 1.0);
}

TEST_P(TcpGrid, RttNeverBelowPropagation) {
    auto flow = make_flow();
    sim_.run_until(20 * kNsPerSec);
    const TimeNs floor = 6 * GetParam().link_delay;  // 3 hops each way
    for (const auto& s : flow->rtt_trace()) EXPECT_GE(s.rtt, floor);
}

TEST_P(TcpGrid, RttBoundedByQueueCapacity) {
    auto flow = make_flow();
    sim_.run_until(20 * kNsPerSec);
    const auto& p = GetParam();
    // Max RTT <= propagation + every queue on the round trip full
    // (5 devices out + 5 back) + delayed-ACK timeout.
    const double pkt_s = 1500.0 * 8.0 / p.rate_bps;
    const TimeNs max_queueing =
        seconds_to_ns(10.0 * (p.queue_packets + 2) * pkt_s);
    const TimeNs bound = 6 * p.link_delay + max_queueing + 250 * kNsPerMs;
    for (const auto& s : flow->rtt_trace()) EXPECT_LE(s.rtt, bound);
}

TEST_P(TcpGrid, GoodputWithinLineRate) {
    auto flow = make_flow();
    sim_.run_until(30 * kNsPerSec);
    const double goodput = static_cast<double>(flow->delivered_bytes()) * 8.0 / 30.0;
    const auto& p = GetParam();
    EXPECT_LE(goodput, p.rate_bps);      // can't beat the wire
    EXPECT_GT(goodput, 0.05 * p.rate_bps);  // and it's not broken
}

TEST_P(TcpGrid, DeliveredNeverExceedsSent) {
    auto flow = make_flow();
    sim_.run_until(10 * kNsPerSec);
    EXPECT_LE(flow->delivered_segments(), flow->snd_nxt());
    EXPECT_LE(flow->snd_una(), flow->snd_nxt());
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TcpGrid,
    ::testing::Values(TcpCase{2 * kNsPerMs, 10e6, 100, "newreno"},
                      TcpCase{20 * kNsPerMs, 10e6, 100, "newreno"},
                      TcpCase{2 * kNsPerMs, 2e6, 20, "newreno"},
                      TcpCase{10 * kNsPerMs, 50e6, 50, "newreno"},
                      TcpCase{2 * kNsPerMs, 10e6, 100, "vegas"},
                      TcpCase{20 * kNsPerMs, 10e6, 100, "vegas"},
                      TcpCase{10 * kNsPerMs, 2e6, 20, "vegas"}),
    case_name);

}  // namespace
}  // namespace hypatia::sim
