#include "src/routing/graph.hpp"

#include <gtest/gtest.h>

#include "src/topology/cities.hpp"

namespace hypatia::route {
namespace {

topo::Constellation mini() {
    return topo::Constellation({"mini", 630.0, 6, 8, 51.9, 30.0, 0.5},
                               topo::default_epoch());
}

TEST(Graph, NodeNumbering) {
    Graph g(10, 3);
    EXPECT_EQ(g.num_nodes(), 13);
    EXPECT_EQ(g.num_satellites(), 10);
    EXPECT_EQ(g.num_ground_stations(), 3);
    EXPECT_EQ(g.gs_node(0), 10);
    EXPECT_FALSE(g.is_ground_station(9));
    EXPECT_TRUE(g.is_ground_station(10));
}

TEST(Graph, SatellitesRelayGroundStationsDoNot) {
    Graph g(4, 2);
    for (int i = 0; i < 4; ++i) EXPECT_TRUE(g.can_relay(i));
    EXPECT_FALSE(g.can_relay(4));
    EXPECT_FALSE(g.can_relay(5));
    g.set_relay(5, true);
    EXPECT_TRUE(g.can_relay(5));
}

TEST(Graph, UndirectedEdgesVisibleFromBothSides) {
    Graph g(2, 0);
    g.add_undirected_edge(0, 1, 42.0);
    ASSERT_EQ(g.neighbors(0).size(), 1u);
    ASSERT_EQ(g.neighbors(1).size(), 1u);
    EXPECT_EQ(g.neighbors(0)[0].to, 1);
    EXPECT_DOUBLE_EQ(g.neighbors(1)[0].distance_km, 42.0);
    EXPECT_EQ(g.num_edges(), 1u);
}

TEST(Graph, SelfLoopRejected) {
    Graph g(2, 0);
    EXPECT_THROW(g.add_undirected_edge(1, 1, 1.0), std::invalid_argument);
}

TEST(BuildSnapshot, IslEdgeCountMatches) {
    const auto c = mini();
    const topo::SatelliteMobility mob(c);
    const auto isls = topo::build_isls(c, topo::IslPattern::kPlusGrid);
    std::vector<orbit::GroundStation> gses;  // none
    const Graph g = build_snapshot(mob, isls, gses, 0);
    EXPECT_EQ(g.num_edges(), isls.size());
}

TEST(BuildSnapshot, GslEdgesOnlyToVisibleSatellites) {
    const auto c = mini();
    const topo::SatelliteMobility mob(c);
    const auto isls = topo::build_isls(c, topo::IslPattern::kPlusGrid);
    std::vector<orbit::GroundStation> gses = {topo::city_by_name("Singapore")};
    const Graph g = build_snapshot(mob, isls, gses, 0);
    const auto vis = topo::visible_satellites(gses[0], mob, 0);
    EXPECT_EQ(g.neighbors(g.gs_node(0)).size(), vis.size());
}

TEST(BuildSnapshot, IslDistancesArePlausible) {
    const auto c = mini();
    const topo::SatelliteMobility mob(c);
    const auto isls = topo::build_isls(c, topo::IslPattern::kPlusGrid);
    std::vector<orbit::GroundStation> gses;
    const Graph g = build_snapshot(mob, isls, gses, 0);
    for (int u = 0; u < g.num_satellites(); ++u) {
        for (const auto& e : g.neighbors(u)) {
            EXPECT_GT(e.distance_km, 100.0);
            EXPECT_LT(e.distance_km, 10000.0);
        }
    }
}

TEST(BuildSnapshot, NoIslOptionDropsIsls) {
    const auto c = mini();
    const topo::SatelliteMobility mob(c);
    const auto isls = topo::build_isls(c, topo::IslPattern::kPlusGrid);
    std::vector<orbit::GroundStation> gses = {topo::city_by_name("Singapore")};
    SnapshotOptions opt;
    opt.include_isls = false;
    const Graph g = build_snapshot(mob, isls, gses, 0, opt);
    for (int u = 0; u < g.num_satellites(); ++u) {
        for (const auto& e : g.neighbors(u)) {
            EXPECT_TRUE(g.is_ground_station(e.to));
        }
    }
}

TEST(BuildSnapshot, RelayGsFlagApplied) {
    const auto c = mini();
    const topo::SatelliteMobility mob(c);
    const auto isls = topo::build_isls(c, topo::IslPattern::kPlusGrid);
    std::vector<orbit::GroundStation> gses = {topo::city_by_name("Paris"),
                                              topo::city_by_name("Moscow")};
    SnapshotOptions opt;
    opt.relay_gs_indices = {1};
    const Graph g = build_snapshot(mob, isls, gses, 0, opt);
    EXPECT_FALSE(g.can_relay(g.gs_node(0)));
    EXPECT_TRUE(g.can_relay(g.gs_node(1)));
}

}  // namespace
}  // namespace hypatia::route
