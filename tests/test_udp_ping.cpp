#include <gtest/gtest.h>

#include "src/sim/ping_app.hpp"
#include "src/sim/udp_app.hpp"

namespace hypatia::sim {
namespace {

// Symmetric two-GS chain with 2 satellites (like the paper's minimum
// end-end path: GSL up, one ISL, GSL down), 10 Mbit/s everywhere.
struct TestNet {
    Simulator sim;
    Network net{sim};

    explicit TestNet(TimeNs link_delay = 5 * kNsPerMs, double rate = 1e7) {
        net.create_nodes(4);
        auto delay = [link_delay](int, int, TimeNs) { return link_delay; };
        for (int n = 0; n < 4; ++n) net.add_gsl(n, rate, 100, delay);
        net.add_isl(1, 2, rate, 100, delay);
        net.node(0).set_next_hop(3, 1);
        net.node(1).set_next_hop(3, 2);
        net.node(2).set_next_hop(3, 3);
        net.node(3).set_next_hop(0, 2);
        net.node(2).set_next_hop(0, 1);
        net.node(1).set_next_hop(0, 0);
    }
};

TEST(UdpFlow, DeliversAllPacketsBelowCapacity) {
    TestNet t;
    UdpFlow::Config cfg;
    cfg.flow_id = 1;
    cfg.src_node = 0;
    cfg.dst_node = 3;
    cfg.rate_bps = 5e6;  // half the line rate
    cfg.packet_size_bytes = 1500;
    cfg.start = 0;
    cfg.stop = 1 * kNsPerSec;
    UdpFlow flow(t.net, cfg);
    t.sim.run_until(2 * kNsPerSec);
    EXPECT_GT(flow.sent_packets(), 400u);
    EXPECT_EQ(flow.received_packets(), flow.sent_packets());
}

TEST(UdpFlow, GoodputMatchesOfferedLoad) {
    TestNet t;
    UdpFlow::Config cfg;
    cfg.flow_id = 1;
    cfg.src_node = 0;
    cfg.dst_node = 3;
    cfg.rate_bps = 4e6;
    cfg.packet_size_bytes = 1500;
    cfg.stop = 2 * kNsPerSec;
    UdpFlow flow(t.net, cfg);
    t.sim.run_until(3 * kNsPerSec);
    // Goodput = payload fraction of the offered wire rate.
    const double expected = 4e6 * (1500.0 - kHeaderBytes) / 1500.0;
    EXPECT_NEAR(flow.goodput_bps(2 * kNsPerSec), expected, expected * 0.05);
}

TEST(UdpFlow, OverloadIsCappedByLineRate) {
    TestNet t;
    UdpFlow::Config cfg;
    cfg.flow_id = 1;
    cfg.src_node = 0;
    cfg.dst_node = 3;
    cfg.rate_bps = 3e7;  // 3x the line rate
    cfg.packet_size_bytes = 1500;
    cfg.stop = 1 * kNsPerSec;
    UdpFlow flow(t.net, cfg);
    t.sim.run_until(3 * kNsPerSec);
    // Capacity over 1 s of sending = line_rate / packet_size, plus the
    // queue contents that drain after the sender stops.
    const double capacity_packets = 1e7 / (1500.0 * 8.0) + 100.0 + 2.0;
    EXPECT_LE(flow.received_packets(), static_cast<std::uint64_t>(capacity_packets));
    EXPECT_GT(flow.received_packets(), 750u);
    EXPECT_GT(t.net.total_queue_drops(), 0u);
}

TEST(PingApp, RttEqualsPathDelay) {
    TestNet t;  // 5 ms per link, 3 links each way, negligible serialization
    PingApp::Config cfg;
    cfg.flow_id = 2;
    cfg.src_node = 0;
    cfg.dst_node = 3;
    cfg.interval = 100 * kNsPerMs;
    cfg.stop = 1 * kNsPerSec;
    PingApp ping(t.net, cfg);
    t.sim.run_until(2 * kNsPerSec);
    ASSERT_GT(ping.replies(), 5u);
    for (const auto& s : ping.samples()) {
        if (!s.replied) continue;
        EXPECT_NEAR(ns_to_ms(s.rtt), 30.0, 1.0);  // 6 x 5 ms + tx times
    }
}

TEST(PingApp, LostProbesRecordedUnreplied) {
    TestNet t;
    t.net.node(1).set_next_hop(3, -1);  // black-hole the forward path
    PingApp::Config cfg;
    cfg.flow_id = 2;
    cfg.src_node = 0;
    cfg.dst_node = 3;
    cfg.interval = 100 * kNsPerMs;
    cfg.stop = 1 * kNsPerSec;
    PingApp ping(t.net, cfg);
    t.sim.run_until(2 * kNsPerSec);
    EXPECT_EQ(ping.replies(), 0u);
    EXPECT_EQ(ping.sent(), 10u);
    for (const auto& s : ping.samples()) EXPECT_FALSE(s.replied);
}

TEST(PingApp, SamplesEveryInterval) {
    TestNet t;
    PingApp::Config cfg;
    cfg.flow_id = 2;
    cfg.src_node = 0;
    cfg.dst_node = 3;
    cfg.interval = 1 * kNsPerMs;
    cfg.stop = 500 * kNsPerMs;
    PingApp ping(t.net, cfg);
    t.sim.run_until(1 * kNsPerSec);
    EXPECT_EQ(ping.sent(), 500u);
    EXPECT_EQ(ping.replies(), 500u);
}

}  // namespace
}  // namespace hypatia::sim
