// Differential pinning of the SGP4 kernels (DESIGN.md §11): the scalar
// reference, the SoA batch loops and the 4-lane SIMD fast path must
// produce byte-identical state vectors and statuses for every element
// set and every epoch — this suite hammers that contract with seeded
// random TLEs (including near-critical inclination and decayed-perigee
// edge cases), then pins the whole stack end to end: mobility caches
// across kernel x thread-count combinations, snapshot refresh vs
// rebuild under each kernel, and a golden CSV of scalar reference
// vectors for the stock constellations.
//
// HYPATIA_SGP4_DIFF_SCALE multiplies the random-TLE count (default 1;
// the nightly CI profile runs 10x).
#include "src/orbit/sgp4_batch.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/orbit/coords.hpp"
#include "src/orbit/sgp4.hpp"
#include "src/orbit/time.hpp"
#include "src/routing/snapshot_refresh.hpp"
#include "src/topology/cities.hpp"
#include "src/topology/constellation.hpp"
#include "src/topology/isl.hpp"
#include "src/topology/mobility.hpp"
#include "src/util/thread_pool.hpp"

namespace hypatia {
namespace {

std::string fmt(double v) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

// Byte comparison (not ==): distinguishes -0.0 from 0.0 and treats two
// NaNs with the same payload as equal, which is exactly the
// "byte-identical" contract the kernels promise.
bool same_bits(double a, double b) { return std::memcmp(&a, &b, sizeof a) == 0; }

bool same_state(const orbit::StateVector& a, const orbit::StateVector& b) {
    return same_bits(a.position_km.x, b.position_km.x) &&
           same_bits(a.position_km.y, b.position_km.y) &&
           same_bits(a.position_km.z, b.position_km.z) &&
           same_bits(a.velocity_km_per_s.x, b.velocity_km_per_s.x) &&
           same_bits(a.velocity_km_per_s.y, b.velocity_km_per_s.y) &&
           same_bits(a.velocity_km_per_s.z, b.velocity_km_per_s.z);
}

std::string state_str(const orbit::StateVector& s) {
    return fmt(s.position_km.x) + " " + fmt(s.position_km.y) + " " +
           fmt(s.position_km.z) + " | " + fmt(s.velocity_km_per_s.x) + " " +
           fmt(s.velocity_km_per_s.y) + " " + fmt(s.velocity_km_per_s.z);
}

struct ScopedEnv {
    explicit ScopedEnv(const char* name, const char* value) : name_(name) {
        ::setenv(name, value, 1);
    }
    ~ScopedEnv() { ::unsetenv(name_); }
    const char* name_;
};

int diff_scale() {
    const char* s = std::getenv("HYPATIA_SGP4_DIFF_SCALE");
    if (s == nullptr || *s == '\0') return 1;
    const int v = std::atoi(s);
    return v > 0 ? v : 1;
}

/// Seeded random element sets spanning the near-Earth envelope:
/// inclinations 0..120 deg with a cluster pinned at the near-critical
/// 63.4 deg (where the argp secular rate changes sign), eccentricities
/// up to 0.3 (perigee kept above ~130 km so init accepts them), periods
/// 88..220 min, and a mix of drag-free and dragged satellites. Every
/// 10th satellite is a decayed-perigee edge case: perigee barely above
/// the surface with a huge bstar, so long-horizon propagation exercises
/// the non-kOk status paths.
std::vector<orbit::Sgp4Elements> random_elements(std::size_t n, std::uint32_t seed) {
    std::mt19937 rng(seed);
    std::uniform_real_distribution<double> angle(0.0, 2.0 * M_PI);
    std::uniform_real_distribution<double> incl_deg(0.0, 120.0);
    std::uniform_real_distribution<double> critical_jitter(-0.05, 0.05);
    std::uniform_real_distribution<double> period_min(88.0, 220.0);
    std::uniform_real_distribution<double> unit(0.0, 1.0);
    std::uniform_real_distribution<double> epoch_days(-30.0, 30.0);

    const auto base_epoch = orbit::julian_date_from_utc(2000, 1, 1, 0, 0, 0.0);
    constexpr double kDegToRad = M_PI / 180.0;

    std::vector<orbit::Sgp4Elements> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        orbit::Sgp4Elements el;
        el.epoch = base_epoch.plus_seconds(epoch_days(rng) * 86400.0);
        const double period = period_min(rng);
        el.mean_motion_rad_per_min = 2.0 * M_PI / period;
        const double a_km = std::cbrt(orbit::Wgs72::kMuKm3PerS2 *
                                      (period * 60.0 / (2.0 * M_PI)) *
                                      (period * 60.0 / (2.0 * M_PI)));
        el.inclination_rad = (i % 7 == 3)
                                 ? (63.4 + critical_jitter(rng)) * kDegToRad
                                 : incl_deg(rng) * kDegToRad;
        el.raan_rad = angle(rng);
        el.arg_perigee_rad = angle(rng);
        el.mean_anomaly_rad = angle(rng);
        if (i % 10 == 9) {
            // Decayed-perigee edge case: perigee 135..170 km, max drag.
            const double perigee_km = orbit::Wgs72::kEarthRadiusKm + 135.0 + 35.0 * unit(rng);
            el.eccentricity = std::max(0.0, 1.0 - perigee_km / a_km);
            el.bstar = 0.05 + 0.05 * unit(rng);
        } else {
            const double e_max =
                1.0 - (orbit::Wgs72::kEarthRadiusKm + 130.0) / a_km;
            el.eccentricity = unit(rng) * std::min(0.3, std::max(0.0, e_max));
            // A third drag-free (the batch fast path), the rest dragged.
            el.bstar = (i % 3 == 0) ? 0.0 : 1e-6 * std::pow(5000.0, unit(rng));
        }
        out.push_back(el);
    }
    return out;
}

TEST(Sgp4KernelEnv, Parsing) {
    {
        ScopedEnv env("HYPATIA_SGP4_KERNEL", "scalar");
        EXPECT_EQ(orbit::sgp4_kernel_from_env(), orbit::Sgp4Kernel::kScalar);
    }
    {
        ScopedEnv env("HYPATIA_SGP4_KERNEL", "batch");
        EXPECT_EQ(orbit::sgp4_kernel_from_env(), orbit::Sgp4Kernel::kBatch);
    }
    {
        ScopedEnv env("HYPATIA_SGP4_KERNEL", "simd");
        EXPECT_EQ(orbit::sgp4_kernel_from_env(), orbit::Sgp4Kernel::kSimd);
    }
    {
        ScopedEnv env("HYPATIA_SGP4_KERNEL", "bogus");
        EXPECT_EQ(orbit::sgp4_kernel_from_env(), orbit::Sgp4Kernel::kScalar);
    }
    ::unsetenv("HYPATIA_SGP4_KERNEL");
    EXPECT_EQ(orbit::sgp4_kernel_from_env(), orbit::Sgp4Kernel::kScalar);
    EXPECT_STREQ(orbit::sgp4_kernel_name(orbit::Sgp4Kernel::kScalar), "scalar");
    EXPECT_STREQ(orbit::sgp4_kernel_name(orbit::Sgp4Kernel::kBatch), "batch");
    EXPECT_STREQ(orbit::sgp4_kernel_name(orbit::Sgp4Kernel::kSimd), "simd");
}

// The tentpole contract: >= 1,000 random element sets x 100 random
// epochs, every kernel byte-identical to the scalar reference, all
// outputs finite, statuses in lockstep, and the Sgp4 class (sampled)
// agreeing with the batch storage bit for bit.
TEST(Sgp4Differential, RandomTlesByteIdenticalAcrossKernels) {
    const std::size_t n_tles = 1000 * static_cast<std::size_t>(diff_scale());
    constexpr int kEpochs = 100;
    const auto elements = random_elements(n_tles, /*seed=*/20260807);

    orbit::Sgp4Batch batch;
    batch.reserve(elements.size());
    for (const auto& el : elements) {
        batch.add(orbit::sgp4_init_consts(el));
    }
    ASSERT_EQ(batch.size(), n_tles);
    EXPECT_FALSE(batch.all_zero_drag());  // the mix must include drag sats

    // Sampled scalar-class instances for the cross-check.
    std::vector<std::optional<orbit::Sgp4>> sampled(elements.size());
    for (std::size_t i = 0; i < elements.size(); i += 101) {
        sampled[i].emplace(elements[i]);
    }

    std::mt19937 rng(7);
    std::uniform_real_distribution<double> offset_min(-1440.0, 14400.0);
    const auto base_epoch = orbit::julian_date_from_utc(2000, 1, 1, 0, 0, 0.0);

    std::vector<orbit::StateVector> out_ref(n_tles), out_kernel(n_tles);
    std::vector<orbit::Sgp4Status> st_ref(n_tles), st_kernel(n_tles);
    std::size_t non_ok = 0;
    for (int e = 0; e < kEpochs; ++e) {
        const auto at = base_epoch.plus_seconds(offset_min(rng) * 60.0);
        batch.propagate_teme(orbit::Sgp4Kernel::kScalar, at, 0, n_tles,
                             out_ref.data(), st_ref.data());
        for (const auto kernel :
             {orbit::Sgp4Kernel::kBatch, orbit::Sgp4Kernel::kSimd}) {
            batch.propagate_teme(kernel, at, 0, n_tles, out_kernel.data(),
                                 st_kernel.data());
            for (std::size_t i = 0; i < n_tles; ++i) {
                ASSERT_EQ(st_kernel[i], st_ref[i])
                    << orbit::sgp4_kernel_name(kernel) << " sat " << i
                    << " epoch " << e;
                if (st_ref[i] != orbit::Sgp4Status::kOk) continue;
                ASSERT_TRUE(same_state(out_kernel[i], out_ref[i]))
                    << orbit::sgp4_kernel_name(kernel) << " sat " << i
                    << " epoch " << e << "\n  ref:    " << state_str(out_ref[i])
                    << "\n  kernel: " << state_str(out_kernel[i]);
            }
        }
        for (std::size_t i = 0; i < n_tles; ++i) {
            if (st_ref[i] != orbit::Sgp4Status::kOk) {
                ++non_ok;
                continue;
            }
            const auto& sv = out_ref[i];
            ASSERT_TRUE(std::isfinite(sv.position_km.x) &&
                        std::isfinite(sv.position_km.y) &&
                        std::isfinite(sv.position_km.z) &&
                        std::isfinite(sv.velocity_km_per_s.x) &&
                        std::isfinite(sv.velocity_km_per_s.y) &&
                        std::isfinite(sv.velocity_km_per_s.z))
                << "sat " << i << " epoch " << e;
            if (sampled[i].has_value()) {
                ASSERT_TRUE(same_state(sampled[i]->propagate(at), sv))
                    << "Sgp4 class mismatch, sat " << i << " epoch " << e;
            }
        }
    }
    // The decayed-perigee group must actually hit the failure statuses,
    // otherwise the status-parity assertions above never fired.
    EXPECT_GT(non_ok, 0u);
}

// Sub-range and single-satellite entry points agree with the full-range
// call — this exercises the SIMD run splitter's heads and tails (ranges
// not aligned to 4) and propagate_one's fast/reference dispatch.
TEST(Sgp4Differential, SubRangesAndPropagateOneMatchFullRange) {
    const auto elements = random_elements(257, /*seed=*/42);
    orbit::Sgp4Batch batch;
    for (const auto& el : elements) batch.add(orbit::sgp4_init_consts(el));
    const std::size_t n = batch.size();

    const auto at =
        orbit::julian_date_from_utc(2000, 1, 3, 7, 11, 13.0);
    std::vector<orbit::StateVector> full(n), part(n);
    std::vector<orbit::Sgp4Status> st_full(n), st_part(n);
    batch.propagate_teme(orbit::Sgp4Kernel::kSimd, at, 0, n, full.data(),
                         st_full.data());

    const std::size_t splits[][2] = {{0, 1}, {3, 10}, {5, n - 2}, {n - 3, n}};
    for (const auto& s : splits) {
        batch.propagate_teme(orbit::Sgp4Kernel::kSimd, at, s[0], s[1], part.data(),
                             st_part.data());
        for (std::size_t i = s[0]; i < s[1]; ++i) {
            ASSERT_EQ(st_part[i - s[0]], st_full[i]) << i;
            if (st_full[i] != orbit::Sgp4Status::kOk) continue;
            ASSERT_TRUE(same_state(part[i - s[0]], full[i])) << i;
        }
    }

    for (std::size_t i = 0; i < n; ++i) {
        orbit::StateVector sv;
        const double minutes =
            at.seconds_since(batch.epoch(i)) / 60.0;
        const auto st = batch.propagate_one(i, minutes, sv);
        ASSERT_EQ(st, st_full[i]) << i;
        if (st != orbit::Sgp4Status::kOk) continue;
        ASSERT_TRUE(same_state(sv, full[i])) << i;
    }
}

// Status values map to the exact strings the Sgp4 class throws; on a
// decaying satellite the class throw and the batch status agree.
TEST(Sgp4Differential, StatusMessageAndThrowParity) {
    EXPECT_STREQ(orbit::sgp4_status_message(orbit::Sgp4Status::kOk), "sgp4: ok");
    EXPECT_STREQ(orbit::sgp4_status_message(orbit::Sgp4Status::kEccentricityDiverged),
                 "sgp4: eccentricity diverged");
    EXPECT_STREQ(orbit::sgp4_status_message(orbit::Sgp4Status::kSemiMajorDecayed),
                 "sgp4: semi-major axis decayed");
    EXPECT_STREQ(orbit::sgp4_status_message(orbit::Sgp4Status::kNegativeSemiLatus),
                 "sgp4: semi-latus rectum negative");
    EXPECT_STREQ(orbit::sgp4_status_message(orbit::Sgp4Status::kDecayed),
                 "sgp4: satellite decayed below the surface");

    const auto elements = random_elements(200, /*seed=*/99);
    orbit::Sgp4Batch batch;
    for (const auto& el : elements) batch.add(orbit::sgp4_init_consts(el));

    std::size_t checked = 0;
    for (std::size_t i = 0; i < elements.size(); ++i) {
        // Far-future propagation of the high-drag group decays.
        orbit::StateVector sv;
        const auto st = batch.propagate_one(i, 80000.0, sv);
        if (st == orbit::Sgp4Status::kOk) continue;
        const orbit::Sgp4 reference(elements[i]);
        try {
            (void)reference.propagate_minutes(80000.0);
            FAIL() << "batch reported " << orbit::sgp4_status_message(st)
                   << " but the class did not throw (sat " << i << ")";
        } catch (const std::runtime_error& err) {
            EXPECT_STREQ(err.what(), orbit::sgp4_status_message(st)) << i;
        }
        ++checked;
    }
    EXPECT_GT(checked, 0u);
}

// propagate_ecef (GMST rotation hoisted out of the satellite loop) is
// bit-identical to rotating each TEME state individually.
TEST(Sgp4Differential, EcefMatchesPerSatelliteRotation) {
    const auto elements = random_elements(300, /*seed=*/5);
    orbit::Sgp4Batch batch;
    for (const auto& el : elements) batch.add(orbit::sgp4_init_consts(el));
    const std::size_t n = batch.size();

    const auto at = orbit::julian_date_from_utc(2000, 2, 29, 12, 0, 1.5);
    std::vector<orbit::StateVector> teme(n);
    std::vector<Vec3> ecef(n);
    std::vector<orbit::Sgp4Status> st1(n), st2(n);
    for (const auto kernel :
         {orbit::Sgp4Kernel::kScalar, orbit::Sgp4Kernel::kBatch,
          orbit::Sgp4Kernel::kSimd}) {
        batch.propagate_teme(kernel, at, 0, n, teme.data(), st1.data());
        batch.propagate_ecef(kernel, at, 0, n, ecef.data(), st2.data());
        for (std::size_t i = 0; i < n; ++i) {
            ASSERT_EQ(st1[i], st2[i]) << i;
            if (st1[i] != orbit::Sgp4Status::kOk) continue;
            const Vec3 expect = orbit::teme_to_ecef(teme[i].position_km, at);
            ASSERT_TRUE(same_bits(ecef[i].x, expect.x) &&
                        same_bits(ecef[i].y, expect.y) &&
                        same_bits(ecef[i].z, expect.z))
                << orbit::sgp4_kernel_name(kernel) << " sat " << i;
        }
    }
}

std::string dump_positions(const topo::SatelliteMobility& mob, TimeNs t) {
    std::string out;
    for (int sat = 0; sat < mob.num_satellites(); ++sat) {
        const Vec3 p = mob.position_ecef_warm(sat, t);
        out += fmt(p.x) + " " + fmt(p.y) + " " + fmt(p.z) + "\n";
    }
    return out;
}

// Mobility warm_cache: every kernel x thread-count combination yields
// byte-identical cached positions, at bucket boundaries (start-only
// fills) and off-boundary (start + end + interpolation).
TEST(Sgp4Differential, MobilityKernelThreadEquivalence) {
    const topo::Constellation constellation(topo::shell_by_name("telesat_t1"),
                                            topo::default_epoch());
    // Boundary epoch (multiple of the 10 ms quantum) and off-boundary.
    const TimeNs t_boundary = 30 * kNsPerSec;
    const TimeNs t_interp = 30 * kNsPerSec + 3 * kNsPerMs;

    std::string reference_boundary, reference_interp;
    for (const auto kernel :
         {orbit::Sgp4Kernel::kScalar, orbit::Sgp4Kernel::kBatch,
          orbit::Sgp4Kernel::kSimd}) {
        for (const std::size_t threads : {1u, 2u, 8u}) {
            util::ThreadPool::set_global_threads(threads);
            topo::SatelliteMobility mob(constellation);
            ASSERT_TRUE(mob.batch_ready());
            mob.set_kernel(kernel);
            mob.warm_cache(t_boundary);
            const std::string boundary = dump_positions(mob, t_boundary);
            mob.warm_cache(t_interp);
            const std::string interp = dump_positions(mob, t_interp);
            if (reference_boundary.empty()) {
                reference_boundary = boundary;
                reference_interp = interp;
            } else {
                ASSERT_EQ(boundary, reference_boundary)
                    << orbit::sgp4_kernel_name(kernel) << " x " << threads;
                ASSERT_EQ(interp, reference_interp)
                    << orbit::sgp4_kernel_name(kernel) << " x " << threads;
            }
            // Warm reads match the mutating accessor bit for bit.
            for (int sat = 0; sat < mob.num_satellites(); sat += 37) {
                const Vec3 a = mob.position_ecef_warm(sat, t_interp);
                const Vec3 b = mob.position_ecef(sat, t_interp);
                ASSERT_TRUE(same_bits(a.x, b.x) && same_bits(a.y, b.y) &&
                            same_bits(a.z, b.z))
                    << sat;
            }
        }
    }
    util::ThreadPool::set_global_threads(0);
}

// Snapshot refresh vs rebuild stays byte-identical under every kernel
// (the kernels feed visibility scans and GSL distance computations).
TEST(Sgp4Differential, SnapshotRefreshKernelEquivalence) {
    const topo::Constellation constellation(topo::shell_by_name("telesat_t1"),
                                            topo::default_epoch());
    const auto isls = topo::build_isls(constellation, topo::IslPattern::kPlusGrid);
    auto gses = topo::top100_cities();
    gses.erase(gses.begin() + 10, gses.end());

    std::string reference;
    for (const auto kernel :
         {orbit::Sgp4Kernel::kScalar, orbit::Sgp4Kernel::kBatch,
          orbit::Sgp4Kernel::kSimd}) {
        topo::SatelliteMobility mobility(constellation);
        mobility.set_kernel(kernel);
        route::SnapshotRefresher refresher(mobility, isls, gses);
        std::string all;
        for (int step = 0; step < 4; ++step) {
            const TimeNs t = step * 5 * kNsPerSec;
            const route::Graph& refreshed = refresher.refresh(t);
            std::ostringstream dump;
            for (int node = 0; node < refreshed.num_nodes(); ++node) {
                refreshed.for_each_neighbor(node, [&](const route::Edge& e) {
                    dump << node << ">" << e.to << "/" << fmt(e.distance_km) << "\n";
                });
            }
            all += dump.str();
            const route::Graph rebuilt =
                route::build_snapshot(mobility, isls, gses, t);
            ASSERT_EQ(refreshed.num_edges(), rebuilt.num_edges())
                << orbit::sgp4_kernel_name(kernel) << " step " << step;
        }
        if (reference.empty()) {
            reference = all;
        } else {
            ASSERT_EQ(all, reference) << orbit::sgp4_kernel_name(kernel);
        }
    }
}

// Golden reference vectors: the scalar kernel's output for the first 8
// satellites of each stock shell at fixed offsets, pinned to
// tests/data/sgp4_reference_golden.csv with full double precision. Any
// arithmetic change to the SGP4 core — reordering, contraction, library
// swap — shows up as a diff here. Regenerate deliberately with
// HYPATIA_UPDATE_GOLDEN=1.
TEST(Sgp4Golden, ReferenceVectorsPinned) {
    const double minutes[] = {0.0, 1.6180339887498949, 60.0, 1440.0, 10080.0};
    std::string csv = "shell,sat,minutes,px_km,py_km,pz_km,vx_kms,vy_kms,vz_kms\n";
    for (const char* shell : {"starlink_s1", "kuiper_k1", "telesat_t1"}) {
        const topo::Constellation constellation(topo::shell_by_name(shell),
                                                topo::default_epoch());
        for (int sat = 0; sat < 8; ++sat) {
            const auto& sgp4 = *constellation.satellite(sat).sgp4;
            for (const double m : minutes) {
                const auto sv = sgp4.propagate_minutes(m);
                csv += std::string(shell) + "," + std::to_string(sat) + "," +
                       fmt(m) + "," + fmt(sv.position_km.x) + "," +
                       fmt(sv.position_km.y) + "," + fmt(sv.position_km.z) + "," +
                       fmt(sv.velocity_km_per_s.x) + "," +
                       fmt(sv.velocity_km_per_s.y) + "," +
                       fmt(sv.velocity_km_per_s.z) + "\n";
            }
        }
    }

    const std::string path =
        std::string(HYPATIA_TEST_DATA_DIR) + "/sgp4_reference_golden.csv";
    if (std::getenv("HYPATIA_UPDATE_GOLDEN") != nullptr) {
        std::ofstream out(path, std::ios::binary);
        out << csv;
        GTEST_SKIP() << "golden updated: " << path;
    }
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good()) << "missing " << path;
    std::ostringstream buf;
    buf << in.rdbuf();
    EXPECT_EQ(csv, buf.str())
        << "SGP4 reference output drifted from tests/data/"
           "sgp4_reference_golden.csv (run with HYPATIA_UPDATE_GOLDEN=1 to "
           "regenerate on purpose)";
}

}  // namespace
}  // namespace hypatia
