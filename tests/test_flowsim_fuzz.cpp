// Seeded randomized fuzz for the max-min solver: 100 seeds, each
// generating a random CSR allocation problem (random link counts and
// capacities, random path lengths, a mix of capped / uncapped / empty-path
// flows), asserting the solver converges, the allocation is feasible, and
// it satisfies the max-min characterization — every flow is at its rate
// cap or crosses a saturated link on which its rate is maximal. This is a
// full correctness oracle: the max-min fair allocation is unique, so any
// allocation passing the characterization IS the right answer.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <vector>

#include "src/flowsim/solver.hpp"

namespace hypatia::flowsim {
namespace {

void expect_max_min_fair(const FairShareProblem& p, const FairShareResult& r) {
    ASSERT_TRUE(r.converged);
    ASSERT_EQ(r.rate_bps.size(), p.num_flows());
    ASSERT_TRUE(allocation_feasible(p, r.rate_bps, 1e-7));
    std::vector<double> load(p.capacity_bps.size(), 0.0);
    std::vector<double> max_rate_on(p.capacity_bps.size(), 0.0);
    for (std::size_t f = 0; f < p.num_flows(); ++f) {
        ASSERT_TRUE(std::isfinite(r.rate_bps[f]));
        ASSERT_GE(r.rate_bps[f], 0.0);
        for (std::uint32_t i = p.flow_offset[f]; i < p.flow_offset[f + 1]; ++i) {
            load[p.flow_links[i]] += r.rate_bps[f];
            max_rate_on[p.flow_links[i]] =
                std::max(max_rate_on[p.flow_links[i]], r.rate_bps[f]);
        }
    }
    for (std::size_t f = 0; f < p.num_flows(); ++f) {
        const double cap = p.rate_cap_bps.empty() ? kNoRateCap : p.rate_cap_bps[f];
        if (cap != kNoRateCap && r.rate_bps[f] >= cap - 1e-7) continue;  // at cap
        // An uncapped flow with no links is unbounded by construction;
        // the generator never emits those (empty paths always get a cap).
        bool bottlenecked = false;
        for (std::uint32_t i = p.flow_offset[f];
             !bottlenecked && i < p.flow_offset[f + 1]; ++i) {
            const std::uint32_t l = p.flow_links[i];
            const bool saturated = load[l] >= p.capacity_bps[l] - 1e-6;
            const bool maximal = r.rate_bps[f] >= max_rate_on[l] - 1e-6;
            bottlenecked = saturated && maximal;
        }
        EXPECT_TRUE(bottlenecked) << "flow " << f << " rate " << r.rate_bps[f]
                                  << " is neither capped nor bottlenecked";
    }
}

FairShareProblem random_problem(unsigned seed) {
    std::mt19937_64 gen(seed);
    FairShareProblem p;
    // Link counts span degenerate (1 link) through engine-scale (hundreds,
    // like an epoch's touched ISL/GSL resources); capacities span five
    // orders of magnitude so fill levels cross many bottlenecks.
    const std::size_t num_links = 1 + gen() % 300;
    std::uniform_real_distribution<double> cap_exp(0.0, 5.0);
    for (std::size_t l = 0; l < num_links; ++l) {
        p.capacity_bps.push_back(std::pow(10.0, cap_exp(gen)));
    }
    const std::size_t num_flows = 1 + gen() % 200;
    std::uniform_real_distribution<double> rate_cap(0.1, 500.0);
    for (std::size_t f = 0; f < num_flows; ++f) {
        std::vector<std::uint32_t> links;
        if (gen() % 20 != 0) {  // 1 in 20 flows has an empty path
            const std::size_t path_len = 1 + gen() % 12;
            for (std::size_t h = 0; h < path_len; ++h) {
                const auto l = static_cast<std::uint32_t>(gen() % num_links);
                if (std::find(links.begin(), links.end(), l) == links.end()) {
                    links.push_back(l);
                }
            }
        }
        const bool capped = links.empty() || gen() % 3 == 0;
        p.add_flow(links, capped ? rate_cap(gen) : kNoRateCap);
    }
    return p;
}

TEST(MaxMinSolverFuzz, HundredSeededRandomProblemsAreMaxMinFair) {
    for (unsigned seed = 1; seed <= 100; ++seed) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        const FairShareProblem p = random_problem(seed);
        const FairShareResult r = solve_max_min(p);
        expect_max_min_fair(p, r);
        // The solver is a pure function: re-solving the same problem must
        // reproduce the allocation bit-for-bit.
        const FairShareResult again = solve_max_min(p);
        ASSERT_EQ(r.rounds, again.rounds);
        for (std::size_t f = 0; f < p.num_flows(); ++f) {
            ASSERT_EQ(r.rate_bps[f], again.rate_bps[f]);
        }
    }
}

TEST(MaxMinSolverFuzz, SingleSaturatedLinkSharesExactly) {
    // A directed fuzz variant with a known closed form: n uncapped flows
    // over one link of capacity c must each get exactly c / n.
    std::mt19937_64 gen(42);
    for (int instance = 0; instance < 50; ++instance) {
        FairShareProblem p;
        const double c = 1.0 + static_cast<double>(gen() % 10'000);
        p.capacity_bps = {c};
        const std::size_t n = 1 + gen() % 64;
        for (std::size_t f = 0; f < n; ++f) p.add_flow({0});
        const auto r = solve_max_min(p);
        ASSERT_TRUE(r.converged);
        for (std::size_t f = 0; f < n; ++f) {
            ASSERT_NEAR(r.rate_bps[f], c / static_cast<double>(n), 1e-9 * c);
        }
    }
}

}  // namespace
}  // namespace hypatia::flowsim
