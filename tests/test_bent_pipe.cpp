// Core-level bent-pipe (Appendix A) behaviour: relay grids, the RTT
// penalty relative to ISL connectivity, and the shared-GSL-queue effect
// on TCP.
#include <gtest/gtest.h>

#include "src/core/experiment.hpp"
#include "src/topology/cities.hpp"

namespace hypatia::core {
namespace {

Scenario isl_scenario() {
    Scenario s;
    s.shell = topo::shell_by_name("kuiper_k1");
    s.ground_stations = {{0, "Paris", topo::city_by_name("Paris").geodetic()},
                         {1, "Moscow", topo::city_by_name("Moscow").geodetic()}};
    return s;
}

Scenario bent_pipe_scenario() {
    Scenario s = isl_scenario();
    s.isl_pattern = topo::IslPattern::kNone;
    int id = 2;
    for (double lat = 45.0; lat <= 60.0; lat += 5.0) {
        for (double lon = 5.0; lon <= 35.0; lon += 5.0) {
            s.relay_gs_indices.push_back(id);
            s.ground_stations.emplace_back(id++, "relay",
                                           orbit::Geodetic{lat, lon, 0.0});
        }
    }
    return s;
}

TEST(BentPipe, ConnectivityThroughRelays) {
    LeoNetwork leo(bent_pipe_scenario());
    leo.add_destination(1);
    leo.run(200 * kNsPerMs);
    const auto path = leo.current_path(0, 1);
    ASSERT_GE(path.size(), 5u);  // gs, sat, relay, sat, gs at minimum
    // Alternates GS/satellite: no satellite-satellite edges without ISLs.
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        const bool a_sat = path[i] < leo.num_satellites();
        const bool b_sat = path[i + 1] < leo.num_satellites();
        EXPECT_TRUE(a_sat != b_sat) << "adjacent same-kind nodes at " << i;
    }
}

TEST(BentPipe, RttAtLeastIslRtt) {
    LeoNetwork isl(isl_scenario());
    isl.add_destination(1);
    isl.run(200 * kNsPerMs);
    LeoNetwork bp(bent_pipe_scenario());
    bp.add_destination(1);
    bp.run(200 * kNsPerMs);
    const double d_isl = isl.current_distance_km(0, 1);
    const double d_bp = bp.current_distance_km(0, 1);
    ASSERT_NE(d_isl, route::kInfDistance);
    ASSERT_NE(d_bp, route::kInfDistance);
    EXPECT_GE(d_bp, d_isl);  // extra up-downs can't be shorter
    EXPECT_LT(d_bp, 2.5 * d_isl);  // but with a dense grid, not crazy either
}

TEST(BentPipe, WithoutRelaysDisconnected) {
    Scenario s = isl_scenario();
    s.isl_pattern = topo::IslPattern::kNone;  // no ISLs, no relays
    LeoNetwork leo(s);
    leo.add_destination(1);
    leo.run(200 * kNsPerMs);
    // Paris and Moscow (~2,500 km apart) share no Kuiper satellite.
    EXPECT_EQ(leo.current_distance_km(0, 1), route::kInfDistance);
}

TEST(BentPipe, TcpDeliversThroughRelays) {
    LeoNetwork leo(bent_pipe_scenario());
    auto flows = attach_tcp_flows(leo, {{0, 1}}, "newreno");
    leo.run(5 * kNsPerSec);
    const double goodput =
        static_cast<double>(flows[0]->delivered_bytes()) * 8.0 / 5.0;
    EXPECT_GT(goodput, 2e6);  // moving real data over the relay path
}

TEST(BentPipe, RelayForwardingStaysLoopFree) {
    LeoNetwork leo(bent_pipe_scenario());
    leo.add_destination(1);
    int checked = 0;
    leo.on_fstate_update = [&](TimeNs) {
        const auto path = leo.current_path(0, 1);
        std::set<int> seen(path.begin(), path.end());
        EXPECT_EQ(seen.size(), path.size());  // no repeated node = no loop
        ++checked;
    };
    leo.run(3 * kNsPerSec);
    EXPECT_GT(checked, 20);
}

}  // namespace
}  // namespace hypatia::core
