#include "src/routing/path_analysis.hpp"

#include <set>

#include <gtest/gtest.h>

#include "src/topology/cities.hpp"

namespace hypatia::route {
namespace {

struct Fixture {
    topo::Constellation constellation;
    topo::SatelliteMobility mobility;
    std::vector<topo::Isl> isls;
    std::vector<orbit::GroundStation> gses;

    Fixture()
        : constellation(topo::shell_by_name("kuiper_k1"), topo::default_epoch()),
          mobility(constellation),
          isls(topo::build_isls(constellation, topo::IslPattern::kPlusGrid)),
          gses(topo::top100_cities()) {}
};

TEST(RandomPermutationPairs, DeterministicForSeed) {
    const auto a = random_permutation_pairs(100, 42);
    const auto b = random_permutation_pairs(100, 42);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].src_gs, b[i].src_gs);
        EXPECT_EQ(a[i].dst_gs, b[i].dst_gs);
    }
}

TEST(RandomPermutationPairs, NoSelfPairsEachSourceOnce) {
    const auto pairs = random_permutation_pairs(100, 7);
    std::set<int> sources;
    for (const auto& p : pairs) {
        EXPECT_NE(p.src_gs, p.dst_gs);
        EXPECT_TRUE(sources.insert(p.src_gs).second);
    }
    EXPECT_GE(pairs.size(), 95u);  // at most a few fixed points removed
}

TEST(AllPairsMinDistance, ExcludesNearbyPairs) {
    const auto gses = topo::top100_cities();
    const auto pairs = all_pairs_min_distance(gses, 500.0);
    for (const auto& p : pairs) {
        const double d = orbit::great_circle_distance_km(
            gses[static_cast<std::size_t>(p.src_gs)].geodetic(),
            gses[static_cast<std::size_t>(p.dst_gs)].geodetic());
        EXPECT_GE(d, 500.0);
    }
    // Guangzhou-Shenzhen-Foshan-Dongguan-HongKong cluster guarantees some
    // exclusions out of the 4950 unordered pairs.
    EXPECT_LT(pairs.size(), 4950u);
    EXPECT_GT(pairs.size(), 4500u);
}

TEST(AnalyzePairs, RttWithinPhysicalBounds) {
    Fixture f;
    std::vector<GsPair> pairs = {
        {topo::city_index("Manila"), topo::city_index("Dalian")}};
    AnalysisOptions opt;
    opt.t_end = 10 * kNsPerSec;
    opt.step = 1 * kNsPerSec;
    const auto res = analyze_pairs(f.mobility, f.isls, f.gses, pairs, opt);
    ASSERT_EQ(res.pair_stats.size(), 1u);
    const auto& s = res.pair_stats[0];
    const double geodesic = orbit::geodesic_rtt_s(
        topo::city_by_name("Manila").geodetic(), topo::city_by_name("Dalian").geodetic());
    EXPECT_GE(s.min_rtt_s, geodesic);      // can't beat the geodesic
    EXPECT_LT(s.max_rtt_s, 0.5);           // and it's not absurd
    EXPECT_EQ(s.total_steps, 10);
}

TEST(AnalyzePairs, PaperRttRangesForNamedPairs) {
    // Paper section 4.1: Manila-Dalian RTT is 25-48 ms over time;
    // Istanbul-Nairobi 47-70 ms. Check our values land in generous bands
    // around those (same constellation, same cities; phasing differs).
    Fixture f;
    std::vector<GsPair> pairs = {
        {topo::city_index("Manila"), topo::city_index("Dalian")},
        {topo::city_index("Istanbul"), topo::city_index("Nairobi")}};
    AnalysisOptions opt;
    opt.t_end = 200 * kNsPerSec;
    opt.step = 1 * kNsPerSec;  // coarse steps are fine for min/max RTT
    const auto res = analyze_pairs(f.mobility, f.isls, f.gses, pairs, opt);
    const auto& manila = res.pair_stats[0];
    EXPECT_GT(manila.min_rtt_s, 0.010);
    EXPECT_LT(manila.max_rtt_s, 0.080);
    const auto& istanbul = res.pair_stats[1];
    EXPECT_GT(istanbul.min_rtt_s, 0.030);
    EXPECT_LT(istanbul.max_rtt_s, 0.110);
}

TEST(AnalyzePairs, PathChangesDetected) {
    Fixture f;
    std::vector<GsPair> pairs = {
        {topo::city_index("Rio de Janeiro"), topo::city_index("Saint Petersburg")}};
    AnalysisOptions opt;
    opt.t_end = 200 * kNsPerSec;
    opt.step = 500 * kNsPerMs;
    const auto res = analyze_pairs(f.mobility, f.isls, f.gses, pairs, opt);
    // Paper Fig 8a: the median Kuiper pair sees ~4 changes in 200 s; any
    // long pair must see at least one.
    EXPECT_GE(res.pair_stats[0].path_changes, 1);
}

TEST(AnalyzePairs, HopCountsConsistent) {
    Fixture f;
    std::vector<GsPair> pairs = {{topo::city_index("Paris"), topo::city_index("Luanda")}};
    AnalysisOptions opt;
    opt.t_end = 30 * kNsPerSec;
    opt.step = 1 * kNsPerSec;
    const auto res = analyze_pairs(f.mobility, f.isls, f.gses, pairs, opt);
    const auto& s = res.pair_stats[0];
    EXPECT_GE(s.min_hops, 1);
    EXPECT_GE(s.max_hops, s.min_hops);
    EXPECT_LT(s.max_hops, 40);
}

TEST(AnalyzePairs, ObserverSeesEveryStep) {
    Fixture f;
    std::vector<GsPair> pairs = {{topo::city_index("Tokyo"), topo::city_index("Seoul")}};
    AnalysisOptions opt;
    opt.t_end = 5 * kNsPerSec;
    opt.step = 1 * kNsPerSec;
    int calls = 0;
    opt.per_step_observer = [&](TimeNs, int pair_index, double rtt_s,
                                const std::vector<int>& path) {
        EXPECT_EQ(pair_index, 0);
        if (rtt_s != kInfDistance) EXPECT_FALSE(path.empty());
        ++calls;
    };
    analyze_pairs(f.mobility, f.isls, f.gses, pairs, opt);
    EXPECT_EQ(calls, 5);
}

TEST(AnalyzePairs, StepCountMatchesWindow) {
    Fixture f;
    std::vector<GsPair> pairs = {{0, 50}};
    AnalysisOptions opt;
    opt.t_end = 2 * kNsPerSec;
    opt.step = 100 * kNsPerMs;
    const auto res = analyze_pairs(f.mobility, f.isls, f.gses, pairs, opt);
    EXPECT_EQ(res.step_times.size(), 20u);
    EXPECT_EQ(res.path_changes_per_step.size(), 20u);
}

TEST(AnalyzePairs, AllSatellitesDownReportsUnreachableNotArtifacts) {
    // A fully partitioned graph (every satellite dead the whole window)
    // must count every step unreachable and keep the RTT extrema at
    // their zero-initialized state — no infinite-distance values leaking
    // into the stats, no crash extracting paths from empty trees.
    Fixture f;
    std::vector<fault::FaultEvent> events;
    const int num_sats = f.constellation.num_satellites();
    for (int sat = 0; sat < num_sats; ++sat) {
        events.push_back(
            {fault::FaultKind::kSatellite, sat, -1, 0, 100 * kNsPerSec});
    }
    const auto sched = fault::FaultSchedule::from_events(
        events, num_sats, static_cast<int>(f.gses.size()));

    std::vector<GsPair> pairs = {
        {topo::city_index("Manila"), topo::city_index("Dalian")},
        {topo::city_index("Tokyo"), topo::city_index("Seoul")}};
    AnalysisOptions opt;
    opt.t_end = 3 * kNsPerSec;
    opt.step = 1 * kNsPerSec;
    opt.faults = &sched;
    int unreachable_observations = 0;
    opt.per_step_observer = [&](TimeNs, int, double rtt_s,
                                const std::vector<int>& path) {
        if (rtt_s == kInfDistance) {
            EXPECT_TRUE(path.empty());
            ++unreachable_observations;
        }
    };
    const auto res = analyze_pairs(f.mobility, f.isls, f.gses, pairs, opt);
    EXPECT_EQ(unreachable_observations, 6);
    for (const auto& s : res.pair_stats) {
        EXPECT_EQ(s.unreachable_steps, s.total_steps);
        EXPECT_EQ(s.min_rtt_s, 0.0);
        EXPECT_EQ(s.max_rtt_s, 0.0);
        EXPECT_EQ(s.path_changes, 0);
    }
}

TEST(AnalyzePairs, PartitionHealsMidWindow) {
    // Satellites down for the first 2 s of a 4 s window: the first two
    // steps are unreachable, the rest recover with sane RTTs.
    Fixture f;
    std::vector<fault::FaultEvent> events;
    const int num_sats = f.constellation.num_satellites();
    for (int sat = 0; sat < num_sats; ++sat) {
        events.push_back({fault::FaultKind::kSatellite, sat, -1, 0, 2 * kNsPerSec});
    }
    const auto sched = fault::FaultSchedule::from_events(
        events, num_sats, static_cast<int>(f.gses.size()));
    std::vector<GsPair> pairs = {
        {topo::city_index("Manila"), topo::city_index("Dalian")}};
    AnalysisOptions opt;
    opt.t_end = 4 * kNsPerSec;
    opt.step = 1 * kNsPerSec;
    opt.faults = &sched;
    const auto res = analyze_pairs(f.mobility, f.isls, f.gses, pairs, opt);
    const auto& s = res.pair_stats[0];
    EXPECT_EQ(s.total_steps, 4);
    EXPECT_EQ(s.unreachable_steps, 2);
    EXPECT_GT(s.min_rtt_s, 0.0);
    EXPECT_LT(s.max_rtt_s, 0.5);
}

}  // namespace
}  // namespace hypatia::route
