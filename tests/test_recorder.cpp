// The flight recorder: ring semantics (fixed capacity, overwrite-
// oldest, dropped accounting), deterministic merged drains from many
// threads, JSONL export, and the acceptance contract that recording is
// side-channel only — simulator outputs are byte-identical with the
// recorder on or off at 1, 2 and 8 lanes.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/flowsim/engine.hpp"
#include "src/flowsim/traffic.hpp"
#include "src/obs/json.hpp"
#include "src/obs/recorder.hpp"
#include "src/topology/cities.hpp"
#include "src/topology/constellation.hpp"
#include "src/util/thread_pool.hpp"

namespace hypatia::obs {
namespace {

class RecorderTest : public ::testing::Test {
  protected:
    void SetUp() override {
        recorder().reset();
        recorder().set_enabled(true);
    }
    void TearDown() override {
        recorder().reset();
        recorder().set_enabled(true);
        recorder().set_capacity(16384);
    }
};

Event make_event(TimeNs t, EventKind kind = EventKind::kEpochAdvance,
                 std::int32_t a = -1) {
    Event e;
    e.t = t;
    e.kind = kind;
    e.a = a;
    return e;
}

TEST_F(RecorderTest, RecordsAndDrainsInTimeOrder) {
    recorder().record(EventKind::kPathChange, 30, 1, 2, 100, 101, 0.012);
    recorder().record(EventKind::kEpochAdvance, 10, 5, 1);
    recorder().record(EventKind::kFaultDown, 20, 0, 501, -1);
    const auto events = recorder().drain();
    ASSERT_EQ(events.size(), 3u);
    EXPECT_EQ(events[0].t, 10);
    EXPECT_EQ(events[0].kind, EventKind::kEpochAdvance);
    EXPECT_EQ(events[1].t, 20);
    EXPECT_EQ(events[2].t, 30);
    EXPECT_EQ(events[2].c, 100);
    EXPECT_DOUBLE_EQ(events[2].value, 0.012);
    // drain() cleared the rings.
    EXPECT_EQ(recorder().buffered(), 0u);
    EXPECT_TRUE(recorder().drain().empty());
}

TEST_F(RecorderTest, SnapshotLeavesRingsIntact) {
    recorder().record(make_event(1));
    recorder().record(make_event(2));
    EXPECT_EQ(recorder().snapshot().size(), 2u);
    EXPECT_EQ(recorder().snapshot().size(), 2u);  // unchanged
    EXPECT_EQ(recorder().buffered(), 2u);
    EXPECT_EQ(recorder().drain().size(), 2u);
    EXPECT_EQ(recorder().buffered(), 0u);
}

TEST_F(RecorderTest, DisabledRecorderDropsNothingAndStoresNothing) {
    recorder().set_enabled(false);
    for (int i = 0; i < 100; ++i) recorder().record(make_event(i));
    EXPECT_EQ(recorder().buffered(), 0u);
    EXPECT_EQ(recorder().dropped(), 0u);
}

TEST_F(RecorderTest, FullRingOverwritesOldestAndCountsDropped) {
    recorder().set_capacity(1);  // clamped up to the floor of 64
    EXPECT_EQ(recorder().capacity(), 64u);
    recorder().reset();  // re-create this thread's ring at the new capacity
    for (TimeNs t = 0; t < 100; ++t) recorder().record(make_event(t));
    EXPECT_EQ(recorder().buffered(), 64u);
    EXPECT_EQ(recorder().dropped(), 36u);
    const auto events = recorder().drain();
    ASSERT_EQ(events.size(), 64u);
    // The oldest 36 events were overwritten; 36..99 survive.
    EXPECT_EQ(events.front().t, 36);
    EXPECT_EQ(events.back().t, 99);

    // Capacity is clamped above as well.
    recorder().set_capacity(std::size_t{1} << 40);
    EXPECT_EQ(recorder().capacity(), std::size_t{1} << 22);
}

TEST_F(RecorderTest, MergedDrainFromManyThreadsIsDeterministic) {
    constexpr int kThreads = 8;
    constexpr TimeNs kPerThread = 500;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int w = 0; w < kThreads; ++w) {
        threads.emplace_back([w] {
            for (TimeNs i = 0; i < kPerThread; ++i) {
                // Interleaved timestamps across threads so the merge
                // actually has to sort, with `a` disambiguating ties.
                recorder().record(EventKind::kEpochAdvance, i, w, 1);
            }
        });
    }
    for (auto& t : threads) t.join();

    const auto events = recorder().drain();
    ASSERT_EQ(events.size(), static_cast<std::size_t>(kThreads) * kPerThread);
    for (std::size_t i = 0; i < events.size(); ++i) {
        // Sorted by (t, kind, a, ...): event i is time i/8, thread i%8.
        EXPECT_EQ(events[i].t, static_cast<TimeNs>(i / kThreads));
        EXPECT_EQ(events[i].a, static_cast<std::int32_t>(i % kThreads));
    }
}

TEST_F(RecorderTest, DrainToJsonlWritesParsableLines) {
    recorder().record(EventKind::kPathChange, 173, 12, 87, 501, 502, 0.014);
    recorder().record(EventKind::kFaultDown, 100, 0, 501, -1);
    const std::string path = ::testing::TempDir() + "flight_recorder_test.jsonl";
    recorder().drain_to_jsonl(path);

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string line;
    std::vector<json::Value> lines;
    while (std::getline(in, line)) lines.push_back(json::Value::parse(line));
    std::remove(path.c_str());
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_EQ(lines[0].at("kind").as_string(), "fault_down");
    EXPECT_EQ(lines[0].at("t").as_number(), 100.0);
    EXPECT_EQ(lines[1].at("kind").as_string(), "path_change");
    EXPECT_EQ(lines[1].at("a").as_number(), 12.0);
    EXPECT_EQ(lines[1].at("b").as_number(), 87.0);
    EXPECT_EQ(lines[1].at("c").as_number(), 501.0);
    EXPECT_EQ(lines[1].at("d").as_number(), 502.0);
    EXPECT_NEAR(lines[1].at("value").as_number(), 0.014, 1e-12);
    EXPECT_EQ(recorder().buffered(), 0u);  // drained
}

TEST_F(RecorderTest, EveryEventKindHasAStableName) {
    for (std::size_t k = 0; k < kNumEventKinds; ++k) {
        const char* name = event_kind_name(static_cast<EventKind>(k));
        ASSERT_NE(name, nullptr);
        EXPECT_GT(std::string(name).size(), 0u);
    }
}

// --- Acceptance: side-channel only -----------------------------------------

// One compact flowsim run; returns the fully serialized summary.
std::string run_flowsim_and_dump() {
    core::Scenario scenario;
    scenario.shell = topo::shell_by_name("kuiper_k1");
    scenario.ground_stations = {
        topo::city_by_name("Manila"), topo::city_by_name("Dalian"),
        topo::city_by_name("Tokyo"), topo::city_by_name("Seoul")};
    flowsim::PoissonTrafficConfig cfg;
    cfg.num_gs = 4;
    cfg.arrivals_per_s = 25.0;
    cfg.mean_size_bits = 4e6;
    cfg.window = 3 * kNsPerSec;
    cfg.seed = 5;
    flowsim::EngineOptions opts;
    opts.epoch = kNsPerSec;
    opts.duration = 6 * kNsPerSec;
    opts.resolve_on_completion = true;
    flowsim::Engine engine(scenario, flowsim::poisson_traffic(cfg), opts);
    const auto summary = engine.run();

    char buf[128];
    std::string dump;
    for (std::size_t f = 0; f < summary.flows.size(); ++f) {
        const auto& o = summary.flows[f];
        std::snprintf(buf, sizeof(buf), "%zu,%lld,%.17g,%.17g\n", f,
                      static_cast<long long>(o.completion), o.bits_sent,
                      o.last_rate_bps);
        dump += buf;
    }
    for (const auto& e : summary.epochs) {
        std::snprintf(buf, sizeof(buf), "%lld,%zu,%.17g\n",
                      static_cast<long long>(e.t), e.active, e.sum_rate_bps);
        dump += buf;
    }
    return dump;
}

TEST_F(RecorderTest, SimulatorOutputByteIdenticalRecorderOnAndOff) {
    for (const std::size_t lanes : {1, 2, 8}) {
        util::ThreadPool::set_global_threads(lanes);

        recorder().reset();
        recorder().set_enabled(true);
        const std::string with_recorder = run_flowsim_and_dump();
        // The run must actually have been recorded — otherwise this
        // test would vacuously compare two recorder-off runs.
        EXPECT_GT(recorder().buffered(), 0u) << "lanes=" << lanes;
        recorder().reset();

        recorder().set_enabled(false);
        const std::string without_recorder = run_flowsim_and_dump();
        EXPECT_EQ(recorder().buffered(), 0u);
        recorder().set_enabled(true);

        EXPECT_EQ(with_recorder, without_recorder) << "lanes=" << lanes;
    }
    util::ThreadPool::set_global_threads(0);
}

}  // namespace
}  // namespace hypatia::obs
