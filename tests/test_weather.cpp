#include "src/topology/weather.hpp"

#include <gtest/gtest.h>

#include "src/routing/path_analysis.hpp"
#include "src/topology/cities.hpp"

namespace hypatia::topo {
namespace {

TEST(WeatherModel, DeterministicForSeed) {
    WeatherModel::Config cfg;
    cfg.rain_probability = 0.3;
    const WeatherModel a(cfg), b(cfg);
    for (int gs = 0; gs < 20; ++gs) {
        for (TimeNs t = 0; t < 3000 * kNsPerSec; t += 300 * kNsPerSec) {
            EXPECT_EQ(a.raining(gs, t), b.raining(gs, t));
        }
    }
}

TEST(WeatherModel, DifferentSeedsDiffer) {
    WeatherModel::Config ca, cb;
    ca.rain_probability = cb.rain_probability = 0.5;
    ca.seed = 1;
    cb.seed = 2;
    const WeatherModel a(ca), b(cb);
    int differing = 0;
    for (int gs = 0; gs < 50; ++gs) {
        if (a.raining(gs, 0) != b.raining(gs, 0)) ++differing;
    }
    EXPECT_GT(differing, 5);
}

TEST(WeatherModel, RainFractionNearProbability) {
    WeatherModel::Config cfg;
    cfg.rain_probability = 0.25;
    const WeatherModel w(cfg);
    int raining = 0;
    const int samples = 100 * 50;
    for (int gs = 0; gs < 100; ++gs) {
        for (int cell = 0; cell < 50; ++cell) {
            if (w.raining(gs, cell * cfg.cell_duration)) ++raining;
        }
    }
    EXPECT_NEAR(static_cast<double>(raining) / samples, 0.25, 0.03);
}

TEST(WeatherModel, ConstantWithinCell) {
    WeatherModel::Config cfg;
    cfg.rain_probability = 0.5;
    const WeatherModel w(cfg);
    for (int gs = 0; gs < 10; ++gs) {
        const bool at_start = w.raining(gs, 0);
        EXPECT_EQ(w.raining(gs, cfg.cell_duration / 2), at_start);
        EXPECT_EQ(w.raining(gs, cfg.cell_duration - 1), at_start);
    }
}

TEST(WeatherModel, FactorMatchesRainState) {
    WeatherModel::Config cfg;
    cfg.rain_probability = 0.5;
    cfg.rain_range_factor = 0.6;
    const WeatherModel w(cfg);
    for (int gs = 0; gs < 20; ++gs) {
        const double f = w.gsl_range_factor(gs, 0);
        EXPECT_EQ(f, w.raining(gs, 0) ? 0.6 : 1.0);
    }
}

TEST(WeatherModel, ZeroProbabilityNeverRains) {
    WeatherModel::Config cfg;
    cfg.rain_probability = 0.0;
    const WeatherModel w(cfg);
    for (int gs = 0; gs < 100; ++gs) EXPECT_FALSE(w.raining(gs, 0));
}

TEST(WeatherIntegration, RainReducesGslOptions) {
    const Constellation k1(shell_by_name("kuiper_k1"), default_epoch());
    const SatelliteMobility mob(k1);
    const auto isls = build_isls(k1, IslPattern::kPlusGrid);
    std::vector<orbit::GroundStation> gses = {city_by_name("Singapore")};

    route::SnapshotOptions clear;
    const auto g_clear = route::build_snapshot(mob, isls, gses, 0, clear);

    route::SnapshotOptions rainy;
    rainy.gsl_range_factor = [](int, TimeNs) { return 0.6; };
    const auto g_rain = route::build_snapshot(mob, isls, gses, 0, rainy);

    EXPECT_LT(g_rain.neighbors(g_rain.gs_node(0)).size(),
              g_clear.neighbors(g_clear.gs_node(0)).size());
}

TEST(GsPolicyIntegration, NearestOnlyHasSingleGslEdge) {
    const Constellation k1(shell_by_name("kuiper_k1"), default_epoch());
    const SatelliteMobility mob(k1);
    const auto isls = build_isls(k1, IslPattern::kPlusGrid);
    std::vector<orbit::GroundStation> gses = {city_by_name("Tokyo"),
                                              city_by_name("Delhi")};
    route::SnapshotOptions nearest;
    nearest.gs_nearest_satellite_only = true;
    const auto g = route::build_snapshot(mob, isls, gses, 0, nearest);
    for (int gi = 0; gi < 2; ++gi) {
        EXPECT_LE(g.neighbors(g.gs_node(gi)).size(), 1u);
    }
    // And the single edge is the *nearest* connectable satellite.
    const auto vis = visible_satellites(gses[0], mob, 0);
    ASSERT_FALSE(vis.empty());
    ASSERT_EQ(g.neighbors(g.gs_node(0)).size(), 1u);
    EXPECT_EQ(g.neighbors(g.gs_node(0))[0].to, vis[0].sat_id);
}

TEST(GsPolicyIntegration, NearestOnlyComposesWithWeatherCone) {
    // Pins the nearest-satellite x weather-cone semantics: the policy
    // considers the nearest *visible* satellite, and the (possibly
    // rain-shrunk) cone then decides whether that satellite is
    // connectable. A cone that excludes the nearest satellite leaves the
    // GS disconnected — it must not fall through to a farther satellite
    // that happens to sit inside the cone.
    const Constellation k1(shell_by_name("kuiper_k1"), default_epoch());
    const SatelliteMobility mob(k1);
    const auto isls = build_isls(k1, IslPattern::kPlusGrid);
    std::vector<orbit::GroundStation> gses = {city_by_name("Tokyo")};

    const auto vis = visible_satellites(gses[0], mob, 0);
    ASSERT_GE(vis.size(), 2u);
    ASSERT_LT(vis[0].range_km, vis[1].range_km);
    const double max_range = mob.constellation().params().max_gsl_range_km();

    // Cone shrunk to just below the nearest satellite: no GSL edge at all.
    route::SnapshotOptions exclude;
    exclude.gs_nearest_satellite_only = true;
    exclude.gsl_range_factor = [&](int, TimeNs) {
        return (vis[0].range_km - 1.0) / max_range;
    };
    const auto g_excl = route::build_snapshot(mob, isls, gses, 0, exclude);
    EXPECT_TRUE(g_excl.neighbors(g_excl.gs_node(0)).empty());

    // Cone between nearest and second-nearest: exactly the nearest edge.
    route::SnapshotOptions admit;
    admit.gs_nearest_satellite_only = true;
    admit.gsl_range_factor = [&](int, TimeNs) {
        return 0.5 * (vis[0].range_km + vis[1].range_km) / max_range;
    };
    const auto g_admit = route::build_snapshot(mob, isls, gses, 0, admit);
    ASSERT_EQ(g_admit.neighbors(g_admit.gs_node(0)).size(), 1u);
    EXPECT_EQ(g_admit.neighbors(g_admit.gs_node(0))[0].to, vis[0].sat_id);
}

}  // namespace
}  // namespace hypatia::topo
