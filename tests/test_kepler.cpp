#include "src/orbit/kepler.hpp"

#include <cmath>

#include <gtest/gtest.h>

namespace hypatia::orbit {
namespace {

JulianDate epoch() { return julian_date_from_utc(2000, 1, 1, 0, 0, 0.0); }

TEST(KeplerianElements, PaperOrbitalInvariants) {
    // Paper section 2.3: at h = 550 km the orbital velocity is more than
    // 27,000 km/h and the period is ~100 minutes (the period at 550 km is
    // ~95.6 min; "~100 minutes" in the text).
    const auto el = KeplerianElements::circular(550.0, 53.0, 0.0, 0.0, epoch());
    EXPECT_GT(el.circular_velocity_km_per_s() * 3600.0, 27000.0);
    EXPECT_NEAR(el.period_s() / 60.0, 95.6, 1.0);
}

TEST(KeplerianElements, MeanMotionUnits) {
    const auto el = KeplerianElements::circular(550.0, 53.0, 0.0, 0.0, epoch());
    EXPECT_NEAR(el.mean_motion_rev_per_day(),
                86400.0 / el.period_s(), 1e-9);
    // ~15 revs/day is the hallmark of LEO.
    EXPECT_NEAR(el.mean_motion_rev_per_day(), 15.06, 0.1);
}

TEST(SolveKepler, CircularIsIdentity) {
    for (double m = 0.0; m < 6.28; m += 0.7) {
        EXPECT_NEAR(solve_kepler_equation(m, 0.0), m, 1e-12);
    }
}

TEST(SolveKepler, SatisfiesEquation) {
    for (double e : {0.001, 0.1, 0.5, 0.9}) {
        for (double m = 0.1; m < 6.2; m += 0.5) {
            const double ea = solve_kepler_equation(m, e);
            EXPECT_NEAR(ea - e * std::sin(ea), m, 1e-10) << "e=" << e << " m=" << m;
        }
    }
}

TEST(PropagateKeplerJ2, RadiusConstantForCircularOrbit) {
    const auto el = KeplerianElements::circular(630.0, 51.9, 40.0, 70.0, epoch());
    for (double t = 0.0; t <= 6000.0; t += 500.0) {
        const auto sv = propagate_kepler_j2(el, epoch().plus_seconds(t));
        EXPECT_NEAR(sv.position_km.norm(), el.semi_major_axis_km, 1e-6);
    }
}

TEST(PropagateKeplerJ2, SpeedMatchesCircularVelocity) {
    const auto el = KeplerianElements::circular(550.0, 53.0, 10.0, 20.0, epoch());
    const auto sv = propagate_kepler_j2(el, epoch().plus_seconds(1234.0));
    EXPECT_NEAR(sv.velocity_km_per_s.norm(), el.circular_velocity_km_per_s(), 1e-9);
}

TEST(PropagateKeplerJ2, VelocityPerpendicularToPositionWhenCircular) {
    const auto el = KeplerianElements::circular(1015.0, 98.98, 123.0, 45.0, epoch());
    const auto sv = propagate_kepler_j2(el, epoch().plus_seconds(777.0));
    const double cosang = sv.position_km.normalized().dot(sv.velocity_km_per_s.normalized());
    EXPECT_NEAR(cosang, 0.0, 1e-9);
}

TEST(PropagateKeplerJ2, InclinationBoundsLatitude) {
    const auto el = KeplerianElements::circular(630.0, 51.9, 0.0, 0.0, epoch());
    double max_z_over_r = 0.0;
    for (double t = 0.0; t < el.period_s(); t += 10.0) {
        const auto sv = propagate_kepler_j2(el, epoch().plus_seconds(t));
        max_z_over_r = std::max(max_z_over_r,
                                std::abs(sv.position_km.z) / sv.position_km.norm());
    }
    // max |latitude| == inclination for a circular orbit.
    EXPECT_NEAR(std::asin(max_z_over_r) * 180.0 / M_PI, 51.9, 0.05);
}

TEST(PropagateKeplerJ2, PeriodReturnsNearStart) {
    const auto el = KeplerianElements::circular(550.0, 53.0, 0.0, 0.0, epoch());
    const auto sv0 = propagate_kepler_j2(el, epoch());
    const auto sv1 = propagate_kepler_j2(el, epoch().plus_seconds(el.period_s()));
    // J2 precession causes a small drift over one orbit; require < 100 km.
    EXPECT_LT(sv0.position_km.distance_to(sv1.position_km), 100.0);
}

TEST(PropagateKeplerJ2, RaanDriftDirectionMatchesJ2Theory) {
    // Prograde orbits (i < 90) regress westward; retrograde (i > 90)
    // precess eastward. Compare node movement after one day.
    auto measure_drift = [&](double inclination) {
        const auto el = KeplerianElements::circular(700.0, inclination, 0.0, 0.0, epoch());
        const double n = el.mean_motion_rad_per_s();
        const double p = el.semi_major_axis_km;
        const double re_over_p = Wgs72::kEarthRadiusKm / p;
        return -1.5 * Wgs72::kJ2 * re_over_p * re_over_p * n *
               std::cos(inclination * M_PI / 180.0);
    };
    EXPECT_LT(measure_drift(53.0), 0.0);
    EXPECT_GT(measure_drift(98.98), 0.0);
}

TEST(PropagateKeplerJ2, EccentricOrbitRespectsApsides) {
    KeplerianElements el = KeplerianElements::circular(1000.0, 60.0, 0.0, 0.0, epoch());
    el.eccentricity = 0.1;
    double rmin = 1e18, rmax = 0.0;
    for (double t = 0.0; t < el.period_s(); t += 5.0) {
        const double r = propagate_kepler_j2(el, epoch().plus_seconds(t)).position_km.norm();
        rmin = std::min(rmin, r);
        rmax = std::max(rmax, r);
    }
    EXPECT_NEAR(rmin, el.semi_major_axis_km * 0.9, 1.0);
    EXPECT_NEAR(rmax, el.semi_major_axis_km * 1.1, 1.0);
}

}  // namespace
}  // namespace hypatia::orbit
