#include "src/topology/isl.hpp"

#include <set>

#include <gtest/gtest.h>

namespace hypatia::topo {
namespace {

Constellation mini() {
    return Constellation({"mini", 550.0, 5, 6, 53.0, 25.0, 0.5}, default_epoch());
}

TEST(PlusGrid, EverySatelliteHasDegreeFour) {
    const auto c = mini();
    const auto isls = build_isls(c, IslPattern::kPlusGrid);
    const auto deg = isl_degrees(c.num_satellites(), isls);
    for (int d : deg) EXPECT_EQ(d, 4);
}

TEST(PlusGrid, EdgeCountIsTwoPerSatellite) {
    const auto c = mini();
    const auto isls = build_isls(c, IslPattern::kPlusGrid);
    EXPECT_EQ(isls.size(), static_cast<std::size_t>(2 * c.num_satellites()));
}

TEST(PlusGrid, NoDuplicateEdges) {
    const auto c = mini();
    const auto isls = build_isls(c, IslPattern::kPlusGrid);
    std::set<std::pair<int, int>> seen;
    for (const auto& isl : isls) {
        auto key = std::minmax(isl.sat_a, isl.sat_b);
        EXPECT_TRUE(seen.insert({key.first, key.second}).second)
            << isl.sat_a << "-" << isl.sat_b;
    }
}

TEST(PlusGrid, IntraOrbitRingWraps) {
    const auto c = mini();
    const auto isls = build_isls(c, IslPattern::kPlusGrid);
    // Satellite (0, last) must link to (0, 0).
    const int last = c.sat_id(0, 5);
    const int first = c.sat_id(0, 0);
    bool found = false;
    for (const auto& isl : isls) {
        if ((isl.sat_a == last && isl.sat_b == first) ||
            (isl.sat_a == first && isl.sat_b == last)) {
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST(PlusGrid, CrossOrbitSeamWraps) {
    const auto c = mini();
    const auto isls = build_isls(c, IslPattern::kPlusGrid);
    // Satellite (last orbit, 0) must link to (0, 0).
    const int seam = c.sat_id(4, 0);
    const int first = c.sat_id(0, 0);
    bool found = false;
    for (const auto& isl : isls) {
        if ((isl.sat_a == seam && isl.sat_b == first) ||
            (isl.sat_a == first && isl.sat_b == seam)) {
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST(PlusGrid, RejectsTooSmallShells) {
    const Constellation tiny({"tiny", 550.0, 2, 6, 53.0, 25.0, 0.5}, default_epoch());
    EXPECT_THROW(build_isls(tiny, IslPattern::kPlusGrid), std::invalid_argument);
}

TEST(NoIsls, BentPipeHasNoLinks) {
    const auto c = mini();
    EXPECT_TRUE(build_isls(c, IslPattern::kNone).empty());
}

TEST(PlusGrid, KuiperK1Counts) {
    const Constellation k1(shell_by_name("kuiper_k1"), default_epoch());
    const auto isls = build_isls(k1, IslPattern::kPlusGrid);
    EXPECT_EQ(isls.size(), static_cast<std::size_t>(2 * 34 * 34));
}

}  // namespace
}  // namespace hypatia::topo
