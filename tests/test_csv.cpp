// CsvWriter: RFC-4180 quoting of string cells (commas, quotes, CR/LF),
// double rows, raw passthrough, and round-tripping through a real file.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/util/csv.hpp"

namespace hypatia::util {
namespace {

TEST(CsvEscape, PlainCellsPassThroughUnquoted) {
    EXPECT_EQ(CsvWriter::escape("plain"), "plain");
    EXPECT_EQ(CsvWriter::escape(""), "");
    EXPECT_EQ(CsvWriter::escape("with space"), "with space");
    EXPECT_EQ(CsvWriter::escape("semi;colon"), "semi;colon");
}

TEST(CsvEscape, CommaTriggersQuoting) {
    EXPECT_EQ(CsvWriter::escape("Washington, D.C."), "\"Washington, D.C.\"");
}

TEST(CsvEscape, EmbeddedQuotesAreDoubled) {
    EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
    EXPECT_EQ(CsvWriter::escape("\""), "\"\"\"\"");
}

TEST(CsvEscape, NewlinesTriggerQuoting) {
    EXPECT_EQ(CsvWriter::escape("line1\nline2"), "\"line1\nline2\"");
    EXPECT_EQ(CsvWriter::escape("cr\rcell"), "\"cr\rcell\"");
}

std::string slurp(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

TEST(CsvWriter, FileRoundTripEscapesHeaderAndStringRows) {
    const std::string path = "test_csv_roundtrip.csv";
    {
        CsvWriter csv(path);
        csv.header({"city", "note, with comma", "value"});
        csv.row(std::vector<std::string>{"Rio de Janeiro", "plain", "1"});
        csv.row(std::vector<std::string>{"Washington, D.C.", "has \"quote\"", "2"});
        csv.row(std::vector<double>{1.5, 2.0, 3.0});
        csv.raw_line("raw,unescaped,\"as is\"");
    }
    const std::string contents = slurp(path);
    EXPECT_EQ(contents,
              "city,\"note, with comma\",value\n"
              "Rio de Janeiro,plain,1\n"
              "\"Washington, D.C.\",\"has \"\"quote\"\"\",2\n"
              "1.5,2,3\n"
              "raw,unescaped,\"as is\"\n");
    std::remove(path.c_str());
}

TEST(CsvWriter, ThrowsWhenFileCannotBeOpened) {
    EXPECT_THROW(CsvWriter("/nonexistent-dir/x/y.csv"), std::runtime_error);
}

}  // namespace
}  // namespace hypatia::util
