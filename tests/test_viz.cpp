#include <gtest/gtest.h>

#include "src/core/experiment.hpp"
#include "src/topology/cities.hpp"
#include "src/viz/ground_view.hpp"
#include "src/viz/path_export.hpp"
#include "src/viz/trajectory_export.hpp"
#include "src/viz/utilization_export.hpp"

namespace hypatia::viz {
namespace {

topo::Constellation mini() {
    return topo::Constellation({"mini", 630.0, 5, 6, 51.9, 30.0, 0.5},
                               topo::default_epoch());
}

TEST(TrajectoryExport, SnapshotHasAllSatellites) {
    const auto c = mini();
    const topo::SatelliteMobility mob(c);
    const auto snap = snapshot(mob, 0);
    EXPECT_EQ(snap.size(), 30u);
    for (const auto& p : snap) {
        EXPECT_LE(std::abs(p.latitude_deg), 52.5);  // bounded by inclination
        EXPECT_NEAR(p.altitude_km, 630.0, 20.0);
    }
}

TEST(TrajectoryExport, TracksJsonWellFormedEnough) {
    const auto c = mini();
    const topo::SatelliteMobility mob(c);
    const auto tracks = sample_tracks(mob, 0, 10 * kNsPerSec, 5 * kNsPerSec);
    const auto json = tracks_to_json("mini", tracks);
    EXPECT_NE(json.find("\"constellation\":\"mini\""), std::string::npos);
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
    EXPECT_EQ(std::count(json.begin(), json.end(), '['),
              std::count(json.begin(), json.end(), ']'));
}

TEST(TrajectoryExport, LatitudeDensitySumsToOne) {
    const auto c = mini();
    const topo::SatelliteMobility mob(c);
    const auto bands = latitude_density(mob, 0);
    double sum = 0.0;
    for (double b : bands) sum += b;
    EXPECT_NEAR(sum, 1.0, 1e-9);
    // Inclination 51.9: no satellites above 60 degrees.
    EXPECT_EQ(bands[16], 0.0);
    EXPECT_EQ(bands[17], 0.0);
    EXPECT_EQ(bands[0], 0.0);
}

TEST(GroundView, SeriesAndCsv) {
    const topo::Constellation k1(topo::shell_by_name("kuiper_k1"),
                                 topo::default_epoch());
    const topo::SatelliteMobility mob(k1);
    const auto sp = topo::city_by_name("Saint Petersburg");
    const auto frames = ground_view_series(sp, mob, 0, 10 * kNsPerSec, 5 * kNsPerSec);
    ASSERT_EQ(frames.size(), 2u);
    const auto csv = ground_view_to_csv(frames);
    EXPECT_NE(csv.find("t_s,sat_id"), std::string::npos);
    for (const auto& f : frames) {
        for (const auto& e : f.sky) {
            EXPECT_GE(e.elevation_deg, 0.0);
            EXPECT_GE(e.azimuth_deg, 0.0);
            EXPECT_LT(e.azimuth_deg, 360.0);
        }
    }
}

TEST(GroundView, AsciiChartDimensions) {
    const topo::Constellation k1(topo::shell_by_name("kuiper_k1"),
                                 topo::default_epoch());
    const topo::SatelliteMobility mob(k1);
    const auto tokyo = topo::city_by_name("Tokyo");
    const auto frames = ground_view_series(tokyo, mob, 0, kNsPerSec, kNsPerSec);
    const auto chart = ascii_sky_chart(frames[0], 40, 10);
    EXPECT_EQ(std::count(chart.begin(), chart.end(), '\n'), 11);  // header + 10 rows
}

TEST(PathExport, ResolveAndRender) {
    const auto c = mini();
    const topo::SatelliteMobility mob(c);
    std::vector<orbit::GroundStation> gses = {topo::city_by_name("Paris"),
                                              topo::city_by_name("Luanda")};
    // Path: gs30 -> sat2 -> sat3 -> gs31 (node ids: gs = 30 + index).
    const std::vector<int> path = {30, 2, 3, 31};
    const auto resolved = resolve_path(path, mob, gses, 0);
    ASSERT_EQ(resolved.size(), 4u);
    EXPECT_TRUE(resolved[0].is_gs);
    EXPECT_EQ(resolved[0].label, "Paris");
    EXPECT_FALSE(resolved[1].is_gs);
    EXPECT_EQ(resolved[3].label, "Luanda");
    const auto str = path_to_string(resolved);
    EXPECT_NE(str.find("Paris -> sat-2 -> sat-3 -> Luanda"), std::string::npos);
    EXPECT_NE(str.find("2 satellite hops"), std::string::npos);
    const auto json = path_to_json(resolved, 0, 42.0);
    EXPECT_NE(json.find("\"rtt_ms\":42"), std::string::npos);
}

TEST(UtilizationExport, MapAndBottlenecks) {
    core::Scenario s;
    s.shell = topo::shell_by_name("kuiper_k1");
    s.ground_stations = {topo::city_by_name("Manila"), topo::city_by_name("Dalian")};
    core::LeoNetwork leo(s);
    core::UtilizationSampler sampler(leo, kNsPerSec, 5 * kNsPerSec);
    auto flows = core::attach_tcp_flows(leo, {{0, 1}}, "newreno");
    leo.run(5 * kNsPerSec);
    auto map = isl_utilization_map(leo, sampler, 2);
    EXPECT_FALSE(map.empty());  // the flow crossed at least one ISL
    for (const auto& iu : map) {
        EXPECT_GT(iu.utilization, 0.0);
        EXPECT_LE(iu.utilization, 1.0);
    }
    const auto top = top_bottlenecks(map, 3);
    ASSERT_LE(top.size(), 3u);
    for (std::size_t i = 1; i < top.size(); ++i) {
        EXPECT_GE(top[i - 1].utilization, top[i].utilization);
    }
    const auto csv = utilization_to_csv(map);
    EXPECT_NE(csv.find("sat_a,sat_b"), std::string::npos);
}

}  // namespace
}  // namespace hypatia::viz
