#include "src/routing/forwarding.hpp"

#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

namespace hypatia::route {
namespace {

Graph diamond() {
    // gs4 - sat0 - sat1 - gs5 and gs4 - sat2 - sat3 - gs5 (longer).
    Graph g(4, 2);
    g.add_undirected_edge(4, 0, 1.0);
    g.add_undirected_edge(0, 1, 1.0);
    g.add_undirected_edge(1, 5, 1.0);
    g.add_undirected_edge(4, 2, 2.0);
    g.add_undirected_edge(2, 3, 2.0);
    g.add_undirected_edge(3, 5, 2.0);
    return g;
}

TEST(ForwardingState, NextHopsFollowShortestPath) {
    const auto g = diamond();
    const auto state = compute_forwarding(g, {5});
    EXPECT_EQ(state.next_hop(4, 5), 0);
    EXPECT_EQ(state.next_hop(0, 5), 1);
    EXPECT_EQ(state.next_hop(1, 5), 5);
}

TEST(ForwardingState, UnknownDestinationReturnsMinusOne) {
    const auto g = diamond();
    const auto state = compute_forwarding(g, {5});
    EXPECT_EQ(state.next_hop(4, 4), -1);
    EXPECT_EQ(state.distance_km(0, 4), kInfDistance);
}

TEST(ForwardingState, DistanceMatchesTree) {
    const auto g = diamond();
    const auto state = compute_forwarding(g, {5});
    EXPECT_DOUBLE_EQ(state.distance_km(4, 5), 3.0);
    EXPECT_DOUBLE_EQ(state.distance_km(5, 5), 0.0);
}

TEST(ForwardingState, MultipleDestinations) {
    const auto g = diamond();
    const auto state = compute_forwarding(g, {4, 5});
    EXPECT_EQ(state.num_destinations(), 2u);
    EXPECT_EQ(state.next_hop(1, 4), 0);
    EXPECT_EQ(state.next_hop(0, 4), 4);
}

TEST(ForwardingState, LoopFreedom) {
    // Following next hops from any node must reach the destination without
    // revisiting a node (invariant of shortest-path trees).
    const auto g = diamond();
    const auto state = compute_forwarding(g, {5});
    for (int start = 0; start < g.num_nodes(); ++start) {
        if (state.next_hop(start, 5) < 0) continue;
        std::vector<char> seen(static_cast<std::size_t>(g.num_nodes()), 0);
        int node = start;
        int steps = 0;
        while (node != 5) {
            ASSERT_FALSE(seen[static_cast<std::size_t>(node)]) << "loop at " << node;
            seen[static_cast<std::size_t>(node)] = 1;
            node = state.next_hop(node, 5);
            ASSERT_GE(node, 0);
            ASSERT_LE(++steps, g.num_nodes());
        }
    }
}

TEST(ForwardingState, DestinationNextHopIsSelf) {
    const auto g = diamond();
    const auto state = compute_forwarding(g, {5});
    EXPECT_EQ(state.next_hop(5, 5), 5);
}

// The diamond plus one isolated satellite (node 4), so the fixture also
// pins the unreachable-row encoding ("-1,...,inf"). GS nodes shift to 5/6.
Graph diamond_with_stray() {
    Graph g(5, 2);
    g.add_undirected_edge(5, 0, 1.0);
    g.add_undirected_edge(0, 1, 1.0);
    g.add_undirected_edge(1, 6, 1.0);
    g.add_undirected_edge(5, 2, 2.0);
    g.add_undirected_edge(2, 3, 2.0);
    g.add_undirected_edge(3, 6, 2.0);
    return g;
}

TEST(ForwardingState, SerializeCsvMatchesGoldenFixture) {
    // Pins the exact serialization format — header, row order (destinations
    // ascending, nodes ascending), "%.6f" distances, "inf" for unreachable —
    // against a checked-in fixture. Any format drift breaks every consumer
    // that diffs forwarding dumps (the equivalence suite, run manifests),
    // so changing it must be a conscious act: regenerate tests/data/
    // forwarding_golden.csv and update this comment's rationale.
    const auto g = diamond_with_stray();
    const auto state = compute_forwarding(g, {5, 6});
    std::ifstream in(std::string(HYPATIA_TEST_DATA_DIR) + "/forwarding_golden.csv");
    ASSERT_TRUE(in.is_open()) << "missing fixture forwarding_golden.csv";
    std::ostringstream golden;
    golden << in.rdbuf();
    EXPECT_EQ(state.dump_csv(), golden.str());
}

}  // namespace
}  // namespace hypatia::route
