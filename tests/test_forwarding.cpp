#include "src/routing/forwarding.hpp"

#include <gtest/gtest.h>

namespace hypatia::route {
namespace {

Graph diamond() {
    // gs4 - sat0 - sat1 - gs5 and gs4 - sat2 - sat3 - gs5 (longer).
    Graph g(4, 2);
    g.add_undirected_edge(4, 0, 1.0);
    g.add_undirected_edge(0, 1, 1.0);
    g.add_undirected_edge(1, 5, 1.0);
    g.add_undirected_edge(4, 2, 2.0);
    g.add_undirected_edge(2, 3, 2.0);
    g.add_undirected_edge(3, 5, 2.0);
    return g;
}

TEST(ForwardingState, NextHopsFollowShortestPath) {
    const auto g = diamond();
    const auto state = compute_forwarding(g, {5});
    EXPECT_EQ(state.next_hop(4, 5), 0);
    EXPECT_EQ(state.next_hop(0, 5), 1);
    EXPECT_EQ(state.next_hop(1, 5), 5);
}

TEST(ForwardingState, UnknownDestinationReturnsMinusOne) {
    const auto g = diamond();
    const auto state = compute_forwarding(g, {5});
    EXPECT_EQ(state.next_hop(4, 4), -1);
    EXPECT_EQ(state.distance_km(0, 4), kInfDistance);
}

TEST(ForwardingState, DistanceMatchesTree) {
    const auto g = diamond();
    const auto state = compute_forwarding(g, {5});
    EXPECT_DOUBLE_EQ(state.distance_km(4, 5), 3.0);
    EXPECT_DOUBLE_EQ(state.distance_km(5, 5), 0.0);
}

TEST(ForwardingState, MultipleDestinations) {
    const auto g = diamond();
    const auto state = compute_forwarding(g, {4, 5});
    EXPECT_EQ(state.num_destinations(), 2u);
    EXPECT_EQ(state.next_hop(1, 4), 0);
    EXPECT_EQ(state.next_hop(0, 4), 4);
}

TEST(ForwardingState, LoopFreedom) {
    // Following next hops from any node must reach the destination without
    // revisiting a node (invariant of shortest-path trees).
    const auto g = diamond();
    const auto state = compute_forwarding(g, {5});
    for (int start = 0; start < g.num_nodes(); ++start) {
        if (state.next_hop(start, 5) < 0) continue;
        std::vector<char> seen(static_cast<std::size_t>(g.num_nodes()), 0);
        int node = start;
        int steps = 0;
        while (node != 5) {
            ASSERT_FALSE(seen[static_cast<std::size_t>(node)]) << "loop at " << node;
            seen[static_cast<std::size_t>(node)] = 1;
            node = state.next_hop(node, 5);
            ASSERT_GE(node, 0);
            ASSERT_LE(++steps, g.num_nodes());
        }
    }
}

TEST(ForwardingState, DestinationNextHopIsSelf) {
    const auto g = diamond();
    const auto state = compute_forwarding(g, {5});
    EXPECT_EQ(state.next_hop(5, 5), 5);
}

}  // namespace
}  // namespace hypatia::route
