#include "src/topology/visibility.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "src/topology/cities.hpp"

namespace hypatia::topo {
namespace {

TEST(Visibility, KuiperCoversEquatorialCity) {
    const Constellation k1(shell_by_name("kuiper_k1"), default_epoch());
    const SatelliteMobility mob(k1);
    const auto singapore = city_by_name("Singapore");
    // A 1,156-satellite shell at 51.9 deg inclination always covers the
    // equator.
    for (TimeNs t = 0; t < 100 * kNsPerSec; t += 25 * kNsPerSec) {
        EXPECT_TRUE(has_coverage(singapore, mob, t)) << t;
    }
}

TEST(Visibility, KuiperNeverCoversPole) {
    const Constellation k1(shell_by_name("kuiper_k1"), default_epoch());
    const SatelliteMobility mob(k1);
    const orbit::GroundStation pole(0, "South Pole", {-89.9, 0.0, 0.0});
    // Paper: "Kuiper entirely eschews connectivity near the poles".
    for (TimeNs t = 0; t < 100 * kNsPerSec; t += 25 * kNsPerSec) {
        EXPECT_FALSE(has_coverage(pole, mob, t)) << t;
    }
}

TEST(Visibility, TelesatPolarShellCoversHighLatitudes) {
    const Constellation t1(shell_by_name("telesat_t1"), default_epoch());
    const SatelliteMobility mob(t1);
    const orbit::GroundStation tromso(0, "Tromso", {69.65, 18.96, 0.0});
    int covered = 0;
    const int samples = 10;
    for (int i = 0; i < samples; ++i) {
        if (has_coverage(tromso, mob, i * 20 * kNsPerSec)) ++covered;
    }
    // 98.98 deg inclination covers the poles; with l=10 deg coverage
    // should be continuous or nearly so.
    EXPECT_GE(covered, samples - 1);
}

TEST(Visibility, EntriesRespectConeRange) {
    const Constellation k1(shell_by_name("kuiper_k1"), default_epoch());
    const SatelliteMobility mob(k1);
    const auto tokyo = city_by_name("Tokyo");
    const double max_range = k1.params().max_gsl_range_km();
    for (const auto& e : visible_satellites(tokyo, mob, 0)) {
        EXPECT_LE(e.range_km, max_range + 1e-9);
        EXPECT_GE(e.elevation_deg, 0.0);
        EXPECT_TRUE(e.connectable);
    }
}

TEST(Visibility, ConeRangeFormula) {
    // Kuiper: sqrt((630/tan 30)^2 + 630^2) = 1260 km; the cone is within
    // the horizon. Telesat T1: the l = 10 deg cone reaches past the
    // horizon, so the range clamps to sqrt((Re+h)^2 - Re^2).
    EXPECT_NEAR(shell_by_name("kuiper_k1").max_gsl_range_km(), 1260.0, 1.0);
    const auto& t1 = shell_by_name("telesat_t1");
    const double re = orbit::Wgs72::kEarthRadiusKm;
    EXPECT_NEAR(t1.max_gsl_range_km(),
                std::sqrt((re + 1015.0) * (re + 1015.0) - re * re), 1.0);
}

TEST(Visibility, SortedByRange) {
    const Constellation k1(shell_by_name("kuiper_k1"), default_epoch());
    const SatelliteMobility mob(k1);
    const auto delhi = city_by_name("Delhi");
    const auto vis = visible_satellites(delhi, mob, 0);
    for (std::size_t i = 1; i < vis.size(); ++i) {
        EXPECT_LE(vis[i - 1].range_km, vis[i].range_km);
    }
}

TEST(Visibility, SkyViewSupersetOfConnectable) {
    const Constellation k1(shell_by_name("kuiper_k1"), default_epoch());
    const SatelliteMobility mob(k1);
    const auto paris = city_by_name("Paris");
    const auto sky = sky_view(paris, mob, 0);
    const auto vis = visible_satellites(paris, mob, 0);
    EXPECT_GE(sky.size(), vis.size());
    int connectable = 0;
    for (const auto& e : sky) {
        EXPECT_GE(e.elevation_deg, 0.0);
        if (e.connectable) ++connectable;
    }
    EXPECT_EQ(static_cast<std::size_t>(connectable), vis.size());
}

TEST(Visibility, RangeWithinGeometricBounds) {
    const Constellation k1(shell_by_name("kuiper_k1"), default_epoch());
    const SatelliteMobility mob(k1);
    const auto lagos = city_by_name("Lagos");
    for (const auto& e : visible_satellites(lagos, mob, 0)) {
        EXPECT_GE(e.range_km, 600.0);   // can't be closer than ~the altitude
        EXPECT_LE(e.range_km, 1261.0);  // the Kuiper cone-range cap
    }
}

TEST(Visibility, LowerMinElevationSeesMoreSatellites) {
    // Telesat's l=10 vs a hypothetical l=35 on the same shell.
    ShellParams lo = shell_by_name("telesat_t2");
    ShellParams hi = lo;
    hi.min_elevation_deg = 35.0;
    const Constellation c_lo(lo, default_epoch());
    const Constellation c_hi(hi, default_epoch());
    const SatelliteMobility mob_lo(c_lo), mob_hi(c_hi);
    const auto istanbul = city_by_name("Istanbul");
    const auto n_lo = visible_satellites(istanbul, mob_lo, 0).size();
    const auto n_hi = visible_satellites(istanbul, mob_hi, 0).size();
    EXPECT_GT(n_lo, n_hi);
}

}  // namespace
}  // namespace hypatia::topo
