#include "src/util/cli.hpp"

#include <gtest/gtest.h>

namespace hypatia::util {
namespace {

Cli make_cli(std::vector<std::string> args) {
    static std::vector<std::string> storage;
    storage = std::move(args);
    storage.insert(storage.begin(), "prog");
    std::vector<char*> argv;
    for (auto& s : storage) argv.push_back(s.data());
    return Cli(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, SpaceSeparatedValue) {
    const auto cli = make_cli({"--duration-s", "123"});
    EXPECT_EQ(cli.get_long("duration-s", 0), 123);
}

TEST(Cli, EqualsSeparatedValue) {
    const auto cli = make_cli({"--rate=5.5"});
    EXPECT_DOUBLE_EQ(cli.get_double("rate", 0.0), 5.5);
}

TEST(Cli, BooleanFlag) {
    const auto cli = make_cli({"--paper"});
    EXPECT_TRUE(cli.get_bool("paper"));
    EXPECT_FALSE(cli.get_bool("absent"));
}

TEST(Cli, DefaultsWhenAbsent) {
    const auto cli = make_cli({});
    EXPECT_EQ(cli.get_string("name", "fallback"), "fallback");
    EXPECT_EQ(cli.get_long("n", 7), 7);
}

TEST(Cli, PositionalArguments) {
    const auto cli = make_cli({"first", "--flag", "v", "second"});
    ASSERT_EQ(cli.positional().size(), 2u);
    EXPECT_EQ(cli.positional()[0], "first");
    EXPECT_EQ(cli.positional()[1], "second");
}

TEST(Cli, BooleanFollowedByFlag) {
    const auto cli = make_cli({"--verbose", "--n", "3"});
    EXPECT_TRUE(cli.get_bool("verbose"));
    EXPECT_EQ(cli.get_long("n", 0), 3);
}

}  // namespace
}  // namespace hypatia::util
