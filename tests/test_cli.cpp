#include "src/util/cli.hpp"

#include <gtest/gtest.h>

namespace hypatia::util {
namespace {

Cli make_cli(std::vector<std::string> args) {
    static std::vector<std::string> storage;
    storage = std::move(args);
    storage.insert(storage.begin(), "prog");
    std::vector<char*> argv;
    for (auto& s : storage) argv.push_back(s.data());
    return Cli(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, SpaceSeparatedValue) {
    const auto cli = make_cli({"--duration-s", "123"});
    EXPECT_EQ(cli.get_long("duration-s", 0), 123);
}

TEST(Cli, EqualsSeparatedValue) {
    const auto cli = make_cli({"--rate=5.5"});
    EXPECT_DOUBLE_EQ(cli.get_double("rate", 0.0), 5.5);
}

TEST(Cli, BooleanFlag) {
    const auto cli = make_cli({"--paper"});
    EXPECT_TRUE(cli.get_bool("paper"));
    EXPECT_FALSE(cli.get_bool("absent"));
}

TEST(Cli, DefaultsWhenAbsent) {
    const auto cli = make_cli({});
    EXPECT_EQ(cli.get_string("name", "fallback"), "fallback");
    EXPECT_EQ(cli.get_long("n", 7), 7);
}

TEST(Cli, PositionalArguments) {
    const auto cli = make_cli({"first", "--flag", "v", "second"});
    ASSERT_EQ(cli.positional().size(), 2u);
    EXPECT_EQ(cli.positional()[0], "first");
    EXPECT_EQ(cli.positional()[1], "second");
}

TEST(Cli, BooleanFollowedByFlag) {
    const auto cli = make_cli({"--verbose", "--n", "3"});
    EXPECT_TRUE(cli.get_bool("verbose"));
    EXPECT_EQ(cli.get_long("n", 0), 3);
}

TEST(Cli, HelpTextListsDescribedFlagsInOrder) {
    auto cli = make_cli({});
    cli.describe("duration-s", "simulated seconds");
    cli.describe("paper", "run the full paper-scale configuration");
    const std::string help = cli.help_text("bench_x", "One-line summary.");
    EXPECT_NE(help.find("bench_x"), std::string::npos);
    EXPECT_NE(help.find("One-line summary."), std::string::npos);
    const auto pos_duration = help.find("--duration-s");
    const auto pos_paper = help.find("--paper");
    const auto pos_help = help.find("--help");
    ASSERT_NE(pos_duration, std::string::npos);
    ASSERT_NE(pos_paper, std::string::npos);
    ASSERT_NE(pos_help, std::string::npos);
    EXPECT_LT(pos_duration, pos_paper);  // registration order
    EXPECT_LT(pos_paper, pos_help);      // --help always listed last
    EXPECT_NE(help.find("simulated seconds"), std::string::npos);
}

TEST(Cli, HelpRequested) {
    EXPECT_TRUE(make_cli({"--help"}).help_requested());
    EXPECT_FALSE(make_cli({"--verbose"}).help_requested());
}

TEST(Cli, UnknownFlagsAreOnesNeverLookedUp) {
    const auto cli = make_cli({"--known", "1", "--typo-flag", "2"});
    EXPECT_EQ(cli.get_long("known", 0), 1);
    const auto unknown = cli.unknown_flags();
    ASSERT_EQ(unknown.size(), 1u);
    EXPECT_EQ(unknown[0], "typo-flag");
}

TEST(Cli, DescribeMakesFlagKnownWithoutLookup) {
    auto cli = make_cli({"--described", "5"});
    cli.describe("described", "some flag");
    EXPECT_TRUE(cli.unknown_flags().empty());
}

TEST(Cli, HelpIsNeverUnknown) {
    const auto cli = make_cli({"--help"});
    EXPECT_TRUE(cli.unknown_flags().empty());
}

TEST(CliDeathTest, FinishExitsZeroOnHelp) {
    auto cli = make_cli({"--help"});
    cli.describe("n", "a number");
    // Help goes to stdout (EXPECT_EXIT only matches stderr), so assert on
    // the exit code alone.
    EXPECT_EXIT(cli.finish("prog"), ::testing::ExitedWithCode(0), "");
}

TEST(CliDeathTest, FinishExitsTwoOnUnknownFlag) {
    const auto cli = make_cli({"--durations", "10"});
    EXPECT_EXIT(cli.finish("prog"), ::testing::ExitedWithCode(2),
                "unknown flag --durations");
}

TEST(Cli, FinishIsNoOpWhenAllFlagsKnown) {
    const auto cli = make_cli({"--n", "3"});
    EXPECT_EQ(cli.get_long("n", 0), 3);
    cli.finish("prog");  // must not exit
    SUCCEED();
}

}  // namespace
}  // namespace hypatia::util
