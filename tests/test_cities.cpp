#include "src/topology/cities.hpp"

#include <set>

#include <gtest/gtest.h>

namespace hypatia::topo {
namespace {

TEST(Cities, ExactlyOneHundred) { EXPECT_EQ(top100_cities().size(), 100u); }

TEST(Cities, IdsAreRankOrder) {
    const auto cities = top100_cities();
    for (int i = 0; i < 100; ++i) EXPECT_EQ(cities[static_cast<std::size_t>(i)].id(), i);
}

TEST(Cities, NamesUnique) {
    std::set<std::string> names;
    for (const auto& c : top100_cities()) {
        EXPECT_TRUE(names.insert(c.name()).second) << c.name();
    }
}

TEST(Cities, CoordinatesInRange) {
    for (const auto& c : top100_cities()) {
        EXPECT_GE(c.geodetic().latitude_deg, -90.0);
        EXPECT_LE(c.geodetic().latitude_deg, 90.0);
        EXPECT_GE(c.geodetic().longitude_deg, -180.0);
        EXPECT_LE(c.geodetic().longitude_deg, 180.0);
    }
}

TEST(Cities, PaperPairsArePresent) {
    // Every city named in the paper's experiments must exist.
    for (const char* name :
         {"Rio de Janeiro", "Saint Petersburg", "Manila", "Dalian", "Istanbul",
          "Nairobi", "Paris", "Luanda", "Chicago", "Zhengzhou", "Moscow"}) {
        EXPECT_NO_THROW(city_by_name(name)) << name;
    }
}

TEST(Cities, LookupPreservesRankId) {
    const auto sp = city_by_name("Saint Petersburg");
    EXPECT_EQ(sp.id(), city_index("Saint Petersburg"));
    EXPECT_EQ(top100_cities()[static_cast<std::size_t>(sp.id())].name(),
              "Saint Petersburg");
}

TEST(Cities, UnknownCityThrows) {
    EXPECT_THROW(city_by_name("Atlantis"), std::out_of_range);
}

TEST(Cities, SaintPetersburgIsHighLatitude) {
    // The paper's disconnection result hinges on St. Petersburg being near
    // Kuiper's coverage edge (~60 N vs 51.9 deg inclination).
    EXPECT_GT(city_by_name("Saint Petersburg").geodetic().latitude_deg, 59.0);
}

TEST(Cities, EcefOnEllipsoidSurface) {
    for (const auto& c : top100_cities()) {
        const double r = c.ecef().norm();
        EXPECT_GT(r, 6330.0);
        EXPECT_LT(r, 6385.0);
    }
}

}  // namespace
}  // namespace hypatia::topo
