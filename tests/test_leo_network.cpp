#include "src/core/leo_network.hpp"

#include <gtest/gtest.h>

#include "src/orbit/coords.hpp"
#include "src/sim/ping_app.hpp"
#include "src/topology/cities.hpp"

namespace hypatia::core {
namespace {

Scenario small_scenario() {
    // Kuiper K1 with just the endpoints we exercise, to keep tests fast.
    Scenario s;
    s.shell = topo::shell_by_name("kuiper_k1");
    s.ground_stations = {topo::city_by_name("Manila"), topo::city_by_name("Dalian"),
                         topo::city_by_name("Tokyo")};
    return s;
}

TEST(LeoNetwork, NodeLayout) {
    LeoNetwork leo(small_scenario());
    EXPECT_EQ(leo.num_satellites(), 34 * 34);
    EXPECT_EQ(leo.num_ground_stations(), 3);
    EXPECT_EQ(leo.gs_node(0), 34 * 34);
    EXPECT_EQ(leo.network().num_nodes(), 34 * 34 + 3);
}

TEST(LeoNetwork, DeviceCounts) {
    LeoNetwork leo(small_scenario());
    // 2 devices per ISL (2 * 2 * 1156 directed) + 1 GSL per node.
    const std::size_t expected =
        2 * leo.isls().size() + static_cast<std::size_t>(leo.network().num_nodes());
    EXPECT_EQ(leo.network().devices().size(), expected);
}

TEST(LeoNetwork, ForwardingInstalledOnRun) {
    LeoNetwork leo(small_scenario());
    leo.add_destination(1);
    int updates = 0;
    leo.on_fstate_update = [&](TimeNs) { ++updates; };
    leo.run(1 * kNsPerSec);
    EXPECT_EQ(updates, 11);  // t = 0, 100ms, ..., 1000ms
    EXPECT_FALSE(leo.current_path(0, 1).empty());
}

TEST(LeoNetwork, PathEndpointsAreGsNodes) {
    LeoNetwork leo(small_scenario());
    leo.add_destination(1);
    leo.run(200 * kNsPerMs);
    const auto path = leo.current_path(0, 1);
    ASSERT_GE(path.size(), 3u);
    EXPECT_EQ(path.front(), leo.gs_node(0));
    EXPECT_EQ(path.back(), leo.gs_node(1));
    for (std::size_t i = 1; i + 1 < path.size(); ++i) {
        EXPECT_LT(path[i], leo.num_satellites());
    }
}

TEST(LeoNetwork, PingRttMatchesComputedRtt) {
    // The paper's Fig 3 validation: packet-level ping RTTs overlap the
    // graph-computed RTTs.
    LeoNetwork leo(small_scenario());
    leo.add_destination(0);
    leo.add_destination(1);

    sim::PingApp::Config ping_cfg;
    ping_cfg.flow_id = 77;
    ping_cfg.src_node = leo.gs_node(0);
    ping_cfg.dst_node = leo.gs_node(1);
    ping_cfg.interval = 100 * kNsPerMs;
    ping_cfg.stop = 5 * kNsPerSec;
    sim::PingApp ping(leo.network(), ping_cfg);

    std::vector<double> computed_rtts_ms;
    leo.on_fstate_update = [&](TimeNs) {
        const double d = leo.current_distance_km(0, 1);
        computed_rtts_ms.push_back(2.0 * d / orbit::kSpeedOfLightKmPerS * 1e3);
    };
    leo.run(6 * kNsPerSec);

    ASSERT_GT(ping.replies(), 40u);
    double computed_min = 1e18, computed_max = 0.0;
    for (double r : computed_rtts_ms) {
        computed_min = std::min(computed_min, r);
        computed_max = std::max(computed_max, r);
    }
    for (const auto& s : ping.samples()) {
        if (!s.replied) continue;
        const double rtt_ms = ns_to_ms(s.rtt);
        // Ping RTT = computed propagation RTT + tiny serialization (64 B
        // over up to ~12 hops at 10 Mbit/s < 1.3 ms) and the path may
        // change between fstate samples; allow a 2 ms envelope.
        EXPECT_GT(rtt_ms, computed_min - 0.5);
        EXPECT_LT(rtt_ms, computed_max + 2.0);
    }
}

TEST(LeoNetwork, LinkDelaysVaryWithSatelliteMotion) {
    LeoNetwork leo(small_scenario());
    leo.add_destination(0);  // reply path
    leo.add_destination(1);
    sim::PingApp::Config ping_cfg;
    ping_cfg.flow_id = 7;
    ping_cfg.src_node = leo.gs_node(0);
    ping_cfg.dst_node = leo.gs_node(1);
    ping_cfg.interval = 500 * kNsPerMs;
    ping_cfg.stop = 60 * kNsPerSec;
    sim::PingApp ping(leo.network(), ping_cfg);
    leo.run(61 * kNsPerSec);
    TimeNs min_rtt = std::numeric_limits<TimeNs>::max(), max_rtt = 0;
    for (const auto& s : ping.samples()) {
        if (!s.replied) continue;
        min_rtt = std::min(min_rtt, s.rtt);
        max_rtt = std::max(max_rtt, s.rtt);
    }
    // Over a minute, Manila-Dalian RTT must visibly drift (satellites
    // move ~450 km along track).
    EXPECT_GT(ns_to_ms(max_rtt) - ns_to_ms(min_rtt), 0.1);
}

TEST(LeoNetwork, StartOffsetShiftsOrbitalGeometry) {
    Scenario a = small_scenario();
    Scenario b = small_scenario();
    b.start_offset = 600 * kNsPerSec;
    LeoNetwork la(a), lb(b);
    la.add_destination(1);
    lb.add_destination(1);
    la.run(100 * kNsPerMs);
    lb.run(100 * kNsPerMs);
    // Ten minutes of orbital motion must change the Manila-Dalian path
    // distance.
    EXPECT_NE(la.current_distance_km(0, 1), lb.current_distance_km(0, 1));
}

TEST(LeoNetwork, BentPipeScenarioHasNoIslDevices) {
    Scenario s = small_scenario();
    s.isl_pattern = topo::IslPattern::kNone;
    LeoNetwork leo(s);
    for (const auto& dev : leo.network().devices()) {
        EXPECT_TRUE(dev->is_gsl());
    }
}

}  // namespace
}  // namespace hypatia::core
