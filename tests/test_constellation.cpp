#include "src/topology/constellation.hpp"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace hypatia::topo {
namespace {

TEST(Table1, AllTenShellsPresent) {
    const auto& shells = table1_shells();
    ASSERT_EQ(shells.size(), 10u);
    int starlink_total = 0, kuiper_total = 0, telesat_total = 0;
    for (const auto& s : shells) {
        if (s.name.rfind("starlink", 0) == 0) starlink_total += s.num_satellites();
        if (s.name.rfind("kuiper", 0) == 0) kuiper_total += s.num_satellites();
        if (s.name.rfind("telesat", 0) == 0) telesat_total += s.num_satellites();
    }
    // Paper: Starlink phase 1 = 4,409 sats; Kuiper = 3,236; Telesat = 1,671.
    EXPECT_EQ(starlink_total, 4409);
    EXPECT_EQ(kuiper_total, 3236);
    EXPECT_EQ(telesat_total, 1671);
}

TEST(Table1, FirstShellParametersMatchPaper) {
    const auto& s1 = shell_by_name("starlink_s1");
    EXPECT_EQ(s1.num_orbits, 72);
    EXPECT_EQ(s1.sats_per_orbit, 22);
    EXPECT_DOUBLE_EQ(s1.altitude_km, 550.0);
    EXPECT_DOUBLE_EQ(s1.inclination_deg, 53.0);
    EXPECT_DOUBLE_EQ(s1.min_elevation_deg, 25.0);

    const auto& k1 = shell_by_name("kuiper_k1");
    EXPECT_EQ(k1.num_orbits, 34);
    EXPECT_EQ(k1.sats_per_orbit, 34);
    EXPECT_DOUBLE_EQ(k1.altitude_km, 630.0);
    EXPECT_DOUBLE_EQ(k1.inclination_deg, 51.9);
    EXPECT_DOUBLE_EQ(k1.min_elevation_deg, 30.0);

    const auto& t1 = shell_by_name("telesat_t1");
    EXPECT_EQ(t1.num_orbits, 27);
    EXPECT_EQ(t1.sats_per_orbit, 13);
    EXPECT_DOUBLE_EQ(t1.altitude_km, 1015.0);
    EXPECT_DOUBLE_EQ(t1.inclination_deg, 98.98);
    EXPECT_DOUBLE_EQ(t1.min_elevation_deg, 10.0);
}

TEST(Table1, UnknownShellThrows) {
    EXPECT_THROW(shell_by_name("oneweb"), std::out_of_range);
}

TEST(Constellation, BuildsAllSatellites) {
    const Constellation c(shell_by_name("telesat_t1"), default_epoch());
    EXPECT_EQ(c.num_satellites(), 27 * 13);
}

TEST(Constellation, GridIdsAreDense) {
    const Constellation c(shell_by_name("telesat_t1"), default_epoch());
    std::set<int> ids;
    for (int o = 0; o < 27; ++o) {
        for (int s = 0; s < 13; ++s) ids.insert(c.sat_id(o, s));
    }
    EXPECT_EQ(ids.size(), static_cast<std::size_t>(c.num_satellites()));
    EXPECT_EQ(*ids.begin(), 0);
    EXPECT_EQ(*ids.rbegin(), c.num_satellites() - 1);
}

TEST(Constellation, RaansSpreadUniformly) {
    const Constellation c(shell_by_name("telesat_t1"), default_epoch());
    for (int o = 0; o < 27; ++o) {
        const auto& sat = c.satellite(c.sat_id(o, 0));
        EXPECT_NEAR(sat.kepler.raan_deg, o * 360.0 / 27.0, 1e-9);
    }
}

TEST(Constellation, MeanAnomaliesUniformWithinOrbit) {
    const Constellation c(shell_by_name("telesat_t1"), default_epoch());
    for (int s = 0; s < 13; ++s) {
        const auto& sat = c.satellite(c.sat_id(0, s));
        EXPECT_NEAR(sat.kepler.mean_anomaly_deg, s * 360.0 / 13.0, 1e-9);
    }
}

TEST(Constellation, PhasingStaggersAdjacentPlanes) {
    ShellParams p{"mini", 550.0, 4, 8, 53.0, 25.0, 0.5};
    const Constellation c(p, default_epoch());
    // Odd planes are offset by half an in-orbit slot (checkerboard).
    const double expected_offset = 0.5 * 360.0 / 8;
    const double ma0 = c.satellite(c.sat_id(0, 0)).kepler.mean_anomaly_deg;
    const double ma1 = c.satellite(c.sat_id(1, 0)).kepler.mean_anomaly_deg;
    EXPECT_NEAR(ma1 - ma0, expected_offset, 1e-9);
}

TEST(Constellation, TlesGeneratedPerSatellite) {
    ShellParams p{"mini", 550.0, 3, 4, 53.0, 25.0, 1.0};
    const Constellation c(p, default_epoch());
    for (const auto& sat : c.satellites()) {
        EXPECT_EQ(sat.tle.line1().size(), 69u);
        EXPECT_EQ(sat.tle.satellite_number, sat.id + 1);
    }
}

TEST(Constellation, RejectsDegenerateParameters) {
    ShellParams p{"bad", 550.0, 0, 10, 53.0, 25.0, 1.0};
    EXPECT_THROW(Constellation(p, default_epoch()), std::invalid_argument);
}

TEST(Constellation, SatellitesStartAtNominalAltitude) {
    ShellParams p{"mini", 630.0, 3, 5, 51.9, 30.0, 1.0};
    const Constellation c(p, default_epoch());
    for (const auto& sat : c.satellites()) {
        const auto sv = sat.sgp4->propagate_minutes(0.0);
        EXPECT_NEAR(sv.position_km.norm() - orbit::Wgs72::kEarthRadiusKm, 630.0, 15.0);
    }
}

}  // namespace
}  // namespace hypatia::topo
