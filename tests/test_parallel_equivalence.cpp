// The thread-equivalence suite: the determinism contract of the
// parallel compute layer (DESIGN.md "Threading model") is that every
// parallelized computation — forwarding state, path analysis, flowsim
// completion times, mobility cache warming — produces *byte-identical*
// output at any thread count. Each test here serializes the full result
// at HYPATIA_THREADS equivalents of 1, 2 and 8 lanes and asserts string
// equality, so a scheduling-order regression fails loudly. Plus unit
// tests for the ThreadPool primitive itself.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "src/flowsim/engine.hpp"
#include "src/flowsim/traffic.hpp"
#include "src/routing/forwarding.hpp"
#include "src/routing/graph.hpp"
#include "src/routing/path_analysis.hpp"
#include "src/routing/snapshot_refresh.hpp"
#include "src/topology/cities.hpp"
#include "src/topology/constellation.hpp"
#include "src/topology/isl.hpp"
#include "src/topology/mobility.hpp"
#include "src/util/thread_pool.hpp"

namespace hypatia {
namespace {

using util::ThreadPool;

// The three lane counts the acceptance criteria pin: exact-serial, the
// smallest parallel case, and an oversubscribed one.
constexpr std::size_t kLaneCounts[] = {1, 2, 8};

// Runs `fn` once per lane count and returns the serialized outputs.
template <typename Fn>
std::vector<std::string> outputs_at_lane_counts(Fn&& fn) {
    std::vector<std::string> outputs;
    for (const std::size_t lanes : kLaneCounts) {
        ThreadPool::set_global_threads(lanes);
        outputs.push_back(fn());
    }
    ThreadPool::set_global_threads(0);  // back to the environment default
    return outputs;
}

void expect_all_equal(const std::vector<std::string>& outputs) {
    ASSERT_EQ(outputs.size(), 3u);
    EXPECT_FALSE(outputs[0].empty());
    EXPECT_EQ(outputs[0], outputs[1]) << "1-lane vs 2-lane output differs";
    EXPECT_EQ(outputs[0], outputs[2]) << "1-lane vs 8-lane output differs";
}

std::string fmt(double v) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

// --- ThreadPool primitive --------------------------------------------------

TEST(ThreadPool, DecideNumThreadsPolicy) {
    EXPECT_EQ(ThreadPool::decide_num_threads("4"), 4u);
    EXPECT_EQ(ThreadPool::decide_num_threads("1"), 1u);
    const std::size_t hw = ThreadPool::decide_num_threads(nullptr);
    EXPECT_GE(hw, 1u);
    // Garbage, zero and negative values fall back to the hardware default.
    EXPECT_EQ(ThreadPool::decide_num_threads("0"), hw);
    EXPECT_EQ(ThreadPool::decide_num_threads("-3"), hw);
    EXPECT_EQ(ThreadPool::decide_num_threads("many"), hw);
    EXPECT_EQ(ThreadPool::decide_num_threads("8x"), hw);
    EXPECT_EQ(ThreadPool::decide_num_threads(""), hw);
}

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
    ThreadPool pool(8);
    EXPECT_EQ(pool.num_threads(), 8u);
    constexpr std::size_t kN = 10'000;
    std::vector<std::atomic<int>> hits(kN);
    pool.parallel_for(kN, 7, [&](std::size_t begin, std::size_t end) {
        ASSERT_LT(begin, end);
        ASSERT_LE(end, kN);
        for (std::size_t i = begin; i < end; ++i) {
            hits[i].fetch_add(1, std::memory_order_relaxed);
        }
    });
    for (std::size_t i = 0; i < kN; ++i) {
        ASSERT_EQ(hits[i].load(), 1) << "index " << i;
    }
}

TEST(ThreadPool, SingleLaneRunsInlineOnCaller) {
    ThreadPool pool(1);
    EXPECT_EQ(pool.num_threads(), 1u);
    const auto caller = std::this_thread::get_id();
    std::set<std::thread::id> seen;
    pool.parallel_for(100, 8, [&](std::size_t, std::size_t) {
        seen.insert(std::this_thread::get_id());  // serial: no race
    });
    ASSERT_EQ(seen.size(), 1u);
    EXPECT_EQ(*seen.begin(), caller);
}

TEST(ThreadPool, PropagatesFirstException) {
    ThreadPool pool(4);
    EXPECT_THROW(
        pool.parallel_for(1000, 16,
                          [&](std::size_t begin, std::size_t) {
                              if (begin >= 496) {
                                  throw std::runtime_error("chunk failed");
                              }
                          }),
        std::runtime_error);
    // The pool survives an exception and accepts new work.
    std::atomic<std::size_t> count{0};
    pool.parallel_for(100, 10, [&](std::size_t begin, std::size_t end) {
        count.fetch_add(end - begin, std::memory_order_relaxed);
    });
    EXPECT_EQ(count.load(), 100u);
}

TEST(ThreadPool, NestedParallelForRunsInline) {
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(64 * 64);
    pool.parallel_for(64, 1, [&](std::size_t ob, std::size_t oe) {
        for (std::size_t outer = ob; outer < oe; ++outer) {
            EXPECT_TRUE(ThreadPool::in_worker());
            // A nested call must not deadlock on the single job slot —
            // it runs inline on this lane.
            pool.parallel_for(64, 8, [&](std::size_t ib, std::size_t ie) {
                for (std::size_t inner = ib; inner < ie; ++inner) {
                    hits[outer * 64 + inner].fetch_add(1,
                                                       std::memory_order_relaxed);
                }
            });
        }
    });
    for (const auto& h : hits) ASSERT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelMapPreservesIndexOrder) {
    ThreadPool::set_global_threads(8);
    const auto squares = util::parallel_map<std::size_t>(
        1000, 3, [](std::size_t i) { return i * i; });
    ASSERT_EQ(squares.size(), 1000u);
    for (std::size_t i = 0; i < squares.size(); ++i) {
        ASSERT_EQ(squares[i], i * i);
    }
    ThreadPool::set_global_threads(0);
}

TEST(ThreadPool, OrderedReduceFoldsInAscendingIndexOrder) {
    ThreadPool::set_global_threads(8);
    std::vector<std::size_t> fold_order;
    util::ordered_reduce<std::size_t>(
        500, 4, [](std::size_t i) { return i; },
        [&](std::size_t i, std::size_t v) {
            EXPECT_EQ(i, v);
            fold_order.push_back(i);  // fold runs on the caller: no race
        });
    ASSERT_EQ(fold_order.size(), 500u);
    for (std::size_t i = 0; i < fold_order.size(); ++i) {
        ASSERT_EQ(fold_order[i], i);
    }
    ThreadPool::set_global_threads(0);
}

// --- Routing equivalence ---------------------------------------------------

struct Substrate {
    topo::Constellation constellation;
    topo::SatelliteMobility mobility;
    std::vector<topo::Isl> isls;
    std::vector<orbit::GroundStation> gses;

    Substrate()
        : constellation(topo::shell_by_name("kuiper_k1"), topo::default_epoch()),
          mobility(constellation),
          isls(topo::build_isls(constellation, topo::IslPattern::kPlusGrid)),
          gses(topo::top100_cities()) {
        gses.erase(gses.begin() + 12, gses.end());  // a dozen GSes suffice
    }
};

TEST(ParallelEquivalence, ForwardingStateCsvIsByteIdentical) {
    const auto outputs = outputs_at_lane_counts([] {
        // A fresh substrate per lane count: the mobility cache starts
        // cold each time, so warm_cache really runs at this lane count.
        Substrate s;
        std::string dump;
        for (const TimeNs t : {TimeNs{0}, 30 * kNsPerSec}) {
            const route::Graph g =
                route::build_snapshot(s.mobility, s.isls, s.gses, t);
            std::vector<int> dests;
            for (std::size_t gs = 0; gs < s.gses.size(); ++gs) {
                dests.push_back(g.gs_node(static_cast<int>(gs)));
            }
            dump += route::compute_forwarding(g, dests).dump_csv();
        }
        return dump;
    });
    expect_all_equal(outputs);
}

TEST(ParallelEquivalence, PathAnalysisCsvIsByteIdentical) {
    const auto outputs = outputs_at_lane_counts([] {
        Substrate s;
        const std::vector<route::GsPair> pairs = {{0, 5}, {1, 5}, {2, 7}, {3, 9}};
        route::AnalysisOptions opts;
        opts.t_start = 0;
        opts.t_end = 5 * kNsPerSec;
        opts.step = kNsPerSec;
        std::string dump = "t_ns,pair,rtt_s,path\n";
        opts.per_step_observer = [&](TimeNs t, int pair, double rtt_s,
                                     const std::vector<int>& path) {
            dump += std::to_string(t) + "," + std::to_string(pair) + "," +
                    fmt(rtt_s) + ",";
            for (const int node : path) dump += std::to_string(node) + " ";
            dump += "\n";
        };
        const auto result =
            route::analyze_pairs(s.mobility, s.isls, s.gses, pairs, opts);
        dump += "pair,min_rtt,max_rtt,changes,min_hops,max_hops,unreachable\n";
        for (std::size_t pi = 0; pi < result.pair_stats.size(); ++pi) {
            const auto& st = result.pair_stats[pi];
            dump += std::to_string(pi) + "," + fmt(st.min_rtt_s) + "," +
                    fmt(st.max_rtt_s) + "," + std::to_string(st.path_changes) +
                    "," + std::to_string(st.min_hops) + "," +
                    std::to_string(st.max_hops) + "," +
                    std::to_string(st.unreachable_steps) + "\n";
        }
        for (const int c : result.path_changes_per_step) {
            dump += std::to_string(c) + ",";
        }
        return dump;
    });
    expect_all_equal(outputs);
}

TEST(ParallelEquivalence, MobilityWarmCacheMatchesExactPropagation) {
    const auto outputs = outputs_at_lane_counts([] {
        Substrate s;
        const TimeNs t = 17 * kNsPerSec;
        s.mobility.warm_cache(t);
        std::string dump;
        for (int sat = 0; sat < s.mobility.num_satellites(); sat += 97) {
            const Vec3& p = s.mobility.position_ecef(sat, t);
            dump += fmt(p.x) + "," + fmt(p.y) + "," + fmt(p.z) + "\n";
        }
        return dump;
    });
    expect_all_equal(outputs);
}

// --- Refresh-vs-rebuild equivalence ----------------------------------------

TEST(ParallelEquivalence, SnapshotRefreshMatchesRebuildOverMultiEpochRun) {
    // The zero-rebuild pipeline's core guarantee: the in-place refresh
    // path emits the exact bytes of a from-scratch rebuild at every
    // epoch of a 12 x 100 ms Starlink S1 run, at any thread count.
    const auto outputs = outputs_at_lane_counts([] {
        topo::Constellation constellation(topo::shell_by_name("starlink_s1"),
                                          topo::default_epoch());
        topo::SatelliteMobility mobility(constellation);
        const auto isls =
            topo::build_isls(constellation, topo::IslPattern::kPlusGrid);
        auto gses = topo::top100_cities();
        gses.erase(gses.begin() + 16, gses.end());

        route::SnapshotRefresher refresher(mobility, isls, gses);
        std::vector<int> dests;
        for (std::size_t gs = 0; gs < gses.size(); ++gs) {
            dests.push_back(refresher.graph().gs_node(static_cast<int>(gs)));
        }
        route::ForwardingState refreshed;  // recycled across epochs
        std::string refresh_dump;
        std::string rebuild_dump;
        for (int epoch = 0; epoch < 12; ++epoch) {
            const TimeNs t = epoch * 100 * kNsPerMs;
            route::compute_forwarding_into(refresher.refresh(t), dests, refreshed);
            refresh_dump += refreshed.dump_csv();
            const route::Graph g = route::build_snapshot(mobility, isls, gses, t);
            rebuild_dump += route::compute_forwarding(g, dests).dump_csv();
        }
        EXPECT_EQ(refresh_dump, rebuild_dump)
            << "refresh pipeline diverged from rebuild pipeline";
        return refresh_dump;
    });
    expect_all_equal(outputs);
}

// --- Flowsim equivalence ---------------------------------------------------

TEST(ParallelEquivalence, FlowsimCompletionTimesAreByteIdentical) {
    const auto outputs = outputs_at_lane_counts([] {
        core::Scenario scenario;
        scenario.shell = topo::shell_by_name("kuiper_k1");
        scenario.ground_stations = {
            topo::city_by_name("Manila"), topo::city_by_name("Dalian"),
            topo::city_by_name("Tokyo"), topo::city_by_name("Seoul")};
        flowsim::PoissonTrafficConfig cfg;
        cfg.num_gs = 4;
        cfg.arrivals_per_s = 25.0;
        cfg.mean_size_bits = 4e6;
        cfg.window = 3 * kNsPerSec;
        cfg.seed = 5;
        flowsim::EngineOptions opts;
        opts.epoch = kNsPerSec;
        opts.duration = 6 * kNsPerSec;
        opts.resolve_on_completion = true;
        flowsim::Engine engine(scenario, flowsim::poisson_traffic(cfg), opts);
        const auto summary = engine.run();
        std::string dump = "flow,completion_ns,bits_sent,last_rate_bps\n";
        for (std::size_t f = 0; f < summary.flows.size(); ++f) {
            const auto& o = summary.flows[f];
            dump += std::to_string(f) + "," + std::to_string(o.completion) + "," +
                    fmt(o.bits_sent) + "," + fmt(o.last_rate_bps) + "\n";
        }
        dump += "epoch,active,sum_rate_bps\n";
        for (const auto& e : summary.epochs) {
            dump += std::to_string(e.t) + "," + std::to_string(e.active) + "," +
                    fmt(e.sum_rate_bps) + "\n";
        }
        return dump;
    });
    expect_all_equal(outputs);
}

}  // namespace
}  // namespace hypatia
