#include "src/orbit/time.hpp"

#include <cmath>

#include <gtest/gtest.h>

namespace hypatia::orbit {
namespace {

TEST(JulianDateFromUtc, KnownEpochs) {
    // J2000: 2000-01-01 12:00 UTC = JD 2451545.0.
    EXPECT_NEAR(julian_date_from_utc(2000, 1, 1, 12, 0, 0.0).total(), 2451545.0, 1e-9);
    // 2000-01-01 00:00 UTC = JD 2451544.5.
    EXPECT_NEAR(julian_date_from_utc(2000, 1, 1, 0, 0, 0.0).total(), 2451544.5, 1e-9);
    // Unix epoch 1970-01-01 00:00 UTC = JD 2440587.5.
    EXPECT_NEAR(julian_date_from_utc(1970, 1, 1, 0, 0, 0.0).total(), 2440587.5, 1e-9);
    // Vallado example: 1996-10-26 14:20:00 UTC = JD 2450383.09722222.
    EXPECT_NEAR(julian_date_from_utc(1996, 10, 26, 14, 20, 0.0).total(),
                2450383.09722222, 1e-7);
}

TEST(JulianDate, PlusSecondsRoundTrips) {
    const auto jd = julian_date_from_utc(2000, 1, 1, 0, 0, 0.0);
    const auto later = jd.plus_seconds(86400.0 * 2.5);
    EXPECT_NEAR(later.seconds_since(jd), 86400.0 * 2.5, 1e-6);
}

TEST(JulianDate, FractionStaysNormalized) {
    auto jd = julian_date_from_utc(2020, 6, 15, 23, 59, 59.0);
    for (int i = 0; i < 1000; ++i) jd = jd.plus_seconds(3600.0);
    EXPECT_GE(jd.frac, 0.0);
    EXPECT_LT(jd.frac, 1.0);
}

TEST(JulianDate, NegativeSecondsSupported) {
    const auto jd = julian_date_from_utc(2000, 1, 2, 0, 0, 0.0);
    const auto earlier = jd.plus_seconds(-86400.0);
    EXPECT_NEAR(earlier.total(), julian_date_from_utc(2000, 1, 1, 0, 0, 0.0).total(),
                1e-9);
}

TEST(Gmst, KnownValue) {
    // Vallado Example 3-5: 1992-08-20 12:14 UT1 -> GMST = 152.578787886 deg.
    const auto jd = julian_date_from_utc(1992, 8, 20, 12, 14, 0.0);
    const double gmst_deg = gmst_radians(jd) * 180.0 / M_PI;
    EXPECT_NEAR(gmst_deg, 152.578787886, 1e-6);
}

TEST(Gmst, AlwaysInRange) {
    for (int h = 0; h < 48; ++h) {
        const auto jd = julian_date_from_utc(2000, 1, 1, 0, 0, 0.0).plus_seconds(h * 3600.0);
        const double g = gmst_radians(jd);
        EXPECT_GE(g, 0.0);
        EXPECT_LT(g, 2.0 * M_PI);
    }
}

TEST(Gmst, AdvancesBySiderealRate) {
    // Earth rotates ~360.9856 deg per solar day in sidereal terms.
    const auto jd0 = julian_date_from_utc(2000, 1, 1, 0, 0, 0.0);
    const auto jd1 = jd0.plus_seconds(86400.0);
    double delta = gmst_radians(jd1) - gmst_radians(jd0);
    if (delta < 0.0) delta += 2.0 * M_PI;
    EXPECT_NEAR(delta * 180.0 / M_PI, 0.9856, 2e-3);
}

TEST(DaysSince1949, Epoch2000) {
    // 2000-01-01 00:00 minus 1949-12-31 00:00 = 18263 days.
    const auto jd = julian_date_from_utc(2000, 1, 1, 0, 0, 0.0);
    EXPECT_NEAR(days_since_1949_dec_31(jd), 18263.0, 1e-9);
}

}  // namespace
}  // namespace hypatia::orbit
