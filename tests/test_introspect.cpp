// The live introspection endpoint: request routing (Prometheus
// /metrics, /manifest, /timeline with entity filter and CSV format,
// /healthz, 404s), and the acceptance contract — the TCP server answers
// valid Prometheus text over a real socket while a flowsim run is in
// flight on another thread.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "src/flowsim/engine.hpp"
#include "src/flowsim/traffic.hpp"
#include "src/obs/introspect.hpp"
#include "src/obs/json.hpp"
#include "src/obs/observability.hpp"
#include "src/obs/recorder.hpp"
#include "src/topology/cities.hpp"
#include "src/topology/constellation.hpp"

namespace hypatia::obs {
namespace {

using Response = IntrospectionServer::Response;

TEST(Introspect, HealthzIsOk) {
    const Response r = IntrospectionServer::handle("/healthz");
    EXPECT_EQ(r.status, 200);
    EXPECT_EQ(r.body, "ok\n");
}

TEST(Introspect, UnknownPathIs404) {
    const Response r = IntrospectionServer::handle("/nope");
    EXPECT_EQ(r.status, 404);
    EXPECT_NE(r.body.find("/metrics"), std::string::npos);
}

TEST(Introspect, MetricsRenderPrometheusText) {
    metrics().counter("introspect_test.requests").inc(7);
    metrics().gauge("introspect_test.depth").set(2.5);
    auto& hist = metrics().histogram("introspect_test.latency");
    for (std::uint64_t v = 1; v <= 100; ++v) hist.record(v);

    const Response r = IntrospectionServer::handle("/metrics");
    EXPECT_EQ(r.status, 200);
    EXPECT_NE(r.content_type.find("version=0.0.4"), std::string::npos);
    // Dotted registry names are sanitized into the Prometheus charset.
    EXPECT_NE(
        r.body.find(
            "# TYPE hypatia_introspect_test_requests counter\n"
            "hypatia_introspect_test_requests 7\n"),
        std::string::npos);
    EXPECT_NE(r.body.find("hypatia_introspect_test_depth 2.5"),
              std::string::npos);
    EXPECT_NE(r.body.find("# TYPE hypatia_introspect_test_latency summary"),
              std::string::npos);
    EXPECT_NE(r.body.find("hypatia_introspect_test_latency{quantile=\"0.5\"}"),
              std::string::npos);
    EXPECT_NE(r.body.find("hypatia_introspect_test_latency_count 100"),
              std::string::npos);
}

TEST(Introspect, ManifestIsValidJson) {
    const Response r = IntrospectionServer::handle("/manifest");
    EXPECT_EQ(r.status, 200);
    EXPECT_EQ(r.content_type, "application/json");
    const json::Value v = json::Value::parse(r.body);
    EXPECT_EQ(v.at("name").as_string(), "live");
}

TEST(Introspect, TimelineFiltersByEntityAndFormats) {
    recorder().reset();
    recorder().set_enabled(true);
    recorder().record(EventKind::kPathChange, 10, 1, 2, 501, 502, 0.02);
    recorder().record(EventKind::kPathChange, 20, 3, 4, 600, 601, 0.03);

    // Unfiltered JSONL: both pairs, one parsable object per line.
    Response all = IntrospectionServer::handle("/timeline");
    EXPECT_EQ(all.status, 200);
    EXPECT_EQ(all.content_type, "application/jsonl");
    EXPECT_NE(all.body.find("pair:1->2"), std::string::npos);
    EXPECT_NE(all.body.find("pair:3->4"), std::string::npos);

    // Entity filter, URL-encoded ('>' is %3E).
    const Response one =
        IntrospectionServer::handle("/timeline?entity=pair:1-%3E2");
    EXPECT_EQ(one.status, 200);
    EXPECT_NE(one.body.find("pair:1->2"), std::string::npos);
    EXPECT_EQ(one.body.find("pair:3->4"), std::string::npos);
    const json::Value line = json::Value::parse(
        one.body.substr(0, one.body.find('\n')));
    EXPECT_EQ(line.at("entity").as_string(), "pair:1->2");
    EXPECT_EQ(line.at("kind").as_string(), "path_change");

    // CSV format carries the documented header.
    const Response csv = IntrospectionServer::handle("/timeline?format=csv");
    EXPECT_EQ(csv.content_type, "text/csv; charset=utf-8");
    EXPECT_NE(csv.body.find("entity,t_ns,kind,cause,a,b,c,d,value,note"),
              std::string::npos);

    // Unknown entity is a 404, not an empty 200.
    const Response missing =
        IntrospectionServer::handle("/timeline?entity=pair:9-%3E9");
    EXPECT_EQ(missing.status, 404);

    // snapshot() semantics: serving the timeline left the rings intact.
    EXPECT_EQ(recorder().buffered(), 2u);
    recorder().reset();
}

// --- Acceptance: live endpoint over a real socket during a run --------------

std::string http_get(std::uint16_t port, const std::string& target) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return "";
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
        ::close(fd);
        return "";
    }
    const std::string request = "GET " + target + " HTTP/1.0\r\n\r\n";
    ::send(fd, request.data(), request.size(), 0);
    std::string response;
    char buf[4096];
    ssize_t n;
    while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
        response.append(buf, static_cast<std::size_t>(n));
    }
    ::close(fd);
    return response;
}

TEST(Introspect, ServesPrometheusOverTcpWhileSimulationRuns) {
    IntrospectionServer server;
    const std::uint16_t port = server.start(0);  // ephemeral
    ASSERT_GT(port, 0);
    EXPECT_TRUE(server.running());

    // A flowsim run on another thread while the endpoint is queried.
    std::thread sim([] {
        core::Scenario scenario;
        scenario.shell = topo::shell_by_name("kuiper_k1");
        scenario.ground_stations = {topo::city_by_name("Manila"),
                                    topo::city_by_name("Dalian"),
                                    topo::city_by_name("Tokyo"),
                                    topo::city_by_name("Seoul")};
        flowsim::PoissonTrafficConfig cfg;
        cfg.num_gs = 4;
        cfg.arrivals_per_s = 20.0;
        cfg.mean_size_bits = 4e6;
        cfg.window = 3 * kNsPerSec;
        cfg.seed = 7;
        flowsim::EngineOptions opts;
        opts.epoch = kNsPerSec;
        opts.duration = 5 * kNsPerSec;
        flowsim::Engine engine(scenario, flowsim::poisson_traffic(cfg), opts);
        engine.run();
    });

    const std::string health = http_get(port, "/healthz");
    EXPECT_NE(health.find("HTTP/1.0 200 OK"), std::string::npos);
    EXPECT_NE(health.find("ok"), std::string::npos);

    bool saw_metrics = false;
    for (int i = 0; i < 5; ++i) {
        const std::string metrics_response = http_get(port, "/metrics");
        if (metrics_response.find("HTTP/1.0 200 OK") != std::string::npos &&
            metrics_response.find("# TYPE hypatia_") != std::string::npos) {
            saw_metrics = true;
            break;
        }
    }
    EXPECT_TRUE(saw_metrics);

    const std::string missing = http_get(port, "/nope");
    EXPECT_NE(missing.find("HTTP/1.0 404 Not Found"), std::string::npos);

    sim.join();

    // After the run the flowsim counters are visible over the wire.
    const std::string after = http_get(port, "/metrics");
    EXPECT_NE(after.find("hypatia_flowsim_"), std::string::npos);

    server.stop();
    EXPECT_FALSE(server.running());
    // A second stop is a harmless no-op; restart binds a fresh port.
    server.stop();
}

}  // namespace
}  // namespace hypatia::obs
