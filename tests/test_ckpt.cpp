// Checkpoint/restore (DESIGN.md §13): codec and file-format round
// trips, corruption fuzzing (every single-bit flip and truncation must
// be rejected, never crash), generation fallback past a corrupt newest
// file, the env-driven policy, metrics snapshot/restore, in-process
// engine and exporter resume equivalence across thread counts and
// snapshot modes, the /checkpoint introspection route and the ordered
// shutdown hooks.
#include "src/ckpt/checkpoint.hpp"

#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/ckpt/codec.hpp"
#include "src/emu/export.hpp"
#include "src/emu/realtime.hpp"
#include "src/emu/schedule.hpp"
#include "src/flowsim/engine.hpp"
#include "src/flowsim/traffic.hpp"
#include "src/obs/introspect.hpp"
#include "src/obs/observability.hpp"
#include "src/topology/cities.hpp"
#include "src/util/thread_pool.hpp"

namespace hypatia {
namespace {

struct ScopedEnv {
    explicit ScopedEnv(const char* name, const char* value) : name_(name) {
        ::setenv(name, value, 1);
    }
    ~ScopedEnv() { ::unsetenv(name_); }
    const char* name_;
};

std::string fresh_dir(const std::string& name) {
    const std::string dir = ::testing::TempDir() + "ckpt_" + name;
    ::mkdir(dir.c_str(), 0755);
    // Clear any leftovers from a previous invocation of this binary.
    for (int g = 0; g < 64; ++g) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%s/ckpt-%010d.hyc", dir.c_str(), g);
        ::unlink(buf);
    }
    return dir;
}

void write_raw(const std::string& path, const std::vector<std::uint8_t>& bytes) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
}

ckpt::Checkpoint sample_checkpoint() {
    ckpt::Checkpoint ck;
    ck.epoch_index = 17;
    ck.sim_time = 3 * kNsPerSec;
    ckpt::Writer a;
    a.u64(0xdeadbeefcafef00dULL);
    a.str("flow table");
    a.vec(std::vector<double>{1.5, -2.25, 1e300});
    ck.add("flowsim.engine", a.take());
    ckpt::Writer b;
    b.i64(-42);
    b.f64(0.125);
    ck.add("obs.metrics", b.take());
    return ck;
}

// ------------------------------------------------------------- codec

TEST(CkptCodec, WriterReaderRoundTrip) {
    ckpt::Writer w;
    w.u8(200);
    w.u32(0x12345678u);
    w.u64(0xfedcba9876543210ULL);
    w.i32(-7);
    w.i64(-(1LL << 40));
    w.f64(3.141592653589793);
    w.str("Hello, checkpoint");
    w.vec(std::vector<std::uint32_t>{1, 2, 3});
    w.vec(std::vector<char>{0, 1, 1, 0});
    const std::vector<std::uint8_t> bytes = w.take();

    ckpt::Reader r(bytes);
    EXPECT_EQ(r.u8(), 200);
    EXPECT_EQ(r.u32(), 0x12345678u);
    EXPECT_EQ(r.u64(), 0xfedcba9876543210ULL);
    EXPECT_EQ(r.i32(), -7);
    EXPECT_EQ(r.i64(), -(1LL << 40));
    EXPECT_DOUBLE_EQ(r.f64(), 3.141592653589793);
    EXPECT_EQ(r.str(), "Hello, checkpoint");
    std::vector<std::uint32_t> v32;
    r.vec(v32);
    EXPECT_EQ(v32, (std::vector<std::uint32_t>{1, 2, 3}));
    std::vector<char> vc;
    r.vec(vc);
    EXPECT_EQ(vc, (std::vector<char>{0, 1, 1, 0}));
    EXPECT_TRUE(r.at_end());
    EXPECT_THROW(r.u8(), ckpt::CorruptError);
}

TEST(CkptCodec, ReaderRejectsOversizedCounts) {
    // A corrupted length prefix must not drive a multi-gigabyte resize.
    ckpt::Writer w;
    w.u64(~std::uint64_t{0});
    const std::vector<std::uint8_t> bytes = w.take();
    ckpt::Reader r(bytes);
    std::vector<double> v;
    EXPECT_THROW(r.vec(v), ckpt::CorruptError);
    ckpt::Reader r2(bytes);
    EXPECT_THROW(r2.str(), ckpt::CorruptError);
}

TEST(CkptCodec, DigestIsOrderAndValueSensitive) {
    ckpt::Digest a, b, c;
    a.mix<std::uint32_t>(1);
    a.mix<std::uint32_t>(2);
    b.mix<std::uint32_t>(2);
    b.mix<std::uint32_t>(1);
    c.mix<std::uint32_t>(1);
    c.mix<std::uint32_t>(2);
    EXPECT_NE(a.value(), b.value());
    EXPECT_EQ(a.value(), c.value());
}

TEST(CkptCodec, Crc32MatchesKnownVector) {
    // IEEE CRC-32 of "123456789" is the classic check value.
    const char* s = "123456789";
    EXPECT_EQ(ckpt::crc32(reinterpret_cast<const std::uint8_t*>(s), 9),
              0xCBF43926u);
}

// ------------------------------------------------------- file format

TEST(CkptFormat, EncodeDecodeRoundTrip) {
    ckpt::Checkpoint ck = sample_checkpoint();
    ck.generation = 5;
    const auto bytes = ckpt::encode(ck);
    const ckpt::Checkpoint back = ckpt::decode(bytes);
    EXPECT_EQ(back.generation, 5u);
    EXPECT_EQ(back.epoch_index, 17u);
    EXPECT_EQ(back.sim_time, 3 * kNsPerSec);
    ASSERT_EQ(back.sections.size(), 2u);
    ASSERT_NE(back.find("flowsim.engine"), nullptr);
    ASSERT_NE(back.find("obs.metrics"), nullptr);
    EXPECT_EQ(back.find("flowsim.engine")->payload,
              ck.find("flowsim.engine")->payload);
    EXPECT_EQ(back.find("nope"), nullptr);

    ckpt::Reader r(back.find("obs.metrics")->payload);
    EXPECT_EQ(r.i64(), -42);
    EXPECT_DOUBLE_EQ(r.f64(), 0.125);
}

TEST(CkptFormat, AtomicWriteLeavesNoTempFile) {
    const std::string dir = fresh_dir("atomic");
    const std::string path = dir + "/ckpt-0000000001.hyc";
    const auto bytes = ckpt::encode(sample_checkpoint());
    ckpt::atomic_write_file(path, bytes);
    EXPECT_TRUE(ckpt::read_checkpoint_file(path).has_value());
    struct stat st;
    EXPECT_NE(::stat((path + ".tmp").c_str(), &st), 0)
        << "temp file left behind after rename";
}

TEST(CkptFormat, EveryBitFlipIsRejected) {
    const std::string dir = fresh_dir("fuzz_flip");
    const std::string path = dir + "/flip.hyc";
    const auto good = ckpt::encode(sample_checkpoint());
    ASSERT_TRUE([&] {
        write_raw(path, good);
        return ckpt::read_checkpoint_file(path).has_value();
    }());

    for (std::size_t byte = 0; byte < good.size(); ++byte) {
        auto bad = good;
        bad[byte] ^= static_cast<std::uint8_t>(1u << (byte % 8));
        write_raw(path, bad);
        std::string error;
        EXPECT_FALSE(ckpt::read_checkpoint_file(path, &error).has_value())
            << "bit flip at byte " << byte << " was accepted";
        EXPECT_FALSE(error.empty());
    }
}

TEST(CkptFormat, EveryTruncationIsRejected) {
    const std::string dir = fresh_dir("fuzz_trunc");
    const std::string path = dir + "/trunc.hyc";
    const auto good = ckpt::encode(sample_checkpoint());
    for (std::size_t len = 0; len < good.size(); ++len) {
        write_raw(path, std::vector<std::uint8_t>(good.begin(),
                                                  good.begin() + len));
        EXPECT_FALSE(ckpt::read_checkpoint_file(path).has_value())
            << "truncation to " << len << " bytes was accepted";
    }
}

TEST(CkptFormat, StaleFormatVersionIsRejected) {
    // Patch the version field *and* re-stamp the file CRC, so the
    // rejection is the version check itself, not a CRC side effect.
    auto bytes = ckpt::encode(sample_checkpoint());
    const std::uint32_t stale = ckpt::kFormatVersion + 1;
    std::memcpy(bytes.data() + 4, &stale, sizeof(stale));
    const std::uint32_t crc = ckpt::crc32(bytes.data(), bytes.size() - 8);
    std::memcpy(bytes.data() + bytes.size() - 8, &crc, sizeof(crc));

    const std::string dir = fresh_dir("fuzz_version");
    const std::string path = dir + "/stale.hyc";
    write_raw(path, bytes);
    std::string error;
    EXPECT_FALSE(ckpt::read_checkpoint_file(path, &error).has_value());
    EXPECT_NE(error.find("version"), std::string::npos) << error;
}

// ----------------------------------------------------------- manager

TEST(CkptManager, PolicyFromEnv) {
    ScopedEnv dir("HYPATIA_CKPT_DIR", "/tmp/ckpt_env_test");
    ScopedEnv interval("HYPATIA_CKPT_INTERVAL_S", "2.5");
    ScopedEnv resume("HYPATIA_CKPT_RESUME", "1");
    ScopedEnv keep("HYPATIA_CKPT_KEEP", "7");
    const ckpt::Policy p = ckpt::Policy::from_env();
    EXPECT_TRUE(p.enabled());
    EXPECT_EQ(p.dir, "/tmp/ckpt_env_test");
    EXPECT_DOUBLE_EQ(p.interval_s, 2.5);
    EXPECT_TRUE(p.resume);
    EXPECT_EQ(p.keep, 7);
    EXPECT_FALSE(ckpt::Policy::disabled().enabled());
}

TEST(CkptManager, WritePruneAndResumeScan) {
    ckpt::Policy policy;
    policy.dir = fresh_dir("manager");
    policy.interval_s = 0.0;
    policy.keep = 2;
    ckpt::Manager manager(policy);

    EXPECT_TRUE(manager.due());  // interval 0 = every epoch
    for (std::uint64_t i = 1; i <= 4; ++i) {
        ckpt::Checkpoint ck = sample_checkpoint();
        ck.epoch_index = i;
        EXPECT_EQ(manager.write(std::move(ck)), i);
    }
    EXPECT_EQ(manager.last_generation(), 4u);

    // keep=2: generations 1 and 2 pruned.
    struct stat st;
    EXPECT_NE(::stat((policy.dir + "/ckpt-0000000001.hyc").c_str(), &st), 0);
    EXPECT_EQ(::stat((policy.dir + "/ckpt-0000000004.hyc").c_str(), &st), 0);

    const auto latest = manager.load_latest();
    ASSERT_TRUE(latest.has_value());
    EXPECT_EQ(latest->generation, 4u);
    EXPECT_EQ(latest->epoch_index, 4u);

    // A later manager on the same directory continues the sequence.
    ckpt::Manager successor(policy);
    EXPECT_EQ(successor.write(sample_checkpoint()), 5u);
}

TEST(CkptManager, CorruptNewestFallsBackToPreviousGeneration) {
    ckpt::Policy policy;
    policy.dir = fresh_dir("fallback");
    policy.interval_s = 0.0;
    ckpt::Manager manager(policy);

    ckpt::Checkpoint first = sample_checkpoint();
    first.epoch_index = 1;
    manager.write(std::move(first));
    ckpt::Checkpoint second = sample_checkpoint();
    second.epoch_index = 2;
    manager.write(std::move(second));

    // Corrupt the newest generation on disk (mid-file bit flip).
    const std::string newest = policy.dir + "/ckpt-0000000002.hyc";
    std::ifstream in(newest, std::ios::binary);
    std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                    std::istreambuf_iterator<char>());
    in.close();
    ASSERT_GT(bytes.size(), 20u);
    bytes[bytes.size() / 2] ^= 0x40;
    write_raw(newest, bytes);

    const std::uint64_t skipped_before =
        obs::metrics().counter("ckpt.corrupt_skipped").value();
    const auto restored = manager.load_latest();
    ASSERT_TRUE(restored.has_value());
    EXPECT_EQ(restored->epoch_index, 1u);
    EXPECT_GT(obs::metrics().counter("ckpt.corrupt_skipped").value(),
              skipped_before);
}

TEST(CkptManager, ArmedImageFlushesOnDemandAndDisarmDrops) {
    ckpt::Policy policy;
    policy.dir = fresh_dir("armed");
    policy.interval_s = 1e9;  // periodic writes never due
    ckpt::Manager manager(policy);
    EXPECT_FALSE(manager.due());

    ckpt::Checkpoint ck = sample_checkpoint();
    ck.epoch_index = 9;
    manager.arm(std::move(ck));
    // The armed image is memory-only until flushed.
    EXPECT_FALSE(manager.load_latest().has_value());
    manager.write_armed_image();
    const auto restored = manager.load_latest();
    ASSERT_TRUE(restored.has_value());
    EXPECT_EQ(restored->epoch_index, 9u);

    // Disarm drops the buffer: a second flush writes nothing new.
    manager.arm(sample_checkpoint());
    manager.disarm();
    const std::uint64_t gen = manager.last_generation();
    manager.write_armed_image();
    EXPECT_EQ(manager.last_generation(), gen);
}

TEST(CkptManager, RequestNowOverridesInterval) {
    ckpt::Policy policy;
    policy.dir = fresh_dir("trigger");
    policy.interval_s = 1e9;
    ckpt::Manager manager(policy);
    EXPECT_FALSE(manager.due());
    manager.request_now();
    EXPECT_TRUE(manager.due());
    manager.write(sample_checkpoint());
    EXPECT_FALSE(manager.due());  // trigger consumed by the write
}

// ----------------------------------------------------------- metrics

TEST(CkptMetrics, HistogramStateRoundTrip) {
    obs::Histogram h;
    h.record(3);
    h.record(70);
    h.record(70000);
    const obs::Histogram::State s = h.state();
    obs::Histogram other;
    other.record(1);  // pre-existing junk the restore must overwrite
    other.restore(s);
    EXPECT_EQ(other.state().count, 3u);
    EXPECT_EQ(other.state().sum, s.sum);
    EXPECT_EQ(other.state().min, 3u);
    EXPECT_EQ(other.state().max, 70000u);
    EXPECT_EQ(other.state().buckets, s.buckets);
}

TEST(CkptMetrics, MetricsSectionRoundTrip) {
    auto& m = obs::metrics();
    m.counter("ckpt_test.counter").reset();
    m.counter("ckpt_test.counter").inc(41);
    m.gauge("ckpt_test.gauge").set(2.75);
    m.histogram("ckpt_test.hist").record(123);
    const std::uint64_t hist_count_before =
        m.histogram("ckpt_test.hist").state().count;

    ckpt::Writer w;
    ckpt::save_metrics_section(w);
    const std::vector<std::uint8_t> payload = w.take();

    m.counter("ckpt_test.counter").inc(1000);
    m.gauge("ckpt_test.gauge").set(-1.0);
    m.histogram("ckpt_test.hist").record(5);

    ckpt::Reader r(payload);
    ckpt::restore_metrics_section(r);
    EXPECT_EQ(m.counter("ckpt_test.counter").value(), 41u);
    EXPECT_DOUBLE_EQ(m.gauge("ckpt_test.gauge").value(), 2.75);
    EXPECT_EQ(m.histogram("ckpt_test.hist").state().count, hist_count_before);
}

// ----------------------------------------------- engine resume equivalence

core::Scenario faulted_scenario() {
    core::Scenario s;
    s.shell = topo::shell_by_name("kuiper_k1");
    s.ground_stations = {topo::city_by_name("Manila"), topo::city_by_name("Dalian"),
                         topo::city_by_name("Tokyo"), topo::city_by_name("Seoul")};
    std::vector<fault::FaultEvent> events;
    events.push_back({fault::FaultKind::kGroundStation, 0, -1, 2 * kNsPerSec,
                      4 * kNsPerSec});
    const fault::FaultSchedule schedule = fault::FaultSchedule::from_events(
        events, s.shell.num_satellites(),
        static_cast<int>(s.ground_stations.size()));
    const std::string csv = ::testing::TempDir() + "ckpt_faults.csv";
    schedule.save_csv(csv);
    s.faults = fault::FaultSpec{std::nullopt, csv};
    return s;
}

flowsim::EngineOptions engine_options() {
    flowsim::EngineOptions opts;
    opts.epoch = 500 * kNsPerMs;
    opts.duration = 6 * kNsPerSec;
    opts.record_link_utilization = true;
    opts.tracked_flows = {0, 2};
    return opts;
}

flowsim::TrafficMatrix engine_matrix() {
    flowsim::PoissonTrafficConfig cfg;
    cfg.num_gs = 4;
    cfg.arrivals_per_s = 4.0;
    cfg.window = 5 * kNsPerSec;
    cfg.seed = 7;
    flowsim::TrafficMatrix m = flowsim::poisson_traffic(cfg);
    m.sort_by_arrival();
    return m;
}

void expect_summaries_equal(const flowsim::RunSummary& a,
                            const flowsim::RunSummary& b) {
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.all_converged, b.all_converged);
    ASSERT_EQ(a.epochs.size(), b.epochs.size());
    for (std::size_t i = 0; i < a.epochs.size(); ++i) {
        EXPECT_EQ(a.epochs[i].t, b.epochs[i].t) << "epoch " << i;
        EXPECT_EQ(a.epochs[i].active, b.epochs[i].active) << "epoch " << i;
        EXPECT_EQ(a.epochs[i].arrivals, b.epochs[i].arrivals) << "epoch " << i;
        EXPECT_EQ(a.epochs[i].completions, b.epochs[i].completions)
            << "epoch " << i;
        EXPECT_EQ(a.epochs[i].unreachable, b.epochs[i].unreachable)
            << "epoch " << i;
        EXPECT_EQ(a.epochs[i].sum_rate_bps, b.epochs[i].sum_rate_bps)
            << "epoch " << i;
        EXPECT_EQ(a.epochs[i].max_link_utilization,
                  b.epochs[i].max_link_utilization)
            << "epoch " << i;
        EXPECT_EQ(a.epochs[i].solver_rounds, b.epochs[i].solver_rounds)
            << "epoch " << i;
        EXPECT_EQ(a.epochs[i].converged, b.epochs[i].converged) << "epoch " << i;
    }
    ASSERT_EQ(a.flows.size(), b.flows.size());
    for (std::size_t i = 0; i < a.flows.size(); ++i) {
        EXPECT_EQ(a.flows[i].completion, b.flows[i].completion) << "flow " << i;
        EXPECT_EQ(a.flows[i].bits_sent, b.flows[i].bits_sent) << "flow " << i;
        EXPECT_EQ(a.flows[i].last_rate_bps, b.flows[i].last_rate_bps)
            << "flow " << i;
        EXPECT_EQ(a.flows[i].unreachable_epochs, b.flows[i].unreachable_epochs)
            << "flow " << i;
    }
    ASSERT_EQ(a.tracked_series.size(), b.tracked_series.size());
    for (std::size_t i = 0; i < a.tracked_series.size(); ++i) {
        EXPECT_EQ(a.tracked_series[i], b.tracked_series[i]) << "series " << i;
    }
}

TEST(CkptEngine, ResumedRunMatchesUninterrupted) {
    const core::Scenario scenario = faulted_scenario();
    const flowsim::TrafficMatrix matrix = engine_matrix();

    struct Config {
        std::size_t threads;
        const char* mode;
    };
    const std::vector<Config> configs = {
        {1, "refresh"}, {2, "refresh"}, {8, "refresh"}, {2, "rebuild"}};
    for (const auto& config : configs) {
        SCOPED_TRACE(std::string(config.mode) + " / " +
                     std::to_string(config.threads) + " threads");
        ScopedEnv mode("HYPATIA_SNAPSHOT_MODE", config.mode);
        util::ThreadPool::set_global_threads(config.threads);

        // Reference: one uninterrupted run, checkpointing off.
        flowsim::EngineOptions ref_opts = engine_options();
        ref_opts.checkpoint = ckpt::Policy::disabled();
        flowsim::Engine reference(scenario, matrix, ref_opts);
        const flowsim::RunSummary want = reference.run();

        // Interrupted: checkpoint every boundary, abort mid-run.
        ckpt::Policy policy;
        policy.dir = fresh_dir(std::string("engine_") + config.mode + "_" +
                               std::to_string(config.threads));
        policy.interval_s = 0.0;
        flowsim::EngineOptions abort_opts = engine_options();
        abort_opts.checkpoint = policy;
        abort_opts.epoch_hook = [](std::size_t bi, TimeNs) { return bi < 6; };
        flowsim::Engine interrupted(scenario, matrix, abort_opts);
        const flowsim::RunSummary partial = interrupted.run();
        ASSERT_LT(partial.epochs.size(), want.epochs.size());

        // Resumed: a fresh engine picks up from the newest generation
        // and must finish byte-identical to the uninterrupted run.
        policy.resume = true;
        flowsim::EngineOptions resume_opts = engine_options();
        resume_opts.checkpoint = policy;
        flowsim::Engine resumed(scenario, matrix, resume_opts);
        const flowsim::RunSummary got = resumed.run();
        expect_summaries_equal(want, got);
    }
    util::ThreadPool::set_global_threads(0);
}

TEST(CkptEngine, DigestMismatchStartsFresh) {
    const core::Scenario scenario = faulted_scenario();
    ckpt::Policy policy;
    policy.dir = fresh_dir("digest_mismatch");
    policy.interval_s = 0.0;

    flowsim::EngineOptions opts = engine_options();
    opts.checkpoint = policy;
    opts.epoch_hook = [](std::size_t bi, TimeNs) { return bi < 4; };
    flowsim::Engine a(scenario, engine_matrix(), opts);
    a.run();

    // A *different* matrix with resume on: the stored digest disagrees,
    // so the run must start from boundary 0 and still complete.
    policy.resume = true;
    flowsim::PoissonTrafficConfig cfg;
    cfg.num_gs = 4;
    cfg.arrivals_per_s = 4.0;
    cfg.window = 5 * kNsPerSec;
    cfg.seed = 99;  // different traffic
    flowsim::TrafficMatrix other = flowsim::poisson_traffic(cfg);
    other.sort_by_arrival();

    const std::uint64_t rejected_before =
        obs::metrics().counter("ckpt.restore_rejected").value();
    flowsim::EngineOptions resume_opts = engine_options();
    resume_opts.checkpoint = policy;
    flowsim::Engine b(scenario, other, resume_opts);
    const flowsim::RunSummary got = b.run();
    EXPECT_GT(obs::metrics().counter("ckpt.restore_rejected").value(),
              rejected_before);

    flowsim::EngineOptions ref_opts = engine_options();
    ref_opts.checkpoint = ckpt::Policy::disabled();
    flowsim::Engine ref(scenario, other, ref_opts);
    expect_summaries_equal(ref.run(), got);
}

// --------------------------------------------- exporter resume equivalence

TEST(CkptEmu, ExporterResumesByteIdentical) {
    const core::Scenario scenario = faulted_scenario();
    emu::ExportOptions eopt;
    eopt.t_end = 6 * kNsPerSec;
    eopt.step = 500 * kNsPerMs;
    const std::vector<route::GsPair> pairs = {{0, 1}, {2, 3}};

    emu::ExportOptions ref_opt = eopt;
    ref_opt.checkpoint = ckpt::Policy::disabled();
    emu::ScheduleExporter reference(scenario, pairs, ref_opt);
    const auto& want = reference.run();

    // Full run with a checkpoint at every step, keeping everything.
    ckpt::Policy policy;
    policy.dir = fresh_dir("exporter");
    policy.interval_s = 0.0;
    policy.keep = 1000;
    emu::ExportOptions ck_opt = eopt;
    ck_opt.checkpoint = policy;
    emu::ScheduleExporter first(scenario, pairs, ck_opt);
    first.run();

    // Simulate dying mid-run: drop every generation past the midpoint,
    // then resume. The survivor covers steps [0, 6).
    for (int g = 7; g <= 64; ++g) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%s/ckpt-%010d.hyc",
                      policy.dir.c_str(), g);
        ::unlink(buf);
    }
    policy.resume = true;
    emu::ExportOptions resume_opt = eopt;
    resume_opt.checkpoint = policy;
    emu::ScheduleExporter resumed(scenario, pairs, resume_opt);
    const auto& got = resumed.run();

    ASSERT_EQ(got.size(), want.size());
    for (std::size_t pi = 0; pi < want.size(); ++pi) {
        EXPECT_EQ(emu::to_csv(got[pi]), emu::to_csv(want[pi])) << "pair " << pi;
        EXPECT_EQ(emu::to_jsonl(got[pi]), emu::to_jsonl(want[pi]))
            << "pair " << pi;
    }
}

TEST(CkptEmu, PacedRunResumesByteIdentical) {
    const core::Scenario scenario = faulted_scenario();
    emu::ExportOptions eopt;
    eopt.t_end = 4 * kNsPerSec;
    eopt.step = 500 * kNsPerMs;
    const std::vector<route::GsPair> pairs = {{0, 1}};

    emu::ExportOptions ref_opt = eopt;
    ref_opt.checkpoint = ckpt::Policy::disabled();
    emu::ScheduleExporter reference(scenario, pairs, ref_opt);
    const auto& want = reference.run();

    ckpt::Policy policy;
    policy.dir = fresh_dir("paced");
    policy.interval_s = 0.0;
    policy.keep = 1000;
    emu::PacerOptions popt;
    popt.speed = 0.0;  // free-run
    popt.serve_schedule = false;
    popt.checkpoint = policy;
    emu::RealtimePacer first(scenario, pairs, eopt, popt);
    first.run();

    for (int g = 5; g <= 64; ++g) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%s/ckpt-%010d.hyc",
                      policy.dir.c_str(), g);
        ::unlink(buf);
    }
    policy.resume = true;
    emu::PacerOptions resume_popt = popt;
    resume_popt.checkpoint = policy;
    emu::RealtimePacer resumed(scenario, pairs, eopt, resume_popt);
    const emu::PacerReport report = resumed.run();

    ASSERT_EQ(report.schedules.size(), want.size());
    EXPECT_EQ(emu::to_csv(report.schedules[0]), emu::to_csv(want[0]));
    // The resumed pacer only drove the remaining epochs.
    EXPECT_LT(report.epochs, reference.num_steps());
}

// ------------------------------------------------------ introspection

TEST(CkptIntrospect, CheckpointRouteServesStatusAndTrigger) {
    ScopedEnv dir("HYPATIA_CKPT_DIR", (::testing::TempDir() + "ckpt_route").c_str());
    ScopedEnv interval("HYPATIA_CKPT_INTERVAL_S", "1000000");
    ckpt::Manager& manager = ckpt::Manager::global();
    ASSERT_TRUE(manager.enabled());

    const auto status = obs::IntrospectionServer::handle("/checkpoint");
    EXPECT_EQ(status.status, 200);
    EXPECT_EQ(status.content_type, "application/json");
    EXPECT_NE(status.body.find("\"enabled\":true"), std::string::npos)
        << status.body;
    EXPECT_NE(status.body.find("\"trigger_pending\":false"), std::string::npos);

    EXPECT_FALSE(manager.due());
    const auto triggered =
        obs::IntrospectionServer::handle("/checkpoint?trigger=1");
    EXPECT_EQ(triggered.status, 200);
    EXPECT_NE(triggered.body.find("\"trigger_pending\":true"),
              std::string::npos);
    EXPECT_TRUE(manager.due());

    manager.write(sample_checkpoint());
    const auto after = obs::IntrospectionServer::handle("/checkpoint");
    EXPECT_NE(after.body.find("\"last_generation\":"), std::string::npos);
    EXPECT_NE(after.body.find("\"trigger_pending\":false"), std::string::npos);
}

// ---------------------------------------------------- shutdown hooks

TEST(CkptShutdown, HooksRunInPriorityOrderOnce) {
    std::vector<int>* order = new std::vector<int>();
    static std::vector<int>* s_order = nullptr;
    s_order = order;
    obs::register_shutdown_hook(obs::kShutdownRecorderDrain,
                                [] { s_order->push_back(30); });
    obs::register_shutdown_hook(obs::kShutdownStopIntrospection,
                                [] { s_order->push_back(10); });
    obs::register_shutdown_hook(obs::kShutdownFinalCheckpoint,
                                [] { s_order->push_back(20); });
    obs::run_shutdown_hooks();
    EXPECT_EQ(*order, (std::vector<int>{10, 20, 30}));
    // Hooks are consumed: a second pass runs nothing.
    obs::run_shutdown_hooks();
    EXPECT_EQ(order->size(), 3u);
}

}  // namespace
}  // namespace hypatia
