// The timeline reconstructor: causal attribution of path changes
// (handover vs fault vs recovery), per-entity grouping, JSONL/CSV
// export, and the acceptance cross-check — every path change recorded
// in a faulted Starlink-S1 analysis run is attributed to a cause that
// the generating fault schedule corroborates.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "src/fault/fault.hpp"
#include "src/obs/json.hpp"
#include "src/obs/recorder.hpp"
#include "src/obs/timeline.hpp"
#include "src/routing/path_analysis.hpp"
#include "src/topology/cities.hpp"
#include "src/topology/constellation.hpp"
#include "src/topology/isl.hpp"
#include "src/topology/mobility.hpp"

namespace hypatia::obs {
namespace {

Event path_change(TimeNs t, int src, int dst, int old_hop, int new_hop,
                  double rtt_s) {
    Event e;
    e.t = t;
    e.kind = EventKind::kPathChange;
    e.a = src;
    e.b = dst;
    e.c = old_hop;
    e.d = new_hop;
    e.value = rtt_s;
    return e;
}

Event fault_event(TimeNs t, EventKind kind, int fault_kind, int a, int b = -1) {
    Event e;
    e.t = t;
    e.kind = kind;
    e.a = fault_kind;
    e.b = a;
    e.c = b;
    return e;
}

Event epoch(TimeNs t) {
    Event e;
    e.t = t;
    e.kind = EventKind::kEpochAdvance;
    e.a = 0;
    e.b = 1;
    return e;
}

TEST(Timeline, AttributesFaultRecoveryAndHandover) {
    std::vector<Event> events;
    // Epoch cadence of 1 s => inferred attribution window of 1 s.
    for (TimeNs t = 0; t <= 200 * kNsPerSec; t += kNsPerSec) events.push_back(epoch(t));
    events.push_back(fault_event(172 * kNsPerSec + 500 * kNsPerMs,
                                 EventKind::kFaultDown, 0, 501));
    events.push_back(fault_event(180 * kNsPerSec, EventKind::kFaultUp, 0, 501));
    // Change at 173 s, 0.5 s after sat 501 went down: a fault.
    events.push_back(path_change(173 * kNsPerSec, 12, 87, 501, 502, 0.014));
    // Change at 180 s, the instant sat 501 came back: a recovery.
    events.push_back(path_change(180 * kNsPerSec, 12, 87, 502, 501, 0.011));
    // Change at 50 s, nowhere near a transition: plain handover.
    events.push_back(path_change(50 * kNsPerSec, 12, 87, 300, 301, 0.012));

    const Timeline tl = Timeline::build(events, {});
    EXPECT_EQ(tl.attribution_window(), kNsPerSec);

    const EntityTimeline* pair = tl.find("pair:12->87");
    ASSERT_NE(pair, nullptr);
    ASSERT_EQ(pair->entries.size(), 3u);
    EXPECT_EQ(pair->entries[0].cause, Cause::kHandover);
    EXPECT_EQ(pair->entries[1].cause, Cause::kFault);
    EXPECT_NE(pair->entries[1].note.find("outage of sat:501"), std::string::npos);
    EXPECT_NE(pair->entries[1].note.find("sat 501 -> sat 502"), std::string::npos);
    EXPECT_NE(pair->entries[1].note.find("rtt 14.00 ms"), std::string::npos);
    EXPECT_EQ(pair->entries[2].cause, Cause::kRecovery);
    EXPECT_NE(pair->entries[2].note.find("repair of sat:501"), std::string::npos);

    // The fault transitions themselves group under the satellite entity.
    const EntityTimeline* sat = tl.find("sat:501");
    ASSERT_NE(sat, nullptr);
    EXPECT_EQ(sat->entries.size(), 2u);
    EXPECT_EQ(sat->entries[0].event.kind, EventKind::kFaultDown);
}

TEST(Timeline, PrefersOutageOfTheOldNextHop) {
    // Two satellites fail in the same window; the entry must name the
    // one the pair was actually routed through.
    std::vector<Event> events;
    events.push_back(fault_event(9 * kNsPerSec, EventKind::kFaultDown, 0, 700));
    events.push_back(fault_event(9 * kNsPerSec + 100, EventKind::kFaultDown, 0, 501));
    events.push_back(path_change(10 * kNsPerSec, 1, 2, 501, 502, 0.02));
    TimelineOptions options;
    options.attribution_window = 2 * kNsPerSec;
    const Timeline tl = Timeline::build(events, options);
    const EntityTimeline* pair = tl.find("pair:1->2");
    ASSERT_NE(pair, nullptr);
    EXPECT_EQ(pair->entries[0].cause, Cause::kFault);
    EXPECT_NE(pair->entries[0].note.find("outage of sat:501"), std::string::npos);
}

TEST(Timeline, WindowExcludesStaleTransitions) {
    // The attribution interval is half-open (t - w, t]: a transition one
    // tick inside is a fault; one exactly at t - w is already stale.
    std::vector<Event> events;
    events.push_back(fault_event(9 * kNsPerSec + 1, EventKind::kFaultDown, 0, 501));
    events.push_back(path_change(10 * kNsPerSec, 1, 2, 501, 502, 0.02));
    TimelineOptions options;
    options.attribution_window = kNsPerSec;
    const Timeline inside = Timeline::build(events, options);
    EXPECT_EQ(inside.find("pair:1->2")->entries[0].cause, Cause::kFault);

    events[0].t = 9 * kNsPerSec;  // exactly t - w: excluded
    const Timeline stale = Timeline::build(events, options);
    EXPECT_EQ(stale.find("pair:1->2")->entries[0].cause, Cause::kHandover);
}

TEST(Timeline, ExportsParsableJsonlAndCsv) {
    std::vector<Event> events;
    events.push_back(fault_event(9 * kNsPerSec + 500 * kNsPerMs,
                                 EventKind::kFaultDown, 0, 501));
    events.push_back(path_change(10 * kNsPerSec, 1, 2, 501, -1,
                                 std::numeric_limits<double>::infinity()));
    TimelineOptions options;
    options.attribution_window = kNsPerSec;
    const Timeline tl = Timeline::build(events, options);

    std::ostringstream jsonl;
    tl.write_jsonl(jsonl);
    std::istringstream lines(jsonl.str());
    std::string line;
    std::size_t parsed = 0;
    bool saw_unreachable_change = false;
    while (std::getline(lines, line)) {
        const json::Value v = json::Value::parse(line);
        ++parsed;
        EXPECT_FALSE(v.at("entity").as_string().empty());
        if (v.at("kind").as_string() == "path_change") {
            EXPECT_EQ(v.at("cause").as_string(), "fault");
            EXPECT_EQ(v.at("d").as_number(), -1.0);
            EXPECT_TRUE(v.at("value").is_null());  // +inf has no JSON spelling
            EXPECT_NE(v.at("note").as_string().find("unreachable"),
                      std::string::npos);
            saw_unreachable_change = true;
        }
    }
    EXPECT_EQ(parsed, 2u);
    EXPECT_TRUE(saw_unreachable_change);

    std::ostringstream csv;
    tl.write_csv(csv);
    const std::string text = csv.str();
    EXPECT_NE(text.find("entity,t_ns,kind,cause,a,b,c,d,value,note"),
              std::string::npos);
    EXPECT_NE(text.find("pair:1->2"), std::string::npos);
    EXPECT_NE(text.find("fault"), std::string::npos);
    // Notes contain commas, so the note cell must be quoted.
    EXPECT_NE(text.find("\""), std::string::npos);
}

// --- Acceptance: faulted S1 run cross-checked against the schedule ---------

TEST(Timeline, FaultedS1RunAttributionMatchesSchedule) {
    topo::Constellation constellation(topo::shell_by_name("starlink_s1"),
                                      topo::default_epoch());
    topo::SatelliteMobility mobility(constellation);
    const auto isls = topo::build_isls(constellation, topo::IslPattern::kPlusGrid);
    auto gses = topo::top100_cities();
    const int num_sats = constellation.num_satellites();

    const std::vector<route::GsPair> pairs = {
        {topo::city_index("Manila"), topo::city_index("Dalian")},
        {topo::city_index("Tokyo"), topo::city_index("Seoul")},
        {topo::city_index("New York"), topo::city_index("London")}};

    constexpr TimeNs kStep = kNsPerSec;
    constexpr TimeNs kEnd = 20 * kNsPerSec;
    constexpr TimeNs kKillAt = 10 * kNsPerSec;
    constexpr TimeNs kRepairAt = 15 * kNsPerSec;

    // Discovery pass (fault-free): find a pair whose first-hop satellite
    // is stable across the kill boundary, so severing it guarantees an
    // observable path change at exactly kKillAt.
    fault::FaultSchedule no_faults;
    route::AnalysisOptions opt;
    opt.t_end = kEnd;
    opt.step = kStep;
    opt.faults = &no_faults;
    std::vector<std::vector<int>> first_hop(
        pairs.size(), std::vector<int>(static_cast<std::size_t>(kEnd / kStep), -1));
    opt.per_step_observer = [&](TimeNs t, int pair_index, double,
                                const std::vector<int>& path) {
        if (!path.empty()) {
            first_hop[static_cast<std::size_t>(pair_index)]
                     [static_cast<std::size_t>(t / kStep)] = path.front();
        }
    };
    recorder().set_enabled(false);  // discovery run stays off the record
    route::analyze_pairs(mobility, isls, gses, pairs, opt);

    int victim_sat = -1;
    std::size_t victim_pair = 0;
    for (std::size_t pi = 0; pi < pairs.size(); ++pi) {
        const auto& fh = first_hop[pi];
        const std::size_t k = static_cast<std::size_t>(kKillAt / kStep);
        if (fh[k - 1] >= 0 && fh[k - 1] == fh[k]) {
            victim_sat = fh[k];
            victim_pair = pi;
            break;
        }
    }
    ASSERT_GE(victim_sat, 0) << "no pair with a stable first hop at the boundary";

    const auto schedule = fault::FaultSchedule::from_events(
        {{fault::FaultKind::kSatellite, victim_sat, -1, kKillAt, kRepairAt}},
        num_sats, static_cast<int>(gses.size()));

    // The recorded pass.
    recorder().reset();
    recorder().set_enabled(true);
    opt.per_step_observer = nullptr;
    opt.faults = &schedule;
    route::analyze_pairs(mobility, isls, gses, pairs, opt);
    const std::vector<Event> events = recorder().drain();
    ASSERT_FALSE(events.empty());

    const Timeline tl = Timeline::build(events, {});
    // The inferred window is the 1 s analysis step.
    EXPECT_EQ(tl.attribution_window(), kStep);

    // Cross-check every path change against the generating schedule:
    //  fault    => a down transition inside (t - w, t]
    //  recovery => an up transition (and no down) inside (t - w, t]
    //  handover => no transition at all inside the window
    int fault_entries = 0;
    int total_changes = 0;
    for (const auto& entity : tl.entities()) {
        for (const auto& entry : entity.entries) {
            if (entry.event.kind != EventKind::kPathChange) continue;
            ++total_changes;
            EXPECT_NE(entry.cause, Cause::kNone);
            std::vector<fault::FaultTransition> transitions;
            schedule.transitions_in(entry.event.t - tl.attribution_window(),
                                    entry.event.t, transitions);
            bool has_down = false;
            bool has_up = false;
            for (const auto& tr : transitions) (tr.down ? has_down : has_up) = true;
            switch (entry.cause) {
                case Cause::kFault:
                    EXPECT_TRUE(has_down) << entity.entity << " @ " << entry.event.t;
                    ++fault_entries;
                    break;
                case Cause::kRecovery:
                    EXPECT_TRUE(has_up && !has_down)
                        << entity.entity << " @ " << entry.event.t;
                    break;
                default:
                    EXPECT_TRUE(transitions.empty())
                        << entity.entity << " @ " << entry.event.t;
                    break;
            }
        }
    }
    EXPECT_GT(total_changes, 0);
    EXPECT_GT(fault_entries, 0) << "the severed pair never produced a fault entry";

    // The victim pair specifically changed path at the kill instant and
    // the entry names the dead satellite as the culprit.
    char key[48];
    std::snprintf(key, sizeof(key), "pair:%d->%d", pairs[victim_pair].src_gs,
                  pairs[victim_pair].dst_gs);
    const EntityTimeline* pair_tl = tl.find(key);
    ASSERT_NE(pair_tl, nullptr);
    bool found_kill_entry = false;
    for (const auto& entry : pair_tl->entries) {
        if (entry.event.t == kKillAt && entry.cause == Cause::kFault) {
            EXPECT_EQ(entry.event.c, victim_sat);  // old next hop on record
            EXPECT_NE(entry.note.find("outage of sat:" + std::to_string(victim_sat)),
                      std::string::npos);
            found_kill_entry = true;
        }
    }
    EXPECT_TRUE(found_kill_entry);

    // The schedule's own transitions made it onto the satellite entity.
    const EntityTimeline* sat_tl =
        tl.find("sat:" + std::to_string(victim_sat));
    ASSERT_NE(sat_tl, nullptr);
    ASSERT_EQ(sat_tl->entries.size(), 2u);
    EXPECT_EQ(sat_tl->entries[0].event.kind, EventKind::kFaultDown);
    EXPECT_EQ(sat_tl->entries[0].event.t, kKillAt);
    EXPECT_EQ(sat_tl->entries[1].event.kind, EventKind::kFaultUp);
    EXPECT_EQ(sat_tl->entries[1].event.t, kRepairAt);
}

}  // namespace
}  // namespace hypatia::obs
