// Property-based sweeps over the orbital substrate: SGP4 invariants
// across all Table-1 shells and many orbital geometries, TLE round-trip
// stability across randomized elements, and coordinate-transform
// consistency. These are the para-metrized counterparts of the targeted
// unit tests in test_sgp4 / test_tle.
#include <cmath>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "src/orbit/kepler.hpp"
#include "src/orbit/sgp4.hpp"
#include "src/orbit/sgp4_batch.hpp"
#include "src/orbit/tle.hpp"
#include "src/topology/constellation.hpp"

namespace hypatia::orbit {
namespace {

JulianDate epoch() { return julian_date_from_utc(2000, 1, 1, 0, 0, 0.0); }

// ---------------------------------------------------------------------
// SGP4 invariants across every Table-1 shell.
class Sgp4ShellInvariants : public ::testing::TestWithParam<topo::ShellParams> {};

TEST_P(Sgp4ShellInvariants, RadiusStaysNearNominal) {
    const auto& shell = GetParam();
    const auto kep = KeplerianElements::circular(shell.altitude_km,
                                                 shell.inclination_deg, 123.0, 45.0,
                                                 epoch());
    const Sgp4 sgp4(sgp4_elements_from_kepler(kep));
    for (double t = 0.0; t <= 200.0; t += 20.0) {
        const double r = sgp4.propagate_minutes(t).position_km.norm();
        EXPECT_NEAR(r - Wgs72::kEarthRadiusKm, shell.altitude_km, 20.0)
            << shell.name << " t=" << t;
    }
}

TEST_P(Sgp4ShellInvariants, SpeedConsistentWithVisViva) {
    const auto& shell = GetParam();
    const auto kep = KeplerianElements::circular(shell.altitude_km,
                                                 shell.inclination_deg, 10.0, 200.0,
                                                 epoch());
    const Sgp4 sgp4(sgp4_elements_from_kepler(kep));
    for (double t : {0.0, 33.0, 77.0}) {
        const auto sv = sgp4.propagate_minutes(t);
        const double r = sv.position_km.norm();
        const double vis_viva = std::sqrt(Wgs72::kMuKm3PerS2 / r);
        EXPECT_NEAR(sv.velocity_km_per_s.norm(), vis_viva, 0.05) << shell.name;
    }
}

TEST_P(Sgp4ShellInvariants, LatitudeBoundedByInclination) {
    const auto& shell = GetParam();
    const auto kep = KeplerianElements::circular(shell.altitude_km,
                                                 shell.inclination_deg, 0.0, 0.0,
                                                 epoch());
    const Sgp4 sgp4(sgp4_elements_from_kepler(kep));
    const double max_lat = shell.inclination_deg > 90.0
                               ? 180.0 - shell.inclination_deg
                               : shell.inclination_deg;
    for (double t = 0.0; t < 120.0; t += 3.0) {
        const auto p = sgp4.propagate_minutes(t).position_km;
        const double lat = std::asin(std::abs(p.z) / p.norm()) * 180.0 / M_PI;
        EXPECT_LE(lat, max_lat + 0.5) << shell.name;
    }
}

TEST_P(Sgp4ShellInvariants, MatchesKeplerJ2ShortHorizon) {
    const auto& shell = GetParam();
    const auto kep = KeplerianElements::circular(shell.altitude_km,
                                                 shell.inclination_deg, 250.0, 17.0,
                                                 epoch());
    const Sgp4 sgp4(sgp4_elements_from_kepler(kep));
    const auto at = epoch().plus_seconds(300.0);
    const auto a = sgp4.propagate(at).position_km;
    const auto b = propagate_kepler_j2(kep, at).position_km;
    EXPECT_LT(a.distance_to(b), 30.0) << shell.name;
}

INSTANTIATE_TEST_SUITE_P(AllShells, Sgp4ShellInvariants,
                         ::testing::ValuesIn(topo::table1_shells()),
                         [](const auto& info) { return info.param.name; });

// ---------------------------------------------------------------------
// TLE round-trip across randomized element sets.
class TleRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(TleRoundTrip, RandomElementsSurvive) {
    std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()));
    std::uniform_real_distribution<double> alt(400.0, 1500.0);
    std::uniform_real_distribution<double> inc(5.0, 120.0);
    std::uniform_real_distribution<double> angle(0.0, 359.99);
    for (int i = 0; i < 20; ++i) {
        KeplerianElements kep = KeplerianElements::circular(alt(rng), inc(rng),
                                                            angle(rng), angle(rng),
                                                            epoch());
        const auto tle = Tle::from_kepler(kep, 1 + i);
        const auto parsed = Tle::parse(tle.line1(), tle.line2());
        EXPECT_NEAR(parsed.inclination_deg, kep.inclination_deg, 1e-4);
        EXPECT_NEAR(parsed.raan_deg, kep.raan_deg, 1e-4);
        EXPECT_NEAR(parsed.mean_anomaly_deg, kep.mean_anomaly_deg, 1e-4);
        EXPECT_NEAR(parsed.mean_motion_rev_per_day, kep.mean_motion_rev_per_day(),
                    1e-7);
        // The parsed TLE must initialize SGP4 without throwing and land at
        // the same position as direct initialization.
        const Sgp4 direct(sgp4_elements_from_kepler(kep));
        const Sgp4 via(parsed.to_sgp4_elements());
        const auto pa = direct.propagate_minutes(10.0).position_km;
        const auto pb = via.propagate_minutes(10.0).position_km;
        EXPECT_LT(pa.distance_to(pb), 2.0);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TleRoundTrip, ::testing::Values(1, 2, 3, 4, 5));

// ---------------------------------------------------------------------
// Coordinate transforms: random round trips.
class CoordRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(CoordRoundTrip, GeodeticEcefRandom) {
    std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 97);
    std::uniform_real_distribution<double> lat(-89.0, 89.0);
    std::uniform_real_distribution<double> lon(-180.0, 180.0);
    std::uniform_real_distribution<double> alt(0.0, 2000.0);
    for (int i = 0; i < 50; ++i) {
        const Geodetic g{lat(rng), lon(rng), alt(rng)};
        const Geodetic back = ecef_to_geodetic(geodetic_to_ecef(g));
        EXPECT_NEAR(back.latitude_deg, g.latitude_deg, 1e-7);
        EXPECT_NEAR(back.longitude_deg, g.longitude_deg, 1e-7);
        EXPECT_NEAR(back.altitude_km, g.altitude_km, 1e-6);
    }
}

TEST_P(CoordRoundTrip, LookAnglesRangeMatchesDistance) {
    std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 31);
    std::uniform_real_distribution<double> lat(-60.0, 60.0);
    std::uniform_real_distribution<double> lon(-180.0, 180.0);
    for (int i = 0; i < 30; ++i) {
        const Geodetic obs_geo{lat(rng), lon(rng), 0.0};
        const Geodetic target_geo{lat(rng), lon(rng), 550.0};
        const Vec3 obs = geodetic_to_ecef(obs_geo);
        const Vec3 target = geodetic_to_ecef(target_geo);
        const auto look = look_angles(obs_geo, obs, target);
        EXPECT_NEAR(look.range_km, obs.distance_to(target), 1e-9);
        EXPECT_GE(look.azimuth_deg, 0.0);
        EXPECT_LT(look.azimuth_deg, 360.0);
        EXPECT_GE(look.elevation_deg, -90.0);
        EXPECT_LE(look.elevation_deg, 90.0);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoordRoundTrip, ::testing::Values(1, 2, 3));

// ---------------------------------------------------------------------
// Batch-kernel invariants: the SoA batch (simd kernel, the most
// aggressive path) run over whole Table-1 shells must satisfy the same
// physical properties as the scalar class — these sweeps would catch a
// kernel that somehow stayed self-consistent but drifted physically.
class BatchKernelInvariants : public ::testing::TestWithParam<topo::ShellParams> {};

TEST_P(BatchKernelInvariants, AltitudeWithinShellBounds) {
    const topo::Constellation c(GetParam(), epoch());
    Sgp4Batch batch;
    batch.reserve(static_cast<std::size_t>(c.num_satellites()));
    for (const auto& sat : c.satellites()) batch.add(sat.sgp4->consts());
    ASSERT_TRUE(batch.all_zero_drag());  // stock shells carry no drag term

    const std::size_t n = batch.size();
    std::vector<StateVector> out(n);
    std::vector<Sgp4Status> st(n);
    for (const double sec : {0.0, 600.0, 5400.0}) {
        const auto at = epoch().plus_seconds(sec);
        batch.propagate_teme(Sgp4Kernel::kSimd, at, 0, n, out.data(), st.data());
        for (std::size_t i = 0; i < n; ++i) {
            ASSERT_EQ(st[i], Sgp4Status::kOk) << i;
            // Circular orbits: the SGP4 radius stays within the J2
            // oscillation band around the shell's nominal altitude.
            const double alt = out[i].position_km.norm() - Wgs72::kEarthRadiusKm;
            ASSERT_NEAR(alt, GetParam().altitude_km, 25.0)
                << GetParam().name << " sat " << i << " t=" << sec;
        }
    }
}

TEST_P(BatchKernelInvariants, PeriodMatchesMeanMotion) {
    const topo::Constellation c(GetParam(), epoch());
    Sgp4Batch batch;
    for (const auto& sat : c.satellites()) batch.add(sat.sgp4->consts());

    // Un-Kozai'd mean motion must agree with the Keplerian period of
    // the shell's semi-major axis, and propagating one full period must
    // bring the satellite (nearly) back: only the slow J2 secular
    // drifts (nodal precession ~ a fraction of a degree per orbit)
    // separate the two states.
    const double a_km = Wgs72::kEarthRadiusKm + GetParam().altitude_km;
    const double period_kepler_min =
        2.0 * M_PI * std::sqrt(a_km * a_km * a_km / Wgs72::kMuKm3PerS2) / 60.0;
    for (std::size_t i = 0; i < batch.size(); i += 97) {
        const double period_min = 2.0 * M_PI / batch.consts(i).no_unkozai;
        ASSERT_NEAR(period_min / period_kepler_min, 1.0, 2e-3)
            << GetParam().name << " sat " << i;

        StateVector at0, at_period, at_half;
        ASSERT_EQ(batch.propagate_one(i, 0.0, at0), Sgp4Status::kOk);
        ASSERT_EQ(batch.propagate_one(i, period_min, at_period), Sgp4Status::kOk);
        ASSERT_EQ(batch.propagate_one(i, period_min / 2.0, at_half),
                  Sgp4Status::kOk);
        ASSERT_LT(at0.position_km.distance_to(at_period.position_km), 120.0)
            << GetParam().name << " sat " << i;
        ASSERT_GT(at0.position_km.distance_to(at_half.position_km), 1000.0)
            << GetParam().name << " sat " << i;
    }
}

TEST_P(BatchKernelInvariants, EcefRoundTripWithinMillimeter) {
    const topo::Constellation c(GetParam(), epoch());
    Sgp4Batch batch;
    for (const auto& sat : c.satellites()) batch.add(sat.sgp4->consts());

    const std::size_t n = batch.size();
    const auto at = epoch().plus_seconds(1234.5);
    std::vector<Vec3> ecef(n);
    std::vector<Sgp4Status> st(n);
    batch.propagate_ecef(Sgp4Kernel::kSimd, at, 0, n, ecef.data(), st.data());
    for (std::size_t i = 0; i < n; i += 13) {
        ASSERT_EQ(st[i], Sgp4Status::kOk) << i;
        // Round trip through the geodetic transforms in coords: the
        // batch's ECEF output must be a fixed point to within 1 mm.
        const Vec3 back = geodetic_to_ecef(ecef_to_geodetic(ecef[i]));
        ASSERT_LT(back.distance_to(ecef[i]), 1e-6)
            << GetParam().name << " sat " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(AllShells, BatchKernelInvariants,
                         ::testing::ValuesIn(topo::table1_shells()),
                         [](const auto& info) { return info.param.name; });

}  // namespace
}  // namespace hypatia::orbit
