#include "src/topology/mobility.hpp"

#include <gtest/gtest.h>

namespace hypatia::topo {
namespace {

Constellation mini() {
    return Constellation({"mini", 550.0, 4, 5, 53.0, 25.0, 0.5}, default_epoch());
}

TEST(SatelliteMobility, CachedMatchesExactOnGrid) {
    const auto c = mini();
    const SatelliteMobility mob(c);
    for (TimeNs t : {TimeNs{0}, 10 * kNsPerMs, 5 * kNsPerSec}) {
        for (int sat = 0; sat < c.num_satellites(); ++sat) {
            const Vec3 cached = mob.position_ecef(sat, t);
            const Vec3 exact = mob.position_ecef_exact(sat, t);
            EXPECT_LT(cached.distance_to(exact), 1e-6) << sat << " " << t;
        }
    }
}

TEST(SatelliteMobility, InterpolationErrorTiny) {
    const auto c = mini();
    const SatelliteMobility mob(c);
    // Off-grid query: linear interpolation over 10 ms. A LEO satellite
    // moves ~76 m in 10 ms along an arc; chord-vs-arc error is << 1 m.
    for (TimeNs t : {3 * kNsPerMs, 7 * kNsPerMs, TimeNs{123456789}}) {
        const Vec3 cached = mob.position_ecef(0, t);
        const Vec3 exact = mob.position_ecef_exact(0, t);
        EXPECT_LT(cached.distance_to(exact), 0.001) << t;  // < 1 m
    }
}

TEST(SatelliteMobility, PositionsMoveOverTime) {
    const auto c = mini();
    const SatelliteMobility mob(c);
    const Vec3 p0 = mob.position_ecef(0, 0);
    const Vec3 p1 = mob.position_ecef(0, 10 * kNsPerSec);
    // ~7.6 km/s ground-frame speed -> ~76 km in 10 s.
    EXPECT_GT(p0.distance_to(p1), 30.0);
}

TEST(SatelliteMobility, RepeatedQueryIsStable) {
    const auto c = mini();
    const SatelliteMobility mob(c);
    const Vec3 a = mob.position_ecef(2, 1234567LL);
    const Vec3 b = mob.position_ecef(2, 1234567LL);
    EXPECT_EQ(a.x, b.x);
    EXPECT_EQ(a.y, b.y);
    EXPECT_EQ(a.z, b.z);
}

TEST(SatelliteMobility, BackwardQueryAfterForwardWorks) {
    const auto c = mini();
    const SatelliteMobility mob(c);
    const Vec3 later = mob.position_ecef(1, 60 * kNsPerSec);
    const Vec3 earlier = mob.position_ecef(1, 1 * kNsPerSec);
    const Vec3 exact = mob.position_ecef_exact(1, 1 * kNsPerSec);
    EXPECT_LT(earlier.distance_to(exact), 0.001);
    EXPECT_GT(later.distance_to(earlier), 1.0);
}

TEST(SatelliteMobility, EcefAltitudeStaysNominal) {
    const auto c = mini();
    const SatelliteMobility mob(c);
    for (TimeNs t = 0; t < 200 * kNsPerSec; t += 20 * kNsPerSec) {
        const double r = mob.position_ecef(3, t).norm();
        EXPECT_NEAR(r - orbit::Wgs72::kEarthRadiusKm, 550.0, 20.0);
    }
}

}  // namespace
}  // namespace hypatia::topo
