#include "src/topology/mobility.hpp"

#include <gtest/gtest.h>

#include "src/obs/observability.hpp"

namespace hypatia::topo {
namespace {

Constellation mini() {
    return Constellation({"mini", 550.0, 4, 5, 53.0, 25.0, 0.5}, default_epoch());
}

TEST(SatelliteMobility, CachedMatchesExactOnGrid) {
    const auto c = mini();
    const SatelliteMobility mob(c);
    for (TimeNs t : {TimeNs{0}, 10 * kNsPerMs, 5 * kNsPerSec}) {
        for (int sat = 0; sat < c.num_satellites(); ++sat) {
            const Vec3 cached = mob.position_ecef(sat, t);
            const Vec3 exact = mob.position_ecef_exact(sat, t);
            EXPECT_LT(cached.distance_to(exact), 1e-6) << sat << " " << t;
        }
    }
}

TEST(SatelliteMobility, InterpolationErrorTiny) {
    const auto c = mini();
    const SatelliteMobility mob(c);
    // Off-grid query: linear interpolation over 10 ms. A LEO satellite
    // moves ~76 m in 10 ms along an arc; chord-vs-arc error is << 1 m.
    for (TimeNs t : {3 * kNsPerMs, 7 * kNsPerMs, TimeNs{123456789}}) {
        const Vec3 cached = mob.position_ecef(0, t);
        const Vec3 exact = mob.position_ecef_exact(0, t);
        EXPECT_LT(cached.distance_to(exact), 0.001) << t;  // < 1 m
    }
}

TEST(SatelliteMobility, PositionsMoveOverTime) {
    const auto c = mini();
    const SatelliteMobility mob(c);
    const Vec3 p0 = mob.position_ecef(0, 0);
    const Vec3 p1 = mob.position_ecef(0, 10 * kNsPerSec);
    // ~7.6 km/s ground-frame speed -> ~76 km in 10 s.
    EXPECT_GT(p0.distance_to(p1), 30.0);
}

TEST(SatelliteMobility, RepeatedQueryIsStable) {
    const auto c = mini();
    const SatelliteMobility mob(c);
    const Vec3 a = mob.position_ecef(2, 1234567LL);
    const Vec3 b = mob.position_ecef(2, 1234567LL);
    EXPECT_EQ(a.x, b.x);
    EXPECT_EQ(a.y, b.y);
    EXPECT_EQ(a.z, b.z);
}

TEST(SatelliteMobility, BackwardQueryAfterForwardWorks) {
    const auto c = mini();
    const SatelliteMobility mob(c);
    const Vec3 later = mob.position_ecef(1, 60 * kNsPerSec);
    const Vec3 earlier = mob.position_ecef(1, 1 * kNsPerSec);
    const Vec3 exact = mob.position_ecef_exact(1, 1 * kNsPerSec);
    EXPECT_LT(earlier.distance_to(exact), 0.001);
    EXPECT_GT(later.distance_to(earlier), 1.0);
}

TEST(SatelliteMobility, EcefAltitudeStaysNominal) {
    const auto c = mini();
    const SatelliteMobility mob(c);
    for (TimeNs t = 0; t < 200 * kNsPerSec; t += 20 * kNsPerSec) {
        const double r = mob.position_ecef(3, t).norm();
        EXPECT_NEAR(r - orbit::Wgs72::kEarthRadiusKm, 550.0, 20.0);
    }
}

TEST(SatelliteMobility, WarmCacheSecondCallPropagatesNothing) {
    const auto c = mini();
    const SatelliteMobility mob(c);
    auto& fills = obs::metrics().counter("propagation.sgp4_cache_fills");
    auto& hits = obs::metrics().counter("orbit.sgp4_cache_hits");
    const auto n = static_cast<std::uint64_t>(c.num_satellites());

    const TimeNs t = 7 * kNsPerMs;  // off-boundary: start + end endpoints
    mob.warm_cache(t);
    const std::uint64_t fills_after_first = fills.value();
    const std::uint64_t hits_after_first = hits.value();

    // Regression: a second warm_cache within the same bucket epoch must
    // re-propagate nothing — every entry counts as a hit and the fill
    // counter stays put.
    mob.warm_cache(t);
    EXPECT_EQ(fills.value(), fills_after_first);
    EXPECT_EQ(hits.value(), hits_after_first + n);

    // Same for a different off-boundary time in the same bucket (the
    // cached endpoints cover the whole bucket).
    mob.warm_cache(t + 2 * kNsPerMs);
    EXPECT_EQ(fills.value(), fills_after_first);
    EXPECT_EQ(hits.value(), hits_after_first + 2 * n);
}

TEST(SatelliteMobility, KernelsAgreeOnWarmCache) {
    const auto c = mini();
    SatelliteMobility scalar(c), batch(c), simd(c);
    ASSERT_TRUE(batch.batch_ready());
    scalar.set_kernel(orbit::Sgp4Kernel::kScalar);
    batch.set_kernel(orbit::Sgp4Kernel::kBatch);
    simd.set_kernel(orbit::Sgp4Kernel::kSimd);
    for (TimeNs t : {TimeNs{0}, 13 * kNsPerMs, 5 * kNsPerSec}) {
        scalar.warm_cache(t);
        batch.warm_cache(t);
        simd.warm_cache(t);
        for (int sat = 0; sat < c.num_satellites(); ++sat) {
            const Vec3 a = scalar.position_ecef_warm(sat, t);
            const Vec3 b = batch.position_ecef_warm(sat, t);
            const Vec3 s = simd.position_ecef_warm(sat, t);
            EXPECT_EQ(a.x, b.x) << sat << " " << t;
            EXPECT_EQ(a.y, b.y) << sat << " " << t;
            EXPECT_EQ(a.z, b.z) << sat << " " << t;
            EXPECT_EQ(a.x, s.x) << sat << " " << t;
            EXPECT_EQ(a.y, s.y) << sat << " " << t;
            EXPECT_EQ(a.z, s.z) << sat << " " << t;
        }
    }
}

}  // namespace
}  // namespace hypatia::topo
