#include "src/core/experiment.hpp"

#include <gtest/gtest.h>

#include "src/topology/cities.hpp"

namespace hypatia::core {
namespace {

TEST(AttachTcpFlows, OneFlowPerPair) {
    Scenario s = Scenario::paper_default("kuiper_k1");
    s.ground_stations = {topo::city_by_name("Manila"), topo::city_by_name("Dalian"),
                         topo::city_by_name("Tokyo"), topo::city_by_name("Seoul")};
    LeoNetwork leo(s);
    auto flows = attach_tcp_flows(leo, {{0, 1}, {2, 3}}, "newreno");
    EXPECT_EQ(flows.size(), 2u);
    leo.run(3 * kNsPerSec);
    for (const auto& f : flows) EXPECT_GT(f->delivered_bytes(), 0u);
}

TEST(AttachTcpFlows, VegasSelectable) {
    Scenario s = Scenario::paper_default("kuiper_k1");
    s.ground_stations = {topo::city_by_name("Manila"), topo::city_by_name("Dalian")};
    LeoNetwork leo(s);
    auto flows = attach_tcp_flows(leo, {{0, 1}}, "vegas");
    leo.run(3 * kNsPerSec);
    EXPECT_GT(flows[0]->delivered_bytes(), 0u);
}

TEST(AttachTcpFlows, UnknownCcThrows) {
    Scenario s = Scenario::paper_default("kuiper_k1");
    s.ground_stations = {topo::city_by_name("Manila"), topo::city_by_name("Dalian")};
    LeoNetwork leo(s);
    EXPECT_THROW(attach_tcp_flows(leo, {{0, 1}}, "cubic"), std::invalid_argument);
}

TEST(AttachUdpFlows, DeliversAtLineRate) {
    Scenario s = Scenario::paper_default("kuiper_k1");
    s.ground_stations = {topo::city_by_name("Manila"), topo::city_by_name("Dalian")};
    LeoNetwork leo(s);
    auto flows = attach_udp_flows(leo, {{0, 1}}, 3 * kNsPerSec);
    leo.run(3 * kNsPerSec);
    // Paced at 10 Mbit/s wire for 3 s: payload goodput ~ 9.6 Mbit/s.
    EXPECT_NEAR(flows[0]->goodput_bps(3 * kNsPerSec), 9.6e6, 0.6e6);
}

TEST(PermutationWorkload, ReportsConsistentMetrics) {
    PermutationWorkloadConfig cfg;
    cfg.scenario = Scenario::paper_default("kuiper_k1");
    cfg.num_ground_stations = 10;
    cfg.duration = 2 * kNsPerSec;
    cfg.tcp = false;
    const auto result = run_permutation_workload(cfg);
    EXPECT_DOUBLE_EQ(result.virtual_seconds, 2.0);
    EXPECT_GT(result.wall_seconds, 0.0);
    EXPECT_NEAR(result.slowdown, result.wall_seconds / 2.0, 1e-12);
    EXPECT_GT(result.goodput_bps, 1e6);  // ~10 flows x up to 9.6 Mbit/s
    EXPECT_GT(result.events, 1000u);
}

TEST(PermutationWorkload, TcpAndUdpBothRun) {
    PermutationWorkloadConfig cfg;
    cfg.scenario = Scenario::paper_default("kuiper_k1");
    cfg.num_ground_stations = 6;
    cfg.duration = 2 * kNsPerSec;
    cfg.tcp = true;
    const auto tcp = run_permutation_workload(cfg);
    cfg.tcp = false;
    const auto udp = run_permutation_workload(cfg);
    EXPECT_GT(tcp.goodput_bps, 0.0);
    EXPECT_GT(udp.goodput_bps, 0.0);
}

}  // namespace
}  // namespace hypatia::core
