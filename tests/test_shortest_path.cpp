#include "src/routing/shortest_path.hpp"

#include <random>

#include <gtest/gtest.h>

#include "src/topology/cities.hpp"

namespace hypatia::route {
namespace {

TEST(Dijkstra, LineGraph) {
    Graph g(3, 2);  // sats 0,1,2; gs 3,4
    g.add_undirected_edge(3, 0, 1.0);
    g.add_undirected_edge(0, 1, 2.0);
    g.add_undirected_edge(1, 2, 3.0);
    g.add_undirected_edge(2, 4, 4.0);
    const auto tree = dijkstra_to(g, 4);
    EXPECT_DOUBLE_EQ(tree.distance_km[3], 10.0);
    EXPECT_EQ(tree.next_hop[3], 0);
    EXPECT_EQ(tree.next_hop[0], 1);
    EXPECT_EQ(tree.next_hop[1], 2);
    EXPECT_EQ(tree.next_hop[2], 4);
}

TEST(Dijkstra, GroundStationDoesNotRelay) {
    // Two GSes connected through a middle GS that must not relay:
    // gs2 - sat0 - gs3 - sat1 - gs4. Path 2->4 must not shortcut via gs3.
    Graph g(2, 3);
    g.add_undirected_edge(2, 0, 1.0);
    g.add_undirected_edge(0, 3, 1.0);
    g.add_undirected_edge(3, 1, 1.0);
    g.add_undirected_edge(1, 4, 1.0);
    const auto tree = dijkstra_to(g, 4);
    EXPECT_EQ(tree.distance_km[2], kInfDistance);
    EXPECT_EQ(tree.next_hop[2], -1);
}

TEST(Dijkstra, RelayGroundStationBridges) {
    Graph g(2, 3);
    g.add_undirected_edge(2, 0, 1.0);
    g.add_undirected_edge(0, 3, 1.0);
    g.add_undirected_edge(3, 1, 1.0);
    g.add_undirected_edge(1, 4, 1.0);
    g.set_relay(3, true);  // bent-pipe relay
    const auto tree = dijkstra_to(g, 4);
    EXPECT_DOUBLE_EQ(tree.distance_km[2], 4.0);
    const auto path = extract_path(tree, 2);
    const std::vector<int> expected = {2, 0, 3, 1, 4};
    EXPECT_EQ(path, expected);
}

TEST(Dijkstra, UnreachableNode) {
    Graph g(2, 2);
    g.add_undirected_edge(2, 0, 1.0);  // gs2 - sat0, sat1/gs3 isolated
    const auto tree = dijkstra_to(g, 2);
    EXPECT_EQ(tree.distance_km[3], kInfDistance);
    EXPECT_TRUE(extract_path(tree, 3).empty());
}

TEST(Dijkstra, DestinationPathIsItself) {
    Graph g(1, 1);
    g.add_undirected_edge(0, 1, 5.0);
    const auto tree = dijkstra_to(g, 1);
    const auto path = extract_path(tree, 1);
    ASSERT_EQ(path.size(), 1u);
    EXPECT_EQ(path[0], 1);
    EXPECT_DOUBLE_EQ(tree.distance_km[1], 0.0);
}

TEST(Dijkstra, PicksShorterOfTwoRoutes) {
    Graph g(4, 2);
    g.add_undirected_edge(4, 0, 1.0);
    g.add_undirected_edge(0, 1, 1.0);
    g.add_undirected_edge(1, 5, 1.0);  // total 3
    g.add_undirected_edge(4, 2, 1.0);
    g.add_undirected_edge(2, 3, 5.0);
    g.add_undirected_edge(3, 5, 1.0);  // total 7
    const auto tree = dijkstra_to(g, 5);
    EXPECT_DOUBLE_EQ(tree.distance_km[4], 3.0);
    EXPECT_EQ(extract_path(tree, 4).size(), 4u);
}

TEST(FloydWarshall, MatchesDijkstraOnRandomGraphs) {
    std::mt19937 rng(7);
    std::uniform_real_distribution<double> w(1.0, 10.0);
    for (int trial = 0; trial < 20; ++trial) {
        const int sats = 8, gs = 4;
        Graph g(sats, gs);
        std::uniform_int_distribution<int> pick(0, sats + gs - 1);
        for (int e = 0; e < 25; ++e) {
            const int a = pick(rng), b = pick(rng);
            if (a == b) continue;
            g.add_undirected_edge(a, b, w(rng));
        }
        const auto fw = floyd_warshall(g);
        for (int dst = sats; dst < sats + gs; ++dst) {
            const auto tree = dijkstra_to(g, dst);
            for (int src = 0; src < sats + gs; ++src) {
                if (src == dst) continue;
                // Floyd-Warshall computes src->dst honoring relay rules at
                // intermediate nodes only, exactly like Dijkstra.
                const double fw_dist =
                    fw[static_cast<std::size_t>(src)][static_cast<std::size_t>(dst)];
                const double dj_dist = tree.distance_km[static_cast<std::size_t>(src)];
                if (fw_dist == kInfDistance) {
                    EXPECT_EQ(dj_dist, kInfDistance) << trial << " " << src << "->" << dst;
                } else {
                    EXPECT_NEAR(dj_dist, fw_dist, 1e-9) << trial << " " << src << "->" << dst;
                }
            }
        }
    }
}

TEST(ExtractPath, UnreachableSourceReturnsEmpty) {
    Graph g(2, 2);
    g.add_undirected_edge(0, 3, 1.0);  // gs2 and sat1 isolated
    const auto tree = dijkstra_to(g, 3);
    EXPECT_TRUE(extract_path(tree, 2).empty());
    EXPECT_TRUE(extract_path(tree, 1).empty());
    // The destination itself is always "reachable" as a 1-node path.
    ASSERT_EQ(extract_path(tree, 3).size(), 1u);
}

TEST(ExtractPath, CorruptedNextHopCycleReturnsEmpty) {
    // A hand-corrupted tree whose next-hop chain loops 0 -> 1 -> 2 -> 0
    // and never reaches the destination. The walk must detect the cycle
    // (path longer than the node count) and return empty, not hang.
    DestinationTree tree;
    tree.destination = 3;
    tree.next_hop = {1, 2, 0, 3};
    tree.distance_km = {1.0, 1.0, 1.0, 0.0};
    EXPECT_TRUE(extract_path(tree, 0).empty());
    EXPECT_TRUE(extract_path(tree, 2).empty());
}

TEST(ExtractPath, EndpointsAndContiguity) {
    Graph g(5, 2);
    g.add_undirected_edge(5, 0, 1.0);
    g.add_undirected_edge(0, 1, 1.0);
    g.add_undirected_edge(1, 2, 1.0);
    g.add_undirected_edge(2, 6, 1.0);
    const auto tree = dijkstra_to(g, 6);
    const auto path = extract_path(tree, 5);
    ASSERT_GE(path.size(), 2u);
    EXPECT_EQ(path.front(), 5);
    EXPECT_EQ(path.back(), 6);
}

}  // namespace
}  // namespace hypatia::route
