// Emulation export + real-time pacing (DESIGN.md §10): golden netem
// script on a faulted Starlink S1 run, byte-identical schedules across
// thread counts and snapshot modes, cross-checks of the exported
// loss/rate series against the generating FaultSchedule and the known
// flowsim max-min solution, the wall-clock pacer, the live /schedule
// endpoint, and the HYPATIA_REALTIME parser.
#include "src/emu/export.hpp"

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/emu/realtime.hpp"
#include "src/emu/schedule.hpp"
#include "src/routing/path_analysis.hpp"
#include "src/topology/cities.hpp"
#include "src/util/thread_pool.hpp"
#include "src/viz/path_export.hpp"

namespace hypatia {
namespace {

struct ScopedEnv {
    explicit ScopedEnv(const char* name, const char* value) : name_(name) {
        ::setenv(name, value, 1);
    }
    ~ScopedEnv() { ::unsetenv(name_); }
    const char* name_;
};

core::Scenario city_scenario(const std::string& shell,
                             const std::vector<std::string>& names) {
    core::Scenario s;
    s.shell = topo::shell_by_name(shell);
    int id = 0;
    for (const auto& name : names) {
        const auto city = topo::city_by_name(name);
        s.ground_stations.emplace_back(id++, city.name(), city.geodetic());
    }
    return s;
}

/// The golden configuration: Starlink S1, Paris -> Luanda, 6 s at
/// 500 ms steps, with a ground-station outage on Paris over [2 s, 4 s)
/// — two deterministic loss = 100% windows in the middle of the
/// schedule. The fault arrives through the scenario's CSV spec, so the
/// exporter and the flowsim rate solve observe the same timeline.
struct GoldenRun {
    core::Scenario scenario;
    fault::FaultSchedule schedule;
    emu::ExportOptions options;

    GoldenRun() : scenario(city_scenario("starlink_s1", {"Paris", "Luanda"})) {
        std::vector<fault::FaultEvent> events;
        events.push_back({fault::FaultKind::kGroundStation, 0, -1,
                          2 * kNsPerSec, 4 * kNsPerSec});
        schedule = fault::FaultSchedule::from_events(
            events, scenario.shell.num_satellites(),
            static_cast<int>(scenario.ground_stations.size()));
        const std::string csv = ::testing::TempDir() + "emu_golden_faults.csv";
        schedule.save_csv(csv);
        scenario.faults = fault::FaultSpec{std::nullopt, csv};

        options.t_end = 6 * kNsPerSec;
        options.step = 500 * kNsPerMs;
    }
};

std::string read_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

TEST(EmuExport, GoldenNetemScript) {
    GoldenRun golden;
    emu::ScheduleExporter exporter(golden.scenario, {{0, 1}}, golden.options);
    const auto& schedules = exporter.run();
    ASSERT_EQ(schedules.size(), 1u);
    const std::string script = emu::render_netem_script(schedules[0]);

    const std::string path =
        std::string(HYPATIA_TEST_DATA_DIR) + "/netem_golden.sh";
    if (std::getenv("HYPATIA_UPDATE_GOLDEN") != nullptr) {
        std::ofstream out(path, std::ios::binary);
        out << script;
        GTEST_SKIP() << "golden updated: " << path;
    }
    EXPECT_EQ(script, read_file(path))
        << "netem renderer output drifted from tests/data/netem_golden.sh "
           "(run with HYPATIA_UPDATE_GOLDEN=1 to regenerate on purpose)";
}

TEST(EmuExport, CrossCheckAgainstFaultScheduleAndFlowsim) {
    GoldenRun golden;

    // Fault-free reference: the pair must be continuously routed, so
    // any severed entry in the faulted run is attributable to the
    // injected outage, not a visibility gap.
    core::Scenario clean = golden.scenario;
    clean.faults.reset();
    emu::ScheduleExporter ref(clean, {{0, 1}}, golden.options);
    for (const auto& e : ref.run()[0].entries) {
        ASSERT_TRUE(e.reachable) << "reference run severed at t=" << e.t;
    }

    emu::ScheduleExporter exporter(golden.scenario, {{0, 1}}, golden.options);
    const auto& entries = exporter.run()[0].entries;
    ASSERT_EQ(entries.size(), 12u);
    ASSERT_NE(exporter.faults(), nullptr);
    for (const auto& e : entries) {
        const bool down = exporter.faults()->gs_down(0, e.t);
        EXPECT_EQ(down, golden.schedule.gs_down(0, e.t));
        EXPECT_EQ(e.reachable, !down) << "t=" << e.t;
        if (down) {
            EXPECT_EQ(e.loss_pct, 100.0);
            EXPECT_EQ(e.rate_bps, 0.0);
            EXPECT_EQ(e.delay_us, 0.0);
            EXPECT_EQ(e.new_next_hop, -1);
        } else {
            EXPECT_EQ(e.loss_pct, 0.0);
            // One CBR flow capped at the 10 Mbit/s link rate, alone on
            // its path: the max-min share is exactly the cap.
            EXPECT_DOUBLE_EQ(e.rate_bps, 10e6);
            EXPECT_GT(e.delay_us, 0.0);
            EXPECT_DOUBLE_EQ(e.rtt_us, 2.0 * e.delay_us);
            EXPECT_GE(e.new_next_hop, 0);
        }
    }
    // The outage boundaries are path changes (routed -> severed and
    // back), and both directions carry the right old/new hops.
    EXPECT_FALSE(entries[3].reachable == entries[4].reachable);
    EXPECT_TRUE(entries[4].path_changed);
    EXPECT_GE(entries[4].old_next_hop, 0);
    EXPECT_EQ(entries[4].new_next_hop, -1);
    EXPECT_TRUE(entries[8].path_changed);
    EXPECT_EQ(entries[8].old_next_hop, -1);
    EXPECT_GE(entries[8].new_next_hop, 0);
}

TEST(EmuExport, ByteIdenticalAcrossThreadsAndSnapshotModes) {
    GoldenRun golden;
    struct Config {
        std::size_t threads;
        const char* mode;
    };
    const std::vector<Config> configs = {{1, "refresh"}, {2, "refresh"},
                                         {8, "refresh"}, {1, "rebuild"},
                                         {2, "rebuild"}, {8, "rebuild"}};
    std::string base_csv, base_jsonl, base_netem;
    for (const auto& config : configs) {
        ScopedEnv mode("HYPATIA_SNAPSHOT_MODE", config.mode);
        util::ThreadPool::set_global_threads(config.threads);
        emu::ScheduleExporter exporter(golden.scenario, {{0, 1}}, golden.options);
        const auto& s = exporter.run()[0];
        const std::string csv = emu::to_csv(s);
        const std::string jsonl = emu::to_jsonl(s);
        const std::string netem = emu::render_netem_script(s);
        if (base_csv.empty()) {
            base_csv = csv;
            base_jsonl = jsonl;
            base_netem = netem;
            continue;
        }
        EXPECT_EQ(csv, base_csv) << config.threads << " threads, " << config.mode;
        EXPECT_EQ(jsonl, base_jsonl)
            << config.threads << " threads, " << config.mode;
        EXPECT_EQ(netem, base_netem)
            << config.threads << " threads, " << config.mode;
    }
    util::ThreadPool::set_global_threads(0);
}

TEST(EmuExport, SweepSeriesMatchesAnalyzePairs) {
    // The exporter's delay series and analyze_pairs' RTTs come from the
    // same PairSweeper — pin the equivalence through the public APIs.
    core::Scenario s = city_scenario("kuiper_k1", {"Paris", "Luanda"});
    const topo::Constellation constellation(s.shell, topo::default_epoch());
    const topo::SatelliteMobility mobility(constellation);
    const auto isls = topo::build_isls(constellation, topo::IslPattern::kPlusGrid);

    viz::PairSeriesOptions vopt;
    vopt.t_end = 2 * kNsPerSec;
    vopt.step = 500 * kNsPerMs;
    const auto series =
        viz::sweep_pair_series(mobility, isls, s.ground_stations, {{0, 1}}, vopt);
    ASSERT_EQ(series.size(), 1u);
    ASSERT_EQ(series[0].size(), 4u);

    std::vector<double> rtts;
    route::AnalysisOptions aopt;
    aopt.t_end = vopt.t_end;
    aopt.step = vopt.step;
    aopt.per_step_observer = [&](TimeNs, int, double rtt_s,
                                 const std::vector<int>&) {
        rtts.push_back(rtt_s);
    };
    route::analyze_pairs(mobility, isls, s.ground_stations, {{0, 1}}, aopt);
    ASSERT_EQ(rtts.size(), series[0].size());
    for (std::size_t i = 0; i < rtts.size(); ++i) {
        EXPECT_EQ(series[0][i].rtt_s, rtts[i]) << "step " << i;
    }
}

TEST(EmuSchedule, NetemRendererDeltaCompression) {
    emu::PairSchedule s;
    s.src_gs = 0;
    s.dst_gs = 1;
    s.src_name = "A";
    s.dst_name = "B";
    s.step = 100 * kNsPerMs;
    auto entry = [](TimeNs t, double delay_us, double loss, double rate) {
        emu::ScheduleEntry e;
        e.t = t;
        e.delay_us = delay_us;
        e.rtt_us = 2 * delay_us;
        e.loss_pct = loss;
        e.rate_bps = rate;
        e.reachable = loss == 0.0;
        return e;
    };
    // Two identical steps merge into one tc + a combined sleep; the
    // severed step renders loss 100% with no rate clause.
    s.entries.push_back(entry(0, 12000.4, 0.0, 10e6));
    s.entries.push_back(entry(100 * kNsPerMs, 12000.4, 0.0, 10e6));
    s.entries.push_back(entry(200 * kNsPerMs, 0.0, 100.0, 0.0));

    const std::string script = emu::render_netem_script(s);
    EXPECT_NE(script.find("#!/bin/sh"), std::string::npos);
    EXPECT_NE(script.find("DEV=\"${DEV:-eth0}\"\n"), std::string::npos);
    EXPECT_NE(script.find("tc qdisc replace dev \"$DEV\" root netem "
                          "delay 12000us loss 0% rate 10000000bit\nsleep 0.200\n"),
              std::string::npos);
    EXPECT_NE(script.find("tc qdisc replace dev \"$DEV\" root netem "
                          "delay 0us loss 100%\nsleep 0.100\n"),
              std::string::npos);
    EXPECT_NE(script.find("tc qdisc del dev \"$DEV\" root"), std::string::npos);

    emu::NetemOptions raw;
    raw.delta_compress = false;
    const std::string uncompressed = emu::render_netem_script(s, raw);
    EXPECT_NE(uncompressed.find("sleep 0.100\ntc qdisc replace"),
              std::string::npos);
}

TEST(EmuSchedule, CsvAndJsonlShape) {
    emu::PairSchedule s;
    s.src_name = "Paris";
    s.dst_name = "Luanda";
    emu::ScheduleEntry e;
    e.t = 100 * kNsPerMs;
    e.delay_us = 10.5;
    e.rtt_us = 21.0;
    e.loss_pct = 0.0;
    e.rate_bps = 10e6;
    e.reachable = true;
    e.path_changed = true;
    e.old_next_hop = 7;
    e.new_next_hop = 9;
    s.entries.push_back(e);

    EXPECT_EQ(emu::to_csv(s),
              "t_s,delay_us,rtt_us,loss_pct,rate_bps,reachable,path_changed,"
              "old_next_hop,new_next_hop\n"
              "0.100000,10.500,21.000,0,10000000,1,1,7,9\n");
    EXPECT_EQ(emu::to_jsonl(s),
              "{\"src\":\"Paris\",\"dst\":\"Luanda\",\"t_s\":0.100000,"
              "\"delay_us\":10.500,\"rtt_us\":21.000,\"loss_pct\":0,"
              "\"rate_bps\":10000000,\"reachable\":true,\"path_changed\":true,"
              "\"old_next_hop\":7,\"new_next_hop\":9}\n");
    EXPECT_EQ(s.path_changes(), 1);
}

TEST(EmuRealtime, SpeedFromEnv) {
    ::unsetenv("HYPATIA_REALTIME");
    EXPECT_FALSE(emu::realtime_speed_from_env().has_value());
    {
        ScopedEnv env("HYPATIA_REALTIME", "0");
        EXPECT_FALSE(emu::realtime_speed_from_env().has_value());
    }
    {
        ScopedEnv env("HYPATIA_REALTIME", "2.5");
        const auto speed = emu::realtime_speed_from_env();
        ASSERT_TRUE(speed.has_value());
        EXPECT_DOUBLE_EQ(*speed, 2.5);
    }
    {
        ScopedEnv env("HYPATIA_REALTIME", "fast");
        EXPECT_FALSE(emu::realtime_speed_from_env().has_value());
    }
}

TEST(EmuRealtime, PacedRunMatchesBatchAndServesSchedule) {
    core::Scenario s = city_scenario("kuiper_k1", {"Paris", "Luanda"});
    emu::ExportOptions eopt;
    eopt.t_end = 1 * kNsPerSec;
    eopt.step = 100 * kNsPerMs;

    emu::ScheduleExporter batch(s, {{0, 1}}, eopt);
    const auto& batch_schedules = batch.run();

    bool queried = false;
    emu::PacerOptions popt;
    popt.speed = 50.0;  // paced, but 50x wall speed keeps the test fast
    popt.on_epoch = [&](std::size_t i, TimeNs) {
        if (i + 1 != 10) return;
        queried = true;
        // The live endpoint serves the exporter's state mid-run.
        const auto index = obs::IntrospectionServer::handle("/schedule");
        EXPECT_EQ(index.status, 200);
        EXPECT_NE(index.body.find("0,1,Paris,Luanda,"), std::string::npos);
        const auto csv = obs::IntrospectionServer::handle(
            "/schedule?src=Paris&dst=Luanda&format=csv");
        EXPECT_EQ(csv.status, 200);
        EXPECT_NE(csv.body.find("t_s,delay_us"), std::string::npos);
        const auto jsonl = obs::IntrospectionServer::handle(
            "/schedule?src=0&dst=1&format=jsonl");
        EXPECT_EQ(jsonl.status, 200);
        EXPECT_NE(jsonl.body.find("\"src\":\"Paris\""), std::string::npos);
        const auto missing =
            obs::IntrospectionServer::handle("/schedule?src=1&dst=0");
        EXPECT_EQ(missing.status, 404);
    };

    emu::RealtimePacer pacer(s, {{0, 1}}, eopt, popt);
    const emu::PacerReport report = pacer.run();
    EXPECT_TRUE(queried);
    EXPECT_EQ(report.epochs, 10u);
    EXPECT_GT(report.realtime_factor, 0.0);
    EXPECT_GE(report.wall_s, report.busy_s);

    // Paced and batch schedules are byte-identical.
    ASSERT_EQ(report.schedules.size(), batch_schedules.size());
    for (std::size_t i = 0; i < batch_schedules.size(); ++i) {
        EXPECT_EQ(emu::to_csv(report.schedules[i]),
                  emu::to_csv(batch_schedules[i]));
        EXPECT_EQ(emu::to_jsonl(report.schedules[i]),
                  emu::to_jsonl(batch_schedules[i]));
    }

    // The handler unregisters when run() finishes: /schedule 404s and
    // the hint lists only the built-in routes again.
    const auto after = obs::IntrospectionServer::handle("/schedule");
    EXPECT_EQ(after.status, 404);
    EXPECT_NE(after.body.find("/metrics"), std::string::npos);
}

TEST(EmuRealtime, FreeRunSkipsSleeping) {
    core::Scenario s = city_scenario("kuiper_k1", {"Paris", "Luanda"});
    emu::ExportOptions eopt;
    eopt.t_end = 1 * kNsPerSec;
    eopt.step = 100 * kNsPerMs;
    emu::PacerOptions popt;
    popt.speed = 0.0;
    popt.serve_schedule = false;
    emu::RealtimePacer pacer(s, {{0, 1}}, eopt, popt);
    const emu::PacerReport report = pacer.run();
    EXPECT_EQ(report.epochs, 10u);
    EXPECT_EQ(report.deadline_misses, 0u);
    // No pacing: a 1 s window must finish in far less than 1 s of wall
    // time (bounded generously for loaded CI machines).
    EXPECT_LT(report.wall_s, 5.0);
    EXPECT_EQ(obs::IntrospectionServer::handle("/schedule").status, 404);
}

}  // namespace
}  // namespace hypatia
