// Property-based sweeps over the routing substrate on real constellation
// snapshots: loop freedom, distance symmetry, Dijkstra = Floyd-Warshall
// equivalence, and triangle-style sanity on every Table-1 first shell.
#include <random>

#include <gtest/gtest.h>

#include "src/routing/forwarding.hpp"
#include "src/routing/shortest_path.hpp"
#include "src/topology/cities.hpp"

namespace hypatia::route {
namespace {

struct ShellCase {
    std::string shell;
    TimeNs t;
};

class RoutingOnSnapshots : public ::testing::TestWithParam<ShellCase> {
  protected:
    void SetUp() override {
        const auto& param = GetParam();
        constellation_ = std::make_unique<topo::Constellation>(
            topo::shell_by_name(param.shell), topo::default_epoch());
        mobility_ = std::make_unique<topo::SatelliteMobility>(*constellation_);
        isls_ = topo::build_isls(*constellation_, topo::IslPattern::kPlusGrid);
        gses_ = topo::top100_cities();
        graph_ = std::make_unique<Graph>(
            build_snapshot(*mobility_, isls_, gses_, param.t));
    }

    std::unique_ptr<topo::Constellation> constellation_;
    std::unique_ptr<topo::SatelliteMobility> mobility_;
    std::vector<topo::Isl> isls_;
    std::vector<orbit::GroundStation> gses_;
    std::unique_ptr<Graph> graph_;
};

TEST_P(RoutingOnSnapshots, ForwardingIsLoopFree) {
    // Follow next hops from every node toward a handful of destinations.
    for (int dst_gs : {0, 23, 75}) {
        const int dst = graph_->gs_node(dst_gs);
        const auto tree = dijkstra_to(*graph_, dst);
        for (int start = 0; start < graph_->num_nodes(); start += 13) {
            if (tree.next_hop[static_cast<std::size_t>(start)] < 0) continue;
            int node = start;
            int steps = 0;
            while (node != dst) {
                node = tree.next_hop[static_cast<std::size_t>(node)];
                ASSERT_GE(node, 0);
                ASSERT_LE(++steps, graph_->num_nodes()) << "loop from " << start;
            }
        }
    }
}

TEST_P(RoutingOnSnapshots, DistanceSymmetric) {
    // The graph is undirected, so dist(a->b) == dist(b->a).
    const int a = graph_->gs_node(3);
    const int b = graph_->gs_node(42);
    const auto tree_a = dijkstra_to(*graph_, a);
    const auto tree_b = dijkstra_to(*graph_, b);
    const double ab = tree_b.distance_km[static_cast<std::size_t>(a)];
    const double ba = tree_a.distance_km[static_cast<std::size_t>(b)];
    if (ab == kInfDistance) {
        EXPECT_EQ(ba, kInfDistance);
    } else {
        EXPECT_NEAR(ab, ba, 1e-6);
    }
}

TEST_P(RoutingOnSnapshots, PathDistanceMatchesEdgeSum) {
    const int dst = graph_->gs_node(10);
    const auto tree = dijkstra_to(*graph_, dst);
    for (int src_gs : {5, 60, 99}) {
        const int src = graph_->gs_node(src_gs);
        const auto path = extract_path(tree, src);
        if (path.empty()) continue;
        double total = 0.0;
        for (std::size_t i = 0; i + 1 < path.size(); ++i) {
            double edge = kInfDistance;
            for (const auto& e : graph_->neighbors(path[i])) {
                if (e.to == path[i + 1]) edge = std::min(edge, e.distance_km);
            }
            ASSERT_NE(edge, kInfDistance) << "path uses a non-edge";
            total += edge;
        }
        EXPECT_NEAR(total, tree.distance_km[static_cast<std::size_t>(src)], 1e-6);
    }
}

TEST_P(RoutingOnSnapshots, DistanceAtLeastChord) {
    // No network path can beat the straight-line chord between endpoints.
    const int dst = graph_->gs_node(7);
    const auto tree = dijkstra_to(*graph_, dst);
    for (int src_gs = 0; src_gs < 100; src_gs += 7) {
        if (src_gs == 7) continue;
        const int src = graph_->gs_node(src_gs);
        const double d = tree.distance_km[static_cast<std::size_t>(src)];
        if (d == kInfDistance) continue;
        const double chord = gses_[static_cast<std::size_t>(src_gs)].ecef().distance_to(
            gses_[7].ecef());
        EXPECT_GE(d, chord - 1e-6);
    }
}

TEST_P(RoutingOnSnapshots, SubpathsAreShortestPaths) {
    // Every node on a shortest path has distance = remaining path length
    // (optimal substructure of the Dijkstra tree).
    const int dst = graph_->gs_node(50);
    const auto tree = dijkstra_to(*graph_, dst);
    const auto path = extract_path(tree, graph_->gs_node(2));
    for (std::size_t i = 1; i + 1 < path.size(); ++i) {
        EXPECT_LT(tree.distance_km[static_cast<std::size_t>(path[i])],
                  tree.distance_km[static_cast<std::size_t>(path[i - 1])]);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shells, RoutingOnSnapshots,
    ::testing::Values(ShellCase{"telesat_t1", 0}, ShellCase{"telesat_t1", 90 * kNsPerSec},
                      ShellCase{"kuiper_k1", 0}, ShellCase{"kuiper_k1", 50 * kNsPerSec},
                      ShellCase{"starlink_s1", 30 * kNsPerSec}),
    [](const auto& info) {
        return info.param.shell + "_t" +
               std::to_string(info.param.t / kNsPerSec);
    });

TEST(RoutingSmallGraphEquivalence, DijkstraMatchesFloydWarshallOnTelesat) {
    // Full all-pairs equivalence on the smallest real shell.
    const topo::Constellation c(topo::shell_by_name("telesat_t1"),
                                topo::default_epoch());
    const topo::SatelliteMobility mob(c);
    const auto isls = topo::build_isls(c, topo::IslPattern::kPlusGrid);
    std::vector<orbit::GroundStation> gses = {topo::city_by_name("Paris"),
                                              topo::city_by_name("Nairobi"),
                                              topo::city_by_name("Sydney")};
    const auto g = build_snapshot(mob, isls, gses, 12 * kNsPerSec);
    const auto fw = floyd_warshall(g);
    for (int gi = 0; gi < 3; ++gi) {
        const int dst = g.gs_node(gi);
        const auto tree = dijkstra_to(g, dst);
        for (int src = 0; src < g.num_nodes(); ++src) {
            const double fw_d = fw[static_cast<std::size_t>(src)][static_cast<std::size_t>(dst)];
            const double dj_d = tree.distance_km[static_cast<std::size_t>(src)];
            if (fw_d == kInfDistance) {
                EXPECT_EQ(dj_d, kInfDistance);
            } else {
                EXPECT_NEAR(dj_d, fw_d, 1e-6) << src << "->" << dst;
            }
        }
    }
}

}  // namespace
}  // namespace hypatia::route
