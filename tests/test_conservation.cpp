// Network-wide conservation invariants on the full LEO simulation:
// every packet sent is delivered, dropped (queue / no-route / TTL), or
// still in flight when the simulation ends — nothing is silently lost or
// duplicated.
#include <gtest/gtest.h>

#include "src/core/experiment.hpp"
#include "src/sim/ping_app.hpp"
#include "src/sim/udp_app.hpp"
#include "src/topology/cities.hpp"

namespace hypatia::core {
namespace {

Scenario small() {
    Scenario s;
    s.shell = topo::shell_by_name("kuiper_k1");
    s.ground_stations = {topo::city_by_name("Manila"), topo::city_by_name("Dalian"),
                         topo::city_by_name("Tokyo"), topo::city_by_name("Seoul")};
    return s;
}

TEST(Conservation, UdpAccountingBalances) {
    LeoNetwork leo(small());
    auto flows = attach_udp_flows(leo, {{0, 1}, {2, 3}}, 5 * kNsPerSec);
    leo.run(6 * kNsPerSec);  // 1 s of drain time after senders stop

    std::uint64_t sent = 0, received = 0;
    for (const auto& f : flows) {
        sent += f->sent_packets();
        received += f->received_packets();
    }
    std::uint64_t dropped = leo.network().total_queue_drops() +
                            leo.network().total_no_route_drops();
    // After the drain window nothing is in flight: sent == recv + dropped.
    EXPECT_EQ(sent, received + dropped);
}

TEST(Conservation, NoDuplicateUdpDelivery) {
    LeoNetwork leo(small());
    auto flows = attach_udp_flows(leo, {{0, 1}}, 3 * kNsPerSec);
    leo.run(4 * kNsPerSec);
    EXPECT_LE(flows[0]->received_packets(), flows[0]->sent_packets());
}

TEST(Conservation, PingRepliesNeverExceedProbes) {
    LeoNetwork leo(small());
    leo.add_destination(0);
    leo.add_destination(1);
    sim::PingApp::Config cfg;
    cfg.flow_id = 3;
    cfg.src_node = leo.gs_node(0);
    cfg.dst_node = leo.gs_node(1);
    cfg.interval = 10 * kNsPerMs;
    cfg.stop = 5 * kNsPerSec;
    sim::PingApp ping(leo.network(), cfg);
    leo.run(6 * kNsPerSec);
    EXPECT_LE(ping.replies(), ping.sent());
    // Each sample replied at most once.
    std::uint64_t replied = 0;
    for (const auto& s : ping.samples()) {
        if (s.replied) ++replied;
    }
    EXPECT_EQ(replied, ping.replies());
}

TEST(Conservation, TcpDeliveredBytesMatchSegments) {
    LeoNetwork leo(small());
    auto flows = attach_tcp_flows(leo, {{0, 1}}, "newreno");
    leo.run(5 * kNsPerSec);
    const auto& f = *flows[0];
    EXPECT_EQ(f.delivered_bytes(), f.delivered_segments() * f.mss());
    // Cumulative ACK semantics: delivered (in-order) >= snd_una is
    // impossible; acknowledged data was delivered.
    EXPECT_GE(f.delivered_segments(), f.snd_una() > 0 ? f.snd_una() - 1 : 0);
}

TEST(Conservation, QueueDropsOnlyUnderOverload) {
    LeoNetwork leo(small());
    // A single 10 Mbit/s-paced UDP flow on 10 Mbit/s links: at most the
    // occasional drop at path changes, no systematic loss.
    auto flows = attach_udp_flows(leo, {{0, 1}}, 5 * kNsPerSec);
    leo.run(6 * kNsPerSec);
    EXPECT_LT(leo.network().total_queue_drops(), 20u);
    const double loss_rate =
        1.0 - static_cast<double>(flows[0]->received_packets()) /
                  static_cast<double>(flows[0]->sent_packets());
    EXPECT_LT(loss_rate, 0.01);
}

}  // namespace
}  // namespace hypatia::core
