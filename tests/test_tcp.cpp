#include "src/sim/tcp_socket.hpp"

#include <algorithm>

#include <gtest/gtest.h>

namespace hypatia::sim {
namespace {

// gs0 --GSL-- sat1 --ISL-- sat2 --GSL-- gs3, configurable delay/rate.
struct TcpNet {
    Simulator sim;
    Network net{sim};

    explicit TcpNet(TimeNs link_delay = 4 * kNsPerMs, double rate = 1e7,
                    std::size_t qcap = 100) {
        net.create_nodes(4);
        auto delay = [link_delay](int, int, TimeNs) { return link_delay; };
        for (int n = 0; n < 4; ++n) net.add_gsl(n, rate, qcap, delay);
        net.add_isl(1, 2, rate, qcap, delay);
        net.node(0).set_next_hop(3, 1);
        net.node(1).set_next_hop(3, 2);
        net.node(2).set_next_hop(3, 3);
        net.node(3).set_next_hop(0, 2);
        net.node(2).set_next_hop(0, 1);
        net.node(1).set_next_hop(0, 0);
    }

    TcpConfig config() {
        TcpConfig cfg;
        cfg.flow_id = 1;
        cfg.src_node = 0;
        cfg.dst_node = 3;
        return cfg;
    }
};

TEST(TcpNewReno, SaturatesTheLink) {
    TcpNet t;
    auto cfg = t.config();
    cfg.initial_ssthresh = 40.0;  // skip the lossy slow-start overshoot
    TcpFlow flow(t.net, cfg, make_newreno());
    t.sim.run_until(20 * kNsPerSec);
    // 10 Mbit/s wire with 1500 B packets and 1440 B payload => max goodput
    // 9.6 Mbit/s. Expect > 85% of it over 20 s including slow start.
    const double goodput =
        static_cast<double>(flow.delivered_bytes()) * 8.0 / 20.0;
    EXPECT_GT(goodput, 0.85 * 9.6e6);
}

TEST(TcpNewReno, DeliversInOrderExactly) {
    TcpNet t;
    auto cfg = t.config();
    cfg.max_segments = 500;
    TcpFlow flow(t.net, cfg, make_newreno());
    t.sim.run_until(30 * kNsPerSec);
    EXPECT_EQ(flow.delivered_segments(), 500u);
}

TEST(TcpNewReno, CwndOscillatesBetweenBdpAndBdpPlusQueue) {
    // RTT = 6 links x 4 ms = 24 ms (+ serialization). BDP at 10 Mbit/s
    // ~= 20 segments of 1500 B; queue = 100 packets. NewReno should cycle
    // between ~BDP and BDP+Q (paper Fig 4).
    TcpNet t;
    auto cfg = t.config();
    cfg.initial_ssthresh = 60.0;
    TcpFlow flow(t.net, cfg, make_newreno());
    t.sim.run_until(120 * kNsPerSec);
    double max_cwnd = 0.0;
    for (const auto& s : flow.cwnd_trace()) {
        if (s.t > 20 * kNsPerSec) max_cwnd = std::max(max_cwnd, s.cwnd);
    }
    // Max in-flight without drops ~ BDP + Q ~ 120; cwnd peaks near there.
    EXPECT_GT(max_cwnd, 90.0);
    EXPECT_LT(max_cwnd, 200.0);
    EXPECT_GT(flow.fast_retransmits(), 0u);  // repeated buffer overflows
}

TEST(TcpNewReno, RttInflatesWithQueueFill) {
    TcpNet t;
    TcpFlow flow(t.net, t.config(), make_newreno());
    t.sim.run_until(60 * kNsPerSec);
    TimeNs min_rtt = std::numeric_limits<TimeNs>::max();
    TimeNs max_rtt = 0;
    for (const auto& s : flow.rtt_trace()) {
        min_rtt = std::min(min_rtt, s.rtt);
        max_rtt = std::max(max_rtt, s.rtt);
    }
    // Base RTT ~24 ms; full queue adds 100 x 1.2 ms = 120 ms.
    EXPECT_LT(ns_to_ms(min_rtt), 32.0);
    EXPECT_GT(ns_to_ms(max_rtt), 90.0);
}

TEST(TcpNewReno, RecoversAfterBlackhole) {
    // Simulate the St. Petersburg disconnection: no route for 3 seconds.
    TcpNet t;
    TcpFlow flow(t.net, t.config(), make_newreno());
    t.sim.schedule_at(5 * kNsPerSec, [&t]() { t.net.node(0).set_next_hop(3, -1); });
    t.sim.schedule_at(8 * kNsPerSec, [&t]() { t.net.node(0).set_next_hop(3, 1); });
    t.sim.run_until(20 * kNsPerSec);
    EXPECT_GT(flow.timeouts(), 0u);
    // Delivery resumes: substantial data lands after reconnection.
    const auto delivered_after =
        static_cast<double>(flow.delivered_bytes()) * 8.0;
    EXPECT_GT(delivered_after, 5e7);  // >50 Mbit over the up periods
}

TEST(TcpNewReno, ReorderingTriggersSpuriousFastRetransmit) {
    // The paper's section 4.1/4.2 reordering mechanism: when forwarding
    // state changes, packets already in flight take a detour over what is
    // no longer the shortest path, while packets sent after the change use
    // the new shorter path and arrive first. The resulting duplicate ACKs
    // halve the window although nothing was lost.
    Simulator sim;
    Network net(sim);
    net.create_nodes(4);
    auto gsl_delay = [](int, int, TimeNs) { return TimeNs{2 * kNsPerMs}; };
    // Data direction: 25 ms before the change; packets transmitted in the
    // 6 ms after it detour (40 ms); later ones take the new short path
    // (5 ms). The ACK path keeps a constant delay.
    const TimeNs change = 5 * kNsPerSec;
    auto isl_delay_fn = [change](int from, int, TimeNs t) {
        if (from != 1) return TimeNs{25 * kNsPerMs};
        if (t < change) return TimeNs{25 * kNsPerMs};
        if (t < change + 6 * kNsPerMs) return TimeNs{40 * kNsPerMs};
        return TimeNs{5 * kNsPerMs};
    };
    for (int n = 0; n < 4; ++n) net.add_gsl(n, 1e7, 100, gsl_delay);
    net.add_isl(1, 2, 1e7, 100, isl_delay_fn);
    net.node(0).set_next_hop(3, 1);
    net.node(1).set_next_hop(3, 2);
    net.node(2).set_next_hop(3, 3);
    net.node(3).set_next_hop(0, 2);
    net.node(2).set_next_hop(0, 1);
    net.node(1).set_next_hop(0, 0);
    TcpConfig cfg;
    cfg.flow_id = 1;
    cfg.src_node = 0;
    cfg.dst_node = 3;
    cfg.initial_ssthresh = 40.0;  // clean convergence before the change
    TcpFlow flow(net, cfg, make_newreno());
    sim.run_until(10 * kNsPerSec);
    EXPECT_GT(flow.dup_acks_received(), 0u);
    EXPECT_GT(flow.fast_retransmits(), 0u);
    EXPECT_EQ(flow.timeouts(), 0u);  // no real loss, no RTO
}

TEST(TcpVegas, KeepsQueueNearlyEmpty) {
    TcpNet t;
    auto cfg = t.config();
    cfg.initial_ssthresh = 40.0;
    TcpFlow flow(t.net, cfg, make_vegas());
    t.sim.run_until(30 * kNsPerSec);
    // Vegas targets alpha..beta backlog segments; RTT stays near base.
    TimeNs max_rtt = 0;
    for (const auto& s : flow.rtt_trace()) {
        if (s.t > 10 * kNsPerSec) max_rtt = std::max(max_rtt, s.rtt);
    }
    EXPECT_LT(ns_to_ms(max_rtt), 60.0);  // far below the 144 ms full-queue RTT
}

TEST(TcpVegas, StillAchievesGoodThroughput) {
    TcpNet t;
    TcpFlow flow(t.net, t.config(), make_vegas());
    t.sim.run_until(30 * kNsPerSec);
    const double goodput = static_cast<double>(flow.delivered_bytes()) * 8.0 / 30.0;
    EXPECT_GT(goodput, 0.7 * 9.6e6);
}

TEST(TcpVegas, CollapsesWhenPropagationDelayRises) {
    // The paper's Fig 5: a propagation-delay increase (no queueing) reads
    // as congestion to Vegas; cwnd is cut and throughput collapses.
    Simulator sim;
    Network net(sim);
    net.create_nodes(4);
    TimeNs isl_delay = 5 * kNsPerMs;
    auto gsl_delay = [](int, int, TimeNs) { return TimeNs{2 * kNsPerMs}; };
    auto isl_delay_fn = [&isl_delay](int, int, TimeNs) { return isl_delay; };
    for (int n = 0; n < 4; ++n) net.add_gsl(n, 1e7, 100, gsl_delay);
    net.add_isl(1, 2, 1e7, 100, isl_delay_fn);
    net.node(0).set_next_hop(3, 1);
    net.node(1).set_next_hop(3, 2);
    net.node(2).set_next_hop(3, 3);
    net.node(3).set_next_hop(0, 2);
    net.node(2).set_next_hop(0, 1);
    net.node(1).set_next_hop(0, 0);
    TcpConfig cfg;
    cfg.flow_id = 1;
    cfg.src_node = 0;
    cfg.dst_node = 3;
    cfg.delayed_ack = false;
    TcpFlow flow(net, cfg, make_vegas());
    flow.enable_delivery_bins(1 * kNsPerSec, 40 * kNsPerSec);
    sim.schedule_at(15 * kNsPerSec, [&isl_delay]() { isl_delay = 20 * kNsPerMs; });
    sim.run_until(40 * kNsPerSec);
    const auto rates = flow.delivery_rate_bps();
    // Average throughput in (5..14 s) vs (25..39 s): collapse by > 3x.
    double before = 0.0, after = 0.0;
    for (int i = 5; i < 14; ++i) before += rates[static_cast<std::size_t>(i)] / 9.0;
    for (int i = 25; i < 39; ++i) after += rates[static_cast<std::size_t>(i)] / 14.0;
    EXPECT_GT(before, 3.0 * after);
}

TEST(TcpFlow, DelayedAckReducesAckCount) {
    TcpNet t1, t2;
    auto cfg1 = t1.config();
    cfg1.delayed_ack = true;
    auto cfg2 = t2.config();
    cfg2.delayed_ack = false;
    cfg1.max_segments = 200;
    cfg2.max_segments = 200;
    TcpFlow f1(t1.net, cfg1, make_newreno());
    TcpFlow f2(t2.net, cfg2, make_newreno());
    t1.sim.run_until(30 * kNsPerSec);
    t2.sim.run_until(30 * kNsPerSec);
    EXPECT_EQ(f1.delivered_segments(), 200u);
    EXPECT_EQ(f2.delivered_segments(), 200u);
    // ACK packets arriving at the sender: compare via node counters.
    EXPECT_LT(t1.net.node(0).delivered_packets(),
              t2.net.node(0).delivered_packets());
}

TEST(TcpFlow, LimitedTransferStopsCleanly) {
    TcpNet t;
    auto cfg = t.config();
    cfg.max_segments = 10;
    TcpFlow flow(t.net, cfg, make_newreno());
    t.sim.run_until(10 * kNsPerSec);
    EXPECT_EQ(flow.delivered_segments(), 10u);
    EXPECT_EQ(flow.flight_size(), 0u);
}

TEST(TcpFlow, CwndTraceMonotoneTimestamps) {
    TcpNet t;
    TcpFlow flow(t.net, t.config(), make_newreno());
    t.sim.run_until(5 * kNsPerSec);
    const auto& trace = flow.cwnd_trace();
    ASSERT_FALSE(trace.empty());
    for (std::size_t i = 1; i < trace.size(); ++i) {
        EXPECT_LE(trace[i - 1].t, trace[i].t);
        EXPECT_GE(trace[i].cwnd, 1.0);
    }
}

}  // namespace
}  // namespace hypatia::sim
