# Gnuplot recipes for the paper's figures, fed by the CSV series that the
# bench binaries drop into bench_output/ (run the benches first).
#
#   gnuplot -c plots/plot_figures.gp
#
# PNGs land next to the CSVs in bench_output/.

set datafile separator ","
set terminal pngcairo size 900,540 font "sans,11"
set grid

# ---- Fig 3: RTT fluctuations (one panel per pair) ---------------------
do for [pair in "Rio_Sai Man_Dal Ist_Nai"] {
    set output sprintf("bench_output/fig03_%s.png", pair)
    set title sprintf("Fig 3 — RTT fluctuations (%s)", pair)
    set xlabel "time (s)"
    set ylabel "RTT (ms)"
    plot sprintf("bench_output/fig03_tcp_%s.csv", pair)      skip 1 using 1:2 with dots  lc rgb "#88cc88" title "TCP", \
         sprintf("bench_output/fig03_ping_%s.csv", pair)     skip 1 using 1:2 with dots  lc rgb "#4477cc" title "Pings", \
         sprintf("bench_output/fig03_computed_%s.csv", pair) skip 1 using 1:2 with lines lc rgb "#cc4444" lw 2 title "Computed"
}

# ---- Fig 4: cwnd vs BDP / BDP+Q ---------------------------------------
do for [pair in "Rio_Sai Man_Dal Ist_Nai"] {
    set output sprintf("bench_output/fig04_%s.png", pair)
    set title sprintf("Fig 4 — congestion window (%s)", pair)
    set xlabel "time (s)"
    set ylabel "packets"
    plot sprintf("bench_output/fig04_cwnd_%s.csv", pair) skip 1 using 1:2 with lines lc rgb "#4477cc" title "CWND", \
         sprintf("bench_output/fig04_bdp_%s.csv", pair)  skip 1 using 1:2 with lines lc rgb "#888888" title "BDP", \
         sprintf("bench_output/fig04_bdp_%s.csv", pair)  skip 1 using 1:3 with lines lc rgb "#cc8844" title "BDP+Q"
}

# ---- Fig 5: NewReno vs Vegas ------------------------------------------
set output "bench_output/fig05_rate.png"
set title "Fig 5(c) — throughput, Rio de Janeiro - St. Petersburg"
set xlabel "time (s)"
set ylabel "throughput (Mbit/s)"
plot "bench_output/fig05_rate_newreno.csv" skip 1 using 1:2 with lines lw 2 title "NewReno", \
     "bench_output/fig05_rate_vegas.csv"   skip 1 using 1:2 with lines lw 2 title "Vegas"

# ---- Fig 6: max RTT / geodesic CDF ------------------------------------
set output "bench_output/fig06.png"
set title "Fig 6 — max RTT / geodesic RTT (CDF across pairs)"
set xlabel "max RTT / geodesic RTT"
set ylabel "ECDF (pairs)"
set xrange [1:7]
plot "bench_output/fig06_rtt_vs_geodesic.csv" skip 1 using ($1==0?$2:1/0):3 with lines lw 2 title "Telesat T1", \
     ""                                        skip 1 using ($1==1?$2:1/0):3 with lines lw 2 title "Kuiper K1", \
     ""                                        skip 1 using ($1==2?$2:1/0):3 with lines lw 2 title "Starlink S1"
unset xrange

# ---- Fig 10: unused bandwidth ------------------------------------------
set output "bench_output/fig10.png"
set title "Fig 10 — unused bandwidth, Rio de Janeiro - St. Petersburg"
set xlabel "time (s)"
set ylabel "unused bandwidth (Mbit/s)"
set yrange [0:10.5]
plot "bench_output/fig10_unused_bandwidth.csv" skip 1 using 1:($2<0?1/0:$2) with lines lw 2 lc rgb "#4477cc" title "dynamic constellation", \
     ""                                         skip 1 using 1:($3<0?1/0:$3) with lines lw 1 lc rgb "#999999" title "frozen at t=0"
unset yrange

# ---- Extension: BBR vs NewReno vs Vegas --------------------------------
set output "bench_output/ext_bbr.png"
set title "Extension — congestion control on a LEO path"
set xlabel "time (s)"
set ylabel "throughput (Mbit/s)"
plot "bench_output/ext_bbr_rate_newreno.csv" skip 1 using 1:2 with lines lw 2 title "NewReno", \
     "bench_output/ext_bbr_rate_vegas.csv"   skip 1 using 1:2 with lines lw 2 title "Vegas", \
     "bench_output/ext_bbr_rate_bbr.csv"     skip 1 using 1:2 with lines lw 2 title "BBR"

print "PNG figures written to bench_output/"
