// Shared plumbing for the figure-reproduction benches: argument handling
// (every bench accepts --duration-s / --step-ms / --paper overrides),
// output file placement, and small printing helpers.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "src/obs/manifest.hpp"
#include "src/obs/observability.hpp"
#include "src/util/cli.hpp"
#include "src/util/csv.hpp"
#include "src/util/stats.hpp"
#include "src/util/units.hpp"

namespace hypatia::bench {

/// Directory where benches drop their CSV/JSON artifacts.
inline std::string out_dir() { return "bench_output"; }

inline std::string out_path(const std::string& name) {
    return util::output_path(out_dir(), name);
}

/// Standard bench knobs. Each bench documents its own defaults; --paper
/// switches to the full-scale parameters of the publication (slower).
///
/// Every bench also emits bench_output/run_manifest.json on exit: the
/// resolved knobs, the profiler's per-phase wall-clock breakdown
/// (propagation / routing / event loop) and a snapshot of all registered
/// metrics — see src/obs/manifest.hpp.
struct BenchArgs {
    util::Cli cli;
    bool paper;
    obs::RunManifest manifest;

    BenchArgs(int argc, char** argv) : cli(argc, argv), paper(cli.get_bool("paper")) {
        std::string name = argc > 0 && argv[0] != nullptr ? argv[0] : "bench";
        const auto slash = name.find_last_of('/');
        if (slash != std::string::npos) name = name.substr(slash + 1);
        manifest.set_name(name);
        manifest.stamp_environment();
        manifest.set_param("paper", paper ? "true" : "false");
        cli.describe("paper", "full-scale publication parameters (slower)");
        cli.describe("duration-s", "virtual duration in seconds");
        cli.describe("step-ms", "time-step granularity in milliseconds");
    }

    /// Call once every bench-specific flag has been read: --help prints
    /// the auto-generated flag list and exits 0; an unknown flag exits 2.
    void finish_flags(const std::string& summary = "") const {
        cli.finish(manifest.name(), summary);
    }

    ~BenchArgs() {
        manifest.capture(obs::profiler(), obs::metrics());
        manifest.write(out_path("run_manifest.json"));
    }

    double duration_s(double fast_default, double paper_default) {
        const double v = cli.get_double("duration-s", paper ? paper_default : fast_default);
        manifest.set_param("duration_s", v);
        return v;
    }
    double step_ms(double fast_default, double paper_default) {
        const double v = cli.get_double("step-ms", paper ? paper_default : fast_default);
        manifest.set_param("step_ms", v);
        return v;
    }
};

inline void print_header(const std::string& title) {
    std::printf("==============================================================\n");
    std::printf("%s\n", title.c_str());
    std::printf("==============================================================\n");
}

/// Prints an ECDF as two columns (value, fraction), thinned for terminals.
inline void print_ecdf(const std::string& label, std::vector<double> values,
                       std::size_t max_points = 12) {
    const auto points = util::ecdf(std::move(values), max_points);
    std::printf("%s (ECDF: value fraction)\n", label.c_str());
    for (const auto& p : points) std::printf("  %10.4f  %6.3f\n", p.x, p.fraction);
}

}  // namespace hypatia::bench
