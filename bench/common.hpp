// Shared plumbing for the figure-reproduction benches: argument handling
// (every bench accepts --duration-s / --step-ms / --paper overrides),
// output file placement, and small printing helpers.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "src/util/cli.hpp"
#include "src/util/csv.hpp"
#include "src/util/stats.hpp"
#include "src/util/units.hpp"

namespace hypatia::bench {

/// Directory where benches drop their CSV/JSON artifacts.
inline std::string out_dir() { return "bench_output"; }

inline std::string out_path(const std::string& name) {
    return util::output_path(out_dir(), name);
}

/// Standard bench knobs. Each bench documents its own defaults; --paper
/// switches to the full-scale parameters of the publication (slower).
struct BenchArgs {
    util::Cli cli;
    bool paper;

    BenchArgs(int argc, char** argv) : cli(argc, argv), paper(cli.get_bool("paper")) {}

    double duration_s(double fast_default, double paper_default) const {
        return cli.get_double("duration-s", paper ? paper_default : fast_default);
    }
    double step_ms(double fast_default, double paper_default) const {
        return cli.get_double("step-ms", paper ? paper_default : fast_default);
    }
};

inline void print_header(const std::string& title) {
    std::printf("==============================================================\n");
    std::printf("%s\n", title.c_str());
    std::printf("==============================================================\n");
}

/// Prints an ECDF as two columns (value, fraction), thinned for terminals.
inline void print_ecdf(const std::string& label, std::vector<double> values,
                       std::size_t max_points = 12) {
    const auto points = util::ecdf(std::move(values), max_points);
    std::printf("%s (ECDF: value fraction)\n", label.c_str());
    for (const auto& p : points) std::printf("  %10.4f  %6.3f\n", p.x, p.fraction);
}

}  // namespace hypatia::bench
