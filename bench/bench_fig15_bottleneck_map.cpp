// Fig 15: constellation-wide utilization — where the bottlenecks are.
// Kuiper K1, permutation TCP traffic matrix. Exports the full ISL
// utilization map (with satellite coordinates, for map rendering) and
// prints the most congested ISLs. The paper's observation: with the
// city-to-city matrix, trans-Atlantic ISLs (connecting the US to Europe)
// run hot.
#include <cstdio>
#include <fstream>

#include "bench/common.hpp"
#include "src/core/experiment.hpp"
#include "src/core/metrics.hpp"
#include "src/viz/utilization_export.hpp"

using namespace hypatia;

int main(int argc, char** argv) {
    bench::BenchArgs args(argc, argv);
    bench::print_header("Fig 15: constellation-wide bottleneck map (Kuiper K1)");
    const double duration_s = args.duration_s(30.0, 200.0);
    const TimeNs duration = seconds_to_ns(duration_s);
    const auto snapshot_bin = static_cast<std::size_t>(
        args.cli.get_double("snapshot-s", duration_s - 2.0));

    core::Scenario scenario = core::Scenario::paper_default("kuiper_k1");
    core::LeoNetwork leo(scenario);
    const auto pairs = route::random_permutation_pairs(100, 42);
    auto flows = core::attach_tcp_flows(leo, pairs, "newreno");
    core::UtilizationSampler sampler(leo, 1 * kNsPerSec, duration);
    leo.run(duration);

    auto map = viz::isl_utilization_map(leo, sampler, snapshot_bin);
    std::ofstream(bench::out_path("fig15_utilization_map.csv"))
        << viz::utilization_to_csv(map);

    const auto top = viz::top_bottlenecks(map, 15);
    std::printf("ISLs with traffic: %zu of %zu\n", map.size(), leo.isls().size());
    std::printf("top bottleneck ISLs at t = %zu s (util, endpoints lat/lon):\n",
                snapshot_bin);
    int atlantic = 0;
    for (const auto& iu : top) {
        const bool is_atlantic = iu.lon_a > -70.0 && iu.lon_a < 10.0 &&
                                 iu.lat_a > 20.0 && iu.lat_a < 60.0;
        if (is_atlantic) ++atlantic;
        std::printf("  %4.2f  sat%-5d (%6.1f,%7.1f) -- sat%-5d (%6.1f,%7.1f)%s\n",
                    iu.utilization, iu.sat_a, iu.lat_a, iu.lon_a, iu.sat_b, iu.lat_b,
                    iu.lon_b, is_atlantic ? "  [N-Atlantic corridor]" : "");
    }
    std::printf("bottlenecks in the North-Atlantic corridor: %d of %zu\n", atlantic,
                top.size());
    std::printf("\npaper reference: trans-Atlantic ISLs are highly congested for\n"
                "this traffic matrix. Full map: %s\n",
                bench::out_path("fig15_utilization_map.csv").c_str());
    return 0;
}
