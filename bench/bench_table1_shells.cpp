// Table 1: shell configurations for Starlink's first phase, Kuiper, and
// Telesat — printed straight from the preset registry, with the derived
// orbital quantities (period, velocity, max GSL slant range) the paper's
// section 2.3 discusses.
#include <cstdio>

#include "bench/common.hpp"
#include "src/orbit/kepler.hpp"
#include "src/topology/constellation.hpp"

using namespace hypatia;

int main(int argc, char** argv) {
    bench::BenchArgs args(argc, argv);
    (void)args;
    bench::print_header("Table 1: shell configurations (+ derived quantities)");
    std::printf("%-14s %8s %7s %10s %7s %6s %10s %10s %9s\n", "shell", "h(km)",
                "orbits", "sats/orbit", "incl", "min_el", "period(min)", "v(km/h)",
                "gsl(km)");
    int total = 0;
    for (const auto& shell : topo::table1_shells()) {
        const auto kep = orbit::KeplerianElements::circular(
            shell.altitude_km, shell.inclination_deg, 0.0, 0.0, topo::default_epoch());
        std::printf("%-14s %8.0f %7d %10d %7.2f %6.0f %11.1f %10.0f %9.0f\n",
                    shell.name.c_str(), shell.altitude_km, shell.num_orbits,
                    shell.sats_per_orbit, shell.inclination_deg, shell.min_elevation_deg,
                    kep.period_s() / 60.0,
                    kep.circular_velocity_km_per_s() * 3600.0, shell.max_gsl_range_km());
        total += shell.num_satellites();
    }
    std::printf("total satellites across all shells: %d\n", total);
    std::printf("(paper: Starlink phase 1 = 4409, Kuiper = 3236, Telesat = 1671)\n");
    return 0;
}
