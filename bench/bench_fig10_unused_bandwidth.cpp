// Fig 10: unused bandwidth over time for Rio de Janeiro - St. Petersburg
// on Kuiper K1, with cross-traffic: long-running NewReno flows between a
// random permutation of the 100 most populous cities (all links
// 10 Mbit/s). The unused bandwidth of the pair is its path capacity minus
// the utilization of the most congested on-path link, at 1 s granularity.
// A second run freezes the constellation at t = 0 (static network): the
// paper's gray baseline.
//
// The paper removes permutation pairs sharing the tracked pair's
// ingress/egress satellites; we approximate by removing pairs with an
// endpoint within 1,000 km of either tracked city (those are the pairs
// that attach to the same satellites), documented in EXPERIMENTS.md.
//
// Expected shape: with the dynamic constellation, unused bandwidth
// fluctuates strongly (cross-traffic shifts as paths change), leaving
// capacity idle much more often than the frozen network does.
#include <cstdio>

#include "bench/common.hpp"
#include "src/core/experiment.hpp"
#include "src/core/metrics.hpp"
#include "src/topology/cities.hpp"

using namespace hypatia;

namespace {

std::vector<route::GsPair> build_pairs(const std::vector<orbit::GroundStation>& gses,
                                       int rio, int sp) {
    auto pairs = route::random_permutation_pairs(static_cast<int>(gses.size()), 42);
    const auto near_tracked = [&](int gs) {
        for (int tracked : {rio, sp}) {
            const double d = orbit::great_circle_distance_km(
                gses[static_cast<std::size_t>(gs)].geodetic(),
                gses[static_cast<std::size_t>(tracked)].geodetic());
            if (d < 1000.0) return true;
        }
        return false;
    };
    std::erase_if(pairs, [&](const route::GsPair& p) {
        return near_tracked(p.src_gs) || near_tracked(p.dst_gs);
    });
    pairs.push_back({rio, sp});  // the tracked connection itself
    return pairs;
}

std::vector<double> run_once(bool freeze, TimeNs duration, int num_pairs_out[2]) {
    core::Scenario scenario = core::Scenario::paper_default("kuiper_k1");
    scenario.freeze = freeze;
    const int rio = topo::city_index("Rio de Janeiro");
    const int sp = topo::city_index("Saint Petersburg");
    core::LeoNetwork leo(scenario);
    const auto pairs = build_pairs(scenario.ground_stations, rio, sp);
    num_pairs_out[freeze ? 1 : 0] = static_cast<int>(pairs.size());
    auto flows = core::attach_tcp_flows(leo, pairs, "newreno");
    core::UtilizationSampler sampler(leo, 1 * kNsPerSec, duration);
    core::UnusedBandwidthTracker tracker(leo, sampler, rio, sp);
    leo.run(duration);
    return tracker.unused_bps();
}

}  // namespace

int main(int argc, char** argv) {
    bench::BenchArgs args(argc, argv);
    bench::print_header("Fig 10: unused bandwidth, Rio de Janeiro - St. Petersburg");
    const TimeNs duration = seconds_to_ns(args.duration_s(200.0, 200.0));

    int num_pairs[2] = {0, 0};
    const auto dynamic_unused = run_once(false, duration, num_pairs);
    const auto frozen_unused = run_once(true, duration, num_pairs);

    util::CsvWriter csv(bench::out_path("fig10_unused_bandwidth.csv"));
    csv.header({"t_s", "unused_mbps_dynamic", "unused_mbps_frozen"});
    const std::size_t bins = std::min(dynamic_unused.size(), frozen_unused.size());
    // TCP needs ~15 s to converge after the staggered starts; the summary
    // statistic skips that warm-up (the CSV keeps the full series).
    const std::size_t warmup_bins = 15;
    int fluct_dynamic = 0, fluct_frozen = 0, reach_dyn = 0, reach_frz = 0;
    for (std::size_t b = 0; b < bins; ++b) {
        csv.row({static_cast<double>(b), dynamic_unused[b] / 1e6,
                 frozen_unused[b] / 1e6});
        if (b < warmup_bins) continue;
        if (dynamic_unused[b] >= 0) {
            ++reach_dyn;
            if (dynamic_unused[b] > 10e6 / 3.0) ++fluct_dynamic;
        }
        if (frozen_unused[b] >= 0) {
            ++reach_frz;
            if (frozen_unused[b] > 10e6 / 3.0) ++fluct_frozen;
        }
    }
    std::printf("flows: %d (dynamic run), %d (frozen run)\n", num_pairs[0],
                num_pairs[1]);
    std::printf("time with > 1/3 of path capacity unused: dynamic %.0f%%  "
                "frozen %.0f%%\n",
                100.0 * fluct_dynamic / std::max(1, reach_dyn),
                100.0 * fluct_frozen / std::max(1, reach_frz));
    std::printf("(paper: 31%% vs 11%% over 200 s; shape target: dynamic >> frozen)\n");
    std::printf("series: %s\n", bench::out_path("fig10_unused_bandwidth.csv").c_str());
    return 0;
}
