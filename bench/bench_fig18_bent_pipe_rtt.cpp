// Fig 18: Paris - Moscow RTT over time, ISLs vs bent-pipe GS relays.
// (a)/(b) the TCP-estimated per-packet RTT of a single NewReno flow at
// 10 Mbit/s (queueing inflates it far beyond propagation); (c) the
// computed (traffic-free) RTT of both connectivity modes.
//
// Expected shape: bent-pipe computed RTT is higher than ISL (typically
// ~5 ms in the paper); both TCP-estimated RTTs ride on top of the full
// queue.
#include <cstdio>

#include "bench/bent_pipe.hpp"
#include "bench/common.hpp"
#include "src/core/experiment.hpp"

using namespace hypatia;

int main(int argc, char** argv) {
    bench::BenchArgs args(argc, argv);
    bench::print_header("Fig 18: RTT over time, ISL vs bent-pipe (Paris - Moscow)");
    const TimeNs duration = seconds_to_ns(args.duration_s(200.0, 200.0));

    util::CsvWriter computed_csv(bench::out_path("fig18c_computed_rtt.csv"));
    computed_csv.header({"t_s", "mode_isl", "rtt_ms"});

    for (const bool use_isls : {true, false}) {
        const char* mode = use_isls ? "isl" : "bent_pipe";
        core::Scenario scenario = bench::bent_pipe_scenario(use_isls);

        // Computed (traffic-free) RTT series.
        core::LeoNetwork quiet(scenario);
        quiet.add_destination(1);
        util::RunningStats computed_stats;
        quiet.on_fstate_update = [&](TimeNs t) {
            const double d = quiet.current_distance_km(0, 1);
            if (d == route::kInfDistance) return;
            const double rtt_ms = 2.0 * d / orbit::kSpeedOfLightKmPerS * 1e3;
            computed_csv.row({ns_to_seconds(t), use_isls ? 1.0 : 0.0, rtt_ms});
            computed_stats.add(rtt_ms);
        };
        quiet.run(duration);

        // TCP-estimated RTT of a loaded flow.
        core::LeoNetwork loaded(scenario);
        auto flows = core::attach_tcp_flows(loaded, {{0, 1}}, "newreno");
        loaded.run(duration);
        util::CsvWriter tcp_csv(
            bench::out_path(std::string("fig18_tcp_rtt_") + mode + ".csv"));
        tcp_csv.header({"t_s", "rtt_ms"});
        util::RunningStats tcp_stats;
        for (const auto& s : flows[0]->rtt_trace()) {
            tcp_csv.row({ns_to_seconds(s.t), ns_to_ms(s.rtt)});
            tcp_stats.add(ns_to_ms(s.rtt));
        }
        std::printf("%-9s computed RTT %5.1f..%5.1f ms (mean %5.1f)   TCP-estimated "
                    "%5.1f..%6.1f ms (mean %6.1f)\n",
                    mode, computed_stats.min(), computed_stats.max(),
                    computed_stats.mean(), tcp_stats.min(), tcp_stats.max(),
                    tcp_stats.mean());
    }
    std::printf("\npaper reference: bent-pipe computed RTT ~5 ms above ISL; with\n"
                "traffic, queueing at 10 Mbit/s dominates both. CSVs in %s/\n",
                bench::out_dir().c_str());
    return 0;
}
