// Fig 13: shortest-path evolution for Paris - Luanda on Starlink S1 —
// one of the highest-RTT-variation pairs. The bench tracks the pair over
// the window, locates the RTT maximum and minimum instants, and prints /
// exports both paths. The paper's illustration: the 117 ms path needs 9
// zig-zag hops to exit the "spine" orbit; the 85 ms path only 6.
#include <cstdio>
#include <fstream>

#include "bench/common.hpp"
#include "src/topology/cities.hpp"
#include "src/viz/path_export.hpp"

using namespace hypatia;

int main(int argc, char** argv) {
    bench::BenchArgs args(argc, argv);
    bench::print_header("Fig 13: Paris - Luanda path evolution on Starlink S1");
    const TimeNs duration = seconds_to_ns(args.duration_s(200.0, 200.0));
    const TimeNs step = ms_to_ns(args.step_ms(100.0, 100.0));

    const topo::Constellation s1(topo::shell_by_name("starlink_s1"),
                                 topo::default_epoch());
    const topo::SatelliteMobility mob(s1);
    const auto isls = topo::build_isls(s1, topo::IslPattern::kPlusGrid);
    std::vector<orbit::GroundStation> gses;
    gses.emplace_back(0, "Paris", topo::city_by_name("Paris").geodetic());
    gses.emplace_back(1, "Luanda", topo::city_by_name("Luanda").geodetic());

    struct Extreme {
        TimeNs t = 0;
        double rtt_ms = 0.0;
        std::vector<int> path;
    };
    Extreme longest, shortest;
    shortest.rtt_ms = 1e18;

    // The shared pair sweep (also behind the emu schedule exporter):
    // points carry the full node path, GS endpoints included.
    viz::PairSeriesOptions opt;
    opt.t_end = duration;
    opt.step = step;
    const auto series = viz::sweep_pair_series(mob, isls, gses, {{0, 1}}, opt);
    for (const auto& point : series[0]) {
        if (!point.reachable()) continue;
        const double rtt_ms = point.rtt_s * 1e3;
        if (rtt_ms > longest.rtt_ms) longest = {point.t, rtt_ms, point.path};
        if (rtt_ms < shortest.rtt_ms) shortest = {point.t, rtt_ms, point.path};
    }

    std::ofstream json(bench::out_path("fig13_paths.json"));
    json << "[";
    bool first = true;
    for (const auto* e : {&longest, &shortest}) {
        const auto resolved = viz::resolve_path(e->path, mob, gses, e->t);
        if (!first) json << ",";
        first = false;
        json << viz::path_to_json(resolved, e->t, e->rtt_ms);
        std::printf("%s RTT %6.1f ms at t=%6.1f s (%zu satellite hops):\n  %s\n",
                    e == &longest ? "longest " : "shortest", e->rtt_ms,
                    ns_to_seconds(e->t), e->path.size() - 2,
                    viz::path_to_string(resolved).c_str());
    }
    json << "]";
    std::printf("\npaper reference: RTT varies 85..117 ms; the long path needs more\n"
                "zig-zag hops to leave the north-south orbit toward the "
                "destination.\nJSON: %s\n", bench::out_path("fig13_paths.json").c_str());
    return 0;
}
