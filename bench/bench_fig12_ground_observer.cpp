// Fig 12: the ground observer's view of Kuiper K1 from St. Petersburg —
// azimuth (x) / elevation (y) sky charts, with satellites above the
// horizon but below the connectability criterion marked separately.
// The bench scans the experiment window, reports the coverage timeline
// (connectable or not, per second), and renders one ASCII sky chart for
// a covered instant and one for the disconnection (the paper's (a)/(b)).
#include <cstdio>
#include <fstream>

#include "bench/common.hpp"
#include "src/topology/cities.hpp"
#include "src/viz/ground_view.hpp"

using namespace hypatia;

int main(int argc, char** argv) {
    bench::BenchArgs args(argc, argv);
    bench::print_header("Fig 12: ground observer view (Kuiper K1, St. Petersburg)");
    const TimeNs duration = seconds_to_ns(args.duration_s(200.0, 200.0));

    const topo::Constellation k1(topo::shell_by_name("kuiper_k1"),
                                 topo::default_epoch());
    const topo::SatelliteMobility mob(k1);
    const auto sp = topo::city_by_name("Saint Petersburg");

    const auto frames = viz::ground_view_series(sp, mob, 0, duration, 1 * kNsPerSec);
    std::ofstream(bench::out_path("fig12_ground_view.csv"))
        << viz::ground_view_to_csv(frames);

    // Coverage timeline.
    std::printf("coverage timeline (1 char per second, #=connectable, .=not):\n");
    int printed = 0;
    int first_connected = -1, first_disconnected = -1;
    for (std::size_t i = 0; i < frames.size(); ++i) {
        std::printf("%c", frames[i].connectable ? '#' : '.');
        if (++printed % 80 == 0) std::printf("\n");
        if (frames[i].connectable && first_connected < 0) {
            first_connected = static_cast<int>(i);
        }
        if (!frames[i].connectable && first_disconnected < 0) {
            first_disconnected = static_cast<int>(i);
        }
    }
    std::printf("\n\n");

    if (first_connected >= 0) {
        std::printf("(a) t = %d s — connectivity possible:\n%s\n", first_connected,
                    viz::ascii_sky_chart(frames[static_cast<std::size_t>(first_connected)])
                        .c_str());
    }
    if (first_disconnected >= 0) {
        std::printf("(b) t = %d s — no satellites reachable:\n%s\n", first_disconnected,
                    viz::ascii_sky_chart(
                        frames[static_cast<std::size_t>(first_disconnected)])
                        .c_str());
    } else {
        std::printf("(b) no disconnection inside this window; run longer "
                    "(--duration-s 400)\n");
    }
    std::printf("paper reference: from St. Petersburg, Kuiper K1 is only\n"
                "intermittently reachable; satellites near the horizon are many,\n"
                "connectable ones few. CSV: %s\n",
                bench::out_path("fig12_ground_view.csv").c_str());
    return 0;
}
