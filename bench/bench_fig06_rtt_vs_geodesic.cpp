// Fig 6: CDF across GS pairs of (maximum RTT over time) / (geodesic RTT)
// for Telesat T1, Kuiper K1, and Starlink S1. Pairs closer than 500 km
// are excluded (as in the paper).
//
// Expected shape: >80% of pairs below 2x the geodesic for all three;
// Telesat lowest (l = 10 deg gives the most GSL options), then Kuiper,
// then Starlink (fewer satellites per orbit -> zig-zag paths).
#include <cstdio>

#include "bench/common.hpp"
#include "bench/constellation_analysis.hpp"

using namespace hypatia;

int main(int argc, char** argv) {
    bench::BenchArgs args(argc, argv);
    bench::print_header("Fig 6: max RTT / geodesic RTT (CDF across pairs)");
    const TimeNs duration = seconds_to_ns(args.duration_s(200.0, 200.0));
    const TimeNs step = ms_to_ns(args.step_ms(1000.0, 100.0));

    util::CsvWriter csv(bench::out_path("fig06_rtt_vs_geodesic.csv"));
    csv.header({"shell", "ratio", "cdf"});

    for (const auto& shell : bench::section5_shells()) {
        const auto a = bench::analyze_constellation(shell, duration, step);
        std::vector<double> ratios;
        int below2x = 0, reachable = 0;
        for (std::size_t i = 0; i < a.pairs.size(); ++i) {
            const auto& stats = a.result.pair_stats[i];
            if (!stats.ever_reachable()) continue;
            const double geo = orbit::geodesic_rtt_s(
                a.gses[static_cast<std::size_t>(a.pairs[i].src_gs)].geodetic(),
                a.gses[static_cast<std::size_t>(a.pairs[i].dst_gs)].geodetic());
            const double ratio = stats.max_rtt_s / geo;
            ratios.push_back(ratio);
            ++reachable;
            if (ratio < 2.0) ++below2x;
        }
        const auto ecdf = util::ecdf(ratios, 200);
        double shell_id = shell == "telesat_t1" ? 0.0 : shell == "kuiper_k1" ? 1.0 : 2.0;
        for (const auto& p : ecdf) csv.row({shell_id, p.x, p.fraction});

        const auto s = util::summarize(ratios);
        std::printf("%-12s pairs %4d  median %.2fx  p90 %.2fx  max %.2fx  "
                    "<2x: %4.1f%%\n",
                    shell.c_str(), reachable, s.median, s.p90, s.max,
                    100.0 * below2x / std::max(1, reachable));
        bench::print_ecdf("  " + shell, ratios, 8);
    }
    std::printf("\npaper reference: >80%% of pairs below 2x geodesic for all three;\n"
                "Telesat < Kuiper < Starlink. CSV: %s\n",
                bench::out_path("fig06_rtt_vs_geodesic.csv").c_str());
    return 0;
}
