// Fig 2: simulator scalability. Kuiper K1, the 100 most populous cities
// as GSes, a random-permutation traffic matrix of long-running flows
// (TCP) or line-rate paced flows (UDP). The line rate of every link is
// swept; for each rate the network-wide goodput (x) and the wall-clock /
// virtual-time slowdown (y) are reported.
//
// Defaults sweep {1, 10, 25} Mbit/s for 1 virtual second (fast);
// --paper adds 100, 250 Mbit/s and 1 Gbit/s (minutes of wall time).
// Absolute slowdowns depend on the host CPU; the paper's shape —
// slowdown linear in goodput, UDP cheaper than TCP — is the target.
#include <cstdio>

#include "bench/common.hpp"
#include "src/core/experiment.hpp"

using namespace hypatia;

int main(int argc, char** argv) {
    bench::BenchArgs args(argc, argv);
    bench::print_header("Fig 2: slowdown (wall/virtual) vs network goodput");

    std::vector<double> rates_mbps = {1.0, 10.0, 25.0};
    if (args.paper) {
        rates_mbps.push_back(100.0);
        rates_mbps.push_back(250.0);
        rates_mbps.push_back(1000.0);
    }
    const double duration_s = args.duration_s(1.0, 1.0);

    util::CsvWriter csv(bench::out_path("fig02_scalability.csv"));
    csv.header({"transport", "line_rate_mbps", "goodput_gbps", "slowdown",
                "events"});

    std::printf("%-5s %16s %15s %10s %12s\n", "mode", "line_rate(Mbps)",
                "goodput(Gbps)", "slowdown", "events");
    for (const bool tcp : {false, true}) {
        for (const double rate : rates_mbps) {
            core::PermutationWorkloadConfig cfg;
            cfg.scenario = core::Scenario::paper_default("kuiper_k1");
            cfg.scenario.isl_rate_bps = rate * 1e6;
            cfg.scenario.gsl_rate_bps = rate * 1e6;
            cfg.tcp = tcp;
            cfg.duration = seconds_to_ns(duration_s);
            const auto r = core::run_permutation_workload(cfg);
            std::printf("%-5s %16.0f %15.4f %10.2f %12llu\n", tcp ? "TCP" : "UDP",
                        rate, r.goodput_bps / 1e9, r.slowdown,
                        static_cast<unsigned long long>(r.events));
            std::fflush(stdout);
            csv.row({tcp ? 1.0 : 0.0, rate, r.goodput_bps / 1e9, r.slowdown,
                     static_cast<double>(r.events)});
        }
    }
    std::printf("\npaper reference: 9.2 Gbit/s TCP goodput -> slowdown ~555;\n");
    std::printf("13.8 Gbit/s UDP -> ~269 (2.26 GHz Xeon L5520; absolute values\n");
    std::printf("are hardware-dependent, the linear shape is the result).\n");
    std::printf("rows written to %s\n", bench::out_path("fig02_scalability.csv").c_str());
    return 0;
}
