// Fig 4: TCP congestion window evolution on the three section-4 pairs
// (Kuiper K1, 10 Mbit/s links, 100-packet queues, no competing traffic).
// For each pair the bench logs the NewReno cwnd trace together with the
// instantaneous BDP and BDP+Q computed from the live path RTT — the two
// envelope lines of the paper's figure.
//
// Expected shape: cwnd saw-tooths between ~BDP and ~BDP+Q while the path
// is stable; the Rio-St.Petersburg disconnection collapses the window
// via RTO; path shortenings cause duplicate-ACK halvings without loss.
#include <cstdio>

#include "bench/common.hpp"
#include "bench/paper_pairs.hpp"
#include "src/core/experiment.hpp"

using namespace hypatia;

int main(int argc, char** argv) {
    bench::BenchArgs args(argc, argv);
    bench::print_header("Fig 4: TCP congestion window vs BDP / BDP+Q");
    const TimeNs duration = seconds_to_ns(args.duration_s(200.0, 200.0));
    const double rate_bps = 10e6;
    const double queue_packets = 100.0;
    const double packet_bits = 1500.0 * 8.0;

    for (const auto& [src_name, dst_name] : bench::section4_pairs()) {
        auto scenario = bench::scenario_with_cities("kuiper_k1", {src_name, dst_name});
        core::LeoNetwork leo(scenario);
        auto flows = core::attach_tcp_flows(leo, {{0, 1}}, "newreno");

        std::vector<std::array<double, 3>> envelope;  // t_s, bdp, bdp+q
        leo.on_fstate_update = [&](TimeNs t) {
            const double d = leo.current_distance_km(0, 1);
            if (d == route::kInfDistance) {
                envelope.push_back({ns_to_seconds(t), 0.0, 0.0});
                return;
            }
            const double rtt_s = 2.0 * d / orbit::kSpeedOfLightKmPerS;
            const double bdp_packets = rate_bps * rtt_s / packet_bits;
            envelope.push_back(
                {ns_to_seconds(t), bdp_packets, bdp_packets + queue_packets});
        };
        leo.run(duration);

        const std::string tag = src_name.substr(0, 3) + "_" + dst_name.substr(0, 3);
        util::CsvWriter cwnd_csv(bench::out_path("fig04_cwnd_" + tag + ".csv"));
        cwnd_csv.header({"t_s", "cwnd_segments", "ssthresh", "in_recovery"});
        double cwnd_max_late = 0.0;
        for (const auto& s : flows[0]->cwnd_trace()) {
            cwnd_csv.row({ns_to_seconds(s.t), s.cwnd, std::min(s.ssthresh, 1e6),
                          s.in_recovery ? 1.0 : 0.0});
            if (s.t > duration / 4) cwnd_max_late = std::max(cwnd_max_late, s.cwnd);
        }
        util::CsvWriter env_csv(bench::out_path("fig04_bdp_" + tag + ".csv"));
        env_csv.header({"t_s", "bdp_packets", "bdp_plus_q_packets"});
        double bdp_min = 1e18, bdpq_max = 0.0;
        for (const auto& e : envelope) {
            env_csv.row({e[0], e[1], e[2]});
            if (e[1] > 0.0) {
                bdp_min = std::min(bdp_min, e[1]);
                bdpq_max = std::max(bdpq_max, e[2]);
            }
        }
        std::printf("%-16s -> %-18s cwnd(max, after warmup) %6.1f  BDP %5.1f..  "
                    "BDP+Q ..%6.1f  fast_rtx %llu  rtos %llu\n",
                    src_name.c_str(), dst_name.c_str(), cwnd_max_late, bdp_min,
                    bdpq_max,
                    static_cast<unsigned long long>(flows[0]->fast_retransmits()),
                    static_cast<unsigned long long>(flows[0]->timeouts()));
    }
    std::printf("\npaper reference: cwnd oscillates between BDP and BDP+Q=100pkts;\n"
                "reordering at path shortenings halves cwnd without loss.\n"
                "Series in %s/fig04_*.csv\n", bench::out_dir().c_str());
    return 0;
}
