// Extension: BBR on LEO paths — the experiment the paper names as
// high-interest future work (section 4.2). Repeats the Fig 5 setup (Rio
// de Janeiro - St. Petersburg on Kuiper K1, one flow, no competing
// traffic) with NewReno, Vegas, and BBR side by side.
//
// Expected outcome: NewReno fills queues (high RTT), Vegas collapses when
// propagation delay rises, BBR tracks the moving bandwidth-delay product
// — its windowed rt_prop/btl_bw model absorbs LEO path changes.
#include <cstdio>

#include "bench/common.hpp"
#include "bench/paper_pairs.hpp"
#include "src/core/experiment.hpp"

using namespace hypatia;

int main(int argc, char** argv) {
    bench::BenchArgs args(argc, argv);
    bench::print_header("Extension: BBR vs NewReno vs Vegas on a LEO path");
    const TimeNs duration = seconds_to_ns(args.duration_s(200.0, 200.0));
    const TimeNs bin = kNsPerSec;

    std::printf("%-8s %18s %18s %12s %10s %8s\n", "cc", "goodput 1st half",
                "goodput 2nd half", "median RTT", "p95 RTT", "rtos");
    for (const std::string cc : {"newreno", "vegas", "bbr"}) {
        auto scenario = bench::scenario_with_cities(
            "kuiper_k1", {"Rio de Janeiro", "Saint Petersburg"});
        core::LeoNetwork leo(scenario);
        sim::TcpConfig base;
        base.delayed_ack = cc != "bbr";  // BBR wants clean rate samples
        auto flows = core::attach_tcp_flows(leo, {{0, 1}}, cc, base);
        flows[0]->enable_delivery_bins(bin, duration);
        leo.run(duration);
        const auto& flow = *flows[0];

        util::CsvWriter csv(bench::out_path("ext_bbr_rate_" + cc + ".csv"));
        csv.header({"t_s", "rate_mbps"});
        const auto rates = flow.delivery_rate_bps();
        double first = 0.0, second = 0.0;
        const std::size_t half = rates.size() / 2;
        for (std::size_t i = 0; i < rates.size(); ++i) {
            csv.row({static_cast<double>(i), rates[i] / 1e6});
            (i < half ? first : second) += rates[i];
        }
        first /= static_cast<double>(half);
        second /= static_cast<double>(rates.size() - half);

        std::vector<double> rtts;
        for (const auto& s : flow.rtt_trace()) rtts.push_back(ns_to_ms(s.rtt));
        const double med = util::percentile(rtts, 50.0);
        const double p95 = util::percentile(rtts, 95.0);
        std::printf("%-8s %15.2f Mb %15.2f Mb %9.1f ms %7.1f ms %8llu\n", cc.c_str(),
                    first / 1e6, second / 1e6, med, p95,
                    static_cast<unsigned long long>(flow.timeouts()));
    }
    std::printf("\nexpected: BBR sustains goodput across the path's RTT changes\n"
                "(Vegas collapses) while keeping RTT near propagation (NewReno\n"
                "rides the full queue). CSVs: %s/ext_bbr_rate_*.csv\n",
                bench::out_dir().c_str());
    return 0;
}
