// Fig 11: constellation trajectory snapshots for Telesat T1, Kuiper K1,
// and Starlink S1. The bench exports the satellite tracks as CZML-like
// JSON (renderable with the Cesium glue the original project publishes)
// and prints the latitude-density profile that the figure conveys
// visually: Telesat's near-polar orbits cover the poles, Kuiper/Starlink
// concentrate over the populated mid-latitudes.
#include <cstdio>
#include <fstream>

#include "bench/common.hpp"
#include "bench/constellation_analysis.hpp"
#include "src/topology/mobility.hpp"
#include "src/viz/trajectory_export.hpp"

using namespace hypatia;

int main(int argc, char** argv) {
    bench::BenchArgs args(argc, argv);
    bench::print_header("Fig 11: constellation trajectories and coverage density");
    const TimeNs track_len = seconds_to_ns(args.duration_s(120.0, 600.0));

    for (const auto& shell : bench::section5_shells()) {
        const topo::Constellation c(topo::shell_by_name(shell), topo::default_epoch());
        const topo::SatelliteMobility mob(c);

        const auto tracks = viz::sample_tracks(mob, 0, track_len, 10 * kNsPerSec);
        const auto json = viz::tracks_to_json(shell, tracks);
        const auto path = bench::out_path("fig11_tracks_" + shell + ".json");
        std::ofstream(path) << json;

        const auto density = viz::latitude_density(mob, 0);
        std::printf("%-12s (%d sats) satellites per 10-degree latitude band:\n",
                    shell.c_str(), c.num_satellites());
        std::printf("  band:");
        for (int b = 0; b < 18; ++b) std::printf(" %3d", -90 + b * 10);
        std::printf("\n  %%   :");
        for (double d : density) std::printf(" %3.0f", 100.0 * d);
        std::printf("\n  polar coverage (|lat| > 70): %.1f%%   mid-lat (30..60): %.1f%%\n",
                    100.0 * (density[0] + density[1] + density[16] + density[17]),
                    100.0 * (density[12] + density[13] + density[14] + density[3] +
                             density[4] + density[5]));
        std::printf("  tracks: %s\n", path.c_str());
    }
    std::printf("\npaper reference: Telesat (i=98.98) covers the poles; Kuiper and\n"
                "Starlink (i~52/53) are densest over the mid-latitudes where most\n"
                "of the population lives.\n");
    return 0;
}
