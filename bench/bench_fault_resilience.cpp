// Resilience curves under seeded fault injection (DESIGN.md section 8):
// Starlink S1 with the top-100 cities, sweeping the steady-state
// satellite failure rate and measuring how routing degrades —
//   * unreachable-pair fraction (steps with no path / all steps),
//   * RTT inflation of the surviving paths relative to the fault-free
//     baseline (detours around dead satellites cost distance),
//   * mean recovery time (length of contiguous unreachable streaks).
// Each rate r uses an MTBF of mttr * (1 - r) / r, so the renewal
// process's steady-state down-fraction equals r. The baseline point
// passes an explicitly empty schedule, which also neutralizes any
// HYPATIA_FAULTS in the environment.
//
// Writes bench_output/BENCH_fault.json. Exits non-zero if the highest
// failure rate produces no unreachable pairs or masks no links — a
// fault pipeline that visibly does nothing is a regression.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "src/fault/fault.hpp"
#include "src/routing/path_analysis.hpp"
#include "src/topology/cities.hpp"
#include "src/topology/constellation.hpp"
#include "src/topology/isl.hpp"
#include "src/topology/mobility.hpp"

namespace hypatia {
namespace {

struct RatePoint {
    double rate = 0.0;
    double mtbf_s = 0.0;
    double sats_down_mean = 0.0;
    double unreachable_fraction = 0.0;
    double mean_rtt_ms = 0.0;
    double rtt_inflation = 1.0;
    double mean_recovery_s = 0.0;
    std::uint64_t links_masked = 0;
};

RatePoint measure_rate(const topo::SatelliteMobility& mobility,
                       const std::vector<topo::Isl>& isls,
                       const std::vector<orbit::GroundStation>& gses,
                       const std::vector<route::GsPair>& pairs, double rate,
                       double mttr_s, TimeNs duration, TimeNs step) {
    RatePoint point;
    point.rate = rate;

    fault::FaultSchedule schedule;  // empty: the fault-free baseline
    if (rate > 0.0) {
        fault::FaultConfig cfg;
        cfg.seed = 2026;
        cfg.horizon = duration;
        cfg.sat_mttr_s = mttr_s;
        cfg.sat_mtbf_s = mttr_s * (1.0 - rate) / rate;
        point.mtbf_s = cfg.sat_mtbf_s;
        schedule = fault::FaultSchedule::generate(
            cfg, mobility.num_satellites(), isls, gses);
    }

    route::AnalysisOptions opts;
    opts.t_start = 0;
    opts.t_end = duration;
    opts.step = step;
    // Always set: an empty schedule pins the baseline to fault-free even
    // when HYPATIA_FAULTS is exported in the calling environment.
    opts.faults = &schedule;

    // Per-pair unreachable streak tracking for the recovery-time curve.
    std::vector<int> streak(pairs.size(), 0);
    std::vector<double> completed_streak_steps;
    double rtt_sum_s = 0.0;
    std::size_t reachable_steps = 0, unreachable_steps = 0;
    opts.per_step_observer = [&](TimeNs, int pair_index, double rtt_s,
                                 const std::vector<int>&) {
        auto& run = streak[static_cast<std::size_t>(pair_index)];
        if (rtt_s == route::kInfDistance) {
            ++unreachable_steps;
            ++run;
        } else {
            ++reachable_steps;
            rtt_sum_s += rtt_s;
            if (run > 0) completed_streak_steps.push_back(run);
            run = 0;
        }
    };

    auto& masked_counter = obs::metrics().counter("fault.links_masked");
    const std::uint64_t masked_before = masked_counter.value();
    route::analyze_pairs(mobility, isls, gses, pairs, opts);
    point.links_masked = masked_counter.value() - masked_before;

    const std::size_t total = reachable_steps + unreachable_steps;
    point.unreachable_fraction =
        total == 0 ? 0.0
                   : static_cast<double>(unreachable_steps) / static_cast<double>(total);
    point.mean_rtt_ms = reachable_steps == 0
                            ? 0.0
                            : 1e3 * rtt_sum_s / static_cast<double>(reachable_steps);
    if (!completed_streak_steps.empty()) {
        double sum = 0.0;
        for (const double v : completed_streak_steps) sum += v;
        point.mean_recovery_s = sum / static_cast<double>(completed_streak_steps.size()) *
                                ns_to_seconds(step);
    }

    double down_sum = 0.0;
    std::size_t down_samples = 0;
    for (TimeNs t = 0; t < duration; t += step) {
        down_sum += static_cast<double>(
            schedule.down_count(fault::FaultKind::kSatellite, t));
        ++down_samples;
    }
    if (down_samples > 0) point.sats_down_mean = down_sum / down_samples;
    return point;
}

int run(int argc, char** argv) {
    bench::BenchArgs args(argc, argv);
    const double duration_s = args.duration_s(60.0, 300.0);
    const double step_ms = args.step_ms(2000.0, 5000.0);
    const double mttr_s = args.cli.get_double("mttr-s", args.paper ? 60.0 : 15.0);
    args.cli.describe("mttr-s", "mean satellite repair time in seconds");
    args.finish_flags("fault-injection resilience curves on Starlink S1");
    args.manifest.set_param("mttr_s", mttr_s);

    bench::print_header("Fault resilience: Starlink S1, top-100 cities");

    topo::Constellation constellation(topo::shell_by_name("starlink_s1"),
                                      topo::default_epoch());
    topo::SatelliteMobility mobility(constellation);
    const auto isls = topo::build_isls(constellation, topo::IslPattern::kPlusGrid);
    const auto gses = topo::top100_cities();
    const auto pairs = route::random_permutation_pairs(
        static_cast<int>(gses.size()), /*seed=*/7);

    const TimeNs duration = seconds_to_ns(duration_s);
    const TimeNs step = ms_to_ns(step_ms);
    const std::vector<double> rates = {0.0, 0.05, 0.15, 0.30, 0.50};

    std::vector<RatePoint> points;
    for (const double rate : rates) {
        RatePoint p =
            measure_rate(mobility, isls, gses, pairs, rate, mttr_s, duration, step);
        points.push_back(p);
        std::printf(
            "rate %.2f: mtbf %7.1f s, mean sats down %7.1f, unreachable %6.2f%%, "
            "rtt %6.2f ms, recovery %5.1f s, links masked %llu\n",
            p.rate, p.mtbf_s, p.sats_down_mean, 100.0 * p.unreachable_fraction,
            p.mean_rtt_ms, p.mean_recovery_s,
            static_cast<unsigned long long>(p.links_masked));
    }
    const double base_rtt = points.front().mean_rtt_ms;
    for (auto& p : points) {
        if (base_rtt > 0.0 && p.mean_rtt_ms > 0.0) {
            p.rtt_inflation = p.mean_rtt_ms / base_rtt;
        }
    }

    const std::string path = util::output_path("bench_output", "BENCH_fault.json");
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return 1;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"fault_resilience\",\n"
                 "  \"constellation\": \"starlink_s1\",\n"
                 "  \"num_ground_stations\": %zu,\n"
                 "  \"num_pairs\": %zu,\n"
                 "  \"duration_s\": %.1f,\n"
                 "  \"step_ms\": %.1f,\n"
                 "  \"mttr_s\": %.1f,\n"
                 "  \"points\": [\n",
                 gses.size(), pairs.size(), duration_s, step_ms, mttr_s);
    for (std::size_t i = 0; i < points.size(); ++i) {
        const auto& p = points[i];
        std::fprintf(f,
                     "    {\"rate\": %.2f, \"mtbf_s\": %.2f, \"sats_down_mean\": "
                     "%.2f, \"unreachable_fraction\": %.6f, \"mean_rtt_ms\": %.4f, "
                     "\"rtt_inflation\": %.4f, \"mean_recovery_s\": %.2f, "
                     "\"links_masked\": %llu}%s\n",
                     p.rate, p.mtbf_s, p.sats_down_mean, p.unreachable_fraction,
                     p.mean_rtt_ms, p.rtt_inflation, p.mean_recovery_s,
                     static_cast<unsigned long long>(p.links_masked),
                     i + 1 < points.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());

    // Self-check: at a 50%% steady-state failure rate the +Grid cannot be
    // fully connected and the masking pipeline must have fired.
    const RatePoint& worst = points.back();
    if (worst.links_masked == 0) {
        std::fprintf(stderr, "FAIL: highest failure rate masked no links\n");
        return 1;
    }
    if (worst.unreachable_fraction == 0.0) {
        std::fprintf(stderr,
                     "FAIL: highest failure rate produced no unreachable pairs\n");
        return 1;
    }
    if (points.front().unreachable_fraction > worst.unreachable_fraction) {
        std::fprintf(stderr, "FAIL: resilience curve is not monotone at the ends\n");
        return 1;
    }
    return 0;
}

}  // namespace
}  // namespace hypatia

int main(int argc, char** argv) { return hypatia::run(argc, argv); }
