// Micro-benchmarks (google-benchmark) for the primitives that set the
// simulator's pace (and hence Fig 2's slowdown): SGP4 propagation, GMST,
// cached mobility lookups, topology snapshots, per-destination Dijkstra,
// forwarding-state computation, and event-queue throughput. After the
// google-benchmark run, main() measures the full per-epoch routing
// pipeline (snapshot + forwarding precompute, Starlink S1 over 100
// cities) in rebuild vs refresh mode and writes the regression-guard
// report bench_output/BENCH_routing.json (epochs/s, allocations/epoch,
// speedup_vs_rebuild) that CI archives.
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <queue>
#include <utility>

#include "src/orbit/sgp4.hpp"
#include "src/orbit/tle.hpp"
#include "src/routing/forwarding.hpp"
#include "src/routing/shortest_path.hpp"
#include "src/routing/snapshot_refresh.hpp"
#include "src/sim/event_queue.hpp"
#include "src/topology/cities.hpp"
#include "src/topology/visibility.hpp"
#include "src/util/csv.hpp"
#include "src/util/thread_pool.hpp"

// --- Allocation counting hook ----------------------------------------------
// Replacing global new/delete lets the pipeline report count heap
// allocations per epoch — the zero-rebuild claim ("no per-epoch graph or
// tree allocations once warm") is asserted on this counter, not guessed.

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(size ? size : 1)) return p;
    throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    void* p = nullptr;
    if (posix_memalign(&p, static_cast<std::size_t>(align), size ? size : 1) != 0) {
        throw std::bad_alloc();
    }
    return p;
}
void* operator new[](std::size_t size, std::align_val_t align) {
    return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
    std::free(p);
}

using namespace hypatia;

namespace {

const topo::Constellation& kuiper() {
    static const topo::Constellation c(topo::shell_by_name("kuiper_k1"),
                                       topo::default_epoch());
    return c;
}

void BM_Sgp4Propagate(benchmark::State& state) {
    const auto& sat = kuiper().satellite(0);
    double t = 0.0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(sat.sgp4->propagate_minutes(t));
        t += 0.001;
    }
}
BENCHMARK(BM_Sgp4Propagate);

void BM_Gmst(benchmark::State& state) {
    auto jd = topo::default_epoch();
    for (auto _ : state) {
        benchmark::DoNotOptimize(orbit::gmst_radians(jd));
        jd = jd.plus_seconds(1.0);
    }
}
BENCHMARK(BM_Gmst);

void BM_MobilityCachedLookup(benchmark::State& state) {
    const topo::SatelliteMobility mob(kuiper());
    TimeNs t = 0;
    int sat = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(mob.position_ecef(sat, t));
        sat = (sat + 1) % mob.num_satellites();
        if (sat == 0) t += kNsPerMs;
    }
}
BENCHMARK(BM_MobilityCachedLookup);

void BM_TleParse(benchmark::State& state) {
    const auto tle = kuiper().satellite(7).tle;
    const auto l1 = tle.line1();
    const auto l2 = tle.line2();
    for (auto _ : state) {
        benchmark::DoNotOptimize(orbit::Tle::parse(l1, l2));
    }
}
BENCHMARK(BM_TleParse);

void BM_VisibleSatellites(benchmark::State& state) {
    const topo::SatelliteMobility mob(kuiper());
    const auto tokyo = topo::city_by_name("Tokyo");
    TimeNs t = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(topo::visible_satellites(tokyo, mob, t));
        t += 100 * kNsPerMs;
    }
}
BENCHMARK(BM_VisibleSatellites);

void BM_TopologySnapshot(benchmark::State& state) {
    const topo::SatelliteMobility mob(kuiper());
    const auto isls = topo::build_isls(kuiper(), topo::IslPattern::kPlusGrid);
    const auto gses = topo::top100_cities();
    TimeNs t = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(route::build_snapshot(mob, isls, gses, t));
        t += 100 * kNsPerMs;
    }
}
BENCHMARK(BM_TopologySnapshot)->Unit(benchmark::kMillisecond);

void BM_DijkstraPerDestination(benchmark::State& state) {
    const topo::SatelliteMobility mob(kuiper());
    const auto isls = topo::build_isls(kuiper(), topo::IslPattern::kPlusGrid);
    const auto gses = topo::top100_cities();
    const auto graph = route::build_snapshot(mob, isls, gses, 0);
    int dst = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(route::dijkstra_to(graph, graph.gs_node(dst)));
        dst = (dst + 1) % 100;
    }
}
BENCHMARK(BM_DijkstraPerDestination)->Unit(benchmark::kMillisecond);

// The routing-precompute hot loop (100 destination Dijkstras over one
// kuiper snapshot) at 1/2/4/8 pool lanes. Reports "speedup_vs_serial"
// against the 1-lane run of the same process — on an 8-core runner the
// 8-lane entry is expected to show >= 3x (the PR's acceptance bar); on
// fewer cores the counter degrades gracefully and "threads" records the
// configuration so CI logs stay interpretable.
void BM_ForwardingPrecomputeParallel(benchmark::State& state) {
    static double serial_ns_per_iter = 0.0;  // filled by the Arg(1) run
    const auto threads = static_cast<std::size_t>(state.range(0));
    const topo::SatelliteMobility mob(kuiper());
    const auto isls = topo::build_isls(kuiper(), topo::IslPattern::kPlusGrid);
    const auto gses = topo::top100_cities();
    const auto graph = route::build_snapshot(mob, isls, gses, 0);
    std::vector<int> dests;
    for (int gs = 0; gs < static_cast<int>(gses.size()); ++gs) {
        dests.push_back(graph.gs_node(gs));
    }
    util::ThreadPool::set_global_threads(threads);
    const auto t0 = std::chrono::steady_clock::now();
    std::size_t iters = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(route::compute_forwarding(graph, dests));
        ++iters;
    }
    const double ns_per_iter =
        static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                std::chrono::steady_clock::now() - t0)
                                .count()) /
        static_cast<double>(iters);
    util::ThreadPool::set_global_threads(0);
    if (threads == 1) serial_ns_per_iter = ns_per_iter;
    state.counters["threads"] = static_cast<double>(threads);
    if (serial_ns_per_iter > 0.0) {
        state.counters["speedup_vs_serial"] = serial_ns_per_iter / ns_per_iter;
    }
}
BENCHMARK(BM_ForwardingPrecomputeParallel)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// One in-place snapshot refresh per iteration, stepping 100 ms — the
// per-epoch cost the zero-rebuild pipeline pays instead of
// BM_TopologySnapshot's from-scratch build.
void BM_SnapshotRefresh(benchmark::State& state) {
    const topo::SatelliteMobility mob(kuiper());
    const auto isls = topo::build_isls(kuiper(), topo::IslPattern::kPlusGrid);
    const auto gses = topo::top100_cities();
    route::SnapshotRefresher refresher(mob, isls, gses);
    TimeNs t = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(&refresher.refresh(t));
        t += 100 * kNsPerMs;
    }
}
BENCHMARK(BM_SnapshotRefresh)->Unit(benchmark::kMillisecond);

void BM_EventQueuePushPop(benchmark::State& state) {
    sim::EventQueue q;
    TimeNs t = 0;
    // Keep a steady population of 10k events, push+pop per iteration.
    for (int i = 0; i < 10000; ++i) q.push(t++, [] {});
    for (auto _ : state) {
        q.push(t++, [] {});
        benchmark::DoNotOptimize(q.pop());
    }
}
BENCHMARK(BM_EventQueuePushPop);

// --- Epoch-pipeline regression guard ---------------------------------------

// The speedup the PR claims is against the pipeline it replaced, so the
// baseline below is a line-for-line reproduction of the pre-refactor
// epoch loop: an adjacency-list graph rebuilt from scratch every epoch
// (fresh per-node vectors, cold visibility scans) and a lazy-insertion
// std::priority_queue Dijkstra allocating its queue, done-flags and
// output tree per destination per epoch. Where the replica deviates it
// deviates in the baseline's favor (trees land in a flat vector instead
// of the historical map), so the reported speedup is a floor, not a
// flattered number.
namespace legacy {

struct LegacyGraph {
    int num_satellites = 0;
    std::vector<std::vector<route::Edge>> adj;
    std::vector<char> relay;
    int gs_node(int gs_index) const { return num_satellites + gs_index; }
    void add_undirected_edge(int a, int b, double d) {
        adj[static_cast<std::size_t>(a)].push_back({b, d});
        adj[static_cast<std::size_t>(b)].push_back({a, d});
    }
};

LegacyGraph build_snapshot(const topo::SatelliteMobility& mobility,
                           const std::vector<topo::Isl>& isls,
                           const std::vector<orbit::GroundStation>& gses, TimeNs t) {
    LegacyGraph g;
    g.num_satellites = mobility.num_satellites();
    const auto n =
        static_cast<std::size_t>(g.num_satellites) + gses.size();
    g.adj.assign(n, {});
    g.relay.assign(n, 0);
    for (int i = 0; i < g.num_satellites; ++i) g.relay[static_cast<std::size_t>(i)] = 1;
    mobility.warm_cache(t);
    for (const auto& isl : isls) {
        const double d = mobility.position_ecef(isl.sat_a, t)
                             .distance_to(mobility.position_ecef(isl.sat_b, t));
        g.add_undirected_edge(isl.sat_a, isl.sat_b, d);
    }
    for (std::size_t gi = 0; gi < gses.size(); ++gi) {
        const int gs_node = g.gs_node(static_cast<int>(gi));
        for (const auto& entry : topo::visible_satellites(gses[gi], mobility, t)) {
            g.add_undirected_edge(gs_node, entry.sat_id, entry.range_km);
        }
    }
    return g;
}

route::DestinationTree dijkstra_to(const LegacyGraph& graph, int destination) {
    const std::size_t n = graph.adj.size();
    route::DestinationTree tree;
    tree.destination = destination;
    tree.distance_km.assign(n, route::kInfDistance);
    tree.next_hop.assign(n, -1);
    using QueueItem = std::pair<double, int>;  // (distance, node)
    std::priority_queue<QueueItem, std::vector<QueueItem>, std::greater<>> pq;
    std::vector<char> done(n, 0);
    tree.distance_km[static_cast<std::size_t>(destination)] = 0.0;
    pq.push({0.0, destination});
    while (!pq.empty()) {
        const auto [dist, u] = pq.top();
        pq.pop();
        const auto ui = static_cast<std::size_t>(u);
        if (done[ui]) continue;
        done[ui] = 1;
        if (u != destination && !graph.relay[ui]) continue;
        for (const route::Edge& e : graph.adj[ui]) {
            const auto vi = static_cast<std::size_t>(e.to);
            const double nd = dist + e.distance_km;
            if (nd < tree.distance_km[vi]) {
                tree.distance_km[vi] = nd;
                tree.next_hop[vi] = u;
                pq.push({nd, e.to});
            }
        }
    }
    return tree;
}

}  // namespace legacy

struct PipelineResult {
    double epochs_per_s = 0.0;
    double allocs_per_epoch = 0.0;
};

enum class PipelineMode { kSeedBaseline, kRebuild, kRefresh };

// Measures the full snapshot + forwarding precompute phase, 100 ms
// epochs, Starlink S1 over the 100 most populous cities — the hot loop
// every epoch consumer (packet fstate installs, flowsim, path analysis)
// sits on. Each mode gets its own cold mobility cache so no mode
// inherits another's SGP4 fills.
PipelineResult measure_epoch_pipeline(PipelineMode mode, int warmup_epochs,
                                      int measured_epochs) {
    const topo::Constellation constellation(topo::shell_by_name("starlink_s1"),
                                            topo::default_epoch());
    const topo::SatelliteMobility mob(constellation);
    const auto isls = topo::build_isls(constellation, topo::IslPattern::kPlusGrid);
    const auto gses = topo::top100_cities();
    const TimeNs step = 100 * kNsPerMs;
    const int num_gs = static_cast<int>(gses.size());

    route::SnapshotRefresher refresher(mob, isls, gses);
    std::vector<int> dests;
    for (int gs = 0; gs < num_gs; ++gs) {
        dests.push_back(refresher.graph().gs_node(gs));
    }
    route::ForwardingState state;  // recycled (refresh mode only)

    const auto run_epoch = [&](TimeNs t) {
        switch (mode) {
            case PipelineMode::kSeedBaseline: {
                const legacy::LegacyGraph g =
                    legacy::build_snapshot(mob, isls, gses, t);
                std::vector<route::DestinationTree> trees;
                trees.reserve(dests.size());
                for (const int d : dests) trees.push_back(legacy::dijkstra_to(g, d));
                benchmark::DoNotOptimize(trees.data());
                break;
            }
            case PipelineMode::kRebuild: {
                const route::Graph g = route::build_snapshot(mob, isls, gses, t);
                benchmark::DoNotOptimize(route::compute_forwarding(g, dests));
                break;
            }
            case PipelineMode::kRefresh:
                route::compute_forwarding_into(refresher.refresh(t), dests, state);
                break;
        }
    };

    TimeNs t = 0;
    for (int e = 0; e < warmup_epochs; ++e, t += step) run_epoch(t);

    const std::uint64_t allocs_before =
        g_alloc_count.load(std::memory_order_relaxed);
    const auto t0 = std::chrono::steady_clock::now();
    for (int e = 0; e < measured_epochs; ++e, t += step) run_epoch(t);
    const double elapsed_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    const std::uint64_t allocs =
        g_alloc_count.load(std::memory_order_relaxed) - allocs_before;

    PipelineResult r;
    r.epochs_per_s = static_cast<double>(measured_epochs) / elapsed_s;
    r.allocs_per_epoch =
        static_cast<double>(allocs) / static_cast<double>(measured_epochs);
    return r;
}

void write_routing_pipeline_report() {
    constexpr int kWarmup = 5;
    constexpr int kMeasured = 40;
    const PipelineResult baseline =
        measure_epoch_pipeline(PipelineMode::kSeedBaseline, kWarmup, kMeasured);
    const PipelineResult rebuild =
        measure_epoch_pipeline(PipelineMode::kRebuild, kWarmup, kMeasured);
    const PipelineResult refresh =
        measure_epoch_pipeline(PipelineMode::kRefresh, kWarmup, kMeasured);
    // The acceptance number: the shipped refresh pipeline against the
    // epoch loop this PR replaced (see the legacy namespace above).
    const double speedup = refresh.epochs_per_s / baseline.epochs_per_s;
    const double speedup_vs_current = refresh.epochs_per_s / rebuild.epochs_per_s;
    const std::size_t threads = util::ThreadPool::global().num_threads();

    const std::string path = util::output_path("bench_output", "BENCH_routing.json");
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        std::exit(1);
    }
    std::fprintf(
        f,
        "{\n"
        "  \"bench\": \"routing_epoch_pipeline\",\n"
        "  \"constellation\": \"starlink_s1\",\n"
        "  \"num_ground_stations\": 100,\n"
        "  \"epoch_ms\": 100,\n"
        "  \"warmup_epochs\": %d,\n"
        "  \"measured_epochs\": %d,\n"
        "  \"threads\": %zu,\n"
        "  \"baseline_definition\": \"pre-refactor pipeline replica: "
        "adjacency-list graph rebuilt per epoch, binary-heap Dijkstra with "
        "per-run allocations\",\n"
        "  \"baseline_rebuild\": {\"epochs_per_s\": %.4f, \"allocs_per_epoch\": "
        "%.1f},\n"
        "  \"rebuild\": {\"epochs_per_s\": %.4f, \"allocs_per_epoch\": %.1f},\n"
        "  \"refresh\": {\"epochs_per_s\": %.4f, \"allocs_per_epoch\": %.1f},\n"
        "  \"speedup_vs_rebuild\": %.4f,\n"
        "  \"speedup_vs_current_rebuild\": %.4f\n"
        "}\n",
        kWarmup, kMeasured, threads, baseline.epochs_per_s,
        baseline.allocs_per_epoch, rebuild.epochs_per_s, rebuild.allocs_per_epoch,
        refresh.epochs_per_s, refresh.allocs_per_epoch, speedup,
        speedup_vs_current);
    std::fclose(f);
    std::printf(
        "routing epoch pipeline (starlink_s1, 100 GS): baseline(seed) %.2f "
        "epochs/s (%.0f allocs/epoch), rebuild %.2f epochs/s (%.0f "
        "allocs/epoch), refresh %.2f epochs/s (%.0f allocs/epoch), "
        "speedup_vs_rebuild %.2fx, vs_current_rebuild %.2fx -> %s\n",
        baseline.epochs_per_s, baseline.allocs_per_epoch, rebuild.epochs_per_s,
        rebuild.allocs_per_epoch, refresh.epochs_per_s, refresh.allocs_per_epoch,
        speedup, speedup_vs_current, path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    write_routing_pipeline_report();
    return 0;
}
