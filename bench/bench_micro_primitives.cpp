// Micro-benchmarks (google-benchmark) for the primitives that set the
// simulator's pace (and hence Fig 2's slowdown): SGP4 propagation, GMST,
// cached mobility lookups, topology snapshots, per-destination Dijkstra,
// forwarding-state computation, and event-queue throughput.
#include <benchmark/benchmark.h>

#include <chrono>

#include "src/orbit/sgp4.hpp"
#include "src/orbit/tle.hpp"
#include "src/routing/forwarding.hpp"
#include "src/routing/shortest_path.hpp"
#include "src/sim/event_queue.hpp"
#include "src/topology/cities.hpp"
#include "src/topology/visibility.hpp"
#include "src/util/thread_pool.hpp"

using namespace hypatia;

namespace {

const topo::Constellation& kuiper() {
    static const topo::Constellation c(topo::shell_by_name("kuiper_k1"),
                                       topo::default_epoch());
    return c;
}

void BM_Sgp4Propagate(benchmark::State& state) {
    const auto& sat = kuiper().satellite(0);
    double t = 0.0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(sat.sgp4->propagate_minutes(t));
        t += 0.001;
    }
}
BENCHMARK(BM_Sgp4Propagate);

void BM_Gmst(benchmark::State& state) {
    auto jd = topo::default_epoch();
    for (auto _ : state) {
        benchmark::DoNotOptimize(orbit::gmst_radians(jd));
        jd = jd.plus_seconds(1.0);
    }
}
BENCHMARK(BM_Gmst);

void BM_MobilityCachedLookup(benchmark::State& state) {
    const topo::SatelliteMobility mob(kuiper());
    TimeNs t = 0;
    int sat = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(mob.position_ecef(sat, t));
        sat = (sat + 1) % mob.num_satellites();
        if (sat == 0) t += kNsPerMs;
    }
}
BENCHMARK(BM_MobilityCachedLookup);

void BM_TleParse(benchmark::State& state) {
    const auto tle = kuiper().satellite(7).tle;
    const auto l1 = tle.line1();
    const auto l2 = tle.line2();
    for (auto _ : state) {
        benchmark::DoNotOptimize(orbit::Tle::parse(l1, l2));
    }
}
BENCHMARK(BM_TleParse);

void BM_VisibleSatellites(benchmark::State& state) {
    const topo::SatelliteMobility mob(kuiper());
    const auto tokyo = topo::city_by_name("Tokyo");
    TimeNs t = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(topo::visible_satellites(tokyo, mob, t));
        t += 100 * kNsPerMs;
    }
}
BENCHMARK(BM_VisibleSatellites);

void BM_TopologySnapshot(benchmark::State& state) {
    const topo::SatelliteMobility mob(kuiper());
    const auto isls = topo::build_isls(kuiper(), topo::IslPattern::kPlusGrid);
    const auto gses = topo::top100_cities();
    TimeNs t = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(route::build_snapshot(mob, isls, gses, t));
        t += 100 * kNsPerMs;
    }
}
BENCHMARK(BM_TopologySnapshot)->Unit(benchmark::kMillisecond);

void BM_DijkstraPerDestination(benchmark::State& state) {
    const topo::SatelliteMobility mob(kuiper());
    const auto isls = topo::build_isls(kuiper(), topo::IslPattern::kPlusGrid);
    const auto gses = topo::top100_cities();
    const auto graph = route::build_snapshot(mob, isls, gses, 0);
    int dst = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(route::dijkstra_to(graph, graph.gs_node(dst)));
        dst = (dst + 1) % 100;
    }
}
BENCHMARK(BM_DijkstraPerDestination)->Unit(benchmark::kMillisecond);

// The routing-precompute hot loop (100 destination Dijkstras over one
// kuiper snapshot) at 1/2/4/8 pool lanes. Reports "speedup_vs_serial"
// against the 1-lane run of the same process — on an 8-core runner the
// 8-lane entry is expected to show >= 3x (the PR's acceptance bar); on
// fewer cores the counter degrades gracefully and "threads" records the
// configuration so CI logs stay interpretable.
void BM_ForwardingPrecomputeParallel(benchmark::State& state) {
    static double serial_ns_per_iter = 0.0;  // filled by the Arg(1) run
    const auto threads = static_cast<std::size_t>(state.range(0));
    const topo::SatelliteMobility mob(kuiper());
    const auto isls = topo::build_isls(kuiper(), topo::IslPattern::kPlusGrid);
    const auto gses = topo::top100_cities();
    const auto graph = route::build_snapshot(mob, isls, gses, 0);
    std::vector<int> dests;
    for (int gs = 0; gs < static_cast<int>(gses.size()); ++gs) {
        dests.push_back(graph.gs_node(gs));
    }
    util::ThreadPool::set_global_threads(threads);
    const auto t0 = std::chrono::steady_clock::now();
    std::size_t iters = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(route::compute_forwarding(graph, dests));
        ++iters;
    }
    const double ns_per_iter =
        static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                std::chrono::steady_clock::now() - t0)
                                .count()) /
        static_cast<double>(iters);
    util::ThreadPool::set_global_threads(0);
    if (threads == 1) serial_ns_per_iter = ns_per_iter;
    state.counters["threads"] = static_cast<double>(threads);
    if (serial_ns_per_iter > 0.0) {
        state.counters["speedup_vs_serial"] = serial_ns_per_iter / ns_per_iter;
    }
}
BENCHMARK(BM_ForwardingPrecomputeParallel)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_EventQueuePushPop(benchmark::State& state) {
    sim::EventQueue q;
    TimeNs t = 0;
    // Keep a steady population of 10k events, push+pop per iteration.
    for (int i = 0; i < 10000; ++i) q.push(t++, [] {});
    for (auto _ : state) {
        q.push(t++, [] {});
        benchmark::DoNotOptimize(q.pop());
    }
}
BENCHMARK(BM_EventQueuePushPop);

}  // namespace

BENCHMARK_MAIN();
