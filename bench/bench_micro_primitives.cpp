// Micro-benchmarks (google-benchmark) for the primitives that set the
// simulator's pace (and hence Fig 2's slowdown): SGP4 propagation, GMST,
// cached mobility lookups, topology snapshots, per-destination Dijkstra,
// forwarding-state computation, and event-queue throughput.
#include <benchmark/benchmark.h>

#include "src/orbit/sgp4.hpp"
#include "src/orbit/tle.hpp"
#include "src/routing/shortest_path.hpp"
#include "src/sim/event_queue.hpp"
#include "src/topology/cities.hpp"
#include "src/topology/visibility.hpp"

using namespace hypatia;

namespace {

const topo::Constellation& kuiper() {
    static const topo::Constellation c(topo::shell_by_name("kuiper_k1"),
                                       topo::default_epoch());
    return c;
}

void BM_Sgp4Propagate(benchmark::State& state) {
    const auto& sat = kuiper().satellite(0);
    double t = 0.0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(sat.sgp4->propagate_minutes(t));
        t += 0.001;
    }
}
BENCHMARK(BM_Sgp4Propagate);

void BM_Gmst(benchmark::State& state) {
    auto jd = topo::default_epoch();
    for (auto _ : state) {
        benchmark::DoNotOptimize(orbit::gmst_radians(jd));
        jd = jd.plus_seconds(1.0);
    }
}
BENCHMARK(BM_Gmst);

void BM_MobilityCachedLookup(benchmark::State& state) {
    const topo::SatelliteMobility mob(kuiper());
    TimeNs t = 0;
    int sat = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(mob.position_ecef(sat, t));
        sat = (sat + 1) % mob.num_satellites();
        if (sat == 0) t += kNsPerMs;
    }
}
BENCHMARK(BM_MobilityCachedLookup);

void BM_TleParse(benchmark::State& state) {
    const auto tle = kuiper().satellite(7).tle;
    const auto l1 = tle.line1();
    const auto l2 = tle.line2();
    for (auto _ : state) {
        benchmark::DoNotOptimize(orbit::Tle::parse(l1, l2));
    }
}
BENCHMARK(BM_TleParse);

void BM_VisibleSatellites(benchmark::State& state) {
    const topo::SatelliteMobility mob(kuiper());
    const auto tokyo = topo::city_by_name("Tokyo");
    TimeNs t = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(topo::visible_satellites(tokyo, mob, t));
        t += 100 * kNsPerMs;
    }
}
BENCHMARK(BM_VisibleSatellites);

void BM_TopologySnapshot(benchmark::State& state) {
    const topo::SatelliteMobility mob(kuiper());
    const auto isls = topo::build_isls(kuiper(), topo::IslPattern::kPlusGrid);
    const auto gses = topo::top100_cities();
    TimeNs t = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(route::build_snapshot(mob, isls, gses, t));
        t += 100 * kNsPerMs;
    }
}
BENCHMARK(BM_TopologySnapshot)->Unit(benchmark::kMillisecond);

void BM_DijkstraPerDestination(benchmark::State& state) {
    const topo::SatelliteMobility mob(kuiper());
    const auto isls = topo::build_isls(kuiper(), topo::IslPattern::kPlusGrid);
    const auto gses = topo::top100_cities();
    const auto graph = route::build_snapshot(mob, isls, gses, 0);
    int dst = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(route::dijkstra_to(graph, graph.gs_node(dst)));
        dst = (dst + 1) % 100;
    }
}
BENCHMARK(BM_DijkstraPerDestination)->Unit(benchmark::kMillisecond);

void BM_EventQueuePushPop(benchmark::State& state) {
    sim::EventQueue q;
    TimeNs t = 0;
    // Keep a steady population of 10k events, push+pop per iteration.
    for (int i = 0; i < 10000; ++i) q.push(t++, [] {});
    for (auto _ : state) {
        q.push(t++, [] {});
        benchmark::DoNotOptimize(q.pop());
    }
}
BENCHMARK(BM_EventQueuePushPop);

}  // namespace

BENCHMARK_MAIN();
