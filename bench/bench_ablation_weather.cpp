// Ablation: weather (the paper's section 7 extension). Rain cells at
// ground stations shrink the usable GSL cone (rain fade eats the link
// budget). The bench compares clear-sky Kuiper K1 against runs with
// increasingly aggressive rain, reporting reachability and path churn —
// the raw material for work on weather-aware routing.
#include <cstdio>

#include "bench/common.hpp"
#include "src/routing/path_analysis.hpp"
#include "src/topology/cities.hpp"
#include "src/topology/weather.hpp"

using namespace hypatia;

int main(int argc, char** argv) {
    bench::BenchArgs args(argc, argv);
    bench::print_header("Ablation: clear sky vs rain-faded GSL cones (Kuiper K1)");
    const TimeNs duration = seconds_to_ns(args.duration_s(200.0, 400.0));
    const TimeNs step = ms_to_ns(args.step_ms(500.0, 100.0));

    const topo::Constellation k1(topo::shell_by_name("kuiper_k1"),
                                 topo::default_epoch());
    const topo::SatelliteMobility mob(k1);
    const auto isls = topo::build_isls(k1, topo::IslPattern::kPlusGrid);
    const auto gses = topo::top100_cities();
    auto pairs = route::random_permutation_pairs(100, 42);

    struct WeatherCase {
        const char* label;
        double rain_probability;
        double range_factor;
    };
    const std::vector<WeatherCase> cases = {
        {"clear sky", 0.0, 1.0},
        {"light rain (p=0.1, r=0.8)", 0.1, 0.8},
        {"heavy rain (p=0.3, r=0.6)", 0.3, 0.6},
    };

    util::CsvWriter csv(bench::out_path("ablation_weather.csv"));
    csv.header({"case", "unreachable_fraction", "median_path_changes",
                "median_max_rtt_ms"});

    int case_id = 0;
    for (const auto& wc : cases) {
        topo::WeatherModel::Config cfg;
        cfg.rain_probability = wc.rain_probability;
        cfg.rain_range_factor = wc.range_factor;
        cfg.cell_duration = 60 * kNsPerSec;  // short cells so 200 s sees several
        const topo::WeatherModel weather(cfg);

        route::AnalysisOptions opt;
        opt.t_end = duration;
        opt.step = step;
        if (wc.rain_probability > 0.0) {
            opt.gsl_range_factor = [&weather](int gs, TimeNs t) {
                return weather.gsl_range_factor(gs, t);
            };
        }
        const auto res = route::analyze_pairs(mob, isls, gses, pairs, opt);

        std::uint64_t unreachable = 0, total = 0;
        std::vector<double> changes, max_rtts;
        for (const auto& s : res.pair_stats) {
            unreachable += static_cast<std::uint64_t>(s.unreachable_steps);
            total += static_cast<std::uint64_t>(s.total_steps);
            if (s.ever_reachable()) {
                changes.push_back(s.path_changes);
                max_rtts.push_back(s.max_rtt_s * 1e3);
            }
        }
        const double unreach_frac = static_cast<double>(unreachable) /
                                    static_cast<double>(std::max<std::uint64_t>(1, total));
        const double med_changes = util::summarize(changes).median;
        const double med_rtt = util::summarize(max_rtts).median;
        std::printf("%-28s unreachable %6.2f%%  path changes med %5.1f  "
                    "max RTT med %6.1f ms\n",
                    wc.label, 100.0 * unreach_frac, med_changes, med_rtt);
        csv.row({static_cast<double>(case_id++), unreach_frac, med_changes, med_rtt});
    }
    std::printf("\nexpected: rain shrinks GSL cones -> fewer satellite options,\n"
                "more churn and outages — motivating weather-aware TE (paper\n"
                "sec. 7). CSV: %s\n", bench::out_path("ablation_weather.csv").c_str());
    return 0;
}
