// Emulation export + real-time pacing guard (DESIGN.md §10): Starlink
// S1 with the section-4 city pairs under a seeded satellite-failure
// schedule, 100 ms epochs. Three phases:
//   1. batch export — emu::ScheduleExporter sweeps the window and the
//      per-pair schedules are written to bench_output as CSV, JSONL and
//      tc/netem replay scripts;
//   2. free run — emu::RealtimePacer with pacing disabled measures the
//      real-time factor (simulated seconds per busy wall second) of the
//      refresh pipeline, and its schedules are checked byte-identical
//      to the batch export;
//   3. paced run — the pacer sleeps each epoch to its wall-clock
//      deadline (speed from HYPATIA_REALTIME or --speed) and reports
//      the deadline-miss rate.
// Writes bench_output/BENCH_emu.json. Exits non-zero when the free-run
// real-time factor drops below 1.0 (the pipeline can no longer drive a
// live emulation at 100 ms epochs), when paced and batch schedules
// diverge, or when the faulted run shows no loss windows at all.
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "bench/paper_pairs.hpp"
#include "src/emu/export.hpp"
#include "src/emu/realtime.hpp"

namespace hypatia {
namespace {

std::string file_token(std::string name) {
    for (char& c : name) {
        if (c == ' ' || c == '/' || c == '\\') c = '_';
    }
    return name;
}

void write_file(const std::string& path, const std::string& body) {
    std::ofstream out(path, std::ios::binary);
    out << body;
}

int run(int argc, char** argv) {
    bench::BenchArgs args(argc, argv);
    const double duration_s = args.duration_s(10.0, 60.0);
    const double step_ms = args.step_ms(100.0, 100.0);
    const double env_speed = emu::realtime_speed_from_env().value_or(1.0);
    const double speed = args.cli.get_double("speed", env_speed);
    args.cli.describe("speed", "paced-phase speed multiplier (default HYPATIA_REALTIME or 1)");
    args.finish_flags("emulation schedule export + real-time pacing on Starlink S1");
    args.manifest.set_param("speed", speed);

    bench::print_header("Emulation export + real-time pacing: Starlink S1");

    // The section-4 cities, one pair per connection, plus a seeded
    // satellite-failure schedule so the exported loss/rate series have
    // real outage windows to replay.
    std::vector<std::string> cities;
    std::vector<route::GsPair> pairs;
    for (const auto& [a, b] : bench::section4_pairs()) {
        pairs.push_back({static_cast<int>(cities.size()),
                         static_cast<int>(cities.size()) + 1});
        cities.push_back(a);
        cities.push_back(b);
    }
    core::Scenario scenario = bench::scenario_with_cities("starlink_s1", cities);
    fault::FaultConfig fault_config;
    fault_config.seed = 2026;
    fault_config.horizon = seconds_to_ns(duration_s);
    fault_config.sat_mtbf_s = 60.0;
    fault_config.sat_mttr_s = 10.0;
    // GS outages guarantee severed (loss = 100%) windows in the
    // schedules: satellite churn alone reroutes around dead nodes, it
    // rarely partitions a pair inside a short window.
    fault_config.gs_mtbf_s = 5.0;
    fault_config.gs_mttr_s = 2.0;
    scenario.faults = fault::FaultSpec{fault_config, ""};

    emu::ExportOptions eopt;
    eopt.t_end = seconds_to_ns(duration_s);
    eopt.step = ms_to_ns(step_ms);

    // Phase 1: batch export.
    emu::ScheduleExporter exporter(scenario, pairs, eopt);
    const auto& schedules = exporter.run();
    std::size_t entries = 0, loss_entries = 0, path_changes = 0;
    for (const auto& s : schedules) {
        entries += s.entries.size();
        path_changes += static_cast<std::size_t>(s.path_changes());
        for (const auto& e : s.entries) loss_entries += e.reachable ? 0 : 1;
        const std::string stem =
            "emu_" + file_token(s.src_name) + "_" + file_token(s.dst_name);
        write_file(bench::out_path(stem + ".csv"), emu::to_csv(s));
        write_file(bench::out_path(stem + ".jsonl"), emu::to_jsonl(s));
        write_file(bench::out_path(stem + "_netem.sh"), emu::render_netem_script(s));
        std::printf("%-18s -> %-18s %4zu entries, %3d path changes\n",
                    s.src_name.c_str(), s.dst_name.c_str(), s.entries.size(),
                    s.path_changes());
    }
    std::printf("batch export: %zu entries (%zu severed), %zu path changes\n",
                entries, loss_entries, path_changes);

    // Phase 2: free run — the real-time-factor measurement.
    emu::PacerOptions free_opts;
    free_opts.speed = 0.0;
    emu::RealtimePacer free_pacer(scenario, pairs, eopt, free_opts);
    const emu::PacerReport free_report = free_pacer.run();
    std::printf("free run: %zu epochs in %.3f s busy -> real-time factor %.2f\n",
                free_report.epochs, free_report.busy_s,
                free_report.realtime_factor);

    bool schedules_match = free_report.schedules.size() == schedules.size();
    for (std::size_t i = 0; schedules_match && i < schedules.size(); ++i) {
        schedules_match = emu::to_csv(free_report.schedules[i]) ==
                              emu::to_csv(schedules[i]) &&
                          emu::to_jsonl(free_report.schedules[i]) ==
                              emu::to_jsonl(schedules[i]);
    }

    // Phase 3: paced run.
    emu::PacerOptions paced_opts;
    paced_opts.speed = speed;
    emu::RealtimePacer paced_pacer(scenario, pairs, eopt, paced_opts);
    const emu::PacerReport paced_report = paced_pacer.run();
    std::printf(
        "paced run (speed %.2f): %zu epochs, %zu deadline misses (%.2f%%), "
        "%.3f s wall\n",
        speed, paced_report.epochs, paced_report.deadline_misses,
        100.0 * paced_report.miss_rate(), paced_report.wall_s);

    const std::string path = util::output_path("bench_output", "BENCH_emu.json");
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return 1;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"emu_realtime\",\n"
                 "  \"constellation\": \"starlink_s1\",\n"
                 "  \"duration_s\": %.1f,\n"
                 "  \"step_ms\": %.1f,\n"
                 "  \"schedule\": {\n"
                 "    \"pairs\": %zu,\n"
                 "    \"entries\": %zu,\n"
                 "    \"severed_entries\": %zu,\n"
                 "    \"path_changes\": %zu,\n"
                 "    \"matches_paced_run\": %s\n"
                 "  },\n"
                 "  \"freerun\": {\n"
                 "    \"epochs\": %zu,\n"
                 "    \"busy_s\": %.4f,\n"
                 "    \"realtime_factor\": %.3f\n"
                 "  },\n"
                 "  \"paced\": {\n"
                 "    \"speed\": %.2f,\n"
                 "    \"epochs\": %zu,\n"
                 "    \"deadline_misses\": %zu,\n"
                 "    \"miss_rate\": %.4f,\n"
                 "    \"wall_s\": %.3f,\n"
                 "    \"realtime_factor\": %.3f\n"
                 "  }\n"
                 "}\n",
                 duration_s, step_ms, schedules.size(), entries, loss_entries,
                 path_changes, schedules_match ? "true" : "false",
                 free_report.epochs, free_report.busy_s,
                 free_report.realtime_factor, speed, paced_report.epochs,
                 paced_report.deadline_misses, paced_report.miss_rate(),
                 paced_report.wall_s, paced_report.realtime_factor);
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());

    // Self-checks.
    if (!schedules_match) {
        std::fprintf(stderr, "FAIL: paced schedules diverge from the batch export\n");
        return 1;
    }
    if (free_report.realtime_factor < 1.0) {
        std::fprintf(stderr,
                     "FAIL: real-time factor %.2f < 1.0 at %.0f ms epochs\n",
                     free_report.realtime_factor, step_ms);
        return 1;
    }
    if (loss_entries == 0) {
        std::fprintf(stderr,
                     "FAIL: seeded fault schedule produced no severed entries\n");
        return 1;
    }
    return 0;
}

}  // namespace
}  // namespace hypatia

int main(int argc, char** argv) { return hypatia::run(argc, argv); }
