// Figs 16 & 17: Paris - Moscow connectivity over Kuiper K1 at t = 0
// (Fig 16) and around t = 159 s (Fig 17), for (a) the ISL constellation
// and (b) bent-pipe connectivity over a grid of candidate GS relays.
// The bench prints both paths at both instants and exports them as JSON.
#include <cstdio>
#include <fstream>

#include "bench/bent_pipe.hpp"
#include "bench/common.hpp"
#include "src/viz/path_export.hpp"

using namespace hypatia;

int main(int argc, char** argv) {
    bench::BenchArgs args(argc, argv);
    bench::print_header("Figs 16/17: Paris - Moscow, ISLs vs bent-pipe GS relays");
    const std::vector<double> instants = {0.0, args.cli.get_double("t-late-s", 159.0)};

    std::ofstream json(bench::out_path("fig16_17_paths.json"));
    json << "[";
    bool first = true;
    for (const bool use_isls : {true, false}) {
        core::Scenario scenario = bench::bent_pipe_scenario(use_isls);
        core::LeoNetwork leo(scenario);
        leo.add_destination(1);
        struct Capture {
            double t_s = 0.0;
            std::vector<int> path;
            double rtt_ms = -1.0;
        };
        std::vector<Capture> captures;
        double latest = 0.0;
        for (const double t_s : instants) {
            latest = std::max(latest, t_s);
            leo.simulator().schedule_at(seconds_to_ns(t_s) + 1, [&leo, &captures, t_s]() {
                Capture cap;
                cap.t_s = t_s;
                cap.path = leo.current_path(0, 1);
                const double d = leo.current_distance_km(0, 1);
                if (d != route::kInfDistance) {
                    cap.rtt_ms = 2.0 * d / orbit::kSpeedOfLightKmPerS * 1e3;
                }
                captures.push_back(std::move(cap));
            });
        }
        leo.run(seconds_to_ns(latest) + 2);
        for (const auto& cap : captures) {
            const auto resolved = viz::resolve_path(
                cap.path, leo.mobility(), scenario.ground_stations,
                leo.orbit_time(seconds_to_ns(cap.t_s)));
            std::printf("%-9s t=%6.1f s  RTT %6.2f ms\n  %s\n",
                        use_isls ? "ISL" : "bent-pipe", cap.t_s, cap.rtt_ms,
                        viz::path_to_string(resolved).c_str());
            if (!first) json << ",";
            first = false;
            json << viz::path_to_json(resolved, seconds_to_ns(cap.t_s), cap.rtt_ms);
        }
    }
    json << "]";
    std::printf("\npaper reference: bent-pipe paths hop up and down through relay\n"
                "GSes (green dots in Fig 16(b)); both reconfigure by t~159 s.\n"
                "JSON: %s\n", bench::out_path("fig16_17_paths.json").c_str());
    return 0;
}
