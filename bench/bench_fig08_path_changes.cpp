// Fig 8: path structure evolution, CDFs across GS pairs: (a) number of
// path changes over the run, (b) max hop count - min hop count, (c) max
// hop count / min hop count.
//
// Expected shape (200 s): median ~4 changes for Starlink/Kuiper, ~2 for
// Telesat; 10% of Kuiper/Starlink pairs see 7+ changes; Telesat paths
// rarely change hop count; >1/3 of Starlink pairs see >= 2 extra hops.
#include <cstdio>

#include "bench/common.hpp"
#include "bench/constellation_analysis.hpp"

using namespace hypatia;

int main(int argc, char** argv) {
    bench::BenchArgs args(argc, argv);
    bench::print_header("Fig 8: path changes and hop-count variation");
    // Path-change counting needs the paper's 100 ms granularity; the fast
    // default shortens the window instead of coarsening the step.
    const TimeNs duration = seconds_to_ns(args.duration_s(60.0, 200.0));
    const TimeNs step = ms_to_ns(args.step_ms(100.0, 100.0));

    util::CsvWriter csv(bench::out_path("fig08_path_changes.csv"));
    csv.header({"shell", "path_changes", "hop_delta", "hop_ratio"});

    for (const auto& shell : bench::section5_shells()) {
        const auto a = bench::analyze_constellation(shell, duration, step);
        std::vector<double> changes, hop_delta, hop_ratio;
        for (const auto& stats : a.result.pair_stats) {
            if (!stats.ever_reachable()) continue;
            changes.push_back(static_cast<double>(stats.path_changes));
            hop_delta.push_back(static_cast<double>(stats.max_hops - stats.min_hops));
            hop_ratio.push_back(static_cast<double>(stats.max_hops) /
                                std::max(1, stats.min_hops));
        }
        for (std::size_t i = 0; i < changes.size(); ++i) {
            double shell_id =
                shell == "telesat_t1" ? 0.0 : shell == "kuiper_k1" ? 1.0 : 2.0;
            csv.row({shell_id, changes[i], hop_delta[i], hop_ratio[i]});
        }
        const auto sc = util::summarize(changes);
        const auto sd = util::summarize(hop_delta);
        const auto sr = util::summarize(hop_ratio);
        std::printf("%-12s changes med %4.1f p90 %4.1f | hop delta med %3.1f | "
                    "hop ratio med %.2f p90 %.2f\n",
                    shell.c_str(), sc.median, sc.p90, sd.median, sr.median, sr.p90);
        bench::print_ecdf("  " + shell + " path changes", changes, 8);
    }
    std::printf("\npaper reference (200 s): median 4 changes (Starlink/Kuiper), 2\n"
                "(Telesat); 10%% of pairs see 7+; >1/3 of Starlink pairs gain >= 2\n"
                "hops. Run with --paper for the 200 s window. CSV: %s\n",
                bench::out_path("fig08_path_changes.csv").c_str());
    return 0;
}
