// Checkpoint overhead + recovery guard (DESIGN.md §13): the emulation
// export pipeline on Starlink S1 with a seeded ground-station fault,
// run three ways —
//   1. base — checkpointing off, timed;
//   2. periodic — a realistic HYPATIA_CKPT_INTERVAL_S-style policy
//      (durable write when due, armed in-memory image every step),
//      timed against the base run for the overhead fraction;
//   3. recovery — checkpoint every step, drop every generation past the
//      midpoint (simulating a crash), resume, and require the resumed
//      schedules byte-identical to the base run; write and restore
//      latency measured directly.
// Writes bench_output/BENCH_ckpt.json. Exits non-zero when the resumed
// schedules diverge, when no checkpoint survives the fuzz of a real
// run, or when the periodic-checkpoint overhead exceeds 5% (plus a
// 50 ms absolute floor so ~second-long CI runs don't fail on noise).
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "bench/paper_pairs.hpp"
#include "src/ckpt/checkpoint.hpp"
#include "src/emu/export.hpp"
#include "src/fault/fault.hpp"
#include "src/emu/schedule.hpp"
#include "src/obs/observability.hpp"

namespace hypatia {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

std::string ckpt_dir(const char* leaf) {
    const std::string dir = util::output_path("bench_output", leaf);
    return dir;
}

void clear_generations(const std::string& dir, int from, int to) {
    for (int g = from; g <= to; ++g) {
        char buf[512];
        std::snprintf(buf, sizeof(buf), "%s/ckpt-%010d.hyc", dir.c_str(), g);
        ::unlink(buf);
    }
}

int run(int argc, char** argv) {
    bench::BenchArgs args(argc, argv);
    const double duration_s = args.duration_s(10.0, 60.0);
    const double step_ms = args.step_ms(100.0, 100.0);
    args.finish_flags("checkpoint overhead + crash-recovery on Starlink S1");

    bench::print_header("Checkpoint overhead + recovery: Starlink S1");

    // Two section-4 pairs and a deterministic mid-run ground-station
    // outage, so the checkpointed state includes severed windows and a
    // live fault cursor.
    core::Scenario scenario = bench::scenario_with_cities(
        "starlink_s1", {"Rio de Janeiro", "Saint Petersburg", "Istanbul",
                        "New York"});
    std::vector<fault::FaultEvent> events;
    events.push_back({fault::FaultKind::kGroundStation, 0, -1,
                      seconds_to_ns(duration_s * 0.3),
                      seconds_to_ns(duration_s * 0.6)});
    const fault::FaultSchedule schedule = fault::FaultSchedule::from_events(
        events, scenario.shell.num_satellites(),
        static_cast<int>(scenario.ground_stations.size()));
    const std::string fault_csv = bench::out_path("ckpt_bench_faults.csv");
    schedule.save_csv(fault_csv);
    scenario.faults = fault::FaultSpec{std::nullopt, fault_csv};

    emu::ExportOptions eopt;
    eopt.t_end = seconds_to_ns(duration_s);
    eopt.step = ms_to_ns(step_ms);
    const std::vector<route::GsPair> pairs = {{0, 1}, {2, 3}};

    // Phase 1: base run, checkpointing off.
    emu::ExportOptions base_opt = eopt;
    base_opt.checkpoint = ckpt::Policy::disabled();
    emu::ScheduleExporter base(scenario, pairs, base_opt);
    const Clock::time_point b0 = Clock::now();
    const auto& base_schedules = base.run();
    const double base_wall = seconds_since(b0);
    const std::size_t steps = base.num_steps();
    std::printf("base:     %zu steps in %.3f s\n", steps, base_wall);

    // Phase 2: periodic policy — durable write every 0.5 s of wall
    // time, the in-memory image re-armed at every other boundary (the
    // configuration a long-running deployment uses).
    ckpt::Policy periodic;
    periodic.dir = ckpt_dir("ckpt_bench_periodic");
    periodic.interval_s = 0.5;
    clear_generations(periodic.dir, 0, 4096);
    emu::ExportOptions periodic_opt = eopt;
    periodic_opt.checkpoint = periodic;
    emu::ScheduleExporter timed(scenario, pairs, periodic_opt);
    const Clock::time_point p0 = Clock::now();
    timed.run();
    const double ckpt_wall = seconds_since(p0);
    const double overhead_frac =
        base_wall > 0.0 ? (ckpt_wall - base_wall) / base_wall : 0.0;
    std::printf("periodic: %zu steps in %.3f s (overhead %.2f%%)\n", steps,
                ckpt_wall, 100.0 * overhead_frac);

    // Phase 3: recovery. Checkpoint every step, then drop everything
    // past the midpoint and resume.
    ckpt::Policy every;
    every.dir = ckpt_dir("ckpt_bench_recovery");
    every.interval_s = 0.0;
    every.keep = 1 << 20;
    clear_generations(every.dir, 0, 4096);
    emu::ExportOptions every_opt = eopt;
    every_opt.checkpoint = every;
    emu::ScheduleExporter writer(scenario, pairs, every_opt);
    writer.run();
    const std::size_t checkpoints_written = steps > 0 ? steps - 1 : 0;
    clear_generations(every.dir, static_cast<int>(steps / 2),
                      static_cast<int>(steps + 8));

    // Restore latency: manager scan + decode + exporter state rebuild.
    every.resume = true;
    emu::ExportOptions resume_opt = eopt;
    resume_opt.checkpoint = ckpt::Policy::disabled();
    emu::ScheduleExporter resumed(scenario, pairs, resume_opt);
    ckpt::Manager manager(every);
    const Clock::time_point r0 = Clock::now();
    const auto saved = manager.load_latest();
    bool restored = false;
    if (saved.has_value()) {
        if (const ckpt::Section* s = saved->find("emu.exporter")) {
            restored = resumed.restore_state(s->payload);
        }
    }
    const double restore_ms = seconds_since(r0) * 1e3;
    const std::size_t resume_step = resumed.next_step();
    resumed.run();

    bool resume_identical = restored && resumed.schedules().size() ==
                                            base_schedules.size();
    for (std::size_t i = 0; resume_identical && i < base_schedules.size(); ++i) {
        resume_identical =
            emu::to_csv(resumed.schedules()[i]) == emu::to_csv(base_schedules[i]);
    }
    std::printf("recovery: resumed at step %zu/%zu in %.2f ms, schedules %s\n",
                resume_step, steps, restore_ms,
                resume_identical ? "byte-identical" : "DIVERGED");

    // Write latency: one explicit durable write of the final image.
    const Clock::time_point w0 = Clock::now();
    ckpt::Checkpoint final_image;
    final_image.epoch_index = steps;
    final_image.sim_time = eopt.t_end;
    final_image.add("emu.exporter", resumed.save_state());
    ckpt::Writer mw;
    ckpt::save_metrics_section(mw);
    final_image.add("obs.metrics", mw.take());
    const std::uint64_t image_bytes = ckpt::encode(final_image).size();
    manager.write(std::move(final_image));
    const double write_ms = seconds_since(w0) * 1e3;
    std::printf("write:    %.2f ms for a %llu-byte image\n", write_ms,
                static_cast<unsigned long long>(image_bytes));

    const std::string path = util::output_path("bench_output", "BENCH_ckpt.json");
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return 1;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"ckpt\",\n"
                 "  \"constellation\": \"starlink_s1\",\n"
                 "  \"duration_s\": %.1f,\n"
                 "  \"step_ms\": %.1f,\n"
                 "  \"pairs\": %zu,\n"
                 "  \"steps\": %zu,\n"
                 "  \"base\": {\n"
                 "    \"wall_s\": %.4f\n"
                 "  },\n"
                 "  \"periodic\": {\n"
                 "    \"wall_s\": %.4f,\n"
                 "    \"overhead_frac\": %.4f\n"
                 "  },\n"
                 "  \"recovery\": {\n"
                 "    \"checkpoints_written\": %zu,\n"
                 "    \"resume_step\": %zu,\n"
                 "    \"image_bytes\": %llu,\n"
                 "    \"write_ms\": %.3f,\n"
                 "    \"restore_ms\": %.3f,\n"
                 "    \"resume_identical\": %d\n"
                 "  }\n"
                 "}\n",
                 duration_s, step_ms, pairs.size(), steps, base_wall, ckpt_wall,
                 overhead_frac, checkpoints_written, resume_step,
                 static_cast<unsigned long long>(image_bytes), write_ms,
                 restore_ms, resume_identical ? 1 : 0);
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());

    // Self-checks.
    if (!resume_identical) {
        std::fprintf(stderr,
                     "FAIL: resumed schedules diverge from the base run\n");
        return 1;
    }
    if (resume_step == 0 || resume_step >= steps) {
        std::fprintf(stderr, "FAIL: resume did not start mid-run (step %zu)\n",
                     resume_step);
        return 1;
    }
    // 5%% relative plus a 50 ms absolute floor: on a ~1 s CI run the
    // floor absorbs scheduler noise; on longer runs the 5%% dominates.
    if (ckpt_wall > base_wall * 1.05 + 0.05) {
        std::fprintf(stderr,
                     "FAIL: periodic checkpoint overhead %.2f%% exceeds 5%%\n",
                     100.0 * overhead_frac);
        return 1;
    }
    return 0;
}

}  // namespace
}  // namespace hypatia

int main(int argc, char** argv) { return hypatia::run(argc, argv); }
