// Fig 5: loss- vs delay-based congestion control on the Rio de Janeiro -
// St. Petersburg Kuiper path (each algorithm run alone, no competing
// traffic): (a) per-packet RTT, (b) congestion window, (c) throughput
// over 100 ms intervals.
//
// Expected shape: NewReno fills the queue (RTT rides far above the
// computed propagation RTT); Vegas tracks the propagation RTT with a
// near-empty queue, but interprets an RTT *increase from satellite
// motion* as congestion, cuts its window, and its throughput collapses
// for the rest of the run (paper: from ~35 s on).
#include <cstdio>

#include "bench/common.hpp"
#include "bench/paper_pairs.hpp"
#include "src/core/experiment.hpp"

using namespace hypatia;

int main(int argc, char** argv) {
    bench::BenchArgs args(argc, argv);
    bench::print_header("Fig 5: NewReno vs Vegas on Rio de Janeiro - St. Petersburg");
    const TimeNs duration = seconds_to_ns(args.duration_s(200.0, 200.0));
    const TimeNs bin = 100 * kNsPerMs;

    for (const std::string cc : {"newreno", "vegas"}) {
        auto scenario = bench::scenario_with_cities(
            "kuiper_k1", {"Rio de Janeiro", "Saint Petersburg"});
        core::LeoNetwork leo(scenario);
        auto flows = core::attach_tcp_flows(leo, {{0, 1}}, cc);
        flows[0]->enable_delivery_bins(bin, duration);
        leo.run(duration);
        const auto& flow = *flows[0];

        util::CsvWriter rtt_csv(bench::out_path("fig05_rtt_" + cc + ".csv"));
        rtt_csv.header({"t_s", "rtt_ms"});
        for (const auto& s : flow.rtt_trace()) {
            rtt_csv.row({ns_to_seconds(s.t), ns_to_ms(s.rtt)});
        }
        util::CsvWriter cwnd_csv(bench::out_path("fig05_cwnd_" + cc + ".csv"));
        cwnd_csv.header({"t_s", "cwnd_segments"});
        for (const auto& s : flow.cwnd_trace()) {
            cwnd_csv.row({ns_to_seconds(s.t), s.cwnd});
        }
        util::CsvWriter rate_csv(bench::out_path("fig05_rate_" + cc + ".csv"));
        rate_csv.header({"t_s", "throughput_mbps"});
        const auto rates = flow.delivery_rate_bps();
        for (std::size_t i = 0; i < rates.size(); ++i) {
            rate_csv.row({static_cast<double>(i) * ns_to_seconds(bin), rates[i] / 1e6});
        }

        // Summaries: average throughput over the first and second half.
        double first_half = 0.0, second_half = 0.0;
        const std::size_t half = rates.size() / 2;
        for (std::size_t i = 0; i < rates.size(); ++i) {
            (i < half ? first_half : second_half) += rates[i];
        }
        first_half /= static_cast<double>(half);
        second_half /= static_cast<double>(rates.size() - half);
        std::printf("%-8s goodput: first half %6.2f Mbit/s, second half %6.2f "
                    "Mbit/s  (fast_rtx %llu, rtos %llu)\n",
                    cc.c_str(), first_half / 1e6, second_half / 1e6,
                    static_cast<unsigned long long>(flow.fast_retransmits()),
                    static_cast<unsigned long long>(flow.timeouts()));
    }
    std::printf("\npaper reference: Vegas collapses after the RTT increase (~35 s)\n"
                "and stays low; NewReno keeps refilling the buffer. Series in\n"
                "%s/fig05_*.csv\n", bench::out_dir().c_str());
    return 0;
}
