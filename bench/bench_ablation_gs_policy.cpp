// Ablation: GS-satellite connection policy (paper section 3.1(c)).
// A gateway-class GS with multiple parabolic antennas can hold links to
// every connectable satellite; a user terminal with a single phased
// array tracks only its nearest one. This bench quantifies what the
// restriction costs on Kuiper K1: RTT level and variability, path churn,
// and coverage gaps.
#include <cstdio>

#include "bench/common.hpp"
#include "src/routing/path_analysis.hpp"
#include "src/topology/cities.hpp"

using namespace hypatia;

int main(int argc, char** argv) {
    bench::BenchArgs args(argc, argv);
    bench::print_header("Ablation: all-visible-satellites vs nearest-satellite GSes");
    const TimeNs duration = seconds_to_ns(args.duration_s(200.0, 200.0));
    const TimeNs step = ms_to_ns(args.step_ms(500.0, 100.0));

    const topo::Constellation k1(topo::shell_by_name("kuiper_k1"),
                                 topo::default_epoch());
    const topo::SatelliteMobility mob(k1);
    const auto isls = topo::build_isls(k1, topo::IslPattern::kPlusGrid);
    const auto gses = topo::top100_cities();
    auto pairs = route::random_permutation_pairs(100, 42);

    util::CsvWriter csv(bench::out_path("ablation_gs_policy.csv"));
    csv.header({"nearest_only", "pair", "min_rtt_ms", "max_rtt_ms", "path_changes",
                "unreachable_steps"});

    for (const bool nearest_only : {false, true}) {
        route::AnalysisOptions opt;
        opt.t_end = duration;
        opt.step = step;
        opt.gs_nearest_satellite_only = nearest_only;
        const auto res = route::analyze_pairs(mob, isls, gses, pairs, opt);

        std::vector<double> max_rtts, changes;
        int unreachable_pairs = 0;
        for (std::size_t i = 0; i < pairs.size(); ++i) {
            const auto& s = res.pair_stats[i];
            if (s.ever_reachable()) {
                max_rtts.push_back(s.max_rtt_s * 1e3);
                changes.push_back(s.path_changes);
            }
            if (s.unreachable_steps > 0) ++unreachable_pairs;
            csv.row({nearest_only ? 1.0 : 0.0, static_cast<double>(i),
                     s.min_rtt_s * 1e3, s.max_rtt_s * 1e3,
                     static_cast<double>(s.path_changes),
                     static_cast<double>(s.unreachable_steps)});
        }
        const auto rt = util::summarize(max_rtts);
        const auto ch = util::summarize(changes);
        std::printf("%-22s max-RTT med %6.1f ms p90 %6.1f | path changes med %4.1f "
                    "p90 %4.1f | pairs with gaps %d/%zu\n",
                    nearest_only ? "nearest-satellite" : "all-visible", rt.median,
                    rt.p90, ch.median, ch.p90, unreachable_pairs, pairs.size());
    }
    std::printf("\nexpected: the nearest-satellite policy restricts the first/last\n"
                "hop, raising RTT and churn and opening more coverage gaps —\n"
                "why gateways use multiple antennas (paper sec. 2.1/3.1).\n"
                "CSV: %s\n", bench::out_path("ablation_gs_policy.csv").c_str());
    return 0;
}
