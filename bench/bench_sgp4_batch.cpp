// SGP4 kernel throughput: scalar reference vs SoA batch vs SIMD on the
// paper's largest shell (starlink_s1, 1584 satellites), measured through
// SatelliteMobility::warm_cache — the call the epoch pipeline actually
// makes. Each measured epoch lands on a fresh cache bucket boundary, so
// one warm_cache = one full-constellation propagation sweep.
//
// Writes bench_output/BENCH_sgp4.json (gated against
// bench/baselines/BENCH_sgp4.json by tools/bench_diff in CI). Exits
// non-zero if the kernels disagree on any output bit — throughput from
// a wrong kernel is meaningless.
#include <chrono>
#include <cstdio>
#include <string>

#include "bench/common.hpp"
#include "src/orbit/sgp4_batch.hpp"
#include "src/topology/constellation.hpp"
#include "src/topology/mobility.hpp"
#include "src/util/thread_pool.hpp"

namespace hypatia {
namespace {

double now_s() {
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

std::string fmt17(double v) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

std::string dump_positions(const topo::SatelliteMobility& mob, TimeNs t) {
    std::string out;
    for (int sat = 0; sat < mob.num_satellites(); ++sat) {
        const Vec3 p = mob.position_ecef_warm(sat, t);
        out += fmt17(p.x) + " " + fmt17(p.y) + " " + fmt17(p.z) + "\n";
    }
    return out;
}

struct KernelResult {
    std::size_t epochs = 0;
    double wall_s = 0.0;
    double sats_per_s = 0.0;
};

/// Warm the cache at successive fresh bucket boundaries for ~duration_s
/// of wall time; every epoch propagates all n satellites exactly once.
KernelResult measure(topo::SatelliteMobility& mob, orbit::Sgp4Kernel kernel,
                     double duration_s, TimeNs quantum, TimeNs& t) {
    mob.set_kernel(kernel);
    for (int i = 0; i < 5; ++i) {  // warmup epochs
        mob.warm_cache(t);
        t += quantum;
    }
    KernelResult r;
    const double start = now_s();
    do {
        mob.warm_cache(t);
        t += quantum;
        ++r.epochs;
        r.wall_s = now_s() - start;
    } while (r.wall_s < duration_s);
    r.sats_per_s = static_cast<double>(r.epochs) *
                   static_cast<double>(mob.num_satellites()) / r.wall_s;
    return r;
}

int run(int argc, char** argv) {
    bench::BenchArgs args(argc, argv);
    const double duration_s = args.duration_s(0.5, 2.0);
    args.cli.describe("threads", "worker threads for warm_cache (default 1)");
    const int threads = static_cast<int>(args.cli.get_long("threads", 1));
    args.finish_flags("SGP4 kernel throughput: scalar vs batch vs simd");

    util::ThreadPool::set_global_threads(static_cast<std::size_t>(threads));
    bench::print_header("SGP4 kernels on starlink_s1 (warm_cache sweep)");
    std::printf("simd lanes: %s (available: %s)\n", orbit::sgp4_simd_isa(),
                orbit::sgp4_simd_available() ? "yes" : "no");

    const topo::Constellation constellation(topo::shell_by_name("starlink_s1"),
                                            topo::default_epoch());
    topo::SatelliteMobility mob(constellation);
    const TimeNs quantum = 10 * kNsPerMs;

    // Correctness first: all kernels must produce bit-identical caches.
    const TimeNs check_t = 123 * quantum;
    std::string reference;
    bool identical = true;
    for (const auto kernel :
         {orbit::Sgp4Kernel::kScalar, orbit::Sgp4Kernel::kBatch,
          orbit::Sgp4Kernel::kSimd}) {
        topo::SatelliteMobility check(constellation);
        check.set_kernel(kernel);
        check.warm_cache(check_t);
        const std::string dump = dump_positions(check, check_t);
        if (reference.empty()) {
            reference = dump;
        } else if (dump != reference) {
            identical = false;
            std::fprintf(stderr, "FAIL: %s kernel diverges from scalar\n",
                         orbit::sgp4_kernel_name(kernel));
        }
    }

    TimeNs t = 0;
    const KernelResult scalar =
        measure(mob, orbit::Sgp4Kernel::kScalar, duration_s, quantum, t);
    const KernelResult batch =
        measure(mob, orbit::Sgp4Kernel::kBatch, duration_s, quantum, t);
    const KernelResult simd =
        measure(mob, orbit::Sgp4Kernel::kSimd, duration_s, quantum, t);

    const double batch_speedup = batch.sats_per_s / scalar.sats_per_s;
    const double simd_speedup = simd.sats_per_s / scalar.sats_per_s;
    std::printf("scalar: %8.0f sats/s (%zu epochs)\n", scalar.sats_per_s,
                scalar.epochs);
    std::printf("batch:  %8.0f sats/s (%zu epochs)  %.2fx vs scalar\n",
                batch.sats_per_s, batch.epochs, batch_speedup);
    std::printf("simd:   %8.0f sats/s (%zu epochs)  %.2fx vs scalar\n",
                simd.sats_per_s, simd.epochs, simd_speedup);

    const std::string path = util::output_path("bench_output", "BENCH_sgp4.json");
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return 1;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"sgp4_batch\",\n"
                 "  \"constellation\": \"starlink_s1\",\n"
                 "  \"num_satellites\": %d,\n"
                 "  \"threads\": %d,\n"
                 "  \"simd_isa\": \"%s\",\n"
                 "  \"kernels_identical\": %s,\n"
                 "  \"scalar\": {\"sats_per_s\": %.0f, \"epochs\": %zu},\n"
                 "  \"batch\": {\"sats_per_s\": %.0f, \"epochs\": %zu,\n"
                 "             \"speedup_vs_scalar\": %.4f},\n"
                 "  \"simd\": {\"sats_per_s\": %.0f, \"epochs\": %zu,\n"
                 "            \"speedup_vs_scalar\": %.4f}\n"
                 "}\n",
                 mob.num_satellites(), threads, orbit::sgp4_simd_isa(),
                 identical ? "true" : "false", scalar.sats_per_s, scalar.epochs,
                 batch.sats_per_s, batch.epochs, batch_speedup, simd.sats_per_s,
                 simd.epochs, simd_speedup);
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());

    if (!identical) return 1;
    return 0;
}

}  // namespace
}  // namespace hypatia

int main(int argc, char** argv) { return hypatia::run(argc, argv); }
