// Fig 9: forwarding-state time-step granularity on Kuiper K1.
// (a) distribution (ECDF across time steps) of network-wide path changes
//     per step for 50, 100, 1000 ms steps;
// (b) fraction of pairs missing 0/1/2+ path changes at 100 ms and
//     1000 ms relative to the 50 ms baseline.
//
// Expected shape: 100 ms sees ~2x the per-step changes of 50 ms and
// 1000 ms ~20x; misses are negligible at 100 ms (~0.4% of pairs) but
// affect ~6% of pairs at 1000 ms.
#include <cstdio>
#include <map>

#include "bench/common.hpp"
#include "bench/constellation_analysis.hpp"

using namespace hypatia;

int main(int argc, char** argv) {
    bench::BenchArgs args(argc, argv);
    bench::print_header("Fig 9: forwarding-state update granularity (Kuiper K1)");
    const TimeNs duration = seconds_to_ns(args.duration_s(60.0, 200.0));

    const std::vector<TimeNs> steps = {50 * kNsPerMs, 100 * kNsPerMs, 1000 * kNsPerMs};
    std::map<TimeNs, std::vector<int>> per_step_changes;     // step -> per-time-step
    std::map<TimeNs, std::vector<int>> per_pair_changes;     // step -> per-pair totals

    for (const TimeNs step : steps) {
        const auto a = bench::analyze_constellation("kuiper_k1", duration, step);
        per_step_changes[step] = a.result.path_changes_per_step;
        std::vector<int> totals;
        totals.reserve(a.result.pair_stats.size());
        for (const auto& s : a.result.pair_stats) totals.push_back(s.path_changes);
        per_pair_changes[step] = totals;
    }

    // (a) per-step change counts.
    util::CsvWriter csv_a(bench::out_path("fig09a_changes_per_step.csv"));
    csv_a.header({"step_ms", "changes_in_step", "cdf"});
    std::printf("(a) network-wide path changes per time step\n");
    for (const TimeNs step : steps) {
        std::vector<double> counts;
        double total = 0.0;
        for (int c : per_step_changes[step]) {
            counts.push_back(c);
            total += c;
        }
        const auto ecdf_points = util::ecdf(counts, 100);
        for (const auto& p : ecdf_points) {
            csv_a.row({ns_to_ms(step), p.x, p.fraction});
        }
        const auto s = util::summarize(counts);
        std::printf("  step %5.0f ms: total changes %6.0f  per-step median %5.1f "
                    "p90 %5.1f\n", ns_to_ms(step), total, s.median, s.p90);
    }

    // (b) missed changes vs the 50 ms baseline.
    util::CsvWriter csv_b(bench::out_path("fig09b_missed_changes.csv"));
    csv_b.header({"step_ms", "missed", "fraction_of_pairs"});
    std::printf("(b) pairs missing path changes vs 50 ms baseline\n");
    const auto& base = per_pair_changes[50 * kNsPerMs];
    for (const TimeNs step : {100 * kNsPerMs, 1000 * kNsPerMs}) {
        const auto& cur = per_pair_changes[step];
        std::map<int, int> missed_histogram;
        for (std::size_t i = 0; i < base.size(); ++i) {
            const int missed = std::max(0, base[i] - cur[i]);
            ++missed_histogram[std::min(missed, 5)];
        }
        std::printf("  step %5.0f ms:", ns_to_ms(step));
        for (const auto& [missed, count] : missed_histogram) {
            const double frac = static_cast<double>(count) / base.size();
            std::printf("  missed=%d: %5.1f%%", missed, 100.0 * frac);
            csv_b.row({ns_to_ms(step), static_cast<double>(missed), frac});
        }
        std::printf("\n");
    }
    std::printf("\npaper reference: 100 ms misses for 0.4%% of pairs, 1000 ms for\n"
                "6%%; 100 ms is the accuracy/cost compromise Hypatia defaults to.\n"
                "CSV: %s, %s\n", bench::out_path("fig09a_changes_per_step.csv").c_str(),
                bench::out_path("fig09b_missed_changes.csv").c_str());
    return 0;
}
