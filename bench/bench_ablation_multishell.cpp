// Ablation: single shell vs the operator's full constellation.
// Verifies the paper's section 4.1 claim that Kuiper's other two shells
// do NOT fix St. Petersburg's intermittent connectivity ("For Kuiper,
// its other two shells do not address this missing connectivity either;
// high-latitude cities like St. Petersburg will not see continuous
// connectivity over Kuiper"), and quantifies what multi-shell operation
// does buy (RTT on ordinary pairs).
#include <cstdio>

#include "bench/common.hpp"
#include "src/orbit/coords.hpp"
#include "src/routing/multi_shell.hpp"
#include "src/routing/path_analysis.hpp"
#include "src/topology/cities.hpp"
#include "src/topology/shell_group.hpp"

using namespace hypatia;

int main(int argc, char** argv) {
    bench::BenchArgs args(argc, argv);
    bench::print_header("Ablation: Kuiper K1 alone vs full Kuiper (K1+K2+K3)");
    const TimeNs duration = seconds_to_ns(args.duration_s(200.0, 400.0));

    const topo::ShellGroup k1_only({topo::shell_by_name("kuiper_k1")},
                                   topo::default_epoch());
    const topo::ShellGroup full({topo::shell_by_name("kuiper_k1"),
                                 topo::shell_by_name("kuiper_k2"),
                                 topo::shell_by_name("kuiper_k3")},
                                topo::default_epoch());

    // (1) St. Petersburg coverage: does adding K2 (42 deg) and K3 (33 deg)
    // help a 59.9 N city? The paper says no.
    const auto sp = topo::city_by_name("Saint Petersburg");
    int uncovered_k1 = 0, uncovered_full = 0, seconds = 0;
    for (TimeNs t = 0; t < duration; t += kNsPerSec, ++seconds) {
        if (!k1_only.has_coverage(sp, t)) ++uncovered_k1;
        if (!full.has_coverage(sp, t)) ++uncovered_full;
    }
    std::printf("St. Petersburg uncovered seconds (of %d): K1 only %d, full "
                "Kuiper %d\n", seconds, uncovered_k1, uncovered_full);
    std::printf("paper claim (sec. 4.1): the other shells do not address the "
                "missing\nconnectivity -> expect identical (or nearly) gap "
                "counts.\n\n");

    // (2) What the extra shells do buy: RTT on mid-latitude pairs.
    std::vector<orbit::GroundStation> gses;
    std::vector<std::pair<std::string, std::string>> pair_names = {
        {"Manila", "Dalian"}, {"Lagos", "Mumbai"}, {"Mexico City", "Bogota"}};
    std::vector<route::GsPair> pairs;
    int id = 0;
    for (const auto& [a, b] : pair_names) {
        gses.emplace_back(id, a, topo::city_by_name(a).geodetic());
        gses.emplace_back(id + 1, b, topo::city_by_name(b).geodetic());
        pairs.push_back({id, id + 1});
        id += 2;
    }
    std::printf("%-24s %16s %16s\n", "pair", "K1 RTT(ms)", "K1+K2+K3 RTT(ms)");
    for (const auto& p : pairs) {
        auto rtt_for = [&](const topo::ShellGroup& group) {
            const auto g = route::build_group_snapshot(group, gses, 0);
            const auto tree = route::dijkstra_to(g, g.gs_node(p.dst_gs));
            const double d =
                tree.distance_km[static_cast<std::size_t>(g.gs_node(p.src_gs))];
            return d == route::kInfDistance
                       ? -1.0
                       : 2.0 * d / orbit::kSpeedOfLightKmPerS * 1e3;
        };
        std::printf("%-24s %16.2f %16.2f\n",
                    (gses[static_cast<std::size_t>(p.src_gs)].name() + ":" +
                     gses[static_cast<std::size_t>(p.dst_gs)].name())
                        .c_str(),
                    rtt_for(k1_only), rtt_for(full));
    }
    std::printf("\nextra shells add GSL options (mildly shorter paths, more\n"
                "capacity) but cannot extend coverage beyond the inclination "
                "limit.\n");
    return 0;
}
