// Shared setup for the Appendix A experiments (Figs 16-19): Paris -
// Moscow over Kuiper K1, either via ISLs or via bent-pipe connectivity
// through a grid of candidate ground-station relays between the two
// cities.
#pragma once

#include <string>
#include <vector>

#include "src/core/leo_network.hpp"
#include "src/topology/cities.hpp"

namespace hypatia::bench {

/// GS 0 = Paris, GS 1 = Moscow, GSes 2.. = relay grid (bent-pipe only).
inline core::Scenario bent_pipe_scenario(bool use_isls) {
    core::Scenario s;
    s.shell = topo::shell_by_name("kuiper_k1");
    int id = 0;
    s.ground_stations.emplace_back(id++, "Paris",
                                   topo::city_by_name("Paris").geodetic());
    s.ground_stations.emplace_back(id++, "Moscow",
                                   topo::city_by_name("Moscow").geodetic());
    if (use_isls) {
        s.isl_pattern = topo::IslPattern::kPlusGrid;
        return s;
    }
    s.isl_pattern = topo::IslPattern::kNone;
    // Relay grid roughly covering the Paris-Moscow corridor (the paper's
    // Fig 16(b) grid): latitudes 40..65, longitudes 0..45, 5-degree pitch.
    for (double lat = 40.0; lat <= 65.0; lat += 5.0) {
        for (double lon = 0.0; lon <= 45.0; lon += 5.0) {
            const std::string name = "relay_" + std::to_string(static_cast<int>(lat)) +
                                     "_" + std::to_string(static_cast<int>(lon));
            s.relay_gs_indices.push_back(id);
            s.ground_stations.emplace_back(id++, name,
                                           orbit::Geodetic{lat, lon, 0.0});
        }
    }
    return s;
}

}  // namespace hypatia::bench
