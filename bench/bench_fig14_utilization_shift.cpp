// Fig 14: congestion shifts over time on one path — Chicago - Zhengzhou
// over Kuiper K1 with the permutation TCP traffic matrix. The bench
// prints the per-link utilization along the pair's current path at two
// instants (the paper uses t = 10 s and t = 150 s) to show that the same
// connection's links carry a completely different traffic mix over time.
#include <cstdio>
#include <fstream>

#include "bench/common.hpp"
#include "src/core/experiment.hpp"
#include "src/core/metrics.hpp"
#include "src/topology/cities.hpp"
#include "src/viz/path_export.hpp"

using namespace hypatia;

int main(int argc, char** argv) {
    bench::BenchArgs args(argc, argv);
    bench::print_header("Fig 14: utilization shift on the Chicago - Zhengzhou path");
    const double duration_s = args.duration_s(60.0, 200.0);
    const TimeNs duration = seconds_to_ns(duration_s);
    const double t_early_s = args.cli.get_double("t-early-s", 10.0);
    const double t_late_s =
        args.cli.get_double("t-late-s", args.paper ? 150.0 : duration_s - 10.0);

    core::Scenario scenario = core::Scenario::paper_default("kuiper_k1");
    const int chicago = topo::city_index("Chicago");
    const int zhengzhou = topo::city_index("Zhengzhou");
    core::LeoNetwork leo(scenario);
    auto pairs = route::random_permutation_pairs(100, 42);
    pairs.push_back({chicago, zhengzhou});
    auto flows = core::attach_tcp_flows(leo, pairs, "newreno");
    core::UtilizationSampler sampler(leo, 1 * kNsPerSec, duration);

    // Capture the path (as device indices + labels) at the two instants.
    struct Capture {
        double t_s;
        std::vector<std::size_t> devices;
        std::string path_str;
    };
    std::vector<Capture> captures;
    for (double t_s : {t_early_s, t_late_s}) {
        leo.simulator().schedule_at(seconds_to_ns(t_s) + 1, [&, t_s]() {
            Capture cap;
            cap.t_s = t_s;
            const auto path = leo.current_path(chicago, zhengzhou);
            const auto resolved = viz::resolve_path(
                path, leo.mobility(), scenario.ground_stations, leo.orbit_time(
                    leo.simulator().now()));
            cap.path_str = viz::path_to_string(resolved);
            for (auto* dev : leo.current_path_devices(chicago, zhengzhou)) {
                cap.devices.push_back(sampler.device_index(dev));
            }
            captures.push_back(std::move(cap));
        });
    }
    leo.run(duration);

    util::CsvWriter csv(bench::out_path("fig14_utilization_shift.csv"));
    csv.header({"t_s", "hop", "utilization"});
    for (const auto& cap : captures) {
        const auto bin = static_cast<std::size_t>(cap.t_s);
        std::printf("t = %5.1f s: %s\n  per-hop utilization:", cap.t_s,
                    cap.path_str.c_str());
        for (std::size_t h = 0; h < cap.devices.size(); ++h) {
            const double u = sampler.utilization(cap.devices[h], bin);
            std::printf(" %4.2f", u);
            csv.row({cap.t_s, static_cast<double>(h), u});
        }
        std::printf("\n");
    }
    std::printf("\npaper reference: the same connection's on-path link utilizations\n"
                "change substantially between the two instants although the input\n"
                "traffic matrix is static. CSV: %s\n",
                bench::out_path("fig14_utilization_shift.csv").c_str());
    return 0;
}
