// Fig 7: RTTs and their variation over time, CDFs across GS pairs:
// (a) max RTT, (b) max RTT - min RTT, (c) max RTT / min RTT.
//
// Expected shape: Starlink S1 sees both the highest and the most
// variable RTTs (22 sats/orbit -> zig-zag paths); Telesat the lowest and
// least variable (l = 10 deg keeps satellites reachable longer). For
// Starlink, >30% of pairs have max RTT at least 20% above min.
#include <cstdio>

#include "bench/common.hpp"
#include "bench/constellation_analysis.hpp"

using namespace hypatia;

int main(int argc, char** argv) {
    bench::BenchArgs args(argc, argv);
    bench::print_header("Fig 7: RTT level and variation (CDFs across pairs)");
    const TimeNs duration = seconds_to_ns(args.duration_s(200.0, 200.0));
    const TimeNs step = ms_to_ns(args.step_ms(1000.0, 100.0));

    util::CsvWriter csv(bench::out_path("fig07_rtt_variation.csv"));
    csv.header({"shell", "max_rtt_ms", "delta_ms", "ratio"});

    for (const auto& shell : bench::section5_shells()) {
        const auto a = bench::analyze_constellation(shell, duration, step);
        std::vector<double> max_ms, delta_ms, ratio;
        int over_1p2 = 0;
        for (const auto& stats : a.result.pair_stats) {
            if (!stats.ever_reachable()) continue;
            max_ms.push_back(stats.max_rtt_s * 1e3);
            delta_ms.push_back((stats.max_rtt_s - stats.min_rtt_s) * 1e3);
            ratio.push_back(stats.max_rtt_s / stats.min_rtt_s);
            if (stats.max_rtt_s / stats.min_rtt_s >= 1.2) ++over_1p2;
        }
        for (std::size_t i = 0; i < max_ms.size(); ++i) {
            double shell_id =
                shell == "telesat_t1" ? 0.0 : shell == "kuiper_k1" ? 1.0 : 2.0;
            csv.row({shell_id, max_ms[i], delta_ms[i], ratio[i]});
        }
        const auto sm = util::summarize(max_ms);
        const auto sd = util::summarize(delta_ms);
        const auto sr = util::summarize(ratio);
        std::printf("%-12s maxRTT med %6.1f ms  (max-min) med %5.1f ms  "
                    "(max/min) med %.2fx  pairs>=1.2x: %4.1f%%\n",
                    shell.c_str(), sm.median, sd.median, sr.median,
                    100.0 * over_1p2 / std::max<std::size_t>(1, ratio.size()));
    }
    std::printf("\npaper reference: Starlink median delta ~10 ms; >30%% of Starlink\n"
                "pairs see max >= 1.2x min; Telesat smallest variation.\n"
                "CSV: %s\n", bench::out_path("fig07_rtt_variation.csv").c_str());
    return 0;
}
