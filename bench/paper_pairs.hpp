// Helpers for the single-connection experiments of the paper's section 4:
// Kuiper K1 with a selected set of named cities as ground stations.
#pragma once

#include <string>
#include <vector>

#include "src/core/leo_network.hpp"
#include "src/topology/cities.hpp"

namespace hypatia::bench {

/// Builds the paper's default scenario restricted to the named cities
/// (GS index = position in `names`). Keeping the GS list small makes the
/// per-step topology snapshots cheap without changing any behaviour.
inline core::Scenario scenario_with_cities(const std::string& shell_name,
                                           const std::vector<std::string>& names) {
    core::Scenario s;
    s.shell = topo::shell_by_name(shell_name);
    int id = 0;
    for (const auto& name : names) {
        const auto city = topo::city_by_name(name);
        s.ground_stations.emplace_back(id++, city.name(), city.geodetic());
    }
    return s;
}

/// The three section-4 connections, in paper order.
inline const std::vector<std::pair<std::string, std::string>>& section4_pairs() {
    static const std::vector<std::pair<std::string, std::string>> pairs = {
        {"Rio de Janeiro", "Saint Petersburg"},
        {"Manila", "Dalian"},
        {"Istanbul", "Nairobi"},
    };
    return pairs;
}

}  // namespace hypatia::bench
