// Fig 3: RTT fluctuations on Kuiper K1 for Rio de Janeiro - St.
// Petersburg, Manila - Dalian, and Istanbul - Nairobi over 200 s.
//
// Three series per pair, as in the paper:
//  * "Pings"    — packet-level ping RTT (1 ms interval), measured in the
//                 simulator; unreturned pings plot as RTT 0.
//  * "Computed" — the networkx-equivalent snapshot computation (shortest
//                 path distance every fstate interval).
//  * "TCP"      — per-packet RTT of a single long-running NewReno flow
//                 (run separately, since its queueing perturbs RTTs).
//
// Expected shapes (paper section 4.1): ping and computed overlap; Manila-
// Dalian ranges ~25-48 ms (~2x swing); Rio-St. Petersburg disconnects for
// ~10 s (around t=156 s at this epoch); occasional ping spikes above the
// computed line at forwarding-state changes (in-flight detours).
#include <cstdio>

#include "bench/common.hpp"
#include "bench/paper_pairs.hpp"
#include "src/core/experiment.hpp"
#include "src/sim/ping_app.hpp"

using namespace hypatia;

int main(int argc, char** argv) {
    bench::BenchArgs args(argc, argv);
    bench::print_header("Fig 3: RTT fluctuations (ping vs computed vs TCP)");
    const double duration_s = args.duration_s(200.0, 200.0);
    const TimeNs duration = seconds_to_ns(duration_s);
    const TimeNs ping_interval =
        ms_to_ns(args.cli.get_double("ping-interval-ms", 1.0));

    for (const auto& [src_name, dst_name] : bench::section4_pairs()) {
        auto scenario = bench::scenario_with_cities("kuiper_k1", {src_name, dst_name});

        // ---- run A: pings only (matches the computed line) ----
        core::LeoNetwork leo(scenario);
        leo.add_destination(0);
        leo.add_destination(1);
        sim::PingApp::Config ping_cfg;
        ping_cfg.flow_id = 1;
        ping_cfg.src_node = leo.gs_node(0);
        ping_cfg.dst_node = leo.gs_node(1);
        ping_cfg.interval = ping_interval;
        ping_cfg.stop = duration;
        sim::PingApp ping(leo.network(), ping_cfg);

        std::vector<std::pair<double, double>> computed;  // (t_s, rtt_ms)
        leo.on_fstate_update = [&](TimeNs t) {
            const double d = leo.current_distance_km(0, 1);
            const double rtt_ms =
                d == route::kInfDistance ? 0.0
                                         : 2.0 * d / orbit::kSpeedOfLightKmPerS * 1e3;
            computed.push_back({ns_to_seconds(t), rtt_ms});
        };
        leo.run(duration);

        // ---- run B: a single TCP flow, per-packet RTT ----
        core::LeoNetwork leo_tcp(scenario);
        auto flows = core::attach_tcp_flows(leo_tcp, {{0, 1}}, "newreno");
        leo_tcp.run(duration);

        // ---- outputs ----
        const std::string tag = src_name.substr(0, 3) + "_" + dst_name.substr(0, 3);
        util::CsvWriter ping_csv(bench::out_path("fig03_ping_" + tag + ".csv"));
        ping_csv.header({"t_s", "rtt_ms"});
        double ping_min = 1e18, ping_max = 0.0;
        std::uint64_t lost = 0;
        for (const auto& s : ping.samples()) {
            const double rtt_ms = s.replied ? ns_to_ms(s.rtt) : 0.0;
            ping_csv.row({ns_to_seconds(s.send_time), rtt_ms});
            if (s.replied) {
                ping_min = std::min(ping_min, rtt_ms);
                ping_max = std::max(ping_max, rtt_ms);
            } else {
                ++lost;
            }
        }
        util::CsvWriter comp_csv(bench::out_path("fig03_computed_" + tag + ".csv"));
        comp_csv.header({"t_s", "rtt_ms"});
        for (const auto& [t, rtt] : computed) comp_csv.row({t, rtt});
        util::CsvWriter tcp_csv(bench::out_path("fig03_tcp_" + tag + ".csv"));
        tcp_csv.header({"t_s", "rtt_ms"});
        for (const auto& s : flows[0]->rtt_trace()) {
            tcp_csv.row({ns_to_seconds(s.t), ns_to_ms(s.rtt)});
        }

        double comp_min = 1e18, comp_max = 0.0;
        int unreachable_steps = 0;
        for (const auto& [t, rtt] : computed) {
            if (rtt == 0.0) {
                ++unreachable_steps;
                continue;
            }
            comp_min = std::min(comp_min, rtt);
            comp_max = std::max(comp_max, rtt);
        }
        std::printf("%-16s -> %-18s ping %6.1f..%6.1f ms (lost %llu)  computed "
                    "%6.1f..%6.1f ms  disconnected %.1f s\n",
                    src_name.c_str(), dst_name.c_str(), ping_min, ping_max,
                    static_cast<unsigned long long>(lost), comp_min, comp_max,
                    static_cast<double>(unreachable_steps) *
                        ns_to_seconds(scenario.fstate_interval));
    }
    std::printf("\npaper reference: Manila-Dalian 25..48 ms; Istanbul-Nairobi 47..70"
                " ms;\nRio-St.Petersburg disconnected ~10 s (155-165 s in the "
                "paper's window).\nSeries written to %s/fig03_*.csv\n",
                bench::out_dir().c_str());
    return 0;
}
