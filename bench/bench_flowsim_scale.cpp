// Flow-level engine scalability + cross-validation — the extension of
// Fig 2 past the packet simulator's wall. Two parts:
//
//  1. Scale sweep: Starlink S1 with the 100 most populous cities, a
//     gravity-model matrix of long-running flows, 200 virtual seconds.
//     Default sweeps {10k, 100k} concurrent flows; --paper adds 1M.
//     The packet simulator's cost grows with rate x duration (Fig 2); the
//     fluid engine's is O(epochs * (routing + path length + solver)), so
//     100k flows complete in well under a minute of wall clock.
//
//  2. Cross-validation (--skip-crossval to omit): for the paper's three
//     section-4 city pairs on Kuiper K1, a single long-running flow is
//     run through the packet-level NewReno stack and through the fluid
//     engine; the fluid rate (scaled by the 1440/1500 payload fraction)
//     must match packet goodput within +/-15% (tolerance documented in
//     EXPERIMENTS.md). The bench exits non-zero on a violation, so CI
//     catches the two engines drifting apart.
#include <chrono>
#include <cmath>
#include <cstdio>

#include "bench/common.hpp"
#include "bench/paper_pairs.hpp"
#include "src/core/experiment.hpp"
#include "src/flowsim/engine.hpp"
#include "src/sim/packet.hpp"

using namespace hypatia;

namespace {

/// Payload bits per wire bit (1440-byte MSS in 1500-byte packets): the
/// factor between the fluid engine's wire-level rate and TCP goodput.
constexpr double kPayloadFraction =
    static_cast<double>(sim::kDefaultMss) / (sim::kDefaultMss + sim::kHeaderBytes);

struct ScaleRow {
    std::size_t flows = 0;
    double wall_s = 0.0;
    double slowdown = 0.0;
    double mean_active = 0.0;
    double mean_rounds = 0.0;
    bool converged = true;
};

ScaleRow run_scale_point(std::size_t num_flows, double duration_s, double epoch_s) {
    core::Scenario scenario = core::Scenario::paper_default("starlink_s1");

    flowsim::GravityTrafficConfig traffic;
    traffic.num_gs = static_cast<int>(scenario.ground_stations.size());
    traffic.num_flows = num_flows;  // unbounded size: all stay concurrent
    traffic.seed = 1;

    flowsim::EngineOptions opts;
    opts.epoch = seconds_to_ns(epoch_s);
    opts.duration = seconds_to_ns(duration_s);

    flowsim::Engine engine(scenario, flowsim::gravity_traffic(traffic), opts);
    const auto wall_start = std::chrono::steady_clock::now();
    const auto summary = engine.run();
    const std::chrono::duration<double> wall =
        std::chrono::steady_clock::now() - wall_start;

    ScaleRow row;
    row.flows = num_flows;
    row.wall_s = wall.count();
    row.slowdown = wall.count() / duration_s;
    row.converged = summary.all_converged;
    double active = 0.0, rounds = 0.0;
    for (const auto& e : summary.epochs) {
        active += static_cast<double>(e.active);
        rounds += e.solver_rounds;
    }
    if (!summary.epochs.empty()) {
        active /= static_cast<double>(summary.epochs.size());
        rounds /= static_cast<double>(summary.epochs.size());
    }
    row.mean_active = active;
    row.mean_rounds = rounds;
    return row;
}

struct CrossValRow {
    std::string src, dst;
    double packet_goodput_bps = 0.0;
    double flow_goodput_bps = 0.0;  // fluid wire rate * payload fraction
    double relative_error = 0.0;
    bool within_tolerance = true;
};

CrossValRow cross_validate_pair(const std::string& src, const std::string& dst,
                                double duration_s, double warmup_s) {
    const auto scenario = bench::scenario_with_cities("kuiper_k1", {src, dst});
    const TimeNs duration = seconds_to_ns(duration_s);

    // Packet level: one NewReno flow. Goodput is averaged over the
    // steady-state window only — slow start and the first loss episode
    // are transport transients the fluid model deliberately omits.
    core::LeoNetwork leo(scenario);
    auto flows = core::attach_tcp_flows(leo, {{0, 1}}, "newreno");
    flows[0]->enable_delivery_bins(kNsPerSec, duration);
    leo.run(duration);
    const auto bins = flows[0]->delivery_rate_bps();
    double packet_goodput = 0.0;
    std::size_t steady_bins = 0;
    for (std::size_t b = static_cast<std::size_t>(warmup_s); b < bins.size(); ++b) {
        packet_goodput += bins[b];
        ++steady_bins;
    }
    if (steady_bins > 0) packet_goodput /= static_cast<double>(steady_bins);

    // Flow level: the same unbounded demand through the fluid engine,
    // averaged over the same steady-state window.
    flowsim::EngineOptions opts;
    opts.epoch = kNsPerSec;
    opts.duration = duration;
    opts.tracked_flows = {0};
    flowsim::Engine engine(scenario, flowsim::cbr_background({{0, 1}}, flowsim::kNoRateCap),
                           opts);
    const auto summary = engine.run();
    double flow_wire_rate = 0.0;
    std::size_t steady_epochs = 0;
    for (const auto& [t, rate] : summary.tracked_series[0]) {
        if (ns_to_seconds(t) < warmup_s) continue;
        flow_wire_rate += rate;
        ++steady_epochs;
    }
    if (steady_epochs > 0) flow_wire_rate /= static_cast<double>(steady_epochs);

    CrossValRow row;
    row.src = src;
    row.dst = dst;
    row.packet_goodput_bps = packet_goodput;
    row.flow_goodput_bps = flow_wire_rate * kPayloadFraction;
    row.relative_error = row.flow_goodput_bps > 0.0
                             ? std::abs(packet_goodput - row.flow_goodput_bps) /
                                   row.flow_goodput_bps
                             : 1.0;
    row.within_tolerance = row.relative_error <= 0.15;
    return row;
}

}  // namespace

int main(int argc, char** argv) {
    bench::BenchArgs args(argc, argv);
    args.cli.describe("flows", "run a single sweep point with this many flows");
    args.cli.describe("epoch-s", "fluid re-route/re-solve interval in seconds");
    args.cli.describe("crossval-s", "virtual seconds per cross-validation pair");
    args.cli.describe("crossval-warmup-s", "transport warmup excluded from averaging");
    args.cli.describe("skip-crossval", "skip the packet-level cross-validation");
    bench::print_header("Flowsim scale: fluid max-min engine vs Fig 2's wall");

    const double duration_s = args.duration_s(200.0, 200.0);
    const double epoch_s = args.cli.get_double("epoch-s", 1.0);
    const double crossval_s = args.cli.get_double("crossval-s", 60.0);
    const double crossval_warmup_s = args.cli.get_double("crossval-warmup-s", 10.0);
    const bool skip_crossval = args.cli.get_bool("skip-crossval");
    const long flows_override = args.cli.get_long("flows", 0);
    args.finish_flags("Flow-level engine scalability sweep + packet cross-validation.");

    args.manifest.set_param("epoch_s", epoch_s);
    args.manifest.set_param("shell", "starlink_s1");

    std::vector<std::size_t> sweep = {10'000, 100'000};
    if (args.paper) sweep.push_back(1'000'000);
    if (flows_override > 0) sweep = {static_cast<std::size_t>(flows_override)};

    util::CsvWriter csv(bench::out_path("flowsim_scale.csv"));
    csv.header({"flows", "virtual_s", "wall_s", "slowdown", "mean_active",
                "mean_solver_rounds", "converged"});

    bool failed = false;
    std::printf("%10s %10s %10s %10s %12s %8s\n", "flows", "wall(s)", "slowdown",
                "active", "rounds/ep", "conv");
    for (const std::size_t n : sweep) {
        const auto row = run_scale_point(n, duration_s, epoch_s);
        std::printf("%10zu %10.2f %10.4f %10.0f %12.1f %8s\n", row.flows, row.wall_s,
                    row.slowdown, row.mean_active, row.mean_rounds,
                    row.converged ? "yes" : "NO");
        std::fflush(stdout);
        csv.row({static_cast<double>(row.flows), duration_s, row.wall_s, row.slowdown,
                 row.mean_active, row.mean_rounds, row.converged ? 1.0 : 0.0});
        failed = failed || !row.converged;
    }
    std::printf("(packet-level TCP at this scale: Fig 2 reports slowdown in the\n");
    std::printf(" hundreds; the fluid engine's slowdown above is < 1.)\n");

    if (!skip_crossval) {
        std::printf("\ncross-validation vs packet NewReno (+/-15%%, %g s windows,\n"
                    " first %g s of transport warmup excluded)\n",
                    crossval_s, crossval_warmup_s);
        util::CsvWriter xcsv(bench::out_path("flowsim_crossval.csv"));
        xcsv.header({"src", "dst", "packet_goodput_mbps", "flow_goodput_mbps",
                     "relative_error"});
        for (const auto& [src, dst] : bench::section4_pairs()) {
            const auto row = cross_validate_pair(src, dst, crossval_s, crossval_warmup_s);
            std::printf("  %-16s -> %-18s packet %6.3f Mbit/s, fluid %6.3f, err %5.1f%% %s\n",
                        src.c_str(), dst.c_str(), row.packet_goodput_bps / 1e6,
                        row.flow_goodput_bps / 1e6, 100.0 * row.relative_error,
                        row.within_tolerance ? "ok" : "OUT OF TOLERANCE");
            std::fflush(stdout);
            xcsv.row(std::vector<std::string>{
                src, dst, std::to_string(row.packet_goodput_bps / 1e6),
                std::to_string(row.flow_goodput_bps / 1e6),
                std::to_string(row.relative_error)});
            failed = failed || !row.within_tolerance;
        }
        std::printf("rows written to %s\n", bench::out_path("flowsim_crossval.csv").c_str());
    }

    std::printf("rows written to %s\n", bench::out_path("flowsim_scale.csv").c_str());
    return failed ? 1 : 0;
}
