// Fig 19: TCP behaviour, ISL vs bent-pipe (Paris - Moscow, Kuiper K1,
// one NewReno flow at 10 Mbit/s): congestion window and achieved rate.
//
// The bent-pipe configuration shares each satellite's single GSL uplink
// queue between the flow's data packets (GS -> satellite on the way up)
// and its ACKs travelling the opposite direction through the same
// satellite — the paper's explanation for the extra cwnd fluctuations
// and the modestly lower bent-pipe rate.
#include <cstdio>

#include "bench/bent_pipe.hpp"
#include "bench/common.hpp"
#include "src/core/experiment.hpp"

using namespace hypatia;

int main(int argc, char** argv) {
    bench::BenchArgs args(argc, argv);
    bench::print_header("Fig 19: TCP cwnd and rate, ISL vs bent-pipe (Paris - Moscow)");
    const TimeNs duration = seconds_to_ns(args.duration_s(200.0, 200.0));
    const TimeNs bin = 100 * kNsPerMs;

    for (const bool use_isls : {true, false}) {
        const char* mode = use_isls ? "isl" : "bent_pipe";
        core::Scenario scenario = bench::bent_pipe_scenario(use_isls);
        core::LeoNetwork leo(scenario);
        auto flows = core::attach_tcp_flows(leo, {{0, 1}}, "newreno");
        flows[0]->enable_delivery_bins(bin, duration);
        leo.run(duration);
        const auto& flow = *flows[0];

        util::CsvWriter cwnd_csv(
            bench::out_path(std::string("fig19_cwnd_") + mode + ".csv"));
        cwnd_csv.header({"t_s", "cwnd_segments"});
        for (const auto& s : flow.cwnd_trace()) {
            cwnd_csv.row({ns_to_seconds(s.t), s.cwnd});
        }
        util::CsvWriter rate_csv(
            bench::out_path(std::string("fig19_rate_") + mode + ".csv"));
        rate_csv.header({"t_s", "rate_mbps"});
        const auto rates = flow.delivery_rate_bps();
        double mean_rate = 0.0;
        for (std::size_t i = 0; i < rates.size(); ++i) {
            rate_csv.row({static_cast<double>(i) * ns_to_seconds(bin), rates[i] / 1e6});
            mean_rate += rates[i] / static_cast<double>(rates.size());
        }
        std::printf("%-9s mean rate %5.2f Mbit/s  delivered %6.1f MB  fast_rtx %4llu"
                    "  rtos %3llu  dupACKs %6llu\n",
                    mode, mean_rate / 1e6,
                    static_cast<double>(flow.delivered_bytes()) / 1e6,
                    static_cast<unsigned long long>(flow.fast_retransmits()),
                    static_cast<unsigned long long>(flow.timeouts()),
                    static_cast<unsigned long long>(flow.dup_acks_received()));
    }
    std::printf("\npaper reference: bent-pipe shows more cwnd fluctuation (ACKs\n"
                "queue behind data at the shared GSL uplink) and a modestly lower\n"
                "rate than the ISL case. CSVs in %s/\n", bench::out_dir().c_str());
    return 0;
}
