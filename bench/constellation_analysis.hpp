// Shared driver for the constellation-wide path analyses of section 5
// (Figs 6-8): Starlink S1, Kuiper K1, Telesat T1 with the 100 most
// populous cities, all GS pairs at least 500 km apart.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "src/orbit/coords.hpp"
#include "src/routing/path_analysis.hpp"
#include "src/topology/cities.hpp"
#include "src/topology/constellation.hpp"

namespace hypatia::bench {

struct ConstellationAnalysis {
    std::string shell_name;
    std::vector<orbit::GroundStation> gses;
    std::vector<route::GsPair> pairs;
    route::AnalysisResult result;
};

inline ConstellationAnalysis analyze_constellation(const std::string& shell_name,
                                                   TimeNs duration, TimeNs step) {
    ConstellationAnalysis out;
    out.shell_name = shell_name;
    out.gses = topo::top100_cities();
    out.pairs = route::all_pairs_min_distance(out.gses, 500.0);

    const topo::Constellation constellation(topo::shell_by_name(shell_name),
                                            topo::default_epoch());
    const topo::SatelliteMobility mobility(constellation);
    const auto isls = topo::build_isls(constellation, topo::IslPattern::kPlusGrid);

    route::AnalysisOptions opt;
    opt.t_end = duration;
    opt.step = step;
    out.result = route::analyze_pairs(mobility, isls, out.gses, out.pairs, opt);
    return out;
}

/// The paper analyzes the first planned deployments: S1, K1, T1.
inline const std::vector<std::string>& section5_shells() {
    static const std::vector<std::string> shells = {"telesat_t1", "kuiper_k1",
                                                    "starlink_s1"};
    return shells;
}

}  // namespace hypatia::bench
