// Full-sky routing benchmark: the per-epoch snapshot + pair-sweep
// pipeline over the multi-shell presets ("full_sky" = every Table-1
// shell as one ShellGroup, "starlink_gen2" = the 29,988-satellite Gen2
// filing), measuring whether forwarding keeps up with real time at the
// paper's 100 ms epoch granularity.
//
// Three phases:
//   1. equivalence — steps the same epochs under HYPATIA_ROUTE_ALGO=
//      dijkstra and =astar and asserts bitwise-identical RTTs and paths
//      (the goal-directed search must change cost of nothing), recording
//      the A* pop reduction.
//   2. throughput — timed epochs per algorithm: epochs/s, the real-time
//      factor epochs_per_s * step_s (>= 1 means forwarding outruns the
//      constellation), queue pops/settled per epoch, and steady-state
//      heap allocations per epoch (the workspace-reuse guard: growth
//      proportional to the 30k-node graph would blow the bound).
//   3. clustered — destination clustering on (--cluster-km), reporting
//      the tree-count reduction and its epochs/s.
//
// Emits bench_output/BENCH_fullsky.json, gated in CI by tools/bench_diff
// against bench/baselines/BENCH_fullsky.json. --orbit-div N shrinks
// every shell's plane/slot counts by N (ceil) for the reduced CI slice.
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <vector>

#include "bench/common.hpp"
#include "src/routing/pair_sweep.hpp"
#include "src/topology/cities.hpp"
#include "src/topology/constellation.hpp"
#include "src/topology/shell_group.hpp"

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(size ? size : 1)) return p;
    throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    void* p = nullptr;
    if (posix_memalign(&p, static_cast<std::size_t>(align), size ? size : 1) != 0) {
        throw std::bad_alloc();
    }
    return p;
}
void* operator new[](std::size_t size, std::align_val_t align) {
    return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
    std::free(p);
}

using namespace hypatia;

namespace {

struct ThroughputResult {
    double epochs_per_s = 0.0;
    double realtime_factor = 0.0;
    double pops_per_epoch = 0.0;
    double settled_per_epoch = 0.0;
    double allocs_per_epoch = 0.0;
};

void set_algo(const char* algo) { setenv("HYPATIA_ROUTE_ALGO", algo, 1); }

ThroughputResult measure(route::PairSweeper& sweeper, int warmup, int epochs,
                         TimeNs step) {
    TimeNs t = 0;
    for (int e = 0; e < warmup; ++e, t += step) sweeper.step(t);
    std::uint64_t pops = 0;
    std::uint64_t settled = 0;
    const std::uint64_t allocs_before = g_alloc_count.load(std::memory_order_relaxed);
    const auto t0 = std::chrono::steady_clock::now();
    for (int e = 0; e < epochs; ++e, t += step) {
        sweeper.step(t);
        pops += sweeper.last_step_pops();
        settled += sweeper.last_step_settled();
    }
    const double elapsed_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    const std::uint64_t allocs =
        g_alloc_count.load(std::memory_order_relaxed) - allocs_before;
    ThroughputResult r;
    r.epochs_per_s = static_cast<double>(epochs) / elapsed_s;
    r.realtime_factor = r.epochs_per_s * (static_cast<double>(step) / static_cast<double>(kNsPerSec));
    r.pops_per_epoch = static_cast<double>(pops) / epochs;
    r.settled_per_epoch = static_cast<double>(settled) / epochs;
    r.allocs_per_epoch = static_cast<double>(allocs) / epochs;
    return r;
}

[[noreturn]] void fail(const char* what) {
    std::fprintf(stderr, "bench_fullsky: FAILED: %s\n", what);
    std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
    bench::BenchArgs args(argc, argv);
    const std::string name = args.cli.get_string("constellation", "full_sky");
    const long orbit_div = args.cli.get_long("orbit-div", 1);
    const long num_gs = args.cli.get_long("gs", 100);
    const long num_pairs = args.cli.get_long("pairs", 12);
    const long warmup = args.cli.get_long("warmup", 5);
    const long epochs = args.cli.get_long("epochs", 25);
    const double step_ms = args.step_ms(100.0, 100.0);
    const double cluster_km = args.cli.get_double("cluster-km", 1000.0);
    args.cli.describe("constellation", "preset or shell name (full_sky, starlink_gen2, ...)");
    args.cli.describe("orbit-div", "ceil-divide every shell's planes and slots (CI slice)");
    args.cli.describe("gs", "number of ground stations (top cities)");
    args.cli.describe("pairs", "number of GS pairs swept");
    args.cli.describe("warmup", "untimed warmup epochs per phase");
    args.cli.describe("epochs", "timed epochs per phase");
    args.cli.describe("cluster-km", "destination clustering radius for phase 3");
    args.finish_flags("full-sky multi-shell routing throughput");
    args.manifest.set_param("constellation", name);
    args.manifest.set_param("orbit_div", static_cast<double>(orbit_div));

    auto shells = topo::constellation_shells(name);
    if (orbit_div > 1) {
        for (auto& s : shells) {
            s.num_orbits = std::max<int>(3, (s.num_orbits + static_cast<int>(orbit_div) - 1) /
                                                static_cast<int>(orbit_div));
            s.sats_per_orbit =
                std::max<int>(3, (s.sats_per_orbit + static_cast<int>(orbit_div) - 1) /
                                     static_cast<int>(orbit_div));
        }
    }
    const topo::ShellGroup group(shells, topo::default_epoch());

    auto cities = topo::top100_cities();
    if (num_gs < static_cast<long>(cities.size())) {
        cities.erase(cities.begin() + static_cast<std::ptrdiff_t>(num_gs), cities.end());
    }
    std::vector<route::GsPair> pairs;
    for (long i = 0; i < num_pairs; ++i) {
        const int src = static_cast<int>(i % static_cast<long>(cities.size()));
        const int dst = static_cast<int>((i + static_cast<long>(cities.size()) / 2) %
                                         static_cast<long>(cities.size()));
        if (src != dst) pairs.push_back({src, dst});
    }
    const TimeNs step = static_cast<TimeNs>(step_ms * static_cast<double>(kNsPerMs));

    route::SweepOptions opts;
    opts.dest_cluster_km = 0.0;  // phases 1-2 are exact; env must not leak in

    bench::print_header("bench_fullsky: " + name);
    std::printf("shells %d, satellites %d, ground stations %zu, pairs %zu, step %.0f ms\n",
                group.num_shells(), group.num_satellites(), cities.size(), pairs.size(),
                step_ms);

    // --- Phase 1: Dijkstra/A* equivalence + pop reduction ------------------
    const int kEquivEpochs = 3;
    std::vector<std::vector<route::PairSweeper::Sample>> dijkstra_samples;
    std::uint64_t equiv_dijkstra_pops = 0;
    std::uint64_t equiv_astar_pops = 0;
    {
        set_algo("dijkstra");
        route::PairSweeper sweeper(group, cities, pairs, opts);
        for (int e = 0; e < kEquivEpochs; ++e) {
            dijkstra_samples.push_back(sweeper.step(e * step));
            equiv_dijkstra_pops += sweeper.last_step_pops();
        }
    }
    {
        set_algo("astar");
        route::PairSweeper sweeper(group, cities, pairs, opts);
        for (int e = 0; e < kEquivEpochs; ++e) {
            const auto& samples = sweeper.step(e * step);
            equiv_astar_pops += sweeper.last_step_pops();
            for (std::size_t p = 0; p < samples.size(); ++p) {
                if (samples[p].rtt_s != dijkstra_samples[static_cast<std::size_t>(e)][p].rtt_s) {
                    fail("astar RTT differs from dijkstra");
                }
                if (samples[p].path != dijkstra_samples[static_cast<std::size_t>(e)][p].path) {
                    fail("astar path differs from dijkstra");
                }
            }
        }
    }
    if (equiv_astar_pops >= equiv_dijkstra_pops) {
        fail("astar did not reduce queue pops");
    }
    const double pop_ratio = static_cast<double>(equiv_astar_pops) /
                             static_cast<double>(equiv_dijkstra_pops);
    std::printf("equivalence: %d epochs bitwise-identical; astar pops %.3fx of dijkstra\n",
                kEquivEpochs, pop_ratio);

    // --- Phase 2: throughput per algorithm ---------------------------------
    set_algo("dijkstra");
    route::PairSweeper dijkstra_sweeper(group, cities, pairs, opts);
    const ThroughputResult dijkstra =
        measure(dijkstra_sweeper, static_cast<int>(warmup), static_cast<int>(epochs), step);
    set_algo("astar");
    route::PairSweeper astar_sweeper(group, cities, pairs, opts);
    const ThroughputResult astar =
        measure(astar_sweeper, static_cast<int>(warmup), static_cast<int>(epochs), step);
    std::printf("dijkstra: %.2f epochs/s (RTF %.2f), %.0f pops/epoch, %.0f allocs/epoch\n",
                dijkstra.epochs_per_s, dijkstra.realtime_factor, dijkstra.pops_per_epoch,
                dijkstra.allocs_per_epoch);
    std::printf("astar:    %.2f epochs/s (RTF %.2f), %.0f pops/epoch, %.0f allocs/epoch\n",
                astar.epochs_per_s, astar.realtime_factor, astar.pops_per_epoch,
                astar.allocs_per_epoch);

    // Steady-state allocations must stay proportional to the pair count
    // (path result vectors), never to the 10k-30k-node graph: the
    // workspace / calendar-queue / refresher buffers are reused.
    const double alloc_bound = 64.0 + 8.0 * static_cast<double>(pairs.size());
    if (dijkstra.allocs_per_epoch > alloc_bound || astar.allocs_per_epoch > alloc_bound) {
        fail("steady-state allocations per epoch exceed the reuse bound");
    }
    if (name == "full_sky" && step_ms == 100.0 && astar.realtime_factor < 1.0) {
        fail("full_sky astar real-time factor < 1 at 100 ms epochs");
    }

    // --- Phase 3: clustered destinations -----------------------------------
    set_algo("astar");
    route::SweepOptions copts = opts;
    copts.dest_cluster_km = cluster_km;
    route::PairSweeper clustered_sweeper(group, cities, pairs, copts);
    const ThroughputResult clustered =
        measure(clustered_sweeper, static_cast<int>(warmup), static_cast<int>(epochs), step);
    std::printf("clustered (%.0f km): %zu trees for %zu destinations, %.2f epochs/s (RTF %.2f)\n",
                cluster_km, clustered_sweeper.num_trees(), dijkstra_sweeper.num_trees(),
                clustered.epochs_per_s, clustered.realtime_factor);

    const std::string path = bench::out_path("BENCH_fullsky.json");
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) fail("cannot write BENCH_fullsky.json");
    std::fprintf(
        f,
        "{\n"
        "  \"bench\": \"fullsky_routing\",\n"
        "  \"constellation\": \"%s\",\n"
        "  \"orbit_div\": %ld,\n"
        "  \"num_shells\": %d,\n"
        "  \"num_satellites\": %d,\n"
        "  \"num_ground_stations\": %zu,\n"
        "  \"num_pairs\": %zu,\n"
        "  \"epoch_ms\": %.1f,\n"
        "  \"measured_epochs\": %ld,\n"
        "  \"equivalence\": {\"epochs\": %d, \"bitwise_identical\": true,\n"
        "                    \"astar_pop_ratio\": %.4f},\n"
        "  \"dijkstra\": {\"epochs_per_s\": %.4f, \"realtime_factor\": %.4f,\n"
        "                \"pops_per_epoch\": %.1f, \"settled_per_epoch\": %.1f,\n"
        "                \"allocs_per_epoch\": %.1f},\n"
        "  \"astar\": {\"epochs_per_s\": %.4f, \"realtime_factor\": %.4f,\n"
        "             \"pops_per_epoch\": %.1f, \"settled_per_epoch\": %.1f,\n"
        "             \"allocs_per_epoch\": %.1f},\n"
        "  \"clustered\": {\"cluster_km\": %.1f, \"trees\": %zu, \"destinations\": %zu,\n"
        "                 \"epochs_per_s\": %.4f, \"realtime_factor\": %.4f}\n"
        "}\n",
        name.c_str(), orbit_div, group.num_shells(), group.num_satellites(),
        cities.size(), pairs.size(), step_ms, epochs, kEquivEpochs, pop_ratio,
        dijkstra.epochs_per_s, dijkstra.realtime_factor, dijkstra.pops_per_epoch,
        dijkstra.settled_per_epoch, dijkstra.allocs_per_epoch, astar.epochs_per_s,
        astar.realtime_factor, astar.pops_per_epoch, astar.settled_per_epoch,
        astar.allocs_per_epoch, cluster_km, clustered_sweeper.num_trees(),
        dijkstra_sweeper.num_trees(), clustered.epochs_per_s,
        clustered.realtime_factor);
    std::fclose(f);
    std::printf("-> %s\n", path.c_str());
    return 0;
}
