#include "src/util/cli.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace hypatia::util {

Cli::Cli(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            positional_.push_back(arg);
            continue;
        }
        arg = arg.substr(2);
        const auto eq = arg.find('=');
        if (eq != std::string::npos) {
            flags_[arg.substr(0, eq)] = arg.substr(eq + 1);
        } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
            flags_[arg] = argv[++i];
        } else {
            flags_[arg] = "";  // boolean flag
        }
    }
}

void Cli::note_known(const std::string& name) const {
    if (known_help_.count(name) > 0) return;
    known_help_[name] = "";
    known_order_.push_back(name);
}

bool Cli::has(const std::string& name) const {
    note_known(name);
    return flags_.count(name) > 0;
}

double Cli::get_double(const std::string& name, double def) const {
    note_known(name);
    const auto it = flags_.find(name);
    return it == flags_.end() || it->second.empty() ? def : std::strtod(it->second.c_str(), nullptr);
}

long Cli::get_long(const std::string& name, long def) const {
    note_known(name);
    const auto it = flags_.find(name);
    return it == flags_.end() || it->second.empty() ? def : std::strtol(it->second.c_str(), nullptr, 10);
}

std::string Cli::get_string(const std::string& name, const std::string& def) const {
    note_known(name);
    const auto it = flags_.find(name);
    return it == flags_.end() ? def : it->second;
}

bool Cli::get_bool(const std::string& name, bool def) const {
    note_known(name);
    const auto it = flags_.find(name);
    if (it == flags_.end()) return def;
    return it->second.empty() || it->second == "1" || it->second == "true";
}

void Cli::describe(const std::string& name, const std::string& help) {
    note_known(name);
    known_help_[name] = help;
}

std::string Cli::help_text(const std::string& program,
                           const std::string& summary) const {
    std::ostringstream os;
    if (!program.empty()) os << "usage: " << program << " [flags]\n";
    if (!summary.empty()) os << summary << "\n";
    os << "flags:\n";
    std::size_t width = 6;  // "--help"
    for (const auto& name : known_order_) width = std::max(width, name.size() + 2);
    for (const auto& name : known_order_) {
        if (name == "help") continue;
        os << "  --" << name << std::string(width - name.size() - 2 + 2, ' ')
           << known_help_.at(name) << "\n";
    }
    os << "  --help" << std::string(width - 6 + 2, ' ') << "print this help\n";
    return os.str();
}

std::vector<std::string> Cli::unknown_flags() const {
    std::vector<std::string> unknown;
    for (const auto& [name, value] : flags_) {
        (void)value;
        if (name != "help" && known_help_.count(name) == 0) unknown.push_back(name);
    }
    return unknown;
}

void Cli::finish(const std::string& program, const std::string& summary) const {
    if (help_requested()) {
        std::fputs(help_text(program, summary).c_str(), stdout);
        std::exit(0);
    }
    const auto unknown = unknown_flags();
    if (!unknown.empty()) {
        for (const auto& name : unknown) {
            std::fprintf(stderr, "error: unknown flag --%s\n", name.c_str());
        }
        std::fprintf(stderr, "run with --help for the flag list\n");
        std::exit(2);
    }
}

}  // namespace hypatia::util
