// Minimal 3-vector used throughout the orbital and topology code.
// Units are whatever the call site says (we consistently use kilometres).
#pragma once

#include <cmath>
#include <ostream>

namespace hypatia {

struct Vec3 {
    double x = 0.0;
    double y = 0.0;
    double z = 0.0;

    constexpr Vec3 operator+(const Vec3& o) const { return {x + o.x, y + o.y, z + o.z}; }
    constexpr Vec3 operator-(const Vec3& o) const { return {x - o.x, y - o.y, z - o.z}; }
    constexpr Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }
    constexpr Vec3 operator/(double s) const { return {x / s, y / s, z / s}; }
    constexpr Vec3& operator+=(const Vec3& o) {
        x += o.x;
        y += o.y;
        z += o.z;
        return *this;
    }

    constexpr double dot(const Vec3& o) const { return x * o.x + y * o.y + z * o.z; }
    constexpr Vec3 cross(const Vec3& o) const {
        return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
    }
    double norm() const { return std::sqrt(dot(*this)); }
    Vec3 normalized() const {
        const double n = norm();
        return n > 0.0 ? *this / n : Vec3{};
    }
    double distance_to(const Vec3& o) const { return (*this - o).norm(); }
};

constexpr Vec3 operator*(double s, const Vec3& v) { return v * s; }

inline std::ostream& operator<<(std::ostream& os, const Vec3& v) {
    return os << "(" << v.x << ", " << v.y << ", " << v.z << ")";
}

}  // namespace hypatia
