// Deterministic parallel compute: a fixed-size worker pool with a
// chunked parallel_for primitive and ordered map/reduce helpers.
//
// The determinism contract (DESIGN.md "Threading model"): every
// parallelized computation must produce byte-identical results at any
// thread count. parallel_for only distributes *independent* index
// ranges — each index's result may depend only on the index and on
// state that is read-only for the duration of the call — and the
// ordered helpers below merge per-index results back on the calling
// thread in index order, so downstream serialization never observes
// scheduling order. Floating-point work is unchanged per index (no
// re-association across indices), which is why the outputs match the
// serial run bit for bit.
//
// Thread count comes from HYPATIA_THREADS (default: hardware
// concurrency). At 1 thread parallel_for degenerates to an inline loop
// on the calling thread — the exact serial code path, with no worker
// threads spawned and no synchronization touched. Nested parallel_for
// calls (from inside a worker) also run inline, so library code may use
// the primitive without caring whether a caller already parallelized an
// outer level.
#pragma once

#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

namespace hypatia::util {

class ThreadPool {
  public:
    /// A pool executing on `num_threads` lanes in total: the calling
    /// thread participates, so `num_threads == 1` spawns no workers.
    explicit ThreadPool(std::size_t num_threads);
    ~ThreadPool();
    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /// Total execution lanes (workers + the calling thread); >= 1.
    std::size_t num_threads() const;

    /// Runs `body(begin, end)` over half-open chunks covering [0, n),
    /// each chunk at most `chunk` indices wide, distributed over the
    /// pool. Blocks until every index is processed; rethrows the first
    /// exception a chunk threw (remaining chunks still run). The body
    /// must not touch shared mutable state except through the obs layer
    /// (which is thread-safe) or per-index output slots.
    void parallel_for(std::size_t n, std::size_t chunk,
                      const std::function<void(std::size_t, std::size_t)>& body);

    /// The process-wide pool, sized from HYPATIA_THREADS on first use.
    static ThreadPool& global();

    /// Replaces the global pool with an `n`-lane one (0 = re-read the
    /// environment / hardware default). For tests and benchmarks; must
    /// not be called while parallel work is in flight.
    static void set_global_threads(std::size_t n);

    /// Thread-count policy: parses `env_value` (may be null); values
    /// < 1 or unparsable fall back to hardware_concurrency (min 1).
    /// Exposed for tests.
    static std::size_t decide_num_threads(const char* env_value);

    /// True while the current thread is a pool worker executing a chunk
    /// (nested parallel_for calls run inline then).
    static bool in_worker();

  private:
    struct Impl;
    Impl* impl_;  // pimpl keeps <thread>/<mutex> out of this header
};

/// Computes `out[i] = fn(i)` for i in [0, n) on the global pool and
/// returns the results in index order. T must be default-constructible
/// and movable.
template <typename T, typename Fn>
std::vector<T> parallel_map(std::size_t n, std::size_t chunk, Fn&& fn) {
    std::vector<T> out(n);
    ThreadPool::global().parallel_for(
        n, chunk, [&](std::size_t begin, std::size_t end) {
            for (std::size_t i = begin; i < end; ++i) out[i] = fn(i);
        });
    return out;
}

/// Maps in parallel, then folds serially on the calling thread in
/// ascending index order: `fold(i, std::move(result_i))`. The fold order
/// is what keeps merged containers (forwarding state, CSR problems)
/// byte-stable across thread counts.
template <typename T, typename MapFn, typename FoldFn>
void ordered_reduce(std::size_t n, std::size_t chunk, MapFn&& map, FoldFn&& fold) {
    std::vector<T> out = parallel_map<T>(n, chunk, std::forward<MapFn>(map));
    for (std::size_t i = 0; i < n; ++i) fold(i, std::move(out[i]));
}

}  // namespace hypatia::util
