#include "src/util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

namespace hypatia::util {

double percentile(std::vector<double> values, double p) {
    if (values.empty()) return 0.0;
    std::sort(values.begin(), values.end());
    if (p <= 0.0) return values.front();
    if (p >= 100.0) return values.back();
    const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
    const auto lo = static_cast<std::size_t>(std::floor(rank));
    const auto hi = static_cast<std::size_t>(std::ceil(rank));
    const double frac = rank - static_cast<double>(lo);
    return values[lo] * (1.0 - frac) + values[hi] * frac;
}

Summary summarize(std::vector<double> values) {
    Summary s;
    s.count = values.size();
    if (values.empty()) return s;
    std::sort(values.begin(), values.end());
    s.min = values.front();
    s.max = values.back();
    s.mean = std::accumulate(values.begin(), values.end(), 0.0) /
             static_cast<double>(values.size());
    auto at = [&](double p) {
        const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
        const auto lo = static_cast<std::size_t>(std::floor(rank));
        const auto hi = static_cast<std::size_t>(std::ceil(rank));
        const double frac = rank - static_cast<double>(lo);
        return values[lo] * (1.0 - frac) + values[hi] * frac;
    };
    s.median = at(50.0);
    s.p90 = at(90.0);
    s.p99 = at(99.0);
    return s;
}

std::vector<EcdfPoint> ecdf(std::vector<double> values, std::size_t max_points) {
    std::vector<EcdfPoint> out;
    if (values.empty()) return out;
    std::sort(values.begin(), values.end());
    const auto n = values.size();
    out.reserve(max_points > 0 ? std::min(n, max_points) : n);
    std::size_t stride = 1;
    if (max_points > 0 && n > max_points) stride = (n + max_points - 1) / max_points;
    for (std::size_t i = 0; i < n; i += stride) {
        out.push_back({values[i], static_cast<double>(i + 1) / static_cast<double>(n)});
    }
    if (out.back().fraction < 1.0) out.push_back({values.back(), 1.0});
    return out;
}

std::string ecdf_to_string(const std::vector<EcdfPoint>& points) {
    std::ostringstream os;
    for (const auto& p : points) os << p.x << " " << p.fraction << "\n";
    return os.str();
}

}  // namespace hypatia::util
