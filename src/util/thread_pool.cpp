#include "src/util/thread_pool.hpp"

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>

namespace hypatia::util {

namespace {

// Set while the current thread executes a chunk body (worker or the
// participating caller); nested parallel_for calls then run inline.
thread_local bool t_in_worker = false;

}  // namespace

struct ThreadPool::Impl {
    // One in-flight job. All fields are guarded by `mu` — chunks are
    // claimed under the lock (chunks are coarse: a claim is nanoseconds
    // against a body that runs micro- to milliseconds), which keeps a
    // straggling worker from ever touching a later job's body with an
    // earlier job's state.
    struct Job {
        const std::function<void(std::size_t, std::size_t)>* body = nullptr;
        std::size_t n = 0;
        std::size_t chunk = 1;
        std::size_t next = 0;       // first unclaimed index
        std::size_t remaining = 0;  // indices claimed-or-not yet completed
        std::exception_ptr error;   // first exception thrown by any chunk
    };

    std::vector<std::thread> workers;
    std::mutex mu;
    std::condition_variable work_cv;  // workers: new generation / shutdown
    std::condition_variable done_cv;  // callers: job finished / slot free
    std::uint64_t generation = 0;     // bumped when a job is installed
    Job* job = nullptr;               // live job, or nullptr
    bool shutdown = false;

    // Claims and runs chunks of `job` until none remain. `lock` must
    // hold `mu` on entry and holds it again on exit.
    void run_chunks(Job& job, std::unique_lock<std::mutex>& lock) {
        while (job.next < job.n) {
            const std::size_t begin = job.next;
            const std::size_t end = std::min(job.n, begin + job.chunk);
            job.next = end;
            lock.unlock();
            const bool outer = t_in_worker;
            t_in_worker = true;
            std::exception_ptr thrown;
            try {
                (*job.body)(begin, end);
            } catch (...) {
                thrown = std::current_exception();
            }
            t_in_worker = outer;
            lock.lock();
            if (thrown && !job.error) job.error = thrown;
            job.remaining -= end - begin;
            if (job.remaining == 0) done_cv.notify_all();
        }
    }

    void worker_loop() {
        std::uint64_t seen = 0;
        std::unique_lock<std::mutex> lock(mu);
        while (true) {
            work_cv.wait(lock, [&] {
                return shutdown || (job != nullptr && generation != seen);
            });
            if (shutdown) return;
            seen = generation;
            run_chunks(*job, lock);
        }
    }
};

ThreadPool::ThreadPool(std::size_t num_threads) : impl_(new Impl) {
    const std::size_t lanes = std::max<std::size_t>(1, num_threads);
    impl_->workers.reserve(lanes - 1);
    for (std::size_t i = 0; i + 1 < lanes; ++i) {
        impl_->workers.emplace_back([this] { impl_->worker_loop(); });
    }
}

ThreadPool::~ThreadPool() {
    {
        std::lock_guard<std::mutex> lock(impl_->mu);
        impl_->shutdown = true;
    }
    impl_->work_cv.notify_all();
    for (std::thread& w : impl_->workers) w.join();
    delete impl_;
}

std::size_t ThreadPool::num_threads() const { return impl_->workers.size() + 1; }

void ThreadPool::parallel_for(
    std::size_t n, std::size_t chunk,
    const std::function<void(std::size_t, std::size_t)>& body) {
    if (n == 0) return;
    if (chunk == 0) chunk = 1;
    // The exact serial path: one lane, a nested call, or too little work
    // to split — run inline, touching no synchronization at all.
    if (impl_->workers.empty() || t_in_worker || n <= chunk) {
        for (std::size_t begin = 0; begin < n; begin += chunk) {
            body(begin, std::min(n, begin + chunk));
        }
        return;
    }

    Impl::Job job;
    job.body = &body;
    job.n = n;
    job.chunk = chunk;
    job.remaining = n;

    std::unique_lock<std::mutex> lock(impl_->mu);
    // One job at a time; a second caller thread queues here.
    impl_->done_cv.wait(lock, [&] { return impl_->job == nullptr; });
    impl_->job = &job;
    ++impl_->generation;
    impl_->work_cv.notify_all();
    impl_->run_chunks(job, lock);  // the caller is a lane too
    impl_->done_cv.wait(lock, [&] { return job.remaining == 0; });
    impl_->job = nullptr;
    impl_->done_cv.notify_all();  // free the slot for queued callers
    const std::exception_ptr error = job.error;
    lock.unlock();
    if (error) std::rethrow_exception(error);
}

bool ThreadPool::in_worker() { return t_in_worker; }

std::size_t ThreadPool::decide_num_threads(const char* env_value) {
    if (env_value != nullptr && env_value[0] != '\0') {
        char* end = nullptr;
        const long v = std::strtol(env_value, &end, 10);
        if (end != env_value && *end == '\0' && v >= 1) {
            return static_cast<std::size_t>(v);
        }
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

namespace {

std::mutex g_global_mu;
std::unique_ptr<ThreadPool> g_global;

}  // namespace

ThreadPool& ThreadPool::global() {
    std::lock_guard<std::mutex> lock(g_global_mu);
    if (!g_global) {
        g_global = std::make_unique<ThreadPool>(
            decide_num_threads(std::getenv("HYPATIA_THREADS")));
    }
    return *g_global;
}

void ThreadPool::set_global_threads(std::size_t n) {
    std::lock_guard<std::mutex> lock(g_global_mu);
    g_global.reset();  // joins the old workers first
    g_global = std::make_unique<ThreadPool>(
        n == 0 ? decide_num_threads(std::getenv("HYPATIA_THREADS")) : n);
}

}  // namespace hypatia::util
