// Minimal command-line flag parser shared by the bench binaries and
// examples: --name value / --name=value / boolean --flag.
//
// Flags become *known* either by an explicit describe() (which also
// attaches the --help text) or implicitly at first get_*()/has() lookup.
// After every flag has been read, finish() implements the standard
// protocol: --help prints the auto-generated usage and exits 0; a parsed
// flag that no code ever looked up (a typo like --durations) prints a
// message and exits 2 instead of being silently ignored.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace hypatia::util {

class Cli {
  public:
    Cli(int argc, char** argv);

    bool has(const std::string& name) const;
    double get_double(const std::string& name, double def) const;
    long get_long(const std::string& name, long def) const;
    std::string get_string(const std::string& name, const std::string& def) const;
    bool get_bool(const std::string& name, bool def = false) const;

    /// Positional (non-flag) arguments, in order.
    const std::vector<std::string>& positional() const { return positional_; }

    /// Registers `--name` with its help line (shown by help_text()).
    void describe(const std::string& name, const std::string& help);

    /// Auto-generated usage text: one "  --name  help" line per
    /// registered flag, in registration order; --help is always listed.
    std::string help_text(const std::string& program = "",
                          const std::string& summary = "") const;

    bool help_requested() const { return flags_.count("help") > 0; }

    /// Flags that were parsed but never described or looked up.
    std::vector<std::string> unknown_flags() const;

    /// Standard end-of-parsing protocol (call after the last get_*):
    /// prints help and exits 0 on --help; prints the unknown flags to
    /// stderr and exits 2 if any. No-op otherwise.
    void finish(const std::string& program = "",
                const std::string& summary = "") const;

  private:
    void note_known(const std::string& name) const;

    std::map<std::string, std::string> flags_;
    std::vector<std::string> positional_;
    // Registration order for help; map for membership. `mutable` because
    // get_*() const lookups register the name as known.
    mutable std::vector<std::string> known_order_;
    mutable std::map<std::string, std::string> known_help_;
};

}  // namespace hypatia::util
