// Minimal command-line flag parser shared by the bench binaries and
// examples: --name value / --name=value / boolean --flag.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace hypatia::util {

class Cli {
  public:
    Cli(int argc, char** argv);

    bool has(const std::string& name) const;
    double get_double(const std::string& name, double def) const;
    long get_long(const std::string& name, long def) const;
    std::string get_string(const std::string& name, const std::string& def) const;
    bool get_bool(const std::string& name, bool def = false) const;

    /// Positional (non-flag) arguments, in order.
    const std::vector<std::string>& positional() const { return positional_; }

  private:
    std::map<std::string, std::string> flags_;
    std::vector<std::string> positional_;
};

}  // namespace hypatia::util
