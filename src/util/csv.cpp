#include "src/util/csv.hpp"

#include <filesystem>
#include <stdexcept>

namespace hypatia::util {

CsvWriter::CsvWriter(const std::string& path) : path_(path), out_(path) {
    if (!out_.is_open()) {
        throw std::runtime_error("CsvWriter: cannot open " + path);
    }
    out_.precision(10);
}

std::string CsvWriter::escape(const std::string& cell) {
    const bool needs_quoting =
        cell.find_first_of(",\"\r\n") != std::string::npos;
    if (!needs_quoting) return cell;
    std::string quoted;
    quoted.reserve(cell.size() + 2);
    quoted.push_back('"');
    for (const char c : cell) {
        if (c == '"') quoted.push_back('"');
        quoted.push_back(c);
    }
    quoted.push_back('"');
    return quoted;
}

void CsvWriter::header(const std::vector<std::string>& columns) {
    row(columns);
}

void CsvWriter::row(const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i > 0) out_ << ",";
        out_ << escape(cells[i]);
    }
    out_ << "\n";
}

void CsvWriter::row(const std::vector<double>& values) {
    for (std::size_t i = 0; i < values.size(); ++i) {
        if (i > 0) out_ << ",";
        out_ << values[i];
    }
    out_ << "\n";
}

void CsvWriter::raw_line(const std::string& line) { out_ << line << "\n"; }

std::string output_path(const std::string& dir, const std::string& name) {
    std::filesystem::create_directories(dir);
    return (std::filesystem::path(dir) / name).string();
}

}  // namespace hypatia::util
