// Small statistics helpers: percentiles, ECDF extraction, running summaries.
// Used by the path analytics and by every bench that prints a CDF from the
// paper (Figs 6-9).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace hypatia::util {

/// Summary statistics over a sample set.
struct Summary {
    std::size_t count = 0;
    double min = 0.0;
    double max = 0.0;
    double mean = 0.0;
    double median = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;
};

/// Computes the p-th percentile (0 <= p <= 100) by linear interpolation
/// between closest ranks. Returns 0 for an empty sample.
double percentile(std::vector<double> values, double p);

/// Computes the full summary in one pass over a copy of `values`.
Summary summarize(std::vector<double> values);

/// One (x, F(x)) point of an empirical CDF.
struct EcdfPoint {
    double x;
    double fraction;  // in (0, 1]
};

/// Builds the empirical CDF of `values` (sorted ascending, cumulative
/// fractions). `max_points` > 0 thins the curve for printing.
std::vector<EcdfPoint> ecdf(std::vector<double> values, std::size_t max_points = 0);

/// Renders an ECDF as gnuplot-style two-column text.
std::string ecdf_to_string(const std::vector<EcdfPoint>& points);

/// Incremental mean/min/max accumulator (no storage of samples).
class RunningStats {
  public:
    void add(double v) {
        if (count_ == 0 || v < min_) min_ = v;
        if (count_ == 0 || v > max_) max_ = v;
        sum_ += v;
        ++count_;
    }
    std::size_t count() const { return count_; }
    double min() const { return min_; }
    double max() const { return max_; }
    double mean() const { return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0; }

  private:
    std::size_t count_ = 0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
};

}  // namespace hypatia::util
