// Portable 4-lane double SIMD wrapper (AVX2 / NEON / scalar fallback)
// for the batched SGP4 kernel (DESIGN.md §11).
//
// Policy: ONLY IEEE-754 basic operations (add, sub, mul, div, sqrt,
// negate, compare, blend) — each is correctly rounded per lane, so a
// vector op produces bit-identical results to the corresponding scalar
// op on each lane. NO fused-multiply-add, ever: FMA contracts a*b+c
// into one rounding and would diverge from the scalar reference, which
// is compiled for baselines without FMA. Transcendentals (sin, cos,
// fmod, atan2) go through lane-scalar libm via store/load.
//
// Everything is `static inline`: this header is included from TUs built
// with different ISA flags (sgp4_batch_simd.cpp gets -mavx2), and
// internal linkage keeps those differently-compiled bodies from ever
// colliding under the ODR.
#pragma once

#include <cstddef>

#if defined(__AVX2__)
#include <immintrin.h>
#define HYPATIA_SIMD_AVX2 1
#elif defined(__aarch64__) || defined(__ARM_NEON)
#include <arm_neon.h>
#define HYPATIA_SIMD_NEON 1
#endif

namespace hypatia::util::simd {

inline constexpr int kLanes = 4;

#if defined(HYPATIA_SIMD_AVX2)

struct Vec4d {
    __m256d v;
};
struct Mask4 {
    __m256d v;  // all-ones / all-zeros per lane
};

static inline Vec4d load4(const double* p) { return {_mm256_loadu_pd(p)}; }
static inline void store4(const Vec4d& a, double* p) { _mm256_storeu_pd(p, a.v); }
static inline Vec4d bcast4(double x) { return {_mm256_set1_pd(x)}; }
static inline Vec4d add4(const Vec4d& a, const Vec4d& b) { return {_mm256_add_pd(a.v, b.v)}; }
static inline Vec4d sub4(const Vec4d& a, const Vec4d& b) { return {_mm256_sub_pd(a.v, b.v)}; }
static inline Vec4d mul4(const Vec4d& a, const Vec4d& b) { return {_mm256_mul_pd(a.v, b.v)}; }
static inline Vec4d div4(const Vec4d& a, const Vec4d& b) { return {_mm256_div_pd(a.v, b.v)}; }
static inline Vec4d sqrt4(const Vec4d& a) { return {_mm256_sqrt_pd(a.v)}; }
static inline Vec4d neg4(const Vec4d& a) {
    return {_mm256_xor_pd(a.v, _mm256_set1_pd(-0.0))};  // exact sign flip, -0.0-safe
}
static inline Vec4d abs4(const Vec4d& a) {
    return {_mm256_andnot_pd(_mm256_set1_pd(-0.0), a.v)};
}
static inline Mask4 cmp_lt4(const Vec4d& a, const Vec4d& b) {
    return {_mm256_cmp_pd(a.v, b.v, _CMP_LT_OQ)};
}
static inline Mask4 cmp_ge4(const Vec4d& a, const Vec4d& b) {
    return {_mm256_cmp_pd(a.v, b.v, _CMP_GE_OQ)};
}
static inline Mask4 cmp_gt4(const Vec4d& a, const Vec4d& b) {
    return {_mm256_cmp_pd(a.v, b.v, _CMP_GT_OQ)};
}
static inline Mask4 mask_and4(const Mask4& a, const Mask4& b) {
    return {_mm256_and_pd(a.v, b.v)};
}
/// b where mask lane is set, else a.
static inline Vec4d blend4(const Mask4& m, const Vec4d& a, const Vec4d& b) {
    return {_mm256_blendv_pd(a.v, b.v, m.v)};
}
static inline bool any4(const Mask4& m) { return _mm256_movemask_pd(m.v) != 0; }
static inline bool lane4(const Mask4& m, int i) {
    return (_mm256_movemask_pd(m.v) >> i) & 1;
}
static inline Mask4 mask_all4() {
    return {_mm256_castsi256_pd(_mm256_set1_epi64x(-1))};
}

#elif defined(HYPATIA_SIMD_NEON)

struct Vec4d {
    float64x2_t lo, hi;
};
struct Mask4 {
    uint64x2_t lo, hi;
};

static inline Vec4d load4(const double* p) { return {vld1q_f64(p), vld1q_f64(p + 2)}; }
static inline void store4(const Vec4d& a, double* p) {
    vst1q_f64(p, a.lo);
    vst1q_f64(p + 2, a.hi);
}
static inline Vec4d bcast4(double x) { return {vdupq_n_f64(x), vdupq_n_f64(x)}; }
static inline Vec4d add4(const Vec4d& a, const Vec4d& b) {
    return {vaddq_f64(a.lo, b.lo), vaddq_f64(a.hi, b.hi)};
}
static inline Vec4d sub4(const Vec4d& a, const Vec4d& b) {
    return {vsubq_f64(a.lo, b.lo), vsubq_f64(a.hi, b.hi)};
}
static inline Vec4d mul4(const Vec4d& a, const Vec4d& b) {
    return {vmulq_f64(a.lo, b.lo), vmulq_f64(a.hi, b.hi)};
}
static inline Vec4d div4(const Vec4d& a, const Vec4d& b) {
    return {vdivq_f64(a.lo, b.lo), vdivq_f64(a.hi, b.hi)};
}
static inline Vec4d sqrt4(const Vec4d& a) { return {vsqrtq_f64(a.lo), vsqrtq_f64(a.hi)}; }
static inline Vec4d neg4(const Vec4d& a) { return {vnegq_f64(a.lo), vnegq_f64(a.hi)}; }
static inline Vec4d abs4(const Vec4d& a) { return {vabsq_f64(a.lo), vabsq_f64(a.hi)}; }
static inline Mask4 cmp_lt4(const Vec4d& a, const Vec4d& b) {
    return {vcltq_f64(a.lo, b.lo), vcltq_f64(a.hi, b.hi)};
}
static inline Mask4 cmp_ge4(const Vec4d& a, const Vec4d& b) {
    return {vcgeq_f64(a.lo, b.lo), vcgeq_f64(a.hi, b.hi)};
}
static inline Mask4 cmp_gt4(const Vec4d& a, const Vec4d& b) {
    return {vcgtq_f64(a.lo, b.lo), vcgtq_f64(a.hi, b.hi)};
}
static inline Mask4 mask_and4(const Mask4& a, const Mask4& b) {
    return {vandq_u64(a.lo, b.lo), vandq_u64(a.hi, b.hi)};
}
static inline Vec4d blend4(const Mask4& m, const Vec4d& a, const Vec4d& b) {
    return {vbslq_f64(m.lo, b.lo, a.lo), vbslq_f64(m.hi, b.hi, a.hi)};
}
static inline bool any4(const Mask4& m) {
    return (vgetq_lane_u64(m.lo, 0) | vgetq_lane_u64(m.lo, 1) |
            vgetq_lane_u64(m.hi, 0) | vgetq_lane_u64(m.hi, 1)) != 0;
}
static inline bool lane4(const Mask4& m, int i) {
    switch (i) {
        case 0: return vgetq_lane_u64(m.lo, 0) != 0;
        case 1: return vgetq_lane_u64(m.lo, 1) != 0;
        case 2: return vgetq_lane_u64(m.hi, 0) != 0;
        default: return vgetq_lane_u64(m.hi, 1) != 0;
    }
}
static inline Mask4 mask_all4() {
    return {vdupq_n_u64(~0ULL), vdupq_n_u64(~0ULL)};
}

#else  // scalar fallback: same 4-lane shape, plain double ops

struct Vec4d {
    double d[4];
};
struct Mask4 {
    bool b[4];
};

static inline Vec4d load4(const double* p) { return {{p[0], p[1], p[2], p[3]}}; }
static inline void store4(const Vec4d& a, double* p) {
    p[0] = a.d[0];
    p[1] = a.d[1];
    p[2] = a.d[2];
    p[3] = a.d[3];
}
static inline Vec4d bcast4(double x) { return {{x, x, x, x}}; }
#define HYPATIA_SIMD_LANEWISE(name, expr)                              \
    static inline Vec4d name(const Vec4d& a, const Vec4d& b) {         \
        Vec4d r;                                                       \
        for (int i = 0; i < 4; ++i) r.d[i] = (expr);                   \
        return r;                                                      \
    }
HYPATIA_SIMD_LANEWISE(add4, a.d[i] + b.d[i])
HYPATIA_SIMD_LANEWISE(sub4, a.d[i] - b.d[i])
HYPATIA_SIMD_LANEWISE(mul4, a.d[i] * b.d[i])
HYPATIA_SIMD_LANEWISE(div4, a.d[i] / b.d[i])
#undef HYPATIA_SIMD_LANEWISE
static inline Vec4d sqrt4(const Vec4d& a) {
    Vec4d r;
    for (int i = 0; i < 4; ++i) r.d[i] = __builtin_sqrt(a.d[i]);
    return r;
}
static inline Vec4d neg4(const Vec4d& a) { return {{-a.d[0], -a.d[1], -a.d[2], -a.d[3]}}; }
static inline Vec4d abs4(const Vec4d& a) {
    Vec4d r;
    for (int i = 0; i < 4; ++i) r.d[i] = __builtin_fabs(a.d[i]);
    return r;
}
#define HYPATIA_SIMD_CMP(name, op)                                     \
    static inline Mask4 name(const Vec4d& a, const Vec4d& b) {         \
        Mask4 m;                                                       \
        for (int i = 0; i < 4; ++i) m.b[i] = a.d[i] op b.d[i];         \
        return m;                                                      \
    }
HYPATIA_SIMD_CMP(cmp_lt4, <)
HYPATIA_SIMD_CMP(cmp_ge4, >=)
HYPATIA_SIMD_CMP(cmp_gt4, >)
#undef HYPATIA_SIMD_CMP
static inline Mask4 mask_and4(const Mask4& a, const Mask4& b) {
    return {{a.b[0] && b.b[0], a.b[1] && b.b[1], a.b[2] && b.b[2], a.b[3] && b.b[3]}};
}
static inline Vec4d blend4(const Mask4& m, const Vec4d& a, const Vec4d& b) {
    Vec4d r;
    for (int i = 0; i < 4; ++i) r.d[i] = m.b[i] ? b.d[i] : a.d[i];
    return r;
}
static inline bool any4(const Mask4& m) { return m.b[0] || m.b[1] || m.b[2] || m.b[3]; }
static inline bool lane4(const Mask4& m, int i) { return m.b[i]; }
static inline Mask4 mask_all4() { return {{true, true, true, true}}; }

#endif

/// Name of the lane implementation this TU was compiled with.
static inline const char* isa_name() {
#if defined(HYPATIA_SIMD_AVX2)
    return "avx2";
#elif defined(HYPATIA_SIMD_NEON)
    return "neon";
#else
    return "generic";
#endif
}

}  // namespace hypatia::util::simd
