// Tiny CSV / gnuplot-data writer used by benches and the viz exporters.
#pragma once

#include <fstream>
#include <initializer_list>
#include <string>
#include <vector>

namespace hypatia::util {

/// Writes rows of doubles/strings to a file, one comma-separated row per
/// call. Throws std::runtime_error if the file cannot be opened.
class CsvWriter {
  public:
    explicit CsvWriter(const std::string& path);

    void header(const std::vector<std::string>& columns);
    void row(const std::vector<double>& values);
    void raw_line(const std::string& line);
    const std::string& path() const { return path_; }

  private:
    std::string path_;
    std::ofstream out_;
};

/// Ensures the directory for output artifacts exists and returns `dir/name`.
std::string output_path(const std::string& dir, const std::string& name);

}  // namespace hypatia::util
