// Tiny CSV / gnuplot-data writer used by benches and the viz exporters.
#pragma once

#include <fstream>
#include <initializer_list>
#include <string>
#include <vector>

namespace hypatia::util {

/// Writes rows of doubles/strings to a file, one comma-separated row per
/// call. Throws std::runtime_error if the file cannot be opened. String
/// cells (headers and string rows) are RFC-4180 escaped: a cell
/// containing a comma, double quote, CR or LF is wrapped in double
/// quotes with embedded quotes doubled — "Washington, D.C." stays one
/// cell. raw_line() bypasses escaping by design.
class CsvWriter {
  public:
    explicit CsvWriter(const std::string& path);

    void header(const std::vector<std::string>& columns);
    void row(const std::vector<double>& values);
    /// One row of string cells, each RFC-4180 escaped.
    void row(const std::vector<std::string>& cells);
    void raw_line(const std::string& line);
    const std::string& path() const { return path_; }

    /// RFC-4180 escaping of one cell (quoting only when needed).
    static std::string escape(const std::string& cell);

  private:
    std::string path_;
    std::ofstream out_;
};

/// Ensures the directory for output artifacts exists and returns `dir/name`.
std::string output_path(const std::string& dir, const std::string& name);

}  // namespace hypatia::util
