// Shared scalar unit types and conversions. Simulation time is integer
// nanoseconds (like ns-3) so event ordering is exact; rates are bits/s.
#pragma once

#include <cstdint>

namespace hypatia {

using TimeNs = std::int64_t;

constexpr TimeNs kNsPerSec = 1'000'000'000LL;
constexpr TimeNs kNsPerMs = 1'000'000LL;
constexpr TimeNs kNsPerUs = 1'000LL;

constexpr TimeNs seconds_to_ns(double s) { return static_cast<TimeNs>(s * 1e9); }
constexpr TimeNs ms_to_ns(double ms) { return static_cast<TimeNs>(ms * 1e6); }
constexpr double ns_to_seconds(TimeNs t) { return static_cast<double>(t) / 1e9; }
constexpr double ns_to_ms(TimeNs t) { return static_cast<double>(t) / 1e6; }

}  // namespace hypatia
