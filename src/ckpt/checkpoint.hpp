// Deterministic checkpoint/restore (DESIGN.md §13). A checkpoint is a
// versioned, CRC-guarded snapshot of the *irreproducible* engine state
// — sim clock / epoch counter, the live flow table (arrivals, residual
// bytes, tracked rate series), exporter/pacer progress, sweep cursors
// and the obs counters — written atomically (temp file + fsync +
// rename + directory fsync) so a crash can never leave a torn current
// generation. Mobility, routing graphs and everything else derivable
// from the scenario is *not* stored: restore re-derives it (SGP4 +
// snapshot rebuild, seeded traffic/fault generation) and cross-checks
// FNV-1a digests recorded at save time, refusing to resume a run that
// would silently diverge.
//
// Layout of a .hyc file (all fields native byte order, see codec.hpp):
//
//   "HYCK"  u32 version         file magic + format version
//   u64 generation              monotone per-directory sequence number
//   i64 sim_time_ns  u64 epoch_index
//   u32 section_count
//   per section:  str name  u64 payload_len  payload  u32 payload_crc
//   u32 file_crc                CRC-32 of every preceding byte
//   "KCYH"                      end marker (truncation tripwire)
//
// Periodic checkpointing and resume are environment-driven:
//   HYPATIA_CKPT_DIR         directory for ckpt-<generation>.hyc files
//   HYPATIA_CKPT_INTERVAL_S  seconds between writes (0 = every epoch)
//   HYPATIA_CKPT_RESUME      1 = resume from the newest good generation
//   HYPATIA_CKPT_KEEP        generations to retain (default 3)
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "src/ckpt/codec.hpp"
#include "src/util/units.hpp"

namespace hypatia::ckpt {

inline constexpr std::uint32_t kFormatVersion = 1;

/// One named, independently CRC-guarded state blob. Section names are
/// owner-scoped ("flowsim.engine", "emu.exporter", "obs.metrics") so
/// one file can carry several subsystems' state.
struct Section {
    std::string name;
    std::vector<std::uint8_t> payload;
};

struct Checkpoint {
    std::uint64_t generation = 0;  // stamped by Manager::write
    std::uint64_t epoch_index = 0;
    TimeNs sim_time = 0;
    std::vector<Section> sections;

    void add(std::string name, std::vector<std::uint8_t> payload) {
        sections.push_back({std::move(name), std::move(payload)});
    }
    /// nullptr when the section is absent.
    const Section* find(const std::string& name) const {
        for (const auto& s : sections) {
            if (s.name == name) return &s;
        }
        return nullptr;
    }
};

/// Serializes to the on-disk layout documented above.
std::vector<std::uint8_t> encode(const Checkpoint& ckpt);
/// Parses and validates magic, version, both CRC layers and the end
/// marker; throws CorruptError on any mismatch (version skew included).
Checkpoint decode(const std::uint8_t* data, std::size_t size);
inline Checkpoint decode(const std::vector<std::uint8_t>& buf) {
    return decode(buf.data(), buf.size());
}

/// Crash-safe file write: <path>.tmp + fsync + rename(path) + fsync of
/// the containing directory. Readers either see the old file or the
/// complete new one, never a prefix. Throws std::runtime_error on I/O
/// failure.
void atomic_write_file(const std::string& path,
                       const std::vector<std::uint8_t>& bytes);

/// Reads and decodes one checkpoint file. On any error (missing,
/// unreadable, corrupt, truncated, version mismatch) returns nullopt
/// and, when `error` is non-null, stores a one-line reason.
std::optional<Checkpoint> read_checkpoint_file(const std::string& path,
                                               std::string* error = nullptr);

/// Checkpointing configuration; disabled unless `dir` is non-empty.
struct Policy {
    std::string dir;
    double interval_s = 30.0;  // 0 = every epoch boundary
    bool resume = false;
    int keep = 3;

    bool enabled() const { return !dir.empty(); }
    /// Resolves HYPATIA_CKPT_DIR / _INTERVAL_S / _RESUME / _KEEP.
    static Policy from_env();
    /// Explicitly-off policy (e.g. the exporter's inner background
    /// engine, which must never checkpoint into the pacer's directory).
    static Policy disabled() { return Policy{}; }
};

/// Drives one checkpoint directory: generation numbering, periodic
/// write scheduling, pruning, resume scanning with corrupt-file
/// fallback, the /checkpoint introspection route and the fatal-signal
/// best-effort write. Engines call due()/write() (or arm()) at each
/// epoch boundary; thread-safe against the introspection server's
/// trigger/status calls.
class Manager {
  public:
    explicit Manager(Policy policy);
    ~Manager();
    Manager(const Manager&) = delete;
    Manager& operator=(const Manager&) = delete;

    bool enabled() const { return policy_.enabled(); }
    const Policy& policy() const { return policy_; }

    /// True when the periodic interval elapsed (or interval_s == 0, or
    /// a /checkpoint?trigger=1 request is pending).
    bool due() const;
    /// Makes the next due() true regardless of the interval (the
    /// /checkpoint trigger).
    void request_now() { trigger_.store(true, std::memory_order_relaxed); }

    /// Stamps the next generation number, encodes, writes atomically,
    /// prunes old generations beyond policy().keep, updates the ckpt.*
    /// metrics and re-arms the fatal-signal buffer with this image.
    /// Returns the generation written.
    std::uint64_t write(Checkpoint ckpt);

    /// Scans the directory for the newest decodable generation,
    /// skipping (and counting in ckpt.corrupt_skipped) corrupt,
    /// truncated or version-mismatched files. nullopt when no good
    /// generation exists.
    std::optional<Checkpoint> load_latest();

    /// Serializes `ckpt` into the in-memory fatal-signal buffer without
    /// touching disk: if the process dies on SIGSEGV/SIGBUS/SIGFPE/
    /// SIGABRT before the next periodic write, the signal handler
    /// best-effort-writes this image (plain write, no rename — the CRC
    /// layers reject it on restore if torn). Engines arm at boundaries
    /// where no periodic write happens, so the recovery point is always
    /// the most recent epoch. A normal process exit flushes the armed
    /// image through the ordered shutdown hooks instead.
    void arm(Checkpoint ckpt);
    /// Drops the armed image (run completed; nothing left to save).
    void disarm();

    /// Flushes the armed image to disk with a normal atomic write — the
    /// ordered-shutdown path (obs::kShutdownFinalCheckpoint).
    void write_armed_image();
    /// The async-signal-safe best-effort write of the armed image (the
    /// obs fatal-signal hook). open/write/close only; a torn result is
    /// rejected by the CRC layers on restore.
    static void fatal_signal_hook();

    /// Last-generation status as JSON (the /checkpoint route body).
    std::string status_json() const;

    std::uint64_t last_generation() const {
        std::lock_guard<std::mutex> lock(mu_);
        return last_generation_;
    }

    /// The process-wide manager configured from the environment; owns
    /// the /checkpoint route. Intentionally leaked (fatal-signal and
    /// shutdown-hook paths may run during static destruction).
    static Manager& global();

    /// Resolves which manager (if any) an engine should use: nullopt →
    /// the environment-configured global manager, an explicit policy →
    /// a caller-local manager constructed into `local`. Returns nullptr
    /// when checkpointing is disabled either way.
    static Manager* resolve(const std::optional<Policy>& opt,
                            std::optional<Manager>& local);

  private:
    void prune_locked();

    Policy policy_;
    std::atomic<bool> trigger_{false};
    mutable std::mutex mu_;
    std::uint64_t next_generation_ = 1;
    std::uint64_t last_generation_ = 0;
    std::uint64_t last_bytes_ = 0;
    TimeNs last_sim_time_ = 0;
    std::uint64_t last_epoch_index_ = 0;
    double last_write_wall_ = 0.0;  // steady-clock seconds
    std::string last_error_;

    // Fatal-signal image: the handler reads path/bytes without locks,
    // guarded by `arming_` (skip while a mutator is mid-update; a torn
    // read would only produce a file the CRC layers reject anyway).
    std::atomic<bool> arming_{false};
    std::string armed_path_;
    std::vector<std::uint8_t> armed_bytes_;
};

// --- state helpers shared by the engine integrations -----------------

/// Serializes every registered metric (counters, gauges, histograms —
/// full bucket state) into `w`; restore overwrites current values via
/// get-or-create, so a resumed process reports the same /metrics as the
/// uninterrupted one. Serial-context only (reporting accessors).
void save_metrics_section(Writer& w);
void restore_metrics_section(Reader& r);

}  // namespace hypatia::ckpt
