// Byte-level codec for the checkpoint format (DESIGN.md §13): a
// little append-only Writer / bounds-checked Reader pair over plain
// byte vectors, the IEEE CRC-32 used to guard every section, and the
// FNV-1a 64 digest used to cross-check state that is *re-derived* on
// restore (traffic matrices, fault schedules, epoch boundary grids)
// rather than stored. Checkpoints are host-local recovery state, not
// an interchange format: multi-byte fields are written in native byte
// order and a file is only ever read back by the architecture that
// wrote it.
#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

namespace hypatia::ckpt {

/// Thrown by Reader on any malformed input: truncated buffers,
/// out-of-range counts, bad magic. The restore paths catch it and fall
/// back to the previous checkpoint generation.
class CorruptError : public std::runtime_error {
  public:
    explicit CorruptError(const std::string& what) : std::runtime_error(what) {}
};

/// IEEE 802.3 CRC-32 (the zlib polynomial), seedable for incremental
/// use: crc32(b, nb, crc32(a, na)) == crc32(a+b).
std::uint32_t crc32(const void* data, std::size_t size, std::uint32_t seed = 0);

/// FNV-1a 64-bit running digest. Used to fingerprint re-derived state:
/// the checkpoint stores the digest of e.g. the fault-event list, and
/// restore recomputes the list from the scenario and refuses to resume
/// when the fingerprints disagree (the run would silently diverge).
class Digest {
  public:
    void mix_bytes(const void* data, std::size_t size) {
        const auto* p = static_cast<const unsigned char*>(data);
        for (std::size_t i = 0; i < size; ++i) {
            state_ ^= p[i];
            state_ *= 0x100000001b3ULL;
        }
    }
    template <typename T>
    void mix(const T& v) {
        static_assert(std::is_trivially_copyable_v<T>);
        mix_bytes(&v, sizeof(v));
    }
    void mix_str(const std::string& s) {
        const std::uint64_t n = s.size();
        mix(n);
        mix_bytes(s.data(), s.size());
    }
    std::uint64_t value() const { return state_; }

  private:
    std::uint64_t state_ = 0xcbf29ce484222325ULL;
};

/// Appends fixed-width fields to a byte vector. All integral writers
/// funnel through raw() so the layout is exactly the field sizes, no
/// padding.
class Writer {
  public:
    void raw(const void* data, std::size_t size) {
        const auto* p = static_cast<const std::uint8_t*>(data);
        buf_.insert(buf_.end(), p, p + size);
    }
    void u8(std::uint8_t v) { raw(&v, sizeof(v)); }
    void u32(std::uint32_t v) { raw(&v, sizeof(v)); }
    void u64(std::uint64_t v) { raw(&v, sizeof(v)); }
    void i32(std::int32_t v) { raw(&v, sizeof(v)); }
    void i64(std::int64_t v) { raw(&v, sizeof(v)); }
    void f64(double v) { raw(&v, sizeof(v)); }
    void str(const std::string& s) {
        u64(s.size());
        raw(s.data(), s.size());
    }
    /// Length-prefixed vector of trivially copyable scalars. Only used
    /// for padding-free element types (double, int32, char, int64).
    template <typename T>
    void vec(const std::vector<T>& v) {
        static_assert(std::is_trivially_copyable_v<T>);
        u64(v.size());
        if (!v.empty()) raw(v.data(), v.size() * sizeof(T));
    }

    const std::vector<std::uint8_t>& bytes() const { return buf_; }
    std::vector<std::uint8_t> take() { return std::move(buf_); }

  private:
    std::vector<std::uint8_t> buf_;
};

/// Bounds-checked mirror of Writer. Every read validates the remaining
/// byte count first and throws CorruptError on underflow — a truncated
/// or bit-flipped section can never read out of bounds or allocate an
/// absurd vector (counts are validated against the bytes that would
/// back them before resizing).
class Reader {
  public:
    Reader(const std::uint8_t* data, std::size_t size)
        : data_(data), size_(size) {}
    explicit Reader(const std::vector<std::uint8_t>& buf)
        : Reader(buf.data(), buf.size()) {}

    void raw(void* out, std::size_t size) {
        need(size);
        std::memcpy(out, data_ + pos_, size);
        pos_ += size;
    }
    std::uint8_t u8() { return read_as<std::uint8_t>(); }
    std::uint32_t u32() { return read_as<std::uint32_t>(); }
    std::uint64_t u64() { return read_as<std::uint64_t>(); }
    std::int32_t i32() { return read_as<std::int32_t>(); }
    std::int64_t i64() { return read_as<std::int64_t>(); }
    double f64() { return read_as<double>(); }
    std::string str() {
        const std::uint64_t n = u64();
        need(n);
        std::string s(reinterpret_cast<const char*>(data_ + pos_),
                      static_cast<std::size_t>(n));
        pos_ += static_cast<std::size_t>(n);
        return s;
    }
    template <typename T>
    void vec(std::vector<T>& out) {
        static_assert(std::is_trivially_copyable_v<T>);
        const std::uint64_t n = u64();
        if (n > remaining() / sizeof(T)) {
            throw CorruptError("ckpt: vector length exceeds buffer");
        }
        out.resize(static_cast<std::size_t>(n));
        if (n != 0) raw(out.data(), static_cast<std::size_t>(n) * sizeof(T));
    }

    std::size_t remaining() const { return size_ - pos_; }
    bool at_end() const { return pos_ == size_; }

  private:
    template <typename T>
    T read_as() {
        T v;
        raw(&v, sizeof(v));
        return v;
    }
    void need(std::uint64_t n) const {
        if (n > size_ - pos_) {
            throw CorruptError("ckpt: truncated buffer (need " +
                               std::to_string(n) + " bytes, have " +
                               std::to_string(size_ - pos_) + ")");
        }
    }

    const std::uint8_t* data_;
    std::size_t size_;
    std::size_t pos_ = 0;
};

}  // namespace hypatia::ckpt
