#include "src/ckpt/codec.hpp"

#include <array>

namespace hypatia::ckpt {

namespace {

/// The CRC-32 lookup table, generated once (reflected form of the
/// 0x04C11DB7 polynomial — the same table zlib/ethernet use).
std::array<std::uint32_t, 256> make_crc_table() {
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k) {
            c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
        }
        table[i] = c;
    }
    return table;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t size, std::uint32_t seed) {
    static const std::array<std::uint32_t, 256> table = make_crc_table();
    std::uint32_t c = seed ^ 0xFFFFFFFFu;
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) {
        c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
    }
    return c ^ 0xFFFFFFFFu;
}

}  // namespace hypatia::ckpt
