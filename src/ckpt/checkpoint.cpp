#include "src/ckpt/checkpoint.hpp"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <utility>

#include "src/obs/introspect.hpp"
#include "src/obs/observability.hpp"
#include "src/obs/recorder.hpp"

namespace hypatia::ckpt {

namespace {

constexpr char kMagic[4] = {'H', 'Y', 'C', 'K'};
constexpr char kEndMarker[4] = {'K', 'C', 'Y', 'H'};

double now_s() {
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

std::string generation_file_name(std::uint64_t generation) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "ckpt-%010llu.hyc",
                  static_cast<unsigned long long>(generation));
    return buf;
}

/// Checkpoint files in `dir`, newest generation first. Non-matching
/// names (temp files included) are ignored.
std::vector<std::pair<std::uint64_t, std::string>> list_generations(
    const std::string& dir) {
    std::vector<std::pair<std::uint64_t, std::string>> out;
    DIR* d = ::opendir(dir.c_str());
    if (d == nullptr) return out;
    while (dirent* entry = ::readdir(d)) {
        const std::string name = entry->d_name;
        if (name.size() <= 9 || name.compare(0, 5, "ckpt-") != 0 ||
            name.compare(name.size() - 4, 4, ".hyc") != 0) {
            continue;
        }
        const std::string digits = name.substr(5, name.size() - 9);
        char* end = nullptr;
        const unsigned long long gen = std::strtoull(digits.c_str(), &end, 10);
        if (end == digits.c_str() || *end != '\0') continue;
        out.emplace_back(static_cast<std::uint64_t>(gen), name);
    }
    ::closedir(d);
    std::sort(out.begin(), out.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    return out;
}

/// The manager whose armed image the fatal-signal hook / final-flush
/// shutdown hook would write. One at a time: the engine driving the run
/// owns it; arm() claims, disarm() releases.
std::atomic<Manager*> g_armed_manager{nullptr};

void flush_armed_at_shutdown();

/// One-time wiring of the fatal-signal hook (runs before the recorder
/// dump in the shared handler) and the ordered final-checkpoint
/// shutdown hook.
void ensure_process_hooks() {
    static std::once_flag once;
    std::call_once(once, [] {
        obs::set_fatal_signal_hook(&Manager::fatal_signal_hook);
        obs::install_fatal_signal_handlers();
        obs::register_shutdown_hook(obs::kShutdownFinalCheckpoint,
                                    &flush_armed_at_shutdown);
    });
}

}  // namespace

std::vector<std::uint8_t> encode(const Checkpoint& ckpt) {
    Writer w;
    w.raw(kMagic, sizeof(kMagic));
    w.u32(kFormatVersion);
    w.u64(ckpt.generation);
    w.i64(ckpt.sim_time);
    w.u64(ckpt.epoch_index);
    w.u32(static_cast<std::uint32_t>(ckpt.sections.size()));
    for (const auto& section : ckpt.sections) {
        w.str(section.name);
        w.u64(section.payload.size());
        w.raw(section.payload.data(), section.payload.size());
        w.u32(crc32(section.payload.data(), section.payload.size()));
    }
    w.u32(crc32(w.bytes().data(), w.bytes().size()));
    w.raw(kEndMarker, sizeof(kEndMarker));
    return w.take();
}

Checkpoint decode(const std::uint8_t* data, std::size_t size) {
    // Header (magic + version) and trailer (file CRC + end marker)
    // validate first: any truncation or bit flip anywhere in the file is
    // rejected before section parsing even starts.
    constexpr std::size_t kMinSize = 4 + 4 + 8 + 8 + 8 + 4 + 4 + 4;
    if (size < kMinSize) throw CorruptError("ckpt: file too short");
    if (std::memcmp(data, kMagic, sizeof(kMagic)) != 0) {
        throw CorruptError("ckpt: bad magic");
    }
    std::uint32_t version = 0;
    std::memcpy(&version, data + 4, sizeof(version));
    if (version != kFormatVersion) {
        throw CorruptError("ckpt: unsupported format version " +
                           std::to_string(version) + " (want " +
                           std::to_string(kFormatVersion) + ")");
    }
    if (std::memcmp(data + size - 4, kEndMarker, sizeof(kEndMarker)) != 0) {
        throw CorruptError("ckpt: missing end marker (truncated?)");
    }
    std::uint32_t stored_crc = 0;
    std::memcpy(&stored_crc, data + size - 8, sizeof(stored_crc));
    if (crc32(data, size - 8) != stored_crc) {
        throw CorruptError("ckpt: file CRC mismatch");
    }

    Reader r(data + 8, size - 8 - 8);
    Checkpoint ckpt;
    ckpt.generation = r.u64();
    ckpt.sim_time = r.i64();
    ckpt.epoch_index = r.u64();
    const std::uint32_t section_count = r.u32();
    ckpt.sections.reserve(std::min<std::size_t>(section_count, 64));
    for (std::uint32_t i = 0; i < section_count; ++i) {
        Section section;
        section.name = r.str();
        r.vec(section.payload);
        const std::uint32_t section_crc = r.u32();
        if (crc32(section.payload.data(), section.payload.size()) != section_crc) {
            throw CorruptError("ckpt: section '" + section.name +
                               "' CRC mismatch");
        }
        ckpt.sections.push_back(std::move(section));
    }
    if (!r.at_end()) throw CorruptError("ckpt: trailing bytes after sections");
    return ckpt;
}

void atomic_write_file(const std::string& path,
                       const std::vector<std::uint8_t>& bytes) {
    const std::string tmp = path + ".tmp";
    const int fd = ::open(tmp.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
    if (fd < 0) throw std::runtime_error("ckpt: cannot open " + tmp);
    std::size_t off = 0;
    while (off < bytes.size()) {
        const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
        if (n < 0) {
            if (errno == EINTR) continue;
            ::close(fd);
            ::unlink(tmp.c_str());
            throw std::runtime_error("ckpt: write failed for " + tmp);
        }
        off += static_cast<std::size_t>(n);
    }
    ::fsync(fd);
    ::close(fd);
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
        ::unlink(tmp.c_str());
        throw std::runtime_error("ckpt: rename to " + path + " failed");
    }
    // fsync the directory so the rename itself is durable.
    const std::size_t slash = path.find_last_of('/');
    const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
    const int dfd = ::open(dir.c_str(), O_RDONLY);
    if (dfd >= 0) {
        ::fsync(dfd);
        ::close(dfd);
    }
}

std::optional<Checkpoint> read_checkpoint_file(const std::string& path,
                                               std::string* error) {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
        if (error != nullptr) *error = "cannot open " + path;
        return std::nullopt;
    }
    struct stat st;
    if (::fstat(fd, &st) != 0 || st.st_size < 0) {
        ::close(fd);
        if (error != nullptr) *error = "cannot stat " + path;
        return std::nullopt;
    }
    std::vector<std::uint8_t> bytes(static_cast<std::size_t>(st.st_size));
    std::size_t off = 0;
    while (off < bytes.size()) {
        const ssize_t n = ::read(fd, bytes.data() + off, bytes.size() - off);
        if (n < 0 && errno == EINTR) continue;
        if (n <= 0) break;
        off += static_cast<std::size_t>(n);
    }
    ::close(fd);
    if (off != bytes.size()) {
        if (error != nullptr) *error = "short read on " + path;
        return std::nullopt;
    }
    try {
        return decode(bytes);
    } catch (const CorruptError& e) {
        if (error != nullptr) *error = e.what();
        return std::nullopt;
    }
}

Policy Policy::from_env() {
    Policy p;
    if (const char* env = std::getenv("HYPATIA_CKPT_DIR")) p.dir = env;
    if (const char* env = std::getenv("HYPATIA_CKPT_INTERVAL_S")) {
        char* end = nullptr;
        const double v = std::strtod(env, &end);
        if (end != env && *end == '\0' && v >= 0.0) {
            p.interval_s = v;
        } else if (*env != '\0') {
            std::fprintf(stderr,
                         "hypatia: ignoring malformed HYPATIA_CKPT_INTERVAL_S=%s\n",
                         env);
        }
    }
    if (const char* env = std::getenv("HYPATIA_CKPT_RESUME")) {
        const std::string v = env;
        p.resume = v == "1" || v == "true" || v == "on";
    }
    if (const char* env = std::getenv("HYPATIA_CKPT_KEEP")) {
        char* end = nullptr;
        const long v = std::strtol(env, &end, 10);
        if (end != env && *end == '\0' && v > 0) p.keep = static_cast<int>(v);
    }
    return p;
}

Manager::Manager(Policy policy) : policy_(std::move(policy)) {
    last_write_wall_ = now_s();
    if (!policy_.enabled()) return;
    ::mkdir(policy_.dir.c_str(), 0755);  // EEXIST is fine
    // Continue the generation sequence past whatever the directory
    // already holds, so a fresh (non-resuming) run never overwrites a
    // previous run's recovery points before pruning decides to.
    const auto existing = list_generations(policy_.dir);
    if (!existing.empty()) next_generation_ = existing.front().first + 1;
    ensure_process_hooks();
}

Manager::~Manager() { disarm(); }

bool Manager::due() const {
    if (!enabled()) return false;
    if (trigger_.load(std::memory_order_relaxed)) return true;
    if (policy_.interval_s <= 0.0) return true;
    std::lock_guard<std::mutex> lock(mu_);
    return now_s() - last_write_wall_ >= policy_.interval_s;
}

std::uint64_t Manager::write(Checkpoint ckpt) {
    const double t0 = now_s();
    std::lock_guard<std::mutex> lock(mu_);
    ckpt.generation = next_generation_++;
    const std::vector<std::uint8_t> bytes = encode(ckpt);
    const std::string path =
        policy_.dir + "/" + generation_file_name(ckpt.generation);
    atomic_write_file(path, bytes);

    last_generation_ = ckpt.generation;
    last_bytes_ = bytes.size();
    last_sim_time_ = ckpt.sim_time;
    last_epoch_index_ = ckpt.epoch_index;
    last_write_wall_ = now_s();
    last_error_.clear();
    trigger_.store(false, std::memory_order_relaxed);
    // This image is durable; the fatal-signal buffer is stale now.
    arming_.store(true, std::memory_order_release);
    armed_bytes_.clear();
    armed_path_.clear();
    arming_.store(false, std::memory_order_release);

    auto& m = obs::metrics();
    m.counter("ckpt.generations_written").inc();
    m.counter("ckpt.bytes_written").inc(bytes.size());
    m.histogram("ckpt.write_us")
        .record(static_cast<std::uint64_t>((last_write_wall_ - t0) * 1e6));
    prune_locked();
    return ckpt.generation;
}

void Manager::prune_locked() {
    const auto files = list_generations(policy_.dir);
    for (std::size_t i = static_cast<std::size_t>(std::max(policy_.keep, 1));
         i < files.size(); ++i) {
        ::unlink((policy_.dir + "/" + files[i].second).c_str());
    }
}

std::optional<Checkpoint> Manager::load_latest() {
    if (!enabled()) return std::nullopt;
    auto& m = obs::metrics();
    for (const auto& [gen, name] : list_generations(policy_.dir)) {
        std::string error;
        std::optional<Checkpoint> ckpt =
            read_checkpoint_file(policy_.dir + "/" + name, &error);
        if (ckpt.has_value()) {
            std::lock_guard<std::mutex> lock(mu_);
            next_generation_ = std::max(next_generation_, gen + 1);
            m.counter("ckpt.restores").inc();
            return ckpt;
        }
        // Corrupt / truncated / version-mismatched: skip and fall back
        // to the previous generation.
        std::fprintf(stderr, "hypatia: skipping checkpoint %s/%s (%s)\n",
                     policy_.dir.c_str(), name.c_str(), error.c_str());
        m.counter("ckpt.corrupt_skipped").inc();
        std::lock_guard<std::mutex> lock(mu_);
        last_error_ = error;
    }
    return std::nullopt;
}

void Manager::arm(Checkpoint ckpt) {
    if (!enabled()) return;
    std::lock_guard<std::mutex> lock(mu_);
    ckpt.generation = next_generation_;
    // `arming_` fences the signal handler out while path/bytes mutate;
    // a handler firing in the (unfenced) steady state reads a complete
    // image.
    arming_.store(true, std::memory_order_release);
    armed_path_ = policy_.dir + "/" + generation_file_name(ckpt.generation);
    armed_bytes_ = encode(ckpt);
    last_sim_time_ = ckpt.sim_time;
    last_epoch_index_ = ckpt.epoch_index;
    arming_.store(false, std::memory_order_release);
    g_armed_manager.store(this, std::memory_order_release);
}

void Manager::disarm() {
    Manager* expected = this;
    g_armed_manager.compare_exchange_strong(expected, nullptr,
                                            std::memory_order_acq_rel);
    std::lock_guard<std::mutex> lock(mu_);
    arming_.store(true, std::memory_order_release);
    armed_bytes_.clear();
    armed_path_.clear();
    arming_.store(false, std::memory_order_release);
}

void Manager::write_armed_image() {
    std::lock_guard<std::mutex> lock(mu_);
    if (armed_bytes_.empty()) return;
    try {
        atomic_write_file(armed_path_, armed_bytes_);
        last_generation_ = next_generation_++;
        last_bytes_ = armed_bytes_.size();
        obs::metrics().counter("ckpt.generations_written").inc();
        obs::metrics().counter("ckpt.bytes_written").inc(armed_bytes_.size());
        prune_locked();
    } catch (const std::exception& e) {
        std::fprintf(stderr, "hypatia: final checkpoint failed: %s\n", e.what());
    }
    armed_bytes_.clear();
    armed_path_.clear();
}

void Manager::fatal_signal_hook() {
    // Async-signal context: open/write/close only — no locks, no
    // allocation, no stdio. A torn or stale image is harmless: both CRC
    // layers reject it on restore and the scan falls back to the
    // previous durable generation.
    Manager* m = g_armed_manager.load(std::memory_order_acquire);
    if (m == nullptr || m->arming_.load(std::memory_order_acquire)) return;
    if (m->armed_bytes_.empty()) return;
    const int fd =
        ::open(m->armed_path_.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
    if (fd < 0) return;
    std::size_t off = 0;
    while (off < m->armed_bytes_.size()) {
        const ssize_t n = ::write(fd, m->armed_bytes_.data() + off,
                                  m->armed_bytes_.size() - off);
        if (n <= 0) break;
        off += static_cast<std::size_t>(n);
    }
    ::close(fd);
}

namespace {

void flush_armed_at_shutdown() {
    if (Manager* m = g_armed_manager.load(std::memory_order_acquire)) {
        m->write_armed_image();
    }
}

}  // namespace

std::string Manager::status_json() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::string json = "{";
    json += "\"enabled\":" + std::string(enabled() ? "true" : "false");
    json += ",\"dir\":\"" + policy_.dir + "\"";
    json += ",\"interval_s\":" + std::to_string(policy_.interval_s);
    json += ",\"resume\":" + std::string(policy_.resume ? "true" : "false");
    json += ",\"keep\":" + std::to_string(policy_.keep);
    json += ",\"last_generation\":" + std::to_string(last_generation_);
    json += ",\"last_bytes\":" + std::to_string(last_bytes_);
    json += ",\"last_sim_time_ns\":" + std::to_string(last_sim_time_);
    json += ",\"last_epoch_index\":" + std::to_string(last_epoch_index_);
    json += ",\"trigger_pending\":" +
            std::string(trigger_.load(std::memory_order_relaxed) ? "true"
                                                                 : "false");
    json += ",\"last_error\":\"" + last_error_ + "\"";
    json += "}";
    return json;
}

Manager& Manager::global() {
    // Intentionally leaked: the fatal-signal hook and the shutdown-hook
    // chain may consult it during static destruction.
    static Manager* manager = [] {
        auto* m = new Manager(Policy::from_env());
        obs::IntrospectionServer::register_handler(
            "/checkpoint", [m](const std::string& query) {
                if (obs::query_param(query, "trigger") == "1") m->request_now();
                obs::IntrospectionServer::Response resp;
                resp.content_type = "application/json";
                resp.body = m->status_json() + "\n";
                return resp;
            });
        return m;
    }();
    return *manager;
}

Manager* Manager::resolve(const std::optional<Policy>& opt,
                          std::optional<Manager>& local) {
    if (!opt.has_value()) {
        Manager& g = global();
        return g.enabled() ? &g : nullptr;
    }
    if (!opt->enabled()) return nullptr;
    local.emplace(*opt);
    return &*local;
}

void save_metrics_section(Writer& w) {
    const obs::MetricsRegistry& registry = obs::metrics();
    const auto& counters = registry.counters();
    const auto& gauges = registry.gauges();
    const auto& histograms = registry.histograms();
    w.u64(counters.size());
    for (const auto& [name, c] : counters) {
        w.str(name);
        w.u64(c.value());
    }
    w.u64(gauges.size());
    for (const auto& [name, g] : gauges) {
        w.str(name);
        w.f64(g.value());
    }
    w.u64(histograms.size());
    for (const auto& [name, h] : histograms) {
        const obs::Histogram::State s = h.state();
        w.str(name);
        w.vec(s.buckets);
        w.u64(s.count);
        w.u64(s.sum);
        w.u64(s.min);
        w.u64(s.max);
    }
}

void restore_metrics_section(Reader& r) {
    obs::MetricsRegistry& registry = obs::metrics();
    const std::uint64_t num_counters = r.u64();
    for (std::uint64_t i = 0; i < num_counters; ++i) {
        const std::string name = r.str();
        const std::uint64_t value = r.u64();
        obs::Counter& c = registry.counter(name);
        c.reset();
        c.inc(value);
    }
    const std::uint64_t num_gauges = r.u64();
    for (std::uint64_t i = 0; i < num_gauges; ++i) {
        const std::string name = r.str();
        registry.gauge(name).set(r.f64());
    }
    const std::uint64_t num_histograms = r.u64();
    for (std::uint64_t i = 0; i < num_histograms; ++i) {
        const std::string name = r.str();
        obs::Histogram::State s;
        r.vec(s.buckets);
        s.count = r.u64();
        s.sum = r.u64();
        s.min = r.u64();
        s.max = r.u64();
        registry.histogram(name).restore(s);
    }
}

}  // namespace hypatia::ckpt
