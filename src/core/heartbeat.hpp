// Periodic stderr progress line for long runs. Opt-in: attach_heartbeat()
// is a no-op unless called, and callers typically gate it on
// heartbeat_enabled_from_env() (HYPATIA_PROGRESS=1, optionally
// HYPATIA_PROGRESS_INTERVAL_MS to change the default 1000 ms cadence).
//
// Each line reports sim time vs. horizon, events executed, event rate
// since the previous beat, and a wall-clock ETA extrapolated from the
// sim-time rate:
//   [hypatia] t=12.0s/200.0s (6.0%) events=1523412 rate=2.1 Mev/s eta=31s
#pragma once

#include "src/sim/simulator.hpp"
#include "src/util/units.hpp"

namespace hypatia::core {

/// True when the HYPATIA_PROGRESS environment variable is set to a value
/// other than "" or "0".
bool heartbeat_enabled_from_env();

/// Interval from HYPATIA_PROGRESS_INTERVAL_MS, default 1000 ms.
TimeNs heartbeat_interval_from_env();

/// Schedules a self-rescheduling event on `sim` that prints a progress
/// line to stderr every `interval` of simulation time until `horizon`.
/// Must be called before the run; the heartbeat dies with the horizon.
void attach_heartbeat(sim::Simulator& sim, TimeNs horizon,
                      TimeNs interval = kNsPerSec);

}  // namespace hypatia::core
