#include "src/core/scenario.hpp"

#include "src/topology/cities.hpp"

namespace hypatia::core {

Scenario Scenario::paper_default(const std::string& shell_name) {
    Scenario s;
    s.shell = topo::shell_by_name(shell_name);
    s.ground_stations = topo::top100_cities();
    return s;
}

}  // namespace hypatia::core
