// LeoNetwork: the top of the public API. Builds a packet-simulated LEO
// network from a Scenario — satellites with SGP4 mobility, +Grid ISLs,
// GSL devices, live link delays — and drives the time-stepped forwarding
// state updates (paper section 3.1/3.2). Applications (ping, UDP, TCP)
// attach to ground-station nodes via sim::Network.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <set>

#include "src/core/scenario.hpp"
#include "src/fault/fault.hpp"
#include "src/routing/forwarding.hpp"
#include "src/routing/graph.hpp"
#include "src/routing/snapshot_refresh.hpp"
#include "src/sim/network.hpp"
#include "src/topology/mobility.hpp"

namespace hypatia::core {

class LeoNetwork {
  public:
    explicit LeoNetwork(const Scenario& scenario);

    // --- component access ----------------------------------------------
    sim::Simulator& simulator() { return sim_; }
    sim::Network& network() { return net_; }
    const Scenario& scenario() const { return scenario_; }
    const topo::Constellation& constellation() const { return constellation_; }
    topo::SatelliteMobility& mobility() { return mobility_; }
    const std::vector<topo::Isl>& isls() const { return isls_; }

    int num_satellites() const { return constellation_.num_satellites(); }
    int num_ground_stations() const {
        return static_cast<int>(scenario_.ground_stations.size());
    }
    /// Simulator/graph node id of ground station `gs_index`.
    int gs_node(int gs_index) const { return num_satellites() + gs_index; }

    /// Constellation (orbital) time for a simulation time (constant when
    /// the scenario is frozen).
    TimeNs orbit_time(TimeNs sim_time) const {
        return scenario_.freeze ? scenario_.start_offset
                                : scenario_.start_offset + sim_time;
    }

    // --- forwarding ------------------------------------------------------
    /// Declares that traffic will target ground station `gs_index`;
    /// forwarding state is computed for declared destinations only
    /// (Hypatia does the same to keep the precomputation tractable).
    void add_destination(int gs_index);

    /// Runs the simulation for `duration`, recomputing and installing
    /// forwarding state every scenario().fstate_interval.
    void run(TimeNs duration);

    /// Called after each forwarding-state installation with the sim time.
    std::function<void(TimeNs)> on_fstate_update;

    /// Current routing view (valid during/after run()).
    const route::ForwardingState& current_fstate() const { return fstate_; }

    /// Current shortest path (node ids, GS endpoints included) between two
    /// ground stations; empty if disconnected.
    std::vector<int> current_path(int src_gs, int dst_gs) const;
    /// Current shortest-path distance in km (+inf when disconnected).
    double current_distance_km(int src_gs, int dst_gs) const;

    /// Device carrying traffic from node `from` to neighbour `to`
    /// (the ISL device if one exists, otherwise `from`'s GSL device).
    sim::NetDevice* device_between(int from, int to);

    /// Devices along the current path from src_gs to dst_gs (forward
    /// direction), empty when disconnected.
    std::vector<sim::NetDevice*> current_path_devices(int src_gs, int dst_gs);

  private:
    void install_fstate(TimeNs sim_time);
    TimeNs propagation_delay(int from, int to, TimeNs sim_time) const;
    Vec3 node_position(int node, TimeNs orbit_time) const;

    Scenario scenario_;
    topo::Constellation constellation_;
    topo::SatelliteMobility mobility_;
    std::vector<topo::Isl> isls_;
    sim::Simulator sim_;
    sim::Network net_;
    std::set<int> destination_gs_;
    std::optional<topo::WeatherModel> weather_;
    // Resolved fault schedule (scenario.faults, else HYPATIA_FAULTS);
    // absent when neither yields outages. Routing excludes failed
    // elements at each fstate install; the per-device link_up probe
    // drops packets crossing a hop that is dead at transmit/delivery
    // time (DESIGN.md section 8).
    std::optional<fault::FaultSchedule> faults_;
    route::SnapshotMode snapshot_mode_ = route::snapshot_mode_from_env();
    std::optional<route::SnapshotRefresher> refresher_;  // lazy, refresh mode
    route::ForwardingState fstate_;
    route::DestinationTree scratch_tree_;  // recycled Dijkstra output buffer
    std::uint64_t fstate_installs_ = 0;
    TimeNs last_install_sim_t_ = 0;  // previous install (fault-event window)
};

}  // namespace hypatia::core
