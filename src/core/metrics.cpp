#include "src/core/metrics.hpp"

#include <algorithm>
#include <stdexcept>

namespace hypatia::core {

UtilizationSampler::UtilizationSampler(LeoNetwork& leo, TimeNs bin_width, TimeNs horizon)
    : leo_(leo), bin_width_(bin_width),
      num_bins_(static_cast<std::size_t>(horizon / bin_width) + 1) {
    const auto& devices = leo_.network().devices();
    bytes_per_bin_.assign(devices.size(), std::vector<std::uint64_t>(num_bins_, 0));
    last_counter_.assign(devices.size(), 0);

    auto self = std::make_shared<std::function<void()>>();
    *self = [this, self]() {
        sample();
        if (current_bin_ < num_bins_) {
            leo_.simulator().schedule_in(bin_width_, *self);
        }
    };
    leo_.simulator().schedule_at(bin_width_, *self);
}

void UtilizationSampler::sample() {
    const auto& devices = leo_.network().devices();
    if (current_bin_ >= num_bins_) return;
    for (std::size_t d = 0; d < devices.size(); ++d) {
        const std::uint64_t counter = devices[d]->tx_bytes();
        bytes_per_bin_[d][current_bin_] = counter - last_counter_[d];
        last_counter_[d] = counter;
    }
    ++current_bin_;
}

double UtilizationSampler::utilization(std::size_t dev, std::size_t bin) const {
    const double sent_bits = static_cast<double>(bytes_per_bin_[dev][bin]) * 8.0;
    const double capacity_bits =
        leo_.network().devices()[dev]->rate_bps() * ns_to_seconds(bin_width_);
    return std::min(1.0, sent_bits / capacity_bits);
}

std::size_t UtilizationSampler::device_index(const sim::NetDevice* dev) const {
    const auto& devices = leo_.network().devices();
    for (std::size_t d = 0; d < devices.size(); ++d) {
        if (devices[d].get() == dev) return d;
    }
    throw std::out_of_range("utilization sampler: unknown device");
}

UnusedBandwidthTracker::UnusedBandwidthTracker(LeoNetwork& leo,
                                               UtilizationSampler& sampler, int src_gs,
                                               int dst_gs)
    : leo_(leo), sampler_(sampler), src_gs_(src_gs), dst_gs_(dst_gs) {
    path_devices_per_bin_.resize(sampler.num_bins());
    auto self = std::make_shared<std::function<void()>>();
    auto capture = [this](std::size_t bin) {
        if (bin >= path_devices_per_bin_.size()) return;
        for (sim::NetDevice* dev : leo_.current_path_devices(src_gs_, dst_gs_)) {
            path_devices_per_bin_[bin].push_back(sampler_.device_index(dev));
        }
    };
    *self = [this, self, capture]() {
        const auto bin =
            static_cast<std::size_t>(leo_.simulator().now() / sampler_.bin_width());
        capture(bin);
        if (bin + 1 < path_devices_per_bin_.size()) {
            leo_.simulator().schedule_in(sampler_.bin_width(), *self);
        }
    };
    // Capture just after each bin starts (fstate for t=0 installs at t=0,
    // so a 1 ns offset sees the fresh state).
    leo_.simulator().schedule_at(1, *self);
}

std::vector<double> UnusedBandwidthTracker::unused_bps() const {
    std::vector<double> out;
    out.reserve(path_devices_per_bin_.size());
    for (std::size_t bin = 0; bin < path_devices_per_bin_.size(); ++bin) {
        const auto& devices = path_devices_per_bin_[bin];
        if (devices.empty()) {
            out.push_back(-1.0);  // unreachable during this bin
            continue;
        }
        double max_used_bps = 0.0;
        double capacity_bps = 0.0;
        for (const std::size_t d : devices) {
            const double used =
                static_cast<double>(sampler_.bytes(d, bin)) * 8.0 /
                ns_to_seconds(sampler_.bin_width());
            if (used >= max_used_bps) {
                max_used_bps = used;
                capacity_bps = leo_.network().devices()[d]->rate_bps();
            }
        }
        out.push_back(std::max(0.0, capacity_bps - max_used_bps));
    }
    return out;
}

}  // namespace hypatia::core
