#include "src/core/heartbeat.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>

namespace hypatia::core {

namespace {

std::int64_t wall_now_ns() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

}  // namespace

bool heartbeat_enabled_from_env() {
    const char* v = std::getenv("HYPATIA_PROGRESS");
    return v != nullptr && v[0] != '\0' && std::strcmp(v, "0") != 0;
}

TimeNs heartbeat_interval_from_env() {
    const char* v = std::getenv("HYPATIA_PROGRESS_INTERVAL_MS");
    if (v == nullptr) return kNsPerSec;
    const long ms = std::strtol(v, nullptr, 10);
    if (ms <= 0) return kNsPerSec;
    return static_cast<TimeNs>(ms) * kNsPerMs;
}

void attach_heartbeat(sim::Simulator& sim, TimeNs horizon, TimeNs interval) {
    if (interval <= 0 || horizon <= 0) return;
    struct State {
        std::int64_t wall_start_ns = 0;
        std::int64_t wall_prev_ns = 0;
        std::uint64_t events_prev = 0;
    };
    auto state = std::make_shared<State>();
    state->wall_start_ns = wall_now_ns();
    state->wall_prev_ns = state->wall_start_ns;

    auto beat = std::make_shared<std::function<void()>>();
    *beat = [&sim, state, beat, horizon, interval]() {
        const std::int64_t wall = wall_now_ns();
        const std::uint64_t events = sim.events_executed();
        const double beat_wall_s =
            static_cast<double>(wall - state->wall_prev_ns) / 1e9;
        const double rate_mevs =
            beat_wall_s > 0.0
                ? static_cast<double>(events - state->events_prev) / beat_wall_s / 1e6
                : 0.0;
        const TimeNs t = sim.now();
        const double frac =
            static_cast<double>(t) / static_cast<double>(horizon);
        // ETA extrapolates total wall time from the sim-time fraction done.
        const double elapsed_s =
            static_cast<double>(wall - state->wall_start_ns) / 1e9;
        const double eta_s = frac > 0.0 ? elapsed_s * (1.0 - frac) / frac : 0.0;
        std::fprintf(stderr,
                     "[hypatia] t=%.1fs/%.1fs (%.1f%%) events=%llu "
                     "rate=%.2f Mev/s eta=%.0fs\n",
                     ns_to_seconds(t), ns_to_seconds(horizon), frac * 100.0,
                     static_cast<unsigned long long>(events), rate_mevs, eta_s);
        state->wall_prev_ns = wall;
        state->events_prev = events;
        const TimeNs next = t + interval;
        if (next <= horizon) sim.schedule_at(next, *beat);
    };
    const TimeNs first = interval <= horizon ? interval : horizon;
    sim.schedule_at(first, *beat);
}

}  // namespace hypatia::core
