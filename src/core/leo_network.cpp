#include "src/core/leo_network.hpp"

#include <cmath>
#include <utility>

#include "src/core/heartbeat.hpp"
#include "src/obs/observability.hpp"
#include "src/obs/recorder.hpp"
#include "src/orbit/coords.hpp"
#include "src/routing/shortest_path.hpp"

namespace hypatia::core {

LeoNetwork::LeoNetwork(const Scenario& scenario)
    : scenario_(scenario),
      constellation_(scenario.shell, topo::default_epoch()),
      mobility_(constellation_),
      isls_(topo::build_isls(constellation_, scenario.isl_pattern)),
      net_(sim_) {
    if (scenario.weather.has_value()) weather_.emplace(*scenario.weather);
    {
        std::optional<fault::FaultSpec> spec = scenario_.faults;
        if (!spec.has_value()) spec = fault::spec_from_env();
        if (spec.has_value()) {
            faults_.emplace(fault::FaultSchedule::from_spec(
                *spec, constellation_.num_satellites(), isls_,
                scenario_.ground_stations));
            if (faults_->empty()) faults_.reset();
        }
    }
    // Publish the scenario's shape so every run manifest self-describes.
    auto& m = obs::metrics();
    m.gauge("scenario.num_satellites").set(constellation_.num_satellites());
    m.gauge("scenario.num_ground_stations")
        .set(static_cast<std::int64_t>(scenario_.ground_stations.size()));
    m.gauge("scenario.num_isls").set(static_cast<std::int64_t>(isls_.size()));
    m.gauge("scenario.isl_rate_bps")
        .set(static_cast<std::int64_t>(scenario_.isl_rate_bps));
    m.gauge("scenario.gsl_rate_bps")
        .set(static_cast<std::int64_t>(scenario_.gsl_rate_bps));
    m.gauge("scenario.fstate_interval_ms").set(scenario_.fstate_interval / kNsPerMs);
    const int num_sats = constellation_.num_satellites();
    const int num_gs = num_ground_stations();
    net_.create_nodes(num_sats + num_gs);

    const auto delay = [this](int from, int to, TimeNs t) {
        return propagation_delay(from, to, t);
    };
    // Device-level fault probe: the schedule lives in orbit time, the
    // simulator in sim time. Routing avoids dead hops at each install,
    // but packets forwarded on stale state (or in flight when a link
    // dies) cross the probe and are dropped.
    sim::LinkUpFn link_up = nullptr;
    if (faults_.has_value()) {
        link_up = [this](int from, int to, TimeNs t) {
            return faults_->link_up(from, to, orbit_time(t));
        };
    }

    for (const auto& isl : isls_) {
        net_.add_isl(isl.sat_a, isl.sat_b, scenario_.isl_rate_bps,
                     scenario_.isl_queue_packets, delay, link_up);
    }
    // One GSL device per satellite and per ground station (paper 3.1).
    for (int s = 0; s < num_sats; ++s) {
        net_.add_gsl(s, scenario_.gsl_rate_bps, scenario_.gsl_queue_packets, delay,
                     link_up);
    }
    for (int g = 0; g < num_gs; ++g) {
        net_.add_gsl(gs_node(g), scenario_.gsl_rate_bps, scenario_.gsl_queue_packets,
                     delay, link_up);
    }
}

Vec3 LeoNetwork::node_position(int node, TimeNs orbit_time) const {
    if (node < num_satellites()) return mobility_.position_ecef(node, orbit_time);
    return scenario_.ground_stations[static_cast<std::size_t>(node - num_satellites())]
        .ecef();
}

TimeNs LeoNetwork::propagation_delay(int from, int to, TimeNs sim_time) const {
    const TimeNs t = orbit_time(sim_time);
    const double km = node_position(from, t).distance_to(node_position(to, t));
    return seconds_to_ns(km / orbit::kSpeedOfLightKmPerS);
}

void LeoNetwork::add_destination(int gs_index) { destination_gs_.insert(gs_index); }

void LeoNetwork::install_fstate(TimeNs sim_time) {
    HYPATIA_PROFILE_SCOPE("routing.fstate_install");
    static obs::Counter* const installs_metric =
        &obs::metrics().counter("route.fstate_installs");
    static obs::Counter* const changed_metric =
        &obs::metrics().counter("route.fstate_entries_changed");
    route::SnapshotOptions opts;
    opts.relay_gs_indices = scenario_.relay_gs_indices;
    opts.include_isls = scenario_.isl_pattern != topo::IslPattern::kNone;
    opts.gs_nearest_satellite_only = scenario_.gs_nearest_satellite_only;
    if (weather_.has_value()) {
        opts.gsl_range_factor = [this](int gs_index, TimeNs t) {
            return weather_->gsl_range_factor(gs_index, t);
        };
    }
    if (faults_.has_value()) opts.faults = &*faults_;
    // Refresh mode (the default) keeps one graph alive across installs
    // and delta-patches it; HYPATIA_SNAPSHOT_MODE=rebuild reconstructs it
    // every interval (the legacy reference path). Identical outputs.
    std::optional<route::Graph> rebuilt;
    const route::Graph* graph;
    if (snapshot_mode_ == route::SnapshotMode::kRefresh) {
        if (!refresher_.has_value()) {
            refresher_.emplace(mobility_, isls_, scenario_.ground_stations,
                               std::move(opts));
        }
        graph = &refresher_->refresh(orbit_time(sim_time));
    } else {
        rebuilt.emplace(route::build_snapshot(
            mobility_, isls_, scenario_.ground_stations, orbit_time(sim_time), opts));
        graph = &*rebuilt;
    }

    std::uint64_t entries_changed = 0;
    for (int dst_gs : destination_gs_) {
        const int dst_node = gs_node(dst_gs);
        // Compute into the recycled scratch buffer, diff, then swap it
        // into the stored state — no per-install tree allocations.
        route::thread_dijkstra_workspace().run(*graph, dst_node, scratch_tree_);
        // Install only entries that changed since the previous state
        // (Hypatia's fstate deltas); the first installation writes all.
        const route::DestinationTree* prev = fstate_.tree(dst_node);
        for (int node = 0; node < graph->num_nodes(); ++node) {
            const int nh = scratch_tree_.next_hop[static_cast<std::size_t>(node)];
            if (prev != nullptr &&
                prev->next_hop[static_cast<std::size_t>(node)] == nh) {
                continue;
            }
            net_.node(node).set_next_hop(dst_node, nh);
            ++entries_changed;
        }
        std::swap(fstate_.mutable_tree(dst_node), scratch_tree_);
    }
    // Flight recorder: the install itself plus every fault transition
    // crossed since the previous install (half-open window in orbit
    // time, stamped back in sim time). The first install looks one
    // interval back so outages active from t = 0 are on record.
    if (faults_.has_value() && !scenario_.freeze) {
        const TimeNs prev = fstate_installs_ == 0
                                ? sim_time - scenario_.fstate_interval
                                : last_install_sim_t_;
        fault::record_transitions(*faults_, orbit_time(prev), orbit_time(sim_time),
                                  -scenario_.start_offset);
    }
    last_install_sim_t_ = sim_time;
    obs::recorder().record(obs::EventKind::kFstateInstall, sim_time,
                           static_cast<std::int32_t>(entries_changed));
    ++fstate_installs_;
    installs_metric->inc();
    changed_metric->inc(entries_changed);
    auto& tracer = obs::tracer();
    if (tracer.enabled(obs::TraceCategory::kRouting)) {
        tracer.emit(obs::make_record(sim_time, obs::TraceCategory::kRouting,
                                     "route.fstate_install", /*node=*/-1,
                                     /*peer=*/-1, /*flow_id=*/0,
                                     static_cast<std::int64_t>(entries_changed)));
    }
    if (on_fstate_update) on_fstate_update(sim_time);
}

void LeoNetwork::run(TimeNs duration) {
    if (heartbeat_enabled_from_env()) {
        attach_heartbeat(sim_, duration, heartbeat_interval_from_env());
    }
    // Install state at t = 0 and then at every interval boundary. Events
    // are scheduled one at a time so the event queue stays small.
    const TimeNs interval = scenario_.fstate_interval;
    auto self = std::make_shared<std::function<void()>>();
    *self = [this, interval, duration, self]() {
        install_fstate(sim_.now());
        const TimeNs next = sim_.now() + interval;
        if (next <= duration) sim_.schedule_at(next, *self);
    };
    sim_.schedule_at(0, *self);
    sim_.run_until(duration);
}

std::vector<int> LeoNetwork::current_path(int src_gs, int dst_gs) const {
    const auto* tree = fstate_.tree(gs_node(dst_gs));
    if (tree == nullptr) return {};
    return route::extract_path(*tree, gs_node(src_gs));
}

double LeoNetwork::current_distance_km(int src_gs, int dst_gs) const {
    return fstate_.distance_km(gs_node(src_gs), gs_node(dst_gs));
}

sim::NetDevice* LeoNetwork::device_between(int from, int to) {
    sim::Node& node = net_.node(from);
    if (sim::NetDevice* isl = node.isl_device_to(to)) return isl;
    return node.gsl_device();
}

std::vector<sim::NetDevice*> LeoNetwork::current_path_devices(int src_gs, int dst_gs) {
    std::vector<sim::NetDevice*> devices;
    const auto path = current_path(src_gs, dst_gs);
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        devices.push_back(device_between(path[i], path[i + 1]));
    }
    return devices;
}

}  // namespace hypatia::core
