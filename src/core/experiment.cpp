#include "src/core/experiment.hpp"

#include <chrono>
#include <cstdlib>
#include <stdexcept>

#include "src/obs/manifest.hpp"
#include "src/obs/observability.hpp"

namespace hypatia::core {

std::vector<std::unique_ptr<sim::TcpFlow>> attach_tcp_flows(
    LeoNetwork& leo, const std::vector<route::GsPair>& pairs,
    const std::string& cc_name, const sim::TcpConfig& base_config, TimeNs stagger) {
    std::vector<std::unique_ptr<sim::TcpFlow>> flows;
    flows.reserve(pairs.size());
    std::uint64_t flow_id = base_config.flow_id;
    for (const auto& pair : pairs) {
        leo.add_destination(pair.src_gs);  // reverse path for ACKs
        leo.add_destination(pair.dst_gs);
        sim::TcpConfig cfg = base_config;
        cfg.flow_id = flow_id++;
        cfg.src_node = leo.gs_node(pair.src_gs);
        cfg.dst_node = leo.gs_node(pair.dst_gs);
        // Start strictly after the t = 0 forwarding-state installation
        // (same-time events run in scheduling order, and flows are
        // created before LeoNetwork::run schedules the installer), and
        // stagger flows to avoid lock-step slow starts.
        cfg.start = std::max<TimeNs>(cfg.start, kNsPerUs) +
                    static_cast<TimeNs>(flows.size()) * stagger;
        auto cc = cc_name == "vegas"     ? sim::make_vegas()
                  : cc_name == "bbr"     ? sim::make_bbr()
                  : cc_name == "newreno"
                      ? sim::make_newreno()
                      : throw std::invalid_argument("unknown cc: " + cc_name);
        flows.push_back(std::make_unique<sim::TcpFlow>(leo.network(), cfg, std::move(cc)));
    }
    return flows;
}

std::vector<std::unique_ptr<sim::UdpFlow>> attach_udp_flows(
    LeoNetwork& leo, const std::vector<route::GsPair>& pairs, TimeNs stop,
    int packet_size_bytes) {
    std::vector<std::unique_ptr<sim::UdpFlow>> flows;
    flows.reserve(pairs.size());
    std::uint64_t flow_id = 1;
    for (const auto& pair : pairs) {
        leo.add_destination(pair.dst_gs);
        sim::UdpFlow::Config cfg;
        cfg.start = kNsPerUs;  // after the t = 0 forwarding installation
        cfg.flow_id = flow_id++;
        cfg.src_node = leo.gs_node(pair.src_gs);
        cfg.dst_node = leo.gs_node(pair.dst_gs);
        cfg.rate_bps = leo.scenario().gsl_rate_bps;  // paced at line rate
        cfg.packet_size_bytes = packet_size_bytes;
        cfg.stop = stop;
        flows.push_back(std::make_unique<sim::UdpFlow>(leo.network(), cfg));
    }
    return flows;
}

WorkloadResult run_permutation_workload(const PermutationWorkloadConfig& config) {
    Scenario scenario = config.scenario;
    if (config.num_ground_stations <
        static_cast<int>(scenario.ground_stations.size())) {
        scenario.ground_stations.erase(
            scenario.ground_stations.begin() + config.num_ground_stations,
            scenario.ground_stations.end());
    }
    LeoNetwork leo(scenario);
    const auto pairs = route::random_permutation_pairs(
        static_cast<int>(scenario.ground_stations.size()), config.seed);

    std::vector<std::unique_ptr<sim::TcpFlow>> tcp_flows;
    std::vector<std::unique_ptr<sim::UdpFlow>> udp_flows;
    if (config.tcp) {
        // Short scalability runs: keep the stagger small so every flow
        // contributes for nearly the whole window.
        tcp_flows = attach_tcp_flows(leo, pairs, "newreno", {}, 1 * kNsPerMs);
    } else {
        udp_flows = attach_udp_flows(leo, pairs, config.duration);
    }

    const auto wall_start = std::chrono::steady_clock::now();
    leo.run(config.duration);
    const auto wall_end = std::chrono::steady_clock::now();

    WorkloadResult result;
    result.virtual_seconds = ns_to_seconds(config.duration);
    result.wall_seconds =
        std::chrono::duration<double>(wall_end - wall_start).count();
    result.slowdown = result.wall_seconds / result.virtual_seconds;
    std::uint64_t payload_bytes = 0;
    for (const auto& f : tcp_flows) payload_bytes += f->delivered_bytes();
    for (const auto& f : udp_flows) payload_bytes += f->received_payload_bytes();
    result.goodput_bps =
        static_cast<double>(payload_bytes) * 8.0 / result.virtual_seconds;
    result.events = leo.simulator().events_executed();

    std::string manifest_path = config.manifest_path;
    if (manifest_path.empty()) {
        if (const char* env = std::getenv("HYPATIA_MANIFEST")) manifest_path = env;
    }
    if (!manifest_path.empty()) {
        obs::RunManifest manifest;
        manifest.set_name("permutation_workload");
        manifest.stamp_environment();
        manifest.set_param("transport", config.tcp ? "tcp" : "udp");
        manifest.set_param("duration_s", result.virtual_seconds);
        manifest.set_param("seed", static_cast<double>(config.seed));
        manifest.set_param("num_ground_stations",
                           static_cast<double>(scenario.ground_stations.size()));
        manifest.set_param("wall_seconds", result.wall_seconds);
        manifest.set_param("slowdown", result.slowdown);
        manifest.set_param("goodput_bps", result.goodput_bps);
        manifest.capture(obs::profiler(), obs::metrics());
        manifest.write(manifest_path);
    }
    return result;
}

}  // namespace hypatia::core
