// Metric collectors for the constellation-wide experiments:
//  * UtilizationSampler — per-device transmitted bytes per time bin, the
//    input for the paper's Figs 10 (unused bandwidth), 14 and 15 (link
//    utilization maps).
//  * UnusedBandwidthTracker — the paper's Fig 10 metric: a GS pair's path
//    capacity minus the utilization of its most loaded on-path link.
#pragma once

#include <cstdint>
#include <vector>

#include "src/core/leo_network.hpp"

namespace hypatia::core {

/// Snapshots every device's tx_bytes counter at a fixed interval.
class UtilizationSampler {
  public:
    UtilizationSampler(LeoNetwork& leo, TimeNs bin_width, TimeNs horizon);

    TimeNs bin_width() const { return bin_width_; }
    std::size_t num_bins() const { return num_bins_; }
    std::size_t num_devices() const { return bytes_per_bin_.size(); }

    /// Bytes transmitted by device `dev` during bin `bin`.
    std::uint64_t bytes(std::size_t dev, std::size_t bin) const {
        return bytes_per_bin_[dev][bin];
    }
    /// Utilization of `dev` during `bin` in [0, 1].
    double utilization(std::size_t dev, std::size_t bin) const;

    /// Index of a device within the sampler (== index in network().devices()).
    std::size_t device_index(const sim::NetDevice* dev) const;

  private:
    void sample();

    LeoNetwork& leo_;
    TimeNs bin_width_;
    std::size_t num_bins_;
    std::size_t current_bin_ = 0;
    std::vector<std::vector<std::uint64_t>> bytes_per_bin_;  // [device][bin]
    std::vector<std::uint64_t> last_counter_;
};

/// Tracks, per bin, the unused bandwidth of one GS pair's end-end path:
/// link capacity minus the busiest on-path device's throughput (paper
/// Fig 10). The path is looked up at every bin boundary from the live
/// forwarding state; an unreachable bin is marked with -1.
class UnusedBandwidthTracker {
  public:
    UnusedBandwidthTracker(LeoNetwork& leo, UtilizationSampler& sampler, int src_gs,
                           int dst_gs);

    /// Call after the simulation: unused bandwidth (bit/s) per bin;
    /// -1 marks bins where the pair was unreachable.
    std::vector<double> unused_bps() const;

  private:
    LeoNetwork& leo_;
    UtilizationSampler& sampler_;
    int src_gs_;
    int dst_gs_;
    // Device indices of the path during each bin (captured at bin start).
    std::vector<std::vector<std::size_t>> path_devices_per_bin_;
};

}  // namespace hypatia::core
