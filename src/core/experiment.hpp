// Experiment helpers: the paper's workloads packaged as functions.
//  * attach_tcp_flows / attach_udp_flows — long-running flows between GS
//    pairs (the random-permutation traffic matrix of sections 3.4, 5.4).
//  * run_permutation_workload — the Fig 2 scalability experiment: run the
//    permutation workload at a line rate, report wall-clock slowdown and
//    network-wide goodput.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/core/leo_network.hpp"
#include "src/routing/path_analysis.hpp"
#include "src/sim/tcp_socket.hpp"
#include "src/sim/udp_app.hpp"

namespace hypatia::core {

/// Creates one long-running TCP flow per pair on `leo` (and registers the
/// destinations for forwarding state). `cc_name` is "newreno", "vegas" or
/// "bbr". Flow starts are staggered by `stagger` each to avoid lock-step
/// slow starts (short workloads may want a smaller value).
std::vector<std::unique_ptr<sim::TcpFlow>> attach_tcp_flows(
    LeoNetwork& leo, const std::vector<route::GsPair>& pairs,
    const std::string& cc_name, const sim::TcpConfig& base_config = {},
    TimeNs stagger = 10 * kNsPerMs);

/// Creates one paced UDP flow per pair sending at the GSL line rate.
std::vector<std::unique_ptr<sim::UdpFlow>> attach_udp_flows(
    LeoNetwork& leo, const std::vector<route::GsPair>& pairs, TimeNs stop,
    int packet_size_bytes = 1500);

struct WorkloadResult {
    double virtual_seconds = 0.0;
    double wall_seconds = 0.0;
    double slowdown = 0.0;      // wall / virtual (paper Fig 2 y-axis)
    double goodput_bps = 0.0;   // network-wide payload goodput (x-axis)
    std::uint64_t events = 0;   // simulator events executed
};

struct PermutationWorkloadConfig {
    Scenario scenario;
    unsigned seed = 42;          // traffic matrix permutation seed
    bool tcp = true;             // TCP (true) or paced UDP (false)
    TimeNs duration = 10 * kNsPerSec;
    int num_ground_stations = 100;  // use the first N of the GS list
    /// When non-empty, write a run_manifest.json (scenario params, phase
    /// breakdown, metrics snapshot) to this path after the run. The
    /// HYPATIA_MANIFEST environment variable overrides an empty value.
    std::string manifest_path;
};

/// Runs the paper's scalability workload and measures slowdown.
WorkloadResult run_permutation_workload(const PermutationWorkloadConfig& config);

}  // namespace hypatia::core
