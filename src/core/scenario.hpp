// Scenario: the full description of one Hypatia experiment — which
// constellation, which ground stations, link rates, queue sizes, the
// forwarding-state recomputation interval, and where in the
// constellation's orbital timeline the simulation window starts.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "src/fault/fault.hpp"
#include "src/orbit/ground_station.hpp"
#include "src/topology/constellation.hpp"
#include "src/topology/isl.hpp"
#include "src/topology/weather.hpp"
#include "src/util/units.hpp"

namespace hypatia::core {

struct Scenario {
    topo::ShellParams shell;
    std::vector<orbit::GroundStation> ground_stations;
    topo::IslPattern isl_pattern = topo::IslPattern::kPlusGrid;

    /// Link parameters (paper default: every link 10 Mbit/s, 100-packet
    /// drop-tail queues — section 4).
    double isl_rate_bps = 10e6;
    double gsl_rate_bps = 10e6;
    std::size_t isl_queue_packets = 100;
    std::size_t gsl_queue_packets = 100;

    /// Forwarding state recomputation granularity (paper default 100 ms).
    TimeNs fstate_interval = 100 * kNsPerMs;

    /// Constellation time at simulation t = 0. The paper's qualitative
    /// events (e.g. the St. Petersburg disconnection) occur at specific
    /// points of the orbital timeline; benches pick windows that exhibit
    /// them.
    TimeNs start_offset = 0;

    /// Ground stations allowed to relay (bent-pipe experiments).
    std::vector<int> relay_gs_indices;

    /// Ground stations connect only to their nearest satellite (paper
    /// section 3.1(c)'s user-terminal mode) instead of all connectable.
    bool gs_nearest_satellite_only = false;

    /// Optional weather model: rain cells shrink GSL cones (section 7).
    std::optional<topo::WeatherModel::Config> weather;

    /// Optional fault injection (DESIGN.md §8): a seeded failure model
    /// or a CSV scenario file. When unset, consumers fall back to
    /// HYPATIA_FAULTS; an empty resolved schedule behaves exactly like
    /// no schedule at all.
    std::optional<fault::FaultSpec> faults;

    /// Freeze the network at its start_offset state: satellite positions
    /// (and hence link delays, visibility, and routes) stop evolving.
    /// This is the paper's Fig 10 static baseline ("the satellite network
    /// frozen at its t = 0 position").
    bool freeze = false;

    /// Builds the paper's default scenario: the given Table-1 shell with
    /// the world's 100 most populous cities as ground stations.
    static Scenario paper_default(const std::string& shell_name);
};

}  // namespace hypatia::core
