#include "src/viz/ground_view.hpp"

#include <sstream>

namespace hypatia::viz {

std::vector<GroundViewFrame> ground_view_series(const orbit::GroundStation& gs,
                                                const topo::SatelliteMobility& mobility,
                                                TimeNs t0, TimeNs t1, TimeNs step) {
    std::vector<GroundViewFrame> frames;
    for (TimeNs t = t0; t < t1; t += step) {
        GroundViewFrame f;
        f.t = t;
        f.sky = topo::sky_view(gs, mobility, t);
        f.connectable = false;
        for (const auto& e : f.sky) {
            if (e.connectable) {
                f.connectable = true;
                break;
            }
        }
        frames.push_back(std::move(f));
    }
    return frames;
}

std::string ground_view_to_csv(const std::vector<GroundViewFrame>& frames) {
    std::ostringstream os;
    os << "t_s,sat_id,azimuth_deg,elevation_deg,range_km,connectable\n";
    os.precision(6);
    for (const auto& f : frames) {
        for (const auto& e : f.sky) {
            os << ns_to_seconds(f.t) << "," << e.sat_id << "," << e.azimuth_deg << ","
               << e.elevation_deg << "," << e.range_km << "," << (e.connectable ? 1 : 0)
               << "\n";
        }
    }
    return os.str();
}

std::string ascii_sky_chart(const GroundViewFrame& frame, int width, int height) {
    std::vector<std::string> grid(static_cast<std::size_t>(height),
                                  std::string(static_cast<std::size_t>(width), '.'));
    for (const auto& e : frame.sky) {
        const int col = std::min(width - 1, static_cast<int>(e.azimuth_deg / 360.0 * width));
        const int row =
            std::min(height - 1, static_cast<int>((90.0 - e.elevation_deg) / 90.0 * height));
        grid[static_cast<std::size_t>(row)][static_cast<std::size_t>(col)] =
            e.connectable ? 'O' : 'x';
    }
    std::ostringstream os;
    os << "elevation 90 deg (top) to 0 deg (bottom); azimuth 0..360 deg left to right\n";
    for (const auto& row : grid) os << row << "\n";
    return os.str();
}

}  // namespace hypatia::viz
