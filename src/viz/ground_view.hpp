// Ground-observer view — the paper's Fig 12: the sky as seen from a
// ground station, azimuth on x (0 = North, 90 = East), elevation on y,
// with satellites below the minimum connectable criterion shaded.
#pragma once

#include <string>
#include <vector>

#include "src/orbit/ground_station.hpp"
#include "src/topology/visibility.hpp"

namespace hypatia::viz {

struct GroundViewFrame {
    TimeNs t;
    std::vector<topo::SkyEntry> sky;  // everything above the horizon
    bool connectable;                 // any satellite connectable?
};

/// Samples the observer's sky over a window.
std::vector<GroundViewFrame> ground_view_series(const orbit::GroundStation& gs,
                                                const topo::SatelliteMobility& mobility,
                                                TimeNs t0, TimeNs t1, TimeNs step);

/// CSV rows: t_s, sat_id, azimuth_deg, elevation_deg, range_km,
/// connectable. For gnuplot-style reproduction of Fig 12.
std::string ground_view_to_csv(const std::vector<GroundViewFrame>& frames);

/// An ASCII sky chart of one frame (azimuth columns, elevation rows;
/// 'O' = connectable satellite, 'x' = visible but below the minimum).
std::string ascii_sky_chart(const GroundViewFrame& frame, int width = 72,
                            int height = 18);

}  // namespace hypatia::viz
