#include "src/viz/path_export.hpp"

#include <sstream>

#include "src/orbit/coords.hpp"

namespace hypatia::viz {

std::vector<PathNode> resolve_path(const std::vector<int>& path,
                                   const topo::SatelliteMobility& mobility,
                                   const std::vector<orbit::GroundStation>& gses,
                                   TimeNs t) {
    std::vector<PathNode> out;
    out.reserve(path.size());
    const int num_sats = mobility.num_satellites();
    for (int node : path) {
        PathNode pn;
        pn.node = node;
        if (node >= num_sats) {
            const auto& gs = gses[static_cast<std::size_t>(node - num_sats)];
            pn.is_gs = true;
            pn.label = gs.name();
            pn.latitude_deg = gs.geodetic().latitude_deg;
            pn.longitude_deg = gs.geodetic().longitude_deg;
            pn.altitude_km = gs.geodetic().altitude_km;
        } else {
            const auto geo = orbit::ecef_to_geodetic(mobility.position_ecef(node, t));
            pn.is_gs = false;
            pn.label = "sat-" + std::to_string(node);
            pn.latitude_deg = geo.latitude_deg;
            pn.longitude_deg = geo.longitude_deg;
            pn.altitude_km = geo.altitude_km;
        }
        out.push_back(std::move(pn));
    }
    return out;
}

std::string path_to_json(const std::vector<PathNode>& nodes, TimeNs t, double rtt_ms) {
    std::ostringstream os;
    os.precision(6);
    os << "{\"t_s\":" << ns_to_seconds(t) << ",\"rtt_ms\":" << rtt_ms << ",\"nodes\":[";
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        const auto& n = nodes[i];
        if (i > 0) os << ",";
        os << "{\"label\":\"" << n.label << "\",\"is_gs\":" << (n.is_gs ? "true" : "false")
           << ",\"lat\":" << n.latitude_deg << ",\"lon\":" << n.longitude_deg
           << ",\"alt_km\":" << n.altitude_km << "}";
    }
    os << "]}";
    return os.str();
}

std::vector<std::vector<PairSeriesPoint>> sweep_pair_series(
    const topo::SatelliteMobility& mobility, const std::vector<topo::Isl>& isls,
    const std::vector<orbit::GroundStation>& ground_stations,
    const std::vector<route::GsPair>& pairs, const PairSeriesOptions& options) {
    route::SweepOptions sweep = options.sweep;
    sweep.step_hint = options.step;
    route::PairSweeper sweeper(mobility, isls, ground_stations, pairs, sweep);

    std::vector<std::vector<PairSeriesPoint>> series(pairs.size());
    const std::size_t steps =
        options.step > 0 && options.t_end > options.t_start
            ? static_cast<std::size_t>(
                  (options.t_end - options.t_start + options.step - 1) /
                  options.step)
            : 0;
    for (auto& s : series) s.reserve(steps);

    for (TimeNs t = options.t_start; t < options.t_end; t += options.step) {
        const TimeNs orbit_t =
            options.freeze ? options.start_offset : options.start_offset + t;
        const auto& samples = sweeper.step(orbit_t);
        for (std::size_t pi = 0; pi < pairs.size(); ++pi) {
            PairSeriesPoint point;
            point.t = t;
            point.rtt_s = samples[pi].rtt_s;
            point.path = samples[pi].path;
            series[pi].push_back(std::move(point));
        }
    }
    return series;
}

std::string path_to_string(const std::vector<PathNode>& nodes) {
    std::ostringstream os;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        if (i > 0) os << " -> ";
        os << nodes[i].label;
    }
    if (nodes.size() >= 2) {
        os << " (" << nodes.size() - 2 << " satellite hops)";
    }
    return os.str();
}

}  // namespace hypatia::viz
