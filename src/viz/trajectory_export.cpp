#include "src/viz/trajectory_export.hpp"

#include <sstream>

#include "src/orbit/coords.hpp"

namespace hypatia::viz {

std::vector<std::vector<TrackPoint>> sample_tracks(const topo::SatelliteMobility& mobility,
                                                   TimeNs t0, TimeNs t1, TimeNs step) {
    std::vector<std::vector<TrackPoint>> tracks(
        static_cast<std::size_t>(mobility.num_satellites()));
    for (int sat = 0; sat < mobility.num_satellites(); ++sat) {
        auto& track = tracks[static_cast<std::size_t>(sat)];
        for (TimeNs t = t0; t < t1; t += step) {
            const auto geo = orbit::ecef_to_geodetic(mobility.position_ecef(sat, t));
            track.push_back({t, geo.latitude_deg, geo.longitude_deg, geo.altitude_km});
        }
    }
    return tracks;
}

std::string tracks_to_json(const std::string& constellation_name,
                           const std::vector<std::vector<TrackPoint>>& tracks) {
    std::ostringstream os;
    os.precision(6);
    os << "{\"constellation\":\"" << constellation_name << "\",\"satellites\":[";
    for (std::size_t sat = 0; sat < tracks.size(); ++sat) {
        if (sat > 0) os << ",";
        os << "{\"id\":" << sat << ",\"positions\":[";
        for (std::size_t i = 0; i < tracks[sat].size(); ++i) {
            const auto& p = tracks[sat][i];
            if (i > 0) os << ",";
            os << "[" << ns_to_seconds(p.t) << "," << p.latitude_deg << ","
               << p.longitude_deg << "," << p.altitude_km << "]";
        }
        os << "]}";
    }
    os << "]}";
    return os.str();
}

std::vector<TrackPoint> snapshot(const topo::SatelliteMobility& mobility, TimeNs t) {
    std::vector<TrackPoint> out;
    out.reserve(static_cast<std::size_t>(mobility.num_satellites()));
    for (int sat = 0; sat < mobility.num_satellites(); ++sat) {
        const auto geo = orbit::ecef_to_geodetic(mobility.position_ecef(sat, t));
        out.push_back({t, geo.latitude_deg, geo.longitude_deg, geo.altitude_km});
    }
    return out;
}

std::vector<double> latitude_density(const topo::SatelliteMobility& mobility, TimeNs t) {
    std::vector<double> bands(18, 0.0);
    const auto snap = snapshot(mobility, t);
    for (const auto& p : snap) {
        int band = static_cast<int>((p.latitude_deg + 90.0) / 10.0);
        if (band < 0) band = 0;
        if (band > 17) band = 17;
        bands[static_cast<std::size_t>(band)] += 1.0;
    }
    for (auto& b : bands) b /= static_cast<double>(snap.size());
    return bands;
}

}  // namespace hypatia::viz
