// Link-utilization export — the paper's Figs 14/15: per-ISL utilization
// with satellite coordinates so a renderer can draw thick/warm lines for
// congested links. Also identifies the network-wide bottleneck ISLs.
#pragma once

#include <string>
#include <vector>

#include "src/core/leo_network.hpp"
#include "src/core/metrics.hpp"

namespace hypatia::viz {

struct IslUtilization {
    int sat_a = 0;
    int sat_b = 0;
    double lat_a = 0.0, lon_a = 0.0;
    double lat_b = 0.0, lon_b = 0.0;
    double utilization = 0.0;  // max of both directions, in [0, 1]
};

/// Utilization of every ISL during time bin `bin` (positions at the bin's
/// start). ISLs with zero traffic are excluded (as in Fig 15).
std::vector<IslUtilization> isl_utilization_map(core::LeoNetwork& leo,
                                                const core::UtilizationSampler& sampler,
                                                std::size_t bin);

/// Top `count` most-utilized ISLs (the constellation's bottlenecks).
std::vector<IslUtilization> top_bottlenecks(std::vector<IslUtilization> map,
                                            std::size_t count);

/// CSV rows: sat_a,sat_b,lat_a,lon_a,lat_b,lon_b,utilization.
std::string utilization_to_csv(const std::vector<IslUtilization>& map);

}  // namespace hypatia::viz
