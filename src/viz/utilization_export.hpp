// Link-utilization export — the paper's Figs 14/15: per-ISL utilization
// with satellite coordinates so a renderer can draw thick/warm lines for
// congested links. Also identifies the network-wide bottleneck ISLs.
#pragma once

#include <string>
#include <vector>

#include "src/core/leo_network.hpp"
#include "src/core/metrics.hpp"
#include "src/flowsim/engine.hpp"

namespace hypatia::viz {

struct IslUtilization {
    int sat_a = 0;
    int sat_b = 0;
    double lat_a = 0.0, lon_a = 0.0;
    double lat_b = 0.0, lon_b = 0.0;
    double utilization = 0.0;  // max of both directions, in [0, 1]
};

/// Utilization of every ISL during time bin `bin` (positions at the bin's
/// start). ISLs with zero traffic are excluded (as in Fig 15).
std::vector<IslUtilization> isl_utilization_map(core::LeoNetwork& leo,
                                                const core::UtilizationSampler& sampler,
                                                std::size_t bin);

/// Same map from a flow-level run: per-ISL max-min allocated load during
/// flowsim epoch `epoch` (positions at the epoch's start). The engine
/// must have run with EngineOptions::record_link_utilization. Feeds the
/// identical CSV/bottleneck pipeline as the packet-level sampler, so the
/// Fig 14/15 tooling consumes either engine's output unchanged.
std::vector<IslUtilization> flow_isl_utilization_map(const flowsim::Engine& engine,
                                                     std::size_t epoch);

/// Top `count` most-utilized ISLs (the constellation's bottlenecks).
std::vector<IslUtilization> top_bottlenecks(std::vector<IslUtilization> map,
                                            std::size_t count);

/// CSV rows: sat_a,sat_b,lat_a,lon_a,lat_b,lon_b,utilization.
std::string utilization_to_csv(const std::vector<IslUtilization>& map);

}  // namespace hypatia::viz
