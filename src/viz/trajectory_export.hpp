// Trajectory export — the data behind the paper's Fig 11 (constellation
// snapshots) and the online Cesium visualization. Emits CZML-like JSON
// (one document per export) with per-satellite position series, plus a
// coverage-by-latitude summary used by the Fig 11 bench.
#pragma once

#include <string>
#include <vector>

#include "src/topology/mobility.hpp"
#include "src/util/units.hpp"

namespace hypatia::viz {

/// One satellite's ground-track samples.
struct TrackPoint {
    TimeNs t;
    double latitude_deg;
    double longitude_deg;
    double altitude_km;
};

/// Samples every satellite's geodetic position over [t0, t1).
std::vector<std::vector<TrackPoint>> sample_tracks(const topo::SatelliteMobility& mobility,
                                                   TimeNs t0, TimeNs t1, TimeNs step);

/// CZML-like JSON document with all satellite tracks ("id", "positions":
/// [[t_s, lat, lon, alt_km], ...]). Loadable by the Cesium glue the
/// original project ships, or by any JSON consumer.
std::string tracks_to_json(const std::string& constellation_name,
                           const std::vector<std::vector<TrackPoint>>& tracks);

/// Instantaneous snapshot: one (lat, lon) per satellite (Fig 11's dots).
std::vector<TrackPoint> snapshot(const topo::SatelliteMobility& mobility, TimeNs t);

/// Fraction of satellites within each 10-degree latitude band at time t;
/// index 0 = [-90, -80), ..., 17 = [80, 90]. Quantifies Fig 11's visual:
/// polar (Telesat) vs low-inclination (Kuiper/Starlink) density.
std::vector<double> latitude_density(const topo::SatelliteMobility& mobility, TimeNs t);

}  // namespace hypatia::viz
