// End-end path export — the paper's Fig 13 (shortest path changing over
// time) and Figs 16/17 (ISL vs bent-pipe paths): node sequences with
// geodetic coordinates, as JSON and human-readable text.
#pragma once

#include <string>
#include <vector>

#include "src/orbit/ground_station.hpp"
#include "src/routing/pair_sweep.hpp"
#include "src/topology/mobility.hpp"

namespace hypatia::viz {

struct PathNode {
    int node = 0;       // graph node id
    bool is_gs = false;
    std::string label;  // GS name or "sat-<id>"
    double latitude_deg = 0.0;
    double longitude_deg = 0.0;
    double altitude_km = 0.0;
};

/// Resolves a node-id path into labelled geodetic waypoints at orbital
/// time `t`. GS node ids start at mobility.num_satellites().
std::vector<PathNode> resolve_path(const std::vector<int>& path,
                                   const topo::SatelliteMobility& mobility,
                                   const std::vector<orbit::GroundStation>& gses,
                                   TimeNs t);

/// JSON: {"t": ..., "rtt_ms": ..., "nodes": [{...}]}.
std::string path_to_json(const std::vector<PathNode>& nodes, TimeNs t, double rtt_ms);

/// One-line rendering: "Paris -> sat-42 -> sat-77 -> Luanda (9 hops)".
std::string path_to_string(const std::vector<PathNode>& nodes);

/// One pair's state at one sweep step: the step's (sim-)time, RTT
/// (kInfDistance when unreachable) and the full node path including
/// both GS endpoint node ids (empty when unreachable).
struct PairSeriesPoint {
    TimeNs t = 0;
    double rtt_s = route::kInfDistance;
    std::vector<int> path;

    bool reachable() const { return rtt_s != route::kInfDistance; }
};

struct PairSeriesOptions {
    TimeNs t_start = 0;
    TimeNs t_end = 200 * kNsPerSec;
    TimeNs step = 100 * kNsPerMs;
    /// Orbit time of step t is start_offset + t (or the constant
    /// start_offset when freeze is set — a frozen scenario observes one
    /// topology). Points always carry the sweep-grid t.
    TimeNs start_offset = 0;
    bool freeze = false;
    route::SweepOptions sweep;
};

/// Sweeps `pairs` over the [t_start, t_end) x step grid and returns one
/// series per pair (parallel to `pairs`). This wraps route::PairSweeper
/// — the single sweep implementation shared by the Fig 13 exporters and
/// the emulation schedule exporter (src/emu/), so their time series
/// cannot drift apart. Deterministic: byte-identical inputs at any
/// HYPATIA_THREADS / HYPATIA_SNAPSHOT_MODE setting.
std::vector<std::vector<PairSeriesPoint>> sweep_pair_series(
    const topo::SatelliteMobility& mobility, const std::vector<topo::Isl>& isls,
    const std::vector<orbit::GroundStation>& ground_stations,
    const std::vector<route::GsPair>& pairs, const PairSeriesOptions& options);

}  // namespace hypatia::viz
