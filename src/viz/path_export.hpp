// End-end path export — the paper's Fig 13 (shortest path changing over
// time) and Figs 16/17 (ISL vs bent-pipe paths): node sequences with
// geodetic coordinates, as JSON and human-readable text.
#pragma once

#include <string>
#include <vector>

#include "src/orbit/ground_station.hpp"
#include "src/topology/mobility.hpp"

namespace hypatia::viz {

struct PathNode {
    int node = 0;       // graph node id
    bool is_gs = false;
    std::string label;  // GS name or "sat-<id>"
    double latitude_deg = 0.0;
    double longitude_deg = 0.0;
    double altitude_km = 0.0;
};

/// Resolves a node-id path into labelled geodetic waypoints at orbital
/// time `t`. GS node ids start at mobility.num_satellites().
std::vector<PathNode> resolve_path(const std::vector<int>& path,
                                   const topo::SatelliteMobility& mobility,
                                   const std::vector<orbit::GroundStation>& gses,
                                   TimeNs t);

/// JSON: {"t": ..., "rtt_ms": ..., "nodes": [{...}]}.
std::string path_to_json(const std::vector<PathNode>& nodes, TimeNs t, double rtt_ms);

/// One-line rendering: "Paris -> sat-42 -> sat-77 -> Luanda (9 hops)".
std::string path_to_string(const std::vector<PathNode>& nodes);

}  // namespace hypatia::viz
