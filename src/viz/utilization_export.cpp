#include "src/viz/utilization_export.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_map>

#include "src/orbit/coords.hpp"

namespace hypatia::viz {

std::vector<IslUtilization> isl_utilization_map(core::LeoNetwork& leo,
                                                const core::UtilizationSampler& sampler,
                                                std::size_t bin) {
    // Aggregate the two directions of each ISL.
    std::unordered_map<std::uint64_t, double> max_util;
    const auto& devices = leo.network().devices();
    for (std::size_t d = 0; d < devices.size(); ++d) {
        const auto& dev = *devices[d];
        if (dev.is_gsl()) continue;
        const int a = std::min(dev.owner_node(), dev.fixed_peer());
        const int b = std::max(dev.owner_node(), dev.fixed_peer());
        const std::uint64_t key =
            (static_cast<std::uint64_t>(a) << 32) | static_cast<std::uint32_t>(b);
        const double u = sampler.utilization(d, bin);
        auto [it, inserted] = max_util.try_emplace(key, u);
        if (!inserted) it->second = std::max(it->second, u);
    }

    const TimeNs t = leo.orbit_time(static_cast<TimeNs>(bin) * sampler.bin_width());
    std::vector<IslUtilization> out;
    out.reserve(max_util.size());
    for (const auto& [key, util] : max_util) {
        if (util <= 0.0) continue;  // Fig 15 excludes traffic-free ISLs
        IslUtilization iu;
        iu.sat_a = static_cast<int>(key >> 32);
        iu.sat_b = static_cast<int>(key & 0xffffffffu);
        const auto geo_a =
            orbit::ecef_to_geodetic(leo.mobility().position_ecef(iu.sat_a, t));
        const auto geo_b =
            orbit::ecef_to_geodetic(leo.mobility().position_ecef(iu.sat_b, t));
        iu.lat_a = geo_a.latitude_deg;
        iu.lon_a = geo_a.longitude_deg;
        iu.lat_b = geo_b.latitude_deg;
        iu.lon_b = geo_b.longitude_deg;
        iu.utilization = util;
        out.push_back(iu);
    }
    return out;
}

std::vector<IslUtilization> flow_isl_utilization_map(const flowsim::Engine& engine,
                                                     std::size_t epoch) {
    const TimeNs t =
        engine.orbit_time(static_cast<TimeNs>(epoch) * engine.epoch_interval());
    const auto& isls = engine.isls();
    std::vector<IslUtilization> out;
    for (std::size_t i = 0; i < isls.size(); ++i) {
        const double util = engine.isl_utilization(epoch, i);
        if (util <= 0.0) continue;  // same convention as the packet map
        IslUtilization iu;
        iu.sat_a = isls[i].sat_a;
        iu.sat_b = isls[i].sat_b;
        const auto geo_a =
            orbit::ecef_to_geodetic(engine.mobility().position_ecef(iu.sat_a, t));
        const auto geo_b =
            orbit::ecef_to_geodetic(engine.mobility().position_ecef(iu.sat_b, t));
        iu.lat_a = geo_a.latitude_deg;
        iu.lon_a = geo_a.longitude_deg;
        iu.lat_b = geo_b.latitude_deg;
        iu.lon_b = geo_b.longitude_deg;
        iu.utilization = util;
        out.push_back(iu);
    }
    return out;
}

std::vector<IslUtilization> top_bottlenecks(std::vector<IslUtilization> map,
                                            std::size_t count) {
    std::sort(map.begin(), map.end(), [](const IslUtilization& a, const IslUtilization& b) {
        return a.utilization > b.utilization;
    });
    if (map.size() > count) map.resize(count);
    return map;
}

std::string utilization_to_csv(const std::vector<IslUtilization>& map) {
    std::ostringstream os;
    os << "sat_a,sat_b,lat_a,lon_a,lat_b,lon_b,utilization\n";
    os.precision(6);
    for (const auto& iu : map) {
        os << iu.sat_a << "," << iu.sat_b << "," << iu.lat_a << "," << iu.lon_a << ","
           << iu.lat_b << "," << iu.lon_b << "," << iu.utilization << "\n";
    }
    return os.str();
}

}  // namespace hypatia::viz
