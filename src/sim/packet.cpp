#include "src/sim/packet.hpp"

// Packet is a plain struct; this file anchors the translation unit.
