// The simulation kernel: the virtual clock plus the event queue. All
// network components hold a reference to one Simulator and schedule
// their work through it.
#pragma once

#include <cstdint>

#include "src/obs/metrics.hpp"
#include "src/sim/event_queue.hpp"
#include "src/util/units.hpp"

namespace hypatia::sim {

class Simulator {
  public:
    Simulator();

    TimeNs now() const { return now_; }

    /// Schedules `cb` `delay` nanoseconds from now (delay >= 0).
    void schedule_in(TimeNs delay, EventQueue::Callback cb);

    /// Schedules `cb` at absolute time `t` (t >= now()).
    void schedule_at(TimeNs t, EventQueue::Callback cb);

    /// Runs events until the queue drains or the clock passes `t_end`
    /// (events at exactly t_end still run). Returns the number of events
    /// executed. When the run completes normally the clock advances to
    /// t_end; after stop() it stays at the last executed event's time,
    /// so a later run_until resumes where the stopped run left off.
    std::uint64_t run_until(TimeNs t_end);

    /// Requests run_until to return after the current event. Pending
    /// events stay queued and run on the next run_until call.
    void stop() { stopped_ = true; }

    /// Events executed over the simulator's lifetime (accumulates
    /// across run_until calls).
    std::uint64_t events_executed() const { return events_executed_; }

    /// Events currently pending in the queue.
    std::size_t events_pending() const { return queue_.size(); }

  private:
    TimeNs now_ = 0;
    bool stopped_ = false;
    std::uint64_t events_executed_ = 0;
    EventQueue queue_;
    // Registry instruments, resolved once (see src/obs/observability.hpp).
    obs::Counter* events_metric_;
    obs::Counter* runs_metric_;
    obs::Gauge* time_metric_;
    obs::Gauge* queue_peak_metric_;
};

}  // namespace hypatia::sim
