// The simulation kernel: the virtual clock plus the event queue. All
// network components hold a reference to one Simulator and schedule
// their work through it.
#pragma once

#include <cstdint>

#include "src/sim/event_queue.hpp"
#include "src/util/units.hpp"

namespace hypatia::sim {

class Simulator {
  public:
    TimeNs now() const { return now_; }

    /// Schedules `cb` `delay` nanoseconds from now (delay >= 0).
    void schedule_in(TimeNs delay, EventQueue::Callback cb);

    /// Schedules `cb` at absolute time `t` (t >= now()).
    void schedule_at(TimeNs t, EventQueue::Callback cb);

    /// Runs events until the queue drains or the clock passes `t_end`
    /// (events at exactly t_end still run). Returns the number of events
    /// executed.
    std::uint64_t run_until(TimeNs t_end);

    /// Requests run_until to return after the current event.
    void stop() { stopped_ = true; }

    std::uint64_t events_executed() const { return events_executed_; }

  private:
    TimeNs now_ = 0;
    bool stopped_ = false;
    std::uint64_t events_executed_ = 0;
    EventQueue queue_;
};

}  // namespace hypatia::sim
