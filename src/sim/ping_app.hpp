// The ping application of the paper's section 4.1: the source sends a
// small probe every interval (default 1 ms); the destination echoes it
// back immediately; RTT samples are logged. Probes that never return
// (e.g. during the St. Petersburg disconnection) are recorded as lost.
#pragma once

#include <cstdint>
#include <vector>

#include "src/sim/network.hpp"

namespace hypatia::sim {

class PingApp {
  public:
    struct Config {
        std::uint64_t flow_id = 0;
        int src_node = -1;
        int dst_node = -1;
        TimeNs interval = 1 * kNsPerMs;
        TimeNs start = 0;
        TimeNs stop = 0;
        int packet_size_bytes = 64;
    };

    struct Sample {
        TimeNs send_time = 0;
        TimeNs rtt = 0;  // 0 if no reply arrived (paper's convention in Fig 3)
        bool replied = false;
    };

    PingApp(Network& network, const Config& config);

    const std::vector<Sample>& samples() const { return samples_; }
    std::uint64_t sent() const { return samples_.size(); }
    std::uint64_t replies() const { return replies_; }

  private:
    void send_next();

    Network& network_;
    Config config_;
    std::vector<Sample> samples_;
    std::uint64_t replies_ = 0;
};

}  // namespace hypatia::sim
