// A network node (satellite or ground station): owns its devices, a
// destination -> next-hop forwarding table (installed/refreshed by the
// routing schedule, paper section 3.1 "forwarding state"), and the flow
// handlers of locally terminating traffic.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/sim/net_device.hpp"
#include "src/sim/packet.hpp"

namespace hypatia::sim {

class Node {
  public:
    explicit Node(int id) : id_(id) {}

    int id() const { return id_; }

    /// Registers the point-to-point device toward satellite `peer`.
    void attach_isl_device(int peer, NetDevice* device) { isl_devices_[peer] = device; }
    /// Registers this node's (single) GSL device.
    void attach_gsl_device(NetDevice* device) { gsl_device_ = device; }

    NetDevice* gsl_device() const { return gsl_device_; }
    NetDevice* isl_device_to(int peer) const {
        const auto it = isl_devices_.find(peer);
        return it == isl_devices_.end() ? nullptr : it->second;
    }
    const std::unordered_map<int, NetDevice*>& isl_devices() const {
        return isl_devices_;
    }

    /// Replaces the next hop toward destination `dst` (-1 = unreachable).
    void set_next_hop(int dst, int next_hop) { fstate_[dst] = next_hop; }
    int next_hop(int dst) const {
        const auto it = fstate_.find(dst);
        return it == fstate_.end() ? -1 : it->second;
    }

    /// Handler for traffic terminating here, keyed by flow id.
    using FlowHandler = std::function<void(const Packet&)>;
    void set_flow_handler(std::uint64_t flow_id, FlowHandler handler) {
        handlers_[flow_id] = std::move(handler);
    }

    /// Entry point for packets arriving from a device (or injected by a
    /// local application with hops == 0).
    void receive(const Packet& packet);

    std::uint64_t no_route_drops() const { return no_route_drops_; }
    std::uint64_t ttl_drops() const { return ttl_drops_; }
    std::uint64_t queue_drops() const;
    std::uint64_t delivered_packets() const { return delivered_; }

  private:
    void forward(const Packet& packet);

    int id_;
    std::unordered_map<int, NetDevice*> isl_devices_;
    NetDevice* gsl_device_ = nullptr;
    std::unordered_map<int, int> fstate_;
    std::unordered_map<std::uint64_t, FlowHandler> handlers_;
    std::uint64_t no_route_drops_ = 0;
    std::uint64_t ttl_drops_ = 0;
    std::uint64_t delivered_ = 0;
};

}  // namespace hypatia::sim
