#include "src/sim/network.hpp"

#include <stdexcept>

namespace hypatia::sim {

void Network::create_nodes(int count) {
    if (!nodes_.empty()) throw std::logic_error("network: nodes already created");
    nodes_.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i) nodes_.push_back(std::make_unique<Node>(i));
}

NetDevice& Network::make_device(int owner, double rate_bps, std::size_t queue_capacity,
                                DelayModel delay, int fixed_peer, LinkUpFn link_up) {
    devices_.push_back(std::make_unique<NetDevice>(
        sim_, owner, rate_bps, queue_capacity, std::move(delay),
        [this](const Packet& p, int to) { node(to).receive(p); }, fixed_peer,
        std::move(link_up)));
    return *devices_.back();
}

void Network::add_isl(int a, int b, double rate_bps, std::size_t queue_capacity,
                      DelayModel delay, LinkUpFn link_up) {
    NetDevice& ab = make_device(a, rate_bps, queue_capacity, delay, b, link_up);
    NetDevice& ba =
        make_device(b, rate_bps, queue_capacity, std::move(delay), a, std::move(link_up));
    node(a).attach_isl_device(b, &ab);
    node(b).attach_isl_device(a, &ba);
}

void Network::add_gsl(int n, double rate_bps, std::size_t queue_capacity,
                      DelayModel delay, LinkUpFn link_up) {
    NetDevice& dev =
        make_device(n, rate_bps, queue_capacity, std::move(delay), -1, std::move(link_up));
    node(n).attach_gsl_device(&dev);
}

std::uint64_t Network::total_queue_drops() const {
    std::uint64_t total = 0;
    for (const auto& dev : devices_) total += dev->queue().drops();
    return total;
}

std::uint64_t Network::total_no_route_drops() const {
    std::uint64_t total = 0;
    for (const auto& n : nodes_) total += n->no_route_drops();
    return total;
}

}  // namespace hypatia::sim
