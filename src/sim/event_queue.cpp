#include "src/sim/event_queue.hpp"

#include <utility>

namespace hypatia::sim {

void EventQueue::push(TimeNs t, Callback cb) {
    heap_.push(Event{t, next_seq_++, std::move(cb)});
}

EventQueue::Callback EventQueue::pop(TimeNs* time_out) {
    if (heap_.empty()) throw std::logic_error("event queue: pop() on empty queue");
    // priority_queue::top() is const; moving the callback out is safe
    // because we pop immediately after.
    Event& top = const_cast<Event&>(heap_.top());
    Callback cb = std::move(top.cb);
    if (time_out != nullptr) *time_out = top.time;
    heap_.pop();
    return cb;
}

}  // namespace hypatia::sim
