#include "src/sim/node.hpp"

#include "src/obs/observability.hpp"

namespace hypatia::sim {

namespace {
// Nodes carry no simulator reference, so the shared drop counters are
// resolved lazily here instead of per instance.
obs::Counter& ttl_drops_metric() {
    static obs::Counter& c = obs::metrics().counter("net.ttl_drops");
    return c;
}
obs::Counter& no_route_drops_metric() {
    static obs::Counter& c = obs::metrics().counter("net.no_route_drops");
    return c;
}
}  // namespace

void Node::receive(const Packet& packet) {
    if (packet.dst_node == id_) {
        ++delivered_;
        const auto it = handlers_.find(packet.flow_id);
        if (it != handlers_.end()) it->second(packet);
        return;
    }
    forward(packet);
}

void Node::forward(const Packet& in) {
    Packet packet = in;
    if (++packet.hops > kMaxHops) {
        ++ttl_drops_;
        ttl_drops_metric().inc();
        return;
    }
    const int nh = next_hop(packet.dst_node);
    if (nh < 0) {
        ++no_route_drops_;
        no_route_drops_metric().inc();
        return;
    }
    if (NetDevice* isl = isl_device_to(nh)) {
        isl->send(packet, nh);
        return;
    }
    if (gsl_device_ != nullptr) {
        gsl_device_->send(packet, nh);
        return;
    }
    ++no_route_drops_;  // no device capable of reaching the next hop
    no_route_drops_metric().inc();
}

std::uint64_t Node::queue_drops() const {
    std::uint64_t total = 0;
    for (const auto& [peer, dev] : isl_devices_) total += dev->queue().drops();
    if (gsl_device_ != nullptr) total += gsl_device_->queue().drops();
    return total;
}

}  // namespace hypatia::sim
