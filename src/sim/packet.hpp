// The packet: one plain struct for every transport (UDP, ping, TCP).
// Packets are passed by value — they are small and the simulator is
// single-threaded, so copying is cheaper and safer than shared ownership.
#pragma once

#include <cstdint>

#include "src/util/units.hpp"

namespace hypatia::sim {

enum class PacketKind : std::uint8_t {
    kUdp,
    kPingRequest,
    kPingReply,
    kTcpData,
    kTcpAck,
};

struct Packet {
    PacketKind kind = PacketKind::kUdp;
    int src_node = -1;        // originating endpoint (node id)
    int dst_node = -1;        // final destination (node id)
    int size_bytes = 0;       // wire size (headers + payload)
    int payload_bytes = 0;    // application payload (for goodput accounting)
    std::uint64_t flow_id = 0;
    std::uint64_t seq = 0;    // transport sequence (segment index / ping id)
    std::uint64_t ack = 0;    // TCP cumulative ACK (next expected segment)
    TimeNs sent_time = 0;     // origin timestamp (for RTT measurement)
    TimeNs echo_time = 0;     // timestamp echoed by the peer (RTTM)
    int hops = 0;             // hop counter (TTL-style safety + analytics)
};

/// Header overhead used for all transports (IP+TCP/UDP-ish, matching the
/// ~60-byte overhead ns-3 point-to-point simulations carry).
inline constexpr int kHeaderBytes = 60;

/// Default TCP maximum segment size (payload bytes). 1440 + 60 header
/// = 1500 B on the wire, so a 100-packet queue at 10 Mbit/s drains in
/// 120 ms — the paper's "approximately 1 BDP for 10 Mbps and 100 ms".
inline constexpr int kDefaultMss = 1440;

/// Safety TTL: LEO paths are < 40 hops; anything longer is a loop.
inline constexpr int kMaxHops = 64;

}  // namespace hypatia::sim
