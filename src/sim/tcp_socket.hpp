// Segment-based TCP with pluggable congestion control.
//
// Implements the machinery the paper's congestion-control study (section
// 4.2, Figs 4-5, 18-19) relies on:
//  * slow start / congestion avoidance, fast retransmit & NewReno fast
//    recovery with partial-ACK handling (RFC 6582),
//  * retransmission timeout with Jacobson/Karn estimation and
//    exponential backoff,
//  * delayed ACKs (count 2, 200 ms timer; can be disabled — the paper
//    checks both), and
//  * timestamp-echo RTT measurement, so reordering-induced duplicate
//    ACKs behave exactly as the paper describes: a path shortening makes
//    later segments arrive first, the receiver emits duplicate ACKs, and
//    the sender halves its window although nothing was lost.
//
// Sequence numbers are segment indices (one MSS per segment), matching
// how the paper counts its congestion window in packets.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"
#include "src/sim/network.hpp"
#include "src/sim/packet.hpp"

namespace hypatia::sim {

struct TcpConfig {
    std::uint64_t flow_id = 0;
    int src_node = -1;
    int dst_node = -1;
    int mss_bytes = kDefaultMss;  // payload per segment
    double initial_cwnd = 1.0;    // segments
    double initial_ssthresh = 1e9;
    bool delayed_ack = true;
    int delayed_ack_count = 2;
    TimeNs delayed_ack_timeout = 200 * kNsPerMs;
    TimeNs min_rto = 1 * kNsPerSec;  // ns-3's default MinRto
    TimeNs max_rto = 60 * kNsPerSec;
    /// RFC 6582 retransmit-timer variant during fast recovery:
    /// false = "slow-but-steady" (reset the timer on every partial ACK,
    /// like ns-3; recovery rides out long multi-loss episodes),
    /// true  = "impatient" (reset only for the first partial ACK; heavy
    /// loss falls back to RTO quickly).
    bool impatient_rto = false;
    /// Selective-acknowledgement recovery (default on, like ns-3): during
    /// fast recovery the sender retransmits the *actual* holes — one per
    /// arriving ACK (packet conservation) — instead of NewReno's one hole
    /// per RTT. Implemented with an exact scoreboard (sender reads the
    /// receiver's reassembly buffer, which is what SACK blocks would
    /// carry, one propagation delay fresher).
    bool sack = true;
    TimeNs start = 0;
    /// 0 = unlimited ("long running TCP flow"); otherwise stop sending
    /// new segments once this many have been queued.
    std::uint64_t max_segments = 0;
};

class TcpFlow;

/// Congestion-control strategy interface. The socket core owns the loss
/// detection (dupACKs, RTO) and fast-recovery window accounting; the
/// strategy decides how cwnd grows on ACKs and shrinks on loss.
class CongestionControl {
  public:
    virtual ~CongestionControl() = default;
    virtual const char* name() const = 0;

    /// A cumulative ACK advanced snd_una by `acked_segments`;
    /// `rtt` is the timestamp-echo RTT sample (0 if unavailable).
    /// Called only OUTSIDE loss recovery (window growth).
    virtual void on_ack(TcpFlow& flow, int acked_segments, TimeNs rtt) = 0;

    /// Model update, called for EVERY cumulative-ACK advance, including
    /// during loss recovery (rate-based algorithms keep estimating).
    virtual void on_ack_model(TcpFlow& /*flow*/, int /*acked_segments*/,
                              TimeNs /*rtt*/) {}

    /// Loss detected. `timeout` distinguishes RTO from fast retransmit.
    /// Must set ssthresh (and may set cwnd; the core sets cwnd for the
    /// standard cases after this call per RFC defaults).
    virtual void on_loss(TcpFlow& flow, bool timeout) = 0;

    /// Pacing rate in bits/s; 0 disables pacing (window-limited bursts).
    /// Rate-based algorithms (BBR) return their current pacing rate.
    virtual double pacing_rate_bps() const { return 0.0; }
};

std::unique_ptr<CongestionControl> make_newreno();
std::unique_ptr<CongestionControl> make_vegas(double alpha = 2.0, double beta = 4.0,
                                              double gamma = 1.0);
/// Simplified BBRv1 (Cardwell et al.): windowed-max bottleneck-bandwidth
/// and windowed-min RTT estimation, pacing-gain cycling, PROBE_RTT — the
/// evaluation the paper calls out as high-interest future work (sec 4.2).
std::unique_ptr<CongestionControl> make_bbr();

/// One long-running TCP connection between two ground stations.
class TcpFlow {
  public:
    TcpFlow(Network& network, const TcpConfig& config,
            std::unique_ptr<CongestionControl> cc);

    // --- observability -------------------------------------------------
    struct CwndSample {
        TimeNs t;
        double cwnd;      // segments
        double ssthresh;  // segments
        bool in_recovery;
    };
    struct RttSample {
        TimeNs t;
        TimeNs rtt;
    };
    const std::vector<CwndSample>& cwnd_trace() const { return cwnd_trace_; }
    const std::vector<RttSample>& rtt_trace() const { return rtt_trace_; }

    /// Optional protocol-event hook (event name, detail value), fired on
    /// "dup_ack", "fast_retransmit", "partial_ack", "full_ack", "rto".
    std::function<void(const char*, std::uint64_t)> on_event;

    /// Payload bytes delivered in order to the receiving application.
    std::uint64_t delivered_bytes() const { return delivered_segments_ * mss(); }
    /// Unique data segments that have *arrived* at the receiver (in order
    /// or buffered out of order). Monotone and smooth across recovery —
    /// the delivery counter BBR's rate estimator needs.
    std::uint64_t segments_received() const { return segments_received_; }
    std::uint64_t delivered_segments() const { return delivered_segments_; }
    std::uint64_t retransmissions() const { return retransmissions_; }
    std::uint64_t timeouts() const { return timeouts_; }
    std::uint64_t fast_retransmits() const { return fast_retransmits_; }
    std::uint64_t dup_acks_received() const { return dup_acks_total_; }

    /// Receiver-side delivery time series: payload bytes per fixed bin
    /// (for the paper's Fig 5c "throughput over 100 ms intervals").
    void enable_delivery_bins(TimeNs bin_width, TimeNs horizon);
    std::vector<double> delivery_rate_bps() const;  // one value per bin
    TimeNs delivery_bin_width() const { return delivery_bin_width_; }

    // --- state access for CongestionControl strategies ------------------
    double cwnd() const { return cwnd_; }
    void set_cwnd(double segments);
    double ssthresh() const { return ssthresh_; }
    void set_ssthresh(double segments) { ssthresh_ = segments; }
    bool in_slow_start() const { return cwnd_ < ssthresh_; }
    bool in_recovery() const { return in_recovery_; }
    std::uint64_t flight_size() const { return snd_nxt_ - snd_una_; }
    std::uint64_t snd_una() const { return snd_una_; }
    std::uint64_t snd_nxt() const { return snd_nxt_; }
    TimeNs now() const;
    std::uint64_t mss() const { return static_cast<std::uint64_t>(config_.mss_bytes); }
    const TcpConfig& config() const { return config_; }

  private:
    // Sender side.
    void try_send();
    void send_segment(std::uint64_t seq, bool retransmission);
    void on_ack_packet(const Packet& ack);
    void enter_fast_recovery();
    void on_rto();
    void arm_rto();
    void record_cwnd();

    // Receiver side.
    void on_data_packet(const Packet& data);
    void send_ack(TimeNs echo_time);
    void maybe_delay_ack(TimeNs echo_time);

    Network& network_;
    TcpConfig config_;
    std::unique_ptr<CongestionControl> cc_;

    // Sender state (segment indices).
    std::uint64_t snd_una_ = 0;
    std::uint64_t snd_nxt_ = 0;
    double cwnd_ = 1.0;
    double ssthresh_ = 1e9;
    int dup_acks_ = 0;
    bool in_recovery_ = false;
    bool partial_ack_seen_ = false;
    std::uint64_t recover_ = 0;
    std::uint64_t hole_cursor_ = 0;  // next hole candidate (SACK recovery)

    /// Retransmits the next not-yet-retransmitted hole below recover_,
    /// if any; returns true when a retransmission was sent.
    bool retransmit_next_hole();

    // RTT estimation (Jacobson) and RTO management.
    TimeNs srtt_ = 0;
    TimeNs rttvar_ = 0;
    TimeNs rto_ = 1 * kNsPerSec;
    std::uint64_t rto_generation_ = 0;
    bool rto_armed_ = false;

    // Receiver state.
    std::uint64_t rcv_nxt_ = 0;
    std::vector<std::uint64_t> out_of_order_;  // sorted buffered seqs
    int pending_ack_segments_ = 0;
    TimeNs pending_ack_echo_ = 0;
    std::uint64_t delack_generation_ = 0;

    // Stats / traces.
    std::uint64_t delivered_segments_ = 0;
    std::uint64_t segments_received_ = 0;
    std::uint64_t retransmissions_ = 0;
    std::uint64_t timeouts_ = 0;
    std::uint64_t fast_retransmits_ = 0;
    std::uint64_t dup_acks_total_ = 0;
    std::vector<CwndSample> cwnd_trace_;
    std::vector<RttSample> rtt_trace_;
    TimeNs delivery_bin_width_ = 0;
    std::vector<std::uint64_t> delivery_bins_;

    // Pacing (used when cc_->pacing_rate_bps() > 0).
    bool pace_timer_armed_ = false;
    std::uint64_t pace_generation_ = 0;

    // Shared registry instruments and the tracer, resolved once (see
    // src/obs/observability.hpp).
    obs::Counter* retx_metric_;
    obs::Counter* timeouts_metric_;
    obs::Counter* fast_retx_metric_;
    obs::Counter* dup_acks_metric_;
    obs::Histogram* rtt_metric_;
    obs::Histogram* cwnd_metric_;
    obs::Tracer* tracer_;
};

}  // namespace hypatia::sim
