// TCP Vegas congestion control (Brakmo & Peterson) — the delay-based
// algorithm of the paper's section 4.2. Vegas compares the expected rate
// (cwnd / baseRTT) against the actual rate (cwnd / currentRTT); the
// backlog estimate diff = (expected - actual) * baseRTT is held between
// alpha and beta segments.
//
// On an LEO path the propagation delay itself changes: when the path
// lengthens, currentRTT rises with no queueing at all, Vegas reads it as
// congestion and shrinks its window — the throughput collapse of the
// paper's Fig. 5.
#include <algorithm>
#include <limits>

#include "src/sim/tcp_socket.hpp"

namespace hypatia::sim {

namespace {

class Vegas final : public CongestionControl {
  public:
    Vegas(double alpha, double beta, double gamma)
        : alpha_(alpha), beta_(beta), gamma_(gamma) {}

    const char* name() const override { return "vegas"; }

    void on_ack(TcpFlow& flow, int acked_segments, TimeNs rtt) override {
        if (rtt > 0) {
            base_rtt_ = std::min(base_rtt_, rtt);
            epoch_min_rtt_ = std::min(epoch_min_rtt_, rtt);
            ++epoch_rtt_samples_;
        }

        // Epoch boundary: one congestion decision per RTT, marked by the
        // ACK passing the snd_nxt recorded at the previous boundary.
        if (flow.snd_una() < epoch_end_seq_ || epoch_rtt_samples_ < 1) {
            grow_within_epoch(flow, acked_segments);
            return;
        }

        const double rtt_s = ns_to_seconds(epoch_min_rtt_);
        const double base_s = ns_to_seconds(base_rtt_);
        const double diff = flow.cwnd() * (rtt_s - base_s) / rtt_s;  // segments

        if (flow.in_slow_start()) {
            if (diff > gamma_) {
                // Leave slow start: settle at the current window.
                flow.set_ssthresh(std::min(flow.ssthresh(), flow.cwnd() - 1.0));
                flow.set_cwnd(flow.cwnd() - diff);
            } else {
                grow_within_epoch(flow, acked_segments);
            }
        } else if (diff > beta_) {
            flow.set_cwnd(flow.cwnd() - 1.0);
        } else if (diff < alpha_) {
            flow.set_cwnd(flow.cwnd() + 1.0);
        }
        // else: within [alpha, beta] — hold.

        epoch_end_seq_ = flow.snd_nxt();
        epoch_min_rtt_ = std::numeric_limits<TimeNs>::max();
        epoch_rtt_samples_ = 0;
        slow_start_parity_ = !slow_start_parity_;
    }

    void on_loss(TcpFlow& flow, bool timeout) override {
        flow.set_ssthresh(std::max(static_cast<double>(flow.flight_size()) / 2.0, 2.0));
        if (timeout) base_rtt_ = std::numeric_limits<TimeNs>::max();  // re-probe
    }

  private:
    void grow_within_epoch(TcpFlow& flow, int acked_segments) {
        if (!flow.in_slow_start()) return;
        // Vegas doubles only every other RTT while probing; ABC-capped.
        if (slow_start_parity_) {
            flow.set_cwnd(flow.cwnd() + std::min(acked_segments, 2));
        }
    }

    double alpha_, beta_, gamma_;
    TimeNs base_rtt_ = std::numeric_limits<TimeNs>::max();
    TimeNs epoch_min_rtt_ = std::numeric_limits<TimeNs>::max();
    int epoch_rtt_samples_ = 0;
    std::uint64_t epoch_end_seq_ = 0;
    bool slow_start_parity_ = true;
};

}  // namespace

std::unique_ptr<CongestionControl> make_vegas(double alpha, double beta, double gamma) {
    return std::make_unique<Vegas>(alpha, beta, gamma);
}

}  // namespace hypatia::sim
