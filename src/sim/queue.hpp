// Drop-tail FIFO packet queue with byte/packet statistics — the queueing
// discipline the paper's experiments use (100-packet device queues).
#pragma once

#include <cstdint>
#include <deque>

#include "src/sim/packet.hpp"

namespace hypatia::sim {

class DropTailQueue {
  public:
    explicit DropTailQueue(std::size_t capacity_packets)
        : capacity_(capacity_packets) {}

    struct Entry {
        Packet packet;
        int next_hop = -1;  // routing decision made at enqueue time
    };

    /// Returns false (and counts a drop) when full.
    bool enqueue(const Packet& p, int next_hop);
    /// Precondition: !empty().
    Entry dequeue();

    bool empty() const { return items_.empty(); }
    std::size_t size() const { return items_.size(); }
    std::size_t capacity() const { return capacity_; }
    std::uint64_t drops() const { return drops_; }
    std::uint64_t enqueues() const { return enqueues_; }

  private:
    std::size_t capacity_;
    std::deque<Entry> items_;
    std::uint64_t drops_ = 0;
    std::uint64_t enqueues_ = 0;
};

}  // namespace hypatia::sim
