#include "src/sim/tcp_socket.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/obs/observability.hpp"
#include "src/obs/recorder.hpp"

namespace hypatia::sim {

TcpFlow::TcpFlow(Network& network, const TcpConfig& config,
                 std::unique_ptr<CongestionControl> cc)
    : network_(network), config_(config), cc_(std::move(cc)),
      retx_metric_(&obs::metrics().counter("tcp.retransmissions")),
      timeouts_metric_(&obs::metrics().counter("tcp.timeouts")),
      fast_retx_metric_(&obs::metrics().counter("tcp.fast_retransmits")),
      dup_acks_metric_(&obs::metrics().counter("tcp.dup_acks")),
      rtt_metric_(&obs::metrics().histogram("tcp.rtt_us")),
      cwnd_metric_(&obs::metrics().histogram("tcp.cwnd_segments")),
      tracer_(&obs::tracer()) {
    if (config.src_node < 0 || config.dst_node < 0) {
        throw std::invalid_argument("tcp: endpoints required");
    }
    cwnd_ = config.initial_cwnd;
    ssthresh_ = config.initial_ssthresh;
    rto_ = std::max(config.min_rto, TimeNs{1 * kNsPerSec});

    network_.node(config.dst_node)
        .set_flow_handler(config.flow_id,
                          [this](const Packet& p) { on_data_packet(p); });
    network_.node(config.src_node)
        .set_flow_handler(config.flow_id, [this](const Packet& p) {
            if (p.kind == PacketKind::kTcpAck) on_ack_packet(p);
        });

    network_.simulator().schedule_at(config.start, [this]() {
        record_cwnd();
        try_send();
    });
}

TimeNs TcpFlow::now() const {
    return const_cast<Network&>(network_).simulator().now();
}

void TcpFlow::set_cwnd(double segments) {
    cwnd_ = std::max(1.0, segments);
    record_cwnd();
}

void TcpFlow::record_cwnd() {
    // Trace every change; callers downsample when plotting.
    cwnd_trace_.push_back({now(), cwnd_, ssthresh_, in_recovery_});
    cwnd_metric_->record(static_cast<std::uint64_t>(std::llround(cwnd_)));
    obs::recorder().record(obs::EventKind::kTcpCwnd, now(), config_.src_node,
                           config_.dst_node, static_cast<std::int32_t>(config_.flow_id),
                           in_recovery_ ? 1 : 0, cwnd_);
    if (tracer_->enabled(obs::TraceCategory::kTcp)) {
        tracer_->emit(obs::make_record(now(), obs::TraceCategory::kTcp, "tcp.cwnd",
                                       config_.src_node, config_.dst_node,
                                       config_.flow_id, in_recovery_ ? 1 : 0, cwnd_));
    }
}

void TcpFlow::enable_delivery_bins(TimeNs bin_width, TimeNs horizon) {
    delivery_bin_width_ = bin_width;
    delivery_bins_.assign(static_cast<std::size_t>(horizon / bin_width) + 1, 0);
}

std::vector<double> TcpFlow::delivery_rate_bps() const {
    std::vector<double> out;
    out.reserve(delivery_bins_.size());
    const double bin_s = ns_to_seconds(delivery_bin_width_);
    for (const auto bytes : delivery_bins_) {
        out.push_back(static_cast<double>(bytes) * 8.0 / bin_s);
    }
    return out;
}

// --------------------------- sender ------------------------------------

void TcpFlow::try_send() {
    const auto window = static_cast<std::uint64_t>(cwnd_);
    const double pacing_rate = cc_->pacing_rate_bps();
    if (pacing_rate <= 0.0) {
        while (snd_nxt_ < snd_una_ + window) {
            if (config_.max_segments > 0 && snd_nxt_ >= config_.max_segments) break;
            send_segment(snd_nxt_, /*retransmission=*/false);
            ++snd_nxt_;
        }
        return;
    }
    // Paced mode: at most one segment per pacing interval.
    if (pace_timer_armed_) return;
    if (snd_nxt_ >= snd_una_ + window) return;
    if (config_.max_segments > 0 && snd_nxt_ >= config_.max_segments) return;
    send_segment(snd_nxt_, /*retransmission=*/false);
    ++snd_nxt_;
    pace_timer_armed_ = true;
    const std::uint64_t generation = ++pace_generation_;
    const double wire_bits =
        static_cast<double>(config_.mss_bytes + kHeaderBytes) * 8.0;
    network_.simulator().schedule_in(
        seconds_to_ns(wire_bits / pacing_rate), [this, generation]() {
            if (generation != pace_generation_) return;
            pace_timer_armed_ = false;
            try_send();
        });
}

void TcpFlow::send_segment(std::uint64_t seq, bool retransmission) {
    Packet p;
    p.kind = PacketKind::kTcpData;
    p.src_node = config_.src_node;
    p.dst_node = config_.dst_node;
    p.size_bytes = config_.mss_bytes + kHeaderBytes;
    p.payload_bytes = config_.mss_bytes;
    p.flow_id = config_.flow_id;
    p.seq = seq;
    p.sent_time = now();
    if (retransmission) {
        ++retransmissions_;
        retx_metric_->inc();
        if (tracer_->enabled(obs::TraceCategory::kTcp)) {
            tracer_->emit(obs::make_record(now(), obs::TraceCategory::kTcp,
                                           "tcp.retransmit", config_.src_node,
                                           config_.dst_node, config_.flow_id,
                                           static_cast<std::int64_t>(seq)));
        }
    }
    network_.node(config_.src_node).receive(p);
    if (!rto_armed_) arm_rto();
}

void TcpFlow::arm_rto() {
    rto_armed_ = true;
    const std::uint64_t generation = ++rto_generation_;
    network_.simulator().schedule_in(rto_, [this, generation]() {
        if (generation != rto_generation_) return;  // re-armed or cancelled
        rto_armed_ = false;
        if (flight_size() > 0) on_rto();
    });
}

void TcpFlow::on_rto() {
    ++timeouts_;
    timeouts_metric_->inc();
    if (tracer_->enabled(obs::TraceCategory::kTcp)) {
        tracer_->emit(obs::make_record(now(), obs::TraceCategory::kTcp, "tcp.rto",
                                       config_.src_node, config_.dst_node,
                                       config_.flow_id,
                                       static_cast<std::int64_t>(snd_una_)));
    }
    if (on_event) on_event("rto", snd_una_);
    cc_->on_loss(*this, /*timeout=*/true);
    set_cwnd(1.0);
    dup_acks_ = 0;
    in_recovery_ = false;
    rto_ = std::min(config_.max_rto, rto_ * 2);  // Karn backoff
    obs::recorder().record(obs::EventKind::kTcpRto, now(), config_.src_node,
                           config_.dst_node, static_cast<std::int32_t>(config_.flow_id),
                           -1, ns_to_seconds(rto_));
    // RFC 6582: remember the highest sequence sent so stale duplicate
    // ACKs from before this timeout cannot trigger fast retransmit.
    recover_ = snd_nxt_;
    // Go-back-N restart from the first unacknowledged segment.
    snd_nxt_ = snd_una_;
    send_segment(snd_nxt_, /*retransmission=*/true);
    ++snd_nxt_;
    arm_rto();
}

void TcpFlow::enter_fast_recovery() {
    ++fast_retransmits_;
    fast_retx_metric_->inc();
    if (tracer_->enabled(obs::TraceCategory::kTcp)) {
        tracer_->emit(obs::make_record(now(), obs::TraceCategory::kTcp,
                                       "tcp.recovery_enter", config_.src_node,
                                       config_.dst_node, config_.flow_id,
                                       static_cast<std::int64_t>(snd_una_)));
    }
    if (on_event) on_event("fast_retransmit", snd_una_);
    cc_->on_loss(*this, /*timeout=*/false);
    in_recovery_ = true;
    partial_ack_seen_ = false;
    recover_ = snd_nxt_;
    hole_cursor_ = snd_una_;
    retransmit_next_hole();
    set_cwnd(ssthresh_ + 3.0);  // window inflation per RFC 6582
    arm_rto();
}

bool TcpFlow::retransmit_next_hole() {
    if (!config_.sack) {
        // Plain NewReno: the only known hole is snd_una itself.
        send_segment(snd_una_, /*retransmission=*/true);
        return true;
    }
    std::uint64_t seq = std::max(hole_cursor_, snd_una_);
    while (seq < recover_) {
        const bool receiver_has =
            std::binary_search(out_of_order_.begin(), out_of_order_.end(), seq) ||
            seq < rcv_nxt_;
        if (!receiver_has) {
            hole_cursor_ = seq + 1;
            send_segment(seq, /*retransmission=*/true);
            return true;
        }
        ++seq;
    }
    hole_cursor_ = seq;
    return false;
}

void TcpFlow::on_ack_packet(const Packet& ack) {
    // RTT sample from the echoed timestamp (valid across retransmissions,
    // Karn-safe).
    TimeNs rtt = 0;
    if (ack.echo_time > 0) {
        rtt = now() - ack.echo_time;
        rtt_trace_.push_back({now(), rtt});
        rtt_metric_->record(static_cast<std::uint64_t>(rtt / kNsPerUs));
        // Jacobson/Karels.
        if (srtt_ == 0) {
            srtt_ = rtt;
            rttvar_ = rtt / 2;
        } else {
            const TimeNs err = rtt - srtt_;
            srtt_ += err / 8;
            rttvar_ += (std::abs(err) - rttvar_) / 4;
        }
        rto_ = std::clamp(srtt_ + 4 * rttvar_, config_.min_rto, config_.max_rto);
    }

    if (ack.ack > snd_una_) {
        const auto acked = static_cast<int>(ack.ack - snd_una_);
        snd_una_ = ack.ack;
        // After an RTO's go-back-N, a cumulative ACK (for data the
        // receiver had buffered) can pass snd_nxt; never re-send below
        // snd_una.
        if (snd_nxt_ < snd_una_) snd_nxt_ = snd_una_;
        cc_->on_ack_model(*this, acked, rtt);

        if (in_recovery_) {
            if (snd_una_ >= recover_) {
                // Full ACK: leave recovery, deflate to ssthresh.
                in_recovery_ = false;
                dup_acks_ = 0;
                if (tracer_->enabled(obs::TraceCategory::kTcp)) {
                    tracer_->emit(obs::make_record(
                        now(), obs::TraceCategory::kTcp, "tcp.recovery_exit",
                        config_.src_node, config_.dst_node, config_.flow_id,
                        static_cast<std::int64_t>(snd_una_)));
                }
                if (on_event) on_event("full_ack", snd_una_);
                set_cwnd(ssthresh_);
                ++rto_generation_;
                rto_armed_ = false;
                if (flight_size() > 0) arm_rto();
            } else {
                // Partial ACK (RFC 6582): retransmit the next hole and
                // deflate by the amount acked (plus one for the
                // retransmission). Reset the retransmit timer only for the
                // *first* partial ACK ("impatient" variant), so a heavy
                // loss episode falls back to RTO instead of crawling one
                // hole per RTT indefinitely.
                if (on_event) on_event("partial_ack", snd_una_);
                retransmit_next_hole();
                set_cwnd(std::max(1.0, cwnd_ - acked + 1.0));
                if (!config_.impatient_rto || !partial_ack_seen_) {
                    partial_ack_seen_ = true;
                    ++rto_generation_;
                    rto_armed_ = false;
                    arm_rto();
                }
            }
        } else {
            dup_acks_ = 0;
            ++rto_generation_;  // cancel
            rto_armed_ = false;
            if (flight_size() > 0) arm_rto();
            cc_->on_ack(*this, acked, rtt);
        }
        try_send();
        return;
    }

    // Duplicate ACK.
    if (flight_size() == 0) return;
    ++dup_acks_total_;
    dup_acks_metric_->inc();
    if (on_event) on_event("dup_ack", ack.ack);
    if (in_recovery_) {
        // Packet conservation: each arriving ACK grants one retransmission
        // of the next hole (SACK recovery); once the scoreboard is clean,
        // inflate the window and send new data (NewReno behaviour).
        if (!retransmit_next_hole()) {
            const double cap =
                ssthresh_ + static_cast<double>(recover_ - snd_una_) + 3.0;
            set_cwnd(std::min(cwnd_ + 1.0, cap));
            try_send();
        }
        return;
    }
    if (++dup_acks_ == 3) {
        // RFC 6582 "careful" entry: ignore duplicate ACKs left over from a
        // previous recovery episode (retransmission ambiguity) — only
        // enter when the cumulative ACK has passed the old recover point.
        if (snd_una_ >= recover_) {
            enter_fast_recovery();
            try_send();
        } else {
            dup_acks_ = 0;
        }
    }
}

// --------------------------- receiver ----------------------------------

void TcpFlow::on_data_packet(const Packet& data) {
    const std::uint64_t seq = data.seq;

    if (seq == rcv_nxt_) {
        ++rcv_nxt_;
        ++delivered_segments_;
        ++segments_received_;
        if (!delivery_bins_.empty()) {
            const auto bin = static_cast<std::size_t>(now() / delivery_bin_width_);
            if (bin < delivery_bins_.size()) {
                delivery_bins_[bin] += static_cast<std::uint64_t>(data.payload_bytes);
            }
        }
        // Drain any contiguous buffered segments.
        auto it = out_of_order_.begin();
        while (it != out_of_order_.end() && *it == rcv_nxt_) {
            ++rcv_nxt_;
            ++delivered_segments_;
            if (!delivery_bins_.empty()) {
                const auto bin = static_cast<std::size_t>(now() / delivery_bin_width_);
                if (bin < delivery_bins_.size()) {
                    delivery_bins_[bin] += static_cast<std::uint64_t>(data.payload_bytes);
                }
            }
            ++it;
        }
        out_of_order_.erase(out_of_order_.begin(), it);

        if (!out_of_order_.empty()) {
            send_ack(data.sent_time);  // still a hole: ack immediately
        } else {
            maybe_delay_ack(data.sent_time);
        }
        return;
    }

    if (seq > rcv_nxt_) {
        // Out of order: buffer and emit an immediate duplicate ACK.
        const auto it = std::lower_bound(out_of_order_.begin(), out_of_order_.end(), seq);
        if (it == out_of_order_.end() || *it != seq) {
            out_of_order_.insert(it, seq);
            ++segments_received_;
        }
        send_ack(data.sent_time);
        return;
    }

    // Old duplicate (seq < rcv_nxt): re-ack immediately.
    send_ack(data.sent_time);
}

void TcpFlow::maybe_delay_ack(TimeNs echo_time) {
    if (!config_.delayed_ack) {
        send_ack(echo_time);
        return;
    }
    if (pending_ack_segments_ == 0) pending_ack_echo_ = echo_time;
    if (++pending_ack_segments_ >= config_.delayed_ack_count) {
        send_ack(pending_ack_echo_);
        return;
    }
    // First pending segment: arm the delayed-ACK timer.
    const std::uint64_t generation = ++delack_generation_;
    const TimeNs echo = pending_ack_echo_;
    network_.simulator().schedule_in(config_.delayed_ack_timeout,
                                     [this, generation, echo]() {
                                         if (generation != delack_generation_) return;
                                         if (pending_ack_segments_ > 0) send_ack(echo);
                                     });
}

void TcpFlow::send_ack(TimeNs echo_time) {
    pending_ack_segments_ = 0;
    ++delack_generation_;  // cancel any armed delayed-ACK timer
    Packet p;
    p.kind = PacketKind::kTcpAck;
    p.src_node = config_.dst_node;
    p.dst_node = config_.src_node;
    p.size_bytes = kHeaderBytes;
    p.payload_bytes = 0;
    p.flow_id = config_.flow_id;
    p.ack = rcv_nxt_;
    p.sent_time = now();
    p.echo_time = echo_time;
    network_.node(config_.dst_node).receive(p);
}

}  // namespace hypatia::sim
