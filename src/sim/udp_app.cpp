#include "src/sim/udp_app.hpp"

#include <stdexcept>

namespace hypatia::sim {

UdpFlow::UdpFlow(Network& network, const Config& config)
    : network_(network), config_(config) {
    if (config.packet_size_bytes <= kHeaderBytes) {
        throw std::invalid_argument("udp: packet smaller than headers");
    }
    const double packets_per_second =
        config.rate_bps / (static_cast<double>(config.packet_size_bytes) * 8.0);
    interval_ = seconds_to_ns(1.0 / packets_per_second);

    network_.node(config.dst_node)
        .set_flow_handler(config.flow_id, [this](const Packet& p) {
            ++received_packets_;
            received_payload_bytes_ += static_cast<std::uint64_t>(p.payload_bytes);
        });

    network_.simulator().schedule_at(config.start, [this]() { send_next(); });
}

void UdpFlow::send_next() {
    auto& sim = network_.simulator();
    if (sim.now() >= config_.stop) return;
    Packet p;
    p.kind = PacketKind::kUdp;
    p.src_node = config_.src_node;
    p.dst_node = config_.dst_node;
    p.size_bytes = config_.packet_size_bytes;
    p.payload_bytes = config_.packet_size_bytes - kHeaderBytes;
    p.flow_id = config_.flow_id;
    p.seq = next_seq_++;
    p.sent_time = sim.now();
    ++sent_packets_;
    network_.node(config_.src_node).receive(p);
    sim.schedule_in(interval_, [this]() { send_next(); });
}

double UdpFlow::goodput_bps(TimeNs measured_until) const {
    const double window_s = ns_to_seconds(measured_until - config_.start);
    if (window_s <= 0.0) return 0.0;
    return static_cast<double>(received_payload_bytes_) * 8.0 / window_s;
}

}  // namespace hypatia::sim
