#include "src/sim/queue.hpp"

namespace hypatia::sim {

bool DropTailQueue::enqueue(const Packet& p, int next_hop) {
    if (items_.size() >= capacity_) {
        ++drops_;
        return false;
    }
    items_.push_back({p, next_hop});
    ++enqueues_;
    return true;
}

DropTailQueue::Entry DropTailQueue::dequeue() {
    Entry e = items_.front();
    items_.pop_front();
    return e;
}

}  // namespace hypatia::sim
