// TCP NewReno congestion control (RFC 5681 growth + RFC 6582 recovery;
// the recovery bookkeeping itself lives in the socket core). This is the
// loss-based algorithm of the paper's section 4.2.
#include <algorithm>

#include "src/sim/tcp_socket.hpp"

namespace hypatia::sim {

namespace {

class NewReno final : public CongestionControl {
  public:
    const char* name() const override { return "newreno"; }

    void on_ack(TcpFlow& flow, int acked_segments, TimeNs /*rtt*/) override {
        // Appropriate byte counting (RFC 3465, L=2): a stretch ACK after a
        // reordering episode must not balloon the window.
        const double credit = std::min(acked_segments, 2);
        if (flow.in_slow_start()) {
            flow.set_cwnd(flow.cwnd() + credit);
        } else {
            // Congestion avoidance: ~one segment per RTT.
            flow.set_cwnd(flow.cwnd() + credit / flow.cwnd());
        }
    }

    void on_loss(TcpFlow& flow, bool /*timeout*/) override {
        flow.set_ssthresh(std::max(static_cast<double>(flow.flight_size()) / 2.0, 2.0));
    }
};

}  // namespace

std::unique_ptr<CongestionControl> make_newreno() {
    return std::make_unique<NewReno>();
}

}  // namespace hypatia::sim
