// Network devices: a transmitter with a drop-tail queue and a data rate.
//
// Two flavours mirror Hypatia's ns-3 module (paper section 3.1):
//  * ISL device  — point-to-point to a fixed peer satellite; one device
//    (and one queue) per direction per ISL.
//  * GSL device  — one per satellite and per ground station; serializes
//    all its outgoing packets through a single queue but can address any
//    GSL peer ("each network device can send packets to any other GSL
//    network device, as long as the forwarding plan allows it").
//
// Propagation delay is evaluated per packet at transmit time from the
// current satellite/GS geometry, so link latencies vary continuously as
// satellites move, and packets already in flight during a handoff are
// still delivered (the paper's loss-free handoff assumption).
#pragma once

#include <cstdint>
#include <functional>

#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"
#include "src/sim/packet.hpp"
#include "src/sim/queue.hpp"
#include "src/sim/simulator.hpp"

namespace hypatia::sim {

/// Propagation delay between two nodes at a given time.
using DelayModel = std::function<TimeNs(int from_node, int to_node, TimeNs t)>;

/// Called when a packet finishes propagating: deliver to `to_node`.
using DeliverFn = std::function<void(const Packet&, int to_node)>;

/// Link health probe (fault injection): false when the hop from_node ->
/// to_node is dead at `t`. Consulted when the wavefront leaves the
/// device and again at the delivery instant, so a link that dies while
/// a packet is in flight loses that packet (a dead transceiver cannot
/// receive). nullptr = always up.
using LinkUpFn = std::function<bool(int from_node, int to_node, TimeNs t)>;

class NetDevice {
  public:
    /// `fixed_peer` >= 0 makes this a point-to-point (ISL) device; -1 a
    /// GSL device that sends to whatever next hop each packet carries.
    NetDevice(Simulator& sim, int owner_node, double rate_bps,
              std::size_t queue_capacity, DelayModel delay, DeliverFn deliver,
              int fixed_peer = -1, LinkUpFn link_up = nullptr);

    /// Enqueues toward `next_hop` (ignored for ISL devices, which always
    /// use their fixed peer). Returns false if the queue dropped it.
    bool send(const Packet& packet, int next_hop);

    int owner_node() const { return owner_; }
    int fixed_peer() const { return fixed_peer_; }
    bool is_gsl() const { return fixed_peer_ < 0; }
    double rate_bps() const { return rate_bps_; }

    const DropTailQueue& queue() const { return queue_; }
    std::uint64_t tx_bytes() const { return tx_bytes_; }
    std::uint64_t tx_packets() const { return tx_packets_; }

    /// Packets in the device (queued + the one being serialized).
    std::size_t backlog() const { return queue_.size() + (busy_ ? 1 : 0); }

  private:
    void start_transmission(const DropTailQueue::Entry& entry);
    void on_transmit_complete(DropTailQueue::Entry entry);
    void drop_on_dead_link(const Packet& packet, int to);

    Simulator& sim_;
    int owner_;
    double rate_bps_;
    DropTailQueue queue_;
    DelayModel delay_;
    DeliverFn deliver_;
    LinkUpFn link_up_;
    int fixed_peer_;
    bool busy_ = false;
    std::uint64_t tx_bytes_ = 0;
    std::uint64_t tx_packets_ = 0;
    // Shared registry instruments (one set of names across all devices)
    // and the tracer, resolved once at construction.
    obs::Counter* tx_packets_metric_;
    obs::Counter* tx_bytes_metric_;
    obs::Counter* rx_packets_metric_;
    obs::Counter* drops_metric_;
    obs::Counter* fault_drops_metric_;
    obs::Histogram* queue_depth_metric_;
    obs::Tracer* tracer_;
};

}  // namespace hypatia::sim
