#include "src/sim/simulator.hpp"

#include <stdexcept>
#include <utility>

namespace hypatia::sim {

void Simulator::schedule_in(TimeNs delay, EventQueue::Callback cb) {
    if (delay < 0) throw std::invalid_argument("simulator: negative delay");
    queue_.push(now_ + delay, std::move(cb));
}

void Simulator::schedule_at(TimeNs t, EventQueue::Callback cb) {
    if (t < now_) throw std::invalid_argument("simulator: scheduling in the past");
    queue_.push(t, std::move(cb));
}

std::uint64_t Simulator::run_until(TimeNs t_end) {
    stopped_ = false;
    std::uint64_t executed = 0;
    while (!queue_.empty() && !stopped_) {
        if (queue_.next_time() > t_end) break;
        TimeNs t = 0;
        auto cb = queue_.pop(&t);
        now_ = t;
        cb();
        ++executed;
        ++events_executed_;
    }
    if (now_ < t_end) now_ = t_end;
    return executed;
}

}  // namespace hypatia::sim
