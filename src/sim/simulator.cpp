#include "src/sim/simulator.hpp"

#include <stdexcept>
#include <utility>

#include "src/obs/observability.hpp"
#include "src/obs/profile.hpp"

namespace hypatia::sim {

Simulator::Simulator()
    : events_metric_(&obs::metrics().counter("sim.events_executed")),
      runs_metric_(&obs::metrics().counter("sim.run_until_calls")),
      time_metric_(&obs::metrics().gauge("sim.time_ns")),
      queue_peak_metric_(&obs::metrics().gauge("sim.event_queue_peak")) {}

void Simulator::schedule_in(TimeNs delay, EventQueue::Callback cb) {
    if (delay < 0) throw std::invalid_argument("simulator: negative delay");
    queue_.push(now_ + delay, std::move(cb));
}

void Simulator::schedule_at(TimeNs t, EventQueue::Callback cb) {
    if (t < now_) throw std::invalid_argument("simulator: scheduling in the past");
    queue_.push(t, std::move(cb));
}

std::uint64_t Simulator::run_until(TimeNs t_end) {
    HYPATIA_PROFILE_SCOPE("sim.event_loop");
    stopped_ = false;
    std::uint64_t executed = 0;
    std::size_t peak = queue_.size();
    while (!queue_.empty() && !stopped_) {
        if (queue_.size() > peak) peak = queue_.size();
        if (queue_.next_time() > t_end) break;
        TimeNs t = 0;
        auto cb = queue_.pop(&t);
        now_ = t;
        cb();
        ++executed;
        ++events_executed_;
    }
    // After stop() the clock keeps the last event's time so that the
    // still-queued events are not in the past when execution resumes.
    if (!stopped_ && now_ < t_end) now_ = t_end;
    events_metric_->inc(executed);
    runs_metric_->inc();
    time_metric_->set(static_cast<double>(now_));
    queue_peak_metric_->set_max(static_cast<double>(peak));
    return executed;
}

}  // namespace hypatia::sim
