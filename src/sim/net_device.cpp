#include "src/sim/net_device.hpp"

#include <stdexcept>
#include <utility>

namespace hypatia::sim {

NetDevice::NetDevice(Simulator& sim, int owner_node, double rate_bps,
                     std::size_t queue_capacity, DelayModel delay, DeliverFn deliver,
                     int fixed_peer)
    : sim_(sim), owner_(owner_node), rate_bps_(rate_bps), queue_(queue_capacity),
      delay_(std::move(delay)), deliver_(std::move(deliver)), fixed_peer_(fixed_peer) {
    if (rate_bps <= 0.0) throw std::invalid_argument("net_device: rate must be positive");
}

bool NetDevice::send(const Packet& packet, int next_hop) {
    const int target = fixed_peer_ >= 0 ? fixed_peer_ : next_hop;
    if (target < 0) throw std::invalid_argument("net_device: GSL send without next hop");
    if (busy_) return queue_.enqueue(packet, target);
    start_transmission({packet, target});
    return true;
}

void NetDevice::start_transmission(const DropTailQueue::Entry& entry) {
    busy_ = true;
    const double tx_seconds =
        static_cast<double>(entry.packet.size_bytes) * 8.0 / rate_bps_;
    sim_.schedule_in(seconds_to_ns(tx_seconds),
                     [this, entry]() { on_transmit_complete(entry); });
}

void NetDevice::on_transmit_complete(DropTailQueue::Entry entry) {
    tx_bytes_ += static_cast<std::uint64_t>(entry.packet.size_bytes);
    ++tx_packets_;

    // The wavefront left the device; propagation delay is measured from
    // the geometry at this instant.
    const TimeNs prop = delay_(owner_, entry.next_hop, sim_.now());
    const Packet packet = entry.packet;
    const int to = entry.next_hop;
    sim_.schedule_in(prop, [this, packet, to]() { deliver_(packet, to); });

    busy_ = false;
    if (!queue_.empty()) start_transmission(queue_.dequeue());
}

}  // namespace hypatia::sim
