#include "src/sim/net_device.hpp"

#include <stdexcept>
#include <utility>

#include "src/obs/observability.hpp"

namespace hypatia::sim {

NetDevice::NetDevice(Simulator& sim, int owner_node, double rate_bps,
                     std::size_t queue_capacity, DelayModel delay, DeliverFn deliver,
                     int fixed_peer, LinkUpFn link_up)
    : sim_(sim), owner_(owner_node), rate_bps_(rate_bps), queue_(queue_capacity),
      delay_(std::move(delay)), deliver_(std::move(deliver)),
      link_up_(std::move(link_up)), fixed_peer_(fixed_peer),
      tx_packets_metric_(&obs::metrics().counter("net.tx_packets")),
      tx_bytes_metric_(&obs::metrics().counter("net.tx_bytes")),
      rx_packets_metric_(&obs::metrics().counter("net.rx_packets")),
      drops_metric_(&obs::metrics().counter("net.queue_drops")),
      fault_drops_metric_(&obs::metrics().counter("fault.packets_dropped")),
      queue_depth_metric_(&obs::metrics().histogram("net.queue_depth")),
      tracer_(&obs::tracer()) {
    if (rate_bps <= 0.0) throw std::invalid_argument("net_device: rate must be positive");
}

void NetDevice::drop_on_dead_link(const Packet& packet, int to) {
    fault_drops_metric_->inc();
    if (tracer_->enabled(obs::TraceCategory::kFault)) {
        tracer_->emit(obs::make_record(sim_.now(), obs::TraceCategory::kFault,
                                       "fault.pkt_drop", owner_, to, packet.flow_id,
                                       static_cast<std::int64_t>(packet.seq)));
    }
}

bool NetDevice::send(const Packet& packet, int next_hop) {
    const int target = fixed_peer_ >= 0 ? fixed_peer_ : next_hop;
    if (target < 0) throw std::invalid_argument("net_device: GSL send without next hop");
    queue_depth_metric_->record(backlog());
    if (!busy_) {
        if (tracer_->enabled(obs::TraceCategory::kPacket)) {
            tracer_->emit(obs::make_record(sim_.now(), obs::TraceCategory::kPacket,
                                           "pkt.enqueue", owner_, target,
                                           packet.flow_id,
                                           static_cast<std::int64_t>(packet.seq)));
        }
        start_transmission({packet, target});
        return true;
    }
    if (queue_.enqueue(packet, target)) {
        if (tracer_->enabled(obs::TraceCategory::kPacket)) {
            tracer_->emit(obs::make_record(sim_.now(), obs::TraceCategory::kPacket,
                                           "pkt.enqueue", owner_, target,
                                           packet.flow_id,
                                           static_cast<std::int64_t>(packet.seq)));
        }
        return true;
    }
    drops_metric_->inc();
    if (tracer_->enabled(obs::TraceCategory::kPacket)) {
        tracer_->emit(obs::make_record(sim_.now(), obs::TraceCategory::kPacket,
                                       "pkt.drop", owner_, target, packet.flow_id,
                                       static_cast<std::int64_t>(packet.seq)));
    }
    return false;
}

void NetDevice::start_transmission(const DropTailQueue::Entry& entry) {
    busy_ = true;
    const double tx_seconds =
        static_cast<double>(entry.packet.size_bytes) * 8.0 / rate_bps_;
    sim_.schedule_in(seconds_to_ns(tx_seconds),
                     [this, entry]() { on_transmit_complete(entry); });
}

void NetDevice::on_transmit_complete(DropTailQueue::Entry entry) {
    tx_bytes_ += static_cast<std::uint64_t>(entry.packet.size_bytes);
    ++tx_packets_;
    tx_bytes_metric_->inc(static_cast<std::uint64_t>(entry.packet.size_bytes));
    tx_packets_metric_->inc();

    // The wavefront left the device; propagation delay is measured from
    // the geometry at this instant.
    const TimeNs prop = delay_(owner_, entry.next_hop, sim_.now());
    const Packet packet = entry.packet;
    const int to = entry.next_hop;
    if (tracer_->enabled(obs::TraceCategory::kPacket)) {
        tracer_->emit(obs::make_record(sim_.now(), obs::TraceCategory::kPacket,
                                       "pkt.tx", owner_, to, packet.flow_id,
                                       static_cast<std::int64_t>(packet.size_bytes)));
    }
    if (link_up_ && !link_up_(owner_, to, sim_.now())) {
        // The link died while the packet was serializing: the frame
        // leaves a dead transmitter and is lost.
        drop_on_dead_link(packet, to);
    } else {
        sim_.schedule_in(prop, [this, packet, to]() {
            if (link_up_ && !link_up_(owner_, to, sim_.now())) {
                // Died mid-flight: the wavefront arrives at a dead
                // receiver and is lost (no loss-free handoff for faults).
                drop_on_dead_link(packet, to);
                return;
            }
            rx_packets_metric_->inc();
            if (tracer_->enabled(obs::TraceCategory::kPacket)) {
                tracer_->emit(obs::make_record(sim_.now(), obs::TraceCategory::kPacket,
                                               "pkt.deliver", to, owner_, packet.flow_id,
                                               static_cast<std::int64_t>(packet.seq)));
            }
            deliver_(packet, to);
        });
    }

    busy_ = false;
    if (!queue_.empty()) start_transmission(queue_.dequeue());
}

}  // namespace hypatia::sim
