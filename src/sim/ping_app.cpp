#include "src/sim/ping_app.hpp"

namespace hypatia::sim {

PingApp::PingApp(Network& network, const Config& config)
    : network_(network), config_(config) {
    samples_.reserve(
        static_cast<std::size_t>((config.stop - config.start) / config.interval + 1));

    // Destination: echo requests straight back (src/dst swapped).
    network_.node(config.dst_node)
        .set_flow_handler(config.flow_id, [this](const Packet& request) {
            Packet reply = request;
            reply.kind = PacketKind::kPingReply;
            reply.src_node = request.dst_node;
            reply.dst_node = request.src_node;
            reply.hops = 0;
            network_.node(reply.src_node).receive(reply);
        });

    // Source: match replies to outstanding probes by sequence number.
    network_.node(config.src_node)
        .set_flow_handler(config.flow_id, [this](const Packet& reply) {
            if (reply.seq >= samples_.size()) return;
            auto& s = samples_[static_cast<std::size_t>(reply.seq)];
            if (s.replied) return;  // duplicate
            s.replied = true;
            s.rtt = network_.simulator().now() - s.send_time;
            ++replies_;
        });

    network_.simulator().schedule_at(config.start, [this]() { send_next(); });
}

void PingApp::send_next() {
    auto& sim = network_.simulator();
    if (sim.now() >= config_.stop) return;
    Packet p;
    p.kind = PacketKind::kPingRequest;
    p.src_node = config_.src_node;
    p.dst_node = config_.dst_node;
    p.size_bytes = config_.packet_size_bytes;
    p.payload_bytes = 0;
    p.flow_id = config_.flow_id;
    p.seq = samples_.size();
    p.sent_time = sim.now();
    samples_.push_back({sim.now(), 0, false});
    network_.node(config_.src_node).receive(p);
    sim.schedule_in(config_.interval, [this]() { send_next(); });
}

}  // namespace hypatia::sim
