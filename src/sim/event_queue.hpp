// The discrete-event core: a time-ordered queue of callbacks with stable
// FIFO ordering for simultaneous events (ties broken by insertion order,
// like ns-3's scheduler).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <stdexcept>
#include <vector>

#include "src/util/units.hpp"

namespace hypatia::sim {

class EventQueue {
  public:
    using Callback = std::function<void()>;

    /// Schedules `cb` at absolute time `t` (must be >= the last popped
    /// event's time; enforced by the Simulator wrapper).
    void push(TimeNs t, Callback cb);

    bool empty() const { return heap_.empty(); }
    std::size_t size() const { return heap_.size(); }

    /// Time of the earliest pending event. Precondition: !empty() —
    /// peeking an empty heap would be undefined behaviour, so an empty
    /// queue throws std::logic_error instead.
    TimeNs next_time() const {
        if (heap_.empty()) {
            throw std::logic_error("event queue: next_time() on empty queue");
        }
        return heap_.top().time;
    }

    /// Pops and returns the earliest event's callback. Precondition:
    /// !empty() (throws std::logic_error, like next_time()).
    Callback pop(TimeNs* time_out = nullptr);

  private:
    struct Event {
        TimeNs time;
        std::uint64_t seq;
        Callback cb;
    };
    struct Later {
        bool operator()(const Event& a, const Event& b) const {
            if (a.time != b.time) return a.time > b.time;
            return a.seq > b.seq;
        }
    };
    std::priority_queue<Event, std::vector<Event>, Later> heap_;
    std::uint64_t next_seq_ = 0;
};

}  // namespace hypatia::sim
