// The discrete-event core: a time-ordered queue of callbacks with stable
// FIFO ordering for simultaneous events (ties broken by insertion order,
// like ns-3's scheduler).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "src/util/units.hpp"

namespace hypatia::sim {

class EventQueue {
  public:
    using Callback = std::function<void()>;

    /// Schedules `cb` at absolute time `t` (must be >= the last popped
    /// event's time; enforced by the Simulator wrapper).
    void push(TimeNs t, Callback cb);

    bool empty() const { return heap_.empty(); }
    std::size_t size() const { return heap_.size(); }
    TimeNs next_time() const { return heap_.top().time; }

    /// Pops and returns the earliest event's callback.
    Callback pop(TimeNs* time_out = nullptr);

  private:
    struct Event {
        TimeNs time;
        std::uint64_t seq;
        Callback cb;
    };
    struct Later {
        bool operator()(const Event& a, const Event& b) const {
            if (a.time != b.time) return a.time > b.time;
            return a.seq > b.seq;
        }
    };
    std::priority_queue<Event, std::vector<Event>, Later> heap_;
    std::uint64_t next_seq_ = 0;
};

}  // namespace hypatia::sim
