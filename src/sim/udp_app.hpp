// Constant-rate paced UDP flow (the paper's UDP workload in the
// scalability experiment, Fig. 2): the source emits fixed-size packets at
// a configured rate; the sink counts payload arrivals for goodput.
#pragma once

#include <cstdint>
#include <vector>

#include "src/sim/network.hpp"

namespace hypatia::sim {

class UdpFlow {
  public:
    struct Config {
        std::uint64_t flow_id = 0;
        int src_node = -1;
        int dst_node = -1;
        double rate_bps = 1e6;     // paced sending rate (wire bits/s)
        int packet_size_bytes = 1500;  // wire size; payload = size - header
        TimeNs start = 0;
        TimeNs stop = 0;  // no packets sent at/after this time
    };

    UdpFlow(Network& network, const Config& config);

    std::uint64_t sent_packets() const { return sent_packets_; }
    std::uint64_t received_packets() const { return received_packets_; }
    std::uint64_t received_payload_bytes() const { return received_payload_bytes_; }

    /// Goodput in bit/s of payload over [start, measured_until].
    double goodput_bps(TimeNs measured_until) const;

  private:
    void send_next();

    Network& network_;
    Config config_;
    TimeNs interval_ = 0;
    std::uint64_t next_seq_ = 0;
    std::uint64_t sent_packets_ = 0;
    std::uint64_t received_packets_ = 0;
    std::uint64_t received_payload_bytes_ = 0;
};

}  // namespace hypatia::sim
