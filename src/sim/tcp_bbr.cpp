// Simplified BBRv1 congestion control (Cardwell et al., "BBR:
// Congestion-Based Congestion Control") — the evaluation the paper names
// as high-interest future work (section 4.2: "once a mature
// implementation of BBR is available, evaluating its behavior on LEO
// networks would be of high interest").
//
// Model-based operation:
//  * btl_bw  — windowed max of delivery-rate samples (last ~10 RTTs),
//  * rt_prop — windowed min of RTT samples (last 10 s),
//  * pacing at pacing_gain * btl_bw; cwnd capped at cwnd_gain * BDP.
// States: STARTUP (gain 2/ln2 until bandwidth plateaus 3 rounds), DRAIN,
// PROBE_BW (8-phase gain cycle 1.25, 0.75, 1 x6), PROBE_RTT (cwnd = 4 for
// 200 ms every 10 s).
//
// On LEO paths the interesting property is the contrast with Vegas: a
// propagation-delay *increase* raises BBR's BDP estimate rather than
// signalling congestion, so throughput survives path changes; rt_prop's
// 10 s window expiry adapts the model to the new path.
#include <algorithm>
#include <deque>
#include <limits>

#include "src/sim/tcp_socket.hpp"

namespace hypatia::sim {

namespace {

constexpr double kStartupGain = 2.885;  // 2/ln(2)
constexpr double kDrainGain = 1.0 / kStartupGain;
constexpr double kCwndGain = 2.0;
constexpr double kProbeBwGains[] = {1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0};
constexpr TimeNs kRtPropWindow = 10 * kNsPerSec;
constexpr TimeNs kProbeRttDuration = 200 * kNsPerMs;
constexpr int kBwWindowRounds = 10;

class Bbr final : public CongestionControl {
  public:
    const char* name() const override { return "bbr"; }

    void on_ack(TcpFlow& /*flow*/, int /*acked_segments*/, TimeNs /*rtt*/) override {
        // All work happens in on_ack_model, which also runs in recovery.
    }

    void on_ack_model(TcpFlow& flow, int acked_segments, TimeNs rtt) override {
        const TimeNs now = flow.now();

        // --- update the path model -------------------------------------
        if (rtt > 0) {
            if (rtt <= rt_prop_ || now - rt_prop_stamp_ > kRtPropWindow) {
                rt_prop_ = rtt;
                rt_prop_stamp_ = now;
            }
        }
        // Delivery-rate sample, BBR style: data delivered over the window
        // from when the just-ACKed segment was transmitted (echo_time =
        // now - rtt) until now — an RTT-long window, immune to ACK
        // compression (unlike naive inter-ACK-gap sampling).
        (void)acked_segments;
        if (rtt > 0) {
            const TimeNs sent_at = now - rtt;
            // Delivery counter at transmit time, from history; the rate is
            // measured over the *actual* window back to the history point
            // (a sparse history would otherwise inflate the sample). Skip
            // when the history has no point that old.
            std::uint64_t delivered_then = 0;
            TimeNs t_then = 0;
            const std::uint64_t delivered_now = flow.segments_received();
            if (delivered_at(sent_at, &delivered_then, &t_then) &&
                delivered_now > delivered_then && now > t_then) {
                const double sample_bps =
                    static_cast<double>(delivered_now - delivered_then) *
                    static_cast<double>(flow.mss() + kHeaderBytes) * 8.0 /
                    ns_to_seconds(now - t_then);
                bw_samples_.push_back({round_count_, sample_bps});
                while (!bw_samples_.empty() &&
                       bw_samples_.front().round + kBwWindowRounds < round_count_) {
                    bw_samples_.pop_front();
                }
            }
        }
        delivery_history_.push_back({now, flow.segments_received()});
        while (delivery_history_.size() > 2 &&
               delivery_history_.front().t < now - 30 * kNsPerSec) {
            delivery_history_.pop_front();
        }

        // Round accounting: one round per RTT of delivered data.
        if (flow.snd_una() >= next_round_seq_) {
            ++round_count_;
            next_round_seq_ = flow.snd_nxt();
            on_round_start(flow, now);
        }

        apply_model(flow, now);
    }

    void on_loss(TcpFlow& flow, bool /*timeout*/) override {
        // BBR does not react to loss with multiplicative decrease; keep the
        // socket core's recovery bookkeeping consistent by pinning ssthresh
        // to the model-derived cwnd target.
        flow.set_ssthresh(std::max(4.0, target_cwnd()));
    }

    double pacing_rate_bps() const override {
        const double bw = btl_bw();
        if (bw <= 0.0) return 10e6;  // pre-model startup rate guess
        // Floor: never pace below 4 segments per rt_prop (or 0.5 Mbit/s),
        // so the pacing timer can't outlast the RTO.
        double floor_bps = 0.5e6;
        if (rt_prop_ != std::numeric_limits<TimeNs>::max()) {
            floor_bps = std::max(floor_bps,
                                 4.0 * 1500.0 * 8.0 / ns_to_seconds(rt_prop_));
        }
        return std::max(floor_bps, pacing_gain_ * bw);
    }

  private:
    struct BwSample {
        std::uint64_t round;
        double bps;
    };

    double btl_bw() const {
        double best = 0.0;
        for (const auto& s : bw_samples_) best = std::max(best, s.bps);
        return best;
    }

    double bdp_segments(const TcpFlow& flow) const {
        const double bw = btl_bw();
        if (bw <= 0.0 || rt_prop_ == std::numeric_limits<TimeNs>::max()) return 4.0;
        return bw * ns_to_seconds(rt_prop_) /
               (static_cast<double>(flow.mss() + kHeaderBytes) * 8.0);
    }

    double target_cwnd() const { return cached_target_cwnd_; }

    void on_round_start(TcpFlow& flow, TimeNs now) {
        switch (state_) {
            case State::kStartup: {
                const double bw = btl_bw();
                if (bw > 1.25 * full_bw_) {
                    full_bw_ = bw;
                    full_bw_rounds_ = 0;
                } else if (++full_bw_rounds_ >= 3) {
                    state_ = State::kDrain;
                    pacing_gain_ = kDrainGain;
                }
                break;
            }
            case State::kDrain:
                if (static_cast<double>(flow.flight_size()) <= bdp_segments(flow)) {
                    enter_probe_bw(now);
                }
                break;
            case State::kProbeBw:
                cycle_index_ = (cycle_index_ + 1) % 8;
                pacing_gain_ = kProbeBwGains[cycle_index_];
                break;
            case State::kProbeRtt:
                break;
        }

        // PROBE_RTT entry: rt_prop stale and not already probing.
        if (state_ != State::kProbeRtt &&
            now - rt_prop_stamp_ > kRtPropWindow && !probe_rtt_done_recently(now)) {
            state_ = State::kProbeRtt;
            pacing_gain_ = 1.0;
            probe_rtt_until_ = now + kProbeRttDuration;
        }
        if (state_ == State::kProbeRtt && now >= probe_rtt_until_) {
            last_probe_rtt_ = now;
            enter_probe_bw(now);
        }
    }

    void enter_probe_bw(TimeNs /*now*/) {
        state_ = State::kProbeBw;
        cycle_index_ = 2;  // start in a cruise phase
        pacing_gain_ = kProbeBwGains[cycle_index_];
    }

    bool probe_rtt_done_recently(TimeNs now) const {
        return last_probe_rtt_ > 0 && now - last_probe_rtt_ < kRtPropWindow;
    }

    void apply_model(TcpFlow& flow, TimeNs /*now*/) {
        if (state_ == State::kProbeRtt) {
            cached_target_cwnd_ = 4.0;
        } else {
            const double gain = state_ == State::kStartup ? kStartupGain : kCwndGain;
            cached_target_cwnd_ = std::max(4.0, gain * bdp_segments(flow));
        }
        // Pin ssthresh to the model target too: the socket core copies
        // ssthresh into cwnd when leaving fast recovery, and BBR wants the
        // model to own the window at all times.
        flow.set_ssthresh(cached_target_cwnd_);
        flow.set_cwnd(cached_target_cwnd_);
    }

    enum class State { kStartup, kDrain, kProbeBw, kProbeRtt };

    State state_ = State::kStartup;
    double pacing_gain_ = kStartupGain;
    double full_bw_ = 0.0;
    int full_bw_rounds_ = 0;
    int cycle_index_ = 0;
    double cached_target_cwnd_ = 4.0;

    TimeNs rt_prop_ = std::numeric_limits<TimeNs>::max();
    TimeNs rt_prop_stamp_ = 0;
    TimeNs probe_rtt_until_ = 0;
    TimeNs last_probe_rtt_ = 0;

    struct DeliveryPoint {
        TimeNs t;
        std::uint64_t snd_una;
    };

    /// Cumulative delivery at time `when` (latest history point <= when);
    /// false when the history does not reach back that far (no valid
    /// baseline -> the caller must skip the sample).
    bool delivered_at(TimeNs when, std::uint64_t* out, TimeNs* t_out) const {
        for (auto it = delivery_history_.rbegin(); it != delivery_history_.rend();
             ++it) {
            if (it->t <= when) {
                *out = it->snd_una;
                *t_out = it->t;
                return true;
            }
        }
        return false;
    }

    std::deque<BwSample> bw_samples_;
    std::deque<DeliveryPoint> delivery_history_;
    std::uint64_t round_count_ = 0;
    std::uint64_t next_round_seq_ = 0;
};

}  // namespace

std::unique_ptr<CongestionControl> make_bbr() { return std::make_unique<Bbr>(); }

}  // namespace hypatia::sim
