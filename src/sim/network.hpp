// The node container: creates nodes and devices and wires packet
// delivery between them. Topology-agnostic — the core library's
// LeoNetwork builder (src/core) instantiates it from a constellation.
#pragma once

#include <memory>
#include <vector>

#include "src/sim/node.hpp"
#include "src/sim/simulator.hpp"

namespace hypatia::sim {

class Network {
  public:
    explicit Network(Simulator& sim) : sim_(sim) {}

    /// Creates `count` nodes with ids 0..count-1 (call once).
    void create_nodes(int count);

    Node& node(int id) { return *nodes_.at(static_cast<std::size_t>(id)); }
    const Node& node(int id) const { return *nodes_.at(static_cast<std::size_t>(id)); }
    int num_nodes() const { return static_cast<int>(nodes_.size()); }
    Simulator& simulator() { return sim_; }

    /// Adds the two unidirectional devices of one ISL (a<->b).
    /// `link_up` (optional) is the fault probe both devices consult; see
    /// sim::LinkUpFn.
    void add_isl(int a, int b, double rate_bps, std::size_t queue_capacity,
                 DelayModel delay, LinkUpFn link_up = nullptr);

    /// Adds the single GSL device of node `n`.
    void add_gsl(int n, double rate_bps, std::size_t queue_capacity, DelayModel delay,
                 LinkUpFn link_up = nullptr);

    /// All devices, for utilization accounting.
    const std::vector<std::unique_ptr<NetDevice>>& devices() const { return devices_; }

    /// Aggregate drop counters across all nodes/devices.
    std::uint64_t total_queue_drops() const;
    std::uint64_t total_no_route_drops() const;

  private:
    NetDevice& make_device(int owner, double rate_bps, std::size_t queue_capacity,
                           DelayModel delay, int fixed_peer, LinkUpFn link_up);

    Simulator& sim_;
    std::vector<std::unique_ptr<Node>> nodes_;
    std::vector<std::unique_ptr<NetDevice>> devices_;
};

}  // namespace hypatia::sim
