// Deterministic fault injection. A FaultSchedule is a reproducible
// timeline of outages — satellite hard failures, per-ISL link cuts, and
// ground-station (GSL) outages — generated from a seeded model or
// loaded from a CSV scenario file. The schedule is immutable once
// built; every consumer (snapshot construction, the snapshot refresher,
// flowsim, the packet simulator) asks the same point queries, so all
// layers observe one consistent failure state at any instant.
//
// Determinism contract: generation draws from per-entity RNG streams
// seeded by hash(seed, kind, a, b) — the timeline for one entity never
// depends on how many other entities exist or on iteration order, and
// two runs with the same spec are byte-identical at any thread count.
//
// Time base: outage times live in the *orbit time* base (the time handed
// to build_snapshot / mobility), not wall-clock sim time. Consumers that
// run in sim time convert via their start-offset first, so a frozen
// scenario observes a constant fault state, matching how it observes a
// constant topology.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/orbit/ground_station.hpp"
#include "src/topology/isl.hpp"
#include "src/util/units.hpp"

namespace hypatia::fault {

enum class FaultKind : std::uint8_t {
    kSatellite = 0,      // whole satellite down: all its ISLs and GSLs
    kIsl = 1,            // one inter-satellite link cut (both directions)
    kGroundStation = 2,  // GS outage: all its GSLs down
};

/// "sat" / "isl" / "gs" — the tokens used by the CSV scenario format.
const char* fault_kind_name(FaultKind kind);
std::optional<FaultKind> fault_kind_from_name(const std::string& name);

/// One outage interval, half-open [start, end) in orbit-time ns.
/// `a` is the satellite id (kSatellite), the lower node id of the ISL
/// pair (kIsl), or the ground-station index (kGroundStation). `b` is the
/// ISL peer satellite id, or -1 for the other kinds.
struct FaultEvent {
    FaultKind kind = FaultKind::kSatellite;
    int a = -1;
    int b = -1;
    TimeNs start = 0;
    TimeNs end = 0;
};

/// Parameters of the seeded fault model. Each entity class runs an
/// independent MTBF/MTTR renewal process (exponential up-times with the
/// given mean, exponential repair times); an MTBF of 0 disables the
/// class. kill_frac additionally fails a deterministic pseudo-random
/// fraction of the class permanently from t = 0 (hard failures — the
/// "kill 5% of the constellation" experiments). Regional outages are a
/// Poisson process of events that take down every ground station within
/// radius of a uniformly random epicentre — correlated failures that
/// compose with (and degrade independently of) the weather model.
struct FaultConfig {
    std::uint64_t seed = 1;
    /// Timeline horizon: renewal processes are materialized on
    /// [0, horizon); queries past the horizon see only hard failures.
    TimeNs horizon = 2LL * 3600LL * kNsPerSec;

    double sat_mtbf_s = 0.0;
    double sat_mttr_s = 120.0;
    double isl_mtbf_s = 0.0;
    double isl_mttr_s = 60.0;
    double gs_mtbf_s = 0.0;
    double gs_mttr_s = 300.0;

    double sat_kill_frac = 0.0;
    double isl_kill_frac = 0.0;
    double gs_kill_frac = 0.0;

    double region_per_hour = 0.0;
    double region_radius_km = 1000.0;
    double region_mttr_s = 600.0;
};

/// How to obtain a schedule: either generate from a FaultConfig or load
/// a CSV scenario file. Parsed from HYPATIA_FAULTS (or embedded in a
/// core::Scenario).
struct FaultSpec {
    std::optional<FaultConfig> config;
    std::string csv_path;

    bool empty() const { return !config.has_value() && csv_path.empty(); }
};

/// Parses a HYPATIA_FAULTS value. Two forms:
///   "file:<path>"             — load the CSV scenario at <path>
///   "key=value,key=value,..." — a FaultConfig; keys are seed,
///       horizon_s, sat_mtbf_s, sat_mttr_s, isl_mtbf_s, isl_mttr_s,
///       gs_mtbf_s, gs_mttr_s, sat_kill_frac, isl_kill_frac,
///       gs_kill_frac, region_per_hour, region_radius_km, region_mttr_s
/// Throws std::invalid_argument with a descriptive message on malformed
/// input.
FaultSpec parse_fault_spec(const std::string& text);

/// Reads HYPATIA_FAULTS. Unset or empty returns nullopt; a malformed
/// value warns on stderr once and returns nullopt (a bad env var
/// disables fault injection rather than crashing the run, matching the
/// HYPATIA_TRACE convention).
std::optional<FaultSpec> spec_from_env();

/// One fault-state transition instant: an outage beginning (`down`)
/// or ending. The flight-recorder hooks stream these as simulation
/// time crosses them, so the timeline reconstructor can attribute path
/// changes to the outage that caused them.
struct FaultTransition {
    TimeNs t = 0;
    FaultKind kind = FaultKind::kSatellite;
    int a = -1;
    int b = -1;
    bool down = false;
};

/// Immutable outage timeline with O(log outages-per-entity) point
/// queries. Thread-safe for concurrent reads after construction.
class FaultSchedule {
  public:
    FaultSchedule() = default;

    /// Deterministically generates the timeline for `config` over a
    /// constellation of `num_satellites` satellites, the given ISL list,
    /// and ground stations (positions are used for regional outages).
    static FaultSchedule generate(const FaultConfig& config, int num_satellites,
                                  const std::vector<topo::Isl>& isls,
                                  const std::vector<orbit::GroundStation>& ground_stations);

    /// Builds a schedule from an explicit event list (tests, scenarios).
    /// Events may overlap; they are merged per entity. Throws on ids
    /// outside [0, num_satellites) / [0, num_ground_stations).
    static FaultSchedule from_events(std::vector<FaultEvent> events, int num_satellites,
                                     int num_ground_stations);

    /// Loads a CSV scenario: header "kind,a,b,start_ns,end_ns", one
    /// event per row, kind in {sat, isl, gs}, b empty or -1 for non-ISL
    /// rows. Throws std::runtime_error with file/line context on
    /// malformed rows.
    static FaultSchedule load_csv(const std::string& path, int num_satellites,
                                  int num_ground_stations);

    /// Resolves a FaultSpec (generate or load). An empty spec yields an
    /// empty schedule.
    static FaultSchedule from_spec(const FaultSpec& spec, int num_satellites,
                                   const std::vector<topo::Isl>& isls,
                                   const std::vector<orbit::GroundStation>& ground_stations);

    /// Writes the canonical event list in the load_csv format.
    void save_csv(const std::string& path) const;

    bool empty() const { return events_.empty(); }
    int num_satellites() const { return num_satellites_; }
    int num_ground_stations() const { return num_gs_; }

    /// Canonical event list, sorted by (start, kind, a, b, end). The
    /// merged per-entity intervals, not the raw generator draws, so a
    /// save/load round trip is the identity.
    const std::vector<FaultEvent>& events() const { return events_; }

    // --- point queries (orbit-time t) ---------------------------------
    bool satellite_down(int sat, TimeNs t) const;
    bool isl_down(int sat_a, int sat_b, TimeNs t) const;
    bool gs_down(int gs_index, TimeNs t) const;

    /// Directed-hop health between node ids in the routing/packet node
    /// space (satellites [0, num_satellites), then ground stations): the
    /// hop is up iff both endpoints are alive and, for a sat-sat hop,
    /// the ISL itself is not cut. Symmetric in (from, to).
    bool link_up(int from, int to, TimeNs t) const;

    /// Fills `out` (resized to num_satellites) with 1 for each satellite
    /// down at `t`. One pass per snapshot beats per-edge binary searches.
    void fill_satellites_down(TimeNs t, std::vector<char>& out) const;

    /// Number of entities of `kind` down at `t` (gauges, bench curves).
    std::size_t down_count(FaultKind kind, TimeNs t) const;

    /// Appends every fault-state transition instant strictly inside
    /// (t0, t1), ascending. Consumers split their epochs at these
    /// boundaries so a path severed mid-epoch is observed, not skipped.
    void change_times_in(TimeNs t0, TimeNs t1, std::vector<TimeNs>& out) const;

    /// Appends every per-entity transition (outage start / end) in the
    /// half-open window (t0, t1], ascending by (t, kind, a, b). The
    /// epoch-stepped consumers call this once per step with the window
    /// they just crossed and hand the result to the flight recorder.
    void transitions_in(TimeNs t0, TimeNs t1, std::vector<FaultTransition>& out) const;

  private:
    struct Outage {
        TimeNs start;
        TimeNs end;
    };
    using Timeline = std::vector<Outage>;  // sorted, disjoint, half-open

    static bool down_at(const Timeline& timeline, TimeNs t);
    static std::uint64_t isl_key(int sat_a, int sat_b);
    /// Sorts, merges overlapping intervals per entity, rebuilds the
    /// canonical event list and the transition-time index.
    void index_events(std::vector<FaultEvent> events);

    int num_satellites_ = 0;
    int num_gs_ = 0;
    std::vector<FaultEvent> events_;
    std::vector<Timeline> sat_;  // size num_satellites_ (empty timelines allowed)
    std::vector<Timeline> gs_;   // size num_gs_
    std::unordered_map<std::uint64_t, Timeline> isl_;
    std::vector<TimeNs> transitions_;  // sorted unique starts + ends
};

/// Streams every transition of `schedule` in the orbit-time window
/// (t0, t1] into the flight recorder as kFaultDown / kFaultUp events,
/// each stamped t + record_offset (consumers recording in sim time pass
/// -start_offset). The shared hook of the epoch-stepped consumers.
void record_transitions(const FaultSchedule& schedule, TimeNs t0, TimeNs t1,
                        TimeNs record_offset = 0);

}  // namespace hypatia::fault
