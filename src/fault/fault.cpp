#include "src/fault/fault.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <random>
#include <sstream>
#include <stdexcept>
#include <tuple>

#include "src/obs/recorder.hpp"
#include "src/orbit/coords.hpp"

namespace hypatia::fault {

namespace {

constexpr TimeNs kForever = std::numeric_limits<TimeNs>::max();

// RNG stream ids: each (purpose, entity) pair owns an independent
// stream, so one entity's timeline never depends on another's draws.
constexpr std::uint64_t kStreamSatRenewal = 1;
constexpr std::uint64_t kStreamIslRenewal = 2;
constexpr std::uint64_t kStreamGsRenewal = 3;
constexpr std::uint64_t kStreamSatKill = 4;
constexpr std::uint64_t kStreamIslKill = 5;
constexpr std::uint64_t kStreamGsKill = 6;
constexpr std::uint64_t kStreamRegion = 7;

std::uint64_t mix64(std::uint64_t x) {
    // splitmix64 finalizer: cheap, full-avalanche.
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

std::mt19937_64 entity_rng(std::uint64_t seed, std::uint64_t stream, int a, int b) {
    std::uint64_t h = mix64(seed ^ mix64(stream));
    h = mix64(h ^ static_cast<std::uint64_t>(a + 1));
    h = mix64(h ^ static_cast<std::uint64_t>(b + 1));
    return std::mt19937_64(h);
}

// Uniform in [0, 1) from the top 53 bits — exact and portable, unlike
// std::uniform_real_distribution whose output is implementation-defined.
double uniform01(std::mt19937_64& rng) {
    return static_cast<double>(rng() >> 11) * 0x1.0p-53;
}

// Exponential with the given mean; std::exponential_distribution is
// implementation-defined, this formula is not.
double exp_draw(std::mt19937_64& rng, double mean) {
    return -mean * std::log1p(-uniform01(rng));
}

// One uniform draw from a fresh per-entity stream (hard-kill lottery).
double kill_draw(std::uint64_t seed, std::uint64_t stream, int a, int b) {
    auto rng = entity_rng(seed, stream, a, b);
    return uniform01(rng);
}

// One entity's alternating up/down renewal process on [0, horizon).
void renewal_timeline(std::mt19937_64 rng, double mtbf_s, double mttr_s,
                      TimeNs horizon, FaultKind kind, int a, int b,
                      std::vector<FaultEvent>& out) {
    if (mtbf_s <= 0.0 || mttr_s <= 0.0) return;
    const double horizon_s = ns_to_seconds(horizon);
    double t = 0.0;
    for (;;) {
        t += exp_draw(rng, mtbf_s);
        if (t >= horizon_s) return;
        const double repair = exp_draw(rng, mttr_s);
        const TimeNs start = seconds_to_ns(t);
        const TimeNs end = seconds_to_ns(t + repair);
        if (end > start) out.push_back({kind, a, b, start, end});
        t += repair;
    }
}

std::string trim(const std::string& s) {
    const auto begin = s.find_first_not_of(" \t\r\n");
    if (begin == std::string::npos) return "";
    const auto end = s.find_last_not_of(" \t\r\n");
    return s.substr(begin, end - begin + 1);
}

double parse_number(const std::string& key, const std::string& value) {
    std::size_t used = 0;
    double parsed = 0.0;
    try {
        parsed = std::stod(value, &used);
    } catch (const std::exception&) {
        throw std::invalid_argument("fault spec: value of '" + key +
                                    "' is not a number: '" + value + "'");
    }
    if (used != value.size() || !std::isfinite(parsed)) {
        throw std::invalid_argument("fault spec: value of '" + key +
                                    "' is not a number: '" + value + "'");
    }
    return parsed;
}

}  // namespace

const char* fault_kind_name(FaultKind kind) {
    switch (kind) {
        case FaultKind::kSatellite: return "sat";
        case FaultKind::kIsl: return "isl";
        case FaultKind::kGroundStation: return "gs";
    }
    return "?";
}

std::optional<FaultKind> fault_kind_from_name(const std::string& name) {
    if (name == "sat") return FaultKind::kSatellite;
    if (name == "isl") return FaultKind::kIsl;
    if (name == "gs") return FaultKind::kGroundStation;
    return std::nullopt;
}

FaultSpec parse_fault_spec(const std::string& text) {
    FaultSpec spec;
    const std::string trimmed = trim(text);
    if (trimmed.empty()) return spec;
    if (trimmed.rfind("file:", 0) == 0) {
        spec.csv_path = trim(trimmed.substr(5));
        if (spec.csv_path.empty()) {
            throw std::invalid_argument("fault spec: 'file:' with no path");
        }
        return spec;
    }
    FaultConfig config;
    std::stringstream stream(trimmed);
    std::string item;
    while (std::getline(stream, item, ',')) {
        item = trim(item);
        if (item.empty()) continue;
        const auto eq = item.find('=');
        if (eq == std::string::npos) {
            throw std::invalid_argument("fault spec: expected key=value, got '" +
                                        item + "'");
        }
        const std::string key = trim(item.substr(0, eq));
        const std::string value = trim(item.substr(eq + 1));
        const double v = parse_number(key, value);
        if (v < 0.0) {
            throw std::invalid_argument("fault spec: '" + key +
                                        "' must be non-negative");
        }
        if (key == "seed") {
            config.seed = static_cast<std::uint64_t>(v);
        } else if (key == "horizon_s") {
            config.horizon = seconds_to_ns(v);
        } else if (key == "sat_mtbf_s") {
            config.sat_mtbf_s = v;
        } else if (key == "sat_mttr_s") {
            config.sat_mttr_s = v;
        } else if (key == "isl_mtbf_s") {
            config.isl_mtbf_s = v;
        } else if (key == "isl_mttr_s") {
            config.isl_mttr_s = v;
        } else if (key == "gs_mtbf_s") {
            config.gs_mtbf_s = v;
        } else if (key == "gs_mttr_s") {
            config.gs_mttr_s = v;
        } else if (key == "sat_kill_frac" || key == "isl_kill_frac" ||
                   key == "gs_kill_frac") {
            if (v > 1.0) {
                throw std::invalid_argument("fault spec: '" + key +
                                            "' must be in [0, 1]");
            }
            if (key == "sat_kill_frac") config.sat_kill_frac = v;
            if (key == "isl_kill_frac") config.isl_kill_frac = v;
            if (key == "gs_kill_frac") config.gs_kill_frac = v;
        } else if (key == "region_per_hour") {
            config.region_per_hour = v;
        } else if (key == "region_radius_km") {
            config.region_radius_km = v;
        } else if (key == "region_mttr_s") {
            config.region_mttr_s = v;
        } else {
            throw std::invalid_argument("fault spec: unknown key '" + key + "'");
        }
    }
    spec.config = config;
    return spec;
}

std::optional<FaultSpec> spec_from_env() {
    const char* raw = std::getenv("HYPATIA_FAULTS");
    if (raw == nullptr || raw[0] == '\0') return std::nullopt;
    try {
        FaultSpec spec = parse_fault_spec(raw);
        if (spec.empty()) return std::nullopt;
        return spec;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "hypatia: ignoring HYPATIA_FAULTS: %s\n", e.what());
        return std::nullopt;
    }
}

std::uint64_t FaultSchedule::isl_key(int sat_a, int sat_b) {
    const auto lo = static_cast<std::uint64_t>(std::min(sat_a, sat_b));
    const auto hi = static_cast<std::uint64_t>(std::max(sat_a, sat_b));
    return (lo << 32) | hi;
}

bool FaultSchedule::down_at(const Timeline& timeline, TimeNs t) {
    // Last interval with start <= t; down iff t precedes its end.
    auto it = std::upper_bound(
        timeline.begin(), timeline.end(), t,
        [](TimeNs value, const Outage& o) { return value < o.start; });
    if (it == timeline.begin()) return false;
    return t < std::prev(it)->end;
}

void FaultSchedule::index_events(std::vector<FaultEvent> events) {
    sat_.assign(static_cast<std::size_t>(num_satellites_), {});
    gs_.assign(static_cast<std::size_t>(num_gs_), {});
    isl_.clear();
    // Group raw events into per-entity timelines, then merge overlaps.
    for (const FaultEvent& e : events) {
        if (e.end <= e.start) continue;
        switch (e.kind) {
            case FaultKind::kSatellite:
                sat_[static_cast<std::size_t>(e.a)].push_back({e.start, e.end});
                break;
            case FaultKind::kIsl:
                isl_[isl_key(e.a, e.b)].push_back({e.start, e.end});
                break;
            case FaultKind::kGroundStation:
                gs_[static_cast<std::size_t>(e.a)].push_back({e.start, e.end});
                break;
        }
    }
    const auto merge = [](Timeline& timeline) {
        if (timeline.empty()) return;
        std::sort(timeline.begin(), timeline.end(),
                  [](const Outage& a, const Outage& b) {
                      return a.start != b.start ? a.start < b.start : a.end < b.end;
                  });
        Timeline merged;
        merged.push_back(timeline.front());
        for (std::size_t i = 1; i < timeline.size(); ++i) {
            if (timeline[i].start <= merged.back().end) {
                merged.back().end = std::max(merged.back().end, timeline[i].end);
            } else {
                merged.push_back(timeline[i]);
            }
        }
        timeline.swap(merged);
    };
    for (Timeline& timeline : sat_) merge(timeline);
    for (Timeline& timeline : gs_) merge(timeline);
    for (auto& [key, timeline] : isl_) merge(timeline);

    // Canonical event list + transition index, rebuilt from the merged
    // timelines so a save/load round trip is the identity.
    events_.clear();
    transitions_.clear();
    const auto emit = [this](FaultKind kind, int a, int b, const Timeline& timeline) {
        for (const Outage& o : timeline) {
            events_.push_back({kind, a, b, o.start, o.end});
            transitions_.push_back(o.start);
            if (o.end != kForever) transitions_.push_back(o.end);
        }
    };
    for (int s = 0; s < num_satellites_; ++s) {
        emit(FaultKind::kSatellite, s, -1, sat_[static_cast<std::size_t>(s)]);
    }
    std::vector<std::uint64_t> keys;
    keys.reserve(isl_.size());
    for (const auto& [key, timeline] : isl_) keys.push_back(key);
    std::sort(keys.begin(), keys.end());
    for (const std::uint64_t key : keys) {
        emit(FaultKind::kIsl, static_cast<int>(key >> 32),
             static_cast<int>(key & 0xffffffffULL), isl_.at(key));
    }
    for (int g = 0; g < num_gs_; ++g) {
        emit(FaultKind::kGroundStation, g, -1, gs_[static_cast<std::size_t>(g)]);
    }
    std::sort(events_.begin(), events_.end(),
              [](const FaultEvent& a, const FaultEvent& b) {
                  if (a.start != b.start) return a.start < b.start;
                  if (a.kind != b.kind) return a.kind < b.kind;
                  if (a.a != b.a) return a.a < b.a;
                  if (a.b != b.b) return a.b < b.b;
                  return a.end < b.end;
              });
    std::sort(transitions_.begin(), transitions_.end());
    transitions_.erase(std::unique(transitions_.begin(), transitions_.end()),
                       transitions_.end());
}

FaultSchedule FaultSchedule::from_events(std::vector<FaultEvent> events,
                                         int num_satellites, int num_ground_stations) {
    for (const FaultEvent& e : events) {
        const bool sat_ok = e.a >= 0 && e.a < num_satellites;
        const bool valid =
            (e.kind == FaultKind::kSatellite && sat_ok && e.b == -1) ||
            (e.kind == FaultKind::kIsl && sat_ok && e.b >= 0 &&
             e.b < num_satellites && e.a != e.b) ||
            (e.kind == FaultKind::kGroundStation && e.a >= 0 &&
             e.a < num_ground_stations && e.b == -1);
        if (!valid) {
            throw std::invalid_argument(
                std::string("fault event: invalid ") + fault_kind_name(e.kind) +
                " ids (" + std::to_string(e.a) + ", " + std::to_string(e.b) + ")");
        }
        if (e.end < e.start) {
            throw std::invalid_argument("fault event: end precedes start");
        }
    }
    FaultSchedule schedule;
    schedule.num_satellites_ = num_satellites;
    schedule.num_gs_ = num_ground_stations;
    schedule.index_events(std::move(events));
    return schedule;
}

FaultSchedule FaultSchedule::generate(
    const FaultConfig& config, int num_satellites, const std::vector<topo::Isl>& isls,
    const std::vector<orbit::GroundStation>& ground_stations) {
    std::vector<FaultEvent> events;
    const auto num_gs = static_cast<int>(ground_stations.size());

    for (int s = 0; s < num_satellites; ++s) {
        renewal_timeline(entity_rng(config.seed, kStreamSatRenewal, s, -1),
                         config.sat_mtbf_s, config.sat_mttr_s, config.horizon,
                         FaultKind::kSatellite, s, -1, events);
        if (config.sat_kill_frac > 0.0 &&
            kill_draw(config.seed, kStreamSatKill, s, -1) <
                config.sat_kill_frac) {
            events.push_back({FaultKind::kSatellite, s, -1, 0, kForever});
        }
    }
    for (const topo::Isl& isl : isls) {
        const int a = std::min(isl.sat_a, isl.sat_b);
        const int b = std::max(isl.sat_a, isl.sat_b);
        renewal_timeline(entity_rng(config.seed, kStreamIslRenewal, a, b),
                         config.isl_mtbf_s, config.isl_mttr_s, config.horizon,
                         FaultKind::kIsl, a, b, events);
        if (config.isl_kill_frac > 0.0 &&
            kill_draw(config.seed, kStreamIslKill, a, b) <
                config.isl_kill_frac) {
            events.push_back({FaultKind::kIsl, a, b, 0, kForever});
        }
    }
    for (int g = 0; g < num_gs; ++g) {
        renewal_timeline(entity_rng(config.seed, kStreamGsRenewal, g, -1),
                         config.gs_mtbf_s, config.gs_mttr_s, config.horizon,
                         FaultKind::kGroundStation, g, -1, events);
        if (config.gs_kill_frac > 0.0 &&
            kill_draw(config.seed, kStreamGsKill, g, -1) <
                config.gs_kill_frac) {
            events.push_back({FaultKind::kGroundStation, g, -1, 0, kForever});
        }
    }

    // Correlated regional outages: a Poisson process of epicentres, each
    // taking down every ground station inside the radius.
    if (config.region_per_hour > 0.0 && num_gs > 0) {
        auto rng = entity_rng(config.seed, kStreamRegion, 0, -1);
        const double mean_gap_s = 3600.0 / config.region_per_hour;
        const double horizon_s = ns_to_seconds(config.horizon);
        double t = 0.0;
        for (;;) {
            t += exp_draw(rng, mean_gap_s);
            if (t >= horizon_s) break;
            orbit::Geodetic epicentre;
            // Uniform on the sphere: lat = asin(2u - 1), lon uniform.
            epicentre.latitude_deg =
                std::asin(2.0 * uniform01(rng) - 1.0) * 180.0 / M_PI;
            epicentre.longitude_deg = -180.0 + 360.0 * uniform01(rng);
            const double repair = exp_draw(rng, config.region_mttr_s);
            const TimeNs start = seconds_to_ns(t);
            const TimeNs end = seconds_to_ns(t + repair);
            if (end <= start) continue;
            for (int g = 0; g < num_gs; ++g) {
                const double d = orbit::great_circle_distance_km(
                    epicentre, ground_stations[static_cast<std::size_t>(g)].geodetic());
                if (d <= config.region_radius_km) {
                    events.push_back({FaultKind::kGroundStation, g, -1, start, end});
                }
            }
        }
    }

    return from_events(std::move(events), num_satellites, num_gs);
}

FaultSchedule FaultSchedule::load_csv(const std::string& path, int num_satellites,
                                      int num_ground_stations) {
    std::ifstream in(path);
    if (!in) {
        throw std::runtime_error("fault csv: cannot open '" + path + "'");
    }
    std::vector<FaultEvent> events;
    std::string line;
    int line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        const std::string row = trim(line);
        if (row.empty() || row[0] == '#') continue;
        if (line_no == 1 && row.rfind("kind", 0) == 0) continue;  // header
        std::stringstream fields(row);
        std::string kind_s, a_s, b_s, start_s, end_s;
        if (!std::getline(fields, kind_s, ',') || !std::getline(fields, a_s, ',') ||
            !std::getline(fields, b_s, ',') || !std::getline(fields, start_s, ',') ||
            !std::getline(fields, end_s)) {
            throw std::runtime_error("fault csv " + path + ":" +
                                     std::to_string(line_no) +
                                     ": expected kind,a,b,start_ns,end_ns");
        }
        const auto kind = fault_kind_from_name(trim(kind_s));
        if (!kind) {
            throw std::runtime_error("fault csv " + path + ":" +
                                     std::to_string(line_no) + ": unknown kind '" +
                                     trim(kind_s) + "' (want sat|isl|gs)");
        }
        FaultEvent e;
        e.kind = *kind;
        const auto parse_field = [&](const std::string& raw, const char* what,
                                     std::int64_t fallback,
                                     bool allow_empty) -> std::int64_t {
            const std::string v = trim(raw);
            if (v.empty()) {
                if (allow_empty) return fallback;
                throw std::runtime_error("fault csv " + path + ":" +
                                         std::to_string(line_no) + ": empty " + what);
            }
            try {
                std::size_t used = 0;
                const std::int64_t parsed = std::stoll(v, &used);
                if (used != v.size()) throw std::invalid_argument(v);
                return parsed;
            } catch (const std::exception&) {
                throw std::runtime_error("fault csv " + path + ":" +
                                         std::to_string(line_no) + ": bad " + what +
                                         " '" + v + "'");
            }
        };
        e.a = static_cast<int>(parse_field(a_s, "entity id", -1, false));
        e.b = static_cast<int>(parse_field(b_s, "peer id", -1, true));
        e.start = parse_field(start_s, "start_ns", 0, false);
        e.end = parse_field(end_s, "end_ns", 0, false);
        events.push_back(e);
    }
    try {
        return from_events(std::move(events), num_satellites, num_ground_stations);
    } catch (const std::invalid_argument& e) {
        throw std::runtime_error("fault csv " + path + ": " + e.what());
    }
}

FaultSchedule FaultSchedule::from_spec(
    const FaultSpec& spec, int num_satellites, const std::vector<topo::Isl>& isls,
    const std::vector<orbit::GroundStation>& ground_stations) {
    if (!spec.csv_path.empty()) {
        return load_csv(spec.csv_path, num_satellites,
                        static_cast<int>(ground_stations.size()));
    }
    if (spec.config.has_value()) {
        return generate(*spec.config, num_satellites, isls, ground_stations);
    }
    FaultSchedule empty;
    empty.num_satellites_ = num_satellites;
    empty.num_gs_ = static_cast<int>(ground_stations.size());
    empty.sat_.assign(static_cast<std::size_t>(num_satellites), {});
    empty.gs_.assign(ground_stations.size(), {});
    return empty;
}

void FaultSchedule::save_csv(const std::string& path) const {
    std::ofstream out(path);
    if (!out) {
        throw std::runtime_error("fault csv: cannot write '" + path + "'");
    }
    out << "kind,a,b,start_ns,end_ns\n";
    for (const FaultEvent& e : events_) {
        out << fault_kind_name(e.kind) << ',' << e.a << ',' << e.b << ',' << e.start
            << ',' << e.end << '\n';
    }
}

bool FaultSchedule::satellite_down(int sat, TimeNs t) const {
    if (sat < 0 || sat >= num_satellites_) return false;
    return down_at(sat_[static_cast<std::size_t>(sat)], t);
}

bool FaultSchedule::isl_down(int sat_a, int sat_b, TimeNs t) const {
    if (isl_.empty()) return false;
    const auto it = isl_.find(isl_key(sat_a, sat_b));
    return it != isl_.end() && down_at(it->second, t);
}

bool FaultSchedule::gs_down(int gs_index, TimeNs t) const {
    if (gs_index < 0 || gs_index >= num_gs_) return false;
    return down_at(gs_[static_cast<std::size_t>(gs_index)], t);
}

bool FaultSchedule::link_up(int from, int to, TimeNs t) const {
    const auto node_up = [&](int node) {
        return node < num_satellites_ ? !satellite_down(node, t)
                                      : !gs_down(node - num_satellites_, t);
    };
    if (!node_up(from) || !node_up(to)) return false;
    if (from < num_satellites_ && to < num_satellites_) {
        return !isl_down(from, to, t);
    }
    return true;
}

void FaultSchedule::fill_satellites_down(TimeNs t, std::vector<char>& out) const {
    out.assign(static_cast<std::size_t>(num_satellites_), 0);
    for (int s = 0; s < num_satellites_; ++s) {
        const Timeline& timeline = sat_[static_cast<std::size_t>(s)];
        if (!timeline.empty() && down_at(timeline, t)) {
            out[static_cast<std::size_t>(s)] = 1;
        }
    }
}

std::size_t FaultSchedule::down_count(FaultKind kind, TimeNs t) const {
    std::size_t n = 0;
    switch (kind) {
        case FaultKind::kSatellite:
            for (const Timeline& timeline : sat_) n += down_at(timeline, t);
            break;
        case FaultKind::kIsl:
            for (const auto& [key, timeline] : isl_) n += down_at(timeline, t);
            break;
        case FaultKind::kGroundStation:
            for (const Timeline& timeline : gs_) n += down_at(timeline, t);
            break;
    }
    return n;
}

void FaultSchedule::change_times_in(TimeNs t0, TimeNs t1,
                                    std::vector<TimeNs>& out) const {
    auto it = std::upper_bound(transitions_.begin(), transitions_.end(), t0);
    for (; it != transitions_.end() && *it < t1; ++it) out.push_back(*it);
}

void FaultSchedule::transitions_in(TimeNs t0, TimeNs t1,
                                   std::vector<FaultTransition>& out) const {
    const std::size_t first = out.size();
    for (const FaultEvent& ev : events_) {
        if (ev.start > t1) break;  // events_ is sorted by start
        if (ev.start > t0) {
            out.push_back({ev.start, ev.kind, ev.a, ev.b, /*down=*/true});
        }
        if (ev.end > t0 && ev.end <= t1) {
            out.push_back({ev.end, ev.kind, ev.a, ev.b, /*down=*/false});
        }
    }
    std::sort(out.begin() + static_cast<std::ptrdiff_t>(first), out.end(),
              [](const FaultTransition& lhs, const FaultTransition& rhs) {
                  return std::tie(lhs.t, lhs.kind, lhs.a, lhs.b, lhs.down) <
                         std::tie(rhs.t, rhs.kind, rhs.a, rhs.b, rhs.down);
              });
}

void record_transitions(const FaultSchedule& schedule, TimeNs t0, TimeNs t1,
                        TimeNs record_offset) {
    obs::FlightRecorder& recorder = obs::recorder();
    if (!recorder.enabled()) return;
    std::vector<FaultTransition> transitions;
    schedule.transitions_in(t0, t1, transitions);
    for (const FaultTransition& tr : transitions) {
        recorder.record(tr.down ? obs::EventKind::kFaultDown
                                : obs::EventKind::kFaultUp,
                        tr.t + record_offset, static_cast<std::int32_t>(tr.kind),
                        tr.a, tr.b);
    }
}

}  // namespace hypatia::fault
