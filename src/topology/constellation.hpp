// Constellation construction from shell parameters (the form the FCC/ITU
// filings use — Table 1 of the paper) and the preset registry for the
// three constellations the paper analyzes: Starlink, Kuiper, Telesat.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "src/orbit/kepler.hpp"
#include "src/orbit/sgp4.hpp"
#include "src/orbit/tle.hpp"
#include "src/orbit/time.hpp"

namespace hypatia::topo {

/// Which analytic theory propagates a shell's satellites. SGP4 covers
/// every LEO shell; orbits with periods >= 225 minutes (MEO/GEO — the
/// paper's section 7 GEO-LEO extension) fall outside SGP4's near-Earth
/// branch and use the Kepler+J2 propagator instead.
enum class PropagatorKind {
    kSgp4,
    kKeplerJ2,
};

/// One orbital shell: `num_orbits` circular orbits of `sats_per_orbit`
/// satellites at `altitude_km` / `inclination_deg`, RAANs spread uniformly
/// over 360 degrees, satellites uniformly spaced within each orbit.
/// Adjacent planes are staggered in mean anomaly by `phase_factor` of an
/// in-orbit slot, cumulatively (0.5 alternates 0 / half-slot per plane —
/// the checkerboard of Hypatia's phase_diff=True generator).
struct ShellParams {
    std::string name;
    double altitude_km = 0.0;
    int num_orbits = 0;
    int sats_per_orbit = 0;
    double inclination_deg = 0.0;
    double min_elevation_deg = 25.0;  // GS-satellite visibility cone (Fig. 1)
    double phase_factor = 0.5;        // inter-plane stagger, in slots
    PropagatorKind propagator = PropagatorKind::kSgp4;

    int num_satellites() const { return num_orbits * sats_per_orbit; }

    /// Maximum GS-satellite slant range under Hypatia's cone model: each
    /// satellite covers a ground disk of radius h / tan(l), so a GS may
    /// connect while its straight-line distance is at most
    /// sqrt((h/tan l)^2 + h^2), clamped to the line-of-sight horizon range
    /// sqrt((Re+h)^2 - Re^2) (relevant for Telesat's l = 10 deg, whose
    /// cone otherwise reaches beyond the horizon).
    double max_gsl_range_km() const;
};

/// A satellite of a built constellation: its shell-grid coordinates, the
/// generated TLE, and an initialized propagator.
struct Satellite {
    int id = 0;          // dense id in [0, num_satellites)
    int orbit = 0;       // plane index within the shell
    int index_in_orbit = 0;
    orbit::KeplerianElements kepler;
    orbit::Tle tle;
    PropagatorKind propagator_kind = PropagatorKind::kSgp4;
    std::optional<orbit::Sgp4> sgp4;  // engaged iff kind == kSgp4

    Satellite(int id, int orbit, int index_in_orbit, const orbit::KeplerianElements& kep,
              const orbit::Tle& tle, PropagatorKind kind)
        : id(id), orbit(orbit), index_in_orbit(index_in_orbit), kepler(kep), tle(tle),
          propagator_kind(kind) {
        if (kind == PropagatorKind::kSgp4) sgp4.emplace(tle.to_sgp4_elements());
    }

    /// Inertial (TEME-compatible) state at an absolute time.
    orbit::StateVector propagate(const orbit::JulianDate& at) const {
        if (propagator_kind == PropagatorKind::kSgp4) return sgp4->propagate(at);
        return orbit::propagate_kepler_j2(kepler, at);
    }
};

/// A built (single-shell) constellation. The paper's experiments all use
/// one shell at a time (S1, K1, T1); multi-shell studies can instantiate
/// several Constellations side by side.
class Constellation {
  public:
    /// Generates Kepler elements per satellite, converts them to TLEs
    /// (paper's TLE-generation step) and initializes SGP4 for each.
    Constellation(const ShellParams& params, const orbit::JulianDate& epoch);

    const ShellParams& params() const { return params_; }
    const orbit::JulianDate& epoch() const { return epoch_; }
    int num_satellites() const { return static_cast<int>(satellites_.size()); }
    const Satellite& satellite(int id) const { return satellites_.at(id); }
    const std::vector<Satellite>& satellites() const { return satellites_; }

    /// Dense id of the satellite at grid position (orbit, index).
    int sat_id(int orbit, int index_in_orbit) const {
        return orbit * params_.sats_per_orbit + index_in_orbit;
    }

  private:
    ShellParams params_;
    orbit::JulianDate epoch_;
    std::vector<Satellite> satellites_;
};

/// Preset registry: all shells of Table 1. Shell names: "starlink_s1" ..
/// "starlink_s5", "kuiper_k1" .. "kuiper_k3", "telesat_t1", "telesat_t2".
/// Minimum elevation angles follow the paper: Starlink 25 deg, Kuiper
/// 30 deg, Telesat 10 deg.
const std::vector<ShellParams>& table1_shells();

/// Looks up one Table-1 shell by name; throws std::out_of_range if absent.
const ShellParams& shell_by_name(const std::string& name);

/// The "full sky" preset: every Table-1 shell operated as one ShellGroup
/// (all five Starlink phase-1 shells, all three Kuiper shells, both
/// Telesat shells — 9,316 satellites total). Cross-shell traffic passes
/// through the ground, per ShellGroup's ISL rule.
const std::vector<ShellParams>& full_sky_shells();

/// Starlink Gen2 per the 2021 FCC amendment (the configuration the 2022
/// partial grant authorizes), 29,988 satellites over nine shells:
///
///   | shell          | alt km | incl deg | orbits x sats |
///   |----------------|--------|----------|---------------|
///   | gen2_a1        |   340  |   53.0   |   48 x 110    |
///   | gen2_a2        |   345  |   46.0   |   48 x 110    |
///   | gen2_a3        |   350  |   38.0   |   48 x 110    |
///   | gen2_sso       |   360  |   96.9   |   30 x 120    |
///   | gen2_b1        |   525  |   53.0   |   28 x 120    |
///   | gen2_b2        |   530  |   43.0   |   28 x 120    |
///   | gen2_b3        |   535  |   33.0   |   28 x 120    |
///   | gen2_retro     |   604  |  148.0   |   12 x  12    |
///   | gen2_polar     |   614  |  115.7   |   18 x  18    |
///
/// Starlink's 25-degree minimum elevation and the +Grid / phase 0.5
/// conventions of Table 1 apply to every shell.
const std::vector<ShellParams>& starlink_gen2_shells();

/// Resolves a constellation name to its shell list: the multi-shell
/// presets "full_sky" and "starlink_gen2", or any single shell name
/// known to shell_by_name (returned as a one-element list). Throws
/// std::out_of_range for unknown names.
std::vector<ShellParams> constellation_shells(const std::string& name);

/// The constellation epoch used throughout: 2000-01-01 00:00:00 UTC.
orbit::JulianDate default_epoch();

/// A geostationary "shell": `num_satellites` satellites uniformly spaced
/// along the equatorial geostationary ring (h = 35,786 km). Propagated
/// with Kepler+J2 (GEO is outside SGP4's near-Earth branch). The paper's
/// section 2.4 GEO baseline (HughesNet/Viasat-class latency) and the
/// section 7 GEO-LEO extension build on this.
ShellParams geostationary_shell(int num_satellites, double min_elevation_deg = 25.0);

}  // namespace hypatia::topo
