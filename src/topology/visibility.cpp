#include "src/topology/visibility.hpp"

#include <algorithm>
#include <cmath>

namespace hypatia::topo {

namespace {

std::vector<SkyEntry> scan_sky(const orbit::GroundStation& gs,
                               const SatelliteMobility& mobility, TimeNs t,
                               double min_elevation_for_listing,
                               bool warm_reads = false) {
    // Connectability follows Hypatia's cone model: slant range at most
    // max_gsl_range_km() and the satellite above the horizon.
    //
    // Under the batch/SIMD kernels, fill the whole position cache with
    // one batched call up front: the per-satellite reads below then hit
    // the cache instead of issuing one SGP4 propagation each. Values
    // are bit-identical to on-demand fills (warm_cache contract), and
    // repeat scans at the same epoch short-circuit on the hit counter.
    if (mobility.kernel() != orbit::Sgp4Kernel::kScalar) mobility.warm_cache(t);
    const double max_range = mobility.constellation().params().max_gsl_range_km();
    std::vector<SkyEntry> out;
    const int n = mobility.num_satellites();
    const double horizon_range = horizon_range_km(mobility);
    for (int sat = 0; sat < n; ++sat) {
        const Vec3 pos = warm_reads ? mobility.position_ecef_warm(sat, t)
                                    : mobility.position_ecef(sat, t);
        // Cheap rejection: beyond line-of-sight range it cannot be above
        // the horizon (the +100 km pad absorbs ellipsoid effects).
        const double d = gs.ecef().distance_to(pos);
        if (d > horizon_range) continue;
        const auto look = orbit::look_angles(gs.geodetic(), gs.ecef(), pos);
        if (look.elevation_deg < min_elevation_for_listing) continue;
        out.push_back({sat, look.azimuth_deg, look.elevation_deg, look.range_km,
                       look.elevation_deg >= 0.0 && look.range_km <= max_range});
    }
    std::sort(out.begin(), out.end(),
              [](const SkyEntry& a, const SkyEntry& b) { return a.range_km < b.range_km; });
    return out;
}

}  // namespace

std::vector<SkyEntry> visible_satellites(const orbit::GroundStation& gs,
                                         const SatelliteMobility& mobility, TimeNs t) {
    auto all = scan_sky(gs, mobility, t, 0.0);
    std::erase_if(all, [](const SkyEntry& e) { return !e.connectable; });
    return all;
}

std::vector<SkyEntry> visible_satellites_warm(const orbit::GroundStation& gs,
                                              const SatelliteMobility& mobility,
                                              TimeNs t) {
    auto all = scan_sky(gs, mobility, t, 0.0, /*warm_reads=*/true);
    std::erase_if(all, [](const SkyEntry& e) { return !e.connectable; });
    return all;
}

std::vector<SkyEntry> sky_view(const orbit::GroundStation& gs,
                               const SatelliteMobility& mobility, TimeNs t) {
    return scan_sky(gs, mobility, t, 0.0);
}

bool has_coverage(const orbit::GroundStation& gs, const SatelliteMobility& mobility,
                  TimeNs t) {
    return !visible_satellites(gs, mobility, t).empty();
}

double horizon_range_km(const SatelliteMobility& mobility) {
    const double alt = mobility.constellation().params().altitude_km;
    return std::sqrt(alt * (alt + 2.0 * orbit::Wgs72::kEarthRadiusKm)) + 100.0;
}

}  // namespace hypatia::topo
