#include "src/topology/constellation.hpp"

#include <cmath>
#include <stdexcept>

namespace hypatia::topo {

Constellation::Constellation(const ShellParams& params, const orbit::JulianDate& epoch)
    : params_(params), epoch_(epoch) {
    if (params.num_orbits <= 0 || params.sats_per_orbit <= 0) {
        throw std::invalid_argument("constellation: orbits and sats/orbit must be positive");
    }
    satellites_.reserve(static_cast<std::size_t>(params.num_satellites()));
    const double raan_step = 360.0 / params.num_orbits;
    const double ma_step = 360.0 / params.sats_per_orbit;
    for (int o = 0; o < params.num_orbits; ++o) {
        for (int s = 0; s < params.sats_per_orbit; ++s) {
            const int id = o * params.sats_per_orbit + s;
            // Hypatia's phase_diff: odd orbits are shifted by half an
            // in-orbit slot (checkerboard). Expressed cumulatively as
            // phase_factor (in slots) per plane: 0.5 * o mod 1 alternates
            // 0 / half-slot exactly like the original generator.
            double ma = (s + o * params.phase_factor) * ma_step;
            ma = std::fmod(ma, 360.0);
            auto kep = orbit::KeplerianElements::circular(
                params.altitude_km, params.inclination_deg, o * raan_step, ma, epoch_);
            auto tle = orbit::Tle::from_kepler(kep, id + 1,
                                               params.name + "-" + std::to_string(id));
            satellites_.emplace_back(id, o, s, kep, tle, params.propagator);
        }
    }
}

double ShellParams::max_gsl_range_km() const {
    const double h = altitude_km;
    const double cone_radius = h / std::tan(min_elevation_deg * M_PI / 180.0);
    const double cone_range = std::sqrt(cone_radius * cone_radius + h * h);
    const double re = orbit::Wgs72::kEarthRadiusKm;
    const double horizon_range = std::sqrt((re + h) * (re + h) - re * re);
    return std::min(cone_range, horizon_range);
}

const std::vector<ShellParams>& table1_shells() {
    // Values straight from Table 1 of the paper; minimum elevation angles
    // from sections 2.2 and 5.1 (Starlink 25, Kuiper 30, Telesat 10).
    static const std::vector<ShellParams> shells = {
        {"starlink_s1", 550.0, 72, 22, 53.0, 25.0, 0.5},
        {"starlink_s2", 1110.0, 32, 50, 53.8, 25.0, 0.5},
        {"starlink_s3", 1130.0, 8, 50, 74.0, 25.0, 0.5},
        {"starlink_s4", 1275.0, 5, 75, 81.0, 25.0, 0.5},
        {"starlink_s5", 1325.0, 6, 75, 70.0, 25.0, 0.5},
        {"kuiper_k1", 630.0, 34, 34, 51.9, 30.0, 0.5},
        {"kuiper_k2", 610.0, 36, 36, 42.0, 30.0, 0.5},
        {"kuiper_k3", 590.0, 28, 28, 33.0, 30.0, 0.5},
        {"telesat_t1", 1015.0, 27, 13, 98.98, 10.0, 0.5},
        {"telesat_t2", 1325.0, 40, 33, 50.88, 10.0, 0.5},
    };
    return shells;
}

const ShellParams& shell_by_name(const std::string& name) {
    for (const auto& s : table1_shells()) {
        if (s.name == name) return s;
    }
    throw std::out_of_range("unknown shell: " + name);
}

const std::vector<ShellParams>& full_sky_shells() { return table1_shells(); }

const std::vector<ShellParams>& starlink_gen2_shells() {
    // The 2021 FCC amendment configuration (29,988 satellites). Elevation
    // and phasing follow the paper's Starlink conventions.
    static const std::vector<ShellParams> shells = {
        {"starlink_gen2_a1", 340.0, 48, 110, 53.0, 25.0, 0.5},
        {"starlink_gen2_a2", 345.0, 48, 110, 46.0, 25.0, 0.5},
        {"starlink_gen2_a3", 350.0, 48, 110, 38.0, 25.0, 0.5},
        {"starlink_gen2_sso", 360.0, 30, 120, 96.9, 25.0, 0.5},
        {"starlink_gen2_b1", 525.0, 28, 120, 53.0, 25.0, 0.5},
        {"starlink_gen2_b2", 530.0, 28, 120, 43.0, 25.0, 0.5},
        {"starlink_gen2_b3", 535.0, 28, 120, 33.0, 25.0, 0.5},
        {"starlink_gen2_retro", 604.0, 12, 12, 148.0, 25.0, 0.5},
        {"starlink_gen2_polar", 614.0, 18, 18, 115.7, 25.0, 0.5},
    };
    return shells;
}

std::vector<ShellParams> constellation_shells(const std::string& name) {
    if (name == "full_sky") return full_sky_shells();
    if (name == "starlink_gen2") return starlink_gen2_shells();
    return {shell_by_name(name)};
}

orbit::JulianDate default_epoch() {
    return orbit::julian_date_from_utc(2000, 1, 1, 0, 0, 0.0);
}

ShellParams geostationary_shell(int num_satellites, double min_elevation_deg) {
    ShellParams p;
    p.name = "geo_" + std::to_string(num_satellites);
    p.altitude_km = 35786.0;
    p.num_orbits = 1;
    p.sats_per_orbit = num_satellites;
    p.inclination_deg = 0.0;
    p.min_elevation_deg = min_elevation_deg;
    p.phase_factor = 0.0;
    p.propagator = PropagatorKind::kKeplerJ2;
    return p;
}

}  // namespace hypatia::topo
