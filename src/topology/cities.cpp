#include "src/topology/cities.hpp"

#include <stdexcept>

namespace hypatia::topo {

namespace {

struct CityRow {
    const char* name;
    double lat_deg;
    double lon_deg;
};

// The 100 most populous metropolitan areas (2020-era agglomeration
// estimates), population-ranked. Coordinates are city-centre approximations;
// the paper's behaviour (RTT fluctuation, path churn, congestion shifts)
// is insensitive to sub-degree coordinate precision.
constexpr CityRow kCities[] = {
    {"Tokyo", 35.6762, 139.6503},
    {"Delhi", 28.7041, 77.1025},
    {"Shanghai", 31.2304, 121.4737},
    {"Sao Paulo", -23.5505, -46.6333},
    {"Mexico City", 19.4326, -99.1332},
    {"Cairo", 30.0444, 31.2357},
    {"Mumbai", 19.0760, 72.8777},
    {"Beijing", 39.9042, 116.4074},
    {"Dhaka", 23.8103, 90.4125},
    {"Osaka", 34.6937, 135.5023},
    {"New York", 40.7128, -74.0060},
    {"Karachi", 24.8607, 67.0011},
    {"Buenos Aires", -34.6037, -58.3816},
    {"Chongqing", 29.4316, 106.9123},
    {"Istanbul", 41.0082, 28.9784},
    {"Kolkata", 22.5726, 88.3639},
    {"Manila", 14.5995, 120.9842},
    {"Lagos", 6.5244, 3.3792},
    {"Rio de Janeiro", -22.9068, -43.1729},
    {"Tianjin", 39.3434, 117.3616},
    {"Kinshasa", -4.4419, 15.2663},
    {"Guangzhou", 23.1291, 113.2644},
    {"Los Angeles", 34.0522, -118.2437},
    {"Moscow", 55.7558, 37.6173},
    {"Shenzhen", 22.5431, 114.0579},
    {"Lahore", 31.5204, 74.3587},
    {"Bangalore", 12.9716, 77.5946},
    {"Paris", 48.8566, 2.3522},
    {"Bogota", 4.7110, -74.0721},
    {"Jakarta", -6.2088, 106.8456},
    {"Chennai", 13.0827, 80.2707},
    {"Lima", -12.0464, -77.0428},
    {"Bangkok", 13.7563, 100.5018},
    {"Seoul", 37.5665, 126.9780},
    {"Nagoya", 35.1815, 136.9066},
    {"Hyderabad", 17.3850, 78.4867},
    {"London", 51.5074, -0.1278},
    {"Tehran", 35.6892, 51.3890},
    {"Chicago", 41.8781, -87.6298},
    {"Chengdu", 30.5728, 104.0668},
    {"Nanjing", 32.0603, 118.7969},
    {"Wuhan", 30.5928, 114.3055},
    {"Ho Chi Minh City", 10.8231, 106.6297},
    {"Luanda", -8.8390, 13.2894},
    {"Ahmedabad", 23.0225, 72.5714},
    {"Kuala Lumpur", 3.1390, 101.6869},
    {"Xian", 34.3416, 108.9398},
    {"Hong Kong", 22.3193, 114.1694},
    {"Dongguan", 23.0207, 113.7518},
    {"Hangzhou", 30.2741, 120.1551},
    {"Foshan", 23.0218, 113.1064},
    {"Shenyang", 41.8057, 123.4315},
    {"Riyadh", 24.7136, 46.6753},
    {"Baghdad", 33.3152, 44.3661},
    {"Santiago", -33.4489, -70.6693},
    {"Surat", 21.1702, 72.8311},
    {"Madrid", 40.4168, -3.7038},
    {"Suzhou", 31.2989, 120.5853},
    {"Pune", 18.5204, 73.8567},
    {"Harbin", 45.8038, 126.5349},
    {"Houston", 29.7604, -95.3698},
    {"Dallas", 32.7767, -96.7970},
    {"Toronto", 43.6532, -79.3832},
    {"Dar es Salaam", -6.7924, 39.2083},
    {"Miami", 25.7617, -80.1918},
    {"Belo Horizonte", -19.9167, -43.9345},
    {"Singapore", 1.3521, 103.8198},
    {"Philadelphia", 39.9526, -75.1652},
    {"Atlanta", 33.7490, -84.3880},
    {"Fukuoka", 33.5904, 130.4017},
    {"Khartoum", 15.5007, 32.5599},
    {"Barcelona", 41.3851, 2.1734},
    {"Johannesburg", -26.2041, 28.0473},
    {"Saint Petersburg", 59.9311, 30.3609},
    {"Qingdao", 36.0671, 120.3826},
    {"Dalian", 38.9140, 121.6147},
    {"Washington", 38.9072, -77.0369},
    {"Yangon", 16.8409, 96.1735},
    {"Alexandria", 31.2001, 29.9187},
    {"Jinan", 36.6512, 117.1201},
    {"Guadalajara", 20.6597, -103.3496},
    {"Nairobi", -1.2921, 36.8219},
    {"Zhengzhou", 34.7466, 113.6253},
    {"Abidjan", 5.3600, -4.0083},
    {"Chittagong", 22.3569, 91.7832},
    {"Monterrey", 25.6866, -100.3161},
    {"Ankara", 39.9334, 32.8597},
    {"Melbourne", -37.8136, 144.9631},
    {"Sydney", -33.8688, 151.2093},
    {"Brasilia", -15.8267, -47.9218},
    {"Recife", -8.0476, -34.8770},
    {"Fortaleza", -3.7319, -38.5267},
    {"Porto Alegre", -30.0346, -51.2177},
    {"Salvador", -12.9714, -38.5014},
    {"Casablanca", 33.5731, -7.5898},
    {"Accra", 5.6037, -0.1870},
    {"Addis Ababa", 9.0320, 38.7469},
    {"Jeddah", 21.4858, 39.1925},
    {"Hanoi", 21.0285, 105.8542},
    {"Kabul", 34.5553, 69.2075},
};
static_assert(sizeof(kCities) / sizeof(kCities[0]) == 100,
              "the ground station dataset must hold exactly 100 cities");

}  // namespace

std::vector<orbit::GroundStation> top100_cities() {
    std::vector<orbit::GroundStation> out;
    out.reserve(100);
    int id = 0;
    for (const auto& c : kCities) {
        out.emplace_back(id++, c.name, orbit::Geodetic{c.lat_deg, c.lon_deg, 0.0});
    }
    return out;
}

int city_index(const std::string& name) {
    for (int i = 0; i < 100; ++i) {
        if (name == kCities[i].name) return i;
    }
    throw std::out_of_range("unknown city: " + name);
}

orbit::GroundStation city_by_name(const std::string& name) {
    const int i = city_index(name);
    return {i, kCities[i].name,
            orbit::Geodetic{kCities[i].lat_deg, kCities[i].lon_deg, 0.0}};
}

}  // namespace hypatia::topo
