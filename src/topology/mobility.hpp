// Mobility: maps simulation time (ns since constellation epoch) to ECEF
// positions. Satellites are propagated with SGP4 + GMST rotation; lookups
// are cached on a 10 ms grid with linear interpolation in between — a
// satellite moves ~76 m per 10 ms, so the induced link-delay error is
// below 0.3 microseconds, negligible against the paper's own tolerances
// (its mobility model drifts 1-3 km per day, section 3.2).
//
// Propagation runs one of three byte-identical kernels (DESIGN.md §11):
// the scalar per-satellite reference (default), or the SoA batch/SIMD
// kernels (HYPATIA_SGP4_KERNEL=batch|simd) that warm the whole cache
// with one Sgp4Batch call per epoch instead of per-satellite dispatch.
#pragma once

#include <vector>

#include "src/obs/metrics.hpp"
#include "src/orbit/coords.hpp"
#include "src/orbit/sgp4_batch.hpp"
#include "src/topology/constellation.hpp"
#include "src/util/units.hpp"
#include "src/util/vec3.hpp"

namespace hypatia::topo {

/// Cached ECEF positions for all satellites of one constellation.
class SatelliteMobility {
  public:
    explicit SatelliteMobility(const Constellation& constellation,
                               TimeNs cache_quantum = 10 * kNsPerMs);

    /// ECEF position (km) of satellite `sat_id` at simulation time `t`.
    /// NOT safe to call concurrently for the same sat_id (the per-
    /// satellite cache entry is mutated); warm_cache() is the parallel
    /// entry point.
    const Vec3& position_ecef(int sat_id, TimeNs t) const;

    /// Batched SGP4: fills every satellite's cache entry for time `t` on
    /// the global thread pool (each worker owns a disjoint range of
    /// satellites, so entries are written by exactly one thread). After
    /// warming, position_ecef(sat, t) is a pure cache hit for all sats.
    /// Values are identical to on-demand fills at any thread count and
    /// under any kernel — each entry is a deterministic function of
    /// (sat_id, time bucket). Satellites already warm for `t` are
    /// counted on orbit.sgp4_cache_hits and skipped (a second call in
    /// the same epoch propagates nothing); with the batch/SIMD kernels
    /// the misses are filled by one Sgp4Batch ECEF call per chunk with
    /// the GMST rotation hoisted out of the per-satellite loop.
    void warm_cache(TimeNs t) const;

    /// Read-only position lookup: interpolates from the cached bucket
    /// WITHOUT touching the per-entry memo, so any number of threads may
    /// call it concurrently for any sat ids (position_ecef mutates the
    /// memo even on a hit). Values are bit-identical to position_ecef:
    /// same bucket endpoints, same interpolation. When the bucket is
    /// cold (no warm_cache(t) beforehand) it recomputes the endpoints on
    /// the fly — correct but slow, so warm first.
    Vec3 position_ecef_warm(int sat_id, TimeNs t) const;

    /// Uncached exact position (propagate + rotate), for tests.
    Vec3 position_ecef_exact(int sat_id, TimeNs t) const;

    /// Which SGP4 kernel warm_cache uses. Initialized from
    /// HYPATIA_SGP4_KERNEL (default scalar); constellations with any
    /// non-SGP4 satellite (GEO shells) always run the scalar path.
    orbit::Sgp4Kernel kernel() const { return kernel_; }
    void set_kernel(orbit::Sgp4Kernel kernel) { kernel_ = kernel; }

    /// True when the constellation is all-SGP4 and the SoA batch was
    /// built (the batch/SIMD kernels apply).
    bool batch_ready() const { return batch_ready_; }

    int num_satellites() const { return static_cast<int>(cache_.size()); }
    const Constellation& constellation() const { return *constellation_; }

  private:
    struct CacheEntry {
        TimeNs bucket_start = -1;
        Vec3 at_start;
        Vec3 interpolated;  // value returned for the last query
        TimeNs last_query = -1;
        Vec3 at_end;
        /// The bucket-end propagation is deferred until a query actually
        /// interpolates (t off the bucket boundary): epoch pipelines that
        /// sample on quantum multiples pay one SGP4 call per bucket, not
        /// two.
        bool at_end_valid = false;
    };

    void warm_cache_batched(TimeNs t, TimeNs bucket) const;

    /// Reusable scratch for warm_cache_batched (classification flags,
    /// propagation outputs): warm_cache is a single-caller entry point,
    /// so member scratch is safe and saves per-epoch allocations.
    struct BatchScratch {
        std::vector<std::uint8_t> need_start, need_end;
        std::vector<Vec3> starts, ends;
        std::vector<orbit::Sgp4Status> st_start, st_end;
    };

    const Constellation* constellation_;
    TimeNs quantum_;
    mutable std::vector<CacheEntry> cache_;
    mutable BatchScratch scratch_;
    obs::Counter* cache_fills_metric_;  // shared registry counter
    obs::Counter* cache_hits_metric_;   // orbit.sgp4_cache_hits
    orbit::Sgp4Batch batch_;            // SoA copy of all SGP4 consts
    bool batch_ready_ = false;
    orbit::Sgp4Kernel kernel_ = orbit::Sgp4Kernel::kScalar;
};

}  // namespace hypatia::topo
