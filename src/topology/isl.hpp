// Inter-satellite link topologies. The default is "+Grid" (paper section
// 3.1): each satellite has 4 ISLs — two to its immediate neighbours in the
// same orbit and two to the corresponding satellites in adjacent orbits,
// forming a mesh. Constellations without ISLs (bent-pipe, Appendix A) are
// expressed by an empty ISL list.
#pragma once

#include <cstdint>
#include <vector>

#include "src/topology/constellation.hpp"

namespace hypatia::topo {

/// One undirected ISL between two satellites (ids in constellation order).
struct Isl {
    int sat_a = 0;
    int sat_b = 0;
};

enum class IslPattern {
    kNone,      // bent-pipe constellation: no ISLs at all
    kPlusGrid,  // the 4-neighbour mesh the filings and prior work suggest
};

/// Builds the ISL list for a constellation. For kPlusGrid, every satellite
/// gets exactly degree 4 (assuming >= 3 orbits and >= 3 sats/orbit).
std::vector<Isl> build_isls(const Constellation& constellation, IslPattern pattern);

/// Degree of each satellite under `isls` (for invariant checks).
std::vector<int> isl_degrees(int num_satellites, const std::vector<Isl>& isls);

}  // namespace hypatia::topo
