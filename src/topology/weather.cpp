#include "src/topology/weather.hpp"

namespace hypatia::topo {

namespace {

/// SplitMix64: a tiny, well-mixed integer hash.
std::uint64_t mix(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

}  // namespace

bool WeatherModel::raining(int gs_index, TimeNs t) const {
    const auto cell = static_cast<std::uint64_t>(t / config_.cell_duration);
    const std::uint64_t h =
        mix(mix(config_.seed ^ static_cast<std::uint64_t>(gs_index) * 0x51ed270b) ^ cell);
    // Map to [0, 1) and compare against the rain probability.
    const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
    return u < config_.rain_probability;
}

}  // namespace hypatia::topo
