// Multi-shell constellations: several shells operated as one network
// (e.g. Kuiper K1+K2+K3, or Starlink's full phase 1). Satellites get a
// single global id space; ISLs exist within each shell (+Grid), never
// across shells — cross-shell traffic must pass through the ground, as
// in all current operator filings. Ground stations may connect to any
// shell they can see.
#pragma once

#include <memory>
#include <vector>

#include "src/orbit/ground_station.hpp"
#include "src/topology/constellation.hpp"
#include "src/topology/isl.hpp"
#include "src/topology/mobility.hpp"
#include "src/topology/visibility.hpp"

namespace hypatia::topo {

class ShellGroup {
  public:
    ShellGroup(const std::vector<ShellParams>& shells, const orbit::JulianDate& epoch);

    int num_shells() const { return static_cast<int>(shells_.size()); }
    int num_satellites() const { return total_satellites_; }

    /// Which shell a global satellite id belongs to, and its local id.
    int shell_of(int global_sat_id) const;
    int local_id(int global_sat_id) const;
    int global_id(int shell, int local_sat_id) const {
        return offsets_[static_cast<std::size_t>(shell)] + local_sat_id;
    }

    const Constellation& constellation(int shell) const {
        return *shells_[static_cast<std::size_t>(shell)].constellation;
    }
    const SatelliteMobility& mobility(int shell) const {
        return *shells_[static_cast<std::size_t>(shell)].mobility;
    }

    /// ECEF position of a global satellite id.
    const Vec3& position_ecef(int global_sat_id, TimeNs t) const;

    /// Batches the SGP4 propagation of every shell for time `t` (see
    /// SatelliteMobility::warm_cache); safe to call from one thread
    /// before parallel warm reads.
    void warm_caches(TimeNs t) const;

    /// All intra-shell +Grid ISLs, in global satellite ids.
    const std::vector<Isl>& isls() const { return isls_; }

    /// Connectable satellites (global ids) from `gs` across all shells,
    /// each under its own shell's cone-range rule, merged into one list
    /// sorted by ascending (range, global id) — a total order, so the
    /// result is independent of per-shell scan order.
    std::vector<SkyEntry> visible_satellites(const orbit::GroundStation& gs,
                                             TimeNs t) const;

    /// True if any shell covers `gs` at `t`.
    bool has_coverage(const orbit::GroundStation& gs, TimeNs t) const;

  private:
    struct ShellEntry {
        std::unique_ptr<Constellation> constellation;
        std::unique_ptr<SatelliteMobility> mobility;
    };
    std::vector<ShellEntry> shells_;
    std::vector<int> offsets_;  // global id of each shell's satellite 0
    int total_satellites_ = 0;
    std::vector<Isl> isls_;
};

}  // namespace hypatia::topo
