// GS-satellite visibility: which satellites a ground station can talk to
// at a given time, under the shell's minimum-elevation-angle constraint
// (paper Fig. 1). Also provides the ground-observer sky view that drives
// the Fig. 12 visualization.
#pragma once

#include <vector>

#include "src/orbit/ground_station.hpp"
#include "src/topology/mobility.hpp"
#include "src/util/units.hpp"

namespace hypatia::topo {

/// One satellite as seen in a ground station's sky.
struct SkyEntry {
    int sat_id = 0;
    double azimuth_deg = 0.0;
    double elevation_deg = 0.0;
    double range_km = 0.0;
    bool connectable = false;  // elevation >= shell minimum
};

/// Satellites visible (elevation >= min elevation of the shell) from `gs`
/// at time `t`, with distances. Sorted by ascending range.
std::vector<SkyEntry> visible_satellites(const orbit::GroundStation& gs,
                                         const SatelliteMobility& mobility, TimeNs t);

/// Identical results to visible_satellites, but positions are read
/// through SatelliteMobility::position_ecef_warm, which never mutates
/// the mobility cache — safe for concurrent scans over many ground
/// stations (the SnapshotRefresher's parallel GSL pass). Call
/// mobility.warm_cache(t) first or every lookup re-propagates.
std::vector<SkyEntry> visible_satellites_warm(const orbit::GroundStation& gs,
                                              const SatelliteMobility& mobility,
                                              TimeNs t);

/// Full sky view: every satellite above the horizon (elevation >= 0), with
/// the `connectable` flag set per the minimum elevation angle.
std::vector<SkyEntry> sky_view(const orbit::GroundStation& gs,
                               const SatelliteMobility& mobility, TimeNs t);

/// True if `gs` can connect to at least one satellite at time `t`.
bool has_coverage(const orbit::GroundStation& gs, const SatelliteMobility& mobility,
                  TimeNs t);

/// The cheap-rejection bound the visibility scans apply before any
/// trigonometry: a satellite of this shell whose slant range exceeds the
/// bound cannot be above the horizon (the pad absorbs ellipsoid
/// effects). Exported so incremental scanners (SnapshotRefresher) can
/// prove a satellite would be rejected without recomputing its range
/// every epoch.
double horizon_range_km(const SatelliteMobility& mobility);

}  // namespace hypatia::topo
