#include "src/topology/mobility.hpp"

#include <stdexcept>

#include "src/obs/observability.hpp"
#include "src/util/thread_pool.hpp"

namespace hypatia::topo {

SatelliteMobility::SatelliteMobility(const Constellation& constellation,
                                     TimeNs cache_quantum)
    : constellation_(&constellation), quantum_(cache_quantum),
      cache_(static_cast<std::size_t>(constellation.num_satellites())),
      cache_fills_metric_(&obs::metrics().counter("propagation.sgp4_cache_fills")),
      cache_hits_metric_(&obs::metrics().counter("orbit.sgp4_cache_hits")),
      kernel_(orbit::sgp4_kernel_from_env()) {
    // Build the SoA batch when every satellite runs SGP4 (GEO shells use
    // Kepler+J2 and keep the scalar per-satellite path).
    batch_ready_ = true;
    for (const Satellite& sat : constellation.satellites()) {
        if (sat.propagator_kind != PropagatorKind::kSgp4) {
            batch_ready_ = false;
            break;
        }
    }
    if (batch_ready_ && constellation.num_satellites() > 0) {
        batch_.reserve(cache_.size());
        for (const Satellite& sat : constellation.satellites()) {
            batch_.add(sat.sgp4->consts());
        }
    } else {
        batch_ready_ = false;
    }
}

Vec3 SatelliteMobility::position_ecef_exact(int sat_id, TimeNs t) const {
    const auto& sat = constellation_->satellite(sat_id);
    const auto at = constellation_->epoch().plus_seconds(ns_to_seconds(t));
    const auto sv = sat.propagate(at);
    return orbit::teme_to_ecef(sv.position_km, at);
}

const Vec3& SatelliteMobility::position_ecef(int sat_id, TimeNs t) const {
    CacheEntry& e = cache_[static_cast<std::size_t>(sat_id)];
    if (e.last_query == t && e.bucket_start >= 0) return e.interpolated;

    const TimeNs bucket = (t / quantum_) * quantum_;
    if (e.bucket_start != bucket) {
        // The SGP4 propagations below dominate mobility cost; the scope is
        // sampled (1 in 16, scaled back up) so the cache-hit fast path stays
        // timer-free and the fill path pays ~one clock read per 16 fills.
        HYPATIA_PROFILE_SCOPE_SAMPLED("propagation.sgp4", 16);
        cache_fills_metric_->inc();
        e.bucket_start = bucket;
        e.at_start = position_ecef_exact(sat_id, bucket);
        e.at_end_valid = false;
    }
    if (t == bucket) {
        // On the boundary the interpolation weight is zero, so the
        // bucket-end endpoint contributes nothing — skip propagating it.
        e.interpolated = e.at_start;
        e.last_query = t;
        return e.interpolated;
    }
    if (!e.at_end_valid) {
        HYPATIA_PROFILE_SCOPE_SAMPLED("propagation.sgp4", 16);
        e.at_end = position_ecef_exact(sat_id, bucket + quantum_);
        e.at_end_valid = true;
    }
    const double frac =
        static_cast<double>(t - bucket) / static_cast<double>(quantum_);
    e.interpolated = e.at_start + (e.at_end - e.at_start) * frac;
    e.last_query = t;
    return e.interpolated;
}

Vec3 SatelliteMobility::position_ecef_warm(int sat_id, TimeNs t) const {
    const CacheEntry& e = cache_[static_cast<std::size_t>(sat_id)];
    const TimeNs bucket = (t / quantum_) * quantum_;
    const bool have_start = e.bucket_start == bucket;
    if (have_start && t == bucket) return e.at_start;  // zero-weight endpoint
    const double frac =
        static_cast<double>(t - bucket) / static_cast<double>(quantum_);
    if (have_start && e.at_end_valid) {
        return e.at_start + (e.at_end - e.at_start) * frac;
    }
    // Cold bucket (or deferred endpoint): same endpoints and
    // interpolation as the fill path, recomputed without writing the
    // shared entry.
    const Vec3 at_start = have_start ? e.at_start : position_ecef_exact(sat_id, bucket);
    const Vec3 at_end = position_ecef_exact(sat_id, bucket + quantum_);
    return at_start + (at_end - at_start) * frac;
}

void SatelliteMobility::warm_cache(TimeNs t) const {
    const TimeNs bucket = (t / quantum_) * quantum_;

    // The batched path folds the warm-entry count into its own
    // classification pass (one read of each entry instead of two).
    if (batch_ready_ && kernel_ != orbit::Sgp4Kernel::kScalar) {
        warm_cache_batched(t, bucket);
        return;
    }

    const bool boundary = t == bucket;

    // An entry is warm for t when its bucket endpoints are already
    // propagated (off-boundary queries also need the bucket end).
    // Re-warming those is pure waste — count them as hits and, when the
    // whole cache is warm (warm_cache called twice in one epoch), skip
    // the propagation pass entirely.
    std::size_t hits = 0;
    for (const CacheEntry& e : cache_) {
        if (e.bucket_start == bucket && (boundary || e.at_end_valid)) ++hits;
    }
    if (hits > 0) cache_hits_metric_->inc(hits);
    if (hits == cache_.size()) return;

    // Scalar reference path: chunked so each worker amortizes its claim
    // over ~dozens of SGP4 propagations; every cache entry is touched by
    // exactly one lane.
    util::ThreadPool::global().parallel_for(
        cache_.size(), /*chunk=*/64, [&](std::size_t begin, std::size_t end) {
            for (std::size_t sat = begin; sat < end; ++sat) {
                (void)position_ecef(static_cast<int>(sat), t);
            }
        });
}

void SatelliteMobility::warm_cache_batched(TimeNs t, TimeNs bucket) const {
    const bool boundary = t == bucket;
    const std::size_t n = cache_.size();
    const auto start_jd = constellation_->epoch().plus_seconds(ns_to_seconds(bucket));
    const auto end_jd =
        constellation_->epoch().plus_seconds(ns_to_seconds(bucket + quantum_));

    // Classify serially (cheap), propagate in parallel, write back
    // serially. Results are per-satellite deterministic, so chunk count
    // (= thread count) cannot change any output bit.
    // Scratch buffers are members: warm_cache runs once per epoch and
    // is documented single-caller, so reusing them drops ~80 KB of
    // allocation + zeroing from every epoch. Entries are only read
    // where the matching need flag is set, so stale contents are inert.
    auto& need_start = scratch_.need_start;
    auto& need_end = scratch_.need_end;
    need_start.resize(n);
    need_end.resize(n);
    std::size_t fills = 0;
    std::size_t hits = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const CacheEntry& e = cache_[i];
        need_start[i] = e.bucket_start != bucket ? 1 : 0;
        need_end[i] = !boundary && (need_start[i] || !e.at_end_valid) ? 1 : 0;
        fills += need_start[i];
        // Warm for t: both endpoints this query needs are already
        // propagated. Same predicate (and counter parity) as the scalar
        // path's pre-scan, folded into this single pass.
        if (!need_start[i] && (boundary || e.at_end_valid)) ++hits;
    }
    if (hits > 0) cache_hits_metric_->inc(hits);
    if (hits == n) return;  // fully warm: propagate nothing, as scalar
    // Counter parity with the scalar path, which counts bucket-start
    // fills only (amortized: one inc per warm call, not per satellite).
    if (fills > 0) cache_fills_metric_->inc(fills);

    auto& starts = scratch_.starts;
    auto& ends = scratch_.ends;
    auto& st_start = scratch_.st_start;
    auto& st_end = scratch_.st_end;
    starts.resize(n);
    ends.resize(boundary ? 0 : n);
    st_start.resize(n);
    st_end.resize(boundary ? 0 : n);

    {
        HYPATIA_PROFILE_SCOPE("propagation.sgp4");
        util::ThreadPool::global().parallel_for(
            n, /*chunk=*/256, [&](std::size_t begin, std::size_t end) {
                auto run_batched = [&](const std::vector<std::uint8_t>& need,
                                       const orbit::JulianDate& at, Vec3* out,
                                       orbit::Sgp4Status* st) {
                    std::size_t i = begin;
                    while (i < end) {
                        if (!need[i]) {
                            ++i;
                            continue;
                        }
                        std::size_t r = i;
                        while (r < end && need[r]) ++r;
                        batch_.propagate_ecef(kernel_, at, i, r, out + i, st + i);
                        i = r;
                    }
                };
                run_batched(need_start, start_jd, starts.data(), st_start.data());
                if (!boundary) run_batched(need_end, end_jd, ends.data(), st_end.data());
            });
    }

    for (std::size_t i = 0; i < n; ++i) {
        if (need_start[i] && st_start[i] != orbit::Sgp4Status::kOk) {
            throw std::runtime_error(orbit::sgp4_status_message(st_start[i]));
        }
        if (!boundary && need_end[i] && st_end[i] != orbit::Sgp4Status::kOk) {
            throw std::runtime_error(orbit::sgp4_status_message(st_end[i]));
        }
    }

    const double frac =
        boundary ? 0.0
                 : static_cast<double>(t - bucket) / static_cast<double>(quantum_);
    for (std::size_t i = 0; i < n; ++i) {
        CacheEntry& e = cache_[i];
        if (need_start[i]) {
            e.bucket_start = bucket;
            e.at_start = starts[i];
            e.at_end_valid = false;
        }
        if (!boundary && need_end[i]) {
            e.at_end = ends[i];
            e.at_end_valid = true;
        }
        // Same memo updates position_ecef would have made for this query.
        e.interpolated =
            boundary ? e.at_start : e.at_start + (e.at_end - e.at_start) * frac;
        e.last_query = t;
    }
}

}  // namespace hypatia::topo
