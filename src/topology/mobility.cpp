#include "src/topology/mobility.hpp"

#include "src/obs/observability.hpp"
#include "src/util/thread_pool.hpp"

namespace hypatia::topo {

SatelliteMobility::SatelliteMobility(const Constellation& constellation,
                                     TimeNs cache_quantum)
    : constellation_(&constellation), quantum_(cache_quantum),
      cache_(static_cast<std::size_t>(constellation.num_satellites())),
      cache_fills_metric_(&obs::metrics().counter("propagation.sgp4_cache_fills")) {}

Vec3 SatelliteMobility::position_ecef_exact(int sat_id, TimeNs t) const {
    const auto& sat = constellation_->satellite(sat_id);
    const auto at = constellation_->epoch().plus_seconds(ns_to_seconds(t));
    const auto sv = sat.propagate(at);
    return orbit::teme_to_ecef(sv.position_km, at);
}

const Vec3& SatelliteMobility::position_ecef(int sat_id, TimeNs t) const {
    CacheEntry& e = cache_[static_cast<std::size_t>(sat_id)];
    if (e.last_query == t && e.bucket_start >= 0) return e.interpolated;

    const TimeNs bucket = (t / quantum_) * quantum_;
    if (e.bucket_start != bucket) {
        // The SGP4 propagations below dominate mobility cost; the scope is
        // sampled (1 in 16, scaled back up) so the cache-hit fast path stays
        // timer-free and the fill path pays ~one clock read per 16 fills.
        HYPATIA_PROFILE_SCOPE_SAMPLED("propagation.sgp4", 16);
        cache_fills_metric_->inc();
        e.bucket_start = bucket;
        e.at_start = position_ecef_exact(sat_id, bucket);
        e.at_end_valid = false;
    }
    if (t == bucket) {
        // On the boundary the interpolation weight is zero, so the
        // bucket-end endpoint contributes nothing — skip propagating it.
        e.interpolated = e.at_start;
        e.last_query = t;
        return e.interpolated;
    }
    if (!e.at_end_valid) {
        HYPATIA_PROFILE_SCOPE_SAMPLED("propagation.sgp4", 16);
        e.at_end = position_ecef_exact(sat_id, bucket + quantum_);
        e.at_end_valid = true;
    }
    const double frac =
        static_cast<double>(t - bucket) / static_cast<double>(quantum_);
    e.interpolated = e.at_start + (e.at_end - e.at_start) * frac;
    e.last_query = t;
    return e.interpolated;
}

Vec3 SatelliteMobility::position_ecef_warm(int sat_id, TimeNs t) const {
    const CacheEntry& e = cache_[static_cast<std::size_t>(sat_id)];
    const TimeNs bucket = (t / quantum_) * quantum_;
    const bool have_start = e.bucket_start == bucket;
    if (have_start && t == bucket) return e.at_start;  // zero-weight endpoint
    const double frac =
        static_cast<double>(t - bucket) / static_cast<double>(quantum_);
    if (have_start && e.at_end_valid) {
        return e.at_start + (e.at_end - e.at_start) * frac;
    }
    // Cold bucket (or deferred endpoint): same endpoints and
    // interpolation as the fill path, recomputed without writing the
    // shared entry.
    const Vec3 at_start = have_start ? e.at_start : position_ecef_exact(sat_id, bucket);
    const Vec3 at_end = position_ecef_exact(sat_id, bucket + quantum_);
    return at_start + (at_end - at_start) * frac;
}

void SatelliteMobility::warm_cache(TimeNs t) const {
    // Chunked so each worker amortizes its claim over ~dozens of SGP4
    // propagations; every cache entry is touched by exactly one lane.
    util::ThreadPool::global().parallel_for(
        cache_.size(), /*chunk=*/64, [&](std::size_t begin, std::size_t end) {
            for (std::size_t sat = begin; sat < end; ++sat) {
                (void)position_ecef(static_cast<int>(sat), t);
            }
        });
}

}  // namespace hypatia::topo
