// The embedded ground-station dataset: the world's 100 most populous
// metropolitan areas (the paper's GS placement for every experiment),
// population-ranked, with approximate centre coordinates.
#pragma once

#include <string>
#include <vector>

#include "src/orbit/ground_station.hpp"

namespace hypatia::topo {

/// All 100 cities as ground stations, ids 0..99 in population-rank order.
std::vector<orbit::GroundStation> top100_cities();

/// Looks up one city by name from the embedded table (exact match).
/// Throws std::out_of_range if absent. The returned station keeps its
/// population-rank id.
orbit::GroundStation city_by_name(const std::string& name);

/// Index of a city name within top100_cities(); throws if absent.
int city_index(const std::string& name);

}  // namespace hypatia::topo
