// A simple deterministic weather model (the paper's section 7 extension):
// rain cells at ground stations shrink the usable GSL cone, because rain
// fade eats the link budget and forces higher minimum elevations.
//
// Time is divided into fixed-length cells; each (ground station, cell)
// pair is independently "raining" with a configured probability, decided
// by a seeded hash so runs are reproducible and need no stored schedule.
#pragma once

#include <cstdint>

#include "src/util/units.hpp"

namespace hypatia::topo {

class WeatherModel {
  public:
    struct Config {
        TimeNs cell_duration = 300 * kNsPerSec;  // rain cells last ~5 min
        double rain_probability = 0.1;           // fraction of cells raining
        double rain_range_factor = 0.7;          // usable GSL range scale in rain
        std::uint64_t seed = 1;
    };

    explicit WeatherModel(const Config& config) : config_(config) {}

    /// True if ground station `gs_index` is inside a rain cell at `t`.
    bool raining(int gs_index, TimeNs t) const;

    /// Scale factor for the GS's maximum GSL range at `t`
    /// (1.0 clear sky, rain_range_factor in rain).
    double gsl_range_factor(int gs_index, TimeNs t) const {
        return raining(gs_index, t) ? config_.rain_range_factor : 1.0;
    }

    const Config& config() const { return config_; }

  private:
    Config config_;
};

}  // namespace hypatia::topo
