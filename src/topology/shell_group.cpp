#include "src/topology/shell_group.hpp"

#include <algorithm>
#include <stdexcept>

namespace hypatia::topo {

ShellGroup::ShellGroup(const std::vector<ShellParams>& shells,
                       const orbit::JulianDate& epoch) {
    if (shells.empty()) throw std::invalid_argument("shell group: no shells");
    for (const auto& params : shells) {
        ShellEntry entry;
        entry.constellation = std::make_unique<Constellation>(params, epoch);
        entry.mobility = std::make_unique<SatelliteMobility>(*entry.constellation);
        offsets_.push_back(total_satellites_);
        total_satellites_ += entry.constellation->num_satellites();
        shells_.push_back(std::move(entry));
    }
    // Intra-shell ISLs only, lifted into the global id space.
    for (std::size_t si = 0; si < shells_.size(); ++si) {
        const int off = offsets_[si];
        for (const auto& isl :
             build_isls(*shells_[si].constellation, IslPattern::kPlusGrid)) {
            isls_.push_back({isl.sat_a + off, isl.sat_b + off});
        }
    }
}

int ShellGroup::shell_of(int global_sat_id) const {
    for (int s = num_shells() - 1; s >= 0; --s) {
        if (global_sat_id >= offsets_[static_cast<std::size_t>(s)]) return s;
    }
    throw std::out_of_range("shell group: bad satellite id");
}

int ShellGroup::local_id(int global_sat_id) const {
    return global_sat_id - offsets_[static_cast<std::size_t>(shell_of(global_sat_id))];
}

const Vec3& ShellGroup::position_ecef(int global_sat_id, TimeNs t) const {
    const int s = shell_of(global_sat_id);
    return shells_[static_cast<std::size_t>(s)].mobility->position_ecef(
        local_id(global_sat_id), t);
}

void ShellGroup::warm_caches(TimeNs t) const {
    for (const auto& shell : shells_) shell.mobility->warm_cache(t);
}

std::vector<SkyEntry> ShellGroup::visible_satellites(const orbit::GroundStation& gs,
                                                     TimeNs t) const {
    std::vector<SkyEntry> out;
    for (int s = 0; s < num_shells(); ++s) {
        auto vis = topo::visible_satellites(gs, *shells_[static_cast<std::size_t>(s)].mobility, t);
        for (auto& e : vis) {
            e.sat_id += offsets_[static_cast<std::size_t>(s)];
            out.push_back(e);
        }
    }
    // Merge the per-shell range-sorted runs into one globally sorted
    // list under the (range, id) total order, so downstream GSL rows
    // have a deterministic cross-shell ordering.
    std::sort(out.begin(), out.end(), [](const SkyEntry& a, const SkyEntry& b) {
        return a.range_km < b.range_km ||
               (a.range_km == b.range_km && a.sat_id < b.sat_id);
    });
    return out;
}

bool ShellGroup::has_coverage(const orbit::GroundStation& gs, TimeNs t) const {
    for (int s = 0; s < num_shells(); ++s) {
        if (topo::has_coverage(gs, *shells_[static_cast<std::size_t>(s)].mobility, t)) {
            return true;
        }
    }
    return false;
}

}  // namespace hypatia::topo
