#include "src/topology/isl.hpp"

#include <stdexcept>

namespace hypatia::topo {

std::vector<Isl> build_isls(const Constellation& constellation, IslPattern pattern) {
    std::vector<Isl> isls;
    if (pattern == IslPattern::kNone) return isls;

    const auto& p = constellation.params();
    if (p.num_orbits < 3 || p.sats_per_orbit < 3) {
        throw std::invalid_argument("+Grid needs >= 3 orbits and >= 3 sats/orbit");
    }
    isls.reserve(static_cast<std::size_t>(2 * p.num_orbits * p.sats_per_orbit));
    for (int o = 0; o < p.num_orbits; ++o) {
        for (int s = 0; s < p.sats_per_orbit; ++s) {
            const int self = constellation.sat_id(o, s);
            // Intra-orbit successor (wraps around the ring).
            const int next_in_orbit = constellation.sat_id(o, (s + 1) % p.sats_per_orbit);
            isls.push_back({self, next_in_orbit});
            // Same slot in the next orbit (wraps across the seam).
            const int next_orbit = constellation.sat_id((o + 1) % p.num_orbits, s);
            isls.push_back({self, next_orbit});
        }
    }
    return isls;
}

std::vector<int> isl_degrees(int num_satellites, const std::vector<Isl>& isls) {
    std::vector<int> deg(static_cast<std::size_t>(num_satellites), 0);
    for (const auto& isl : isls) {
        ++deg.at(static_cast<std::size_t>(isl.sat_a));
        ++deg.at(static_cast<std::size_t>(isl.sat_b));
    }
    return deg;
}

}  // namespace hypatia::topo
