// ScheduleExporter: sweeps the zero-rebuild epoch pipeline over a
// scenario window and materializes one emu::PairSchedule per configured
// ground-station pair. Per step it sources
//   * delay / RTT and the full path from route::PairSweeper — the same
//     sweep implementation behind analyze_pairs and the Fig 13
//     exporters, so figure CSVs and emu schedules cannot drift,
//   * loss from the resolved fault schedule (a severed pair emulates as
//     100% loss; scenario faults win over HYPATIA_FAULTS, matching the
//     flowsim engine's resolution order),
//   * rate caps from a flowsim background run: one unbounded CBR flow
//     per pair, max-min fair shares re-solved every step (and at fault
//     transitions), sampled onto the schedule grid.
// The step API is incremental so emu::RealtimePacer can pace the same
// computation against the wall clock; run() is the batch wrapper. Both
// produce byte-identical schedules at any HYPATIA_THREADS /
// HYPATIA_SNAPSHOT_MODE setting.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "src/ckpt/checkpoint.hpp"
#include "src/core/scenario.hpp"
#include "src/emu/schedule.hpp"
#include "src/routing/pair_sweep.hpp"
#include "src/topology/mobility.hpp"
#include "src/topology/weather.hpp"

namespace hypatia::emu {

struct ExportOptions {
    TimeNs t_start = 0;
    TimeNs t_end = 10 * kNsPerSec;
    TimeNs step = 100 * kNsPerMs;
    /// Solve the flowsim background matrix for max-min rate caps. With
    /// rates off every entry's rate_bps is 0 and the netem renderer
    /// omits the rate clause.
    bool include_rates = true;
    /// Per-pair CBR cap of the background matrix (the paper's 10 Mbit/s
    /// link rate by default — an uncontended pair pins at exactly this).
    double rate_cap_bps = 10e6;
    /// Checkpoint/restore policy for the batch run() driver (DESIGN.md
    /// §13). Disengaged resolves HYPATIA_CKPT_* through
    /// ckpt::Manager::global(); ckpt::Policy::disabled() forces off.
    /// The paced driver (emu::RealtimePacer) checkpoints through its own
    /// PacerOptions instead and leaves this disengaged.
    std::optional<ckpt::Policy> checkpoint;
};

class ScheduleExporter {
  public:
    /// `pairs` must be distinct (each pair becomes one background flow;
    /// duplicates would share capacity and halve their rate caps).
    ScheduleExporter(const core::Scenario& scenario,
                     std::vector<route::GsPair> pairs, ExportOptions options = {});

    std::size_t num_steps() const { return num_steps_; }
    TimeNs step_time(std::size_t i) const {
        return options_.t_start + static_cast<TimeNs>(i) * options_.step;
    }

    /// Computes step `i` and appends one entry per pair. Steps must be
    /// computed in order 0..num_steps()-1; out-of-order calls throw.
    void compute_step(std::size_t i);

    /// Batch export: computes every remaining step and returns the
    /// schedules.
    const std::vector<PairSchedule>& run();

    /// Schedules accumulated so far (entries grow as steps compute).
    const std::vector<PairSchedule>& schedules() const { return schedules_; }

    /// The next step compute_step will accept — equals the number of
    /// entries accumulated per pair. A resumed exporter reports the
    /// restored position here.
    std::size_t next_step() const { return next_step_; }

    /// Serializes the exporter's mutable progress — accumulated
    /// schedule entries, the path-change detector state and the
    /// sweeper's fault-streaming cursor — as a checkpoint section
    /// payload, prefixed with a digest of the re-derived substrate
    /// (pairs, window, fault schedule, background-rate series).
    std::vector<std::uint8_t> save_state() const;
    /// Restores progress from a save_state() payload. Returns false —
    /// leaving the exporter untouched — when the digest disagrees or
    /// the payload is malformed; the caller then starts from step 0.
    bool restore_state(const std::vector<std::uint8_t>& payload);

    const core::Scenario& scenario() const { return scenario_; }
    const std::vector<route::GsPair>& pairs() const { return pairs_; }
    const ExportOptions& options() const { return options_; }
    /// The resolved fault schedule; nullptr when fault-free.
    const fault::FaultSchedule* faults() const {
        return faults_.has_value() ? &*faults_ : nullptr;
    }

  private:
    double rate_at(std::size_t pair_index, TimeNs t) const;

    core::Scenario scenario_;
    topo::Constellation constellation_;
    topo::SatelliteMobility mobility_;
    std::vector<topo::Isl> isls_;
    std::optional<topo::WeatherModel> weather_;
    std::optional<fault::FaultSchedule> faults_;
    std::vector<route::GsPair> pairs_;
    ExportOptions options_;
    std::size_t num_steps_ = 0;

    std::optional<route::PairSweeper> sweeper_;
    /// Per pair: the flowsim (sim-time, rate) series of its background
    /// flow — every epoch boundary plus fault-transition cuts.
    std::vector<std::vector<std::pair<TimeNs, double>>> rate_series_;
    std::vector<PairSchedule> schedules_;
    /// Previous step's full node path per pair, for change detection.
    std::vector<std::vector<int>> prev_paths_;
    std::size_t next_step_ = 0;
    /// Digest of the re-derived substrate, computed once at
    /// construction; save_state stamps it, restore_state checks it.
    std::uint64_t state_digest_ = 0;
};

}  // namespace hypatia::emu
