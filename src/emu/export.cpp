#include "src/emu/export.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>
#include <string>

#include "src/flowsim/engine.hpp"
#include "src/flowsim/traffic.hpp"
#include "src/obs/observability.hpp"

namespace hypatia::emu {

ScheduleExporter::ScheduleExporter(const core::Scenario& scenario,
                                   std::vector<route::GsPair> pairs,
                                   ExportOptions options)
    : scenario_(scenario),
      constellation_(scenario.shell, topo::default_epoch()),
      mobility_(constellation_),
      isls_(topo::build_isls(constellation_, scenario.isl_pattern)),
      pairs_(std::move(pairs)),
      options_(options) {
    if (options_.step <= 0) throw std::invalid_argument("emu: step must be > 0");
    num_steps_ = options_.t_end > options_.t_start
                     ? static_cast<std::size_t>(
                           (options_.t_end - options_.t_start + options_.step - 1) /
                           options_.step)
                     : 0;
    if (scenario_.weather.has_value()) weather_.emplace(*scenario_.weather);

    // Fault resolution mirrors flowsim::Engine: the scenario's spec
    // wins, HYPATIA_FAULTS is the fallback, an empty schedule is
    // discarded — so rates and loss observe one consistent fault state.
    std::optional<fault::FaultSpec> fault_spec = scenario_.faults;
    if (!fault_spec.has_value()) fault_spec = fault::spec_from_env();
    if (fault_spec.has_value() && !fault_spec->empty()) {
        faults_.emplace(fault::FaultSchedule::from_spec(
            *fault_spec, constellation_.num_satellites(), isls_,
            scenario_.ground_stations));
        if (faults_->empty()) faults_.reset();
    }

    route::SweepOptions sweep;
    sweep.relay_gs_indices = scenario_.relay_gs_indices;
    sweep.gs_nearest_satellite_only = scenario_.gs_nearest_satellite_only;
    if (weather_.has_value()) {
        sweep.gsl_range_factor = [this](int gs_index, TimeNs at) {
            return weather_->gsl_range_factor(gs_index, at);
        };
    }
    // Pass a pointer even when fault-free: an unset schedule would make
    // the sweeper re-consult HYPATIA_FAULTS, diverging from the
    // scenario-first resolution above.
    static const fault::FaultSchedule kNoFaults;
    sweep.faults = faults_.has_value() ? &*faults_ : &kNoFaults;
    sweep.step_hint = options_.step;
    sweeper_.emplace(mobility_, isls_, scenario_.ground_stations, pairs_, sweep);

    schedules_.resize(pairs_.size());
    prev_paths_.resize(pairs_.size());
    for (std::size_t pi = 0; pi < pairs_.size(); ++pi) {
        auto& s = schedules_[pi];
        s.src_gs = pairs_[pi].src_gs;
        s.dst_gs = pairs_[pi].dst_gs;
        s.src_name =
            scenario_.ground_stations[static_cast<std::size_t>(s.src_gs)].name();
        s.dst_name =
            scenario_.ground_stations[static_cast<std::size_t>(s.dst_gs)].name();
        s.step = options_.step;
        s.entries.reserve(num_steps_);
    }

    if (options_.include_rates && !pairs_.empty() && num_steps_ > 0) {
        // One unbounded CBR flow per pair; the engine re-solves the
        // max-min allocation every schedule step (plus fault cuts) and
        // records each flow's (t, rate) series. Flow ids are indices
        // into the arrival-sorted matrix, so map pairs through the sort.
        flowsim::TrafficMatrix matrix =
            flowsim::cbr_background(pairs_, options_.rate_cap_bps);
        matrix.sort_by_arrival();
        flowsim::EngineOptions eopt;
        eopt.epoch = options_.step;
        eopt.duration = options_.t_end;
        // The background engine is re-derived substrate, not resumable
        // progress: it must never write into (or resume from) the
        // process's checkpoint directory alongside the exporter's own
        // checkpoints.
        eopt.checkpoint = ckpt::Policy::disabled();
        eopt.tracked_flows.resize(matrix.size());
        for (std::size_t i = 0; i < matrix.size(); ++i) eopt.tracked_flows[i] = i;
        flowsim::Engine engine(scenario_, matrix, eopt);
        const flowsim::RunSummary summary = engine.run();

        rate_series_.resize(pairs_.size());
        const auto& sorted = engine.matrix().flows;
        for (std::size_t pi = 0; pi < pairs_.size(); ++pi) {
            for (std::size_t fi = 0; fi < sorted.size(); ++fi) {
                if (sorted[fi].src_gs == pairs_[pi].src_gs &&
                    sorted[fi].dst_gs == pairs_[pi].dst_gs) {
                    rate_series_[pi] = summary.tracked_series[fi];
                    break;
                }
            }
        }
    }

    // Identity of the re-derived substrate. Everything mixed here is
    // recomputed above from the scenario — a checkpoint taken with a
    // different pair set, window, fault schedule or background-rate
    // solution is rejected at restore, never silently continued.
    ckpt::Digest d;
    d.mix<std::uint64_t>(pairs_.size());
    for (const route::GsPair& p : pairs_) {
        d.mix(p.src_gs);
        d.mix(p.dst_gs);
    }
    d.mix(options_.t_start);
    d.mix(options_.t_end);
    d.mix(options_.step);
    d.mix<std::uint8_t>(options_.include_rates ? 1 : 0);
    d.mix(options_.rate_cap_bps);
    if (faults_.has_value()) {
        for (const fault::FaultEvent& e : faults_->events()) {
            d.mix<std::int32_t>(static_cast<std::int32_t>(e.kind));
            d.mix(e.a);
            d.mix(e.b);
            d.mix(e.start);
            d.mix(e.end);
        }
    }
    d.mix<std::uint64_t>(rate_series_.size());
    for (const auto& series : rate_series_) {
        d.mix<std::uint64_t>(series.size());
        for (const auto& [st, sr] : series) {
            d.mix(st);
            d.mix(sr);
        }
    }
    state_digest_ = d.value();
}

std::vector<std::uint8_t> ScheduleExporter::save_state() const {
    ckpt::Writer w;
    w.u64(state_digest_);
    w.u64(next_step_);
    w.u64(schedules_.size());
    for (const PairSchedule& s : schedules_) {
        w.u64(s.entries.size());
        for (const ScheduleEntry& e : s.entries) {
            w.i64(e.t);
            w.f64(e.delay_us);
            w.f64(e.rtt_us);
            w.f64(e.loss_pct);
            w.f64(e.rate_bps);
            w.u8(e.reachable ? 1 : 0);
            w.u8(e.path_changed ? 1 : 0);
            w.i32(e.old_next_hop);
            w.i32(e.new_next_hop);
        }
    }
    w.u64(prev_paths_.size());
    for (const std::vector<int>& path : prev_paths_) w.vec(path);
    const std::optional<TimeNs> cursor = sweeper_->sweep_cursor();
    w.u8(cursor.has_value() ? 1 : 0);
    w.i64(cursor.value_or(0));
    return w.take();
}

bool ScheduleExporter::restore_state(const std::vector<std::uint8_t>& payload) {
    try {
        ckpt::Reader r(payload);
        if (r.u64() != state_digest_) return false;
        const std::uint64_t next = r.u64();
        std::vector<std::vector<ScheduleEntry>> entries(r.u64());
        for (auto& per_pair : entries) {
            per_pair.resize(r.u64());
            for (ScheduleEntry& e : per_pair) {
                e.t = r.i64();
                e.delay_us = r.f64();
                e.rtt_us = r.f64();
                e.loss_pct = r.f64();
                e.rate_bps = r.f64();
                e.reachable = r.u8() != 0;
                e.path_changed = r.u8() != 0;
                e.old_next_hop = r.i32();
                e.new_next_hop = r.i32();
            }
        }
        std::vector<std::vector<int>> paths(r.u64());
        for (auto& path : paths) r.vec(path);
        const bool have_cursor = r.u8() != 0;
        const TimeNs cursor = r.i64();
        if (next > num_steps_ || entries.size() != schedules_.size() ||
            paths.size() != pairs_.size()) {
            return false;
        }
        for (const auto& per_pair : entries) {
            if (per_pair.size() != next) return false;
        }
        for (std::size_t pi = 0; pi < schedules_.size(); ++pi) {
            schedules_[pi].entries = std::move(entries[pi]);
        }
        prev_paths_ = std::move(paths);
        if (have_cursor) sweeper_->set_sweep_cursor(cursor);
        next_step_ = static_cast<std::size_t>(next);
        return true;
    } catch (const ckpt::CorruptError&) {
        return false;
    }
}

double ScheduleExporter::rate_at(std::size_t pair_index, TimeNs t) const {
    if (pair_index >= rate_series_.size()) return 0.0;
    const auto& series = rate_series_[pair_index];
    // Rates are piecewise-constant from each boundary: the value at t is
    // the last entry at or before it.
    auto it = std::upper_bound(
        series.begin(), series.end(), t,
        [](TimeNs lhs, const std::pair<TimeNs, double>& rhs) { return lhs < rhs.first; });
    if (it == series.begin()) return 0.0;
    return std::prev(it)->second;
}

void ScheduleExporter::compute_step(std::size_t i) {
    if (i != next_step_ || i >= num_steps_) {
        throw std::logic_error("emu: compute_step(" + std::to_string(i) +
                               ") out of order (next is " +
                               std::to_string(next_step_) + " of " +
                               std::to_string(num_steps_) + ")");
    }
    const TimeNs t = step_time(i);
    const TimeNs orbit_t = scenario_.freeze ? scenario_.start_offset
                                            : scenario_.start_offset + t;
    const auto& samples = sweeper_->step(orbit_t);

    for (std::size_t pi = 0; pi < pairs_.size(); ++pi) {
        const auto& sample = samples[pi];
        auto& schedule = schedules_[pi];

        ScheduleEntry entry;
        entry.t = t;
        entry.reachable = sample.reachable();
        if (entry.reachable) {
            entry.rtt_us = sample.rtt_s * 1e6;
            entry.delay_us = entry.rtt_us / 2.0;
            entry.loss_pct = 0.0;
            entry.rate_bps = rate_at(pi, t);
        }
        // First-hop satellite: path[0] is the source GS node, path[1]
        // the first satellite (empty path when severed).
        entry.new_next_hop =
            sample.path.size() >= 2 ? sample.path[1] : -1;
        if (!schedule.entries.empty()) {
            const auto& prev = schedule.entries.back();
            entry.old_next_hop = prev.new_next_hop;
            entry.path_changed = prev_paths_[pi] != sample.path;
        }
        prev_paths_[pi] = sample.path;
        schedule.entries.push_back(std::move(entry));
    }
    obs::metrics().counter("emu.schedule_entries").inc(pairs_.size());
    ++next_step_;
}

const std::vector<PairSchedule>& ScheduleExporter::run() {
    std::optional<ckpt::Manager> local_ckpt;
    ckpt::Manager* const mgr =
        ckpt::Manager::resolve(options_.checkpoint, local_ckpt);
    if (mgr != nullptr && mgr->policy().resume && next_step_ == 0) {
        if (const std::optional<ckpt::Checkpoint> saved = mgr->load_latest()) {
            const ckpt::Section* section = saved->find("emu.exporter");
            if (section != nullptr && restore_state(section->payload)) {
                // Metrics last, overwriting the construction-era
                // increments with the snapshot's values.
                if (const ckpt::Section* ms = saved->find("obs.metrics")) {
                    ckpt::Reader mr(ms->payload);
                    ckpt::restore_metrics_section(mr);
                }
            } else {
                std::fprintf(stderr,
                             "hypatia: not resuming emu export from checkpoint "
                             "(missing section or digest mismatch)\n");
                obs::metrics().counter("ckpt.restore_rejected").inc();
            }
        }
    }
    const std::size_t first = next_step_;
    while (next_step_ < num_steps_) {
        // Image captures steps [0, next_step_); a resumed run re-enters
        // compute_step exactly here.
        if (mgr != nullptr && next_step_ > first) {
            ckpt::Checkpoint ck;
            ck.epoch_index = next_step_;
            ck.sim_time = step_time(next_step_);
            ck.add("emu.exporter", save_state());
            ckpt::Writer mw;
            ckpt::save_metrics_section(mw);
            ck.add("obs.metrics", mw.take());
            if (mgr->due()) {
                mgr->write(std::move(ck));
            } else {
                mgr->arm(std::move(ck));
            }
        }
        compute_step(next_step_);
    }
    if (mgr != nullptr) mgr->disarm();
    return schedules_;
}

}  // namespace hypatia::emu
