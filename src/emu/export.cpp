#include "src/emu/export.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "src/flowsim/engine.hpp"
#include "src/flowsim/traffic.hpp"
#include "src/obs/observability.hpp"

namespace hypatia::emu {

ScheduleExporter::ScheduleExporter(const core::Scenario& scenario,
                                   std::vector<route::GsPair> pairs,
                                   ExportOptions options)
    : scenario_(scenario),
      constellation_(scenario.shell, topo::default_epoch()),
      mobility_(constellation_),
      isls_(topo::build_isls(constellation_, scenario.isl_pattern)),
      pairs_(std::move(pairs)),
      options_(options) {
    if (options_.step <= 0) throw std::invalid_argument("emu: step must be > 0");
    num_steps_ = options_.t_end > options_.t_start
                     ? static_cast<std::size_t>(
                           (options_.t_end - options_.t_start + options_.step - 1) /
                           options_.step)
                     : 0;
    if (scenario_.weather.has_value()) weather_.emplace(*scenario_.weather);

    // Fault resolution mirrors flowsim::Engine: the scenario's spec
    // wins, HYPATIA_FAULTS is the fallback, an empty schedule is
    // discarded — so rates and loss observe one consistent fault state.
    std::optional<fault::FaultSpec> fault_spec = scenario_.faults;
    if (!fault_spec.has_value()) fault_spec = fault::spec_from_env();
    if (fault_spec.has_value() && !fault_spec->empty()) {
        faults_.emplace(fault::FaultSchedule::from_spec(
            *fault_spec, constellation_.num_satellites(), isls_,
            scenario_.ground_stations));
        if (faults_->empty()) faults_.reset();
    }

    route::SweepOptions sweep;
    sweep.relay_gs_indices = scenario_.relay_gs_indices;
    sweep.gs_nearest_satellite_only = scenario_.gs_nearest_satellite_only;
    if (weather_.has_value()) {
        sweep.gsl_range_factor = [this](int gs_index, TimeNs at) {
            return weather_->gsl_range_factor(gs_index, at);
        };
    }
    // Pass a pointer even when fault-free: an unset schedule would make
    // the sweeper re-consult HYPATIA_FAULTS, diverging from the
    // scenario-first resolution above.
    static const fault::FaultSchedule kNoFaults;
    sweep.faults = faults_.has_value() ? &*faults_ : &kNoFaults;
    sweep.step_hint = options_.step;
    sweeper_.emplace(mobility_, isls_, scenario_.ground_stations, pairs_, sweep);

    schedules_.resize(pairs_.size());
    prev_paths_.resize(pairs_.size());
    for (std::size_t pi = 0; pi < pairs_.size(); ++pi) {
        auto& s = schedules_[pi];
        s.src_gs = pairs_[pi].src_gs;
        s.dst_gs = pairs_[pi].dst_gs;
        s.src_name =
            scenario_.ground_stations[static_cast<std::size_t>(s.src_gs)].name();
        s.dst_name =
            scenario_.ground_stations[static_cast<std::size_t>(s.dst_gs)].name();
        s.step = options_.step;
        s.entries.reserve(num_steps_);
    }

    if (options_.include_rates && !pairs_.empty() && num_steps_ > 0) {
        // One unbounded CBR flow per pair; the engine re-solves the
        // max-min allocation every schedule step (plus fault cuts) and
        // records each flow's (t, rate) series. Flow ids are indices
        // into the arrival-sorted matrix, so map pairs through the sort.
        flowsim::TrafficMatrix matrix =
            flowsim::cbr_background(pairs_, options_.rate_cap_bps);
        matrix.sort_by_arrival();
        flowsim::EngineOptions eopt;
        eopt.epoch = options_.step;
        eopt.duration = options_.t_end;
        eopt.tracked_flows.resize(matrix.size());
        for (std::size_t i = 0; i < matrix.size(); ++i) eopt.tracked_flows[i] = i;
        flowsim::Engine engine(scenario_, matrix, eopt);
        const flowsim::RunSummary summary = engine.run();

        rate_series_.resize(pairs_.size());
        const auto& sorted = engine.matrix().flows;
        for (std::size_t pi = 0; pi < pairs_.size(); ++pi) {
            for (std::size_t fi = 0; fi < sorted.size(); ++fi) {
                if (sorted[fi].src_gs == pairs_[pi].src_gs &&
                    sorted[fi].dst_gs == pairs_[pi].dst_gs) {
                    rate_series_[pi] = summary.tracked_series[fi];
                    break;
                }
            }
        }
    }
}

double ScheduleExporter::rate_at(std::size_t pair_index, TimeNs t) const {
    if (pair_index >= rate_series_.size()) return 0.0;
    const auto& series = rate_series_[pair_index];
    // Rates are piecewise-constant from each boundary: the value at t is
    // the last entry at or before it.
    auto it = std::upper_bound(
        series.begin(), series.end(), t,
        [](TimeNs lhs, const std::pair<TimeNs, double>& rhs) { return lhs < rhs.first; });
    if (it == series.begin()) return 0.0;
    return std::prev(it)->second;
}

void ScheduleExporter::compute_step(std::size_t i) {
    if (i != next_step_ || i >= num_steps_) {
        throw std::logic_error("emu: compute_step(" + std::to_string(i) +
                               ") out of order (next is " +
                               std::to_string(next_step_) + " of " +
                               std::to_string(num_steps_) + ")");
    }
    const TimeNs t = step_time(i);
    const TimeNs orbit_t = scenario_.freeze ? scenario_.start_offset
                                            : scenario_.start_offset + t;
    const auto& samples = sweeper_->step(orbit_t);

    for (std::size_t pi = 0; pi < pairs_.size(); ++pi) {
        const auto& sample = samples[pi];
        auto& schedule = schedules_[pi];

        ScheduleEntry entry;
        entry.t = t;
        entry.reachable = sample.reachable();
        if (entry.reachable) {
            entry.rtt_us = sample.rtt_s * 1e6;
            entry.delay_us = entry.rtt_us / 2.0;
            entry.loss_pct = 0.0;
            entry.rate_bps = rate_at(pi, t);
        }
        // First-hop satellite: path[0] is the source GS node, path[1]
        // the first satellite (empty path when severed).
        entry.new_next_hop =
            sample.path.size() >= 2 ? sample.path[1] : -1;
        if (!schedule.entries.empty()) {
            const auto& prev = schedule.entries.back();
            entry.old_next_hop = prev.new_next_hop;
            entry.path_changed = prev_paths_[pi] != sample.path;
        }
        prev_paths_[pi] = sample.path;
        schedule.entries.push_back(std::move(entry));
    }
    obs::metrics().counter("emu.schedule_entries").inc(pairs_.size());
    ++next_step_;
}

const std::vector<PairSchedule>& ScheduleExporter::run() {
    while (next_step_ < num_steps_) compute_step(next_step_);
    return schedules_;
}

}  // namespace hypatia::emu
