// RealtimePacer: a wall-clock-paced epoch driver around ScheduleExporter.
// Each epoch computes the next schedule step (snapshot refresh + Dijkstra
// fan-out + entry building — the same code path as the batch export, so
// a paced run yields byte-identical schedules) and then sleeps until the
// epoch's wall-clock deadline: epoch i of a run started at wall time W
// must finish by W + (i + 1) * epoch / speed. An epoch finishing late is
// a deadline miss (counted in emu.deadline_misses, lag recorded in
// emu.epoch_lag_us); speed <= 0 free-runs without sleeping — the mode
// the real-time-factor measurement uses. During run() the live schedule
// is served through the obs::IntrospectionServer under
//   /schedule                     pair index (one line per pair)
//   /schedule?src=X&dst=Y         one pair as CSV (GS index or name)
//   /schedule?src=X&dst=Y&format=jsonl
// Enable pacing from the environment with HYPATIA_REALTIME=<speed>.
#pragma once

#include <functional>
#include <mutex>
#include <optional>

#include "src/emu/export.hpp"
#include "src/obs/introspect.hpp"

namespace hypatia::emu {

/// Parses HYPATIA_REALTIME. Unset, empty, or "0" return nullopt (batch
/// mode); a positive number is the pacing speed multiplier (1 = real
/// time, 2 = twice as fast); anything else warns once on stderr and
/// returns nullopt.
std::optional<double> realtime_speed_from_env();

struct PacerOptions {
    /// Wall-clock speed multiplier; <= 0 free-runs (no sleeping).
    double speed = 1.0;
    /// Register /schedule on the introspection server for the duration
    /// of run().
    bool serve_schedule = true;
    /// Called after each epoch computes (sim time of the epoch).
    std::function<void(std::size_t step_index, TimeNs t)> on_epoch;
    /// Checkpoint/restore policy (DESIGN.md §13). Disengaged resolves
    /// HYPATIA_CKPT_* through ckpt::Manager::global();
    /// ckpt::Policy::disabled() forces off. The pacer checkpoints the
    /// exporter's progress between epochs and — with resume on — picks
    /// up from the newest good generation, pacing the remaining epochs
    /// against a fresh wall-clock origin.
    std::optional<ckpt::Policy> checkpoint;
};

struct PacerReport {
    std::size_t epochs = 0;
    std::size_t deadline_misses = 0;
    double busy_s = 0.0;  // compute time, sleeps excluded
    double wall_s = 0.0;  // whole-run wall time, sleeps included
    /// Simulated seconds per busy wall-clock second; >= 1 means the
    /// pipeline keeps up with real time at this epoch length.
    double realtime_factor = 0.0;
    std::vector<PairSchedule> schedules;

    double miss_rate() const {
        return epochs == 0 ? 0.0
                           : static_cast<double>(deadline_misses) /
                                 static_cast<double>(epochs);
    }
};

class RealtimePacer {
  public:
    RealtimePacer(const core::Scenario& scenario, std::vector<route::GsPair> pairs,
                  ExportOptions export_options = {}, PacerOptions pacer_options = {});

    /// Drives every epoch and returns the report (schedules included).
    /// Call once per pacer.
    PacerReport run();

    /// Serves one /schedule request from the live exporter state.
    /// Thread-safe against the epoch loop; exposed for tests.
    obs::IntrospectionServer::Response handle_schedule(const std::string& query) const;

  private:
    ScheduleExporter exporter_;
    PacerOptions options_;
    mutable std::mutex mutex_;  // epoch appends vs /schedule reads
};

}  // namespace hypatia::emu
