// Emulation schedule model (DESIGN.md §10): per-ground-station-pair
// time series of the link properties a network emulator needs to replay
// a constellation run against real application traffic — one-way delay /
// RTT, fault-induced loss, max-min rate caps, and path-change events
// with the old and new first-hop satellites. Schedules serialize to
// deterministic CSV and JSONL (byte-identical at any HYPATIA_THREADS /
// HYPATIA_SNAPSHOT_MODE setting) and render to a tc/netem shell script
// that replays the series on a real interface.
#pragma once

#include <string>
#include <vector>

#include "src/util/units.hpp"

namespace hypatia::emu {

/// One pair's emulated link state over one schedule step [t, t + step).
struct ScheduleEntry {
    TimeNs t = 0;              // sim time of the step start
    double delay_us = 0.0;     // one-way propagation delay; 0 when unreachable
    double rtt_us = 0.0;
    double loss_pct = 100.0;   // 0 when routed, 100 when severed
    double rate_bps = 0.0;     // max-min fair share; 0 when severed
    bool reachable = false;
    /// The path differs from the previous entry's (reachability flips
    /// included). The first entry is baseline, never a change.
    bool path_changed = false;
    int old_next_hop = -1;     // previous entry's first-hop satellite (-1: none)
    int new_next_hop = -1;     // this entry's first-hop satellite (-1: severed)
};

struct PairSchedule {
    int src_gs = 0;
    int dst_gs = 0;
    std::string src_name;
    std::string dst_name;
    TimeNs step = 100 * kNsPerMs;  // grid spacing (and netem sleep unit)
    std::vector<ScheduleEntry> entries;

    int path_changes() const;
};

/// CSV: header "t_s,delay_us,rtt_us,loss_pct,rate_bps,reachable,
/// path_changed,old_next_hop,new_next_hop", one row per entry. All
/// numeric formatting is fixed-precision snprintf — deterministic.
std::string to_csv(const PairSchedule& schedule);

/// JSONL: one self-identifying object per entry (src/dst names included
/// so concatenated multi-pair streams stay parseable).
std::string to_jsonl(const PairSchedule& schedule);

struct NetemOptions {
    /// Default interface when the script is run without DEV=... set.
    std::string default_dev = "eth0";
    /// Merge runs of identical netem parameters into one tc invocation
    /// followed by a single combined sleep (fewer syscalls at replay).
    bool delta_compress = true;
};

/// Renders the schedule as a POSIX shell script of `tc qdisc replace
/// ... netem delay <us> loss <pct> [rate <bps>]` commands paced with
/// `sleep`, ending with a qdisc teardown. The rate clause is omitted
/// when the entry's rate cap is zero (severed, or rates not exported).
std::string render_netem_script(const PairSchedule& schedule,
                                const NetemOptions& options = {});

}  // namespace hypatia::emu
