#include "src/emu/realtime.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "src/obs/observability.hpp"

namespace hypatia::emu {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_between(Clock::time_point a, Clock::time_point b) {
    return std::chrono::duration<double>(b - a).count();
}

/// Parses a GS selector: a bare index ("3") or a station name. Returns
/// -1 when nothing matches.
int resolve_gs(const std::string& text,
               const std::vector<orbit::GroundStation>& stations) {
    if (text.empty()) return -1;
    char* end = nullptr;
    const long index = std::strtol(text.c_str(), &end, 10);
    if (end != text.c_str() && *end == '\0') {
        return index >= 0 && index < static_cast<long>(stations.size())
                   ? static_cast<int>(index)
                   : -1;
    }
    for (const auto& gs : stations) {
        if (gs.name() == text) return gs.id();
    }
    return -1;
}

}  // namespace

std::optional<double> realtime_speed_from_env() {
    const char* env = std::getenv("HYPATIA_REALTIME");
    if (env == nullptr || *env == '\0') return std::nullopt;
    char* end = nullptr;
    const double speed = std::strtod(env, &end);
    if (end == env || *end != '\0' || !(speed >= 0.0)) {
        static bool warned = false;
        if (!warned) {
            warned = true;
            std::fprintf(stderr, "hypatia: ignoring malformed HYPATIA_REALTIME=%s\n",
                         env);
        }
        return std::nullopt;
    }
    if (speed == 0.0) return std::nullopt;
    return speed;
}

RealtimePacer::RealtimePacer(const core::Scenario& scenario,
                             std::vector<route::GsPair> pairs,
                             ExportOptions export_options, PacerOptions pacer_options)
    : exporter_(scenario, std::move(pairs), export_options),
      options_(std::move(pacer_options)) {}

obs::IntrospectionServer::Response RealtimePacer::handle_schedule(
    const std::string& query) const {
    const std::string src = obs::query_param(query, "src");
    const std::string dst = obs::query_param(query, "dst");
    const std::string format = obs::query_param(query, "format");

    std::lock_guard<std::mutex> lock(mutex_);
    obs::IntrospectionServer::Response resp;
    if (src.empty() && dst.empty()) {
        // Pair index: which schedules this run serves and how far along
        // each is.
        std::string body;
        for (const auto& s : exporter_.schedules()) {
            body += std::to_string(s.src_gs) + "," + std::to_string(s.dst_gs) +
                    "," + s.src_name + "," + s.dst_name + "," +
                    std::to_string(s.entries.size()) + "\n";
        }
        resp.body = std::move(body);
        return resp;
    }

    const auto& stations = exporter_.scenario().ground_stations;
    const int src_gs = resolve_gs(src, stations);
    const int dst_gs = resolve_gs(dst, stations);
    for (const auto& s : exporter_.schedules()) {
        if (s.src_gs != src_gs || s.dst_gs != dst_gs) continue;
        if (format == "jsonl") {
            resp.content_type = "application/jsonl";
            resp.body = to_jsonl(s);
        } else {
            resp.content_type = "text/csv; charset=utf-8";
            resp.body = to_csv(s);
        }
        return resp;
    }
    resp.status = 404;
    resp.body = "no schedule for pair src=" + src + " dst=" + dst +
                " (GET /schedule lists the pairs)\n";
    return resp;
}

PacerReport RealtimePacer::run() {
    // RAII registration: the /schedule handler captures `this` and must
    // not outlive the run.
    struct HandlerGuard {
        bool active = false;
        ~HandlerGuard() {
            if (active) obs::IntrospectionServer::unregister_handler("/schedule");
        }
    } guard;
    if (options_.serve_schedule) {
        obs::IntrospectionServer::register_handler(
            "/schedule",
            [this](const std::string& query) { return handle_schedule(query); });
        guard.active = true;
    }

    auto& metrics = obs::metrics();
    auto& epochs_counter = metrics.counter("emu.epochs");
    auto& miss_counter = metrics.counter("emu.deadline_misses");
    auto& busy_hist = metrics.histogram("emu.epoch_busy_us");
    auto& lag_hist = metrics.histogram("emu.epoch_lag_us");

    // Checkpoint/restore: the pacer owns the checkpoint lifecycle of a
    // paced run; the exporter's own batch-run() policy stays disengaged.
    std::optional<ckpt::Manager> local_ckpt;
    ckpt::Manager* const ckpt_mgr =
        ckpt::Manager::resolve(options_.checkpoint, local_ckpt);
    if (ckpt_mgr != nullptr && ckpt_mgr->policy().resume &&
        exporter_.next_step() == 0) {
        if (const std::optional<ckpt::Checkpoint> saved =
                ckpt_mgr->load_latest()) {
            std::lock_guard<std::mutex> lock(mutex_);
            const ckpt::Section* section = saved->find("emu.exporter");
            if (section != nullptr && exporter_.restore_state(section->payload)) {
                if (const ckpt::Section* ms = saved->find("obs.metrics")) {
                    ckpt::Reader mr(ms->payload);
                    ckpt::restore_metrics_section(mr);
                }
            } else {
                std::fprintf(stderr,
                             "hypatia: not resuming paced emu run from "
                             "checkpoint (missing section or digest mismatch)\n");
                metrics.counter("ckpt.restore_rejected").inc();
            }
        }
    }

    PacerReport report;
    const double speed = options_.speed;
    const TimeNs epoch = exporter_.options().step;
    // A resumed run paces the *remaining* epochs against a fresh
    // wall-clock origin: epoch i's window opens at
    // W + (i - first) * epoch / speed.
    const std::size_t first = exporter_.next_step();
    const Clock::time_point wall_start = Clock::now();
    double busy_s = 0.0;

    for (std::size_t i = first; i < exporter_.num_steps(); ++i) {
        // Checkpoint before the pacing sleep: the image (steps [0, i))
        // is armed for the fatal-signal flush — or written when the
        // interval is due — so a kill during the sleep window loses at
        // most the not-yet-computed epoch.
        if (ckpt_mgr != nullptr && i > first) {
            ckpt::Checkpoint ck;
            ck.epoch_index = i;
            ck.sim_time = exporter_.step_time(i);
            ck.add("emu.exporter", exporter_.save_state());
            ckpt::Writer mw;
            ckpt::save_metrics_section(mw);
            ck.add("obs.metrics", mw.take());
            if (ckpt_mgr->due()) {
                ckpt_mgr->write(std::move(ck));
            } else {
                ckpt_mgr->arm(std::move(ck));
            }
        }
        if (speed > 0.0) {
            const auto open = wall_start + std::chrono::nanoseconds(static_cast<
                std::int64_t>(static_cast<double>(i - first) *
                              static_cast<double>(epoch) / speed));
            std::this_thread::sleep_until(open);
        }

        const Clock::time_point t0 = Clock::now();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            exporter_.compute_step(i);
        }
        const Clock::time_point t1 = Clock::now();
        const double epoch_busy = seconds_between(t0, t1);
        busy_s += epoch_busy;
        epochs_counter.inc();
        busy_hist.record(static_cast<std::uint64_t>(epoch_busy * 1e6));
        ++report.epochs;

        if (speed > 0.0) {
            const auto deadline = wall_start + std::chrono::nanoseconds(static_cast<
                std::int64_t>(static_cast<double>(i - first + 1) *
                              static_cast<double>(epoch) / speed));
            if (t1 > deadline) {
                ++report.deadline_misses;
                miss_counter.inc();
                lag_hist.record(static_cast<std::uint64_t>(
                    seconds_between(deadline, t1) * 1e6));
            }
        }
        if (options_.on_epoch) options_.on_epoch(i, exporter_.step_time(i));
    }

    if (ckpt_mgr != nullptr) ckpt_mgr->disarm();

    report.busy_s = busy_s;
    report.wall_s = seconds_between(wall_start, Clock::now());
    // Real-time factor over the epochs *this* process computed — a
    // resumed run reports its own pace, not the dead predecessor's.
    const double sim_s =
        ns_to_seconds(static_cast<TimeNs>(exporter_.num_steps() - first) * epoch);
    report.realtime_factor = busy_s > 0.0 ? sim_s / busy_s : 0.0;
    metrics.gauge("emu.realtime_factor").set(report.realtime_factor);
    report.schedules = exporter_.schedules();
    return report;
}

}  // namespace hypatia::emu
