#include "src/emu/schedule.hpp"

#include <cstdarg>
#include <cstdio>

namespace hypatia::emu {

namespace {

void appendf(std::string& out, const char* fmt, ...) {
    char buf[256];
    va_list args;
    va_start(args, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, args);
    va_end(args);
    out += buf;
}

/// JSON string escaping for the GS names (quotes, backslashes, control
/// characters; city names are ASCII but the format must not depend on
/// that).
std::string json_escape(const std::string& in) {
    std::string out;
    out.reserve(in.size());
    for (const char c : in) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    return out;
}

/// The netem parameter clause for one entry — also the delta-compression
/// key: two entries with the same clause need no new tc invocation.
std::string netem_clause(const ScheduleEntry& entry) {
    std::string out;
    appendf(out, "delay %.0fus loss %.0f%%", entry.delay_us, entry.loss_pct);
    if (entry.rate_bps > 0.0) appendf(out, " rate %.0fbit", entry.rate_bps);
    return out;
}

}  // namespace

int PairSchedule::path_changes() const {
    int n = 0;
    for (const auto& e : entries) n += e.path_changed ? 1 : 0;
    return n;
}

std::string to_csv(const PairSchedule& schedule) {
    std::string out;
    out.reserve(64 * (schedule.entries.size() + 1));
    out +=
        "t_s,delay_us,rtt_us,loss_pct,rate_bps,reachable,path_changed,"
        "old_next_hop,new_next_hop\n";
    for (const auto& e : schedule.entries) {
        appendf(out, "%.6f,%.3f,%.3f,%.0f,%.0f,%d,%d,%d,%d\n",
                ns_to_seconds(e.t), e.delay_us, e.rtt_us, e.loss_pct, e.rate_bps,
                e.reachable ? 1 : 0, e.path_changed ? 1 : 0, e.old_next_hop,
                e.new_next_hop);
    }
    return out;
}

std::string to_jsonl(const PairSchedule& schedule) {
    const std::string src = json_escape(schedule.src_name);
    const std::string dst = json_escape(schedule.dst_name);
    std::string out;
    out.reserve(160 * schedule.entries.size());
    for (const auto& e : schedule.entries) {
        appendf(out,
                "{\"src\":\"%s\",\"dst\":\"%s\",\"t_s\":%.6f,\"delay_us\":%.3f,"
                "\"rtt_us\":%.3f,\"loss_pct\":%.0f,\"rate_bps\":%.0f,"
                "\"reachable\":%s,\"path_changed\":%s,\"old_next_hop\":%d,"
                "\"new_next_hop\":%d}\n",
                src.c_str(), dst.c_str(), ns_to_seconds(e.t), e.delay_us,
                e.rtt_us, e.loss_pct, e.rate_bps, e.reachable ? "true" : "false",
                e.path_changed ? "true" : "false", e.old_next_hop, e.new_next_hop);
    }
    return out;
}

std::string render_netem_script(const PairSchedule& schedule,
                                const NetemOptions& options) {
    std::string out;
    out.reserve(96 * (schedule.entries.size() + 8));
    out += "#!/bin/sh\n";
    appendf(out, "# netem replay: %s (gs %d) -> %s (gs %d), %zu entries, %.0f ms step\n",
            schedule.src_name.c_str(), schedule.src_gs, schedule.dst_name.c_str(),
            schedule.dst_gs, schedule.entries.size(),
            1e3 * ns_to_seconds(schedule.step));
    out += "# usage: DEV=<iface> sh <this script>   (requires root / CAP_NET_ADMIN)\n";
    out += "set -e\n";
    appendf(out, "DEV=\"${DEV:-%s}\"\n", options.default_dev.c_str());

    // Walk the entries, merging runs of identical netem parameters into
    // one tc invocation with a combined sleep. Sleep lengths come from
    // the entry spacing (entries sit on the fixed step grid; the last
    // entry holds for one step).
    std::size_t i = 0;
    while (i < schedule.entries.size()) {
        const std::string clause = netem_clause(schedule.entries[i]);
        std::size_t j = i + 1;
        if (options.delta_compress) {
            while (j < schedule.entries.size() &&
                   netem_clause(schedule.entries[j]) == clause) {
                ++j;
            }
        }
        const TimeNs hold_end = (j < schedule.entries.size())
                                    ? schedule.entries[j].t
                                    : schedule.entries[j - 1].t + schedule.step;
        appendf(out, "tc qdisc replace dev \"$DEV\" root netem %s\n", clause.c_str());
        appendf(out, "sleep %.3f\n",
                ns_to_seconds(hold_end - schedule.entries[i].t));
        i = j;
    }
    out += "tc qdisc del dev \"$DEV\" root 2>/dev/null || true\n";
    return out;
}

}  // namespace hypatia::emu
