// Zero-rebuild epoch pipeline (DESIGN.md "Snapshot and routing memory
// layout"). A constellation's ISL edge *structure* is fixed — only the
// weights (satellite separations) and the GSL visibility sets change
// between 100 ms epochs. The SnapshotRefresher exploits that: it builds
// the CSR base graph once per (constellation, GS set), then per epoch
//   1. overwrites the ISL edge weights in place (no allocation, no
//      re-sorting — the directed slot indices are recorded up front),
//   2. rescans GS-satellite visibility in parallel (race-free warm
//      reads), and
//   3. delta-patches only the GSL overlay rows whose visibility set
//      actually changed, updating ranges in place otherwise.
// Outputs are byte-identical to build_snapshot() at any thread count;
// the equivalence suite (tests/test_parallel_equivalence.cpp) pins it.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include "src/routing/graph.hpp"
#include "src/topology/shell_group.hpp"
#include "src/util/vec3.hpp"

namespace hypatia::route {

/// Per-epoch snapshot strategy of the epoch consumers (analyze_pairs,
/// flowsim::Engine, core::LeoNetwork): rebuild the graph from scratch
/// every epoch (the legacy reference path) or refresh one graph in
/// place. Selected by HYPATIA_SNAPSHOT_MODE=rebuild|refresh; refresh is
/// the default.
enum class SnapshotMode { kRebuild, kRefresh };
SnapshotMode snapshot_mode_from_env();

class SnapshotRefresher {
  public:
    /// The referenced mobility, ISL list and GS list must outlive the
    /// refresher (they are the quasi-static inputs the graph is built
    /// over). `options` is captured by value, weather hook included.
    SnapshotRefresher(const topo::SatelliteMobility& mobility,
                      const std::vector<topo::Isl>& isls,
                      const std::vector<orbit::GroundStation>& ground_stations,
                      SnapshotOptions options = {});

    /// Multi-shell variant over a ShellGroup (which must outlive the
    /// refresher; its intra-shell ISL list is the frozen base). Refresh
    /// results are byte-identical to build_group_snapshot() at the same
    /// time — including the group GSL law: per-shell cone ranges, the
    /// weather factor applied per candidate, rows sorted by
    /// (range, satellite id).
    SnapshotRefresher(const topo::ShellGroup& group,
                      const std::vector<orbit::GroundStation>& ground_stations,
                      SnapshotOptions options = {});

    /// Brings the graph to time `t` and returns it. Not re-entrant.
    const Graph& refresh(TimeNs t);

    const Graph& graph() const { return graph_; }

    /// GSL rows whose visibility set changed structurally during the
    /// last refresh() (every row counts on the first call).
    std::size_t last_rows_patched() const { return last_rows_patched_; }

  private:
    void init();
    void scan_gsl_row(int gs_index, TimeNs t, std::uint32_t now_ms, bool cull,
                      std::vector<Edge>& row);
    void patch_gs_row(int gs_index, const std::vector<Edge>& fresh);

    const topo::SatelliteMobility* mobility_;  // null in group mode
    const topo::ShellGroup* group_ = nullptr;  // null in single-shell mode
    const std::vector<topo::Isl>* isls_;
    const std::vector<orbit::GroundStation>* ground_stations_;
    SnapshotOptions options_;
    int num_sats_ = 0;

    Graph graph_;
    /// Directed CSR slots of each ISL (a->b, b->a), for in-place weight
    /// updates.
    std::vector<std::pair<std::size_t, std::size_t>> isl_slots_;
    std::size_t last_rows_patched_ = 0;

    /// Per-GS constants the visibility rescan needs every epoch: the
    /// ECEF position and the zenith row of the SEZ rotation (the only
    /// part of the look-angle transform whose sign decides "above the
    /// horizon"). Precomputing the row reproduces look_angles()'s
    /// elevation >= 0 test bit-exactly without any per-satellite trig.
    struct GsFrame {
        Vec3 ecef;
        double zenith_x, zenith_y, zenith_z;
    };
    /// One listing candidate of the rescan, ordered exactly as the full
    /// sky scan orders SkyEntry (the sort comparator reads only
    /// range_km, so the lighter element produces the same permutation).
    struct SkyCandidate {
        std::int32_t sat;
        double range_km;
    };

    std::vector<GsFrame> gs_frames_;
    double horizon_range_km_ = 0.0;     // max over shells in group mode
    double shell_max_range_km_ = 0.0;   // max over shells in group mode
    /// Group mode only: each satellite's own shell's max GSL range.
    std::vector<double> sat_max_range_km_;
    // Flat ECEF satellite positions at the current refresh time live in
    // the graph's node-position buffer (shared with the A* heuristic):
    // one interpolation per satellite per epoch instead of one per
    // (GS, satellite) pair.
    /// Temporal-coherence cull bounds, indexed gs * num_sats + sat: the
    /// epoch-time (ms) before which the satellite provably stays beyond
    /// horizon_range_km_ of the GS (0 = must recheck). Maintained only
    /// while refresh times move forward; a backwards jump resets them.
    std::vector<std::uint32_t> not_before_ms_;
    /// Per-GS reusable buffers (disjoint slots under the parallel scan),
    /// so a steady-state refresh allocates nothing.
    std::vector<std::vector<Edge>> fresh_rows_;
    std::vector<std::vector<SkyCandidate>> sky_scratch_;
    TimeNs last_refresh_t_ = std::numeric_limits<TimeNs>::min();
    /// Fault state at the current refresh time, mirrored from
    /// options_.faults once per epoch (read-only under the parallel
    /// scan). Empty when no fault schedule is active.
    std::vector<char> fault_sat_down_;
};

}  // namespace hypatia::route
