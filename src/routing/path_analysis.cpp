#include "src/routing/path_analysis.hpp"

#include <algorithm>
#include <numeric>
#include <random>

#include "src/obs/recorder.hpp"
#include "src/orbit/coords.hpp"
#include "src/routing/pair_sweep.hpp"

namespace hypatia::route {

AnalysisResult analyze_pairs(const topo::SatelliteMobility& mobility,
                             const std::vector<topo::Isl>& isls,
                             const std::vector<orbit::GroundStation>& ground_stations,
                             const std::vector<GsPair>& pairs,
                             const AnalysisOptions& options) {
    AnalysisResult result;
    result.pair_stats.assign(pairs.size(), PairStats{});

    // Previous-step satellite path per pair, for change detection.
    std::vector<std::vector<int>> prev_path(pairs.size());
    std::vector<char> have_prev(pairs.size(), 0);
    // Flight-recorder state: whether the pair was reachable last step
    // and whether it has been observed at all (the first observation is
    // baseline, not a change).
    std::vector<char> was_reachable(pairs.size(), 0);
    std::vector<char> seen(pairs.size(), 0);

    // The shared step-wise sweep (snapshot refresh/rebuild, fault
    // masking + transition streaming, per-destination Dijkstra fan-out)
    // lives in PairSweeper; this function only folds statistics and
    // flight-recorder events over its samples.
    SweepOptions sweep_opts;
    sweep_opts.include_isls = options.include_isls;
    sweep_opts.relay_gs_indices = options.relay_gs_indices;
    sweep_opts.gs_nearest_satellite_only = options.gs_nearest_satellite_only;
    sweep_opts.gsl_range_factor = options.gsl_range_factor;
    sweep_opts.faults = options.faults;
    sweep_opts.step_hint = options.step;
    PairSweeper sweeper(mobility, isls, ground_stations, pairs, sweep_opts);

    for (TimeNs t = options.t_start; t < options.t_end; t += options.step) {
        result.step_times.push_back(t);
        const auto& samples = sweeper.step(t);

        int changes_this_step = 0;
        for (std::size_t pi = 0; pi < pairs.size(); ++pi) {
            const auto& pair = pairs[pi];
            const auto& sample = samples[pi];
            auto& stats = result.pair_stats[pi];
            ++stats.total_steps;

            std::vector<int> sat_path;
            const double rtt_s = sample.rtt_s;
            if (!sample.reachable()) {
                ++stats.unreachable_steps;
            } else {
                // Keep only the satellite portion (strip both GS
                // endpoints). A reachable pair guarantees a >= 2 node
                // path, but guard anyway: an empty extraction (corrupted
                // tree) must not index begin() + 1.
                if (sample.path.size() >= 2) {
                    sat_path.assign(sample.path.begin() + 1, sample.path.end() - 1);
                }

                const bool first = stats.min_rtt_s == 0.0 && stats.max_rtt_s == 0.0;
                if (first || rtt_s < stats.min_rtt_s) stats.min_rtt_s = rtt_s;
                if (first || rtt_s > stats.max_rtt_s) stats.max_rtt_s = rtt_s;
                const int hops = static_cast<int>(sat_path.size());
                const bool first_hops = stats.min_hops == 0 && stats.max_hops == 0;
                if (first_hops || hops < stats.min_hops) stats.min_hops = hops;
                if (first_hops || hops > stats.max_hops) stats.max_hops = hops;
            }

            if (have_prev[pi] && !sat_path.empty() && !prev_path[pi].empty() &&
                sat_path != prev_path[pi]) {
                ++stats.path_changes;
                ++changes_this_step;
            }

            // Flight recorder: path changes including reachability
            // transitions (the stats above intentionally only count
            // routed-to-routed changes; the causal record wants all).
            const bool reachable = sample.reachable();
            if (seen[pi]) {
                const std::int32_t old_hop =
                    (was_reachable[pi] != 0 && !prev_path[pi].empty())
                        ? prev_path[pi].front()
                        : -1;
                const std::int32_t new_hop = sat_path.empty() ? -1 : sat_path.front();
                const bool routed_change = was_reachable[pi] != 0 && reachable &&
                                           have_prev[pi] != 0 && !sat_path.empty() &&
                                           !prev_path[pi].empty() &&
                                           sat_path != prev_path[pi];
                const bool lost = was_reachable[pi] != 0 && !reachable;
                const bool regained = was_reachable[pi] == 0 && reachable;
                if (routed_change || lost || regained) {
                    obs::recorder().record(obs::EventKind::kPathChange, t, pair.src_gs,
                                           pair.dst_gs, old_hop, lost ? -1 : new_hop,
                                           rtt_s);
                }
            }
            seen[pi] = 1;
            was_reachable[pi] = reachable ? 1 : 0;

            if (!sat_path.empty()) {
                prev_path[pi] = sat_path;
                have_prev[pi] = 1;
            }

            if (options.per_step_observer) {
                options.per_step_observer(t, static_cast<int>(pi), rtt_s, sat_path);
            }
        }
        result.path_changes_per_step.push_back(changes_this_step);
    }
    return result;
}

std::vector<GsPair> random_permutation_pairs(int num_gs, unsigned seed) {
    std::vector<int> perm(static_cast<std::size_t>(num_gs));
    std::iota(perm.begin(), perm.end(), 0);
    std::mt19937_64 rng(seed);
    std::shuffle(perm.begin(), perm.end(), rng);
    std::vector<GsPair> pairs;
    pairs.reserve(perm.size());
    for (int i = 0; i < num_gs; ++i) {
        if (perm[static_cast<std::size_t>(i)] == i) continue;  // skip fixed points
        pairs.push_back({i, perm[static_cast<std::size_t>(i)]});
    }
    return pairs;
}

std::vector<GsPair> all_pairs_min_distance(
    const std::vector<orbit::GroundStation>& ground_stations, double min_geodesic_km) {
    std::vector<GsPair> pairs;
    const int n = static_cast<int>(ground_stations.size());
    for (int i = 0; i < n; ++i) {
        for (int j = i + 1; j < n; ++j) {
            const double d = orbit::great_circle_distance_km(
                ground_stations[static_cast<std::size_t>(i)].geodetic(),
                ground_stations[static_cast<std::size_t>(j)].geodetic());
            if (d >= min_geodesic_km) pairs.push_back({i, j});
        }
    }
    return pairs;
}

}  // namespace hypatia::route
