// Constellation-wide path analytics over time — the computations behind
// the paper's Figs 3 (computed RTT), 6-8 (RTT/geodesic CDFs, path-change
// CDFs), 9 (time-step granularity) and 13 (paths at RTT extremes).
//
// The analysis steps a clock from t0 to t1, brings the topology snapshot
// to each step (in-place refresh by default, full rebuild under
// HYPATIA_SNAPSHOT_MODE=rebuild — outputs are identical), runs Dijkstra
// rooted at every destination that appears in the pair list, and folds
// per-pair statistics.
#pragma once

#include <functional>
#include <vector>

#include "src/orbit/ground_station.hpp"
#include "src/routing/forwarding.hpp"
#include "src/routing/graph.hpp"
#include "src/routing/pair_sweep.hpp"
#include "src/topology/isl.hpp"
#include "src/topology/mobility.hpp"
#include "src/util/units.hpp"

namespace hypatia::route {

/// Folded per-pair statistics over the analysis window.
struct PairStats {
    double min_rtt_s = 0.0;
    double max_rtt_s = 0.0;
    int path_changes = 0;      // paper's metric: any satellite differs
    int min_hops = 0;          // satellite count on the path
    int max_hops = 0;
    int unreachable_steps = 0;
    int total_steps = 0;

    bool ever_reachable() const { return total_steps > unreachable_steps; }
};

/// Full analysis output.
struct AnalysisResult {
    std::vector<PairStats> pair_stats;      // parallel to the input pair list
    std::vector<int> path_changes_per_step; // network-wide, per step (Fig 9a)
    std::vector<TimeNs> step_times;
};

struct AnalysisOptions {
    TimeNs t_start = 0;
    TimeNs t_end = 200 * kNsPerSec;
    TimeNs step = 100 * kNsPerMs;
    bool include_isls = true;
    std::vector<int> relay_gs_indices;  // bent-pipe relays, if any
    bool gs_nearest_satellite_only = false;
    std::function<double(int gs_index, TimeNs t)> gsl_range_factor;
    /// Optional fault schedule (see SnapshotOptions::faults; must
    /// outlive the analysis). When nullptr, HYPATIA_FAULTS is consulted
    /// instead; pass a pointer to an empty schedule to force
    /// fault-free analysis regardless of the environment.
    const fault::FaultSchedule* faults = nullptr;
    /// Optional observer called at every step with the pair index, the
    /// current RTT (seconds, +inf if unreachable) and the node path
    /// (satellite ids between two GS node ids; empty if unreachable —
    /// the documented partitioned-graph sentinel: rtt_s == +inf AND an
    /// empty path, never an infinite-distance path artifact).
    std::function<void(TimeNs t, int pair_index, double rtt_s,
                       const std::vector<int>& path)>
        per_step_observer;
};

/// Runs the stepped analysis for `pairs` over the window in `options`.
AnalysisResult analyze_pairs(const topo::SatelliteMobility& mobility,
                             const std::vector<topo::Isl>& isls,
                             const std::vector<orbit::GroundStation>& ground_stations,
                             const std::vector<GsPair>& pairs,
                             const AnalysisOptions& options);

/// Builds the random-permutation traffic matrix the paper uses: a seeded
/// permutation of the GS indices, pairing each GS with its image (skipping
/// fixed points). Every GS appears exactly once as source.
std::vector<GsPair> random_permutation_pairs(int num_gs, unsigned seed);

/// All ordered pairs (i, j), i != j, whose endpoints are at least
/// `min_geodesic_km` apart (the paper excludes pairs within 500 km).
std::vector<GsPair> all_pairs_min_distance(
    const std::vector<orbit::GroundStation>& ground_stations, double min_geodesic_km);

}  // namespace hypatia::route
