#include "src/routing/pair_sweep.hpp"

#include <algorithm>
#include <set>

#include "src/orbit/coords.hpp"
#include "src/routing/multi_shell.hpp"
#include "src/routing/shortest_path.hpp"
#include "src/util/thread_pool.hpp"

namespace hypatia::route {

PairSweeper::PairSweeper(const topo::SatelliteMobility& mobility,
                         const std::vector<topo::Isl>& isls,
                         const std::vector<orbit::GroundStation>& ground_stations,
                         std::vector<GsPair> pairs, SweepOptions options)
    : mobility_(&mobility),
      isls_(&isls),
      ground_stations_(&ground_stations),
      pairs_(std::move(pairs)),
      options_(std::move(options)),
      num_satellites_(mobility.num_satellites()) {
    init();
}

PairSweeper::PairSweeper(const topo::ShellGroup& group,
                         const std::vector<orbit::GroundStation>& ground_stations,
                         std::vector<GsPair> pairs, SweepOptions options)
    : mobility_(nullptr),
      group_(&group),
      isls_(&group.isls()),
      ground_stations_(&ground_stations),
      pairs_(std::move(pairs)),
      options_(std::move(options)),
      num_satellites_(group.num_satellites()) {
    init();
}

void PairSweeper::init() {
    snap_opts_.include_isls = options_.include_isls;
    snap_opts_.relay_gs_indices = options_.relay_gs_indices;
    snap_opts_.gs_nearest_satellite_only = options_.gs_nearest_satellite_only;
    snap_opts_.gsl_range_factor = options_.gsl_range_factor;
    snap_opts_.faults = options_.faults;

    // HYPATIA_FAULTS fallback: a schedule materialized here must outlive
    // every snapshot of the sweep, so it lives in the sweeper.
    if (snap_opts_.faults == nullptr) {
        if (const auto spec = fault::spec_from_env()) {
            env_faults_.emplace(fault::FaultSchedule::from_spec(
                *spec, num_satellites_, *isls_, *ground_stations_));
            if (!env_faults_->empty()) snap_opts_.faults = &*env_faults_;
        }
    }

    // Refresh mode (the default) keeps one graph alive for the whole
    // sweep and delta-patches it per step; rebuild mode reconstructs it
    // from scratch (the legacy reference path). Outputs are identical.
    if (snapshot_mode_from_env() == SnapshotMode::kRefresh) {
        if (group_ != nullptr) {
            refresher_.emplace(*group_, *ground_stations_, snap_opts_);
        } else {
            refresher_.emplace(*mobility_, *isls_, *ground_stations_, snap_opts_);
        }
    }

    std::set<int> dest_set;
    for (const auto& p : pairs_) dest_set.insert(p.dst_gs);
    dest_list_.assign(dest_set.begin(), dest_set.end());

    // Destination clustering over the (static) ground-station surface
    // positions; radius <= 0 yields singleton clusters, i.e. the exact
    // per-destination fan-out.
    const double cluster_km = options_.dest_cluster_km >= 0.0
                                  ? options_.dest_cluster_km
                                  : dest_cluster_km_from_env();
    for (const int dst : dest_list_) {
        bool placed = false;
        if (cluster_km > 0.0) {
            for (auto& cluster : clusters_) {
                const double d = orbit::great_circle_distance_km(
                    (*ground_stations_)[static_cast<std::size_t>(cluster.front())]
                        .geodetic(),
                    (*ground_stations_)[static_cast<std::size_t>(dst)].geodetic());
                if (d <= cluster_km) {
                    cluster.push_back(dst);
                    placed = true;
                    break;
                }
            }
        }
        if (!placed) clusters_.push_back({dst});
    }

    trees_.resize(clusters_.size());
    tree_pops_.resize(clusters_.size());
    tree_settled_.resize(clusters_.size());
    cluster_roots_.resize(clusters_.size());
    cluster_src_nodes_.resize(clusters_.size());
    target_scratch_.resize(clusters_.size());
    tree_slot_.reserve(dest_list_.size());
    for (std::size_t c = 0; c < clusters_.size(); ++c) {
        std::set<int> srcs;
        for (const int dst : clusters_[c]) {
            tree_slot_.emplace(dst, c);
            cluster_roots_[c].push_back(gs_node(dst));
            for (const auto& p : pairs_) {
                if (p.dst_gs == dst) srcs.insert(gs_node(p.src_gs));
            }
        }
        cluster_src_nodes_[c].assign(srcs.begin(), srcs.end());
    }
    samples_.resize(pairs_.size());
}

const std::vector<PairSweeper::Sample>& PairSweeper::step(TimeNs t) {
    // Stream the fault transitions this step just crossed, so the
    // timeline reconstructor can attribute the path changes downstream
    // consumers derive from the samples.
    if (snap_opts_.faults != nullptr) {
        const TimeNs prev = have_prev_t_ ? prev_t_ : t - options_.step_hint;
        fault::record_transitions(*snap_opts_.faults, prev, t);
    }
    prev_t_ = t;
    have_prev_t_ = true;

    std::optional<Graph> rebuilt;
    if (!refresher_) {
        if (group_ != nullptr) {
            rebuilt.emplace(
                build_group_snapshot(*group_, *ground_stations_, t, snap_opts_));
        } else {
            rebuilt.emplace(
                build_snapshot(*mobility_, *isls_, *ground_stations_, t, snap_opts_));
        }
    }
    const Graph& g = refresher_ ? refresher_->refresh(t) : *rebuilt;

    // One merged-CSR flatten amortized over the whole fan-out.
    g.export_merged_csr(view_offsets_, view_edges_);
    const GraphView view{view_offsets_.data(), view_edges_.data(), g.relay_data(),
                         g.node_positions_data(), g.num_nodes()};
    const RouteAlgo algo = route_algo_from_env();

    // Under A*, collect each cluster's early-exit targets: the
    // satellites currently attached to the source ground stations whose
    // pairs read this cluster's tree. A GS row in the merged view holds
    // exactly its GSL edges, so this is a cheap row scan. Once those
    // satellites are settled, the source rows (relaxed when their
    // attachment satellites were expanded) are final and the search can
    // stop; an unreachable target never enters the queue, which safely
    // degrades that tree to an exhaustive run.
    if (algo == RouteAlgo::kAstar) {
        for (std::size_t c = 0; c < clusters_.size(); ++c) {
            auto& targets = target_scratch_[c];
            targets.clear();
            for (const int src_node : cluster_src_nodes_[c]) {
                for (std::int32_t e = view.offsets[src_node];
                     e < view.offsets[src_node + 1]; ++e) {
                    targets.push_back(view.edges[e].to);
                }
            }
        }
    }

    // Per-cluster fan-out on the pool; slot c holds the tree serving
    // clusters_[c], so downstream folds see identical state at any
    // thread count.
    util::ThreadPool::global().parallel_for(
        clusters_.size(), /*chunk=*/1, [&](std::size_t begin, std::size_t end) {
            for (std::size_t c = begin; c < end; ++c) {
                DijkstraWorkspace& ws = thread_dijkstra_workspace();
                DijkstraWorkspace::GoalSpec spec;
                spec.roots = cluster_roots_[c].data();
                spec.num_roots = static_cast<int>(cluster_roots_[c].size());
                if (algo == RouteAlgo::kAstar) {
                    spec.targets = target_scratch_[c].data();
                    spec.num_targets = static_cast<int>(target_scratch_[c].size());
                }
                spec.algo = algo;
                ws.run_goal(view, spec, trees_[c]);
                tree_pops_[c] = ws.last_pops();
                tree_settled_[c] = ws.last_settled();
            }
        });
    last_step_pops_ = 0;
    last_step_settled_ = 0;
    for (std::size_t c = 0; c < clusters_.size(); ++c) {
        last_step_pops_ += tree_pops_[c];
        last_step_settled_ += tree_settled_[c];
    }

    for (std::size_t pi = 0; pi < pairs_.size(); ++pi) {
        const auto& pair = pairs_[pi];
        const auto& tree = trees_[tree_slot_.at(pair.dst_gs)];
        const int src_node = gs_node(pair.src_gs);
        Sample& sample = samples_[pi];
        sample.path.clear();

        const double dist = tree.distance_km[static_cast<std::size_t>(src_node)];
        if (dist == kInfDistance) {
            sample.rtt_s = kInfDistance;
            continue;
        }
        sample.rtt_s = 2.0 * dist / orbit::kSpeedOfLightKmPerS;
        sample.path = extract_path(tree, src_node);
    }
    return samples_;
}

}  // namespace hypatia::route
