#include "src/routing/pair_sweep.hpp"

#include <set>

#include "src/orbit/coords.hpp"
#include "src/routing/shortest_path.hpp"
#include "src/util/thread_pool.hpp"

namespace hypatia::route {

PairSweeper::PairSweeper(const topo::SatelliteMobility& mobility,
                         const std::vector<topo::Isl>& isls,
                         const std::vector<orbit::GroundStation>& ground_stations,
                         std::vector<GsPair> pairs, SweepOptions options)
    : mobility_(&mobility),
      isls_(&isls),
      ground_stations_(&ground_stations),
      pairs_(std::move(pairs)),
      options_(std::move(options)),
      num_satellites_(mobility.num_satellites()) {
    snap_opts_.include_isls = options_.include_isls;
    snap_opts_.relay_gs_indices = options_.relay_gs_indices;
    snap_opts_.gs_nearest_satellite_only = options_.gs_nearest_satellite_only;
    snap_opts_.gsl_range_factor = options_.gsl_range_factor;
    snap_opts_.faults = options_.faults;

    // HYPATIA_FAULTS fallback: a schedule materialized here must outlive
    // every snapshot of the sweep, so it lives in the sweeper.
    if (snap_opts_.faults == nullptr) {
        if (const auto spec = fault::spec_from_env()) {
            env_faults_.emplace(fault::FaultSchedule::from_spec(
                *spec, num_satellites_, *isls_, *ground_stations_));
            if (!env_faults_->empty()) snap_opts_.faults = &*env_faults_;
        }
    }

    // Refresh mode (the default) keeps one graph alive for the whole
    // sweep and delta-patches it per step; rebuild mode reconstructs it
    // from scratch (the legacy reference path). Outputs are identical.
    if (snapshot_mode_from_env() == SnapshotMode::kRefresh) {
        refresher_.emplace(*mobility_, *isls_, *ground_stations_, snap_opts_);
    }

    std::set<int> dest_set;
    for (const auto& p : pairs_) dest_set.insert(p.dst_gs);
    dest_list_.assign(dest_set.begin(), dest_set.end());
    trees_.resize(dest_list_.size());
    tree_slot_.reserve(dest_list_.size());
    for (std::size_t i = 0; i < dest_list_.size(); ++i) {
        tree_slot_.emplace(dest_list_[i], i);
    }
    samples_.resize(pairs_.size());
}

const std::vector<PairSweeper::Sample>& PairSweeper::step(TimeNs t) {
    // Stream the fault transitions this step just crossed, so the
    // timeline reconstructor can attribute the path changes downstream
    // consumers derive from the samples.
    if (snap_opts_.faults != nullptr) {
        const TimeNs prev = have_prev_t_ ? prev_t_ : t - options_.step_hint;
        fault::record_transitions(*snap_opts_.faults, prev, t);
    }
    prev_t_ = t;
    have_prev_t_ = true;

    std::optional<Graph> rebuilt;
    if (!refresher_) {
        rebuilt.emplace(
            build_snapshot(*mobility_, *isls_, *ground_stations_, t, snap_opts_));
    }
    const Graph& g = refresher_ ? refresher_->refresh(t) : *rebuilt;

    // Per-destination Dijkstra fan-out on the pool; slot i holds the
    // tree for dest_list_[i], so downstream folds see identical state
    // at any thread count.
    util::ThreadPool::global().parallel_for(
        dest_list_.size(), /*chunk=*/1, [&](std::size_t begin, std::size_t end) {
            for (std::size_t i = begin; i < end; ++i) {
                thread_dijkstra_workspace().run(g, g.gs_node(dest_list_[i]),
                                               trees_[i]);
            }
        });

    for (std::size_t pi = 0; pi < pairs_.size(); ++pi) {
        const auto& pair = pairs_[pi];
        const auto& tree = trees_[tree_slot_.at(pair.dst_gs)];
        const int src_node = g.gs_node(pair.src_gs);
        Sample& sample = samples_[pi];
        sample.path.clear();

        const double dist = tree.distance_km[static_cast<std::size_t>(src_node)];
        if (dist == kInfDistance) {
            sample.rtt_s = kInfDistance;
            continue;
        }
        sample.rtt_s = 2.0 * dist / orbit::kSpeedOfLightKmPerS;
        sample.path = extract_path(tree, src_node);
    }
    return samples_;
}

}  // namespace hypatia::route
