#include "src/routing/multi_shell.hpp"

#include "src/obs/observability.hpp"

namespace hypatia::route {

Graph build_group_snapshot(const topo::ShellGroup& group,
                           const std::vector<orbit::GroundStation>& ground_stations,
                           TimeNs t, const SnapshotOptions& options) {
    HYPATIA_PROFILE_SCOPE("routing.snapshot");
    static obs::Counter* const snapshots_metric =
        &obs::metrics().counter("route.snapshots");
    static obs::Counter* const masked_metric =
        &obs::metrics().counter("fault.links_masked");
    static obs::Gauge* const down_gauge = &obs::metrics().gauge("fault.nodes_down");
    snapshots_metric->inc();
    const int num_sats = group.num_satellites();
    Graph g(num_sats, static_cast<int>(ground_stations.size()));
    g.reserve_edges((options.include_isls ? group.isls().size() : 0) +
                    8 * ground_stations.size());

    const fault::FaultSchedule* faults =
        (options.faults != nullptr && !options.faults->empty()) ? options.faults
                                                                : nullptr;
    std::vector<char> sat_down;
    if (faults != nullptr) {
        faults->fill_satellites_down(t, sat_down);
        down_gauge->set(
            static_cast<double>(faults->down_count(fault::FaultKind::kSatellite, t) +
                                faults->down_count(fault::FaultKind::kGroundStation, t)));
    }
    std::size_t masked = 0;

    group.warm_caches(t);

    if (options.include_isls) {
        for (const auto& isl : group.isls()) {
            double d = group.position_ecef(isl.sat_a, t)
                           .distance_to(group.position_ecef(isl.sat_b, t));
            // Same fault law as build_snapshot: failed links keep their
            // slot with infinite weight.
            if (faults != nullptr &&
                (sat_down[static_cast<std::size_t>(isl.sat_a)] != 0 ||
                 sat_down[static_cast<std::size_t>(isl.sat_b)] != 0 ||
                 faults->isl_down(isl.sat_a, isl.sat_b, t))) {
                d = kInfDistance;
                ++masked;
            }
            g.add_undirected_edge(isl.sat_a, isl.sat_b, d);
        }
    }

    // Per-satellite cone ranges: each shell keeps its own
    // max_gsl_range_km; the weather factor scales every shell's cone the
    // same way. Unlike the single-shell builder — where the uniform
    // range lets an ascending-range scan stop at the first entry beyond
    // the (possibly weather-shrunk) cone — the group law filters each
    // candidate against its own shell's cone and skips failures, so in
    // nearest-satellite-only mode a GS associates with the nearest
    // candidate that *passes* its shell's weathered cone.
    std::vector<double> sat_max_range(static_cast<std::size_t>(num_sats));
    for (int s = 0; s < group.num_shells(); ++s) {
        const double r = group.constellation(s).params().max_gsl_range_km();
        const int n = group.constellation(s).num_satellites();
        for (int local = 0; local < n; ++local) {
            sat_max_range[static_cast<std::size_t>(group.global_id(s, local))] = r;
        }
    }

    for (std::size_t gi = 0; gi < ground_stations.size(); ++gi) {
        if (faults != nullptr && faults->gs_down(static_cast<int>(gi), t)) {
            continue;  // GS outage: its GSL row is empty this epoch
        }
        const int gs_node = g.gs_node(static_cast<int>(gi));
        double factor = 1.0;
        if (options.gsl_range_factor) {
            factor = options.gsl_range_factor(static_cast<int>(gi), t);
        }
        // Entries arrive globally sorted by (range, id); each is already
        // connectable under its shell's clear-sky cone.
        for (const auto& entry :
             group.visible_satellites(ground_stations[gi], t)) {
            if (entry.range_km >
                sat_max_range[static_cast<std::size_t>(entry.sat_id)] * factor) {
                continue;  // weather-shrunk cone of this entry's shell
            }
            if (faults != nullptr &&
                sat_down[static_cast<std::size_t>(entry.sat_id)] != 0) {
                ++masked;
                continue;  // dead satellite: not a connectable target
            }
            g.add_undirected_edge(gs_node, entry.sat_id, entry.range_km);
            if (options.gs_nearest_satellite_only) break;
        }
    }
    if (masked != 0) masked_metric->inc(masked);

    for (int relay_gs : options.relay_gs_indices) {
        g.set_relay(g.gs_node(relay_gs), true);
    }

    // Node positions for the A* lower bound (warm reads: bit-identical
    // to the points the edge weights above were measured between).
    std::vector<Vec3>& pos = g.mutable_node_positions();
    for (int sat = 0; sat < num_sats; ++sat) {
        pos[static_cast<std::size_t>(sat)] = group.position_ecef(sat, t);
    }
    for (std::size_t gi = 0; gi < ground_stations.size(); ++gi) {
        pos[static_cast<std::size_t>(g.gs_node(static_cast<int>(gi)))] =
            ground_stations[gi].ecef();
    }

    g.finalize();
    return g;
}

}  // namespace hypatia::route
