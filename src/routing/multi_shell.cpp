#include "src/routing/multi_shell.hpp"

namespace hypatia::route {

Graph build_group_snapshot(const topo::ShellGroup& group,
                           const std::vector<orbit::GroundStation>& ground_stations,
                           TimeNs t, const SnapshotOptions& options) {
    Graph g(group.num_satellites(), static_cast<int>(ground_stations.size()));

    if (options.include_isls) {
        for (const auto& isl : group.isls()) {
            const double d = group.position_ecef(isl.sat_a, t)
                                 .distance_to(group.position_ecef(isl.sat_b, t));
            g.add_undirected_edge(isl.sat_a, isl.sat_b, d);
        }
    }
    for (std::size_t gi = 0; gi < ground_stations.size(); ++gi) {
        const int gs_node = g.gs_node(static_cast<int>(gi));
        for (const auto& entry : group.visible_satellites(ground_stations[gi], t)) {
            g.add_undirected_edge(gs_node, entry.sat_id, entry.range_km);
        }
    }
    for (int relay_gs : options.relay_gs_indices) {
        g.set_relay(g.gs_node(relay_gs), true);
    }
    g.finalize();
    return g;
}

}  // namespace hypatia::route
