// Snapshot graphs over multi-shell constellations (ShellGroup): the same
// node convention as single-shell graphs (all satellites first, ground
// stations after), with intra-shell ISLs only and GSLs to every shell.
#pragma once

#include "src/routing/graph.hpp"
#include "src/topology/shell_group.hpp"

namespace hypatia::route {

/// Builds the topology snapshot of a shell group at time `t`, honouring
/// the full SnapshotOptions contract (faults, weather hook, nearest-
/// satellite-only, GS relays) with one multi-shell difference: every
/// satellite carries its own shell's max GSL range, so the weather
/// factor shrinks each shell's cone individually and candidates failing
/// their cone are skipped (not a scan-ending break — the next candidate
/// may belong to a longer-range shell). GSL rows are sorted by ascending
/// (range, satellite id). Node positions are attached for the A*
/// heuristic. The returned graph is finalized.
Graph build_group_snapshot(const topo::ShellGroup& group,
                           const std::vector<orbit::GroundStation>& ground_stations,
                           TimeNs t, const SnapshotOptions& options = {});

}  // namespace hypatia::route
