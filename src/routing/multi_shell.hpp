// Snapshot graphs over multi-shell constellations (ShellGroup): the same
// node convention as single-shell graphs (all satellites first, ground
// stations after), with intra-shell ISLs only and GSLs to every shell.
#pragma once

#include "src/routing/graph.hpp"
#include "src/topology/shell_group.hpp"

namespace hypatia::route {

/// Builds the topology snapshot of a shell group at time `t`.
Graph build_group_snapshot(const topo::ShellGroup& group,
                           const std::vector<orbit::GroundStation>& ground_stations,
                           TimeNs t, const SnapshotOptions& options = {});

}  // namespace hypatia::route
