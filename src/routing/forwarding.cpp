#include "src/routing/forwarding.hpp"

namespace hypatia::route {

ForwardingState compute_forwarding(const Graph& graph,
                                   const std::vector<int>& destinations) {
    ForwardingState state;
    for (int dst : destinations) {
        state.set_tree(dst, dijkstra_to(graph, dst));
    }
    return state;
}

}  // namespace hypatia::route
