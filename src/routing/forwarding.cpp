#include "src/routing/forwarding.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <sstream>
#include <unordered_set>

#include "src/obs/observability.hpp"
#include "src/orbit/coords.hpp"
#include "src/util/thread_pool.hpp"

namespace hypatia::route {

namespace {

// Central-angle great-circle distance between two ECEF points projected
// onto the Earth sphere. For ground stations this is the usual surface
// distance; satellites compare by ground track.
double ecef_great_circle_km(const Vec3& a, const Vec3& b) {
    const double denom = a.norm() * b.norm();
    if (denom <= 0.0) return 0.0;
    const double c = std::clamp(a.dot(b) / denom, -1.0, 1.0);
    return orbit::Wgs72::kEarthRadiusKm * std::acos(c);
}

}  // namespace

double dest_cluster_km_from_env() {
    const char* v = std::getenv("HYPATIA_DEST_CLUSTER_KM");
    if (v == nullptr) return 0.0;
    char* end = nullptr;
    const double km = std::strtod(v, &end);
    if (end == v || !(km > 0.0)) return 0.0;
    return km;
}

std::vector<std::vector<int>> cluster_destinations(const Graph& graph,
                                                   const std::vector<int>& destinations,
                                                   double cluster_km) {
    std::vector<std::vector<int>> clusters;
    const Vec3* const pos = graph.node_positions_data();
    if (pos == nullptr || !(cluster_km > 0.0)) {
        for (const int d : destinations) clusters.push_back({d});
        return clusters;
    }
    for (const int d : destinations) {
        bool placed = false;
        for (auto& cluster : clusters) {
            const int seed = cluster.front();
            if (ecef_great_circle_km(pos[static_cast<std::size_t>(d)],
                                     pos[static_cast<std::size_t>(seed)]) <=
                cluster_km) {
                cluster.push_back(d);
                placed = true;
                break;
            }
        }
        if (!placed) clusters.push_back({d});
    }
    return clusters;
}

std::vector<int> ForwardingState::destinations() const {
    std::vector<int> ids;
    ids.reserve(trees_.size());
    for (const auto& [dst, tree] : trees_) {
        (void)tree;
        ids.push_back(dst);
    }
    std::sort(ids.begin(), ids.end());
    return ids;
}

void ForwardingState::serialize_csv(std::ostream& out) const {
    out << "destination,node,next_hop,distance_km\n";
    char buf[64];
    for (const int dst : destinations()) {
        const DestinationTree& tree = trees_.at(dst);
        for (std::size_t node = 0; node < tree.next_hop.size(); ++node) {
            if (tree.distance_km[node] == kInfDistance) {
                std::snprintf(buf, sizeof(buf), "%d,%zu,%d,inf\n", dst, node,
                              tree.next_hop[node]);
            } else {
                std::snprintf(buf, sizeof(buf), "%d,%zu,%d,%.6f\n", dst, node,
                              tree.next_hop[node], tree.distance_km[node]);
            }
            out << buf;
        }
    }
}

std::string ForwardingState::dump_csv() const {
    std::ostringstream os;
    serialize_csv(os);
    return os.str();
}

void ForwardingState::prune_to(const std::vector<int>& destinations) {
    if (trees_.size() == destinations.size()) {
        bool all_present = true;
        for (const int d : destinations) {
            if (trees_.find(d) == trees_.end()) {
                all_present = false;
                break;
            }
        }
        if (all_present) return;  // common steady state: same set as last epoch
    }
    const std::unordered_set<int> keep(destinations.begin(), destinations.end());
    for (auto it = trees_.begin(); it != trees_.end();) {
        it = keep.count(it->first) ? std::next(it) : trees_.erase(it);
    }
}

ForwardingState compute_forwarding(const Graph& graph,
                                   const std::vector<int>& destinations) {
    ForwardingState state;
    compute_forwarding_into(graph, destinations, state);
    return state;
}

void compute_forwarding_into(const Graph& graph, const std::vector<int>& destinations,
                             ForwardingState& state) {
    // Each destination tree is an independent Dijkstra over the shared
    // read-only graph — the routing-precompute hot loop (paper Fig 2).
    // Tree slots are created serially up front (so the map never
    // rehashes under the fan-out) and each pool lane computes into its
    // own slots through a lane-local workspace: results land in
    // per-destination storage, so the state (and its sorted CSV
    // serialization) is byte-identical at any thread count.
    graph.finalize();
    state.prune_to(destinations);
    std::vector<int> unique;
    std::vector<DestinationTree*> slots;
    unique.reserve(destinations.size());
    slots.reserve(destinations.size());
    for (const int d : destinations) {
        DestinationTree* slot = &state.mutable_tree(d);
        // A duplicate destination would hand the same slot to two lanes;
        // computing it once yields the identical state.
        if (std::find(unique.begin(), unique.end(), d) != unique.end()) continue;
        unique.push_back(d);
        slots.push_back(slot);
    }
    // Flatten base + overlay into one merged CSR once: the |destinations|
    // Dijkstras then walk a single packed edge array instead of paying a
    // finalize branch plus an overlay-row indirection per node each. The
    // scratch is caller-thread-local so steady-state epochs reuse it
    // without allocating.
    thread_local std::vector<std::int32_t> view_offsets;
    thread_local std::vector<Edge> view_edges;
    graph.export_merged_csr(view_offsets, view_edges);
    const GraphView view{view_offsets.data(), view_edges.data(), graph.relay_data(),
                         graph.node_positions_data(), graph.num_nodes()};
    const RouteAlgo algo = route_algo_from_env();
    const double cluster_km = dest_cluster_km_from_env();

    if (cluster_km > 0.0 && view.positions != nullptr && unique.size() > 1) {
        // One multi-source tree per cluster, installed for every member
        // (see the header's clustered-semantics contract). Lanes write
        // disjoint member slots, so results stay thread-count-invariant.
        const auto clusters = cluster_destinations(graph, unique, cluster_km);
        static obs::Gauge* const clusters_gauge =
            &obs::metrics().gauge("route.dest_clusters");
        clusters_gauge->set(static_cast<double>(clusters.size()));
        std::vector<DestinationTree*> slot_of(
            static_cast<std::size_t>(graph.num_nodes()), nullptr);
        for (std::size_t i = 0; i < unique.size(); ++i) {
            slot_of[static_cast<std::size_t>(unique[i])] = slots[i];
        }
        util::ThreadPool::global().parallel_for(
            clusters.size(), /*chunk=*/1, [&](std::size_t begin, std::size_t end) {
                for (std::size_t c = begin; c < end; ++c) {
                    const std::vector<int>& members = clusters[c];
                    DestinationTree& seed_tree =
                        *slot_of[static_cast<std::size_t>(members.front())];
                    DijkstraWorkspace::GoalSpec spec;
                    spec.roots = members.data();
                    spec.num_roots = static_cast<int>(members.size());
                    spec.algo = algo;
                    thread_dijkstra_workspace().run_goal(view, spec, seed_tree);
                    for (std::size_t m = 1; m < members.size(); ++m) {
                        DestinationTree& tree =
                            *slot_of[static_cast<std::size_t>(members[m])];
                        tree.destination = members[m];
                        tree.distance_km = seed_tree.distance_km;
                        tree.next_hop = seed_tree.next_hop;
                    }
                }
            });
        return;
    }

    util::ThreadPool::global().parallel_for(
        unique.size(), /*chunk=*/1, [&](std::size_t begin, std::size_t end) {
            for (std::size_t i = begin; i < end; ++i) {
                if (algo == RouteAlgo::kAstar) {
                    // Exhaustive A* (no early-exit targets): the tree is
                    // complete, so the state matches Dijkstra's.
                    DijkstraWorkspace::GoalSpec spec;
                    spec.roots = &unique[i];
                    spec.num_roots = 1;
                    spec.algo = algo;
                    thread_dijkstra_workspace().run_goal(view, spec, *slots[i]);
                } else {
                    thread_dijkstra_workspace().run(view, unique[i], *slots[i]);
                }
            }
        });
}

}  // namespace hypatia::route
