#include "src/routing/forwarding.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "src/util/thread_pool.hpp"

namespace hypatia::route {

std::vector<int> ForwardingState::destinations() const {
    std::vector<int> ids;
    ids.reserve(trees_.size());
    for (const auto& [dst, tree] : trees_) {
        (void)tree;
        ids.push_back(dst);
    }
    std::sort(ids.begin(), ids.end());
    return ids;
}

void ForwardingState::serialize_csv(std::ostream& out) const {
    out << "destination,node,next_hop,distance_km\n";
    char buf[64];
    for (const int dst : destinations()) {
        const DestinationTree& tree = trees_.at(dst);
        for (std::size_t node = 0; node < tree.next_hop.size(); ++node) {
            if (tree.distance_km[node] == kInfDistance) {
                std::snprintf(buf, sizeof(buf), "%d,%zu,%d,inf\n", dst, node,
                              tree.next_hop[node]);
            } else {
                std::snprintf(buf, sizeof(buf), "%d,%zu,%d,%.6f\n", dst, node,
                              tree.next_hop[node], tree.distance_km[node]);
            }
            out << buf;
        }
    }
}

std::string ForwardingState::dump_csv() const {
    std::ostringstream os;
    serialize_csv(os);
    return os.str();
}

ForwardingState compute_forwarding(const Graph& graph,
                                   const std::vector<int>& destinations) {
    // Each destination tree is an independent Dijkstra over the shared
    // read-only graph — the routing-precompute hot loop (paper Fig 2).
    // The fan-out runs on the pool; the merge below installs trees in
    // input order on the calling thread, so the state (and its sorted
    // CSV serialization) is byte-identical at any thread count.
    ForwardingState state;
    util::ordered_reduce<DestinationTree>(
        destinations.size(), /*chunk=*/1,
        [&](std::size_t i) { return dijkstra_to(graph, destinations[i]); },
        [&](std::size_t i, DestinationTree tree) {
            state.set_tree(destinations[i], std::move(tree));
        });
    return state;
}

}  // namespace hypatia::route
