#include "src/routing/forwarding.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <unordered_set>

#include "src/util/thread_pool.hpp"

namespace hypatia::route {

std::vector<int> ForwardingState::destinations() const {
    std::vector<int> ids;
    ids.reserve(trees_.size());
    for (const auto& [dst, tree] : trees_) {
        (void)tree;
        ids.push_back(dst);
    }
    std::sort(ids.begin(), ids.end());
    return ids;
}

void ForwardingState::serialize_csv(std::ostream& out) const {
    out << "destination,node,next_hop,distance_km\n";
    char buf[64];
    for (const int dst : destinations()) {
        const DestinationTree& tree = trees_.at(dst);
        for (std::size_t node = 0; node < tree.next_hop.size(); ++node) {
            if (tree.distance_km[node] == kInfDistance) {
                std::snprintf(buf, sizeof(buf), "%d,%zu,%d,inf\n", dst, node,
                              tree.next_hop[node]);
            } else {
                std::snprintf(buf, sizeof(buf), "%d,%zu,%d,%.6f\n", dst, node,
                              tree.next_hop[node], tree.distance_km[node]);
            }
            out << buf;
        }
    }
}

std::string ForwardingState::dump_csv() const {
    std::ostringstream os;
    serialize_csv(os);
    return os.str();
}

void ForwardingState::prune_to(const std::vector<int>& destinations) {
    if (trees_.size() == destinations.size()) {
        bool all_present = true;
        for (const int d : destinations) {
            if (trees_.find(d) == trees_.end()) {
                all_present = false;
                break;
            }
        }
        if (all_present) return;  // common steady state: same set as last epoch
    }
    const std::unordered_set<int> keep(destinations.begin(), destinations.end());
    for (auto it = trees_.begin(); it != trees_.end();) {
        it = keep.count(it->first) ? std::next(it) : trees_.erase(it);
    }
}

ForwardingState compute_forwarding(const Graph& graph,
                                   const std::vector<int>& destinations) {
    ForwardingState state;
    compute_forwarding_into(graph, destinations, state);
    return state;
}

void compute_forwarding_into(const Graph& graph, const std::vector<int>& destinations,
                             ForwardingState& state) {
    // Each destination tree is an independent Dijkstra over the shared
    // read-only graph — the routing-precompute hot loop (paper Fig 2).
    // Tree slots are created serially up front (so the map never
    // rehashes under the fan-out) and each pool lane computes into its
    // own slots through a lane-local workspace: results land in
    // per-destination storage, so the state (and its sorted CSV
    // serialization) is byte-identical at any thread count.
    graph.finalize();
    state.prune_to(destinations);
    std::vector<int> unique;
    std::vector<DestinationTree*> slots;
    unique.reserve(destinations.size());
    slots.reserve(destinations.size());
    for (const int d : destinations) {
        DestinationTree* slot = &state.mutable_tree(d);
        // A duplicate destination would hand the same slot to two lanes;
        // computing it once yields the identical state.
        if (std::find(unique.begin(), unique.end(), d) != unique.end()) continue;
        unique.push_back(d);
        slots.push_back(slot);
    }
    // Flatten base + overlay into one merged CSR once: the |destinations|
    // Dijkstras then walk a single packed edge array instead of paying a
    // finalize branch plus an overlay-row indirection per node each. The
    // scratch is caller-thread-local so steady-state epochs reuse it
    // without allocating.
    thread_local std::vector<std::int32_t> view_offsets;
    thread_local std::vector<Edge> view_edges;
    graph.export_merged_csr(view_offsets, view_edges);
    const GraphView view{view_offsets.data(), view_edges.data(), graph.relay_data(),
                         graph.num_nodes()};
    util::ThreadPool::global().parallel_for(
        unique.size(), /*chunk=*/1, [&](std::size_t begin, std::size_t end) {
            for (std::size_t i = begin; i < end; ++i) {
                thread_dijkstra_workspace().run(view, unique[i], *slots[i]);
            }
        });
}

}  // namespace hypatia::route
